module lsmlab

go 1.22
