# lsmlab build and reproduction targets. Everything is stdlib Go and
# runs offline.

GO ?= go

.PHONY: all build test race bench bench-write bench-smoke tables examples cover serve-smoke fuzz-wire torture clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./internal/... -race

# One testing.B target per experiment plus micro/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Write-path focus: group-commit scaling and batch-reuse allocations.
bench-write:
	$(GO) test -run '^$$' -bench 'BenchmarkPutParallel|BenchmarkBatchReuse' -benchmem .

# Quick benchmark smoke (CI): one iteration of every testing.B bench,
# then short engine and network lsmbench runs that must emit parseable
# machine-readable JSON summaries.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/lsmbench -writers 4 -ops 20000 -json bench_smoke.json
	grep -q '"ops_per_sec"' bench_smoke.json
	grep -q '"p99_ns"' bench_smoke.json
	grep -q '"write_amplification"' bench_smoke.json
	$(GO) run ./cmd/lsmbench -serve -conns 4 -ops 20000 -json bench_smoke_net.json
	grep -q '"mode": "net"' bench_smoke_net.json
	grep -q '"p999_ns"' bench_smoke_net.json

# Regenerate every experiment table at full scale (EXPERIMENTS.md data).
tables:
	$(GO) run ./cmd/lsmbench -exp all | tee bench_tables.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/timeseries
	$(GO) run ./examples/privacy
	$(GO) run ./examples/tuning
	$(GO) run ./examples/counters

# End-to-end smoke of the serving layer: lsmserved + lsmctl -addr
# round trips, graceful SIGTERM drain, checkpoint, durability.
serve-smoke:
	./scripts/serve_smoke.sh

# Randomized crash+fault torture: 250 seeded iterations of inject one
# fault, crash, reopen, verify no acknowledged write was lost.
torture:
	TORTURE_ITERS=250 $(GO) test ./internal/core -run 'TestTorture' -count=1 -v

# Short fuzz run over the wire-protocol codec (CI runs 30s).
fuzz-wire:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 30s

# Coverage summary over the engine packages (CI runs this as a
# non-blocking report).
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	$(GO) tool cover -func=coverage.out | tail -n 1

clean:
	rm -f bench_tables.txt coverage.out bench_smoke.json bench_smoke_net.json
