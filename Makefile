# lsmlab build and reproduction targets. Everything is stdlib Go and
# runs offline.

GO ?= go

.PHONY: all build test race bench bench-write bench-smoke bench-baseline bench-diff tables examples cover serve-smoke fuzz-wire torture torture-repl clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./internal/... -race

# One testing.B target per experiment plus micro/ablation benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Write-path focus: group-commit scaling and batch-reuse allocations.
bench-write:
	$(GO) test -run '^$$' -bench 'BenchmarkPutParallel|BenchmarkBatchReuse' -benchmem .

# Quick benchmark smoke (CI): one iteration of every testing.B bench,
# then short engine and network lsmbench runs that must emit parseable
# machine-readable JSON summaries.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/lsmbench -writers 4 -ops 20000 -json bench_smoke.json
	grep -q '"ops_per_sec"' bench_smoke.json
	grep -q '"p99_ns"' bench_smoke.json
	grep -q '"write_amplification"' bench_smoke.json
	$(GO) run ./cmd/lsmbench -serve -conns 4 -ops 20000 -json bench_smoke_net.json
	grep -q '"mode": "net"' bench_smoke_net.json
	grep -q '"p999_ns"' bench_smoke_net.json
	$(GO) run ./cmd/lsmbench -serve -tenants 2 -quota ops=200,burst=0.5 -ops 600 -json bench_smoke_tenants.json
	grep -q '"mode": "net-tenants"' bench_smoke_tenants.json
	grep -q '"throttle_rate"' bench_smoke_tenants.json
	grep -q '"retry_after_ns"' bench_smoke_tenants.json
	# Profiler cost gates: the always-on workload profiler must keep the
	# get hot path allocation-free and within 3% of a profiler-off build.
	$(GO) test ./internal/core -run 'TestGetHotZeroAllocs' -count=1
	PROFILER_GUARD=1 $(GO) test ./internal/core -run 'TestProfilerOverheadGuard' -count=1 -v

# Run the pinned perf-trajectory workload and gate it against the
# newest committed BENCH_<n>.json (what the CI bench-trajectory job
# runs; the fresh result lands in BENCH_ci.json).
bench-baseline:
	./scripts/bench_baseline.sh

# Compare two trajectory files metric-by-metric (defaults to the
# committed baseline pair). Override: make bench-diff OLD=a.json NEW=b.json
OLD ?= BENCH_0.json
NEW ?= BENCH_1.json
bench-diff:
	$(GO) run ./cmd/lsmbench -compare $(OLD) $(NEW)

# Regenerate every experiment table at full scale (EXPERIMENTS.md data).
tables:
	$(GO) run ./cmd/lsmbench -exp all | tee bench_tables.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/timeseries
	$(GO) run ./examples/privacy
	$(GO) run ./examples/tuning
	$(GO) run ./examples/counters

# End-to-end smoke of the serving layer: lsmserved + lsmctl -addr
# round trips, graceful SIGTERM drain, checkpoint, durability.
serve-smoke:
	./scripts/serve_smoke.sh

# Randomized crash+fault torture: 250 seeded iterations of inject one
# fault, crash, reopen, verify no acknowledged write was lost.
torture:
	TORTURE_ITERS=250 $(GO) test ./internal/core -run 'TestTorture' -count=1 -v

# Replication torture: 50 seeded crash+bit-rot storms against a live
# leader/follower pair. Each storm crashes the follower mid-stream,
# corrupts or deletes its replication state, and flips bits in its
# tables; convergence means identical Merkle roots and every
# acknowledged leader write readable on the follower.
torture-repl:
	TORTURE_REPL_ITERS=50 $(GO) test ./internal/replica -race -run TestReplicationTortureConvergence -count=1 -v

# Short fuzz run over the wire-protocol codec (CI runs 30s).
fuzz-wire:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 30s

# Coverage over the engine packages: per-package summary (the `ok`
# lines), then a blocking floor on the combined total. CI fails the
# cover job below COVER_FLOOR.
COVER_FLOOR ?= 70
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{gsub(/%/,""); print $$NF}'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
		|| { echo "FAIL: total coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

clean:
	rm -f bench_tables.txt coverage.out bench_smoke.json bench_smoke_net.json bench_smoke_tenants.json
