// Command lsmctl opens an lsmlab database directory on the local
// filesystem and runs basic operations against it — the smallest
// end-to-end way to poke at a store.
//
// Usage:
//
//	lsmctl -db /tmp/demo [-strategy tiering(4)/partial/min-overlap] <command>
//
//	lsmctl -db /tmp/demo put <key> <value>
//	lsmctl -db /tmp/demo get <key>
//	lsmctl -db /tmp/demo delete <key>
//	lsmctl -db /tmp/demo scan <start> <end> [limit]
//	lsmctl -db /tmp/demo shape          # print the LSM-tree structure
//	lsmctl -db /tmp/demo stats [-v]     # engine counters (-v adds latency percentiles)
//	lsmctl -db /tmp/demo workload       # live workload profile + per-level RUM attribution
//	lsmctl -db /tmp/demo events [compact]  # dump this session's engine events
//	lsmctl -db /tmp/demo compact        # full manual compaction
//	lsmctl -db /tmp/demo scrub          # verify every checksum; quarantine corrupt tables
//	lsmctl -db /tmp/demo health         # degraded-mode status and last background error
//	lsmctl -db /tmp/demo retune <strategy> [T]  # reshape online, then drain
//	lsmctl -db /tmp/demo checkpoint <dir>       # consistent online backup
//	lsmctl -db /tmp/demo bench <n>      # quick ingest of n keys
//
// With -addr instead of -db, commands run against a live lsmserved
// over the wire (put, get, delete, scan, stats, compact, health):
//
//	lsmctl -addr 127.0.0.1:4700 put <key> <value>
//	lsmctl -addr 127.0.0.1:4700 scan <prefix> [limit]
//	lsmctl -addr 127.0.0.1:4700 stats [-v]
//	lsmctl -addr 127.0.0.1:4700 workload
//	lsmctl -addr 127.0.0.1:4700 top [-interval 1s] [-count n] [-plain]
//	lsmctl -addr 127.0.0.1:4700 repl status   # per-follower replication lag
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/partition"
	"lsmlab/internal/replica"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

// store is the command surface shared by a flat tree (*core.DB) and a
// sharded one (*partition.Store); lsmctl picks the form the directory
// layout implies, so operating on a sharded store needs no flag.
type store interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Scan(start, end []byte, limit int) ([]core.KV, error)
	TreeStats() core.TreeStats
	FormatStats(verbose bool) string
	Compact() error
	WorkloadProfile() core.WorkloadProfile
	Scrub() (core.ScrubReport, error)
	Health() core.Health
	Checkpoint(dir string) error
	Flush() error
	WaitIdle()
	SetShape(layout compaction.Layout, sizeRatio int) error
	Shape() (string, int)
	Close() error
}

// openStore opens the directory in whatever form its layout implies.
func openStore(opts core.Options) (store, error) {
	if n, err := partition.DeriveShards(opts.FS, opts.Path); err == nil && n > 0 {
		return partition.Open(opts, n)
	}
	return core.Open(opts)
}

func main() {
	dbPath := flag.String("db", "", "database directory (opens the store locally)")
	addr := flag.String("addr", "", "lsmserved address (runs commands over the wire instead)")
	strategy := flag.String("strategy", "", "compaction strategy, e.g. 'lazy-leveling(4)/partial/tombstone-density'")
	sizeRatio := flag.Int("T", 0, "size ratio between level capacities (default 10)")
	flag.Parse()
	args := flag.Args()
	if (*dbPath == "") == (*addr == "") || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsmctl {-db DIR | -addr HOST:PORT} [-strategy S] [-T n] {put|get|delete|scan|shape|stats|workload|top|events|compact|scrub|health|retune|bench} ...")
		os.Exit(2)
	}
	if *addr != "" {
		remote(*addr, args)
		return
	}

	opts := core.DefaultOptions(vfs.NewOS(), *dbPath)
	// Every session records its engine events in a bounded ring; the
	// events command dumps it, and bench reports how many were seen.
	ring := events.NewRing(4096)
	opts.EventListener = ring
	if *strategy != "" {
		s, err := compaction.ParseStrategy(*strategy)
		if err != nil {
			fatal(err)
		}
		opts.Layout = s.Layout
		opts.Granularity = s.Granularity
		opts.MovePolicy = s.MovePolicy
	}
	if *sizeRatio > 1 {
		opts.SizeRatio = *sizeRatio
	}
	db, err := openStore(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2)
		v, err := db.Get([]byte(args[1]))
		if errors.Is(err, core.ErrNotFound) {
			fmt.Println("(not found)")
			return
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", v)
	case "delete":
		need(args, 2)
		if err := db.Delete([]byte(args[1])); err != nil {
			fatal(err)
		}
	case "scan":
		need(args, 3)
		limit := 100
		if len(args) > 3 {
			limit, _ = strconv.Atoi(args[3])
		}
		kvs, err := db.Scan([]byte(args[1]), []byte(args[2]), limit)
		if err != nil {
			fatal(err)
		}
		for _, kvp := range kvs {
			fmt.Printf("%s = %s\n", kvp.Key, kvp.Value)
		}
	case "shape":
		fmt.Println(db.TreeStats())
	case "stats":
		verbose := len(args) > 1 && (args[1] == "-v" || args[1] == "v")
		if verbose {
			// Histograms are per-process; probe a sample of live keys so
			// the get percentiles reflect this store's current read path
			// (puts stay untouched — stats never mutates).
			if kvs, err := db.Scan(nil, nil, 512); err == nil {
				for _, kvp := range kvs {
					_, _ = db.Get(kvp.Key)
				}
			}
		}
		fmt.Println(db.FormatStats(verbose))
	case "workload":
		renderWorkload(os.Stdout, db.WorkloadProfile())
	case "events":
		// Events are recorded per process; the dump covers this session
		// (open + WAL recovery, plus an optional manual compaction).
		if len(args) > 1 && args[1] == "compact" {
			if err := db.Compact(); err != nil {
				fatal(err)
			}
		}
		evs := ring.Events()
		for _, e := range evs {
			fmt.Println(e)
		}
		if dropped := ring.Total() - uint64(len(evs)); dropped > 0 {
			fmt.Printf("(%d older events dropped by the ring bound)\n", dropped)
		}
	case "compact":
		if err := db.Compact(); err != nil {
			fatal(err)
		}
		fmt.Println(db.TreeStats())
	case "scrub":
		// A sharded store reports one row per shard, then the total.
		if ps, ok := db.(*partition.Store); ok {
			reps, err := ps.ScrubShards()
			if err != nil {
				fatal(err)
			}
			for i, rep := range reps {
				fmt.Printf("shard %03d %s\n", i, rep)
			}
			// Merge the reports we have: scrubbing again would miss the
			// tables the pass above already quarantined.
			fmt.Printf("total %s\n", partition.MergeScrubReports(reps))
			return
		}
		rep, err := db.Scrub()
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
	case "health":
		h := db.Health()
		printHealth(h.Degraded, h.Op, h.Kind, h.Cause)
		if h.BgErr != "" {
			fmt.Printf("last_bg_err op=%s: %s\n", h.BgErrOp, h.BgErr)
		}
	case "checkpoint":
		need(args, 2)
		if err := db.Checkpoint(args[1]); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", args[1])
	case "retune":
		need(args, 2)
		s, err := compaction.ParseStrategy(args[1])
		if err != nil {
			fatal(err)
		}
		ratio := 0
		if len(args) > 2 {
			ratio, _ = strconv.Atoi(args[2])
		}
		if err := db.SetShape(s.Layout, ratio); err != nil {
			fatal(err)
		}
		db.WaitIdle()
		name, T := db.Shape()
		fmt.Printf("reshaped to %s (T=%d)\n%s\n", name, T, db.TreeStats())
	case "bench":
		need(args, 2)
		n, err := strconv.Atoi(args[1])
		if err != nil {
			fatal(err)
		}
		gen := workload.New(workload.Config{Seed: time.Now().UnixNano(), KeySpace: int64(n), ValueLen: 100})
		start := time.Now()
		for i := 0; i < n; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			fatal(err)
		}
		// Read a sample back so the get histogram has data too.
		for i := 0; i < n/10+1; i++ {
			op := gen.Next()
			if _, err := db.Get(op.Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				fatal(err)
			}
		}
		el := time.Since(start)
		fmt.Printf("%d puts in %v (%.0f ops/s)\n%s\nevents recorded: %d (run 'lsmctl events' style dumps in-session)\n",
			n, el, float64(n)/el.Seconds(), db.FormatStats(true), ring.Total())
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

// remote runs one command against a live lsmserved over the wire.
func remote(addr string, args []string) {
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	switch args[0] {
	case "put":
		need(args, 3)
		if err := cl.Put([]byte(args[1]), []byte(args[2])); err != nil {
			fatal(err)
		}
	case "get":
		need(args, 2)
		v, err := cl.Get([]byte(args[1]))
		if errors.Is(err, client.ErrNotFound) {
			fmt.Println("(not found)")
			return
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", v)
	case "delete":
		need(args, 2)
		if err := cl.Delete([]byte(args[1])); err != nil {
			fatal(err)
		}
	case "scan":
		// Over the wire, scan is prefix-based: scan <prefix> [limit].
		need(args, 2)
		limit := 100
		if len(args) > 2 {
			limit, _ = strconv.Atoi(args[2])
		}
		kvs, err := cl.Scan([]byte(args[1]), limit)
		if err != nil {
			fatal(err)
		}
		for _, kvp := range kvs {
			fmt.Printf("%s = %s\n", kvp.Key, kvp.Value)
		}
	case "stats":
		verbose := len(args) > 1 && (args[1] == "-v" || args[1] == "v")
		text, err := cl.Stats(verbose)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	case "workload":
		wp, err := fetchWorkload(cl)
		if err != nil {
			fatal(err)
		}
		renderWorkload(os.Stdout, wp)
	case "compact":
		if err := cl.Compact(); err != nil {
			fatal(err)
		}
		fmt.Println("compaction complete")
	case "health":
		h, err := cl.Health()
		if err != nil {
			fatal(err)
		}
		printHealth(h.Degraded, h.Op, h.Kind, h.Cause)
	case "top":
		if err := topCmd(cl, args[1:], os.Stdout); err != nil {
			fatal(err)
		}
	case "repl":
		if len(args) < 2 || args[1] != "status" {
			fatal(fmt.Errorf("usage: repl status"))
		}
		raw, err := cl.ReplStatus()
		if err != nil {
			fatal(err)
		}
		st, err := replica.ParseStatus(raw)
		if err != nil {
			fatal(err)
		}
		printReplStatus(st)
	default:
		fatal(fmt.Errorf("command %q is not available over -addr (remote commands: put get delete scan stats workload top compact health repl)", args[0]))
	}
}

// printReplStatus renders the leader's view of its followers: each
// follower's acked watermark vector against the leader's own, the
// total sequence lag, and how stale the last ack is.
func printReplStatus(st *replica.Status) {
	fmt.Printf("leader  watermark=%s\n", vecString(st.Leader))
	if len(st.Followers) == 0 {
		fmt.Println("followers: none")
		return
	}
	for i := range st.Followers {
		f := &st.Followers[i]
		fmt.Printf("follower %-16s acked=%s lag=%d last_ack=%s ago\n",
			f.ID, vecString(f.Acked), f.Lag(st.Leader),
			time.Duration(f.AckAgeNs).Round(time.Millisecond))
	}
}

func vecString(vec []uint64) string {
	s := "["
	for i, v := range vec {
		if i > 0 {
			s += " "
		}
		s += strconv.FormatUint(v, 10)
	}
	return s + "]"
}

// printHealth renders the shared health line for both the local and the
// wire form of the command.
func printHealth(degraded bool, op, kind, cause string) {
	if degraded {
		fmt.Printf("degraded=true op=%s kind=%s cause=%s\n", op, kind, cause)
		return
	}
	fmt.Println("degraded=false")
}

func need(args []string, n int) {
	if len(args) < n {
		fatal(fmt.Errorf("%s needs %d arguments", args[0], n-1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmctl:", err)
	os.Exit(1)
}
