package main

import (
	"encoding/json"
	"fmt"
	"io"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
)

// fetchWorkload pulls the live workload profile over the wire and
// decodes it into the engine's own type, so the remote command renders
// exactly what a local open would.
func fetchWorkload(cl *client.Client) (core.WorkloadProfile, error) {
	var wp core.WorkloadProfile
	raw, err := cl.Workload()
	if err != nil {
		return wp, err
	}
	if err := json.Unmarshal(raw, &wp); err != nil {
		return wp, fmt.Errorf("decoding workload profile: %w", err)
	}
	return wp, nil
}

// renderWorkload prints the profile the way an operator reads it:
// what the workload looks like (mix, skew, hot keys, tenants), then
// what it costs (the RUM point and the per-level bill).
func renderWorkload(w io.Writer, wp core.WorkloadProfile) {
	if !wp.Enabled {
		fmt.Fprintln(w, "workload profiler disabled (Options.DisableProfiler)")
		return
	}
	total := wp.Gets + wp.Puts + wp.Deletes + wp.Scans
	pct := func(n int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	fmt.Fprintf(w, "window: ops~%d rotations=%d\n", wp.WindowOps, wp.Rotations)
	fmt.Fprintf(w, "mix:    get %.1f%% put %.1f%% delete %.1f%% scan %.1f%% (mean scan len %.1f)\n",
		pct(wp.Gets), pct(wp.Puts), pct(wp.Deletes), pct(wp.Scans), wp.MeanScanLen)
	fmt.Fprintf(w, "keys:   distinct~%d zipf_s=%.2f top_share=%.2f\n",
		wp.DistinctKeys, wp.ZipfS, wp.TopShare)
	for i, hk := range wp.TopKeys {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "  hot[%d] %q ~%d\n", i, hk.Key, hk.Count)
	}
	fmt.Fprintf(w, "rum:    read_amp=%.2f write_amp=%.2f space_amp=%.2f\n",
		wp.ReadAmp, wp.WriteAmp, wp.SpaceAmp)
	if len(wp.Levels) > 0 {
		fmt.Fprintln(w, renderLevelTable(wp.Levels))
	}
	for _, tw := range wp.Tenants {
		fmt.Fprintf(w, "tenant %-16s ops~%-8d gets=%d puts=%d deletes=%d scans=%d\n",
			tw.Tenant, tw.Ops, tw.Gets, tw.Puts, tw.Deletes, tw.Scans)
	}
}

// renderLevelTable formats the per-level attribution columns shared by
// `lsmctl workload` and the `lsmctl top` dashboard: live run count,
// window bytes read/written, and each level's measured contribution to
// read amplification.
func renderLevelTable(levels []core.LevelProfile) string {
	s := fmt.Sprintf("%-4s %5s %10s %12s %13s %13s %9s",
		"lvl", "runs", "probes", "block_reads", "bytes_read", "bytes_written", "read_amp")
	for _, lp := range levels {
		s += fmt.Sprintf("\nL%-3d %5d %10d %12d %13d %13d %9.2f",
			lp.Level, lp.LiveRuns, lp.RunsProbed, lp.BlockReads,
			lp.BytesRead, lp.BytesWritten, lp.ReadAmp)
	}
	return s
}
