package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"lsmlab/internal/client"
)

// topCmd is the refreshing dashboard: it polls the server's verbose
// STATS text (counters, derived amplifications, latency percentiles,
// tree shape) over the data protocol — so it works against any server
// build, with or without the HTTP debug plane — and redraws on an
// interval like top(1).
func topCmd(cl *client.Client, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	count := fs.Int("count", 0, "number of refreshes (0 = until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of redrawing (for logs/pipes)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; *count <= 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		text, err := cl.Stats(true)
		if err != nil {
			return err
		}
		// Per-level attribution columns ride on the workload profile;
		// older servers without the verb just show the stats panel.
		levels := ""
		if wp, err := fetchWorkload(cl); err == nil && wp.Enabled && len(wp.Levels) > 0 {
			levels = "\n" + renderLevelTable(wp.Levels) + "\n"
		}
		if !*plain {
			// Clear screen and home the cursor between frames.
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		fmt.Fprintf(w, "lsmctl top — %s (refresh %s)\n%s\n%s",
			time.Now().Format("15:04:05"), *interval, text, levels)
	}
	return nil
}
