package main

import (
	"strings"
	"testing"
)

func set(flags ...string) map[string]bool {
	m := make(map[string]bool, len(flags))
	for _, f := range flags {
		m[f] = true
	}
	return m
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		set      map[string]bool
		wantMode string
		wantErr  string // substring; empty = no error
	}{
		{"no flags is experiments", set(), modeExperiments, ""},
		{"exp selects experiments", set("exp", "scale"), modeExperiments, ""},
		{"writers mode", set("writers", "ops", "value", "batch", "sync", "json"), modeWriters, ""},
		{"net serve", set("serve", "conns", "depth", "ops", "json"), modeNet, ""},
		{"net addr", set("addr", "conns", "depth"), modeNet, ""},
		{"serve and addr agree on net", set("serve", "addr"), modeNet, ""},
		{"read mode full knobs", set("mode", "readers", "keys", "dist", "warm", "bits", "scanlen", "ops", "json"), modeRead, ""},
		{"baseline with json", set("baseline", "json"), modeBaseline, ""},
		{"compare with thresholds", set("compare", "threshold-scale", "markdown"), modeCompare, ""},

		// The silently-ignored combinations that motivated the validator.
		{"depth in writers mode", set("writers", "depth"), "", "-depth is not valid in writers mode"},
		{"conns without serve or addr", set("conns"), "", "-conns is not valid in experiments mode"},
		{"batch in net mode", set("serve", "batch"), "", "-batch is not valid in net mode"},
		{"readers in writers mode", set("writers", "readers"), "", "-readers is not valid in writers mode"},
		{"bits in experiments mode", set("bits"), "", "-bits is not valid in experiments mode"},
		{"json in experiments mode", set("json"), "", "-json is not valid in experiments mode"},
		{"syncdelay in read mode", set("mode", "syncdelay"), "", "-syncdelay is not valid in read mode"},

		// Conflicting mode determiners.
		{"writers vs serve", set("writers", "serve"), "", "conflicts"},
		{"exp vs mode", set("exp", "mode"), "", "conflicts"},
		{"compare vs writers", set("compare", "writers"), "", "conflicts"},
		{"baseline vs mode", set("baseline", "mode"), "", "conflicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mode, err := validateFlags(tc.set)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if mode != tc.wantMode {
					t.Fatalf("mode = %q, want %q", mode, tc.wantMode)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got mode %q", tc.wantErr, mode)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestEveryKnownFlagHasAHome(t *testing.T) {
	// Guard against adding a flag to flagModes with an empty or unknown
	// mode list — that would make it unusable everywhere.
	valid := map[string]bool{
		modeExperiments: true, modeWriters: true, modeNet: true,
		modeRead: true, modeBaseline: true, modeCompare: true,
	}
	for f, modes := range flagModes {
		if len(modes) == 0 {
			t.Errorf("flag -%s allows no modes", f)
		}
		for _, m := range modes {
			if !valid[m] {
				t.Errorf("flag -%s names unknown mode %q", f, m)
			}
		}
	}
	for f, m := range modeDeterminers {
		if !valid[m] {
			t.Errorf("determiner -%s names unknown mode %q", f, m)
		}
	}
}
