package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/metrics"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

// readConfig parameterizes the read and mixed benchmark modes: a
// preloaded key space, a reader pool, key popularity, cache warmth, and
// the filter budget — the knobs the paper's read-cost analysis varies.
type readConfig struct {
	mode      string // get | scan | mixed
	readers   int
	ops       int // operations across all readers (measured phase)
	keys      int64
	valueSize int
	dist      string // uniform | zipfian
	warm      bool
	bits      float64 // bloom filter bits per key
	scanLen   int
	syncWAL   bool
	dir       string // OS directory ("" = in-memory fs)
}

func (c readConfig) distribution() (workload.Distribution, error) {
	switch c.dist {
	case "uniform":
		return workload.Uniform, nil
	case "zipfian":
		return workload.Zipfian, nil
	}
	return 0, fmt.Errorf("unknown -dist %q (uniform|zipfian)", c.dist)
}

func (c readConfig) mix() (workload.Mix, error) {
	switch c.mode {
	case "get":
		return workload.MixC, nil
	case "scan":
		return workload.Mix{ScanShort: 1}, nil
	case "mixed":
		return workload.MixA, nil
	}
	return workload.Mix{}, fmt.Errorf("unknown -mode %q (get|scan|mixed)", c.mode)
}

// runRead executes one read benchmark and writes the optional JSON
// summary.
func runRead(cfg readConfig, jsonPath string) error {
	res, err := readBench(cfg, os.Stdout)
	if err != nil {
		return err
	}
	return res.writeJSON(jsonPath)
}

// readBench preloads the key space, optionally warms the block cache,
// then drives cfg.readers goroutines through the configured operation
// mix, reporting throughput, latency percentiles, allocations per
// operation, and the access-path counters (filter negatives, cache
// hits, block reads) that explain where each get went.
func readBench(cfg readConfig, w io.Writer) (benchResult, error) {
	dist, err := cfg.distribution()
	if err != nil {
		return benchResult{}, err
	}
	mix, err := cfg.mix()
	if err != nil {
		return benchResult{}, err
	}
	if cfg.readers < 1 {
		cfg.readers = 1
	}
	if cfg.scanLen < 1 {
		cfg.scanLen = 16
	}

	var fs vfs.FS
	dbDir := "bench-db"
	if cfg.dir != "" {
		fs = vfs.NewOS()
		dbDir = cfg.dir
	} else {
		fs = vfs.NewMem()
	}
	opts := core.DefaultOptions(fs, dbDir)
	opts.SyncWAL = cfg.syncWAL
	opts.RecordLatencies = true
	opts.FilterMode = core.FilterUniform
	opts.BitsPerKey = cfg.bits
	db, err := core.Open(opts)
	if err != nil {
		return benchResult{}, err
	}
	defer db.Close()

	// Preload the key space in batches, then settle flushes and
	// compactions so measurement starts from a quiet tree.
	val := make([]byte, cfg.valueSize)
	var batch core.Batch
	const loadBatch = 512
	for i := int64(0); i < cfg.keys; i += loadBatch {
		batch.Reset()
		for j := int64(0); j < loadBatch && i+j < cfg.keys; j++ {
			batch.Put(workload.Key(i+j), val)
		}
		if err := db.Apply(&batch); err != nil {
			return benchResult{}, err
		}
	}
	if err := db.Flush(); err != nil {
		return benchResult{}, err
	}

	if cfg.warm {
		// One striped pass over the whole key space pulls every reachable
		// block through the cache once; what stays resident afterwards is
		// the steady-state warm set for the configured cache size.
		var wg sync.WaitGroup
		for r := 0; r < cfg.readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := int64(r); i < cfg.keys; i += int64(cfg.readers) {
					db.Get(workload.Key(i))
				}
			}(r)
		}
		wg.Wait()
	}

	perReader := cfg.ops / cfg.readers
	total := perReader * cfg.readers
	var getLat, scanLat metrics.Histogram
	var getOps, scanOps, putOps atomic.Int64
	errs := make([]error, cfg.readers)

	m0 := db.Metrics()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := workload.New(workload.Config{
				Seed:         int64(1000 + r),
				KeySpace:     cfg.keys,
				ValueLen:     cfg.valueSize,
				Distribution: dist,
				Mix:          mix,
				ShortScanLen: cfg.scanLen,
			})
			for i := 0; i < perReader; i++ {
				op := g.Next()
				switch op.Kind {
				case workload.OpPut:
					if err := db.Put(op.Key, op.Value); err != nil {
						errs[r] = err
						return
					}
					putOps.Add(1)
				case workload.OpGet, workload.OpGetZero:
					t0 := time.Now().UnixNano()
					_, err := db.Get(op.Key)
					getLat.RecordSince(t0, time.Now().UnixNano())
					if err != nil && err != core.ErrNotFound {
						errs[r] = err
						return
					}
					getOps.Add(1)
				case workload.OpScan:
					t0 := time.Now().UnixNano()
					_, err := db.Scan(op.Key, op.EndKey, op.Limit)
					scanLat.RecordSince(t0, time.Now().UnixNano())
					if err != nil {
						errs[r] = err
						return
					}
					scanOps.Add(1)
				}
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return benchResult{}, err
		}
	}
	d := db.Metrics().Sub(m0)

	res := benchResult{
		Mode: cfg.mode, Readers: cfg.readers, Ops: total,
		ValueBytes: cfg.valueSize, SyncWAL: cfg.syncWAL,
		KeySpace: cfg.keys, Dist: cfg.dist, WarmCache: cfg.warm,
		FilterBits: cfg.bits,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(total) / elapsed.Seconds(),
		GetOps: getOps.Load(), ScanOps: scanOps.Load(), PutOps: putOps.Load(),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}
	if cfg.mode == "scan" {
		res.ScanLen = cfg.scanLen
		res.fillLatency(scanLat.Snapshot())
	} else {
		res.fillLatency(getLat.Snapshot())
	}
	res.fillReadPath(d)
	res.fillEngine(db.Metrics())

	fmt.Fprintf(w, "mode=%s readers=%d ops=%d keys=%d value=%dB dist=%s warm=%v bits=%.1f\n",
		cfg.mode, cfg.readers, total, cfg.keys, cfg.valueSize, cfg.dist, cfg.warm, cfg.bits)
	fmt.Fprintf(w, "elapsed=%.2fs throughput=%.0f ops/s allocs/op=%.2f\n",
		res.ElapsedSec, res.OpsPerSec, res.AllocsPerOp)
	fmt.Fprintf(w, "latency: p50=%dns p99=%dns p999=%dns max=%dns\n",
		res.P50Ns, res.P99Ns, res.P999Ns, res.MaxNs)
	fmt.Fprintf(w, "access path: RA=%.2f hit_rate=%.2f filter_neg=%d cache_hit=%.2f block_reads=%d (cached %d)\n",
		res.ReadAmp, res.HitRate, res.FilterNegatives, res.CacheHitRate,
		res.BlockReads, res.BlockReadsCached)
	return res, nil
}

// pinnedWorkload names the committed perf-trajectory workload. Changing
// it invalidates every BENCH_*.json on disk: bump the name and re-run
// the whole trajectory if you must.
const pinnedWorkload = "pinned-v1: 16B keys, 100B values, 200k keys, 100k gets @ 8 readers " +
	"(uniform + zipfian, warm cache, 10 bits/key) + 100k sync'd puts @ 8 writers, " +
	"in-memory fs, best of 3 runs per section; sharded sections: 40k sync'd batched " +
	"puts @ 8 writers (batch 32, 200us fsync, 64KiB buffers, leveled T=2, 4MiB/s " +
	"compaction throttle) at 1 and 4 shards"

// baselineRepeats is how many times each pinned section runs; the run
// with the highest throughput is recorded. A 100k-op section measures
// for only a fraction of a second, where scheduler interference skews
// single runs by ±20%; best-of-N reports the least-disturbed run.
const baselineRepeats = 3

// trajectoryFile is the on-disk format of BENCH_*.json: named sections
// so one file captures reads and writes of the same engine build.
type trajectoryFile struct {
	Schema   int                    `json:"schema"`
	Workload string                 `json:"workload"`
	Results  map[string]benchResult `json:"results"`
}

// runBaseline runs the pinned trajectory suite — get/uniform,
// get/zipfian, and the 8-writer put benchmark — and writes the combined
// JSON. CI and `make bench-baseline` feed its output to -compare.
func runBaseline(jsonPath string) error {
	if jsonPath == "" {
		return fmt.Errorf("-baseline requires -json PATH for the trajectory file")
	}
	readCfg := func(dist string) readConfig {
		return readConfig{
			mode: "get", readers: 8, ops: 100000, keys: 200000,
			valueSize: 100, dist: dist, warm: true, bits: 10, scanLen: 16,
		}
	}
	bestOf := func(section string, run func() (benchResult, error)) (benchResult, error) {
		var best benchResult
		for i := 0; i < baselineRepeats; i++ {
			fmt.Printf("== baseline: %s (run %d/%d) ==\n", section, i+1, baselineRepeats)
			res, err := run()
			if err != nil {
				return benchResult{}, err
			}
			if i == 0 || res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		return best, nil
	}
	results := make(map[string]benchResult)

	res, err := bestOf("get/uniform", func() (benchResult, error) {
		return readBench(readCfg("uniform"), os.Stdout)
	})
	if err != nil {
		return err
	}
	results["get_uniform"] = res

	if res, err = bestOf("get/zipfian", func() (benchResult, error) {
		return readBench(readCfg("zipfian"), os.Stdout)
	}); err != nil {
		return err
	}
	results["get_zipfian"] = res

	if res, err = bestOf("put/8 writers", func() (benchResult, error) {
		return writersBench(writersConfig{
			writers: 8, ops: 100000, valueSize: 100, batchSize: 1, syncWAL: true,
		}, os.Stdout)
	}); err != nil {
		return err
	}
	results["put_8writers"] = res

	// Sharded write scaling: the same sync'd batched workload at 1 and 4
	// shards. The configuration models a disk-bound store (200us fsync,
	// small buffers, leveled T=2, a per-compaction bandwidth throttle) so
	// that per-shard WAL/flush/compaction pipelines — not CPU — are the
	// contended resource; the shard4/shard1 ratio is the scaling claim
	// the sharding work is pinned on.
	shardCfg := func(n int) writersConfig {
		return writersConfig{
			writers: 8, ops: 40000, valueSize: 100, batchSize: 32,
			syncWAL: true, syncDelay: 200 * time.Microsecond, shards: n,
			bufferBytes: 64 << 10, sizeRatio: 2, leveled: true,
			compactionBW: 4 << 20,
		}
	}
	if res, err = bestOf("put/8 writers, 1 shard", func() (benchResult, error) {
		return writersBench(shardCfg(1), os.Stdout)
	}); err != nil {
		return err
	}
	results["put_8writers_shard1"] = res

	if res, err = bestOf("put/8 writers, 4 shards", func() (benchResult, error) {
		return writersBench(shardCfg(4), os.Stdout)
	}); err != nil {
		return err
	}
	results["put_8writers_shard4"] = res

	return writeTrajectory(jsonPath, results)
}

func writeTrajectory(path string, results map[string]benchResult) error {
	f := trajectoryFile{Schema: 1, Workload: pinnedWorkload, Results: results}
	return writeJSONFile(path, f)
}
