package main

import (
	"fmt"
	"sort"
	"strings"
)

// lsmbench runs in exactly one of six modes; most flags only make sense
// in some of them. Instead of silently ignoring a -depth passed to a
// writers run (and letting the user believe it did something), flag
// compatibility is validated up front and violations are usage errors.
const (
	modeExperiments = "experiments"
	modeWriters     = "writers"
	modeNet         = "net"
	modeRead        = "read"
	modeBaseline    = "baseline"
	modeCompare     = "compare"
)

// modeDeterminers maps each mode-selecting flag to the mode it selects.
// Two determiners selecting different modes is a conflict (-serve and
// -addr both select net, which is fine).
var modeDeterminers = map[string]string{
	"writers":  modeWriters,
	"serve":    modeNet,
	"addr":     modeNet,
	"mode":     modeRead,
	"baseline": modeBaseline,
	"compare":  modeCompare,
	"exp":      modeExperiments,
	"scale":    modeExperiments,
}

// flagModes whitelists the modes each non-determining flag applies to.
// A flag set outside its modes is rejected, not ignored.
var flagModes = map[string][]string{
	"ops":             {modeWriters, modeNet, modeRead},
	"value":           {modeWriters, modeNet, modeRead},
	"batch":           {modeWriters},
	"shards":          {modeWriters},
	"sync":            {modeWriters, modeNet, modeRead},
	"syncdelay":       {modeWriters, modeNet},
	"dir":             {modeWriters, modeNet, modeRead},
	"json":            {modeWriters, modeNet, modeRead, modeBaseline},
	"conns":           {modeNet},
	"depth":           {modeNet},
	"replicas":        {modeNet},
	"tenants":         {modeNet},
	"quota":           {modeNet},
	"readers":         {modeRead},
	"keys":            {modeRead},
	"dist":            {modeRead},
	"warm":            {modeRead},
	"bits":            {modeRead},
	"scanlen":         {modeRead},
	"threshold-scale": {modeCompare},
	"markdown":        {modeCompare},
}

// resolveMode picks the bench mode from the explicitly set flags,
// rejecting combinations that select two different modes (e.g. -writers
// with -serve, or -exp with -mode).
func resolveMode(set map[string]bool) (string, error) {
	mode := ""
	chosenBy := ""
	for _, f := range sortedFlags(set) {
		m, ok := modeDeterminers[f]
		if !ok {
			continue
		}
		if mode != "" && m != mode {
			return "", fmt.Errorf("-%s (%s mode) conflicts with -%s (%s mode)",
				f, m, chosenBy, mode)
		}
		mode, chosenBy = m, f
	}
	if mode == "" {
		mode = modeExperiments
	}
	return mode, nil
}

// validateFlags resolves the mode and rejects any explicitly set flag
// that does not apply to it. It returns the resolved mode.
func validateFlags(set map[string]bool) (string, error) {
	mode, err := resolveMode(set)
	if err != nil {
		return "", err
	}
	for _, f := range sortedFlags(set) {
		if _, isDeterminer := modeDeterminers[f]; isDeterminer {
			continue
		}
		allowed, known := flagModes[f]
		if !known {
			continue
		}
		ok := false
		for _, m := range allowed {
			if m == mode {
				ok = true
				break
			}
		}
		if !ok {
			return "", fmt.Errorf("-%s is not valid in %s mode (valid in: %s)",
				f, mode, strings.Join(allowed, ", "))
		}
	}
	return mode, nil
}

func sortedFlags(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
