// Command lsmbench regenerates the experiment tables of DESIGN.md §3:
// one table per tutorial claim (E1–E13, plus the O1 trace-attribution
// table built from /traces). It also carries a concurrent
// write benchmark that exercises the leader-based commit pipeline.
//
// Usage:
//
//	lsmbench -exp all            # run everything at full scale
//	lsmbench -exp E1,E3 -scale 0.25
//	lsmbench -writers 8 -ops 200000 -sync   # group-commit throughput
//	lsmbench -serve -conns 8 -ops 100000 -sync   # same store, over TCP
//	lsmbench -addr 127.0.0.1:4700 -conns 8       # against a live server
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/experiments"
	"lsmlab/internal/metrics"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (E1..E13, O1) or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = documented size)")

		writers   = flag.Int("writers", 0, "run the concurrent write benchmark with this many writers (0 = run experiments)")
		ops       = flag.Int("ops", 100000, "total put operations for -writers mode")
		valueSize = flag.Int("value", 100, "value size in bytes for -writers mode")
		batchSize = flag.Int("batch", 1, "puts per Apply batch for -writers mode")
		syncWAL   = flag.Bool("sync", false, "fsync the WAL on every commit in -writers mode")
		syncDelay = flag.Duration("syncdelay", 0, "modeled fsync latency on the in-memory fs (e.g. 100us)")
		dir       = flag.String("dir", "", "OS directory for -writers mode (default: in-memory fs; real fsync latency needs a real disk)")

		serve = flag.Bool("serve", false, "network mode: serve the bench store in-process and write over TCP")
		addr  = flag.String("addr", "", "network mode: benchmark an external lsmserved at this address")
		conns = flag.Int("conns", 1, "network mode: number of client connections")
		depth = flag.Int("depth", 1, "network mode: pipelined requests in flight per connection (1 = synchronous)")

		jsonPath = flag.String("json", "", "write a machine-readable result summary to this file (-writers and network modes)")
	)
	flag.Parse()

	if *serve || *addr != "" {
		if err := runNet(*addr, *conns, *ops, *valueSize, *depth, *syncWAL, *syncDelay, *dir, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *writers > 0 {
		if err := runWriters(*writers, *ops, *valueSize, *batchSize, *syncWAL, *syncDelay, *dir, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

// benchResult is the machine-readable summary written by -json: the
// numbers CI trend lines and scripts consume without scraping the
// human output.
type benchResult struct {
	Mode       string  `json:"mode"` // "writers" or "net"
	Writers    int     `json:"writers,omitempty"`
	Conns      int     `json:"conns,omitempty"`
	Depth      int     `json:"depth,omitempty"`
	Ops        int     `json:"ops"`
	ValueBytes int     `json:"value_bytes"`
	BatchSize  int     `json:"batch_size,omitempty"`
	SyncWAL    bool    `json:"sync_wal"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	// Put latency percentiles, nanoseconds (enqueue→ack in net mode,
	// Apply duration in writers mode).
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`

	// Engine-side totals (zero when benchmarking an external server).
	WriteAmp           float64 `json:"write_amplification"`
	ReadAmp            float64 `json:"read_amplification"`
	BytesIngested      int64   `json:"bytes_ingested"`
	WALBytes           int64   `json:"wal_bytes"`
	FlushBytes         int64   `json:"flush_bytes"`
	CompactionBytesOut int64   `json:"compaction_bytes_written"`
	AvgCommitGroup     float64 `json:"avg_commit_group_size"`
	WALSyncs           int64   `json:"wal_syncs"`
	WALSyncsSaved      int64   `json:"wal_syncs_saved"`
}

// fillEngine copies the engine-side totals from a metrics snapshot.
func (r *benchResult) fillEngine(m metrics.Snapshot) {
	r.WriteAmp = m.WriteAmplification()
	r.ReadAmp = m.ReadAmplification()
	r.BytesIngested = m.BytesIngested
	r.WALBytes = m.WALBytes
	r.FlushBytes = m.FlushBytes
	r.CompactionBytesOut = m.CompactionBytesWritten
	r.AvgCommitGroup = m.AvgCommitGroupSize()
	r.WALSyncs = m.WALSyncs
	r.WALSyncsSaved = m.WALSyncsSaved
}

// fillLatency copies the percentile summary from a histogram snapshot.
func (r *benchResult) fillLatency(h metrics.HistogramSnapshot) {
	r.P50Ns = h.Quantile(0.5)
	r.P99Ns = h.Quantile(0.99)
	r.P999Ns = h.Quantile(0.999)
	r.MaxNs = h.Max
}

// writeJSON persists the summary (no-op when -json was not given).
func (r *benchResult) writeJSON(path string) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runWriters drives `writers` goroutines over disjoint key ranges
// through one DB and reports aggregate throughput plus the commit
// pipeline's coalescing statistics. The default in-memory filesystem
// keeps the numbers about the engine; pass -dir to pay real fsync
// latency, which is where group commit coalesces hardest.
func runWriters(writers, ops, valueSize, batchSize int, syncWAL bool, syncDelay time.Duration, dir, jsonPath string) error {
	if batchSize < 1 {
		batchSize = 1
	}
	var fs vfs.FS
	dbDir := "bench-db"
	if dir != "" {
		fs = vfs.NewOS()
		dbDir = dir
	} else {
		mem := vfs.NewMem()
		mem.SetSyncDelay(syncDelay)
		fs = mem
	}
	opts := core.DefaultOptions(fs, dbDir)
	opts.SyncWAL = syncWAL
	opts.RecordLatencies = true
	db, err := core.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()

	perWriter := ops / writers
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, valueSize)
			base := int64(w * perWriter)
			var batch core.Batch
			for i := 0; i < perWriter; i += batchSize {
				batch.Reset()
				for j := 0; j < batchSize && i+j < perWriter; j++ {
					batch.Put(workload.Key(base+int64(i+j)), val)
				}
				if err := db.Apply(&batch); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	m := db.Metrics()
	total := perWriter * writers
	fmt.Printf("writers=%d ops=%d value=%dB batch=%d sync=%v\n",
		writers, total, valueSize, batchSize, syncWAL)
	fmt.Printf("elapsed=%.2fs throughput=%.0f ops/s\n",
		elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("commit_groups=%d batches=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d\n",
		m.CommitGroups, m.CommitBatches, m.AvgCommitGroupSize(),
		m.WALSyncs, m.WALSyncsSaved)
	gs := db.CommitGroupSizes()
	if gs.N > 0 {
		fmt.Printf("group size: n=%d mean=%.2f max=%d\n", gs.N, gs.Mean(), gs.Max)
	}
	res := benchResult{
		Mode: "writers", Writers: writers, Ops: total, ValueBytes: valueSize,
		BatchSize: batchSize, SyncWAL: syncWAL,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(total) / elapsed.Seconds(),
	}
	res.fillEngine(m)
	res.fillLatency(db.Latencies().Put)
	return res.writeJSON(jsonPath)
}

// runNet measures put throughput over the wire: conns connections,
// each keeping up to depth requests in flight. With -serve the store
// and server run in this process (so engine coalescing stats are
// reported too); with -addr the target is an external lsmserved.
func runNet(addr string, conns, ops, valueSize, depth int, syncWAL bool, syncDelay time.Duration, dir, jsonPath string) error {
	if conns < 1 {
		conns = 1
	}
	if depth < 1 {
		depth = 1
	}

	var db *core.DB
	if addr == "" {
		// -serve: host the bench store in-process, same defaults as
		// -writers mode.
		var fs vfs.FS
		dbDir := "bench-db"
		if dir != "" {
			fs = vfs.NewOS()
			dbDir = dir
		} else {
			mem := vfs.NewMem()
			mem.SetSyncDelay(syncDelay)
			fs = mem
		}
		opts := core.DefaultOptions(fs, dbDir)
		opts.SyncWAL = syncWAL
		var err error
		db, err = core.Open(opts)
		if err != nil {
			return err
		}
		defer db.Close()
		srv := server.New(db, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		defer func() {
			srv.Shutdown(10 * time.Second)
			<-serveDone
		}()
		addr = ln.Addr().String()
	}

	cl, err := client.Dial(addr, client.Options{PoolSize: conns})
	if err != nil {
		return err
	}
	defer cl.Close()

	perConn := ops / conns
	val := make([]byte, valueSize)
	var wg sync.WaitGroup
	errs := make([]error, conns)
	var lat metrics.Histogram
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p, err := cl.Pipeline()
			if err != nil {
				errs[c] = err
				return
			}
			base := int64(c * perConn)
			// window holds in-flight futures; latency is enqueue→ack.
			type inflight struct {
				f       *client.Future
				startNs int64
			}
			window := make([]inflight, 0, depth)
			drainOne := func() error {
				in := window[0]
				window = window[1:]
				if err := in.f.Err(); err != nil {
					return err
				}
				lat.RecordSince(in.startNs, time.Now().UnixNano())
				return nil
			}
			for i := 0; i < perConn; i++ {
				if len(window) == depth {
					if err := drainOne(); err != nil {
						errs[c] = err
						return
					}
				}
				f := p.Put(workload.Key(base+int64(i)), val)
				window = append(window, inflight{f, time.Now().UnixNano()})
			}
			for len(window) > 0 {
				if err := drainOne(); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	total := perConn * conns
	res := benchResult{
		Mode: "net", Conns: conns, Depth: depth, Ops: total, ValueBytes: valueSize,
		SyncWAL:    syncWAL,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(total) / elapsed.Seconds(),
	}
	res.fillLatency(lat.Snapshot())
	fmt.Printf("net conns=%d depth=%d ops=%d value=%dB sync=%v addr=%s\n",
		conns, depth, total, valueSize, syncWAL, addr)
	fmt.Printf("elapsed=%.2fs throughput=%.0f ops/s\n",
		elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("put latency: %s\n", lat.Snapshot())
	if db != nil {
		m := db.Metrics()
		res.fillEngine(m)
		fmt.Printf("commit_groups=%d batches=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d\n",
			m.CommitGroups, m.CommitBatches, m.AvgCommitGroupSize(),
			m.WALSyncs, m.WALSyncsSaved)
		gs := db.CommitGroupSizes()
		if gs.N > 0 {
			fmt.Printf("group size: n=%d mean=%.2f max=%d\n", gs.N, gs.Mean(), gs.Max)
		}
	}
	return res.writeJSON(jsonPath)
}
