// Command lsmbench regenerates the experiment tables of DESIGN.md §3:
// one table per tutorial claim (E1–E13, plus the O1 trace-attribution
// table built from /traces). It also carries the engine benchmarks that
// feed the committed perf trajectory (BENCH_*.json): concurrent writes
// through the group-commit pipeline, point-read/scan/mixed workloads
// over a preloaded key space, and a regression comparator.
//
// Usage:
//
//	lsmbench -exp all            # run everything at full scale
//	lsmbench -exp E1,E3 -scale 0.25
//	lsmbench -writers 8 -ops 200000 -sync   # group-commit throughput
//	lsmbench -mode get -readers 8 -keys 200000 -dist zipfian -warm  # read path
//	lsmbench -serve -conns 8 -ops 100000 -sync   # same store, over TCP
//	lsmbench -addr 127.0.0.1:4700 -conns 8       # against a live server
//	lsmbench -addr 127.0.0.1:4700 -replicas 127.0.0.1:4701 -conns 8  # + replica readback
//	lsmbench -baseline -json BENCH_new.json      # pinned trajectory suite
//	lsmbench -compare BENCH_0.json BENCH_1.json  # regression gate
//
// Flag combinations are validated up front: a flag that does not apply
// to the selected mode is a usage error, never silently ignored.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/benchcmp"
	"lsmlab/internal/client"
	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/experiments"
	"lsmlab/internal/metrics"
	"lsmlab/internal/partition"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (E1..E13, O1) or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = documented size)")

		writers   = flag.Int("writers", 0, "run the concurrent write benchmark with this many writers")
		ops       = flag.Int("ops", 100000, "total operations for writers/net/read modes")
		valueSize = flag.Int("value", 100, "value size in bytes")
		batchSize = flag.Int("batch", 1, "puts per Apply batch for -writers mode")
		shards    = flag.Int("shards", 0, "run -writers against a sharded store with this many hash-routed shards (0 = flat single tree)")
		syncWAL   = flag.Bool("sync", false, "fsync the WAL on every commit")
		syncDelay = flag.Duration("syncdelay", 0, "modeled fsync latency on the in-memory fs (e.g. 100us)")
		dir       = flag.String("dir", "", "OS directory (default: in-memory fs; real fsync latency needs a real disk)")

		_        = flag.Bool("serve", false, "network mode: serve the bench store in-process and write over TCP")
		addr     = flag.String("addr", "", "network mode: benchmark an external lsmserved at this address")
		conns    = flag.Int("conns", 1, "network mode: number of client connections")
		replicas = flag.String("replicas", "", "network mode: comma-separated follower addresses; after the put phase, reads fan out across them with read-your-writes enforced")
		depth    = flag.Int("depth", 1, "network mode: pipelined requests in flight per connection (1 = synchronous)")
		tenants  = flag.Int("tenants", 0, "network mode: overload bench with this many tenants; tenant t0 hammers at 4x quota, the rest stay under it")
		quota    = flag.String("quota", "", "network mode: per-tenant quota 'ops=N[,bytes=N][,burst=SEC]' for -tenants (with -serve it is enforced in-process; with -addr it only sets the pacing targets)")

		mode    = flag.String("mode", "", "read benchmark: get|scan|mixed over a preloaded key space")
		readers = flag.Int("readers", 8, "read mode: concurrent reader goroutines")
		keys    = flag.Int64("keys", 200000, "read mode: distinct keys preloaded before measuring")
		dist    = flag.String("dist", "zipfian", "read mode: key popularity, uniform|zipfian")
		warm    = flag.Bool("warm", true, "read mode: warm the block cache with one full pass before measuring")
		bits    = flag.Float64("bits", 10, "read mode: bloom filter bits per key")
		scanLen = flag.Int("scanlen", 16, "read mode: entries per scan (scan/mixed)")

		_ = flag.Bool("baseline", false, "run the pinned perf-trajectory suite and write it to -json")

		_              = flag.Bool("compare", false, "compare two BENCH_*.json files: lsmbench -compare old.json new.json")
		thresholdScale = flag.Float64("threshold-scale", 1, "multiply -compare regression tolerances (CI uses 2)")
		markdown       = flag.Bool("markdown", false, "render the -compare table as markdown")

		jsonPath = flag.String("json", "", "write a machine-readable result summary to this file")
	)
	flag.Parse()

	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	benchMode, err := validateFlags(explicit)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsmbench: %v\n", err)
		os.Exit(2)
	}

	switch benchMode {
	case modeCompare:
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "lsmbench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		failed, err := benchcmp.CompareFiles(args[0], args[1],
			benchcmp.Options{Scale: *thresholdScale}, os.Stdout, *markdown)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmbench:", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return

	case modeBaseline:
		if err := runBaseline(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lsmbench:", err)
			os.Exit(1)
		}
		return

	case modeNet:
		if *quota != "" && *tenants <= 0 {
			fmt.Fprintln(os.Stderr, "lsmbench: -quota requires -tenants")
			os.Exit(2)
		}
		if *tenants > 0 {
			for _, f := range []string{"conns", "depth", "replicas"} {
				if explicit[f] {
					fmt.Fprintf(os.Stderr, "lsmbench: -%s does not apply to the -tenants overload bench\n", f)
					os.Exit(2)
				}
			}
			if err := runNetTenants(*addr, *tenants, *quota, *ops, *valueSize, *syncWAL, *syncDelay, *dir, *jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, "lsmbench:", err)
				os.Exit(1)
			}
			return
		}
		if err := runNet(*addr, *replicas, *conns, *ops, *valueSize, *depth, *syncWAL, *syncDelay, *dir, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lsmbench:", err)
			os.Exit(1)
		}
		return

	case modeWriters:
		if *writers < 1 {
			fmt.Fprintln(os.Stderr, "lsmbench: -writers must be at least 1")
			os.Exit(2)
		}
		if err := runWriters(writersConfig{
			writers: *writers, ops: *ops, valueSize: *valueSize, batchSize: *batchSize,
			syncWAL: *syncWAL, syncDelay: *syncDelay, dir: *dir, shards: *shards,
		}, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lsmbench:", err)
			os.Exit(1)
		}
		return

	case modeRead:
		if err := runRead(readConfig{
			mode: *mode, readers: *readers, ops: *ops, keys: *keys,
			valueSize: *valueSize, dist: *dist, warm: *warm, bits: *bits,
			scanLen: *scanLen, syncWAL: *syncWAL, dir: *dir,
		}, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "lsmbench:", err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

// benchResult is the machine-readable summary written by -json: the
// numbers CI trend lines and the BENCH_*.json trajectory consume
// without scraping the human output.
type benchResult struct {
	Mode       string  `json:"mode"` // "writers", "net", "get", "scan", "mixed"
	Writers    int     `json:"writers,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	Conns      int     `json:"conns,omitempty"`
	Depth      int     `json:"depth,omitempty"`
	Readers    int     `json:"readers,omitempty"`
	Ops        int     `json:"ops"`
	ValueBytes int     `json:"value_bytes"`
	BatchSize  int     `json:"batch_size,omitempty"`
	SyncWAL    bool    `json:"sync_wal"`
	KeySpace   int64   `json:"key_space,omitempty"`
	Dist       string  `json:"dist,omitempty"`
	WarmCache  bool    `json:"warm_cache,omitempty"`
	FilterBits float64 `json:"filter_bits_per_key,omitempty"`
	ScanLen    int     `json:"scan_len,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`

	// AllocsPerOp is the heap-allocation count per operation over the
	// measured phase (runtime.ReadMemStats Mallocs delta / ops) — the
	// CPU-side cost the zero-alloc get-path work drives down.
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Primary-operation latency percentiles, nanoseconds (puts in
	// writers/net mode, gets in get/mixed mode, scans in scan mode).
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`

	// Read modes: operation counts and access-path attribution for the
	// measured phase only (interval deltas, not engine totals).
	GetOps           int64   `json:"get_ops,omitempty"`
	ScanOps          int64   `json:"scan_ops,omitempty"`
	PutOps           int64   `json:"put_ops,omitempty"`
	HitRate          float64 `json:"get_hit_rate,omitempty"`
	FilterNegatives  int64   `json:"filter_negatives,omitempty"`
	FilterFalsePos   int64   `json:"filter_false_positives,omitempty"`
	CacheHits        int64   `json:"cache_hits,omitempty"`
	CacheMisses      int64   `json:"cache_misses,omitempty"`
	CacheHitRate     float64 `json:"cache_hit_rate,omitempty"`
	BlockReads       int64   `json:"block_reads,omitempty"`
	BlockReadsCached int64   `json:"block_reads_cached,omitempty"`

	// Multi-tenant overload bench (-tenants): the enforced per-tenant
	// quota and one row per tenant.
	QuotaOpsPerSec float64        `json:"quota_ops_per_sec,omitempty"`
	Tenants        []tenantResult `json:"tenants,omitempty"`

	// Engine-side totals (zero when benchmarking an external server).
	WriteAmp           float64 `json:"write_amplification"`
	ReadAmp            float64 `json:"read_amplification"`
	BytesIngested      int64   `json:"bytes_ingested"`
	WALBytes           int64   `json:"wal_bytes"`
	FlushBytes         int64   `json:"flush_bytes"`
	CompactionBytesOut int64   `json:"compaction_bytes_written"`
	AvgCommitGroup     float64 `json:"avg_commit_group_size"`
	WALSyncs           int64   `json:"wal_syncs"`
	WALSyncsSaved      int64   `json:"wal_syncs_saved"`
}

// fillEngine copies the engine-side totals from a metrics snapshot.
func (r *benchResult) fillEngine(m metrics.Snapshot) {
	r.WriteAmp = m.WriteAmplification()
	r.BytesIngested = m.BytesIngested
	r.WALBytes = m.WALBytes
	r.FlushBytes = m.FlushBytes
	r.CompactionBytesOut = m.CompactionBytesWritten
	r.AvgCommitGroup = m.AvgCommitGroupSize()
	r.WALSyncs = m.WALSyncs
	r.WALSyncsSaved = m.WALSyncsSaved
	if r.ReadAmp == 0 {
		r.ReadAmp = m.ReadAmplification()
	}
}

// fillReadPath copies the access-path attribution from an interval
// delta of the engine counters (measured phase only, excluding preload
// and warmup).
func (r *benchResult) fillReadPath(d metrics.Snapshot) {
	r.ReadAmp = d.ReadAmplification()
	r.HitRate = 0
	if d.Gets > 0 {
		r.HitRate = float64(d.GetHits) / float64(d.Gets)
	}
	r.FilterNegatives = d.FilterNegatives
	r.FilterFalsePos = d.FilterFalsePos
	r.CacheHits = d.CacheHits
	r.CacheMisses = d.CacheMisses
	r.CacheHitRate = d.CacheHitRate()
	r.BlockReads = d.BlockReads
	r.BlockReadsCached = d.BlockReadsCached
}

// fillLatency copies the percentile summary from a histogram snapshot.
func (r *benchResult) fillLatency(h metrics.HistogramSnapshot) {
	r.P50Ns = h.Quantile(0.5)
	r.P99Ns = h.Quantile(0.99)
	r.P999Ns = h.Quantile(0.999)
	r.MaxNs = h.Max
}

// writeJSON persists the summary (no-op when -json was not given).
func (r *benchResult) writeJSON(path string) error {
	if path == "" {
		return nil
	}
	return writeJSONFile(path, r)
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writersConfig parameterizes the concurrent write benchmark. The
// shard/shape fields let the pinned baseline reproduce the sharded
// scaling configuration exactly (see runBaseline).
type writersConfig struct {
	writers   int
	ops       int
	valueSize int
	batchSize int
	syncWAL   bool
	syncDelay time.Duration
	dir       string

	shards       int   // >0 opens a partition.Store with this many shards
	bufferBytes  int   // 0 = engine default
	sizeRatio    int   // 0 = engine default
	leveled      bool  // force compaction.Leveling{}
	compactionBW int64 // per-compaction write throttle, bytes/sec (0 = unthrottled)
}

// runWriters executes the write benchmark and writes the optional JSON
// summary.
func runWriters(cfg writersConfig, jsonPath string) error {
	res, err := writersBench(cfg, os.Stdout)
	if err != nil {
		return err
	}
	return res.writeJSON(jsonPath)
}

// writeEngine is what the write benchmark needs from a store; both a
// flat *core.DB and a sharded *partition.Store satisfy it.
type writeEngine interface {
	Apply(b *core.Batch) error
	Metrics() metrics.Snapshot
	Latencies() metrics.LatencySnapshot
	Close() error
}

// writersBench drives cfg.writers goroutines over disjoint key ranges
// through one store and reports aggregate throughput plus the commit
// pipeline's coalescing statistics. The default in-memory filesystem
// keeps the numbers about the engine; pass dir to pay real fsync
// latency, which is where group commit coalesces hardest. With
// cfg.shards > 0 the store is a hash-routed partition.Store, so each
// batch is split and committed through per-shard pipelines.
func writersBench(cfg writersConfig, w io.Writer) (benchResult, error) {
	if cfg.batchSize < 1 {
		cfg.batchSize = 1
	}
	var fs vfs.FS
	dbDir := "bench-db"
	if cfg.dir != "" {
		fs = vfs.NewOS()
		dbDir = cfg.dir
	} else {
		mem := vfs.NewMem()
		mem.SetSyncDelay(cfg.syncDelay)
		fs = mem
	}
	opts := core.DefaultOptions(fs, dbDir)
	opts.SyncWAL = cfg.syncWAL
	opts.RecordLatencies = true
	if cfg.bufferBytes > 0 {
		opts.BufferBytes = cfg.bufferBytes
	}
	if cfg.sizeRatio > 1 {
		opts.SizeRatio = cfg.sizeRatio
	}
	if cfg.leveled {
		opts.Layout = compaction.Leveling{}
	}
	if cfg.compactionBW > 0 {
		opts.CompactionBandwidthBytesPerSec = cfg.compactionBW
	}
	var db writeEngine
	var err error
	if cfg.shards > 0 {
		db, err = partition.Open(opts, cfg.shards)
	} else {
		db, err = core.Open(opts)
	}
	if err != nil {
		return benchResult{}, err
	}
	defer db.Close()

	perWriter := cfg.ops / cfg.writers
	var wg sync.WaitGroup
	errs := make([]error, cfg.writers)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for wr := 0; wr < cfg.writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			val := make([]byte, cfg.valueSize)
			base := int64(wr * perWriter)
			var batch core.Batch
			for i := 0; i < perWriter; i += cfg.batchSize {
				batch.Reset()
				for j := 0; j < cfg.batchSize && i+j < perWriter; j++ {
					batch.Put(workload.Key(base+int64(i+j)), val)
				}
				if err := db.Apply(&batch); err != nil {
					errs[wr] = err
					return
				}
			}
		}(wr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	for _, err := range errs {
		if err != nil {
			return benchResult{}, err
		}
	}

	m := db.Metrics()
	total := perWriter * cfg.writers
	fmt.Fprintf(w, "writers=%d ops=%d value=%dB batch=%d sync=%v shards=%d\n",
		cfg.writers, total, cfg.valueSize, cfg.batchSize, cfg.syncWAL, cfg.shards)
	fmt.Fprintf(w, "elapsed=%.2fs throughput=%.0f ops/s\n",
		elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Fprintf(w, "commit_groups=%d batches=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d\n",
		m.CommitGroups, m.CommitBatches, m.AvgCommitGroupSize(),
		m.WALSyncs, m.WALSyncsSaved)
	if gdb, ok := db.(*core.DB); ok {
		gs := gdb.CommitGroupSizes()
		if gs.N > 0 {
			fmt.Fprintf(w, "group size: n=%d mean=%.2f max=%d\n", gs.N, gs.Mean(), gs.Max)
		}
	}
	res := benchResult{
		Mode: "writers", Writers: cfg.writers, Shards: cfg.shards,
		Ops: total, ValueBytes: cfg.valueSize,
		BatchSize: cfg.batchSize, SyncWAL: cfg.syncWAL,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(total) / elapsed.Seconds(),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}
	res.fillEngine(m)
	res.fillLatency(db.Latencies().Put)
	return res, nil
}

// runNet measures put throughput over the wire: conns connections,
// each keeping up to depth requests in flight. With -serve the store
// and server run in this process (so engine coalescing stats are
// reported too); with -addr the target is an external lsmserved.
func runNet(addr, replicas string, conns, ops, valueSize, depth int, syncWAL bool, syncDelay time.Duration, dir, jsonPath string) error {
	if conns < 1 {
		conns = 1
	}
	if depth < 1 {
		depth = 1
	}

	var db *core.DB
	if addr == "" {
		// -serve: host the bench store in-process, same defaults as
		// -writers mode.
		var fs vfs.FS
		dbDir := "bench-db"
		if dir != "" {
			fs = vfs.NewOS()
			dbDir = dir
		} else {
			mem := vfs.NewMem()
			mem.SetSyncDelay(syncDelay)
			fs = mem
		}
		opts := core.DefaultOptions(fs, dbDir)
		opts.SyncWAL = syncWAL
		var err error
		db, err = core.Open(opts)
		if err != nil {
			return err
		}
		defer db.Close()
		srv := server.New(db, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		defer func() {
			srv.Shutdown(10 * time.Second)
			<-serveDone
		}()
		addr = ln.Addr().String()
	}

	cl, err := client.Dial(addr, client.Options{PoolSize: conns})
	if err != nil {
		return err
	}
	defer cl.Close()

	perConn := ops / conns
	val := make([]byte, valueSize)
	var wg sync.WaitGroup
	errs := make([]error, conns)
	var lat metrics.Histogram
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p, err := cl.Pipeline()
			if err != nil {
				errs[c] = err
				return
			}
			base := int64(c * perConn)
			// window holds in-flight futures; latency is enqueue→ack.
			type inflight struct {
				f       *client.Future
				startNs int64
			}
			window := make([]inflight, 0, depth)
			drainOne := func() error {
				in := window[0]
				window = window[1:]
				if err := in.f.Err(); err != nil {
					return err
				}
				lat.RecordSince(in.startNs, time.Now().UnixNano())
				return nil
			}
			for i := 0; i < perConn; i++ {
				if len(window) == depth {
					if err := drainOne(); err != nil {
						errs[c] = err
						return
					}
				}
				f := p.Put(workload.Key(base+int64(i)), val)
				window = append(window, inflight{f, time.Now().UnixNano()})
			}
			for len(window) > 0 {
				if err := drainOne(); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	total := perConn * conns
	res := benchResult{
		Mode: "net", Conns: conns, Depth: depth, Ops: total, ValueBytes: valueSize,
		SyncWAL:    syncWAL,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(total) / elapsed.Seconds(),
	}
	res.fillLatency(lat.Snapshot())
	fmt.Printf("net conns=%d depth=%d ops=%d value=%dB sync=%v addr=%s\n",
		conns, depth, total, valueSize, syncWAL, addr)
	fmt.Printf("elapsed=%.2fs throughput=%.0f ops/s\n",
		elapsed.Seconds(), float64(total)/elapsed.Seconds())
	fmt.Printf("put latency: %s\n", lat.Snapshot())
	if replicas != "" {
		if err := runReplicaReadback(addr, replicas, conns, total, valueSize); err != nil {
			return err
		}
	}
	if db != nil {
		m := db.Metrics()
		res.fillEngine(m)
		fmt.Printf("commit_groups=%d batches=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d\n",
			m.CommitGroups, m.CommitBatches, m.AvgCommitGroupSize(),
			m.WALSyncs, m.WALSyncsSaved)
		gs := db.CommitGroupSizes()
		if gs.N > 0 {
			fmt.Printf("group size: n=%d mean=%.2f max=%d\n", gs.N, gs.Mean(), gs.Max)
		}
	}
	return res.writeJSON(jsonPath)
}

// tenantResult is one tenant's row in the -tenants overload bench:
// offered load, how much of it the server admitted, and the latency of
// the admitted portion.
type tenantResult struct {
	Tenant       string  `json:"tenant"`
	TargetRate   float64 `json:"target_ops_per_sec"`
	Attempted    int     `json:"attempted"`
	Acked        int     `json:"acked"`
	Throttled    int     `json:"throttled"`
	ThrottleRate float64 `json:"throttle_rate"`
	OpsPerSec    float64 `json:"ops_per_sec"` // acked throughput
	P99Ns        int64   `json:"p99_ns"`      // acked put latency

	// RetryAfterNs is the first retry-after hint the server attached to
	// a throttled response (0 when the tenant was never throttled).
	RetryAfterNs int64 `json:"retry_after_ns,omitempty"`
}

// runNetTenants measures overload isolation instead of raw throughput:
// every tenant writes into its own key-prefix namespace against the
// same per-tenant quota, tenant t0 offering 4x its quota and the rest
// staying at half of theirs. A healthy server throttles t0's excess
// (with retry-after hints the bench surfaces rather than sleeps out —
// retries are disabled so every rejection is counted) while the polite
// tenants see no throttles at all. With -serve the quota is enforced by
// an in-process admission controller; with -addr the target server's
// own configuration must match the pacing quota for the numbers to
// mean anything.
func runNetTenants(addr string, tenants int, quotaSpec string, ops, valueSize int, syncWAL bool, syncDelay time.Duration, dir, jsonPath string) error {
	if quotaSpec == "" {
		quotaSpec = "ops=200"
	}
	q, err := admission.ParseQuota(quotaSpec)
	if err != nil {
		return fmt.Errorf("-quota: %w", err)
	}
	if q.OpsPerSec <= 0 {
		return fmt.Errorf("-quota must set ops=N for the -tenants bench")
	}

	var db *core.DB
	if addr == "" {
		// -serve: host the bench store in-process with the quota applied
		// as the per-tenant default, so every tenant gets its own bucket.
		var fs vfs.FS
		dbDir := "bench-db"
		if dir != "" {
			fs = vfs.NewOS()
			dbDir = dir
		} else {
			mem := vfs.NewMem()
			mem.SetSyncDelay(syncDelay)
			fs = mem
		}
		opts := core.DefaultOptions(fs, dbDir)
		opts.SyncWAL = syncWAL
		db, err = core.Open(opts)
		if err != nil {
			return err
		}
		defer db.Close()
		srv := server.New(db, server.Options{
			Admission: admission.NewController(admission.Config{Default: q}),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		defer func() {
			srv.Shutdown(10 * time.Second)
			<-serveDone
		}()
		addr = ln.Addr().String()
	}

	// Offered rates: t0 hammers, everyone else stays comfortably under
	// quota. The attempt counts are sized so the total offered load is
	// roughly -ops spread over one shared wall-clock window.
	rates := make([]float64, tenants)
	rates[0] = 4 * q.OpsPerSec
	var sum float64
	for i := range rates {
		if i > 0 {
			rates[i] = q.OpsPerSec / 2
		}
		sum += rates[i]
	}
	window := float64(ops) / sum // seconds

	results := make([]tenantResult, tenants)
	var agg metrics.Histogram
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	start := time.Now()
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			// One connection per tenant; retries disabled so every
			// StatusThrottled is observed and counted, not slept out.
			cl, err := client.Dial(addr, client.Options{PoolSize: 1, MaxRetries: -1})
			if err != nil {
				errs[tn] = err
				return
			}
			defer cl.Close()
			rate := rates[tn]
			attempts := int(rate * window)
			if attempts < 1 {
				attempts = 1
			}
			interval := time.Duration(float64(time.Second) / rate)
			prefix := fmt.Sprintf("t%d/", tn)
			val := make([]byte, valueSize)
			var lat metrics.Histogram
			acked, throttled := 0, 0
			var hint time.Duration
			t0 := time.Now()
			for i := 0; i < attempts; i++ {
				// Absolute schedule: pacing does not drift when puts or
				// throttle round-trips are slow.
				if d := time.Until(t0.Add(time.Duration(i) * interval)); d > 0 {
					time.Sleep(d)
				}
				key := append([]byte(prefix), workload.Key(int64(i))...)
				sentNs := time.Now().UnixNano()
				err := cl.Put(key, val)
				switch {
				case errors.Is(err, client.ErrThrottled):
					throttled++
					var te *client.ThrottledError
					if hint == 0 && errors.As(err, &te) {
						hint = te.RetryAfter
					}
				case err != nil:
					errs[tn] = fmt.Errorf("tenant t%d put %d: %w", tn, i, err)
					return
				default:
					acked++
					now := time.Now().UnixNano()
					lat.RecordSince(sentNs, now)
					agg.RecordSince(sentNs, now)
				}
			}
			elapsed := time.Since(t0).Seconds()
			results[tn] = tenantResult{
				Tenant:       fmt.Sprintf("t%d", tn),
				TargetRate:   rate,
				Attempted:    attempts,
				Acked:        acked,
				Throttled:    throttled,
				ThrottleRate: float64(throttled) / float64(attempts),
				OpsPerSec:    float64(acked) / elapsed,
				P99Ns:        lat.Snapshot().Quantile(0.99),
				RetryAfterNs: int64(hint),
			}
		}(tn)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	total, acked := 0, 0
	for _, r := range results {
		total += r.Attempted
		acked += r.Acked
	}
	fmt.Printf("net-tenants tenants=%d quota_ops=%.0f attempted=%d acked=%d value=%dB sync=%v addr=%s\n",
		tenants, q.OpsPerSec, total, acked, valueSize, syncWAL, addr)
	fmt.Printf("elapsed=%.2fs acked throughput=%.0f ops/s\n",
		elapsed.Seconds(), float64(acked)/elapsed.Seconds())
	for _, r := range results {
		fmt.Printf("tenant %s: target=%.0f/s attempted=%d acked=%d throttled=%d throttle_rate=%.2f retry_after=%s acked_rate=%.0f/s p99=%s\n",
			r.Tenant, r.TargetRate, r.Attempted, r.Acked, r.Throttled,
			r.ThrottleRate, time.Duration(r.RetryAfterNs), r.OpsPerSec, time.Duration(r.P99Ns))
	}

	res := benchResult{
		Mode: "net-tenants", Ops: total, ValueBytes: valueSize, SyncWAL: syncWAL,
		ElapsedSec: elapsed.Seconds(), OpsPerSec: float64(acked) / elapsed.Seconds(),
		QuotaOpsPerSec: q.OpsPerSec, Tenants: results,
	}
	res.fillLatency(agg.Snapshot())
	if db != nil {
		res.fillEngine(db.Metrics())
	}
	return res.writeJSON(jsonPath)
}

// runReplicaReadback reads the just-written key space back through the
// replica fan-out client and reports where the reads landed: served by
// a fresh-enough follower, retried on the leader after a stale answer,
// or fallen back after a replica error. Read-your-writes holds
// throughout — a follower answer is only used when its watermark
// dominates the client's write token.
func runReplicaReadback(addr, replicas string, conns, total, valueSize int) error {
	addrs := strings.Split(replicas, ",")
	rcl, err := client.Dial(addr, client.Options{Replicas: addrs, PoolSize: conns})
	if err != nil {
		return err
	}
	defer rcl.Close()
	// One write refreshes the token so the readback is constrained by
	// everything this process wrote.
	if err := rcl.Put(workload.Key(0), make([]byte, valueSize)); err != nil {
		return err
	}
	reads := total
	if reads > 50000 {
		reads = 50000
	}
	perConn := reads / conns
	if perConn == 0 {
		perConn = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, conns)
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perConn; i++ {
				key := workload.Key(int64((c*perConn + i) % total))
				if _, err := rcl.Get(key); err != nil {
					errs[c] = fmt.Errorf("readback %s: %w", key, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	st := rcl.ReplicaStats()
	n := perConn * conns
	fmt.Printf("replica readback: reads=%d elapsed=%.2fs throughput=%.0f ops/s replicas=%d\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds(), len(addrs))
	fmt.Printf("replica readback: served=%d stale_fallback=%d errors=%d\n",
		st.Served, st.Stale, st.Errors)
	return nil
}
