// Command lsmbench regenerates the experiment tables of DESIGN.md §3:
// one table per tutorial claim (E1–E12).
//
// Usage:
//
//	lsmbench -exp all            # run everything at full scale
//	lsmbench -exp E1,E3 -scale 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lsmlab/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (E1..E12) or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = documented size)")
	)
	flag.Parse()

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
