// Command lsmtune navigates the LSM design space for a workload mix:
// it prints the cost-model recommendation (nominal), the Endure-style
// robust recommendation, and the read-write tradeoff curve around them
// (tutorial Module III).
//
// Usage:
//
//	lsmtune -inserts 0.8 -reads 0.15 -scans 0.05 \
//	        -entries 100000000 -entry-bytes 128 -memory-mb 256 -rho 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"lsmlab/internal/tuning"
)

func main() {
	var (
		inserts    = flag.Float64("inserts", 0.5, "fraction of inserts/updates")
		reads      = flag.Float64("reads", 0.4, "fraction of existing-key point lookups")
		zeroReads  = flag.Float64("zero-reads", 0.05, "fraction of zero-result lookups")
		scans      = flag.Float64("scans", 0.05, "fraction of short range scans")
		longScans  = flag.Float64("long-scans", 0, "fraction of long range scans")
		entries    = flag.Int64("entries", 100_000_000, "total live entries")
		entryBytes = flag.Int64("entry-bytes", 128, "average entry size")
		memoryMB   = flag.Int64("memory-mb", 256, "memory budget for buffer+filters")
		rho        = flag.Float64("rho", 0.3, "workload uncertainty radius (L1) for robust tuning")
	)
	flag.Parse()

	sys := tuning.SystemParams{NumEntries: *entries, EntryBytes: *entryBytes, PageBytes: 4096}
	w := tuning.Workload{
		Inserts:    *inserts,
		PointExist: *reads,
		PointZero:  *zeroReads,
		ShortScans: *scans,
		LongScans:  *longScans,
	}
	mem := *memoryMB << 20
	space := tuning.DefaultSearchSpace()

	nominal := tuning.Navigate(sys, mem, w, space)
	robust := tuning.NavigateRobust(sys, mem, w, *rho, space)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tuning\tsize_ratio\tlayout\tbuffer_frac\texpected_cost")
	for _, r := range []struct {
		name string
		rec  tuning.Recommendation
	}{{"nominal", nominal}, {"robust (min-max)", robust}} {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f\t%.3f\n",
			r.name, r.rec.Config.SizeRatio, r.rec.Config.Layout,
			r.rec.Config.BufferFraction, tuning.Cost(r.rec.Config, sys, w.Normalize()))
	}
	tw.Flush()

	fmt.Println("\nread-write tradeoff curve (leveling, buffer_frac 0.2):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "T\twrite_cost_io\tpoint_read_cost_io")
	for _, p := range tuning.TradeoffCurve(sys, mem, tuning.LayoutLeveling, space.SizeRatios) {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", p.Config.SizeRatio, p.WriteCost, p.ReadCost)
	}
	tw.Flush()

	// Memory-wall navigation (§2.3.1): split the budget three ways for
	// the nominal shape.
	cw := tuning.CacheWorkload{
		Workload:  w,
		DataBytes: *entries * *entryBytes,
		Skew:      0.8,
	}
	split := tuning.NavigateMemory(sys, cw, mem, nominal.Config.SizeRatio, nominal.Config.Layout)
	fmt.Printf("\nmemory split for the nominal shape (buffer/filters/cache, skew 0.8):\n")
	fmt.Printf("  buffer %d MiB, filters %d MiB, cache %d MiB (model cost %.3f I/O/op)\n",
		split.BufferBytes>>20, split.FilterBytes>>20, split.CacheBytes>>20, split.Cost)
}
