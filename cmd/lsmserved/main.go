// Command lsmserved serves an lsmlab database over TCP, speaking the
// length-prefixed binary protocol of internal/wire. Pipelined writes
// from many connections funnel into the engine's leader-based group
// commit, so network concurrency turns directly into WAL batching.
//
// Usage:
//
//	lsmserved -db /var/lib/lsm -addr :4700
//
// On SIGTERM or SIGINT the server drains gracefully: it stops
// accepting, finishes every in-flight request, optionally writes a
// checkpoint, and closes the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/partition"
	"lsmlab/internal/replica"
	"lsmlab/internal/server"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
)

// engine is what serving needs beyond server.Engine: the shutdown path
// checkpoints and closes the store. Both *core.DB and *partition.Store
// satisfy it.
type engine interface {
	server.Engine
	Checkpoint(dir string) error
	Close() error
}

// openEngine opens the store in the form the -shards flag and the
// directory layout agree on. Auto (0) reopens whatever is there — a
// sharded layout with its own count, anything else as a flat tree — so
// a restart never needs the original flag. An explicit count refuses a
// mismatched layout rather than misrouting keys.
func openEngine(opts core.Options, shards int) (engine, error) {
	derived, derr := partition.DeriveShards(opts.FS, opts.Path)
	switch {
	case shards == 0:
		if derr == nil && derived > 0 {
			return partition.Open(opts, derived)
		}
		return core.Open(opts) // fresh or flat layout
	case shards == 1:
		if derived > 0 {
			return nil, fmt.Errorf("%w: requested 1, directory %s has %d", partition.ErrShardMismatch, opts.Path, derived)
		}
		return core.Open(opts)
	default:
		return partition.Open(opts, shards)
	}
}

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], sig, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lsmserved:", err)
		os.Exit(1)
	}
}

// run is main minus the process glue, so tests can drive the full
// serve → signal → drain → checkpoint → close lifecycle in-process.
func run(args []string, sig <-chan os.Signal, out io.Writer) error {
	fs := flag.NewFlagSet("lsmserved", flag.ContinueOnError)
	var (
		dbPath        = fs.String("db", "", "database directory (required)")
		shards        = fs.Int("shards", 0, "shard count: N>1 serves N hash-routed LSM shards, 1 forces a flat single tree, 0 derives from the existing directory layout (flat when fresh)")
		follow        = fs.String("follow", "", "run as a read replica of the leader at this address: the store opens read-only, streams the leader's WAL, and converges through Merkle anti-entropy")
		followID      = fs.String("follow-id", "", "stable follower identity reported to the leader (default: the -db path)")
		followSession = fs.Duration("follow-session", 0, "replication session length: periodic anti-entropy (silent bit-rot detection and repair) runs at each session boundary (default 30s)")
		addr          = fs.String("addr", "127.0.0.1:4700", "listen address (host:port; port 0 picks one)")
		addrFile      = fs.String("addr-file", "", "write the bound address to this file (for port-0 discovery)")
		maxConns      = fs.Int("max-conns", 256, "maximum concurrent connections")
		maxReqBytes   = fs.Int("max-request-bytes", 0, "maximum request frame size (default 4MiB)")
		writeTimeout  = fs.Duration("write-timeout", 10*time.Second, "per-write slow-client timeout")
		reqTimeout    = fs.Duration("request-timeout", 0, "per-request execution budget (0 = unlimited)")
		idleTimeout   = fs.Duration("idle-timeout", 0, "drop connections idle this long (0 = never)")
		grace         = fs.Duration("grace", 30*time.Second, "drain budget on shutdown before severing connections")
		checkpointDir = fs.String("checkpoint-dir", "", "write a checkpoint here after draining (optional)")
		strategy      = fs.String("strategy", "", "compaction strategy, e.g. 'lazy-leveling(4)/partial/tombstone-density'")
		sizeRatio     = fs.Int("T", 0, "size ratio between level capacities (default 10)")
		syncWAL       = fs.Bool("sync-wal", true, "fsync the WAL on commit (group commit amortizes the cost)")
		bufferBytes   = fs.Int("buffer-bytes", 0, "memtable size that triggers a flush (default 1MiB; tiny values force churn for tests)")
		cacheBytes    = fs.Int("cache-bytes", -1, "block cache capacity (-1 = engine default 8MiB, 0 = disabled)")
		recordLat     = fs.Bool("record-latencies", true, "maintain per-operation latency histograms (stats -v, /metrics)")
		debugAddr     = fs.String("debug-addr", "", "HTTP debug listener: /metrics, /healthz, /events, /traces, /debug/pprof (off when empty)")
		debugAddrFile = fs.String("debug-addr-file", "", "write the bound debug address to this file (for port-0 discovery)")
		traceSample   = fs.Int("trace-sample", 0, "retain every Nth request span (1 = all, 0 = only slow/wire-traced)")
		traceSlow     = fs.Duration("trace-slow", 0, "always retain spans at least this slow (0 = off)")
		traceRing     = fs.Int("trace-ring", 1024, "capacity of the captured-span ring served at /traces")
		quotaFile     = fs.String("quota-file", "", "JSON quota config file: {\"default\":{...},\"global\":{...},\"tenants\":{name:{...}}} with ops_per_sec/bytes_per_sec/burst_sec fields")
		stallTimeout  = fs.Duration("stall-timeout", 0, "abort writes stalled on backpressure longer than this, answering them with a retryable throttle instead of blocking the connection (0 = block until room)")
	)
	var tenantQuotas []string
	fs.Func("tenant-quota", "per-tenant quota 'name:ops=N,bytes=N[,burst=SEC]' (repeatable; the names 'default' and 'global' set the per-tenant default and the server-wide cap)", func(v string) error {
		tenantQuotas = append(tenantQuotas, v)
		return nil
	})
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("-db is required")
	}

	// Quotas: the file (if any) is the base, -tenant-quota flags layer
	// on top so one tenant can be tweaked without rewriting the file.
	var admCfg admission.Config
	if *quotaFile != "" {
		data, err := os.ReadFile(*quotaFile)
		if err != nil {
			return err
		}
		if admCfg, err = admission.ParseConfig(data); err != nil {
			return fmt.Errorf("-quota-file: %w", err)
		}
	}
	for _, spec := range tenantQuotas {
		name, qs, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-tenant-quota %q: want name:ops=N,bytes=N", spec)
		}
		q, err := admission.ParseQuota(qs)
		if err != nil {
			return fmt.Errorf("-tenant-quota %q: %w", spec, err)
		}
		switch name {
		case "default":
			admCfg.Default = q
		case "global":
			admCfg.Global = q
		default:
			if admCfg.Tenants == nil {
				admCfg.Tenants = make(map[string]admission.Quota)
			}
			admCfg.Tenants[name] = q
		}
	}
	controller := admission.NewController(admCfg)

	opts := core.DefaultOptions(vfs.NewOS(), *dbPath)
	opts.StallTimeout = *stallTimeout
	opts.SyncWAL = *syncWAL
	opts.RecordLatencies = *recordLat
	if *bufferBytes > 0 {
		opts.BufferBytes = *bufferBytes
	}
	if *cacheBytes >= 0 {
		opts.CacheBytes = *cacheBytes
	}
	ring := events.NewRing(4096)
	opts.EventListener = ring
	// The tracer is always attached: with no sampling and no slow
	// threshold it retains nothing on its own, but wire-propagated
	// trace ids from clients still land spans in the /traces ring.
	tracer := trace.New(trace.Options{
		SampleEvery: *traceSample,
		SlowNs:      int64(*traceSlow),
		RingSize:    *traceRing,
	})
	opts.Tracer = tracer
	if *strategy != "" {
		s, err := compaction.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		opts.Layout = s.Layout
		opts.Granularity = s.Granularity
		opts.MovePolicy = s.MovePolicy
	}
	if *sizeRatio > 1 {
		opts.SizeRatio = *sizeRatio
	}
	if *follow != "" {
		if opts.ValueSeparationThreshold > 0 {
			return fmt.Errorf("-follow does not support value separation (the leader's value-log pointers are local to it)")
		}
		opts.Replica = true
	}
	db, err := openEngine(opts, *shards)
	if err != nil {
		return err
	}
	defer db.Close()

	// Replication sees the engine as its constituent trees in shard
	// order: a flat store is the one-shard case.
	var shardDBs []*core.DB
	switch e := db.(type) {
	case *core.DB:
		shardDBs = []*core.DB{e}
	case *partition.Store:
		for i := 0; i < e.NumShards(); i++ {
			shardDBs = append(shardDBs, e.Partition(i))
		}
	}

	var (
		serveDB server.Engine = db
		repl    server.Replicator
		recv    *replica.Receiver
	)
	if *follow == "" {
		// Every leader can be followed; the hook is idle until a
		// follower subscribes.
		repl = replica.NewLeader(shardDBs, replica.LeaderOptions{})
	} else {
		recv, err = replica.NewReceiver(replica.ReceiverOptions{
			Leader:        *follow,
			ID:            *followID,
			SessionLength: *followSession,
			FS:            opts.FS,
			Dir:           *dbPath,
			Shards:        shardDBs,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, "lsmserved: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		recv.Start()
		defer recv.Stop()
		// Serve reads through the receiver's applied vector so client
		// read-your-writes tokens compare against leader sequences.
		serveDB = replica.NewEngine(db, recv)
	}

	srv := server.New(serveDB, server.Options{
		MaxConns:        *maxConns,
		MaxRequestBytes: *maxReqBytes,
		WriteTimeout:    *writeTimeout,
		RequestTimeout:  *reqTimeout,
		IdleTimeout:     *idleTimeout,
		Repl:            repl,
		EventListener:   ring,
		Admission:       controller,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(out, "lsmserved: serving %s on %s\n", *dbPath, bound)
	if controller.Enforcing() {
		fmt.Fprintln(out, "lsmserved: admission control enforcing tenant quotas")
	}
	if *follow != "" {
		fmt.Fprintf(out, "lsmserved: read replica following %s\n", *follow)
	}

	// The debug plane listens separately so operators can firewall it
	// apart from the data port; it only reads, so it drains trivially.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		debugBound := dln.Addr().String()
		if *debugAddrFile != "" {
			if err := os.WriteFile(*debugAddrFile, []byte(debugBound), 0o644); err != nil {
				ln.Close()
				dln.Close()
				return err
			}
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler(ring, tracer)}
		go debugSrv.Serve(dln)
		fmt.Fprintf(out, "lsmserved: debug plane on http://%s\n", debugBound)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "lsmserved: %v: draining (grace %v)\n", s, *grace)
	}

	// Drain: stop accepting, finish in-flight requests, flush
	// responses; then checkpoint (if asked) and close the store.
	if err := srv.Shutdown(*grace); err != nil {
		fmt.Fprintf(out, "lsmserved: drain: %v\n", err)
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(ctx)
		cancel()
	}
	if err := <-serveErr; err != nil {
		return err
	}
	if recv != nil {
		// Stop replication before the store closes: the final ack cycle
		// syncs the WAL and persists the applied watermark.
		recv.Stop()
	}
	if *checkpointDir != "" {
		if err := db.Checkpoint(*checkpointDir); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		fmt.Fprintf(out, "lsmserved: checkpoint written to %s\n", *checkpointDir)
	}
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Fprintln(out, "lsmserved: closed cleanly")
	return nil
}
