package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

// TestSigtermDrainsCheckpointsAndCloses drives the full lifecycle
// in-process: serve, take writes, SIGTERM, then verify the drain
// completed, the checkpoint captured the acknowledged writes, and the
// store was closed cleanly (reopenable without WAL contents lost).
func TestSigtermDrainsCheckpointsAndCloses(t *testing.T) {
	dir := t.TempDir()
	dbDir := filepath.Join(dir, "db")
	ckptDir := filepath.Join(dir, "ckpt")
	addrFile := filepath.Join(dir, "addr")

	sig := make(chan os.Signal, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-db", dbDir,
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-checkpoint-dir", ckptDir,
			"-grace", "5s",
		}, sig, &out)
	}()

	// Discover the bound address.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote %s; output:\n%s", addrFile, out.String())
	}

	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get([]byte("k1")); err != nil || string(v) != "v1" {
		t.Fatalf("get over the wire: %q %v", v, err)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM; output:\n%s", out.String())
	}
	cl.Close()

	for _, want := range []string{"draining", "checkpoint written", "closed cleanly"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// The checkpoint holds the acknowledged writes.
	ck, err := core.Open(core.DefaultOptions(vfs.NewOS(), ckptDir))
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		if v, err := ck.Get([]byte(k)); err != nil || string(v) != want {
			t.Errorf("checkpoint %s: %q %v", k, v, err)
		}
	}
	ck.Close()

	// The store itself closed cleanly and reopens with the data.
	db, err := core.Open(core.DefaultOptions(vfs.NewOS(), dbDir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if v, err := db.Get([]byte("k2")); err != nil || string(v) != "v2" {
		t.Errorf("reopen k2: %q %v", v, err)
	}
	db.Close()
}

// startServed runs one lsmserved in-process and returns its bound
// address plus the channels to stop it.
func startServed(t *testing.T, dir string, extra ...string) (addr string, sig chan os.Signal, done chan error, out *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(dir, "addr")
	sig = make(chan os.Signal, 1)
	out = &bytes.Buffer{}
	done = make(chan error, 1)
	args := append([]string{
		"-db", filepath.Join(dir, "db"),
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-grace", "5s",
	}, extra...)
	go func() { done <- run(args, sig, out) }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return string(b), sig, done, out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never wrote %s; output:\n%s", addrFile, out.String())
	return "", nil, nil, nil
}

func stopServed(t *testing.T, sig chan os.Signal, done chan error, out *bytes.Buffer) {
	t.Helper()
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM; output:\n%s", out.String())
	}
}

// TestFollowReplicatesAndRefusesWrites runs a leader and a -follow
// replica as two full in-process servers: writes to the leader become
// readable on the follower, and writes to the follower are refused
// with the typed read-only error.
func TestFollowReplicatesAndRefusesWrites(t *testing.T) {
	leaderAddr, lsig, ldone, lout := startServed(t, t.TempDir())
	followerAddr, fsig, fdone, fout := startServed(t, t.TempDir(), "-follow", leaderAddr)

	lc, err := client.Dial(leaderAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if err := lc.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	fc, err := client.Dial(followerAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, err := fc.Get([]byte("c")); err == nil && string(v) == "3" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never replicated to the follower; leader:\n%s\nfollower:\n%s",
				lout.String(), fout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := fc.Put([]byte("x"), []byte("y")); err == nil {
		t.Fatal("follower accepted a direct write")
	} else if !strings.Contains(err.Error(), "read replica") {
		t.Fatalf("want a read-replica refusal, got: %v", err)
	}
	fc.Close()
	lc.Close()
	stopServed(t, fsig, fdone, fout)
	stopServed(t, lsig, ldone, lout)
}

func TestRunRequiresDB(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, nil, &out); err == nil {
		t.Fatal("run without -db should fail")
	}
}
