#!/usr/bin/env bash
# bench_baseline.sh — run the pinned perf-trajectory workload and gate
# it against the newest committed BENCH_<n>.json.
#
# Usage: bench_baseline.sh [output.json]
#
# The committed trajectory files are numbered (BENCH_0.json,
# BENCH_1.json, ...); the highest number is the current baseline. The
# fresh run is written to $1 (default BENCH_ci.json, gitignored) and
# compared with THRESHOLD_SCALE (default 2: double the local noise
# tolerances, since shared CI runners are noisier than the machines
# the committed baselines were measured on). Exit 1 = hard regression.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ci.json}"
scale="${THRESHOLD_SCALE:-2}"

baseline=""
for f in $(ls BENCH_*.json 2>/dev/null | grep -E '^BENCH_[0-9]+\.json$' | sort -t_ -k2 -n); do
    baseline="$f"
done
if [ -z "$baseline" ]; then
    echo "bench_baseline.sh: no committed BENCH_<n>.json baseline found" >&2
    exit 1
fi

echo "== pinned trajectory workload -> $out =="
go run ./cmd/lsmbench -baseline -json "$out"

echo
echo "== compare against committed baseline $baseline (threshold scale $scale) =="
go run ./cmd/lsmbench -compare -threshold-scale "$scale" "$baseline" "$out"
