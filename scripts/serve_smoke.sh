#!/usr/bin/env bash
# End-to-end smoke of the serving layer: build lsmserved + lsmctl,
# start a server, round-trip put/get/scan/stats/compact over the wire
# with lsmctl -addr, then SIGTERM the server and verify it drains,
# checkpoints, exits cleanly, and left a durable store behind.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"
srv_pid=""
lead_pid=""

cleanup() {
  for p in "$srv_pid" "$lead_pid"; do
    if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
      kill -9 "$p" 2>/dev/null || true
    fi
  done
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build =="
go build -o "$bin/lsmserved" ./cmd/lsmserved
go build -o "$bin/lsmctl" ./cmd/lsmctl
go build -o "$bin/lsmbench" ./cmd/lsmbench

echo "== start server =="
"$bin/lsmserved" -db "$work/db" -addr 127.0.0.1:0 -addr-file "$work/addr" \
  -debug-addr 127.0.0.1:0 -debug-addr-file "$work/debug-addr" \
  -trace-sample 1 \
  -checkpoint-dir "$work/ckpt" -grace 10s >"$work/server.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 100); do
  [[ -s "$work/addr" && -s "$work/debug-addr" ]] && break
  kill -0 "$srv_pid" || { cat "$work/server.log"; echo "server died"; exit 1; }
  sleep 0.05
done
[[ -s "$work/addr" ]] || { echo "server never published its address"; exit 1; }
[[ -s "$work/debug-addr" ]] || { echo "server never published its debug address"; exit 1; }
addr="$(cat "$work/addr")"
debug="http://$(cat "$work/debug-addr")"
echo "server at $addr, debug plane at $debug"

ctl() { "$bin/lsmctl" -addr "$addr" "$@"; }

# lint_prom checks a /metrics payload against the Prometheus text-format
# grammar, not just a per-line regex: HELP/TYPE comments must be
# well-formed with a known type and appear at most once per family,
# TYPE must precede the family's first sample, every sample must parse
# as name{labels} value with quoted/escaped label values, every sample
# must belong to a declared family, and no (name,labels) series may
# repeat.
lint_prom() {
  echo "$1" | awk '
    function fail(msg) { printf("prom lint line %d: %s: %s\n", NR, msg, $0); bad=1 }
    /^$/ { next }
    /^# HELP / {
      name=$3
      if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) fail("bad HELP metric name")
      if (NF < 4) fail("HELP without text")
      if (help[name]++) fail("duplicate HELP for family")
      next
    }
    /^# TYPE / {
      name=$3
      if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) fail("bad TYPE metric name")
      if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/) fail("unknown TYPE")
      if (NF != 4) fail("TYPE trailing garbage")
      if (type[name]++) fail("duplicate TYPE for family")
      if (seen[name]) fail("TYPE after samples of its family")
      next
    }
    /^#/ { fail("comment is neither HELP nor TYPE"); next }
    {
      line=$0
      if (match(line, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) { fail("bad metric name"); next }
      name=substr(line, RSTART, RLENGTH)
      rest=substr(line, RLENGTH+1)
      labels=""
      if (substr(rest, 1, 1) == "{") {
        if (match(rest, /^\{[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="([^"\\]|\\.)*")*\}/) == 0) { fail("bad label block"); next }
        labels=substr(rest, RSTART, RLENGTH)
        rest=substr(rest, RLENGTH+1)
      }
      if (rest !~ /^ (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)( [0-9]+)?$/) { fail("bad sample value"); next }
      fam=name
      if (!(fam in type)) {
        t=fam
        sub(/_(sum|count|bucket)$/, "", t)
        if (t in type) fam=t
      }
      if (!(fam in type)) fail("sample family has no TYPE declaration")
      seen[fam]=1
      if (dup[name labels]++) fail("duplicate series")
    }
    END { exit bad }
  ' || { echo "Prometheus text-format lint failed"; exit 1; }
}

echo "== round trips =="
ctl put alpha 1
ctl put alphabet 2
ctl put beta 3
[[ "$(ctl get alpha)" == "1" ]] || { echo "get alpha mismatch"; exit 1; }
ctl delete beta
[[ "$(ctl get beta)" == "(not found)" ]] || { echo "deleted key still readable"; exit 1; }

scan_out="$(ctl scan alpha)"
echo "$scan_out"
[[ "$(echo "$scan_out" | wc -l)" -eq 2 ]] || { echo "scan expected 2 rows"; exit 1; }
echo "$scan_out" | grep -q '^alphabet = 2$' || { echo "scan missing alphabet"; exit 1; }

stats_out="$(ctl stats -v)"
echo "$stats_out" | grep -q 'server: conns_open=' || { echo "stats missing server block"; exit 1; }
echo "$stats_out" | grep -q 'request' || { echo "stats -v missing request latency"; exit 1; }
ctl compact

echo "== debug plane =="
metrics="$(curl -fsS "$debug/metrics")"
echo "$metrics" | grep -q '^lsmlab_puts_total ' || { echo "/metrics missing puts counter"; exit 1; }
echo "$metrics" | grep -q '^lsmlab_degraded 0$' || { echo "/metrics missing degraded gauge"; exit 1; }
echo "$metrics" | grep -q 'lsmlab_get_latency_ns{quantile="0.99"}' || { echo "/metrics missing get quantiles"; exit 1; }
echo "$metrics" | grep -q '^lsmlab_scrubbed_tables_total ' || { echo "/metrics missing scrub counters"; exit 1; }
echo "$metrics" | grep -q 'lsmlab_level_runs{level="0"}' || { echo "/metrics missing level gauges"; exit 1; }
echo "$metrics" | grep -q 'lsmlab_workload_ops{op="put"}' || { echo "/metrics missing workload op mix"; exit 1; }
echo "$metrics" | grep -q '^lsmlab_workload_read_amp ' || { echo "/metrics missing windowed read amp"; exit 1; }
echo "$metrics" | grep -q 'lsmlab_level_bytes_written_window{level="0",reason="flush"}' || { echo "/metrics missing per-level write attribution"; exit 1; }
lint_prom "$metrics"

echo "== workload profile =="
workload_json="$(curl -fsS "$debug/workload")"
echo "$workload_json" | grep -q '"enabled":true' || { echo "/workload profiler not enabled"; exit 1; }
echo "$workload_json" | grep -q '"levels":' || { echo "/workload missing per-level attribution"; exit 1; }
wl_out="$(ctl workload)"
echo "$wl_out"
echo "$wl_out" | grep -q '^window:' || { echo "lsmctl workload missing window line"; exit 1; }
echo "$wl_out" | grep -q '^rum:' || { echo "lsmctl workload missing rum line"; exit 1; }
echo "$wl_out" | grep -q '^L0 ' || { echo "lsmctl workload missing per-level rows"; exit 1; }

curl -fsS "$debug/healthz" | grep -c '"degraded":false' >/dev/null || { echo "/healthz not healthy"; exit 1; }
curl -fsS "$debug/events" | grep -c '"type":"conn-open"' >/dev/null || { echo "/events missing conn lifecycle"; exit 1; }
traces="$(curl -fsS "$debug/traces")"
echo "$traces" | grep -q '"op":"put"' || { echo "/traces missing put spans"; exit 1; }
echo "$traces" | grep -q '"stages"' || { echo "/traces spans carry no stages"; exit 1; }
prof_bytes="$(curl -fsS "$debug/debug/pprof/profile?seconds=1" | wc -c)"
[[ "$prof_bytes" -gt 0 ]] || { echo "pprof profile came back empty"; exit 1; }
echo "debug plane OK (cpu profile ${prof_bytes}B)"

echo "== bench json =="
"$bin/lsmbench" -addr "$addr" -conns 2 -ops 2000 -json "$work/bench.json" >/dev/null
grep -q '"mode": "net"' "$work/bench.json" || { echo "bench json missing mode"; exit 1; }
grep -q '"ops_per_sec"' "$work/bench.json" || { echo "bench json missing throughput"; exit 1; }
grep -q '"p99_ns"' "$work/bench.json" || { echo "bench json missing percentiles"; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$srv_pid"
for _ in $(seq 1 200); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$srv_pid" 2>/dev/null; then
  cat "$work/server.log"; echo "server ignored SIGTERM"; exit 1
fi
wait "$srv_pid" || { cat "$work/server.log"; echo "server exited non-zero"; exit 1; }
srv_pid=""

grep -q 'draining' "$work/server.log" || { cat "$work/server.log"; echo "no drain line"; exit 1; }
grep -q 'checkpoint written' "$work/server.log" || { cat "$work/server.log"; echo "no checkpoint line"; exit 1; }
grep -q 'closed cleanly' "$work/server.log" || { cat "$work/server.log"; echo "no clean close line"; exit 1; }

echo "== durability =="
[[ "$("$bin/lsmctl" -db "$work/db" get alpha)" == "1" ]] || { echo "store lost alpha"; exit 1; }
# The workload command also works against a local open (fresh window).
"$bin/lsmctl" -db "$work/db" workload | grep -q '^window:' || { echo "local lsmctl workload failed"; exit 1; }
[[ "$("$bin/lsmctl" -db "$work/ckpt" get alphabet)" == "2" ]] || { echo "checkpoint lost alphabet"; exit 1; }

echo "== scrub =="
scrub_out="$("$bin/lsmctl" -db "$work/db" scrub)"
echo "$scrub_out"
echo "$scrub_out" | grep -q 'corrupt=0' || { echo "clean store reported corruption"; exit 1; }

# Corrupt a live table in place (4 bytes inside the first data block)
# and require the scrubber to detect and quarantine it without crashing.
sst="$(ls "$work/db"/*.sst | head -n 1)"
printf '\xde\xad\xbe\xef' | dd of="$sst" bs=1 seek=16 conv=notrunc status=none
scrub_out="$("$bin/lsmctl" -db "$work/db" scrub)"
echo "$scrub_out"
echo "$scrub_out" | grep -q 'corrupt=1' || { echo "scrub missed the corrupted table"; exit 1; }
echo "$scrub_out" | grep -q 'quarantined=true' || { echo "corrupted table not quarantined"; exit 1; }
ls "$work/db"/*.corrupt >/dev/null || { echo "no quarantined .corrupt file on disk"; exit 1; }

# Reads after quarantine degrade to honest not-found, never a crash.
post="$("$bin/lsmctl" -db "$work/db" get alpha)"
[[ "$post" == "1" || "$post" == "(not found)" ]] || { echo "read after quarantine returned garbage: $post"; exit 1; }

echo "== live degradation on the debug plane =="
# A second server over a churn-heavy store: tiny memtables force many
# flushes and background compactions. Corrupting the live tables makes
# the next compaction fail with a corruption error, which degrades the
# engine — visible as /healthz 503 and the degraded gauge flipping.
"$bin/lsmserved" -db "$work/db2" -addr 127.0.0.1:0 -addr-file "$work/addr2" \
  -debug-addr 127.0.0.1:0 -debug-addr-file "$work/debug-addr2" \
  -buffer-bytes 2048 -cache-bytes 0 -grace 5s >"$work/server2.log" 2>&1 &
srv_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$work/addr2" && -s "$work/debug-addr2" ]] && break
  kill -0 "$srv_pid" || { cat "$work/server2.log"; echo "server2 died"; exit 1; }
  sleep 0.05
done
addr2="$(cat "$work/addr2")"
debug2="http://$(cat "$work/debug-addr2")"

"$bin/lsmbench" -addr "$addr2" -conns 2 -ops 1000 >/dev/null
for _ in $(seq 1 100); do
  ls "$work/db2"/*.sst >/dev/null 2>&1 && break
  sleep 0.05
done
for sst in "$work/db2"/*.sst; do
  printf '\xde\xad\xbe\xef' | dd of="$sst" bs=1 seek=16 conv=notrunc status=none
done
# More writes trigger fresh flushes and compactions over the now-bad
# tables; tolerate write failures once the engine turns read-only.
"$bin/lsmbench" -addr "$addr2" -conns 2 -ops 2000 >/dev/null 2>&1 || true

degraded_seen=""
for _ in $(seq 1 200); do
  code="$(curl -s -o "$work/healthz2.json" -w '%{http_code}' "$debug2/healthz")"
  if [[ "$code" == "503" ]]; then degraded_seen=1; break; fi
  "$bin/lsmbench" -addr "$addr2" -conns 2 -ops 500 >/dev/null 2>&1 || true
  sleep 0.05
done
[[ -n "$degraded_seen" ]] || { cat "$work/server2.log"; echo "engine never degraded"; exit 1; }
grep -q '"degraded":true' "$work/healthz2.json" || { echo "/healthz 503 without degraded flag"; exit 1; }
grep -q '"kind":"corruption"' "$work/healthz2.json" || { echo "degradation not classified as corruption"; exit 1; }
# Capture before grepping: under pipefail, grep -q quitting at the
# first match would fail curl with a broken pipe.
metrics2="$(curl -fsS "$debug2/metrics")"
lint_prom "$metrics2"
echo "$metrics2" | grep -q '^lsmlab_degraded 1$' || { echo "degraded gauge not 1"; exit 1; }
curl -fsS "$debug2/events" | grep -c '"type":"degraded"' >/dev/null || { echo "/events missing degraded transition"; exit 1; }
kill -9 "$srv_pid" 2>/dev/null || true
srv_pid=""
echo "degradation visible on the debug plane"

echo "== sharded serving =="
# A third server over 4 hash-routed shards: round trips route by key,
# scans merge the shards into one ordered stream, stats carry per-shard
# rows, and the layout survives a restart with the count derived from
# the part-NNN directories.
"$bin/lsmserved" -db "$work/db3" -shards 4 -addr 127.0.0.1:0 -addr-file "$work/addr3" \
  -grace 10s >"$work/server3.log" 2>&1 &
srv_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$work/addr3" ]] && break
  kill -0 "$srv_pid" || { cat "$work/server3.log"; echo "sharded server died"; exit 1; }
  sleep 0.05
done
addr3="$(cat "$work/addr3")"
ctl3() { "$bin/lsmctl" -addr "$addr3" "$@"; }

for i in $(seq 1 32); do ctl3 put "sh-key-$i" "val-$i"; done
[[ "$(ctl3 get sh-key-7)" == "val-7" ]] || { echo "sharded get mismatch"; exit 1; }
ctl3 delete sh-key-7
[[ "$(ctl3 get sh-key-7)" == "(not found)" ]] || { echo "sharded delete not visible"; exit 1; }

scan3="$(ctl3 scan sh-)"
[[ "$(echo "$scan3" | wc -l)" -eq 31 ]] || { echo "$scan3"; echo "sharded scan expected 31 rows"; exit 1; }
echo "$scan3" | LC_ALL=C sort -c || { echo "sharded scan not globally ordered"; exit 1; }

stats3="$(ctl3 stats)"
echo "$stats3" | grep -q 'shard 000:' || { echo "stats missing per-shard rows"; exit 1; }
echo "$stats3" | grep -q 'shard 003:' || { echo "stats missing shard 003 row"; exit 1; }

"$bin/lsmbench" -addr "$addr3" -conns 2 -ops 2000 >/dev/null

# The workload profile aggregates across shards over the wire: the op
# counts sum the per-shard windows and the per-level rows merge.
wl3="$(ctl3 workload)"
echo "$wl3" | grep -q '^window:' || { echo "sharded workload missing window line"; exit 1; }
echo "$wl3" | grep -q '^L0 ' || { echo "sharded workload missing merged level rows"; exit 1; }
echo "$wl3" | grep -Eq '^mix: +get' || { echo "sharded workload missing mix line"; exit 1; }
ctl3 stats | grep -q '^workload: ' || { echo "sharded stats missing workload line"; exit 1; }

kill -TERM "$srv_pid"
for _ in $(seq 1 200); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.05
done
wait "$srv_pid" || { cat "$work/server3.log"; echo "sharded server exited non-zero"; exit 1; }
srv_pid=""
grep -q 'closed cleanly' "$work/server3.log" || { cat "$work/server3.log"; echo "sharded server no clean close"; exit 1; }

echo "== sharded durability + layout guard =="
ls -d "$work/db3"/part-000 "$work/db3"/part-003 >/dev/null || { echo "shard directories missing"; exit 1; }
# lsmctl -db derives the shard count from the layout.
[[ "$("$bin/lsmctl" -db "$work/db3" get sh-key-12)" == "val-12" ]] || { echo "sharded store lost sh-key-12"; exit 1; }
# A reopen with the wrong count must be refused, never silently misroute.
if timeout 10 "$bin/lsmserved" -db "$work/db3" -shards 2 -addr 127.0.0.1:0 >"$work/server4.log" 2>&1; then
  echo "server accepted a mismatched shard count"; exit 1
fi
grep -q 'shard count' "$work/server4.log" || { cat "$work/server4.log"; echo "mismatched reopen gave no shard-count error"; exit 1; }

echo "== sharded scrub =="
# Flush everything to tables, corrupt one inside a single shard, and
# require the scrubber to pin the damage to that shard's row while the
# other shards stay clean — then quarantine it without crashing reads.
"$bin/lsmctl" -db "$work/db3" compact >/dev/null
sst="$(ls "$work/db3"/part-*/*.sst | head -n 1)"
shard_dir="$(basename "$(dirname "$sst")")"
idx="${shard_dir#part-}"
printf '\xde\xad\xbe\xef' | dd of="$sst" bs=1 seek=16 conv=notrunc status=none
scrub3="$("$bin/lsmctl" -db "$work/db3" scrub)"
echo "$scrub3"
echo "$scrub3" | grep -q "^shard $idx scrub: .*corrupt=1" || { echo "scrub missed corruption in $shard_dir"; exit 1; }
[[ "$(echo "$scrub3" | grep -c '^shard .*corrupt=1')" -eq 1 ]] || { echo "corruption bled across shard rows"; exit 1; }
echo "$scrub3" | grep -q "corrupt $shard_dir/.*quarantined=true" || { echo "finding not quarantined under $shard_dir"; exit 1; }
echo "$scrub3" | grep -q '^total scrub: .*corrupt=1' || { echo "total row lost the corruption count"; exit 1; }
ls "$work/db3/$shard_dir"/*.corrupt >/dev/null || { echo "no quarantined .corrupt file in $shard_dir"; exit 1; }
post3="$("$bin/lsmctl" -db "$work/db3" get sh-key-12)"
[[ "$post3" == "val-12" || "$post3" == "(not found)" ]] || { echo "sharded read after quarantine returned garbage: $post3"; exit 1; }
echo "sharded serving OK"

echo "== multi-tenant overload =="
# A sharded sync-WAL server with a per-tenant token-bucket quota. The
# overload bench hammers tenant t0 at 4x its quota while t1 stays
# polite: t0's excess must come back as throttles carrying retry-after
# hints, t1 must not see a single rejection, and the per-tenant
# counters must reach both STATS and /metrics.
"$bin/lsmserved" -db "$work/db5" -shards 2 -addr 127.0.0.1:0 -addr-file "$work/addr5" \
  -debug-addr 127.0.0.1:0 -debug-addr-file "$work/debug-addr5" \
  -tenant-quota 'default:ops=60,burst=0.5' -stall-timeout 500ms \
  -grace 10s >"$work/server5.log" 2>&1 &
srv_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$work/addr5" && -s "$work/debug-addr5" ]] && break
  kill -0 "$srv_pid" || { cat "$work/server5.log"; echo "quota server died"; exit 1; }
  sleep 0.05
done
addr5="$(cat "$work/addr5")"
debug5="http://$(cat "$work/debug-addr5")"
grep -q 'admission control enforcing' "$work/server5.log" || { cat "$work/server5.log"; echo "no admission banner"; exit 1; }

"$bin/lsmbench" -addr "$addr5" -tenants 2 -quota ops=60,burst=0.5 -ops 240 \
  -json "$work/tenants.json" | tee "$work/tenants.txt"
grep -Eq 'tenant t0: .*throttled=[1-9]' "$work/tenants.txt" || { echo "overloaded tenant never throttled"; exit 1; }
grep -Eq 'tenant t0: .*retry_after=[1-9]' "$work/tenants.txt" || { echo "throttles carried no retry-after hint"; exit 1; }
grep -Eq 'tenant t1: .*throttled=0 ' "$work/tenants.txt" || { echo "polite tenant was throttled"; exit 1; }
grep -q '"mode": "net-tenants"' "$work/tenants.json" || { echo "tenants json missing mode"; exit 1; }
grep -q '"throttle_rate"' "$work/tenants.json" || { echo "tenants json missing throttle rate"; exit 1; }

"$bin/lsmctl" -addr "$addr5" stats >"$work/stats5.txt"
grep -q 'tenant t0:' "$work/stats5.txt" || { cat "$work/stats5.txt"; echo "stats missing tenant t0 row"; exit 1; }
grep -Eq 'server: .*throttled=[1-9]' "$work/stats5.txt" || { cat "$work/stats5.txt"; echo "server stats line missing throttle count"; exit 1; }

# The profiler's per-tenant breakdown reaches the workload command and
# the tenant label family stays on /metrics under the cardinality cap.
# Tenant rows come from sampled observations (1-in-32), so push more
# quota-paced traffic until they surface (expected on the first try).
tenant_rows=""
for _ in $(seq 1 10); do
  wl5="$("$bin/lsmctl" -addr "$addr5" workload)"
  if echo "$wl5" | grep -q '^tenant t[01] '; then tenant_rows=1; break; fi
  "$bin/lsmbench" -addr "$addr5" -tenants 2 -quota ops=60,burst=0.5 -ops 120 >/dev/null 2>&1 || true
done
[[ -n "$tenant_rows" ]] || { echo "$wl5"; echo "workload missing per-tenant rows"; exit 1; }

# Capture before grepping (pipefail + grep -q would break curl's pipe).
metrics5="$(curl -fsS "$debug5/metrics")"
lint_prom "$metrics5"
echo "$metrics5" | grep -Eq 'lsmlab_workload_tenant_ops\{tenant="t[01]"\}' || { echo "/metrics missing workload tenant gauge"; exit 1; }
echo "$metrics5" | grep -Eq 'lsmlab_tenant_throttled_total\{tenant="t0"\} [1-9]' || { echo "/metrics missing t0 throttle counter"; exit 1; }
echo "$metrics5" | grep -q 'lsmlab_tenant_requests_total{tenant="t1"}' || { echo "/metrics missing t1 request counter"; exit 1; }
echo "$metrics5" | grep -Eq '^lsmlab_net_throttled_total [1-9]' || { echo "/metrics net throttle total did not move"; exit 1; }

kill -TERM "$srv_pid"
for _ in $(seq 1 200); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.05
done
wait "$srv_pid" || { cat "$work/server5.log"; echo "quota server exited non-zero"; exit 1; }
srv_pid=""
echo "multi-tenant overload OK"

echo "== replication =="
# A leader and a -follow read replica as separate processes: writes
# through the leader become readable on the follower, the client pool
# enforces read-your-writes across the replica over the wire, direct
# follower writes are refused with the typed read-only error, and a
# dd-corrupted follower table is quarantined and re-shipped by Merkle
# anti-entropy.
"$bin/lsmserved" -db "$work/rldr" -addr 127.0.0.1:0 -addr-file "$work/raddr" \
  -grace 10s >"$work/leader.log" 2>&1 &
lead_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$work/raddr" ]] && break
  kill -0 "$lead_pid" || { cat "$work/leader.log"; echo "repl leader died"; exit 1; }
  sleep 0.05
done
raddr="$(cat "$work/raddr")"

start_follower() {
  "$bin/lsmserved" -db "$work/rfol" -follow "$raddr" -follow-session 2s \
    -addr 127.0.0.1:0 -addr-file "$work/faddr" "$@" \
    -grace 10s >>"$work/follower.log" 2>&1 &
  srv_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$work/faddr" ]] && break
    kill -0 "$srv_pid" || { cat "$work/follower.log"; echo "follower died"; exit 1; }
    sleep 0.05
  done
  faddr="$(cat "$work/faddr")"
}
start_follower -buffer-bytes 8192
grep -q 'read replica following' "$work/follower.log" || { cat "$work/follower.log"; echo "follower did not announce follow mode"; exit 1; }

ctlr() { "$bin/lsmctl" -addr "$raddr" "$@"; }
ctlf() { "$bin/lsmctl" -addr "$faddr" "$@"; }

ctlr put repl-key repl-value
caught=""
for _ in $(seq 1 200); do
  [[ "$(ctlf get repl-key)" == "repl-value" ]] && { caught=1; break; }
  sleep 0.05
done
[[ -n "$caught" ]] || { cat "$work/follower.log"; echo "write never replicated to the follower"; exit 1; }

# Direct follower writes are refused as replica writes.
if ctlf put nope nope 2>"$work/fput.err"; then
  echo "follower accepted a direct write"; exit 1
fi
grep -q 'read replica' "$work/fput.err" || { cat "$work/fput.err"; echo "refusal lacks the read-replica error"; exit 1; }

# The leader's status block shows the acked follower.
ctlr repl status | grep -q 'follower' || { echo "repl status missing the follower row"; exit 1; }

# Read-your-writes over the wire: lsmbench writes through the leader,
# then fans reads across the follower with every read checked against
# the freshness token (a stale replica answer would fail the run).
"$bin/lsmbench" -addr "$raddr" -replicas "$faddr" -conns 2 -ops 4000 >"$work/replbench.txt"
grep -q 'replica readback' "$work/replbench.txt" || { cat "$work/replbench.txt"; echo "bench missing replica readback"; exit 1; }

# The leader's repl counters moved.
ctlr stats | grep -q 'repl: subscribes=' || { echo "leader stats missing repl line"; exit 1; }

# At-rest corruption heals: stop the follower, flip bytes inside one of
# its tables, restart cold (no block cache), and require anti-entropy to
# quarantine the damage and re-ship the range.
kill -TERM "$srv_pid"
for _ in $(seq 1 200); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.05
done
wait "$srv_pid" || { cat "$work/follower.log"; echo "follower exited non-zero"; exit 1; }
srv_pid=""
ls "$work/rfol"/*.sst >/dev/null 2>&1 || { echo "follower never flushed a table"; exit 1; }
fsst="$(ls "$work/rfol"/*.sst | head -n 1)"
printf '\xde\xad\xbe\xef' | dd of="$fsst" bs=1 seek=16 conv=notrunc status=none
ctlr put repl-after after-value
rm -f "$work/faddr"
start_follower -cache-bytes 0
repaired=""
for _ in $(seq 1 400); do
  if ls "$work/rfol"/*.corrupt >/dev/null 2>&1 \
    && [[ "$(ctlf get repl-key)" == "repl-value" ]] \
    && [[ "$(ctlf get repl-after)" == "after-value" ]]; then
    repaired=1; break
  fi
  sleep 0.05
done
[[ -n "$repaired" ]] || { cat "$work/follower.log"; echo "anti-entropy never repaired the corrupted follower"; exit 1; }

kill -TERM "$srv_pid"; wait "$srv_pid" || true; srv_pid=""
kill -TERM "$lead_pid"; wait "$lead_pid" || true; lead_pid=""
echo "replication OK"

echo "serve smoke OK"
