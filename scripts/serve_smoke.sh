#!/usr/bin/env bash
# End-to-end smoke of the serving layer: build lsmserved + lsmctl,
# start a server, round-trip put/get/scan/stats/compact over the wire
# with lsmctl -addr, then SIGTERM the server and verify it drains,
# checkpoints, exits cleanly, and left a durable store behind.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
bin="$work/bin"
mkdir -p "$bin"
srv_pid=""

cleanup() {
  if [[ -n "$srv_pid" ]] && kill -0 "$srv_pid" 2>/dev/null; then
    kill -9 "$srv_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build =="
go build -o "$bin/lsmserved" ./cmd/lsmserved
go build -o "$bin/lsmctl" ./cmd/lsmctl

echo "== start server =="
"$bin/lsmserved" -db "$work/db" -addr 127.0.0.1:0 -addr-file "$work/addr" \
  -checkpoint-dir "$work/ckpt" -grace 10s >"$work/server.log" 2>&1 &
srv_pid=$!

for _ in $(seq 1 100); do
  [[ -s "$work/addr" ]] && break
  kill -0 "$srv_pid" || { cat "$work/server.log"; echo "server died"; exit 1; }
  sleep 0.05
done
[[ -s "$work/addr" ]] || { echo "server never published its address"; exit 1; }
addr="$(cat "$work/addr")"
echo "server at $addr"

ctl() { "$bin/lsmctl" -addr "$addr" "$@"; }

echo "== round trips =="
ctl put alpha 1
ctl put alphabet 2
ctl put beta 3
[[ "$(ctl get alpha)" == "1" ]] || { echo "get alpha mismatch"; exit 1; }
ctl delete beta
[[ "$(ctl get beta)" == "(not found)" ]] || { echo "deleted key still readable"; exit 1; }

scan_out="$(ctl scan alpha)"
echo "$scan_out"
[[ "$(echo "$scan_out" | wc -l)" -eq 2 ]] || { echo "scan expected 2 rows"; exit 1; }
echo "$scan_out" | grep -q '^alphabet = 2$' || { echo "scan missing alphabet"; exit 1; }

stats_out="$(ctl stats -v)"
echo "$stats_out" | grep -q 'server: conns_open=' || { echo "stats missing server block"; exit 1; }
echo "$stats_out" | grep -q 'request' || { echo "stats -v missing request latency"; exit 1; }
ctl compact

echo "== graceful shutdown =="
kill -TERM "$srv_pid"
for _ in $(seq 1 200); do
  kill -0 "$srv_pid" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$srv_pid" 2>/dev/null; then
  cat "$work/server.log"; echo "server ignored SIGTERM"; exit 1
fi
wait "$srv_pid" || { cat "$work/server.log"; echo "server exited non-zero"; exit 1; }
srv_pid=""

grep -q 'draining' "$work/server.log" || { cat "$work/server.log"; echo "no drain line"; exit 1; }
grep -q 'checkpoint written' "$work/server.log" || { cat "$work/server.log"; echo "no checkpoint line"; exit 1; }
grep -q 'closed cleanly' "$work/server.log" || { cat "$work/server.log"; echo "no clean close line"; exit 1; }

echo "== durability =="
[[ "$("$bin/lsmctl" -db "$work/db" get alpha)" == "1" ]] || { echo "store lost alpha"; exit 1; }
[[ "$("$bin/lsmctl" -db "$work/ckpt" get alphabet)" == "2" ]] || { echo "checkpoint lost alphabet"; exit 1; }

echo "== scrub =="
scrub_out="$("$bin/lsmctl" -db "$work/db" scrub)"
echo "$scrub_out"
echo "$scrub_out" | grep -q 'corrupt=0' || { echo "clean store reported corruption"; exit 1; }

# Corrupt a live table in place (4 bytes inside the first data block)
# and require the scrubber to detect and quarantine it without crashing.
sst="$(ls "$work/db"/*.sst | head -n 1)"
printf '\xde\xad\xbe\xef' | dd of="$sst" bs=1 seek=16 conv=notrunc status=none
scrub_out="$("$bin/lsmctl" -db "$work/db" scrub)"
echo "$scrub_out"
echo "$scrub_out" | grep -q 'corrupt=1' || { echo "scrub missed the corrupted table"; exit 1; }
echo "$scrub_out" | grep -q 'quarantined=true' || { echo "corrupted table not quarantined"; exit 1; }
ls "$work/db"/*.corrupt >/dev/null || { echo "no quarantined .corrupt file on disk"; exit 1; }

# Reads after quarantine degrade to honest not-found, never a crash.
post="$("$bin/lsmctl" -db "$work/db" get alpha)"
[[ "$post" == "1" || "$post" == "(not found)" ]] || { echo "read after quarantine returned garbage: $post"; exit 1; }

echo "serve smoke OK"
