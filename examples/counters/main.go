// Counters: read-modify-write without reads (tutorial §2.2.6). An
// analytics workload increments millions of event counters; with a
// merge operator each increment is a blind O(1) write, and the adds are
// folded into totals lazily — at read time or, permanently, by
// compaction. Doing the same with Get+Put would pay a read I/O per
// increment and lose atomicity without external locking.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

// addOperator folds little-endian int64 deltas.
type addOperator struct{}

func (addOperator) FullMerge(key, existing []byte, operands [][]byte) ([]byte, error) {
	var sum int64
	if len(existing) == 8 {
		sum = int64(binary.LittleEndian.Uint64(existing))
	}
	for _, op := range operands {
		sum += int64(binary.LittleEndian.Uint64(op))
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(sum))
	return out, nil
}

func (addOperator) PartialMerge(key, older, newer []byte) ([]byte, bool) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out,
		binary.LittleEndian.Uint64(older)+binary.LittleEndian.Uint64(newer))
	return out, true
}

func one() []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, 1)
	return b
}

func main() {
	opts := core.DefaultOptions(vfs.NewMem(), "counters-db")
	opts.MergeOperator = addOperator{}
	db, err := core.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Simulate an event stream: 200k page-view events across 500 pages,
	// zipf-skewed (a few pages get most of the traffic).
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 1, 499)
	const events = 200_000
	want := make(map[int]int64)
	start := time.Now()
	for i := 0; i < events; i++ {
		page := int(zipf.Uint64())
		key := []byte(fmt.Sprintf("views/page%04d", page))
		if err := db.Merge(key, one()); err != nil {
			log.Fatal(err)
		}
		want[page]++
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested %d increments in %v (%.0f/s) — zero read I/O on the write path\n",
		events, elapsed, float64(events)/elapsed.Seconds())

	// Read a few totals (operands fold lazily here).
	for _, page := range []int{0, 1, 2, 100} {
		key := []byte(fmt.Sprintf("views/page%04d", page))
		v, err := db.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		got := int64(binary.LittleEndian.Uint64(v))
		status := "ok"
		if got != want[page] {
			status = fmt.Sprintf("MISMATCH want %d", want[page])
		}
		fmt.Printf("  page%04d = %8d views (%s)\n", page, got, status)
	}

	// Compaction folds the operand chains into single values on disk.
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	m := db.Metrics()
	fmt.Printf("\nafter full compaction: %d entries dropped (operands folded), disk=%d KiB\n",
		m.EntriesDropped, db.DiskUsageBytes()/1024)

	// Totals are unchanged.
	top := []byte("views/page0000")
	v, _ := db.Get(top)
	fmt.Printf("hottest page total still %d after folding\n", int64(binary.LittleEndian.Uint64(v)))
}
