// Quickstart: open a store, write, read, scan, delete, snapshot, and
// reopen to show recovery — the whole external API in one file.
package main

import (
	"errors"
	"fmt"
	"log"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

func main() {
	// An in-memory filesystem keeps the example self-contained; swap in
	// vfs.NewOS() and a directory path for a persistent store.
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "quickstart-db")

	db, err := core.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Puts and gets.
	must(db.Put([]byte("fruit/apple"), []byte("red")))
	must(db.Put([]byte("fruit/banana"), []byte("yellow")))
	must(db.Put([]byte("veg/carrot"), []byte("orange")))
	v, err := db.Get([]byte("fruit/apple"))
	must(err)
	fmt.Printf("fruit/apple = %s\n", v)

	// Updates are just puts; the newest version wins.
	must(db.Put([]byte("fruit/apple"), []byte("green")))
	v, _ = db.Get([]byte("fruit/apple"))
	fmt.Printf("fruit/apple = %s (after update)\n", v)

	// A snapshot pins the current state.
	snap := db.NewSnapshot()
	must(db.Put([]byte("fruit/apple"), []byte("bruised")))
	old, _ := snap.Get([]byte("fruit/apple"))
	cur, _ := db.Get([]byte("fruit/apple"))
	fmt.Printf("snapshot sees %s, live read sees %s\n", old, cur)
	snap.Release()

	// Range scan over a key prefix.
	kvs, err := db.Scan([]byte("fruit/"), []byte("fruit0"), 0)
	must(err)
	fmt.Println("fruits:")
	for _, kv := range kvs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Deletes: point, and range.
	must(db.Delete([]byte("veg/carrot")))
	if _, err := db.Get([]byte("veg/carrot")); errors.Is(err, core.ErrNotFound) {
		fmt.Println("veg/carrot deleted")
	}
	must(db.DeleteRange([]byte("fruit/"), []byte("fruit0")))
	kvs, _ = db.Scan(nil, nil, 0)
	fmt.Printf("after range delete, %d keys remain\n", len(kvs))

	// Atomic batches.
	var b core.Batch
	b.Put([]byte("batch/1"), []byte("a"))
	b.Put([]byte("batch/2"), []byte("b"))
	must(db.Apply(&b))

	// Close flushes; reopening recovers everything from disk.
	must(db.Close())
	db2, err := core.Open(opts)
	must(err)
	defer db2.Close()
	v, err = db2.Get([]byte("batch/1"))
	must(err)
	fmt.Printf("after reopen, batch/1 = %s\n", v)
	fmt.Println("\ntree shape:")
	fmt.Println(db2.TreeStats())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
