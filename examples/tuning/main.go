// Tuning: navigate the LSM design space for three workload mixes, then
// actually run the recommended and a mismatched configuration on the
// same workload to show the recommendation is real (tutorial Module
// III).
package main

import (
	"errors"
	"fmt"
	"log"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/tuning"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

// toLayout maps a model layout to an engine layout at size ratio T.
func toLayout(l tuning.DataLayout, T int) compaction.Layout {
	switch l {
	case tuning.LayoutTiering:
		return compaction.Tiering{K: T}
	case tuning.LayoutLazyLeveling:
		return compaction.LazyLeveling{K: T}
	default:
		return compaction.Leveling{}
	}
}

// run loads a dataset (untimed), then executes the mixed workload under
// cfg and returns the simulated device time of the mixed phase in
// milliseconds. The engine honors the recommended memory split: the
// buffer fraction sizes the memtable, the remainder funds Monkey-
// allocated filters.
func run(cfg tuning.Config, mix workload.Mix) float64 {
	fs := vfs.NewCountingWithLatency(vfs.NewMem(), vfs.SSDLatency())
	opts := core.DefaultOptions(fs, "db")
	opts.SizeRatio = cfg.SizeRatio
	opts.Layout = toLayout(cfg.Layout, cfg.SizeRatio)
	opts.BaseLevelBytes = 256 << 10
	if buf := int(float64(cfg.MemoryBytes) * cfg.BufferFraction); buf >= 16<<10 {
		opts.BufferBytes = buf
	} else {
		opts.BufferBytes = 16 << 10
	}
	opts.FilterMode = core.FilterMonkey
	opts.FilterBudgetBits = int64(float64(cfg.MemoryBytes) * (1 - cfg.BufferFraction) * 8)

	db, err := core.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const keySpace = 30_000
	load := workload.New(workload.Config{Seed: 7, KeySpace: keySpace, Mix: workload.MixLoad, ValueLen: 64})
	for i := 0; i < keySpace; i++ {
		op := load.Next()
		if err := db.Put(op.Key, op.Value); err != nil {
			log.Fatal(err)
		}
	}
	db.Flush()
	db.WaitIdle()
	base := fs.Stats()

	gen := workload.New(workload.Config{Seed: 1, KeySpace: keySpace, Mix: mix, ValueLen: 64})
	for i := 0; i < 60_000; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpPut:
			err = db.Put(op.Key, op.Value)
		case workload.OpDelete:
			err = db.Delete(op.Key)
		case workload.OpGet, workload.OpGetZero:
			_, err = db.Get(op.Key)
			if errors.Is(err, core.ErrNotFound) {
				err = nil
			}
		case workload.OpScan:
			_, err = db.Scan(op.Key, op.EndKey, op.Limit)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	db.Flush()
	db.WaitIdle()
	return float64(fs.Stats().Sub(base).SimulatedNs) / 1e6
}

func main() {
	sys := tuning.SystemParams{NumEntries: 30_000, EntryBytes: 80, PageBytes: 4096}
	mem := int64(1 << 20)
	space := tuning.DefaultSearchSpace()

	cases := []struct {
		name  string
		model tuning.Workload
		mix   workload.Mix
	}{
		{"ingest-heavy", tuning.Workload{Inserts: 0.9, PointExist: 0.1},
			workload.Mix{Puts: 0.9, Gets: 0.1}},
		{"read-mostly", tuning.Workload{Inserts: 0.1, PointExist: 0.6, ShortScans: 0.3},
			workload.Mix{Puts: 0.1, Gets: 0.6, ScanShort: 0.3}},
		{"balanced", tuning.Workload{Inserts: 0.5, PointExist: 0.4, ShortScans: 0.1},
			workload.Mix{Puts: 0.5, Gets: 0.4, ScanShort: 0.1}},
	}

	for _, c := range cases {
		rec := tuning.Navigate(sys, mem, c.model, space)
		fmt.Printf("%s: recommended T=%d layout=%s (model cost %.3f I/O/op)\n",
			c.name, rec.Config.SizeRatio, rec.Config.Layout, rec.Cost)

		recommended := run(rec.Config, c.mix)
		// A deliberately mismatched configuration for contrast.
		mismatch := tuning.Config{SizeRatio: 2, Layout: tuning.LayoutLeveling, MemoryBytes: mem, BufferFraction: 0.2}
		if rec.Config.Layout == tuning.LayoutLeveling {
			mismatch.Layout = tuning.LayoutTiering
			mismatch.SizeRatio = 10
		}
		mismatched := run(mismatch, c.mix)
		verdict := "recommendation validated"
		switch {
		case recommended <= mismatched*0.98:
		case recommended <= mismatched*1.05:
			verdict = "near-tie: at this mix the design points converge"
		default:
			verdict = "model diverged from measurement at this scale"
		}
		fmt.Printf("  measured simulated device time: recommended %.0f ms vs mismatched %.0f ms (%s)\n\n",
			recommended, mismatched, verdict)
	}
}
