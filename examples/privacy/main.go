// Privacy: deletion compliance with Lethe-style timely persistent
// deletion (tutorial §2.3.3). Regulations like the GDPR require that
// deleted data be *physically* purged within a deadline; vanilla LSM
// tombstones only hide data logically, and the invalidated bytes can
// survive on disk indefinitely. With a tombstone-age threshold, the
// engine force-compacts files holding old tombstones so the deadline
// holds.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

func main() {
	// A virtual clock makes the deadline demonstration deterministic.
	var mu sync.Mutex
	clock := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	tick := func(d time.Duration) {
		mu.Lock()
		clock += int64(d)
		mu.Unlock()
	}

	run := func(threshold time.Duration) (left uint64) {
		fs := vfs.NewMem()
		opts := core.DefaultOptions(fs, "gdpr-db")
		opts.TombstoneAgeThreshold = threshold
		opts.NowNs = func() int64 { mu.Lock(); defer mu.Unlock(); return clock }
		// Keep the tree quiet otherwise, so nothing but the deadline
		// forces work — the worst case for tombstone persistence.
		opts.Layout = compaction.TieredFirst{K0: 64}
		opts.StallL0Runs = 0

		db, err := core.Open(opts)
		if err != nil {
			log.Fatal(err)
		}
		defer db.Close()

		// A user's records, then a GDPR erasure request.
		for i := 0; i < 1000; i++ {
			db.Put([]byte(fmt.Sprintf("user42/doc%04d", i)), []byte("personal data"))
		}
		db.Flush()
		for i := 0; i < 1000; i++ {
			db.SingleDelete([]byte(fmt.Sprintf("user42/doc%04d", i)))
		}
		db.Flush()

		// A week passes with no other activity.
		for day := 0; day < 7; day++ {
			tick(24 * time.Hour)
			db.WaitIdle()
		}

		// Count tombstones still on disk.
		v := db.Version()
		for _, l := range v.Levels {
			for _, r := range l.Runs {
				for _, f := range r.Files {
					left += f.NumTombstones
				}
			}
		}
		return left
	}

	noDeadline := run(0)
	fmt.Printf("without a persistence deadline: %5d tombstones still on disk after 7 idle days\n", noDeadline)

	deadline := run(24 * time.Hour)
	fmt.Printf("with a 24h deadline (Lethe/FADE): %4d tombstones on disk after 7 idle days\n", deadline)

	if deadline == 0 && noDeadline > 0 {
		fmt.Println("\nthe deadline forced compactions that physically purged the deleted data;")
		fmt.Println("single-deletes annihilated with their inserts, leaving no residue (§2.3.3)")
	}
}
