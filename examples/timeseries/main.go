// Timeseries: the ingestion-dominated workload that motivates the LSM
// design (tutorial §1, trend B — more writes than reads). Sensor
// readings arrive in timestamp order at high rate; queries are range
// scans over recent time windows. The store is tuned the way a
// time-series engine would be: tiered first level to absorb bursts, a
// vector memtable for the write-only stream, and a larger buffer.
package main

import (
	"fmt"
	"log"
	"time"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/memtable"
	"lsmlab/internal/vfs"
)

// key encodes series/timestamp so that time ranges are key ranges.
func key(sensor int, ts int64) []byte {
	return []byte(fmt.Sprintf("sensor%03d/%013d", sensor, ts))
}

func main() {
	fs := vfs.NewCountingWithLatency(vfs.NewMem(), vfs.SSDLatency())
	opts := core.DefaultOptions(fs, "tsdb")
	opts.Layout = compaction.TieredFirst{K0: 6} // absorb ingest bursts
	opts.MemtableKind = memtable.KindSkipList   // scans need ordered reads
	opts.BufferBytes = 1 << 20

	db, err := core.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Ingest 50k readings across 8 sensors in time order.
	const sensors = 8
	const readings = 50_000
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	start := time.Now()
	for i := 0; i < readings; i++ {
		ts := base + int64(i)*250 // one reading per 250ms per round
		s := i % sensors
		val := fmt.Sprintf(`{"temp":%.2f,"seq":%d}`, 20+float64(i%100)/10, i)
		if err := db.Put(key(s, ts), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	db.WaitIdle()
	elapsed := time.Since(start)
	fmt.Printf("ingested %d readings in %v (%.0f/s)\n",
		readings, elapsed, float64(readings)/elapsed.Seconds())

	// Query: the last 5 minutes of sensor 3.
	windowEnd := base + int64(readings)*250
	windowStart := windowEnd - 5*60*1000
	kvs, err := db.Scan(key(3, windowStart), key(3, windowEnd), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor003 last-5-minute window: %d readings\n", len(kvs))
	if len(kvs) > 0 {
		fmt.Printf("  first: %s\n  last:  %s\n", kvs[0].Key, kvs[len(kvs)-1].Key)
	}

	// Retention: drop everything older than the last hour with one
	// range delete per sensor — O(1) regardless of data volume, the
	// out-of-place delete advantage (tutorial §2.1.2).
	cutoff := windowEnd - 60*60*1000
	for s := 0; s < sensors; s++ {
		if err := db.DeleteRange(key(s, 0), key(s, cutoff)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("applied retention: range-deleted all data older than 1h")

	m := db.Metrics()
	fmt.Printf("\nengine: %s\n", m)
	fmt.Printf("write amplification: %.2f\n", m.WriteAmplification())
	fmt.Printf("simulated device time: %.1f ms\n", float64(fs.Stats().SimulatedNs)/1e6)
	fmt.Println(db.TreeStats())
}
