// Package lsmlab's root benchmark suite: one testing.B target per
// experiment in DESIGN.md §3 (run the same tables with more control via
// cmd/lsmbench), plus micro-benchmarks of the hot paths.
//
// Experiment benches run the full experiment once per iteration at a
// reduced scale and report the headline figure from its table via
// b.ReportMetric, so `go test -bench=.` regenerates every table's shape.
package lsmlab

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lsmlab/internal/bloom"
	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/experiments"
	"lsmlab/internal/kv"
	"lsmlab/internal/memtable"
	"lsmlab/internal/sstable"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
	"lsmlab/internal/workload"
)

// benchScale keeps experiment benches to seconds; cmd/lsmbench runs the
// documented full scale.
const benchScale = experiments.Scale(0.1)

// runExperiment executes the experiment once per b.N and reports the
// value of metricCol from the row whose first cell is rowName (empty
// rowName = first row).
func runExperiment(b *testing.B, id, rowName, metricCol, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		row := 0
		if rowName != "" {
			row = -1
			for r, cells := range tbl.Rows {
				if cells[0] == rowName {
					row = r
					break
				}
			}
			if row < 0 {
				b.Fatalf("row %q missing from %s", rowName, id)
			}
		}
		col := -1
		for c, name := range tbl.Columns {
			if name == metricCol {
				col = c
				break
			}
		}
		if col < 0 {
			b.Fatalf("column %q missing from %s", metricCol, id)
		}
		v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
		if err != nil {
			b.Fatal(err)
		}
		last = v
	}
	b.ReportMetric(last, unit)
}

// ---------------------------------------------------------------------
// Experiment benches (E1..E12)

func BenchmarkE1CompactionPolicies(b *testing.B) {
	runExperiment(b, "E1", "tiering(4)", "write_amp", "tiering_write_amp")
}

func BenchmarkE2Memtables(b *testing.B) {
	runExperiment(b, "E2", "vector", "write_only_ns_op", "vector_write_ns")
}

func BenchmarkE3PointFilters(b *testing.B) {
	runExperiment(b, "E3", "monkey", "zero_pages_per_lookup", "monkey_zero_pages")
}

func BenchmarkE4RangeFilters(b *testing.B) {
	runExperiment(b, "E4", "rosetta(14b)", "short_runs_probed", "rosetta_short_probes")
}

func BenchmarkE5KVSeparation(b *testing.B) {
	runExperiment(b, "E5", "", "write_amp", "baseline64_write_amp")
}

func BenchmarkE6FilePicking(b *testing.B) {
	runExperiment(b, "E6", "tombstone-density", "tombstones_left", "tombstones_left")
}

func BenchmarkE7BufferTuning(b *testing.B) {
	runExperiment(b, "E7", "16", "stalls", "small_buffer_stalls")
}

func BenchmarkE8Parallelism(b *testing.B) {
	runExperiment(b, "E8", "4", "ingest_wall_ms", "four_worker_ingest_ms")
}

func BenchmarkE9SizeRatio(b *testing.B) {
	runExperiment(b, "E9", "10", "write_amp", "T10_write_amp")
}

func BenchmarkE10RobustTuning(b *testing.B) {
	runExperiment(b, "E10", "robust", "worst_case_cost", "robust_worst_cost")
}

func BenchmarkE11DeletePersistence(b *testing.B) {
	runExperiment(b, "E11", "2000", "oldest_tombstone_age_ops", "bounded_age_ops")
}

func BenchmarkE12CacheLeaper(b *testing.B) {
	runExperiment(b, "E12", "true", "hit_rate", "prefetch_hit_rate")
}

func BenchmarkE13Partitioning(b *testing.B) {
	runExperiment(b, "E13", "8", "total_wall_ms", "eight_part_total_ms")
}

func BenchmarkO1TraceAttribution(b *testing.B) {
	runExperiment(b, "O1", "10bpk/all", "p99_us", "traced_get_p99_us")
}

func BenchmarkO2WorkloadProfile(b *testing.B) {
	runExperiment(b, "O2", "zipf-read", "zipf_s", "zipf_phase_fitted_s")
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot paths

func BenchmarkMemtableAdd(b *testing.B) {
	for _, kind := range []memtable.Kind{
		memtable.KindSkipList, memtable.KindVector,
		memtable.KindHashSkipList, memtable.KindHashLinkList,
	} {
		b.Run(string(kind), func(b *testing.B) {
			m := memtable.New(kind)
			val := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Add(kv.SeqNum(i+1), kv.KindSet, workload.Key(int64(i%100000)), val)
			}
		})
	}
}

func BenchmarkMemtableGet(b *testing.B) {
	for _, kind := range []memtable.Kind{memtable.KindSkipList, memtable.KindHashLinkList} {
		b.Run(string(kind), func(b *testing.B) {
			m := memtable.New(kind)
			val := make([]byte, 64)
			for i := 0; i < 100000; i++ {
				m.Add(kv.SeqNum(i+1), kv.KindSet, workload.Key(int64(i)), val)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Get(workload.Key(int64(i%100000)), kv.MaxSeqNum)
			}
		})
	}
}

func BenchmarkBloomFilter(b *testing.B) {
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = workload.Key(int64(i))
	}
	f := bloom.NewFromKeys(keys, 10)
	b.Run("MayContain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.MayContain(keys[i%len(keys)])
		}
	})
	b.Run("Hash64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bloom.Hash64(keys[i%len(keys)])
		}
	})
}

func BenchmarkSSTableWrite(b *testing.B) {
	fs := vfs.NewMem()
	val := make([]byte, 100)
	b.SetBytes(100 + 20)
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			b.StopTimer()
			f, _ := fs.Create("bench.sst")
			w := sstable.NewWriter(f, sstable.WriterOptions{BitsPerKey: 10})
			b.StartTimer()
			for j := 0; j < 100000 && i+j < b.N; j++ {
				w.Add(kv.MakeKey(workload.Key(int64(j)), kv.SeqNum(j+1), kv.KindSet), val)
			}
			b.StopTimer()
			w.Finish()
			f.Close()
			b.StartTimer()
		}
	}
}

func BenchmarkEngineGet(b *testing.B) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "db")
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 50000
	val := make([]byte, 100)
	for i := 0; i < n; i++ {
		db.Put(workload.Key(int64(i)), val)
	}
	db.Flush()
	db.WaitIdle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(workload.Key(int64(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePut(b *testing.B) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "db")
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 100)
	b.SetBytes(100 + 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put(workload.Key(int64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutParallel measures aggregate Put throughput under write
// concurrency — the commit pipeline's headline number. A large buffer
// keeps flush/compaction backpressure out of the measurement so the
// comparison is about the write path itself. Each serial/parallel pair
// shares options: "serial" is the serialized baseline, "parallel"
// drives GOMAXPROCS writers (b.RunParallel) drawing unique keys from a
// shared counter. The sync pair models a 50µs device fsync on the
// in-memory VFS — that is where group commit pays: concurrent writers
// share one sync per group, so aggregate throughput rises with the
// writer count even on a single core.
func BenchmarkPutParallel(b *testing.B) {
	const fsyncDelay = 50 * time.Microsecond
	open := func(b *testing.B, syncWAL bool) *core.DB {
		b.Helper()
		fs := vfs.NewMem()
		if syncWAL {
			fs.SetSyncDelay(fsyncDelay)
		}
		opts := core.DefaultOptions(fs, "db")
		opts.SyncWAL = syncWAL
		opts.BufferBytes = 512 << 20 // isolate the commit path from flushes
		db, err := core.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	for _, mode := range []struct {
		name string
		sync bool
	}{
		{"", false},
		{"sync50us", true},
	} {
		serial, parallel := "serial", "parallel"
		if mode.name != "" {
			serial += "-" + mode.name
			parallel += "-" + mode.name
		}
		b.Run(serial, func(b *testing.B) {
			db := open(b, mode.sync)
			defer db.Close()
			val := make([]byte, 100)
			b.SetBytes(100 + 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(parallel, func(b *testing.B) {
			db := open(b, mode.sync)
			defer db.Close()
			// RunParallel spawns GOMAXPROCS×parallelism goroutines; pad to
			// at least 8 writers so commit groups form on small machines.
			if p := runtime.GOMAXPROCS(0); p < 8 {
				b.SetParallelism((8 + p - 1) / p)
			}
			var ctr atomic.Int64
			b.SetBytes(100 + 16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				val := make([]byte, 100)
				for pb.Next() {
					if err := db.Put(workload.Key(ctr.Add(1)), val); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkBatchReuse measures building a batch into a Reset-reused
// Batch: the arena retains its blocks across Reset, so the steady state
// is zero allocations per operation.
func BenchmarkBatchReuse(b *testing.B) {
	var batch core.Batch
	key := make([]byte, 16)
	val := make([]byte, 100)
	const opsPerBatch = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for j := 0; j < opsPerBatch; j++ {
			key[0] = byte(j)
			batch.Put(key, val)
		}
	}
}

// BenchmarkTraceOverhead prices per-op request tracing on both hot
// paths — point reads (the per-stage instrumentation's heaviest
// consumer) and puts (the write path) — at three settings: no tracer,
// 1% sampling (the suggested production setting), and trace-everything.
// The O1 section in EXPERIMENTS.md quotes these numbers.
func BenchmarkTraceOverhead(b *testing.B) {
	openTraced := func(b *testing.B, every int) *core.DB {
		b.Helper()
		fs := vfs.NewMem()
		opts := core.DefaultOptions(fs, "db")
		opts.BufferBytes = 512 << 20 // keep flushes out of the put loop
		if every > 0 {
			opts.Tracer = trace.New(trace.Options{SampleEvery: every, RingSize: 1024})
		}
		db, err := core.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	for _, tc := range []struct {
		name  string
		every int
	}{
		{"off", 0},
		{"sample1pct", 100},
		{"sampleAll", 1},
	} {
		b.Run("get/"+tc.name, func(b *testing.B) {
			db := openTraced(b, tc.every)
			defer db.Close()
			const n = 20000
			val := make([]byte, 100)
			for i := 0; i < n; i++ {
				if err := db.Put(workload.Key(int64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			db.WaitIdle()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get(workload.Key(int64(i % n))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("put/"+tc.name, func(b *testing.B) {
			db := openTraced(b, tc.every)
			defer db.Close()
			val := make([]byte, 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineScan(b *testing.B) {
	fs := vfs.NewMem()
	db, err := core.Open(core.DefaultOptions(fs, "db"))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 50000
	val := make([]byte, 100)
	for i := 0; i < n; i++ {
		db.Put(workload.Key(int64(i)), val)
	}
	db.Flush()
	db.WaitIdle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := int64(i % (n - 200))
		kvs, err := db.Scan(workload.Key(start), workload.Key(start+100), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(kvs) == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkAblationFilterModes isolates the filter design choice called
// out in DESIGN.md: zero-result gets with no filter, uniform filters,
// and Monkey allocation, on identical trees.
func BenchmarkAblationFilterModes(b *testing.B) {
	for _, mode := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"none", func(o *core.Options) { o.FilterMode = core.FilterNone }},
		{"uniform10", func(o *core.Options) { o.FilterMode = core.FilterUniform; o.BitsPerKey = 10 }},
		{"monkey", func(o *core.Options) {
			o.FilterMode = core.FilterMonkey
			o.FilterBudgetBits = 50000 * 10
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.DefaultOptions(fs, "db")
			mode.mutate(&opts)
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 64)
			for i := 0; i < 50000; i++ {
				db.Put(workload.Key(int64(i)), val)
			}
			db.Flush()
			db.WaitIdle()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := append(workload.Key(int64(i%50000)), []byte("-absent")...)
				db.Get(k)
			}
		})
	}
}

// BenchmarkAblationWALSync isolates durability cost: WAL on, WAL+sync,
// WAL off.
func BenchmarkAblationWALSync(b *testing.B) {
	for _, mode := range []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"wal", nil},
		{"wal+sync", func(o *core.Options) { o.SyncWAL = true }},
		{"no-wal", func(o *core.Options) { o.DisableWAL = true }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.DefaultOptions(fs, "db")
			if mode.mutate != nil {
				mode.mutate(&opts)
			}
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var benchSink int

// BenchmarkMergingIterator measures the k-way merge that underlies
// scans and compactions.
func BenchmarkMergingIterator(b *testing.B) {
	for _, ways := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dway", ways), func(b *testing.B) {
			var iters []kv.Iterator
			for w := 0; w < ways; w++ {
				var es []kv.Entry
				for i := 0; i < 10000; i++ {
					es = append(es, kv.Entry{
						Key: kv.MakeKey(workload.Key(int64(i*ways+w)), kv.SeqNum(i+1), kv.KindSet),
					})
				}
				iters = append(iters, kv.NewSliceIterator(es))
			}
			m := kv.NewMergingIterator(iters...)
			b.ResetTimer()
			count := 0
			for i := 0; i < b.N; i++ {
				if count == 0 {
					m.First()
				}
				if m.Valid() {
					benchSink += len(m.Key())
					m.Next()
					count++
				} else {
					count = 0
				}
			}
		})
	}
}

// BenchmarkAblationBlockSize isolates the data-block size choice: point
// gets against identical trees built with different block sizes.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, blockSize := range []int{512, 4096, 16384} {
		b.Run(fmt.Sprintf("%dB", blockSize), func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.DefaultOptions(fs, "db")
			opts.BlockSize = blockSize
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 100)
			for i := 0; i < 50000; i++ {
				db.Put(workload.Key(int64(i)), val)
			}
			db.Flush()
			db.WaitIdle()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get(workload.Key(int64(i % 50000))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLayoutIngest isolates the data-layout choice on the
// pure ingest path (the E1 write-amplification story as wall-clock).
func BenchmarkAblationLayoutIngest(b *testing.B) {
	layouts := map[string]compaction.Layout{
		"leveling":   compaction.Leveling{},
		"tiering4":   compaction.Tiering{K: 4},
		"lazy4":      compaction.LazyLeveling{K: 4},
		"tieredL0-4": compaction.TieredFirst{K0: 4},
	}
	for name, layout := range layouts {
		b.Run(name, func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.DefaultOptions(fs, "db")
			opts.Layout = layout
			opts.BufferBytes = 64 << 10
			opts.BaseLevelBytes = 256 << 10
			opts.SizeRatio = 4
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 64)
			b.SetBytes(64 + 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i%100000)), val); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			db.Flush()
			db.WaitIdle()
		})
	}
}

// BenchmarkAblationValueSeparation isolates the WiscKey threshold on
// the ingest path at a fixed 1 KiB value size.
func BenchmarkAblationValueSeparation(b *testing.B) {
	for _, sep := range []bool{false, true} {
		name := "inline"
		if sep {
			name = "separated"
		}
		b.Run(name, func(b *testing.B) {
			fs := vfs.NewMem()
			opts := core.DefaultOptions(fs, "db")
			if sep {
				opts.ValueSeparationThreshold = 128
			}
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := make([]byte, 1024)
			b.SetBytes(1024 + 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
