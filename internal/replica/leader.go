package replica

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/wal"
	"lsmlab/internal/wire"
)

// Leader is the leader-side replication engine: it serves subscription
// streams by tailing each shard's live WAL with a wal.Cursor, answers
// Merkle tree and repair-range fetches for anti-entropy, and keeps the
// per-follower ack registry that backs lag reporting. It satisfies the
// server's Replicator hook (server.Options.Repl); the serving layer
// forwards the replication verbs and stays otherwise ignorant of the
// protocol.
type Leader struct {
	shards []*core.DB
	opts   LeaderOptions

	framesShipped atomic.Uint64
	gapsSignaled  atomic.Uint64

	mu        sync.Mutex
	followers map[string]*followerState
}

type followerState struct {
	acked     []uint64
	lastAckNs int64
}

// LeaderOptions tunes a Leader. The zero value is usable.
type LeaderOptions struct {
	// Ranges is the Merkle fan-out per shard. Default DefaultRanges.
	Ranges int
	// Poll is how long a caught-up subscription sleeps before re-probing
	// the WAL tail. Default 2ms.
	Poll time.Duration
	// Heartbeat is the idle-stream heartbeat cadence. Default 250ms.
	Heartbeat time.Duration
	// MaxPageBytes bounds one repair response page. Default 1 MiB.
	MaxPageBytes int
	// NowNs supplies time (injected for deterministic tests).
	NowNs func() int64
}

func (o LeaderOptions) withDefaults() LeaderOptions {
	if o.Ranges <= 0 {
		o.Ranges = DefaultRanges
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.MaxPageBytes <= 0 {
		o.MaxPageBytes = 1 << 20
	}
	if o.NowNs == nil {
		o.NowNs = func() int64 { return time.Now().UnixNano() }
	}
	return o
}

// NewLeader returns a Leader shipping the given shard stores — the
// slice a flat store contributes one element to, a sharded store one
// per partition, in shard order.
func NewLeader(shards []*core.DB, opts LeaderOptions) *Leader {
	return &Leader{shards: shards, opts: opts.withDefaults(),
		followers: make(map[string]*followerState)}
}

// NumShards returns the shard count followers must match.
func (l *Leader) NumShards() int { return len(l.shards) }

// FramesShipped returns the count of data frames sent across all
// subscriptions.
func (l *Leader) FramesShipped() uint64 { return l.framesShipped.Load() }

// Subscribe streams shard's committed WAL batches after afterSeq to
// send, blocking until the connection dies (send returns false), the
// server drains (stopped returns true), or the follower's position
// cannot be served contiguously — WAL retention moved past it, or the
// log is damaged — in which case a gap frame ends the stream and the
// follower falls back to Merkle repair. Each payload handed to send is
// freshly allocated; the callee owns it.
func (l *Leader) Subscribe(shard int, afterSeq uint64, send func(payload []byte) bool, stopped func() bool) error {
	if shard < 0 || shard >= len(l.shards) {
		return fmt.Errorf("%w: shard %d of %d", wire.ErrMalformed, shard, len(l.shards))
	}
	db := l.shards[shard]
	fs, dir := db.FSDir()
	cur := wal.NewCursor(fs, dir)
	defer cur.Close()

	gap := func() {
		l.gapsSignaled.Add(1)
		send(AppendStreamFrame(nil, wire.ReplFrameGap, db.VisibleSeq(), nil))
	}

	// Sequence numbers start at the sentinel 1, so the first real batch
	// is 2 — an empty follower subscribes after 1.
	expect := afterSeq + 1
	if expect < 2 {
		expect = 2
	}
	lastBeat := l.opts.NowNs()
	eofBehind := false
	for {
		if stopped() {
			return nil
		}
		b, raw, err := cur.Next()
		switch {
		case err == io.EOF:
			if db.VisibleSeq() >= expect {
				// Published data at the expected sequence is not in the
				// retained log — flushes deleted the segments holding it
				// (the joining-follower bootstrap case). One re-probe closes
				// the append-vs-publish race: a batch is appended before it
				// publishes, so after observing VisibleSeq ≥ expect a second
				// read either finds the frame or proves it gone.
				if eofBehind {
					gap()
					return nil
				}
				eofBehind = true
				time.Sleep(l.opts.Poll)
				continue
			}
			eofBehind = false
			// Caught up with the live tail: heartbeat on cadence so the
			// follower sees leader visibility (and liveness), then poll.
			if now := l.opts.NowNs(); now-lastBeat >= int64(l.opts.Heartbeat) {
				if !send(AppendStreamFrame(nil, wire.ReplFrameHeartbeat, db.VisibleSeq(), nil)) {
					return nil
				}
				lastBeat = now
			}
			time.Sleep(l.opts.Poll)
			continue
		case err != nil:
			// Retention deleted the segment under the cursor, or the log is
			// damaged mid-segment: either way the contiguous stream ends
			// here and the follower must repair.
			gap()
			return nil
		}
		eofBehind = false
		last := uint64(b.LastSeq())
		if last < expect {
			continue // already-applied prefix of the oldest retained segment
		}
		if uint64(b.Seq) != expect {
			// A hole: retention outran the follower, or the leader skipped
			// sequence numbers (a failed commit group consumes its range but
			// writes nothing). Both heal through repair, which re-bases the
			// follower at the leader's current watermark.
			gap()
			return nil
		}
		// Ship only published batches: the WAL gains frames before the
		// commit pipeline publishes them, and publication is what orders a
		// batch against SyncWAL and reads. The wait is bounded by the
		// pipeline's publish latency.
		for db.VisibleSeq() < last {
			if stopped() {
				return nil
			}
			time.Sleep(200 * time.Microsecond)
		}
		if !send(AppendStreamFrame(nil, wire.ReplFrameData, db.VisibleSeq(), raw)) {
			return nil
		}
		l.framesShipped.Add(1)
		lastBeat = l.opts.NowNs()
		expect = last + 1
	}
}

// Ack records follower id's applied-through leader sequence for one
// shard, feeding the lag view Status reports.
func (l *Leader) Ack(id string, shard int, appliedSeq uint64) error {
	if shard < 0 || shard >= len(l.shards) {
		return fmt.Errorf("%w: shard %d of %d", wire.ErrMalformed, shard, len(l.shards))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f := l.followers[id]
	if f == nil {
		f = &followerState{acked: make([]uint64, len(l.shards))}
		l.followers[id] = f
	}
	if appliedSeq > f.acked[shard] {
		f.acked[shard] = appliedSeq
	}
	f.lastAckNs = l.opts.NowNs()
	return nil
}

// Tree builds and encodes shard's Merkle tree (the OpReplTree
// response).
func (l *Leader) Tree(shard int) ([]byte, error) {
	if shard < 0 || shard >= len(l.shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", wire.ErrMalformed, shard, len(l.shards))
	}
	t, err := BuildTree(l.shards[shard], l.opts.Ranges)
	if err != nil {
		return nil, err
	}
	return appendTree(nil, t), nil
}

// Repair answers one opaque OpReplRepair request: a page of live
// entries from the requested ranges, bounded by the smaller of
// maxBytes and MaxPageBytes.
func (l *Leader) Repair(req []byte, maxBytes int) ([]byte, error) {
	shard, want, resumeAfter, err := parseRepairReq(req, len(l.shards), l.opts.Ranges)
	if err != nil {
		return nil, err
	}
	if maxBytes <= 0 || maxBytes > l.opts.MaxPageBytes {
		maxBytes = l.opts.MaxPageBytes
	}
	db := l.shards[shard]
	pg := &RepairPage{Watermark: db.VisibleSeq()}
	var lower []byte
	if len(resumeAfter) > 0 {
		lower = append(append(make([]byte, 0, len(resumeAfter)+1), resumeAfter...), 0)
	}
	it, err := db.NewRangeIter(lower, nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	size := 0
	for ok := it.First(); ok; ok = it.Next() {
		if !want[RangeOf(it.Key(), l.opts.Ranges)] {
			continue
		}
		if size+len(it.Key())+len(it.Value())+16 > maxBytes && len(pg.Keys) > 0 {
			pg.More = true
			break
		}
		pg.Keys = append(pg.Keys, append([]byte(nil), it.Key()...))
		pg.Values = append(pg.Values, append([]byte(nil), it.Value()...))
		size += len(it.Key()) + len(it.Value()) + 16
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return appendRepairPage(nil, pg), nil
}

// Status encodes the leader's replication status (the OpReplStatus
// response).
func (l *Leader) Status() []byte {
	st := &Status{Leader: make([]uint64, len(l.shards))}
	for i, db := range l.shards {
		st.Leader[i] = db.VisibleSeq()
	}
	now := l.opts.NowNs()
	l.mu.Lock()
	for id, f := range l.followers {
		st.Followers = append(st.Followers, FollowerStatus{
			ID:       id,
			AckAgeNs: now - f.lastAckNs,
			Acked:    append([]uint64(nil), f.acked...),
		})
	}
	l.mu.Unlock()
	// Deterministic order for rendering and tests.
	for i := 1; i < len(st.Followers); i++ {
		for j := i; j > 0 && st.Followers[j-1].ID > st.Followers[j].ID; j-- {
			st.Followers[j-1], st.Followers[j] = st.Followers[j], st.Followers[j-1]
		}
	}
	return appendStatus(nil, st)
}
