package replica

import (
	"fmt"
	"testing"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

func openDB(t *testing.T, replica bool) *core.DB {
	t.Helper()
	opts := core.DefaultOptions(vfs.NewMem(), "db")
	opts.Replica = replica
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestMerkleTreeMatchesAcrossStores(t *testing.T) {
	a, b := openDB(t, false), openDB(t, false)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("val-%04d", i))
		if err := a.Put(k, v); err != nil {
			t.Fatal(err)
		}
		// Apply in a different order on b: leaves XOR entry digests, so
		// order must not matter.
		j := 499 - i
		if err := b.Put([]byte(fmt.Sprintf("key-%04d", j)), []byte(fmt.Sprintf("val-%04d", j))); err != nil {
			t.Fatal(err)
		}
	}
	// Different physical shape, same logical content.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	ta, err := BuildTree(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildTree(b, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Root != tb.Root {
		t.Fatalf("equal stores, different roots: %x vs %x", ta.Root, tb.Root)
	}
	if ta.Entries != 500 || tb.Entries != 500 {
		t.Fatalf("entries: %d, %d, want 500", ta.Entries, tb.Entries)
	}
	if div := ta.DivergentRanges(tb); div != nil {
		t.Fatalf("equal trees report divergence: %v", div)
	}
}

func TestMerkleDivergenceIsLocalized(t *testing.T) {
	a, b := openDB(t, false), openDB(t, false)
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("val-%04d", i))
		if err := a.Put(k, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	const ranges = 32
	victim := []byte("key-0123")
	if err := b.Put(victim, []byte("divergent")); err != nil {
		t.Fatal(err)
	}
	ta, _ := BuildTree(a, ranges)
	tb, _ := BuildTree(b, ranges)
	if ta.Root == tb.Root {
		t.Fatal("divergent stores, equal roots")
	}
	div := ta.DivergentRanges(tb)
	if len(div) != 1 || div[0] != RangeOf(victim, ranges) {
		t.Fatalf("divergence %v, want exactly range %d", div, RangeOf(victim, ranges))
	}
	// A tombstone hides the entry on both sides identically.
	if err := a.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(victim); err != nil {
		t.Fatal(err)
	}
	ta, _ = BuildTree(a, ranges)
	tb, _ = BuildTree(b, ranges)
	if ta.Root != tb.Root {
		t.Fatal("deletes did not reconverge the trees")
	}
}

func TestEntryDigestFraming(t *testing.T) {
	if entryDigest([]byte("ab"), []byte("c")) == entryDigest([]byte("a"), []byte("bc")) {
		t.Fatal("length prefixing failed: shifted key/value boundary collides")
	}
	if entryDigest([]byte("a"), nil) == entryDigest(nil, []byte("a")) {
		t.Fatal("empty key vs empty value collides")
	}
}

func TestTreeCodecRoundTrip(t *testing.T) {
	db := openDB(t, false)
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	want, err := BuildTree(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTree(appendTree(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != want.Root || got.Watermark != want.Watermark || got.Entries != want.Entries {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Leaves {
		if got.Leaves[i] != want.Leaves[i] {
			t.Fatalf("leaf %d differs after round trip", i)
		}
	}
}
