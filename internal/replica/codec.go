package replica

import (
	"fmt"

	"lsmlab/internal/wire"
)

// Payload codecs for the replication verbs. The server parses the
// simple requests (subscribe, ack, tree) itself with wire primitives —
// the layouts are documented on the opcodes in internal/wire — while
// the repair and status payloads are opaque to it: both ends encode and
// decode them here, so the serving layer never learns the Merkle
// protocol.

// AppendSubscribe encodes an OpReplSubscribe request: follower id,
// shard, and the last leader sequence number the follower has applied
// (the stream resumes at afterSeq+1).
func AppendSubscribe(dst []byte, id string, shard int, afterSeq uint64) []byte {
	dst = wire.AppendBytes(dst, []byte(id))
	dst = wire.AppendUvarint(dst, uint64(shard))
	return wire.AppendUvarint(dst, afterSeq)
}

// AppendAck encodes an OpReplAck request: the follower's applied-
// through leader sequence number for one shard.
func AppendAck(dst []byte, id string, shard int, appliedSeq uint64) []byte {
	dst = wire.AppendBytes(dst, []byte(id))
	dst = wire.AppendUvarint(dst, uint64(shard))
	return wire.AppendUvarint(dst, appliedSeq)
}

// AppendStreamFrame encodes one subscription stream payload: the kind
// byte, the leader's visibility watermark, and (for data frames) the
// raw WAL frame.
func AppendStreamFrame(dst []byte, kind byte, watermark uint64, raw []byte) []byte {
	dst = append(dst, kind)
	dst = wire.AppendUvarint(dst, watermark)
	return append(dst, raw...)
}

// ParseStreamFrame decodes one subscription stream payload.
func ParseStreamFrame(p []byte) (kind byte, watermark uint64, raw []byte, err error) {
	if len(p) == 0 {
		return 0, 0, nil, wire.ErrTruncated
	}
	kind = p[0]
	watermark, raw, err = wire.ReadUvarint(p[1:])
	if err != nil {
		return 0, 0, nil, err
	}
	if kind != wire.ReplFrameData && len(raw) != 0 {
		return 0, 0, nil, wire.ErrMalformed
	}
	return kind, watermark, raw, nil
}

// appendTree encodes an OpReplTree response.
func appendTree(dst []byte, t *Tree) []byte {
	dst = wire.AppendUvarint(dst, t.Watermark)
	dst = wire.AppendUvarint(dst, t.Entries)
	dst = wire.AppendUvarint(dst, uint64(len(t.Leaves)))
	for i := range t.Leaves {
		dst = append(dst, t.Leaves[i][:]...)
	}
	return append(dst, t.Root[:]...)
}

// ParseTree decodes an OpReplTree response.
func ParseTree(p []byte) (*Tree, error) {
	t := new(Tree)
	var err error
	if t.Watermark, p, err = wire.ReadUvarint(p); err != nil {
		return nil, err
	}
	if t.Entries, p, err = wire.ReadUvarint(p); err != nil {
		return nil, err
	}
	n, p, err := wire.ReadUvarint(p)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 || len(p) != (int(n)+1)*32 {
		return nil, wire.ErrMalformed
	}
	t.Leaves = make([][32]byte, n)
	for i := range t.Leaves {
		copy(t.Leaves[i][:], p[i*32:])
	}
	copy(t.Root[:], p[int(n)*32:])
	return t, nil
}

// AppendRepairReq encodes an OpReplRepair request: the shard, the set
// of divergent range indexes wanted, and the pagination resume key (the
// response continues strictly after it; empty starts from the front).
func AppendRepairReq(dst []byte, shard int, ranges []int, resumeAfter []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(shard))
	dst = wire.AppendUvarint(dst, uint64(len(ranges)))
	for _, r := range ranges {
		dst = wire.AppendUvarint(dst, uint64(r))
	}
	return wire.AppendBytes(dst, resumeAfter)
}

// parseRepairReq decodes an OpReplRepair request into the shard and a
// range membership set sized to numRanges.
func parseRepairReq(p []byte, numShards, numRanges int) (shard int, want []bool, resumeAfter []byte, err error) {
	s, p, err := wire.ReadUvarint(p)
	if err != nil {
		return 0, nil, nil, err
	}
	if s >= uint64(numShards) {
		return 0, nil, nil, fmt.Errorf("%w: shard %d of %d", wire.ErrMalformed, s, numShards)
	}
	n, p, err := wire.ReadUvarint(p)
	if err != nil {
		return 0, nil, nil, err
	}
	want = make([]bool, numRanges)
	for i := uint64(0); i < n; i++ {
		var r uint64
		if r, p, err = wire.ReadUvarint(p); err != nil {
			return 0, nil, nil, err
		}
		if r >= uint64(numRanges) {
			return 0, nil, nil, fmt.Errorf("%w: range %d of %d", wire.ErrMalformed, r, numRanges)
		}
		want[r] = true
	}
	resumeAfter, p, err = wire.ReadBytes(p)
	if err != nil || len(p) != 0 {
		return 0, nil, nil, wire.ErrMalformed
	}
	return int(s), want, resumeAfter, nil
}

// RepairPage is one OpReplRepair response: the leader's live entries of
// the requested ranges, in key order, resuming after the request's
// key. More reports whether another page follows (resume after the
// last key of this one).
type RepairPage struct {
	Watermark uint64
	More      bool
	Keys      [][]byte
	Values    [][]byte
}

// appendRepairPage encodes an OpReplRepair response.
func appendRepairPage(dst []byte, pg *RepairPage) []byte {
	dst = wire.AppendUvarint(dst, pg.Watermark)
	if pg.More {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = wire.AppendUvarint(dst, uint64(len(pg.Keys)))
	for i := range pg.Keys {
		dst = wire.AppendBytes(dst, pg.Keys[i])
		dst = wire.AppendBytes(dst, pg.Values[i])
	}
	return dst
}

// ParseRepairPage decodes an OpReplRepair response. The returned slices
// alias p.
func ParseRepairPage(p []byte) (*RepairPage, error) {
	pg := new(RepairPage)
	var err error
	if pg.Watermark, p, err = wire.ReadUvarint(p); err != nil {
		return nil, err
	}
	if len(p) == 0 {
		return nil, wire.ErrTruncated
	}
	pg.More = p[0] != 0
	n, p, err := wire.ReadUvarint(p[1:])
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var k, v []byte
		if k, p, err = wire.ReadBytes(p); err != nil {
			return nil, err
		}
		if v, p, err = wire.ReadBytes(p); err != nil {
			return nil, err
		}
		pg.Keys = append(pg.Keys, k)
		pg.Values = append(pg.Values, v)
	}
	if len(p) != 0 {
		return nil, wire.ErrMalformed
	}
	return pg, nil
}

// Status is the leader's replication view: its own per-shard visibility
// watermarks and, per known follower, the acked applied-through vector
// and the age of the last ack.
type Status struct {
	Leader    []uint64
	Followers []FollowerStatus
}

// FollowerStatus is one follower's row in Status.
type FollowerStatus struct {
	ID       string
	AckAgeNs int64
	Acked    []uint64
}

// Lag returns the follower's total sequence lag: the sum over shards of
// leader watermark minus acked watermark.
func (f *FollowerStatus) Lag(leader []uint64) uint64 {
	var lag uint64
	for i, a := range f.Acked {
		if i < len(leader) && leader[i] > a {
			lag += leader[i] - a
		}
	}
	return lag
}

// appendStatus encodes an OpReplStatus response.
func appendStatus(dst []byte, st *Status) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(st.Leader)))
	for _, w := range st.Leader {
		dst = wire.AppendUvarint(dst, w)
	}
	dst = wire.AppendUvarint(dst, uint64(len(st.Followers)))
	for i := range st.Followers {
		f := &st.Followers[i]
		dst = wire.AppendBytes(dst, []byte(f.ID))
		dst = wire.AppendUvarint(dst, uint64(f.AckAgeNs))
		for _, a := range f.Acked {
			dst = wire.AppendUvarint(dst, a)
		}
	}
	return dst
}

// ParseStatus decodes an OpReplStatus response.
func ParseStatus(p []byte) (*Status, error) {
	st := new(Status)
	n, p, err := wire.ReadUvarint(p)
	if err != nil || n > 1<<16 {
		return nil, wire.ErrMalformed
	}
	st.Leader = make([]uint64, n)
	for i := range st.Leader {
		if st.Leader[i], p, err = wire.ReadUvarint(p); err != nil {
			return nil, err
		}
	}
	fn, p, err := wire.ReadUvarint(p)
	if err != nil || fn > 1<<16 {
		return nil, wire.ErrMalformed
	}
	for i := uint64(0); i < fn; i++ {
		var f FollowerStatus
		var id []byte
		if id, p, err = wire.ReadBytes(p); err != nil {
			return nil, err
		}
		f.ID = string(id)
		var age uint64
		if age, p, err = wire.ReadUvarint(p); err != nil {
			return nil, err
		}
		f.AckAgeNs = int64(age)
		f.Acked = make([]uint64, n)
		for j := range f.Acked {
			if f.Acked[j], p, err = wire.ReadUvarint(p); err != nil {
				return nil, err
			}
		}
		st.Followers = append(st.Followers, f)
	}
	if len(p) != 0 {
		return nil, wire.ErrMalformed
	}
	return st, nil
}
