package replica

import (
	"lsmlab/internal/metrics"
	"lsmlab/internal/server"
)

// Engine adapts a follower store for serving: it embeds the store's
// own server.Engine surface but answers SeqVector — the WATERMARK
// verb — with the receiver's applied vector, which is denominated in
// LEADER sequence numbers. The follower's private sequence space is an
// implementation detail (repair writes consume local sequences the
// leader never issued); what a client's read-your-writes token can be
// compared against is how much of the leader's history this follower
// has applied, and that is exactly AppliedVector.
type Engine struct {
	server.Engine
	recv *Receiver
}

// NewEngine wraps a follower store (or sharded store) and its receiver.
func NewEngine(e server.Engine, r *Receiver) *Engine {
	return &Engine{Engine: e, recv: r}
}

// SeqVector reports the applied-through leader sequence per shard.
func (e *Engine) SeqVector() []uint64 { return e.recv.AppliedVector() }

// Metrics merges the receiver's replication counters into the store's
// engine snapshot, so a follower's STATS verb and /metrics endpoint
// report how much shipped and repaired data it has ingested.
func (e *Engine) Metrics() metrics.Snapshot {
	snap := e.Engine.Metrics()
	st := e.recv.Stats()
	snap.ReplBatchesApplied = int64(st.Batches)
	snap.ReplGapsSignaled = int64(st.Gaps)
	snap.ReplRepairOps = int64(st.RepairOps)
	return snap
}
