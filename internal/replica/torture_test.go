package replica_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/replica"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// TestReplicationTortureConvergence is the subsystem's acceptance
// harness: a leader takes a seeded random workload while its follower
// is crashed, restarted with a truncated or corrupted state file, and
// hit by at-rest bit rot in its sstables. After the storm quiesces, the
// follower must converge — byte-identical Merkle roots — and every
// write the leader acknowledged must read back correctly.
//
// TORTURE_REPL_ITERS raises the seed count (CI runs 50); the default
// keeps `go test` quick.
func TestReplicationTortureConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short")
	}
	iters := 6
	if s := os.Getenv("TORTURE_REPL_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad TORTURE_REPL_ITERS %q", s)
		}
		iters = n
	}
	for i := 0; i < iters; i++ {
		seed := int64(7001 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tortureOnce(t, seed)
		})
	}
}

func tortureOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	lopts := core.DefaultOptions(vfs.NewMem(), "leader")
	lopts.BufferBytes = 8 << 10 // frequent flushes delete WAL segments
	ldb, err := core.Open(lopts)
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	addr, _, _ := startLeader(t, ldb)

	base := vfs.NewMem()
	ffs := faultfs.New(base, seed)
	fopts := core.DefaultOptions(ffs, "follower")
	fopts.Replica = true
	fopts.BufferBytes = 8 << 10

	var (
		fdb  *core.DB
		recv *replica.Receiver
	)
	openFollower := func() {
		var err error
		fdb, err = core.Open(fopts)
		if err != nil {
			t.Fatalf("open follower: %v", err)
		}
		recv, err = replica.NewReceiver(replica.ReceiverOptions{
			Leader: addr, ID: "torture", FS: ffs, Dir: "follower",
			Shards:      []*core.DB{fdb},
			AckInterval: 5 * time.Millisecond, SessionLength: 250 * time.Millisecond,
			StreamTimeout: 500 * time.Millisecond, Backoff: 10 * time.Millisecond,
			Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("new receiver: %v", err)
		}
		recv.Start()
	}
	openFollower()
	defer func() {
		recv.Stop()
		fdb.Close()
	}()

	// flipFollowerTable damages one random follower sstable at rest.
	flipFollowerTable := func() {
		names, err := base.List("follower")
		if err != nil {
			return
		}
		var ssts []string
		for _, n := range names {
			if strings.HasSuffix(n, ".sst") {
				ssts = append(ssts, n)
			}
		}
		if len(ssts) == 0 {
			return
		}
		name := vfs.Join("follower", ssts[rng.Intn(len(ssts))])
		// A concurrent compaction may have removed the table; damage is
		// best-effort by nature.
		if err := ffs.FlipBit(name, -1); err != nil {
			t.Logf("flip %s: %v", name, err)
		} else {
			t.Logf("flipped a bit in %s", name)
		}
	}

	// catchUp waits for the follower to apply the leader's current
	// watermark, so each round's damage lands on a follower that has
	// real replicated state (streamed batches, flushed tables) — not on
	// an empty store the final repair would trivially rebuild.
	catchUp := func(round int) {
		want := ldb.VisibleSeq()
		deadline := time.Now().Add(30 * time.Second)
		for recv.AppliedVector()[0] < want {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: follower stuck at %d, leader at %d (stats %+v)",
					round, recv.AppliedVector()[0], want, recv.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	model := make(map[string]string)
	pad := strings.Repeat("x", 64) // force real follower flushes
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("k%04d", rng.Intn(400))
			if rng.Intn(10) == 0 {
				if err := ldb.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("r%d-%d-%d-%s", round, i, rng.Int63(), pad)
				if err := ldb.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
			if rng.Intn(40) == 0 {
				if err := ldb.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		catchUp(round)
		switch rng.Intn(3) {
		case 0:
			// Crash the follower process: stop replication, drop the
			// store, tear unsynced tails, sometimes corrupt or delete the
			// replication state file, then restart cold.
			t.Logf("round %d: crashing the follower", round)
			recv.Stop()
			if err := fdb.Close(); err != nil {
				t.Fatal(err)
			}
			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			state := vfs.Join("follower", "REPL")
			switch rng.Intn(3) {
			case 0:
				if base.Exists(state) {
					if err := ffs.FlipBit(state, -1); err != nil {
						t.Logf("flip state: %v", err)
					}
				}
			case 1:
				base.Remove(state)
			}
			if rng.Intn(2) == 0 {
				flipFollowerTable()
			}
			openFollower()
		case 1:
			t.Logf("round %d: bit rot on a live follower", round)
			flipFollowerTable()
		default:
			// Let a round replicate undisturbed.
		}
	}

	// Quiesce: no further leader writes. The follower must reach the
	// leader's watermark and the trees must agree byte for byte; bit rot
	// found on the way is scrubbed and repaired by anti-entropy.
	want := ldb.VisibleSeq()
	deadline := time.Now().Add(60 * time.Second)
	var lt, ft *replica.Tree
	for {
		if recv.AppliedVector()[0] >= want {
			var lerr, ferr error
			lt, lerr = replica.BuildTree(ldb, 0)
			ft, ferr = replica.BuildTree(fdb, 0)
			if lerr == nil && ferr == nil && lt.Root == ft.Root {
				break
			}
		}
		if time.Now().After(deadline) {
			st := recv.Stats()
			t.Fatalf("no convergence: applied=%d want=%d stats=%+v leader=%v follower=%v",
				recv.AppliedVector()[0], want, st, treeRoot(lt), treeRoot(ft))
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := recv.Stats()
	t.Logf("converged: %d entries, root %x (batches=%d gaps=%d corrupt=%d repair_rounds=%d repair_ops=%d)",
		lt.Entries, lt.Root[:8], st.Batches, st.Gaps, st.CorruptFrames, st.RepairRounds, st.RepairOps)

	// Every acknowledged write reads back; every delete stays deleted.
	for k, want := range model {
		v, err := fdb.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("follower %s = %q/%v, want %q", k, v, err, want)
		}
	}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%04d", i)
		if _, ok := model[k]; ok {
			continue
		}
		if _, err := fdb.Get([]byte(k)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("follower resurrected deleted key %s: %v", k, err)
		}
	}
}

func treeRoot(tr *replica.Tree) string {
	if tr == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%x", tr.Root[:8])
}
