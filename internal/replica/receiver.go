package replica

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
	"lsmlab/internal/wal"
	"lsmlab/internal/wire"
)

// errGap marks a stream session that ended because the contiguous WAL
// feed broke — a gap frame from the leader, a hole in the shipped
// sequence numbers, or a frame that failed its checksum. The shard loop
// answers every one of these the same way: Merkle repair, then
// resubscribe from the adopted watermark.
var errGap = errors.New("replica: replication stream gap")

// ReceiverOptions configures a Receiver.
type ReceiverOptions struct {
	// Leader is the leader server's address.
	Leader string
	// ID identifies this follower in acks and leader status. Defaults
	// to Dir.
	ID string
	// FS and Dir locate the replication state file (REPL), kept next to
	// the follower's store.
	FS  vfs.FS
	Dir string
	// Shards are the follower's shard stores in shard order, each opened
	// with core.Options.Replica. The count must match the leader's.
	Shards []*core.DB
	// Ranges is the Merkle fan-out; must match nothing (trees carry
	// their own width) but defaults to DefaultRanges like the leader.
	Ranges int
	// AckInterval paces the durability cycle: WAL sync, state-file
	// persist, ack to the leader. Default 50ms.
	AckInterval time.Duration
	// SessionLength bounds one subscription session; when it elapses the
	// shard runs its periodic anti-entropy check (the only detector for
	// silent local bit rot) and resubscribes. Default 30s.
	SessionLength time.Duration
	// StreamTimeout is how long a subscription tolerates silence before
	// declaring the leader dead; must comfortably exceed the leader's
	// heartbeat cadence. Default 2s.
	StreamTimeout time.Duration
	// RPCTimeout bounds one repair round trip (the leader may scan a
	// full shard to answer). Default 30s.
	RPCTimeout time.Duration
	// Backoff is the pause before redialing after a failure. Default
	// 100ms.
	Backoff time.Duration
	// MaxFrame caps response frames. Default wire.DefaultMaxFrame.
	MaxFrame int
	// Dial opens connections to the leader; default net.Dial("tcp", …).
	Dial func(addr string) (net.Conn, error)
	// Logf receives diagnostic messages; default discards.
	Logf func(format string, args ...any)
}

func (o ReceiverOptions) withDefaults() ReceiverOptions {
	if o.ID == "" {
		o.ID = o.Dir
	}
	if o.Ranges <= 0 {
		o.Ranges = DefaultRanges
	}
	if o.AckInterval <= 0 {
		o.AckInterval = 50 * time.Millisecond
	}
	if o.SessionLength <= 0 {
		o.SessionLength = 30 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 2 * time.Second
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 30 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = wire.DefaultMaxFrame
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Receiver is the follower half of replication: per shard, it
// subscribes to the leader's WAL stream and applies batches in shipped
// order through the store's replica path, falling back to Merkle
// anti-entropy whenever the contiguous feed breaks — and proactively at
// every session boundary, which is what heals silent local bit rot. A
// durability cycle (WAL sync → state-file persist → ack) runs on
// AckInterval, so the persisted applied-through watermark never claims
// more than the local log durably holds.
type Receiver struct {
	opts ReceiverOptions

	// applied[i] is shard i's applied-through *leader* sequence number:
	// the replication watermark that follower-side read-your-writes
	// tokens are checked against (the follower's own sequence space is
	// private to it). Starts at the sentinel 1.
	applied []atomic.Uint64
	// leaderSeen[i] is the latest leader visibility watermark observed
	// on shard i's stream — the lag denominator.
	leaderSeen []atomic.Uint64

	batches       atomic.Uint64
	gaps          atomic.Uint64
	corruptFrames atomic.Uint64
	repairRounds  atomic.Uint64
	repairOps     atomic.Uint64
	acks          atomic.Uint64

	stopc   chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	stateMu sync.Mutex
}

// NewReceiver validates the options, loads the persisted replication
// state (absent or damaged state degrades safely to "nothing applied" —
// the first session repairs), and returns a Receiver ready to Start.
func NewReceiver(opts ReceiverOptions) (*Receiver, error) {
	opts = opts.withDefaults()
	if len(opts.Shards) == 0 {
		return nil, errors.New("replica: no shards")
	}
	for i, db := range opts.Shards {
		if !db.IsReplica() {
			return nil, fmt.Errorf("replica: shard %d not opened with Options.Replica", i)
		}
	}
	r := &Receiver{
		opts:       opts,
		applied:    make([]atomic.Uint64, len(opts.Shards)),
		leaderSeen: make([]atomic.Uint64, len(opts.Shards)),
		stopc:      make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	vec := loadState(opts.FS, opts.Dir, len(opts.Shards))
	for i, s := range vec {
		r.applied[i].Store(s)
	}
	return r, nil
}

// Start launches the per-shard replication loops and the durability/ack
// loop.
func (r *Receiver) Start() {
	for i := range r.opts.Shards {
		r.wg.Add(1)
		go func(shard int) {
			defer r.wg.Done()
			r.shardLoop(shard)
		}(i)
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.ackLoop()
	}()
}

// Stop halts every loop, severs leader connections, runs one final
// durability cycle, and waits for the goroutines to exit.
func (r *Receiver) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	close(r.stopc)
	r.mu.Lock()
	for nc := range r.conns {
		nc.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.persist(r.AppliedVector())
}

// AppliedVector returns the per-shard applied-through leader sequence
// numbers — the follower's watermark in the leader's denomination. A
// follower server reports this as its SeqVector, which is what makes
// read-your-writes tokens (minted on the leader) checkable here.
func (r *Receiver) AppliedVector() []uint64 {
	vec := make([]uint64, len(r.applied))
	for i := range r.applied {
		vec[i] = r.applied[i].Load()
	}
	return vec
}

// SeqVector is AppliedVector under the name the server's Engine
// interface uses, so a follower engine wrapper can delegate to it.
func (r *Receiver) SeqVector() []uint64 { return r.AppliedVector() }

// LeaderVector returns the latest leader visibility watermarks observed
// per shard.
func (r *Receiver) LeaderVector() []uint64 {
	vec := make([]uint64, len(r.leaderSeen))
	for i := range r.leaderSeen {
		vec[i] = r.leaderSeen[i].Load()
	}
	return vec
}

// Stats is a snapshot of the receiver's counters.
type Stats struct {
	// Batches counts shipped WAL batches applied.
	Batches uint64
	// Gaps counts stream sessions that ended in a gap (leader-signaled,
	// sequence hole, or corrupt frame).
	Gaps uint64
	// CorruptFrames counts shipped frames that failed their checksum.
	CorruptFrames uint64
	// RepairRounds counts Merkle repair passes that re-shipped data;
	// RepairOps counts the puts and deletes they applied.
	RepairRounds uint64
	RepairOps    uint64
	// Acks counts durability cycles acknowledged to the leader.
	Acks uint64
}

// Stats returns the receiver's counters.
func (r *Receiver) Stats() Stats {
	return Stats{
		Batches:       r.batches.Load(),
		Gaps:          r.gaps.Load(),
		CorruptFrames: r.corruptFrames.Load(),
		RepairRounds:  r.repairRounds.Load(),
		RepairOps:     r.repairOps.Load(),
		Acks:          r.acks.Load(),
	}
}

func (r *Receiver) isStopped() bool { return r.stopped.Load() }

// sleep pauses for d, returning false if the receiver stopped first.
func (r *Receiver) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.stopc:
		return false
	case <-t.C:
		return true
	}
}

// dial opens and registers one leader connection; Stop closes every
// registered connection to unblock reads.
func (r *Receiver) dial() (net.Conn, error) {
	nc, err := r.opts.Dial(r.opts.Leader)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.stopped.Load() {
		r.mu.Unlock()
		nc.Close()
		return nil, errors.New("replica: stopped")
	}
	r.conns[nc] = struct{}{}
	r.mu.Unlock()
	return nc, nil
}

func (r *Receiver) release(nc net.Conn) {
	r.mu.Lock()
	delete(r.conns, nc)
	r.mu.Unlock()
	nc.Close()
}

// shardLoop alternates subscription sessions with anti-entropy passes
// until the receiver stops. Every session boundary — gap, error, or the
// periodic session length — funnels into the same repair step, which is
// a cheap tree exchange when nothing diverged.
func (r *Receiver) shardLoop(shard int) {
	for !r.isStopped() {
		err := r.streamOnce(shard)
		if r.isStopped() {
			return
		}
		if err != nil && !errors.Is(err, errGap) {
			r.opts.Logf("replica: shard %d: stream: %v", shard, err)
		}
		if err := r.repairShard(shard); err != nil {
			if !r.isStopped() {
				r.opts.Logf("replica: shard %d: repair: %v", shard, err)
				r.sleep(r.opts.Backoff)
			}
		}
	}
}

// streamOnce runs one subscription session: dial, subscribe after the
// current applied watermark, verify and apply shipped batches in order.
// It returns nil when the session length elapsed (periodic anti-entropy
// is due), errGap when the contiguous feed broke, and the underlying
// error otherwise.
func (r *Receiver) streamOnce(shard int) error {
	db := r.opts.Shards[shard]
	applied := r.applied[shard].Load()
	nc, err := r.dial()
	if err != nil {
		return err
	}
	defer r.release(nc)
	nc.SetWriteDeadline(time.Now().Add(r.opts.StreamTimeout))
	sub := AppendSubscribe(nil, r.opts.ID, shard, applied)
	if _, err := nc.Write(wire.AppendFrame(nil, wire.OpReplSubscribe, sub)); err != nil {
		return err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	sessionEnd := time.Now().Add(r.opts.SessionLength)
	var scratch []byte
	for {
		if r.isStopped() {
			return nil
		}
		dl := time.Now().Add(r.opts.StreamTimeout)
		if dl.After(sessionEnd) {
			dl = sessionEnd
		}
		nc.SetReadDeadline(dl)
		op, payload, buf, err := wire.ReadFrame(br, r.opts.MaxFrame, scratch)
		scratch = buf
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() && !time.Now().Before(sessionEnd) {
				return nil // session over: run the periodic anti-entropy check
			}
			return err
		}
		if op != wire.StatusOK {
			return fmt.Errorf("replica: subscribe answered %s: %s", wire.OpName(op), payload)
		}
		kind, w, raw, err := ParseStreamFrame(payload)
		if err != nil {
			return err
		}
		if w > r.leaderSeen[shard].Load() {
			r.leaderSeen[shard].Store(w)
		}
		switch kind {
		case wire.ReplFrameHeartbeat:
			continue
		case wire.ReplFrameGap:
			r.gaps.Add(1)
			return errGap
		case wire.ReplFrameData:
			b, err := wal.DecodeFrame(raw)
			if err != nil {
				// Damaged in flight (or at the leader): the frame carries the
				// leader's original checksum, so never apply it — repair
				// re-bases this shard instead.
				r.corruptFrames.Add(1)
				r.gaps.Add(1)
				return errGap
			}
			last := uint64(b.LastSeq())
			if last <= applied {
				continue // duplicate from the segment's already-applied prefix
			}
			if uint64(b.Seq) != applied+1 {
				r.gaps.Add(1)
				return errGap
			}
			for _, op := range b.Ops {
				if op.Kind == kv.KindValuePointer {
					return errors.New("replica: leader ships value-log pointers; " +
						"key–value separation is not replicable (run the leader without it)")
				}
			}
			if err := db.ReplicaApply(b.Ops); err != nil {
				return err
			}
			applied = last
			r.applied[shard].Store(applied)
			r.batches.Add(1)
		default:
			return fmt.Errorf("replica: unknown stream frame kind 0x%02x", kind)
		}
	}
}

// adopt raises shard's applied watermark to w (never lowers it). Repair
// calls it with the watermark of the tree it converged against: every
// leader write at or below w is now reflected locally, and replaying
// the suffix after w in order reconverges everything newer.
func (r *Receiver) adopt(shard int, w uint64) {
	for {
		cur := r.applied[shard].Load()
		if w <= cur || r.applied[shard].CompareAndSwap(cur, w) {
			return
		}
	}
}

// repairShard runs Merkle anti-entropy for one shard: exchange trees,
// re-ship divergent ranges, repeat until the trees agree (or a bounded
// number of rounds under live load — the resumed stream closes the
// remaining distance). A clean shard costs one tree exchange.
func (r *Receiver) repairShard(shard int) error {
	db := r.opts.Shards[shard]
	rc, err := r.dialRPC()
	if err != nil {
		return err
	}
	defer r.release(rc.nc)
	const maxRounds = 4
	for round := 0; ; round++ {
		if r.isStopped() {
			return nil
		}
		resp, err := rc.call(wire.OpReplTree, wire.AppendUvarint(nil, uint64(shard)))
		if err != nil {
			return err
		}
		lt, err := ParseTree(resp)
		if err != nil {
			return err
		}
		local, err := r.buildLocalTree(db)
		if err != nil {
			return err
		}
		div := local.DivergentRanges(lt)
		if len(div) == 0 {
			r.adopt(shard, lt.Watermark)
			return nil
		}
		if round >= maxRounds {
			// Divergence that persists across rounds under live leader load
			// is expected — the trees chase a moving target. The adopted
			// watermarks make the resumed stream close the distance.
			r.opts.Logf("replica: shard %d: %d ranges still divergent after %d repair rounds; resuming stream",
				shard, len(div), round)
			return nil
		}
		r.repairRounds.Add(1)
		if err := r.repairRanges(db, rc, shard, div); err != nil {
			return err
		}
		r.adopt(shard, lt.Watermark)
	}
}

// buildLocalTree builds this follower's tree, scrubbing and retrying
// once if the scan surfaces corruption (the scrub quarantines damaged
// tables, so the retry sees a clean — if smaller — store whose missing
// entries the repair pass then restores).
func (r *Receiver) buildLocalTree(db *core.DB) (*Tree, error) {
	t, err := BuildTree(db, r.opts.Ranges)
	if err == nil {
		return t, nil
	}
	r.opts.Logf("replica: local tree scan: %v; scrubbing", err)
	if _, serr := db.Scrub(); serr != nil {
		return nil, serr
	}
	return BuildTree(db, r.opts.Ranges)
}

// repairRanges re-ships the divergent ranges: it pages the leader's
// live entries for those ranges (key-ordered) while walking a local
// snapshot of the same ranges, and applies the difference — changed or
// missing entries as puts, local-only keys as deletes — through the
// replica repair path in bounded batches.
func (r *Receiver) repairRanges(db *core.DB, rc *rpcConn, shard int, div []int) error {
	inDiv := make([]bool, r.opts.Ranges)
	for _, d := range div {
		inDiv[d] = true
	}
	it, err := db.NewRangeIter(nil, nil)
	if err != nil {
		return err
	}
	defer it.Close()
	// The iterator is a snapshot: the repair writes below stay invisible
	// to it, so the walk is stable.
	lok := it.First()
	localNext := func() bool {
		for {
			if !lok {
				return false
			}
			if inDiv[RangeOf(it.Key(), r.opts.Ranges)] {
				return true
			}
			lok = it.Next()
		}
	}
	batch := new(core.Batch)
	ops := 0
	flush := func(force bool) error {
		if batch.Len() == 0 || (!force && batch.Len() < 256) {
			return nil
		}
		ops += batch.Len()
		err := db.ReplicaRepair(batch)
		batch.Reset()
		return err
	}

	var resume []byte
	for {
		resp, err := rc.call(wire.OpReplRepair, AppendRepairReq(nil, shard, div, resume))
		if err != nil {
			return err
		}
		pg, err := ParseRepairPage(resp)
		if err != nil {
			return err
		}
		for i := range pg.Keys {
			k, v := pg.Keys[i], pg.Values[i]
			for localNext() && bytes.Compare(it.Key(), k) < 0 {
				batch.Delete(it.Key())
				lok = it.Next()
				if err := flush(false); err != nil {
					return err
				}
			}
			if localNext() && bytes.Equal(it.Key(), k) {
				if !bytes.Equal(it.Value(), v) {
					batch.Put(k, v)
				}
				lok = it.Next()
			} else {
				batch.Put(k, v)
			}
			if err := flush(false); err != nil {
				return err
			}
		}
		if !pg.More || len(pg.Keys) == 0 {
			break
		}
		resume = append(resume[:0], pg.Keys[len(pg.Keys)-1]...)
	}
	// Leader exhausted: every remaining local key in the divergent
	// ranges has no leader counterpart.
	for localNext() {
		batch.Delete(it.Key())
		lok = it.Next()
		if err := flush(false); err != nil {
			return err
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if err := flush(true); err != nil {
		return err
	}
	r.repairOps.Add(uint64(ops))
	return nil
}

// ackLoop is the durability cycle: every AckInterval, sync each shard's
// WAL, persist the applied vector, then ack it to the leader — in that
// order, so neither the state file nor the leader ever believes more
// than the local log durably holds.
func (r *Receiver) ackLoop() {
	var rc *rpcConn
	defer func() {
		if rc != nil {
			r.release(rc.nc)
		}
	}()
	for r.sleep(r.opts.AckInterval) {
		vec := r.AppliedVector()
		synced := true
		for _, db := range r.opts.Shards {
			if err := db.SyncWAL(); err != nil {
				r.opts.Logf("replica: wal sync: %v", err)
				synced = false
				break
			}
		}
		if !synced {
			continue
		}
		if err := r.persist(vec); err != nil {
			r.opts.Logf("replica: persist state: %v", err)
			continue
		}
		if rc == nil {
			var err error
			if rc, err = r.dialRPC(); err != nil {
				continue // leader down; acks resume with it
			}
		}
		for shard, seq := range vec {
			if _, err := rc.call(wire.OpReplAck, AppendAck(nil, r.opts.ID, shard, seq)); err != nil {
				r.release(rc.nc)
				rc = nil
				break
			}
		}
		if rc != nil {
			r.acks.Add(1)
		}
	}
}

// ---------------------------------------------------------------------
// Replication state file

// stateName is the follower's replication state file: the applied
// leader-sequence vector, CRC-protected. It lives in the store
// directory; the engine's directory scans are suffix-filtered, so it is
// invisible to them. A missing or damaged file degrades to "nothing
// applied", which is safe: the next session starts with repair.
const stateName = "REPL"

var stateMagic = []byte("LSMREPL1")

var stateCRCTable = crc32.MakeTable(crc32.Castagnoli)

// persist writes the applied vector durably.
func (r *Receiver) persist(vec []uint64) error {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	buf := append([]byte(nil), stateMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(vec)))
	for _, s := range vec {
		buf = binary.AppendUvarint(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, stateCRCTable))
	f, err := r.opts.FS.Create(vfs.Join(r.opts.Dir, stateName))
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadState reads the persisted applied vector, returning sentinel 1s
// (nothing applied) for a missing, damaged, or mis-sized file.
func loadState(fs vfs.FS, dir string, n int) []uint64 {
	vec := make([]uint64, n)
	for i := range vec {
		vec[i] = 1
	}
	f, err := fs.Open(vfs.Join(dir, stateName))
	if err != nil {
		return vec
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil || size < int64(len(stateMagic))+5 || size > 1<<20 {
		return vec
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return vec
	}
	body, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if !bytes.HasPrefix(body, stateMagic) || crc32.Checksum(body, stateCRCTable) != crc {
		return vec
	}
	p := body[len(stateMagic):]
	count, off := binary.Uvarint(p)
	if off <= 0 || count != uint64(n) {
		return vec
	}
	p = p[off:]
	for i := 0; i < n; i++ {
		s, off := binary.Uvarint(p)
		if off <= 0 {
			return vec
		}
		if s > 1 {
			vec[i] = s
		}
		p = p[off:]
	}
	return vec
}

// ---------------------------------------------------------------------
// Request/response connection to the leader

// rpcConn is a plain request/response connection for the ack and repair
// verbs (the subscription stream runs on its own connection). Calls are
// sequential; responses alias an internal buffer valid until the next
// call.
type rpcConn struct {
	nc      net.Conn
	br      *bufio.Reader
	scratch []byte
	timeout time.Duration
	max     int
}

func (r *Receiver) dialRPC() (*rpcConn, error) {
	nc, err := r.dial()
	if err != nil {
		return nil, err
	}
	return &rpcConn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10),
		timeout: r.opts.RPCTimeout, max: r.opts.MaxFrame}, nil
}

func (c *rpcConn) call(op byte, payload []byte) ([]byte, error) {
	c.nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.nc.Write(wire.AppendFrame(nil, op, payload)); err != nil {
		return nil, err
	}
	status, resp, buf, err := wire.ReadFrame(c.br, c.max, c.scratch)
	c.scratch = buf
	if err != nil {
		return nil, err
	}
	if status != wire.StatusOK {
		return nil, fmt.Errorf("replica: %s answered %s: %s",
			wire.OpName(op), wire.OpName(status), resp)
	}
	return resp, nil
}
