package replica_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/replica"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
)

// fastLeader wraps a store in a leader server with test-speed
// replication cadences.
func startLeader(t *testing.T, db *core.DB) (string, *replica.Leader, *server.Server) {
	t.Helper()
	lead := replica.NewLeader([]*core.DB{db}, replica.LeaderOptions{
		Poll: 500 * time.Microsecond, Heartbeat: 20 * time.Millisecond,
	})
	srv := server.New(db, server.Options{Repl: lead})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), lead, srv
}

func startFollower(t *testing.T, addr string) (*core.DB, *replica.Receiver) {
	t.Helper()
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "follower")
	opts.Replica = true
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	recv, err := replica.NewReceiver(replica.ReceiverOptions{
		Leader: addr, ID: "f1", FS: fs, Dir: "follower",
		Shards:      []*core.DB{db},
		AckInterval: 10 * time.Millisecond, SessionLength: 2 * time.Second,
		StreamTimeout: time.Second, Backoff: 20 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv.Start()
	t.Cleanup(recv.Stop)
	return db, recv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicationStreamsWrites(t *testing.T) {
	ldb, err := core.Open(core.DefaultOptions(vfs.NewMem(), "leader"))
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	addr, lead, lsrv := startLeader(t, ldb)
	fdb, recv := startFollower(t, addr)

	for i := 0; i < 200; i++ {
		if err := ldb.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := ldb.VisibleSeq()
	waitFor(t, "follower to catch up", func() bool {
		return recv.AppliedVector()[0] >= want
	})
	for i := 0; i < 200; i++ {
		v, err := fdb.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("follower get k%04d: %q, %v", i, v, err)
		}
	}
	// Deletes ship too.
	if err := ldb.Delete([]byte("k0100")); err != nil {
		t.Fatal(err)
	}
	want = ldb.VisibleSeq()
	waitFor(t, "delete to ship", func() bool { return recv.AppliedVector()[0] >= want })
	if _, err := fdb.Get([]byte("k0100")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("deleted key still readable on follower: %v", err)
	}
	// The follower acks: the leader's status sees it converge.
	waitFor(t, "leader to see the ack", func() bool {
		st, err := replica.ParseStatus(lead.Status())
		if err != nil || len(st.Followers) != 1 {
			return false
		}
		return st.Followers[0].Acked[0] >= want
	})
	// External writes on the follower are refused as replica writes.
	if err := fdb.Put([]byte("x"), []byte("y")); !errors.Is(err, core.ErrReplica) {
		t.Fatalf("follower accepted an external write: %v", err)
	}
	// Convergence is provable: identical Merkle roots.
	lt, err := replica.BuildTree(ldb, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := replica.BuildTree(fdb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Root != ft.Root {
		t.Fatalf("roots diverge after catch-up: %x vs %x", lt.Root, ft.Root)
	}
	// Both ends account for the work: the leader's serving layer counts
	// the stream, the follower's engine snapshot (via the replica engine
	// wrapper) counts the applies.
	net := lsrv.Metrics()
	if net.ReplSubscribes < 1 || net.ReplFramesShipped == 0 || net.ReplAcks == 0 {
		t.Fatalf("leader repl counters empty: subscribes=%d frames=%d acks=%d",
			net.ReplSubscribes, net.ReplFramesShipped, net.ReplAcks)
	}
	feng := replica.NewEngine(fdb, recv).Metrics()
	if feng.ReplBatchesApplied == 0 {
		t.Fatalf("follower repl counters empty: %+v", feng)
	}
}

func TestReplicationBootstrapsThroughRepair(t *testing.T) {
	ldb, err := core.Open(core.DefaultOptions(vfs.NewMem(), "leader"))
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	// Populate and flush BEFORE any follower exists: the flush deletes
	// the WAL segments, so a joining follower cannot stream from seq 1 —
	// it must bootstrap via a gap frame and Merkle repair.
	for i := 0; i < 300; i++ {
		if err := ldb.Put([]byte(fmt.Sprintf("old-%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ldb.Flush(); err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startLeader(t, ldb)
	fdb, recv := startFollower(t, addr)

	want := ldb.VisibleSeq()
	waitFor(t, "bootstrap repair to adopt the leader watermark", func() bool {
		return recv.AppliedVector()[0] >= want
	})
	if recv.Stats().Gaps == 0 {
		t.Fatal("bootstrap did not go through a gap signal")
	}
	if recv.Stats().RepairRounds == 0 {
		t.Fatal("bootstrap did not run a repair round")
	}
	// After the repair, new writes arrive by streaming.
	for i := 0; i < 50; i++ {
		if err := ldb.Put([]byte(fmt.Sprintf("new-%04d", i)), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	want = ldb.VisibleSeq()
	waitFor(t, "post-bootstrap streaming", func() bool { return recv.AppliedVector()[0] >= want })
	lt, _ := replica.BuildTree(ldb, 0)
	ft, _ := replica.BuildTree(fdb, 0)
	if lt == nil || ft == nil || lt.Root != ft.Root {
		t.Fatal("roots diverge after bootstrap + streaming")
	}
}

func TestReplicationStatePersistsAcrossRestart(t *testing.T) {
	ldb, err := core.Open(core.DefaultOptions(vfs.NewMem(), "leader"))
	if err != nil {
		t.Fatal(err)
	}
	defer ldb.Close()
	addr, _, _ := startLeader(t, ldb)

	fs := vfs.NewMem()
	fopts := core.DefaultOptions(fs, "follower")
	fopts.Replica = true
	fdb, err := core.Open(fopts)
	if err != nil {
		t.Fatal(err)
	}
	ropts := replica.ReceiverOptions{
		Leader: addr, ID: "f1", FS: fs, Dir: "follower",
		Shards:      []*core.DB{fdb},
		AckInterval: 5 * time.Millisecond, StreamTimeout: time.Second,
		Backoff: 20 * time.Millisecond, Logf: t.Logf,
	}
	recv, err := replica.NewReceiver(ropts)
	if err != nil {
		t.Fatal(err)
	}
	recv.Start()
	for i := 0; i < 100; i++ {
		if err := ldb.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	want := ldb.VisibleSeq()
	waitFor(t, "first receiver to catch up", func() bool {
		return recv.AppliedVector()[0] >= want
	})
	recv.Stop()
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the follower: the persisted state must resume at (or
	// before) the applied watermark, never ahead of it.
	fdb2, err := core.Open(fopts)
	if err != nil {
		t.Fatal(err)
	}
	defer fdb2.Close()
	ropts.Shards = []*core.DB{fdb2}
	recv2, err := replica.NewReceiver(ropts)
	if err != nil {
		t.Fatal(err)
	}
	if got := recv2.AppliedVector()[0]; got < want {
		t.Fatalf("persisted watermark regressed: %d < %d", got, want)
	}
	recv2.Start()
	defer recv2.Stop()
	for i := 0; i < 20; i++ {
		if err := ldb.Put([]byte(fmt.Sprintf("more-%02d", i)), []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	want = ldb.VisibleSeq()
	waitFor(t, "restarted receiver to stream", func() bool {
		return recv2.AppliedVector()[0] >= want
	})
	if v, err := fdb2.Get([]byte("more-19")); err != nil || string(v) != "w" {
		t.Fatalf("post-restart streamed key: %q, %v", v, err)
	}
}
