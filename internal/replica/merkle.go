// Package replica implements leader-based replication for the store:
// the leader ships committed WAL groups to read replicas over the wire
// protocol's replication verbs, and a background anti-entropy loop
// compares Merkle trees of the live data so any divergence — a follower
// that fell out of WAL retention, crash damage, silent bit rot — is
// detected and healed by re-shipping only the divergent hash ranges.
//
// The two halves are Leader (plugged into the server as its
// server.Options.Repl hook) and Receiver (run next to a follower store
// opened with core.Options.Replica). The follower keeps its own local
// sequence space; what makes it a faithful copy is that shipped batches
// apply in the leader's commit order, while the receiver separately
// tracks how far through the *leader's* sequence space it has applied —
// the watermark that read-your-writes tokens are checked against.
package replica

import (
	"crypto/sha256"
	"encoding/binary"

	"lsmlab/internal/bloom"
	"lsmlab/internal/core"
)

// DefaultRanges is the default Merkle fan-out: the number of hash
// ranges (leaves) a shard's key space is divided into. More ranges
// localize divergence better (less re-shipped data per difference) at
// the cost of a larger tree exchange.
const DefaultRanges = 64

// Tree is the Merkle summary of one shard's live data: every visible
// user key with its resolved value (tombstones hidden, merges folded,
// value pointers chased), bucketed by key hash into Leaves, combined
// into Root.
type Tree struct {
	// Watermark is the shard's VisibleSeq captured before the scan, so
	// the tree reflects at least every write at or below it.
	Watermark uint64
	// Entries counts the live entries scanned.
	Entries uint64
	// Leaves holds one digest per hash range: the XOR of the entry
	// digests that hash into it. XOR makes the leaf order-independent
	// and incrementally computable in one scan.
	Leaves [][32]byte
	// Root is the binary sha256 tree over Leaves.
	Root [32]byte
}

// RangeOf returns the Merkle range (leaf index) owning key. The hash is
// the same one shard routing uses, but modulo the range count — within
// one shard the ranges slice its keys a second time.
func RangeOf(key []byte, numRanges int) int {
	return int(bloom.Hash64(key) % uint64(numRanges))
}

// entryDigest hashes one entry as length-prefixed key then value, so
// (k="ab",v="c") and (k="a",v="bc") cannot collide.
func entryDigest(key, value []byte) [32]byte {
	h := sha256.New()
	var n [binary.MaxVarintLen64]byte
	h.Write(n[:binary.PutUvarint(n[:], uint64(len(key)))])
	h.Write(key)
	h.Write(n[:binary.PutUvarint(n[:], uint64(len(value)))])
	h.Write(value)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// BuildTree scans db's live entries and folds them into a Merkle tree
// with numRanges leaves. A scan error (e.g. a corrupt table discovered
// mid-walk) aborts the build; the caller typically runs Scrub to
// quarantine the damage and retries.
func BuildTree(db *core.DB, numRanges int) (*Tree, error) {
	if numRanges <= 0 {
		numRanges = DefaultRanges
	}
	t := &Tree{Watermark: db.VisibleSeq(), Leaves: make([][32]byte, numRanges)}
	it, err := db.NewRangeIter(nil, nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		d := entryDigest(it.Key(), it.Value())
		leaf := &t.Leaves[RangeOf(it.Key(), numRanges)]
		for i := range leaf {
			leaf[i] ^= d[i]
		}
		t.Entries++
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	t.Root = rootOf(t.Leaves)
	return t, nil
}

// rootOf folds the leaves pairwise with sha256 until one digest
// remains; an odd node is promoted unhashed to the next level.
func rootOf(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var d [32]byte
			h.Sum(d[:0])
			next = append(next, d)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// DivergentRanges returns the leaf indexes where t and other disagree —
// the hash ranges anti-entropy must re-ship. Equal roots short-circuit
// to none. Trees of different fan-out cannot be compared leaf by leaf,
// so every range of the wider tree is reported divergent.
func (t *Tree) DivergentRanges(other *Tree) []int {
	if len(t.Leaves) == len(other.Leaves) && t.Root == other.Root {
		return nil
	}
	n := len(t.Leaves)
	if len(other.Leaves) > n {
		n = len(other.Leaves)
	}
	var div []int
	for i := 0; i < n; i++ {
		if i >= len(t.Leaves) || i >= len(other.Leaves) || t.Leaves[i] != other.Leaves[i] {
			div = append(div, i)
		}
	}
	return div
}
