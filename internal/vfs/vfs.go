// Package vfs provides the filesystem abstraction beneath the storage
// engine. Two implementations exist: MemFS, a deterministic in-memory
// filesystem used by tests and experiments, and OSFS, a thin wrapper
// over the operating system.
//
// The package also provides CountingFS, which wraps any FS and accounts
// for I/O at page (4 KiB) granularity, and an optional latency model
// that accumulates *simulated* device time instead of sleeping. The
// tutorial's experimental claims are about I/O counts and read/write
// amplification; the counting layer is what lets every experiment report
// them exactly and deterministically.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the granularity at which CountingFS accounts I/O
// operations, matching the block size used by the SSTable format.
const PageSize = 4096

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrExist is returned when creating a file that already exists with
// CreateExcl semantics (not currently used by Create, which truncates).
var ErrExist = errors.New("vfs: file already exists")

// ErrNoSpace is the portable out-of-space condition. Fault-injection
// wrappers (faultfs byte budgets) wrap it so the engine can classify a
// failed write as disk-full without depending on the injector; OS-level
// ENOSPC is classified separately via syscall.ENOSPC.
var ErrNoSpace = errors.New("vfs: no space left on device")

// File is an open file handle. Writers append sequentially (the engine
// only ever writes immutable files front to back); readers use ReadAt.
type File interface {
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Size returns the current size of the file in bytes.
	Size() (int64, error)
}

// FS is the filesystem interface the engine is written against.
type FS interface {
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldname, newname string) error
	// List returns the names (not paths) of files in dir, sorted.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
}

// ---------------------------------------------------------------------
// MemFS

// MemFS is a concurrency-safe in-memory filesystem. It is the substrate
// for all experiments: deterministic, fast, and wrappable with I/O
// accounting.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFileData
	dirs  map[string]bool
	// syncDelayNs, when non-zero, makes every File.Sync block for that
	// long (a real sleep). It models device fsync latency so durability
	// optimizations — group commit amortizing one sync across many
	// writers — are measurable without a physical disk.
	syncDelayNs atomic.Int64
}

// SetSyncDelay makes subsequent Sync calls on files of this filesystem
// block for d. Zero (the default) restores free syncs.
func (fs *MemFS) SetSyncDelay(d time.Duration) { fs.syncDelayNs.Store(int64(d)) }

type memFileData struct {
	mu   sync.RWMutex
	data []byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memFileData), dirs: map[string]bool{".": true, "/": true}}
}

func clean(name string) string { return filepath.Clean(name) }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd := &memFileData{}
	fs.files[name] = fd
	return &memFile{fs: fs, fd: fd, writable: true}, nil
}

// Append implements FS.
func (fs *MemFS) Append(name string) (File, error) {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		fd = &memFileData{}
		fs.files[name] = fd
	}
	return &memFile{fs: fs, fd: fd, writable: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	name = clean(name)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	fd, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &memFile{fs: fs, fd: fd}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	name = clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = fd
	return nil
}

// List implements FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	dir = clean(dir)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[clean(dir)] = true
	return nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[clean(name)]
	return ok
}

// TotalBytes returns the sum of all file sizes: the store's disk
// footprint, used to measure space amplification.
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var total int64
	for _, fd := range fs.files {
		fd.mu.RLock()
		total += int64(len(fd.data))
		fd.mu.RUnlock()
	}
	return total
}

type memFile struct {
	fs       *MemFS
	fd       *memFileData
	writable bool
	closed   bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, errors.New("vfs: write on closed file")
	}
	if !f.writable {
		return 0, errors.New("vfs: file opened read-only")
	}
	f.fd.mu.Lock()
	d := f.fd.data
	if need := len(d) + len(p); need > cap(d) {
		// Grow by doubling rather than append's large-slice growth
		// factor: WAL segments take hundreds of thousands of small
		// appends, and fewer reallocations means far less copying and
		// garbage while the commit pipeline holds the WAL lock.
		newCap := 2 * cap(d)
		if newCap < need {
			newCap = need
		}
		if newCap < 4096 {
			newCap = 4096
		}
		nd := make([]byte, len(d), newCap)
		copy(nd, d)
		d = nd
	}
	f.fd.data = append(d, p...)
	f.fd.mu.Unlock()
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, errors.New("vfs: read on closed file")
	}
	f.fd.mu.RLock()
	defer f.fd.mu.RUnlock()
	if off >= int64(len(f.fd.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.fd.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Size() (int64, error) {
	f.fd.mu.RLock()
	defer f.fd.mu.RUnlock()
	return int64(len(f.fd.data)), nil
}

func (f *memFile) Sync() error {
	if d := f.fs.syncDelayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return nil
}
func (f *memFile) Close() error {
	f.closed = true
	return nil
}

// ---------------------------------------------------------------------
// OSFS

// OSFS is the operating-system filesystem.
type OSFS struct{}

// NewOS returns a filesystem backed by the operating system.
func NewOS() OSFS { return OSFS{} }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Append implements FS.
func (OSFS) Append(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Exists implements FS.
func (OSFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

// Join joins path elements with the platform separator; provided here so
// callers need not import path/filepath alongside vfs.
func Join(elem ...string) string { return filepath.Join(elem...) }

// Base returns the last element of the path.
func Base(p string) string { return filepath.Base(p) }

// HasSuffix reports whether the file name has the given extension.
func HasSuffix(name, suffix string) bool { return strings.HasSuffix(name, suffix) }
