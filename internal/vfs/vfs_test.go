package vfs

import (
	"errors"
	"io"
	"testing"
)

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMem()
	f, err := fs.Create("dir/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("dir/file")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("read %q", buf)
	}
	if sz, _ := r.Size(); sz != 11 {
		t.Errorf("size %d", sz)
	}
}

func TestMemFSReadAtEOF(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	f.Write([]byte("abc"))
	f.Close()
	r, _ := fs.Open("f")
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Errorf("short read: n=%d err=%v", n, err)
	}
	if _, err := r.ReadAt(buf, 99); err != io.EOF {
		t.Errorf("read past end: %v", err)
	}
}

func TestMemFSOpenMissing(t *testing.T) {
	fs := NewMem()
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("want ErrNotExist, got %v", err)
	}
	if fs.Exists("nope") {
		t.Error("Exists on missing file")
	}
}

func TestMemFSRemoveRename(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	f.Close()
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || !fs.Exists("b") {
		t.Error("rename did not move file")
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("b") {
		t.Error("remove left file")
	}
	if err := fs.Remove("b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: %v", err)
	}
	if err := fs.Rename("b", "c"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing: %v", err)
	}
}

func TestMemFSList(t *testing.T) {
	fs := NewMem()
	for _, n := range []string{"d/2", "d/1", "d/sub-not-really", "other/x"} {
		f, _ := fs.Create(n)
		f.Close()
	}
	names, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2", "sub-not-really"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d]=%q want %q", i, names[i], want[i])
		}
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write(make([]byte, 100))
	f.Close()
	g, _ := fs.Create("b")
	g.Write(make([]byte, 50))
	g.Close()
	if got := fs.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestMemFSClosedFile(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Error("write on closed file must fail")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
		t.Error("read on closed file must fail")
	}
}

func TestMemFSReadOnlyHandle(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("a")
	f.Write([]byte("x"))
	f.Close()
	r, _ := fs.Open("a")
	if _, err := r.Write([]byte("y")); err == nil {
		t.Error("write on read-only handle must fail")
	}
}

func TestCountingFS(t *testing.T) {
	c := NewCounting(NewMem())
	f, _ := c.Create("a")
	f.Write(make([]byte, 5000)) // 2 pages
	f.Write(make([]byte, 100))  // 1 page
	f.Close()
	r, _ := c.Open("a")
	r.ReadAt(make([]byte, 4096), 0) // 1 page
	r.ReadAt(make([]byte, 10), 0)   // 1 page (rounded up)
	r.Close()

	s := c.Stats()
	if s.BytesWritten != 5100 || s.WriteOps != 2 || s.PagesWritten != 3 {
		t.Errorf("write stats: %+v", s)
	}
	if s.BytesRead != 4106 || s.ReadOps != 2 || s.PagesRead != 2 {
		t.Errorf("read stats: %+v", s)
	}

	c.Reset()
	if s := c.Stats(); s.BytesWritten != 0 || s.PagesRead != 0 {
		t.Errorf("reset: %+v", s)
	}
}

func TestCountingFSLatency(t *testing.T) {
	m := LatencyModel{ReadOpNs: 100, WriteOpNs: 10, ReadByteNs: 1024, WriteByteNs: 2048}
	c := NewCountingWithLatency(NewMem(), m)
	f, _ := c.Create("a")
	f.Write(make([]byte, 1024)) // 10 + 2048*1 = 2058
	f.Close()
	r, _ := c.Open("a")
	r.ReadAt(make([]byte, 1024), 0) // 100 + 1024*1 = 1124
	r.Close()
	if got := c.Stats().SimulatedNs; got != 2058+1124 {
		t.Errorf("SimulatedNs = %d, want %d", got, 2058+1124)
	}
}

func TestIOStatsSub(t *testing.T) {
	a := IOStats{BytesRead: 10, BytesWritten: 20, ReadOps: 1, WriteOps: 2, PagesRead: 3, PagesWritten: 4, SimulatedNs: 5}
	b := IOStats{BytesRead: 4, BytesWritten: 8, ReadOps: 1, WriteOps: 1, PagesRead: 1, PagesWritten: 1, SimulatedNs: 1}
	d := a.Sub(b)
	if d.BytesRead != 6 || d.BytesWritten != 12 || d.ReadOps != 0 || d.WriteOps != 1 ||
		d.PagesRead != 2 || d.PagesWritten != 3 || d.SimulatedNs != 4 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestOSFS(t *testing.T) {
	fs := NewOS()
	dir := t.TempDir()
	name := Join(dir, "f")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !fs.Exists(name) {
		t.Error("Exists")
	}
	r, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := r.Size(); sz != 4 {
		t.Errorf("size %d", sz)
	}
	buf := make([]byte, 4)
	r.ReadAt(buf, 0)
	if string(buf) != "data" {
		t.Errorf("read %q", buf)
	}
	r.Close()
	names, _ := fs.List(dir)
	if len(names) != 1 || names[0] != "f" {
		t.Errorf("list %v", names)
	}
	if err := fs.Rename(name, Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(Join(dir, "g")); !errors.Is(err, ErrNotExist) {
		t.Errorf("open removed: %v", err)
	}
	if err := fs.MkdirAll(Join(dir, "a/b/c")); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyPresets(t *testing.T) {
	ssd, hdd := SSDLatency(), HDDLatency()
	if ssd.ReadOpNs >= hdd.ReadOpNs {
		t.Error("SSD op cost should be far below HDD")
	}
	if ssd.readCost(4096) <= ssd.ReadOpNs {
		t.Error("per-byte cost must add to op cost")
	}
}

func TestMemFSAppend(t *testing.T) {
	fs := NewMem()
	// Append creates the file if absent.
	a, err := fs.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("one"))
	a.Close()
	// Append to existing data.
	b, err := fs.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	b.Write([]byte("two"))
	b.Close()
	r, _ := fs.Open("log")
	buf := make([]byte, 6)
	r.ReadAt(buf, 0)
	if string(buf) != "onetwo" {
		t.Errorf("appended content %q", buf)
	}
}

func TestOSFSAppend(t *testing.T) {
	fs := NewOS()
	name := Join(t.TempDir(), "log")
	a, err := fs.Append(name)
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("one"))
	a.Close()
	b, _ := fs.Append(name)
	b.Write([]byte("two"))
	b.Close()
	r, _ := fs.Open(name)
	defer r.Close()
	buf := make([]byte, 6)
	r.ReadAt(buf, 0)
	if string(buf) != "onetwo" {
		t.Errorf("appended content %q", buf)
	}
}

func TestCountingFSAppendCounts(t *testing.T) {
	c := NewCounting(NewMem())
	f, err := c.Append("log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 100))
	f.Close()
	if s := c.Stats(); s.BytesWritten != 100 || s.WriteOps != 1 {
		t.Errorf("append not counted: %+v", s)
	}
}
