package vfs

import (
	"sync/atomic"
)

// IOStats is a snapshot of the I/O performed through a CountingFS.
type IOStats struct {
	BytesRead    int64
	BytesWritten int64
	ReadOps      int64 // ReadAt calls
	WriteOps     int64 // Write calls
	PagesRead    int64 // ReadAt calls, rounded up to 4 KiB pages
	PagesWritten int64 // Write calls, rounded up to 4 KiB pages
	SimulatedNs  int64 // accumulated simulated device time
}

// Sub returns s - o, component-wise; used to measure an interval.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		ReadOps:      s.ReadOps - o.ReadOps,
		WriteOps:     s.WriteOps - o.WriteOps,
		PagesRead:    s.PagesRead - o.PagesRead,
		PagesWritten: s.PagesWritten - o.PagesWritten,
		SimulatedNs:  s.SimulatedNs - o.SimulatedNs,
	}
}

// LatencyModel charges simulated time for device operations. Costs
// accumulate in IOStats.SimulatedNs rather than being slept, so
// experiments remain fast and deterministic while still exhibiting the
// read/write and op/byte asymmetries of real devices.
type LatencyModel struct {
	ReadOpNs    int64 // fixed cost per read operation (seek/command)
	WriteOpNs   int64 // fixed cost per write operation
	ReadByteNs  int64 // per-KiB read cost, in ns per KiB
	WriteByteNs int64 // per-KiB write cost, in ns per KiB
}

// SSDLatency is a latency model loosely shaped like a consumer NVMe SSD:
// ~80 microsecond read op cost, ~20 microsecond write op cost (writes are
// absorbed by the device cache; the per-byte cost dominates for large
// sequential writes).
func SSDLatency() LatencyModel {
	return LatencyModel{ReadOpNs: 80_000, WriteOpNs: 20_000, ReadByteNs: 250, WriteByteNs: 600}
}

// HDDLatency models a disk with expensive seeks relative to streaming.
func HDDLatency() LatencyModel {
	return LatencyModel{ReadOpNs: 8_000_000, WriteOpNs: 8_000_000, ReadByteNs: 8_000, WriteByteNs: 8_000}
}

func (m LatencyModel) readCost(n int) int64 {
	return m.ReadOpNs + m.ReadByteNs*int64(n)/1024
}

func (m LatencyModel) writeCost(n int) int64 {
	return m.WriteOpNs + m.WriteByteNs*int64(n)/1024
}

// CountingFS wraps an FS and counts bytes and operations flowing through
// it, optionally charging a simulated latency model.
type CountingFS struct {
	FS
	latency LatencyModel

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
	pagesRead    atomic.Int64
	pagesWritten atomic.Int64
	simNs        atomic.Int64
}

// NewCounting wraps fs with I/O accounting and no latency model.
func NewCounting(fs FS) *CountingFS { return &CountingFS{FS: fs} }

// NewCountingWithLatency wraps fs with I/O accounting and the given
// simulated latency model.
func NewCountingWithLatency(fs FS, m LatencyModel) *CountingFS {
	return &CountingFS{FS: fs, latency: m}
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (c *CountingFS) Stats() IOStats {
	return IOStats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		ReadOps:      c.readOps.Load(),
		WriteOps:     c.writeOps.Load(),
		PagesRead:    c.pagesRead.Load(),
		PagesWritten: c.pagesWritten.Load(),
		SimulatedNs:  c.simNs.Load(),
	}
}

// Reset zeroes the accumulated statistics.
func (c *CountingFS) Reset() {
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.readOps.Store(0)
	c.writeOps.Store(0)
	c.pagesRead.Store(0)
	c.pagesWritten.Store(0)
	c.simNs.Store(0)
}

func pages(n int) int64 { return int64((n + PageSize - 1) / PageSize) }

// Create implements FS.
func (c *CountingFS) Create(name string) (File, error) {
	f, err := c.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

// Append implements FS.
func (c *CountingFS) Append(name string) (File, error) {
	f, err := c.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

// Open implements FS.
func (c *CountingFS) Open(name string) (File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

type countingFile struct {
	File
	fs *CountingFS
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.bytesWritten.Add(int64(n))
	f.fs.writeOps.Add(1)
	f.fs.pagesWritten.Add(pages(n))
	f.fs.simNs.Add(f.fs.latency.writeCost(n))
	return n, err
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.fs.bytesRead.Add(int64(n))
	f.fs.readOps.Add(1)
	f.fs.pagesRead.Add(pages(n))
	f.fs.simNs.Add(f.fs.latency.readCost(n))
	return n, err
}
