package faultfs

import (
	"bytes"
	"errors"
	"testing"

	"lsmlab/internal/vfs"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		want Class
	}{
		{"db/000001.wal", ClassWAL},
		{"db/000001.log", ClassWAL},
		{"db/000002.sst", ClassSST},
		{"db/000003.vlog", ClassVLog},
		{"db/MANIFEST", ClassManifest},
		{"db/MANIFEST.tmp", ClassManifest},
		{"db/notes.txt", ClassOther},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestArmNthWriteFails(t *testing.T) {
	ffs := New(vfs.NewMem(), 1)
	ffs.Arm(ClassSST, OpWrite, 2)
	f, err := ffs.Create("db/000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	_, err = f.Write([]byte("b"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write: got %v, want ErrInjected", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "write" || oe.Path != "db/000001.sst" {
		t.Fatalf("error does not carry op/path: %v", err)
	}
	// One-shot: the rule disarmed.
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("third write after one-shot fault: %v", err)
	}
	if got := ffs.InjectedFaults(); got != 1 {
		t.Fatalf("InjectedFaults = %d, want 1", got)
	}
}

func TestStickyRuleKeepsFailing(t *testing.T) {
	ffs := New(vfs.NewMem(), 1)
	ffs.AddRule(Rule{Classes: ClassWAL, Ops: OpWrite, Countdown: 1, Sticky: true})
	f, err := ffs.Create("db/000001.wal")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: got %v, want ErrInjected", i, err)
		}
	}
	// Other classes are untouched.
	g, err := ffs.Create("db/000002.sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("y")); err != nil {
		t.Fatalf("sst write under wal-only sticky rule: %v", err)
	}
}

func TestClassFiltering(t *testing.T) {
	ffs := New(vfs.NewMem(), 1)
	ffs.Arm(ClassManifest, OpRename, 1)
	if err := ffs.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	f, _ := ffs.Create("db/a.sst")
	f.Close()
	if err := ffs.Rename("db/a.sst", "db/b.sst"); err != nil {
		t.Fatalf("sst rename under manifest-only rule: %v", err)
	}
	g, _ := ffs.Create("db/MANIFEST.tmp")
	g.Close()
	if err := ffs.Rename("db/MANIFEST.tmp", "db/MANIFEST"); !errors.Is(err, ErrInjected) {
		t.Fatalf("manifest rename: got %v, want ErrInjected", err)
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	ffs := New(vfs.NewMem(), 1)
	ffs.SetWriteBudget(10)
	f, err := ffs.Create("db/000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	_, err = f.Write(make([]byte, 8))
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("write over budget: got %v, want vfs.ErrNoSpace", err)
	}
	// Small writes still fit the remainder.
	if _, err := f.Write(make([]byte, 2)); err != nil {
		t.Fatalf("write filling remainder: %v", err)
	}
	ffs.SetWriteBudget(-1)
	if _, err := f.Write(make([]byte, 1024)); err != nil {
		t.Fatalf("write after budget lifted: %v", err)
	}
}

func TestCrashDropsUnsyncedSuffix(t *testing.T) {
	base := vfs.NewMem()
	ffs := New(base, 42)
	f, err := ffs.Create("db/000001.wal")
	if err != nil {
		t.Fatal(err)
	}
	synced := bytes.Repeat([]byte("S"), 100)
	if _, err := f.Write(synced); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte("U"), 50)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	rf, err := base.Open("db/000001.wal")
	if err != nil {
		t.Fatalf("synced file vanished in crash: %v", err)
	}
	size, _ := rf.Size()
	if size < 100 || size > 150 {
		t.Fatalf("post-crash size %d, want within [100,150]", size)
	}
	got := make([]byte, 100)
	if _, err := rf.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, synced) {
		t.Fatal("synced prefix corrupted by crash")
	}
	rf.Close()
}

func TestCrashFailedSyncLeavesDataVolatile(t *testing.T) {
	base := vfs.NewMem()
	ffs := New(base, 7)
	ffs.Arm(ClassWAL, OpSync, 1)
	f, _ := ffs.Create("db/000001.wal")
	f.Write(bytes.Repeat([]byte("x"), 64))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	f.Close()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	// The failed fsync must not have advanced durability: the file may
	// hold any torn prefix, never more than what was written.
	if base.Exists("db/000001.wal") {
		rf, _ := base.Open("db/000001.wal")
		size, _ := rf.Size()
		rf.Close()
		if size > 64 {
			t.Fatalf("post-crash size %d exceeds written bytes", size)
		}
	}
}

func TestRenameMovesDurabilityState(t *testing.T) {
	base := vfs.NewMem()
	ffs := New(base, 3)
	f, _ := ffs.Create("db/MANIFEST.tmp")
	f.Write([]byte("snapshot"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ffs.Rename("db/MANIFEST.tmp", "db/MANIFEST"); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	rf, err := base.Open("db/MANIFEST")
	if err != nil {
		t.Fatalf("renamed synced file lost in crash: %v", err)
	}
	size, _ := rf.Size()
	rf.Close()
	if size != 8 {
		t.Fatalf("post-crash MANIFEST size %d, want 8", size)
	}
}

func TestFlipBitChangesExactlyOneBit(t *testing.T) {
	base := vfs.NewMem()
	ffs := New(base, 5)
	f, _ := base.Create("db/000001.sst")
	orig := bytes.Repeat([]byte{0xAB}, 256)
	f.Write(orig)
	f.Close()
	if err := ffs.FlipBit("db/000001.sst", 100); err != nil {
		t.Fatal(err)
	}
	rf, _ := base.Open("db/000001.sst")
	got := make([]byte, 256)
	rf.ReadAt(got, 0)
	rf.Close()
	diff := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("FlipBit changed %d bits, want 1", diff)
	}
	if got[100/8] == orig[100/8] {
		t.Fatal("FlipBit changed the wrong byte")
	}
}

func TestReadAtBitFlipRule(t *testing.T) {
	base := vfs.NewMem()
	ffs := New(base, 9)
	f, _ := base.Create("db/000001.sst")
	orig := bytes.Repeat([]byte{0x55}, 128)
	f.Write(orig)
	f.Close()
	ffs.AddRule(Rule{Classes: ClassSST, Ops: OpReadAt, Countdown: 1, BitFlip: true})
	rf, err := ffs.Open("db/000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if _, err := rf.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("bit-flip rule did not corrupt the read")
	}
	// One-shot: the next read is clean.
	got2 := make([]byte, 128)
	if _, err := rf.ReadAt(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, orig) {
		t.Fatal("second read still corrupted")
	}
	rf.Close()
}
