// Package faultfs wraps any vfs.FS with deterministic, seedable fault
// injection. It is the substrate for the engine's robustness tests and
// the torture harness: every failure mode a real device exhibits —
// failed writes and fsyncs, disk-full, crashes that tear unsynced
// suffixes, and bit rot on the read path — can be injected on demand,
// per file class, and replayed exactly from a seed.
//
// Three mechanisms compose:
//
//   - Rules inject errors (or read-path bit flips) on the Nth matching
//     operation of a given file class. A rule is one-shot by default
//     (the fault clears, modeling a transient error) or Sticky (every
//     subsequent matching operation fails, modeling a dead device).
//   - A write budget models ENOSPC: once the cumulative bytes written
//     through the wrapper exceed the budget, writes fail with an error
//     wrapping vfs.ErrNoSpace.
//   - Crash() simulates power loss: every file written through the
//     wrapper is truncated back to its last synced length plus a
//     seeded-random prefix of its unsynced tail (a torn write); files
//     never synced at all may disappear entirely.
//
// All injected errors are *OpError values carrying the operation and
// path, so the engine's health surface can name the failing file.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"

	"lsmlab/internal/vfs"
)

// ErrInjected is the default error delivered by a tripped rule.
var ErrInjected = errors.New("faultfs: injected I/O failure")

// ErrNoSpace is returned by writes once the write budget is exhausted.
// It wraps vfs.ErrNoSpace so errors.Is(err, vfs.ErrNoSpace) holds.
var ErrNoSpace = fmt.Errorf("faultfs: %w", vfs.ErrNoSpace)

// OpError is the concrete error type of every injected failure. It
// names the operation and file so callers can surface "what failed,
// where" without string parsing, and unwraps to the underlying cause
// (ErrInjected, ErrNoSpace, or a rule-supplied error).
type OpError struct {
	Op   string // "write", "sync", "create", "rename", "read"
	Path string
	Err  error
}

func (e *OpError) Error() string { return fmt.Sprintf("faultfs: %s %s: %v", e.Op, e.Path, e.Err) }
func (e *OpError) Unwrap() error { return e.Err }

// Class is a bitmask of file classes, derived from the file name.
type Class uint8

// File classes. ClassWAL matches both ".wal" (this engine) and ".log"
// (the conventional name); ".vlog" value-log segments are their own
// class; ClassManifest matches any name containing "MANIFEST",
// including the rewrite temp file.
const (
	ClassWAL Class = 1 << iota
	ClassSST
	ClassVLog
	ClassManifest
	ClassOther
	ClassAny = ClassWAL | ClassSST | ClassVLog | ClassManifest | ClassOther
)

// Classify maps a file name to its class.
func Classify(name string) Class {
	base := filepath.Base(name)
	switch {
	case strings.Contains(base, "MANIFEST"):
		return ClassManifest
	case strings.HasSuffix(base, ".vlog"):
		return ClassVLog
	case strings.HasSuffix(base, ".wal"), strings.HasSuffix(base, ".log"):
		return ClassWAL
	case strings.HasSuffix(base, ".sst"):
		return ClassSST
	default:
		return ClassOther
	}
}

// Op is a bitmask of interceptable operations.
type Op uint8

// Interceptable operations. OpReadAt is the read path; a rule matching
// it with BitFlip set corrupts one bit of the returned data instead of
// returning an error, exercising checksum verification end to end.
const (
	OpWrite Op = 1 << iota
	OpSync
	OpCreate
	OpRename
	OpReadAt
	OpAnyWrite = OpWrite | OpSync | OpCreate | OpRename
)

// Rule arms one fault. The Countdown'th operation matching (Classes,
// Ops) trips it; a tripped one-shot rule disarms, a Sticky rule keeps
// failing every subsequent match.
type Rule struct {
	Classes   Class // file classes to match (required, e.g. ClassAny)
	Ops       Op    // operations to match (required)
	Countdown int64 // 1 = the next matching operation trips
	Sticky    bool  // keep failing after tripping (dead-device model)
	BitFlip   bool  // for OpReadAt: flip one bit instead of erroring
	Err       error // injected error; nil means ErrInjected
}

type rule struct {
	spec      Rule
	remaining int64
	tripped   bool
}

// fileState tracks durability for one path written through the wrapper.
type fileState struct {
	size      int64 // bytes written through the wrapper
	syncedLen int64 // prefix known durable (advanced by successful Sync)
	created   bool  // file came into being through this wrapper
}

// FS wraps a base filesystem with fault injection. Safe for concurrent
// use; determinism holds as long as the operation order is itself
// deterministic (single-threaded tests) or the assertions tolerate
// schedule-dependent fault placement (the torture harness does).
type FS struct {
	base vfs.FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*rule
	budget   int64 // remaining write bytes; < 0 means unlimited
	files    map[string]*fileState
	injected int64
}

var _ vfs.FS = (*FS)(nil)

// New wraps base. All randomness (torn-write lengths, bit positions)
// derives from seed.
func New(base vfs.FS, seed int64) *FS {
	return &FS{
		base:   base,
		rng:    rand.New(rand.NewSource(seed)),
		budget: -1,
		files:  make(map[string]*fileState),
	}
}

// AddRule arms r.
func (f *FS) AddRule(r Rule) {
	if r.Countdown < 1 {
		r.Countdown = 1
	}
	f.mu.Lock()
	f.rules = append(f.rules, &rule{spec: r, remaining: r.Countdown})
	f.mu.Unlock()
}

// Arm is shorthand for a one-shot ErrInjected rule: the n'th operation
// matching (classes, ops) fails. It mirrors the arm(n) semantics of the
// original test-local faultFS.
func (f *FS) Arm(classes Class, ops Op, n int64) {
	f.AddRule(Rule{Classes: classes, Ops: ops, Countdown: n})
}

// ClearRules disarms every rule (armed or tripped).
func (f *FS) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// SetWriteBudget allows n more bytes of writes before ENOSPC; negative
// restores unlimited space.
func (f *FS) SetWriteBudget(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// InjectedFaults returns how many faults have fired (rules and budget).
func (f *FS) InjectedFaults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// hit decides whether an operation fails. Every armed rule matching
// (op, class) counts down; the first rule that is tripped (or already
// tripped and Sticky) fires. Returns the fired rule, or nil.
func (f *FS) hit(op Op, class Class) *rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	var fired *rule
	for _, r := range f.rules {
		if r.spec.Ops&op == 0 || r.spec.Classes&class == 0 {
			continue
		}
		if r.tripped {
			if r.spec.Sticky && fired == nil {
				fired = r
			}
			continue
		}
		r.remaining--
		if r.remaining <= 0 {
			r.tripped = true
			if fired == nil {
				fired = r
			}
		}
	}
	if fired != nil {
		f.injected++
	}
	return fired
}

func (f *FS) injectErr(r *rule, op, path string) error {
	cause := r.spec.Err
	if cause == nil {
		cause = ErrInjected
	}
	return &OpError{Op: op, Path: path, Err: cause}
}

// state returns the tracked durability state for name, creating it
// with the given initial size if unseen. Callers hold f.mu.
func (f *FS) stateLocked(name string, size int64, created bool) *fileState {
	st, ok := f.files[name]
	if !ok {
		st = &fileState{size: size, syncedLen: size, created: created}
		f.files[name] = st
	}
	return st
}

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	name = filepath.Clean(name)
	if r := f.hit(OpCreate, Classify(name)); r != nil {
		return nil, f.injectErr(r, "create", name)
	}
	base, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	// Create truncates: any previous durability state is gone.
	st := &fileState{created: true}
	f.files[name] = st
	f.mu.Unlock()
	return &file{fs: f, f: base, name: name, class: Classify(name), st: st}, nil
}

// Append implements vfs.FS.
func (f *FS) Append(name string) (vfs.File, error) {
	name = filepath.Clean(name)
	existed := f.base.Exists(name)
	if !existed {
		// Creating via Append counts as a create for fault matching.
		if r := f.hit(OpCreate, Classify(name)); r != nil {
			return nil, f.injectErr(r, "create", name)
		}
	}
	base, err := f.base.Append(name)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if existed {
		if size, err = base.Size(); err != nil {
			base.Close()
			return nil, err
		}
	}
	f.mu.Lock()
	// Pre-existing bytes are treated as durable: the crash simulator
	// only tears data written (and not synced) through this wrapper.
	st := f.stateLocked(name, size, !existed)
	f.mu.Unlock()
	return &file{fs: f, f: base, name: name, class: Classify(name), st: st}, nil
}

// Open implements vfs.FS. Read handles participate in OpReadAt rules
// (bit flips / read errors).
func (f *FS) Open(name string) (vfs.File, error) {
	name = filepath.Clean(name)
	base, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, f: base, name: name, class: Classify(name), readOnly: true}, nil
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	name = filepath.Clean(name)
	err := f.base.Remove(name)
	if err == nil {
		f.mu.Lock()
		delete(f.files, name)
		f.mu.Unlock()
	}
	return err
}

// Rename implements vfs.FS. Renames are modeled as atomic and durable
// (the common journaling-filesystem contract the engine relies on for
// the MANIFEST swap); a rule can still make them fail outright.
func (f *FS) Rename(oldname, newname string) error {
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	if r := f.hit(OpRename, Classify(oldname)|Classify(newname)); r != nil {
		return f.injectErr(r, "rename", oldname)
	}
	err := f.base.Rename(oldname, newname)
	if err == nil {
		f.mu.Lock()
		if st, ok := f.files[oldname]; ok {
			delete(f.files, oldname)
			f.files[newname] = st
		} else {
			delete(f.files, newname)
		}
		f.mu.Unlock()
	}
	return err
}

// List implements vfs.FS.
func (f *FS) List(dir string) ([]string, error) { return f.base.List(dir) }

// MkdirAll implements vfs.FS.
func (f *FS) MkdirAll(dir string) error { return f.base.MkdirAll(dir) }

// Exists implements vfs.FS.
func (f *FS) Exists(name string) bool { return f.base.Exists(name) }

// Crash simulates power loss: every file written through the wrapper
// is cut back to its synced length plus a seeded-random prefix of its
// unsynced tail (torn write). Files created through the wrapper and
// never synced may be removed entirely. Tracking state resets; armed
// rules survive (use ClearRules for a clean restart). The caller must
// have abandoned all open handles — this rewrites files via base.
func (f *FS) Crash() error {
	f.mu.Lock()
	files := f.files
	f.files = make(map[string]*fileState)
	type cut struct {
		name    string
		keep    int64
		created bool
	}
	cuts := make([]cut, 0, len(files))
	for name, st := range files {
		keep := st.syncedLen
		if unsynced := st.size - st.syncedLen; unsynced > 0 {
			// Torn write: any prefix of the unsynced tail may have
			// reached the platter, including all or none of it.
			keep += f.rng.Int63n(unsynced + 1)
		}
		cuts = append(cuts, cut{name, keep, st.created})
	}
	f.mu.Unlock()
	for _, c := range cuts {
		if !f.base.Exists(c.name) {
			continue
		}
		if c.keep == 0 && c.created {
			// Never-synced file: its directory entry need not survive.
			if err := f.base.Remove(c.name); err != nil {
				return err
			}
			continue
		}
		if err := truncateTo(f.base, c.name, c.keep); err != nil {
			return fmt.Errorf("faultfs: crash %s: %w", c.name, err)
		}
	}
	return nil
}

// truncateTo rewrites name to its first n bytes using only the vfs.FS
// interface (it has no Truncate).
func truncateTo(base vfs.FS, name string, n int64) error {
	rf, err := base.Open(name)
	if err != nil {
		return err
	}
	size, err := rf.Size()
	if err != nil {
		rf.Close()
		return err
	}
	if n >= size {
		return rf.Close()
	}
	buf := make([]byte, n)
	if n > 0 {
		if _, err := rf.ReadAt(buf, 0); err != nil {
			rf.Close()
			return err
		}
	}
	rf.Close()
	wf, err := base.Create(name)
	if err != nil {
		return err
	}
	if n > 0 {
		if _, err := wf.Write(buf); err != nil {
			wf.Close()
			return err
		}
	}
	if err := wf.Sync(); err != nil {
		wf.Close()
		return err
	}
	return wf.Close()
}

// FlipBit flips one bit of the named file in place, modeling at-rest
// bit rot. bit < 0 picks a seeded-random position. The rewrite goes
// through base, bypassing rules and the budget.
func (f *FS) FlipBit(name string, bit int64) error {
	name = filepath.Clean(name)
	rf, err := f.base.Open(name)
	if err != nil {
		return err
	}
	size, err := rf.Size()
	if err != nil {
		rf.Close()
		return err
	}
	if size == 0 {
		rf.Close()
		return fmt.Errorf("faultfs: flip bit: %s is empty", name)
	}
	buf := make([]byte, size)
	if _, err := rf.ReadAt(buf, 0); err != nil {
		rf.Close()
		return err
	}
	rf.Close()
	if bit < 0 {
		f.mu.Lock()
		bit = f.rng.Int63n(size * 8)
		f.mu.Unlock()
	}
	if bit >= size*8 {
		return fmt.Errorf("faultfs: flip bit %d out of range for %s (%d bytes)", bit, name, size)
	}
	buf[bit/8] ^= 1 << (bit % 8)
	wf, err := f.base.Create(name)
	if err != nil {
		return err
	}
	if _, err := wf.Write(buf); err != nil {
		wf.Close()
		return err
	}
	if err := wf.Sync(); err != nil {
		wf.Close()
		return err
	}
	return wf.Close()
}

// file wraps one handle, applying rules, the budget, and durability
// tracking.
type file struct {
	fs       *FS
	f        vfs.File
	name     string
	class    Class
	st       *fileState
	readOnly bool
}

func (w *file) Write(p []byte) (int, error) {
	if r := w.fs.hit(OpWrite, w.class); r != nil {
		return 0, w.fs.injectErr(r, "write", w.name)
	}
	w.fs.mu.Lock()
	if w.fs.budget >= 0 {
		if w.fs.budget < int64(len(p)) {
			w.fs.injected++
			w.fs.mu.Unlock()
			return 0, &OpError{Op: "write", Path: w.name, Err: ErrNoSpace}
		}
		w.fs.budget -= int64(len(p))
	}
	w.fs.mu.Unlock()
	n, err := w.f.Write(p)
	if n > 0 && w.st != nil {
		w.fs.mu.Lock()
		w.st.size += int64(n)
		w.fs.mu.Unlock()
	}
	return n, err
}

func (w *file) Sync() error {
	if r := w.fs.hit(OpSync, w.class); r != nil {
		// A failed fsync leaves the unsynced suffix volatile: the
		// durable prefix does not advance.
		return w.fs.injectErr(r, "sync", w.name)
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.st != nil {
		w.fs.mu.Lock()
		w.st.syncedLen = w.st.size
		w.fs.mu.Unlock()
	}
	return nil
}

func (w *file) ReadAt(p []byte, off int64) (int, error) {
	n, err := w.f.ReadAt(p, off)
	if r := w.fs.hit(OpReadAt, w.class); r != nil {
		if !r.spec.BitFlip {
			return 0, w.fs.injectErr(r, "read", w.name)
		}
		if n > 0 {
			w.fs.mu.Lock()
			bit := w.fs.rng.Intn(n * 8)
			w.fs.mu.Unlock()
			p[bit/8] ^= 1 << (bit % 8)
		}
	}
	return n, err
}

func (w *file) Close() error { return w.f.Close() }

func (w *file) Size() (int64, error) { return w.f.Size() }
