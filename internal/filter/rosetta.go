package filter

import (
	"encoding/binary"

	"lsmlab/internal/bloom"
)

// rosettaBits is the key-domain width: keys are mapped to 64-bit
// integers (their first 8 bytes, big-endian), and the filter maintains
// one Bloom filter per prefix length.
const rosettaBits = 64

// Rosetta is a hierarchy of Bloom filters over dyadic ranges (Luo et
// al., SIGMOD 2020; tutorial §2.1.3 [84]): level l stores the l-bit
// prefixes of every key. A range query decomposes into O(log R) dyadic
// intervals probed at their natural levels; every "maybe" is then
// *doubted* — recursively re-probed at deeper levels down to the
// leaves — so the false-positive rate of a short range approaches that
// of a point query. This makes Rosetta the strongest filter for short
// range scans, at the cost of storing every key once per level.
type Rosetta struct {
	levels []bloom.Filter // levels[l] holds (l+1)-bit prefixes
	nBytes int
}

// keyTo64 maps a byte-string key to its 64-bit big-endian integer
// representation (first 8 bytes, zero padded).
func keyTo64(key []byte) uint64 {
	var buf [8]byte
	copy(buf[:], key)
	return binary.BigEndian.Uint64(buf[:])
}

// NewRosetta builds the hierarchy over the given keys with bitsPerKey
// Bloom bits per key per level.
func NewRosetta(keys [][]byte, bitsPerKey float64) *Rosetta {
	r := &Rosetta{levels: make([]bloom.Filter, rosettaBits)}
	ints := make([]uint64, len(keys))
	for i, k := range keys {
		ints[i] = keyTo64(k)
	}
	hashes := make([]uint64, 0, len(ints))
	for l := 0; l < rosettaBits; l++ {
		shift := uint(rosettaBits - l - 1)
		hashes = hashes[:0]
		var last uint64
		first := true
		for _, v := range ints {
			p := v >> shift
			if !first && p == last {
				continue
			}
			first, last = false, p
			hashes = append(hashes, prefixHash(p, l))
		}
		r.levels[l] = bloom.New(hashes, bitsPerKey)
		r.nBytes += len(r.levels[l])
	}
	return r
}

// prefixHash hashes a prefix value tagged with its level.
func prefixHash(p uint64, level int) uint64 {
	var buf [9]byte
	binary.BigEndian.PutUint64(buf[:8], p)
	buf[8] = byte(level)
	return bloom.Hash64(buf[:])
}

// mayHavePrefix probes level l for prefix p.
func (r *Rosetta) mayHavePrefix(p uint64, l int) bool {
	return r.levels[l].MayContainHash(prefixHash(p, l))
}

// MayContain implements PointFilter (a leaf-level probe).
func (r *Rosetta) MayContain(key []byte) bool {
	return r.mayHavePrefix(keyTo64(key), rosettaBits-1)
}

// MayContainRange implements RangeFilter over [start, end).
func (r *Rosetta) MayContainRange(start, end []byte) bool {
	lo := keyTo64(start)
	var hi uint64
	if end == nil {
		hi = ^uint64(0)
	} else {
		h := keyTo64(end)
		if h == 0 {
			return false // empty range
		}
		hi = h - 1 // inclusive upper bound
	}
	if lo > hi {
		return false
	}
	return r.rangeMayContain(lo, hi, 0, 0)
}

// rangeMayContain recursively checks whether [lo, hi] intersects any
// stored key, walking the implicit binary trie. node is the prefix
// value at depth level (number of bits consumed).
func (r *Rosetta) rangeMayContain(lo, hi uint64, node uint64, level int) bool {
	// The node covers the value interval [nlo, nhi].
	width := uint(rosettaBits - level)
	var nlo, nhi uint64
	if level == 0 {
		nlo, nhi = 0, ^uint64(0)
	} else {
		nlo = node << width
		nhi = nlo | (1<<width - 1)
	}
	if nhi < lo || nlo > hi {
		return false // disjoint
	}
	if level > 0 && !r.mayHavePrefix(node, level-1) {
		return false // filter proves the subtree empty
	}
	if level == rosettaBits {
		return true // reached a leaf the filter could not refute
	}
	// Fully covered subtrees still recurse ("doubting") to push the
	// false-positive decision down to leaf granularity, per Rosetta.
	return r.rangeMayContain(lo, hi, node<<1, level+1) ||
		r.rangeMayContain(lo, hi, node<<1|1, level+1)
}

// SizeBytes implements PointFilter.
func (r *Rosetta) SizeBytes() int { return r.nBytes }

// Name implements PointFilter.
func (r *Rosetta) Name() string { return "rosetta" }
