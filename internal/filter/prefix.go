package filter

import (
	"bytes"

	"lsmlab/internal/bloom"
)

// PrefixBloom filters on fixed-length key prefixes (RocksDB's prefix
// Bloom filter, tutorial §2.1.3 [103]). A range query whose endpoints
// share a prefix of at least the configured length can be answered by a
// single prefix probe; longer ranges spanning several prefixes probe
// each of them, and ranges spanning too many prefixes cannot be
// filtered at all — which is why prefix filters suit long range scans
// within one logical partition (e.g. all events of one user) rather
// than arbitrary ranges.
type PrefixBloom struct {
	prefixLen int
	filter    bloom.Filter
	// maxProbes caps how many prefixes a range query enumerates before
	// giving up and answering "maybe".
	maxProbes int
}

// NewPrefixBloom builds a filter over the prefixes of the given sorted
// keys with the given bits per distinct prefix.
func NewPrefixBloom(keys [][]byte, prefixLen int, bitsPerKey float64) *PrefixBloom {
	if prefixLen < 1 {
		prefixLen = 1
	}
	var hashes []uint64
	var last []byte
	for _, k := range keys {
		p := prefixOf(k, prefixLen)
		if last != nil && bytes.Equal(p, last) {
			continue
		}
		last = append(last[:0], p...)
		hashes = append(hashes, bloom.Hash64(p))
	}
	return &PrefixBloom{
		prefixLen: prefixLen,
		filter:    bloom.New(hashes, bitsPerKey),
		maxProbes: 16,
	}
}

func prefixOf(k []byte, n int) []byte {
	if len(k) <= n {
		return k
	}
	return k[:n]
}

// MayContain implements PointFilter (point probes use the key's
// prefix, so false positives include any key sharing the prefix).
func (p *PrefixBloom) MayContain(key []byte) bool {
	return p.filter.MayContain(prefixOf(key, p.prefixLen))
}

// MayContainRange implements RangeFilter.
func (p *PrefixBloom) MayContainRange(start, end []byte) bool {
	lo := prefixOf(start, p.prefixLen)
	// Ranges whose endpoints share the full prefix need one probe.
	if len(start) >= p.prefixLen && len(end) >= p.prefixLen &&
		bytes.Equal(lo, prefixOf(end, p.prefixLen)) {
		return p.filter.MayContain(lo)
	}
	// Otherwise enumerate the prefixes covered by the range, if they
	// are few and fixed-length integers can step through them.
	if len(lo) != p.prefixLen {
		return true // short keys: cannot enumerate
	}
	cur := append([]byte(nil), lo...)
	for probes := 0; probes < p.maxProbes; probes++ {
		// cur is the current prefix; any key with this prefix within
		// [start,end) makes the range non-empty.
		if p.filter.MayContain(cur) {
			return true
		}
		if !incrementBytes(cur) {
			return false // wrapped past the maximum prefix
		}
		// Stop once the prefix block lies entirely at or past end.
		if end != nil && bytes.Compare(cur, prefixOf(end, p.prefixLen)) > 0 {
			return false
		}
		if end != nil && bytes.Equal(cur, prefixOf(end, p.prefixLen)) && len(end) <= p.prefixLen {
			return false // end is exclusive at a prefix boundary
		}
	}
	return true // too many prefixes: cannot filter
}

// incrementBytes treats b as a big-endian integer and adds one,
// reporting false on overflow.
func incrementBytes(b []byte) bool {
	for i := len(b) - 1; i >= 0; i-- {
		b[i]++
		if b[i] != 0 {
			return true
		}
	}
	return false
}

// SizeBytes implements PointFilter.
func (p *PrefixBloom) SizeBytes() int { return len(p.filter) }

// Name implements PointFilter.
func (p *PrefixBloom) Name() string { return "prefix-bloom" }
