// Package filter implements the point- and range-query filters of
// tutorial §2.1.3 beyond the plain Bloom filter: a cuckoo filter
// (deletable, Chucky-style), a prefix Bloom filter (long ranges), a
// SuRF-lite succinct-prefix filter (variable-length prefixes, good for
// long ranges), and a Rosetta-style hierarchy of dyadic Bloom filters
// (short ranges).
//
// All filters answer conservatively: "false" proves absence, "true"
// means the data must be read. Experiment E4 measures the I/O each
// filter saves for short and long range scans at equal memory.
package filter

// PointFilter answers approximate point-membership queries.
type PointFilter interface {
	// MayContain reports whether key may be present; false is definite.
	MayContain(key []byte) bool
	// SizeBytes is the filter's memory footprint.
	SizeBytes() int
	// Name identifies the filter in experiment tables.
	Name() string
}

// RangeFilter answers approximate range-emptiness queries.
type RangeFilter interface {
	PointFilter
	// MayContainRange reports whether any key in [start, end) may be
	// present; false is definite.
	MayContainRange(start, end []byte) bool
}
