package filter

import (
	"bytes"
	"sort"
)

// SuRF is a succinct-prefix range filter in the spirit of SuRF (Zhang
// et al., SIGMOD 2018; tutorial §2.1.3 [131,132]): it stores, for each
// key, the shortest prefix that distinguishes it from its sorted
// neighbors (plus an optional suffix byte to cut false positives). A
// range may contain a key only if some stored prefix could extend into
// the range.
//
// Substitution note (DESIGN.md): the original encodes the pruned trie
// with LOUDS rank/select bitmaps; this implementation stores the same
// pruned prefixes in a sorted array with binary search. The filtering
// behaviour (which queries return maybe/no, variable-length prefixes,
// space growing with distinguishing-prefix length) is preserved; only
// the constant-factor space encoding differs.
type SuRF struct {
	prefixes [][]byte // sorted, deduplicated truncated keys
	bytes    int
}

// NewSuRF builds the filter from sorted keys. suffixBytes extra bytes
// are kept beyond the distinguishing point (SuRF-Hash/SuRF-Real style)
// to reduce false positives at the cost of space.
func NewSuRF(keys [][]byte, suffixBytes int) *SuRF {
	s := &SuRF{}
	for i, k := range keys {
		// The distinguishing prefix is one byte past the longest common
		// prefix with either neighbor.
		lcp := 0
		if i > 0 {
			if n := commonPrefixLen(keys[i-1], k); n > lcp {
				lcp = n
			}
		}
		if i+1 < len(keys) {
			if n := commonPrefixLen(keys[i+1], k); n > lcp {
				lcp = n
			}
		}
		cut := lcp + 1 + suffixBytes
		if cut > len(k) {
			cut = len(k)
		}
		p := append([]byte(nil), k[:cut]...)
		if n := len(s.prefixes); n > 0 && bytes.Equal(s.prefixes[n-1], p) {
			continue
		}
		s.prefixes = append(s.prefixes, p)
		s.bytes += len(p) + 2 // prefix plus ~2 bytes of structural overhead
	}
	return s
}

func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// MayContain implements PointFilter: the key may be present if some
// stored prefix is a prefix of it.
func (s *SuRF) MayContain(key []byte) bool {
	// Candidates: the greatest prefix <= key. If it is a prefix of key,
	// maybe; otherwise no.
	i := sort.Search(len(s.prefixes), func(i int) bool {
		return bytes.Compare(s.prefixes[i], key) > 0
	})
	if i > 0 && bytes.HasPrefix(key, s.prefixes[i-1]) {
		return true
	}
	return false
}

// MayContainRange implements RangeFilter: [start, end) may hold a key
// if (a) some stored prefix lies within [start, end), or (b) a stored
// prefix is a proper prefix of start (its subtree straddles start).
func (s *SuRF) MayContainRange(start, end []byte) bool {
	i := sort.Search(len(s.prefixes), func(i int) bool {
		return bytes.Compare(s.prefixes[i], start) >= 0
	})
	if i < len(s.prefixes) && (end == nil || bytes.Compare(s.prefixes[i], end) < 0) {
		return true
	}
	if i > 0 && bytes.HasPrefix(start, s.prefixes[i-1]) {
		// A key extending this prefix may sort at or after start.
		return true
	}
	return false
}

// SizeBytes implements PointFilter.
func (s *SuRF) SizeBytes() int { return s.bytes }

// Name implements PointFilter.
func (s *SuRF) Name() string { return "surf" }
