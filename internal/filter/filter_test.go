package filter

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// sortedKeys returns n sorted 8-byte keys with the given stride between
// them (stride > 1 leaves gaps for emptiness queries).
func sortedKeys(n int, stride uint64) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i)*stride+stride)
		keys[i] = k
	}
	return keys
}

func key64(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

// ---------------------------------------------------------------------
// Cuckoo

func TestCuckooNoFalseNegatives(t *testing.T) {
	c := NewCuckoo(10000)
	keys := sortedKeys(10000, 7)
	for _, k := range keys {
		if !c.Add(k) {
			t.Fatal("filter saturated unexpectedly")
		}
	}
	for _, k := range keys {
		if !c.MayContain(k) {
			t.Fatalf("false negative for %x", k)
		}
	}
	if c.Count() != 10000 {
		t.Errorf("count %d", c.Count())
	}
}

func TestCuckooFalsePositiveRate(t *testing.T) {
	c := NewCuckoo(10000)
	for _, k := range sortedKeys(10000, 2) {
		c.Add(k)
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		k := key64(uint64(i)*2 + 1_000_000_001) // odd keys: absent
		if c.MayContain(k) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.01 {
		t.Errorf("fp rate %.4f too high for 16-bit fingerprints", rate)
	}
}

func TestCuckooDelete(t *testing.T) {
	c := NewCuckoo(100)
	k := []byte("target")
	c.Add(k)
	if !c.MayContain(k) {
		t.Fatal("added key missing")
	}
	if !c.Delete(k) {
		t.Fatal("delete failed")
	}
	if c.MayContain(k) {
		t.Error("deleted key still present")
	}
	if c.Delete(k) {
		t.Error("double delete succeeded")
	}
	if c.Count() != 0 {
		t.Errorf("count %d", c.Count())
	}
}

func TestCuckooUpdatableAcrossCompactions(t *testing.T) {
	// The Chucky use case: one filter updated as keys move, instead of
	// per-run rebuilds.
	c := NewCuckoo(1000)
	for i := 0; i < 500; i++ {
		c.Add(key64(uint64(i)))
	}
	// "Compaction" deletes half and re-adds them (moved runs).
	for i := 0; i < 250; i++ {
		if !c.Delete(key64(uint64(i))) {
			t.Fatal("delete")
		}
		c.Add(key64(uint64(i)))
	}
	for i := 0; i < 500; i++ {
		if !c.MayContain(key64(uint64(i))) {
			t.Fatalf("key %d lost across update", i)
		}
	}
}

// ---------------------------------------------------------------------
// PrefixBloom

func TestPrefixBloomPoint(t *testing.T) {
	keys := [][]byte{[]byte("user1-a"), []byte("user1-b"), []byte("user2-x")}
	p := NewPrefixBloom(keys, 5, 10)
	if !p.MayContain([]byte("user1-zzz")) {
		t.Error("shared prefix must answer maybe")
	}
	if p.MayContain([]byte("user9-a")) {
		t.Error("absent prefix should usually answer no")
	}
}

func TestPrefixBloomRangeWithinPrefix(t *testing.T) {
	keys := [][]byte{[]byte("user1-a"), []byte("user3-x")}
	p := NewPrefixBloom(keys, 5, 10)
	if !p.MayContainRange([]byte("user1-a"), []byte("user1-z")) {
		t.Error("range within live prefix")
	}
	if p.MayContainRange([]byte("user2-a"), []byte("user2-z")) {
		t.Error("range within dead prefix should be excluded")
	}
}

func TestPrefixBloomRangeAcrossPrefixes(t *testing.T) {
	keys := sortedKeys(100, 1<<40) // spread across distinct 5-byte prefixes
	p := NewPrefixBloom(keys, 5, 10)
	// A short range inside a gap stays within one (dead) 5-byte prefix
	// block, so the filter can exclude it.
	lo := key64(5*(1<<40) + (1 << 30))
	hi := key64(5*(1<<40) + (1 << 30) + 1000)
	if p.MayContainRange(lo, hi) {
		t.Error("small dead range spanning one prefix")
	}
	// A giant range must conservatively answer maybe (too many prefixes).
	if !p.MayContainRange(key64(0), key64(^uint64(0))) {
		t.Error("unfilterable range must answer maybe")
	}
}

// ---------------------------------------------------------------------
// SuRF

func TestSuRFNoFalseNegativesPoint(t *testing.T) {
	keys := sortedKeys(5000, 13)
	s := NewSuRF(keys, 0)
	for _, k := range keys {
		if !s.MayContain(k) {
			t.Fatalf("false negative %x", k)
		}
	}
}

func TestSuRFRangeNoFalseNegatives(t *testing.T) {
	keys := sortedKeys(2000, 17)
	s := NewSuRF(keys, 0)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		i := r.Intn(len(keys))
		width := uint64(r.Intn(100) + 1)
		lo := binary.BigEndian.Uint64(keys[i])
		hi := lo + width
		// The range [lo, hi) contains keys[i], so it must answer maybe.
		if !s.MayContainRange(key64(lo), key64(hi)) {
			t.Fatalf("false negative range [%d, %d)", lo, hi)
		}
	}
}

func TestSuRFRangeTrueNegatives(t *testing.T) {
	// Keys far apart: gaps should mostly be excluded.
	keys := sortedKeys(1000, 1<<32)
	s := NewSuRF(keys, 2)
	excluded := 0
	for i := 0; i < 1000; i++ {
		lo := uint64(i)*(1<<32) + (1 << 20) // inside the gap after key i
		if !s.MayContainRange(key64(lo), key64(lo+1000)) {
			excluded++
		}
	}
	if excluded < 900 {
		t.Errorf("SuRF excluded only %d of 1000 dead ranges", excluded)
	}
}

func TestSuRFSuffixBytesReduceFalsePositives(t *testing.T) {
	// Keys with an ordered 8-byte part plus an 8-byte tail, so the
	// distinguishing point leaves room for suffix bytes to extend.
	mk := func(i uint64, tail byte) []byte {
		k := make([]byte, 16)
		binary.BigEndian.PutUint64(k, i*64)
		for j := 8; j < 16; j++ {
			k[j] = tail
		}
		return k
	}
	var keys [][]byte
	for i := uint64(0); i < 3000; i++ {
		keys = append(keys, mk(i, 0xaa))
	}
	short := NewSuRF(keys, 0)
	long := NewSuRF(keys, 4)
	if long.SizeBytes() <= short.SizeBytes() {
		t.Errorf("suffix bytes must cost space: %d vs %d", long.SizeBytes(), short.SizeBytes())
	}
	fpShort, fpLong := 0, 0
	for i := uint64(0); i < 3000; i++ {
		// Same ordered part as a stored key but a different tail: the
		// short filter cannot tell them apart, the long one mostly can.
		probe := mk(i, 0x11)
		if short.MayContain(probe) {
			fpShort++
		}
		if long.MayContain(probe) {
			fpLong++
		}
	}
	if fpLong >= fpShort {
		t.Errorf("suffix bytes should reduce FPs: short=%d long=%d", fpShort, fpLong)
	}
}

// ---------------------------------------------------------------------
// Rosetta

func TestRosettaPointNoFalseNegatives(t *testing.T) {
	keys := sortedKeys(2000, 11)
	r := NewRosetta(keys, 10)
	for _, k := range keys {
		if !r.MayContain(k) {
			t.Fatalf("false negative %x", k)
		}
	}
}

func TestRosettaRangeNoFalseNegatives(t *testing.T) {
	keys := sortedKeys(500, 101)
	ro := NewRosetta(keys, 8)
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		i := rnd.Intn(len(keys))
		lo := binary.BigEndian.Uint64(keys[i])
		start := lo - uint64(rnd.Intn(50))
		end := lo + uint64(rnd.Intn(50)) + 1
		if !ro.MayContainRange(key64(start), key64(end)) {
			t.Fatalf("false negative range around key %d", i)
		}
	}
}

func TestRosettaShortRangeTrueNegatives(t *testing.T) {
	keys := sortedKeys(1000, 1000)
	ro := NewRosetta(keys, 12)
	excluded := 0
	for i := 0; i < 1000; i++ {
		lo := uint64(i)*1000 + 300 // inside a gap
		if !ro.MayContainRange(key64(lo), key64(lo+16)) {
			excluded++
		}
	}
	if excluded < 950 {
		t.Errorf("rosetta excluded only %d of 1000 dead short ranges", excluded)
	}
}

func TestRosettaEmptyAndDegenerateRanges(t *testing.T) {
	ro := NewRosetta(sortedKeys(10, 5), 10)
	if ro.MayContainRange(key64(100), key64(100)) {
		t.Error("empty range")
	}
	if ro.MayContainRange(key64(200), key64(100)) {
		t.Error("inverted range")
	}
	if ro.MayContainRange(key64(0), key64(0)) {
		t.Error("zero-width range at origin")
	}
	if !ro.MayContainRange(key64(0), nil) {
		t.Error("unbounded range over non-empty set")
	}
}

// ---------------------------------------------------------------------
// Comparative behaviour (the shape E4 expects)

func TestShortRangesFavourRosettaOverPrefix(t *testing.T) {
	// Keys dense at stride 64; short dead ranges of width 16 inside gaps.
	keys := sortedKeys(2000, 64)
	bits := 14.0
	ro := NewRosetta(keys, bits)
	pb := NewPrefixBloom(keys, 7, bits*8) // 7-byte prefix ≈ 64-wide blocks

	roFP, pbFP := 0, 0
	for i := 0; i < 2000; i++ {
		lo := uint64(i)*64 + 80 // in the gap between keys (stride 64, offset 80 mod...)
		if lo%64 == 0 {
			lo++
		}
		start, end := key64(lo+8), key64(lo+24)
		if ro.MayContainRange(start, end) {
			roFP++
		}
		if pb.MayContainRange(start, end) {
			pbFP++
		}
	}
	t.Logf("short dead ranges answered maybe: rosetta=%d prefix=%d", roFP, pbFP)
	if roFP >= pbFP+200 {
		t.Errorf("rosetta (%d) should not be far worse than prefix bloom (%d) on short ranges", roFP, pbFP)
	}
}

func TestAllFiltersImplementInterfaces(t *testing.T) {
	keys := sortedKeys(100, 10)
	var points []PointFilter
	c := NewCuckoo(100)
	for _, k := range keys {
		c.Add(k)
	}
	points = append(points, c, NewPrefixBloom(keys, 4, 10), NewSuRF(keys, 1), NewRosetta(keys, 10))
	for _, p := range points {
		if p.SizeBytes() <= 0 {
			t.Errorf("%s: zero size", p.Name())
		}
		if p.Name() == "" {
			t.Error("unnamed filter")
		}
	}
	var ranges []RangeFilter = []RangeFilter{
		NewPrefixBloom(keys, 4, 10), NewSuRF(keys, 1), NewRosetta(keys, 10),
	}
	for _, rf := range ranges {
		if !rf.MayContainRange(keys[0], nil) {
			t.Errorf("%s: full range must be maybe", rf.Name())
		}
	}
}

func TestIncrementBytes(t *testing.T) {
	b := []byte{0x00, 0xff}
	if !incrementBytes(b) || b[0] != 0x01 || b[1] != 0x00 {
		t.Errorf("carry: %v", b)
	}
	b = []byte{0xff, 0xff}
	if incrementBytes(b) {
		t.Error("overflow must report false")
	}
}

func TestSuRFDistinguishingPrefixes(t *testing.T) {
	keys := [][]byte{[]byte("apple"), []byte("application"), []byte("banana")}
	sort.Slice(keys, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })
	s := NewSuRF(keys, 0)
	for _, k := range keys {
		if !s.MayContain(k) {
			t.Errorf("false negative %q", k)
		}
	}
	if s.MayContain([]byte("cherry")) {
		t.Error("cherry should be excluded")
	}
	// "appx" shares only "app" with stored prefixes; "apple"/"applicat"
	// prefixes are longer, so it should be excluded.
	if s.MayContain([]byte("apzzz")) {
		t.Error("apzzz should be excluded")
	}
	if s.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
}
