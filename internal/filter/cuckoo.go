package filter

import (
	"lsmlab/internal/bloom"
)

// Cuckoo is a cuckoo filter (Fan et al., CoNEXT 2014): buckets of four
// fingerprint slots with two candidate buckets per key. Unlike a Bloom
// filter it supports deletion, which is what lets Chucky maintain a
// single updatable filter-index across the whole LSM-tree instead of
// rebuilding per-run filters on every compaction (tutorial §2.1.3,
// [35]).
type Cuckoo struct {
	buckets  [][4]uint16
	nBuckets uint64
	count    int
	maxKicks int
}

// NewCuckoo sizes a filter for n keys (load factor ~0.84 with 16-bit
// fingerprints).
func NewCuckoo(n int) *Cuckoo {
	nBuckets := uint64(1)
	for nBuckets*4*84/100 < uint64(n) {
		nBuckets *= 2
	}
	return &Cuckoo{
		buckets:  make([][4]uint16, nBuckets),
		nBuckets: nBuckets,
		maxKicks: 500,
	}
}

// fingerprint derives a non-zero 16-bit fingerprint.
func fingerprint(h uint64) uint16 {
	fp := uint16(h >> 48)
	if fp == 0 {
		fp = 1
	}
	return fp
}

func (c *Cuckoo) indices(key []byte) (uint64, uint64, uint16) {
	h := bloom.Hash64(key)
	fp := fingerprint(h)
	i1 := h & (c.nBuckets - 1)
	i2 := (i1 ^ bloom.Rehash(uint64(fp), 0)) & (c.nBuckets - 1)
	return i1, i2, fp
}

func (c *Cuckoo) altIndex(i uint64, fp uint16) uint64 {
	return (i ^ bloom.Rehash(uint64(fp), 0)) & (c.nBuckets - 1)
}

func (c *Cuckoo) insertAt(i uint64, fp uint16) bool {
	b := &c.buckets[i]
	for s := range b {
		if b[s] == 0 {
			b[s] = fp
			return true
		}
	}
	return false
}

// Add inserts a key; it returns false if the filter is saturated (the
// caller should rebuild larger).
func (c *Cuckoo) Add(key []byte) bool {
	i1, i2, fp := c.indices(key)
	if c.insertAt(i1, fp) || c.insertAt(i2, fp) {
		c.count++
		return true
	}
	// Kick a random-ish victim around until something sticks.
	i := i1
	for kick := 0; kick < c.maxKicks; kick++ {
		slot := kick & 3
		victim := c.buckets[i][slot]
		c.buckets[i][slot] = fp
		fp = victim
		i = c.altIndex(i, fp)
		if c.insertAt(i, fp) {
			c.count++
			return true
		}
	}
	return false
}

// Delete removes one copy of a key's fingerprint, enabling the
// updatable-index use.
func (c *Cuckoo) Delete(key []byte) bool {
	i1, i2, fp := c.indices(key)
	for _, i := range []uint64{i1, i2} {
		b := &c.buckets[i]
		for s := range b {
			if b[s] == fp {
				b[s] = 0
				c.count--
				return true
			}
		}
	}
	return false
}

// MayContain implements PointFilter.
func (c *Cuckoo) MayContain(key []byte) bool {
	i1, i2, fp := c.indices(key)
	for _, i := range []uint64{i1, i2} {
		b := &c.buckets[i]
		for s := range b {
			if b[s] == fp {
				return true
			}
		}
	}
	return false
}

// Count returns the number of stored fingerprints.
func (c *Cuckoo) Count() int { return c.count }

// SizeBytes implements PointFilter.
func (c *Cuckoo) SizeBytes() int { return int(c.nBuckets) * 4 * 2 }

// Name implements PointFilter.
func (c *Cuckoo) Name() string { return "cuckoo" }
