// Package wire defines the length-prefixed binary protocol spoken
// between lsmserved and its clients. A frame is
//
//	[4-byte big-endian length n][1-byte opcode][payload, n-1 bytes]
//
// where the length covers the opcode byte plus the payload. Requests
// and responses share the framing; response opcodes occupy the high
// half of the byte space (see StatusOK and friends) so a stream
// position can always be classified. Connections are strictly
// pipelined: a peer may send many requests before reading, and the
// server answers in arrival order, so no request IDs travel on the
// wire.
//
// Payload fields are uvarint-length-prefixed byte strings (AppendBytes
// / ReadBytes) and bare uvarints, composed per opcode as documented on
// the Op constants. Malformed input yields typed errors — ErrTruncated,
// ErrTooLarge, ErrMalformed — never a panic, and decoding never
// allocates more than the enforced frame cap.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds a frame's length field unless the caller
// supplies its own cap. 4 MiB fits any reasonable batch while keeping a
// hostile length prefix from reserving real memory.
const DefaultMaxFrame = 4 << 20

// headerSize is the byte length of the frame length prefix.
const headerSize = 4

// Request opcodes. The payload layout of each is given inline.
const (
	// OpGet: key. Response: StatusOK + value, or StatusNotFound.
	OpGet byte = 0x01
	// OpPut: key, value. Response: StatusOK (empty).
	OpPut byte = 0x02
	// OpDelete: key. Response: StatusOK (empty).
	OpDelete byte = 0x03
	// OpScan: prefix, uvarint limit (0 = server default). Response:
	// StatusOK + uvarint count + count×(key, value).
	OpScan byte = 0x04
	// OpBatch: uvarint count, then count entries of
	// [1-byte kind (BatchPut|BatchDelete)][key][value if put].
	// Applied atomically. Response: StatusOK (empty).
	OpBatch byte = 0x05
	// OpStats: 1-byte verbose flag. Response: StatusOK + UTF-8 text.
	OpStats byte = 0x06
	// OpCompact: empty. Runs a full manual compaction. Response:
	// StatusOK (empty).
	OpCompact byte = 0x07
	// OpPing: empty. Response: StatusOK (empty).
	OpPing byte = 0x08
	// OpHealth: empty. Response: StatusOK + 1-byte degraded flag +
	// cause, op, kind (byte strings; empty when healthy). The engine
	// keeps answering this while degraded — it is how operators learn
	// why writes are failing.
	OpHealth byte = 0x09
	// OpWatermark: empty. Response: StatusOK + uvarint shard count +
	// count×uvarint per-shard visibility watermark. This is the
	// read-your-writes token generalized to a sharded engine: a reader
	// holding a watermark vector observed at-or-after its own writes
	// can demand that visibility from any replica or snapshot whose
	// vector dominates it component-wise. A single-tree server answers
	// with a one-element vector.
	OpWatermark byte = 0x0A
	// OpReplSubscribe: follower id, uvarint shard, uvarint afterSeq.
	// The connection becomes a one-way replication stream: the server
	// answers with a sequence of StatusOK frames, each payload led by a
	// 1-byte kind (ReplFrameData | ReplFrameGap | ReplFrameHeartbeat;
	// see those constants for the layouts), and sends nothing else on
	// the connection until it closes. Requires replication to be
	// enabled server-side (StatusBadRequest otherwise).
	OpReplSubscribe byte = 0x0B
	// OpReplAck: follower id, uvarint shard, uvarint appliedSeq. The
	// follower's applied-through watermark, feeding the leader's lag
	// view. Response: StatusOK (empty).
	OpReplAck byte = 0x0C
	// OpReplTree: uvarint shard. Response: StatusOK + uvarint
	// watermark + uvarint entry count + uvarint range count +
	// count×32-byte range digests + 32-byte root — the shard's Merkle
	// tree over user key → latest visible value, for anti-entropy
	// diffing.
	OpReplTree byte = 0x0D
	// OpReplRepair: uvarint shard, uvarint range index, resume-after
	// key (empty = start). Response: StatusOK + uvarint watermark +
	// 1-byte more flag + uvarint count + count×(key, value) — the live
	// entries of one divergent Merkle range, paginated by response
	// size.
	OpReplRepair byte = 0x0E
	// OpReplStatus: empty. Response: StatusOK + the leader's
	// replication status block (per-follower per-shard acked seqs and
	// lag; layout in internal/replica).
	OpReplStatus byte = 0x0F
	// OpWorkload: empty. Response: StatusOK + the engine's live
	// workload profile as JSON (core.WorkloadProfile): operation mix,
	// skew and hot keys, per-tenant breakdown, and per-level RUM cost
	// attribution over the profile decay window.
	OpWorkload byte = 0x10
)

// Replication stream frame kinds (first payload byte of each StatusOK
// frame on an OpReplSubscribe connection).
const (
	// ReplFrameData: uvarint leader watermark, then one raw WAL frame
	// (length | crc32c | payload) exactly as it sits in the leader's
	// log — the follower re-verifies the original checksum.
	ReplFrameData byte = 0x00
	// ReplFrameGap: uvarint leader watermark. The follower's cursor
	// position fell out of WAL retention (or the log is damaged); the
	// stream ends after this frame and the follower runs Merkle repair
	// before resubscribing.
	ReplFrameGap byte = 0x01
	// ReplFrameHeartbeat: uvarint leader watermark. Sent while the
	// stream is idle so the follower can track leader visibility and
	// liveness.
	ReplFrameHeartbeat byte = 0x02
)

// Batch entry kinds (OpBatch payload).
const (
	BatchPut    byte = 0x00
	BatchDelete byte = 0x01
)

// TraceFlag, OR'd into a request opcode, marks the frame as traced: an
// 8-byte big-endian trace id precedes the opcode's normal payload. A
// tracing-aware server answers by OR'ing TraceFlag into the success
// status (StatusOK → 0xC0, StatusNotFound → 0xC1) and prefixing the
// response payload with the same id plus a uvarint of server-observed
// nanoseconds, so the client can split its latency into network and
// server shares. Error statuses already occupy 0xE0+ (bit 0x40 set)
// and are never flagged: a traced request that fails is answered with
// the plain error every client understands. Version interop is free on
// both sides: an old server answers a flagged opcode with
// StatusUnknownOp without losing framing (clients fall back to
// untraced requests), and an old client never sets the flag, so it is
// answered byte-identically to the pre-trace protocol.
const TraceFlag byte = 0x40

// IsTracedOp reports whether op is a known request opcode carrying
// TraceFlag. Unknown bytes that merely have bit 0x40 set are not
// traced requests — they answer StatusUnknownOp like any other
// unrecognized opcode.
func IsTracedOp(op byte) bool {
	if IsStatus(op) || op&TraceFlag == 0 {
		return false
	}
	_, ok := opNames[op&^TraceFlag]
	return ok
}

// IsTracedStatus reports whether a status byte is a trace-flagged
// success status (error statuses live at 0xE0+ and are never flagged).
func IsTracedStatus(op byte) bool { return op >= 0xC0 && op < 0xE0 }

// BaseOp strips TraceFlag from flagged opcodes and flagged success
// statuses; every other byte passes through unchanged.
func BaseOp(op byte) byte {
	if IsTracedOp(op) || IsTracedStatus(op) {
		return op &^ TraceFlag
	}
	return op
}

// AppendTraceID appends the 8-byte big-endian trace id that leads a
// traced request's payload.
func AppendTraceID(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// ReadTraceID decodes the leading 8-byte trace id of a traced payload.
func ReadTraceID(p []byte) (id uint64, rest []byte, err error) {
	if len(p) < 8 {
		return 0, p, ErrTruncated
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}

// AppendTraceEcho appends the trace echo leading a traced response's
// payload: the request's id and the server-observed duration.
func AppendTraceEcho(dst []byte, id uint64, serverNs int64) []byte {
	dst = AppendTraceID(dst, id)
	return AppendUvarint(dst, uint64(serverNs))
}

// ReadTraceEcho decodes the echo from the front of a traced response
// payload.
func ReadTraceEcho(p []byte) (id uint64, serverNs int64, rest []byte, err error) {
	id, rest, err = ReadTraceID(p)
	if err != nil {
		return 0, 0, p, err
	}
	ns, rest, err := ReadUvarint(rest)
	if err != nil {
		return 0, 0, p, err
	}
	return id, int64(ns), rest, nil
}

// Response opcodes (statuses). Error statuses carry a UTF-8 message as
// their payload.
const (
	// StatusOK is success; the payload is op-specific.
	StatusOK byte = 0x80
	// StatusNotFound is Get on a key with no live value.
	StatusNotFound byte = 0x81

	// StatusBadRequest: the payload of a known opcode failed to parse.
	StatusBadRequest byte = 0xE0
	// StatusTooLarge: the request frame exceeded the server's cap. The
	// server closes the connection after sending it (the oversized body
	// is never read, so the stream cannot be resynchronized).
	StatusTooLarge byte = 0xE1
	// StatusUnknownOp: unrecognized opcode. The connection stays open —
	// framing was intact, so the stream is still in sync.
	StatusUnknownOp byte = 0xE2
	// StatusInternal: the engine returned an error.
	StatusInternal byte = 0xE3
	// StatusShuttingDown: the server is draining and refused the
	// request.
	StatusShuttingDown byte = 0xE4
	// StatusDeadline: the request exceeded the server's per-request
	// deadline.
	StatusDeadline byte = 0xE5
	// StatusBusy: the server is at its connection limit; sent once on
	// accept, then the connection is closed.
	StatusBusy byte = 0xE6
	// StatusUnavailable: the engine is degraded to read-only mode and
	// refused a write. Not retryable — the condition is sticky until the
	// operator intervenes — so clients must surface it, never loop on it.
	// Reads remain served; the connection stays open.
	StatusUnavailable byte = 0xE7
	// StatusReadOnly: the store is a replication follower and refused a
	// write. Unlike StatusUnavailable nothing is wrong — the client
	// should direct writes at the leader. Reads remain served; the
	// connection stays open.
	StatusReadOnly byte = 0xE8
	// StatusThrottled: the request was rejected by admission control
	// (tenant over quota) or shed under engine backpressure. The
	// payload is a uvarint retry-after hint in milliseconds followed by
	// a UTF-8 message (AppendThrottle/ReadThrottle). Retryable: the
	// client should wait at least the hint and resend. The connection
	// stays open and other tenants' requests keep flowing.
	StatusThrottled byte = 0xE9
)

// Typed decode errors.
var (
	// ErrTruncated reports a frame (or field) that ends early.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrTooLarge reports a length prefix above the configured cap.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrMalformed reports a structurally invalid frame or field.
	ErrMalformed = errors.New("wire: malformed frame")
)

// opNames maps opcodes and statuses to stable display names.
var opNames = map[byte]string{
	OpGet:              "get",
	OpPut:              "put",
	OpDelete:           "delete",
	OpScan:             "scan",
	OpBatch:            "batch",
	OpStats:            "stats",
	OpCompact:          "compact",
	OpPing:             "ping",
	OpHealth:           "health",
	OpWatermark:        "watermark",
	OpReplSubscribe:    "repl-subscribe",
	OpReplAck:          "repl-ack",
	OpReplTree:         "repl-tree",
	OpReplRepair:       "repl-repair",
	OpReplStatus:       "repl-status",
	OpWorkload:         "workload",
	StatusOK:           "ok",
	StatusNotFound:     "not-found",
	StatusBadRequest:   "bad-request",
	StatusTooLarge:     "too-large",
	StatusUnknownOp:    "unknown-op",
	StatusInternal:     "internal",
	StatusShuttingDown: "shutting-down",
	StatusDeadline:     "deadline",
	StatusBusy:         "busy",
	StatusUnavailable:  "unavailable",
	StatusReadOnly:     "read-only",
	StatusThrottled:    "throttled",
}

// OpName returns a stable name for an opcode or status byte; traced
// variants display as their base name with a "+trace" suffix.
func OpName(op byte) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	if IsTracedOp(op) || IsTracedStatus(op) {
		if n, ok := opNames[BaseOp(op)]; ok {
			return n + "+trace"
		}
	}
	return fmt.Sprintf("op(0x%02x)", op)
}

// IsStatus reports whether op is a response opcode.
func IsStatus(op byte) bool { return op >= 0x80 }

// StatusError is a structured error status received off the wire.
type StatusError struct {
	Code byte
	Msg  string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: server error %s", OpName(e.Code))
	}
	return fmt.Sprintf("wire: server error %s: %s", OpName(e.Code), e.Msg)
}

// AppendThrottle appends the StatusThrottled payload: the retry-after
// hint in milliseconds, then a human-readable message.
func AppendThrottle(dst []byte, retryAfterMillis uint64, msg string) []byte {
	dst = AppendUvarint(dst, retryAfterMillis)
	return append(dst, msg...)
}

// ReadThrottle decodes a StatusThrottled payload. A payload that fails
// to parse degrades to a zero hint with the raw bytes as the message
// rather than an error — a throttle response must never break the
// client's decode path.
func ReadThrottle(p []byte) (retryAfterMillis uint64, msg string) {
	ms, rest, err := ReadUvarint(p)
	if err != nil {
		return 0, string(p)
	}
	return ms, string(rest)
}

// AppendFrame appends one encoded frame to dst and returns the
// extended slice.
func AppendFrame(dst []byte, op byte, payload []byte) []byte {
	n := 1 + len(payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, op)
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the front of buf without copying:
// payload aliases buf, and rest is the unconsumed tail. max caps the
// length field (<= 0 means DefaultMaxFrame). Incomplete input returns
// ErrTruncated; a zero length returns ErrMalformed; an over-cap length
// returns ErrTooLarge. DecodeFrame never allocates.
func DecodeFrame(buf []byte, max int) (op byte, payload, rest []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if len(buf) < headerSize {
		return 0, nil, buf, ErrTruncated
	}
	n := binary.BigEndian.Uint32(buf)
	if n == 0 {
		return 0, nil, buf, ErrMalformed
	}
	if uint64(n) > uint64(max) {
		return 0, nil, buf, ErrTooLarge
	}
	if uint64(len(buf)-headerSize) < uint64(n) {
		return 0, nil, buf, ErrTruncated
	}
	body := buf[headerSize : headerSize+int(n)]
	return body[0], body[1:], buf[headerSize+int(n):], nil
}

// ReadFrame reads one frame from r. scratch is an optional buffer to
// reuse across calls; the returned payload aliases the returned buffer
// and is valid only until the next call that reuses it. max caps the
// length field (<= 0 means DefaultMaxFrame); nothing beyond the header
// is read — or allocated — for an over-cap frame, so a hostile length
// prefix costs four bytes. Stream-level read failures are returned
// verbatim (io.EOF on a clean close before a header); a frame cut off
// mid-body wraps ErrTruncated.
func ReadFrame(r io.Reader, max int, scratch []byte) (op byte, payload, buf []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, scratch, ErrMalformed
	}
	if uint64(n) > uint64(max) {
		return 0, nil, scratch, ErrTooLarge
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return 0, nil, scratch, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return scratch[0], scratch[1:], scratch, nil
}

// AppendUvarint appends v in uvarint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ReadUvarint decodes a uvarint from the front of p.
func ReadUvarint(p []byte) (v uint64, rest []byte, err error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, ErrMalformed
	}
	return v, p[n:], nil
}

// AppendBytes appends b as a uvarint-length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ReadBytes decodes a uvarint-length-prefixed byte string from the
// front of p without copying.
func ReadBytes(p []byte) (b, rest []byte, err error) {
	n, rest, err := ReadUvarint(p)
	if err != nil {
		return nil, p, err
	}
	if n > uint64(len(rest)) {
		return nil, p, ErrTruncated
	}
	return rest[:n], rest[n:], nil
}
