package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder. The
// invariants: no panic, no allocation chasing hostile length prefixes
// (DecodeFrame never allocates; ReadFrame is bounded by the cap), a
// successful decode re-encodes to exactly the consumed prefix, and the
// streaming and in-memory decoders agree.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, 0))
	f.Add(binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Add(AppendFrame(nil, OpPut, AppendBytes(AppendBytes(nil, []byte("k")), []byte("v"))))
	f.Add(AppendFrame(AppendFrame(nil, OpGet, []byte("a")), 0xEE, bytes.Repeat([]byte{0}, 100)))
	f.Add([]byte{0, 0, 0, 2, OpScan})

	const max = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, rest, err := DecodeFrame(data, max)
		if err != nil {
			if len(rest) != len(data) {
				t.Fatalf("failed decode consumed input: rest=%d data=%d", len(rest), len(data))
			}
		} else {
			consumed := data[:len(data)-len(rest)]
			re := AppendFrame(nil, op, payload)
			if !bytes.Equal(re, consumed) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, consumed)
			}
			if 1+len(payload) > max {
				t.Fatalf("decoded frame exceeds cap: %d", 1+len(payload))
			}
		}

		// The streaming decoder must agree with the in-memory one.
		sop, spayload, _, serr := ReadFrame(bufio.NewReader(bytes.NewReader(data)), max, nil)
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree: DecodeFrame err=%v ReadFrame err=%v", err, serr)
		}
		if err == nil && (sop != op || !bytes.Equal(spayload, payload)) {
			t.Fatalf("decoders diverge: op %#x/%#x payload %x/%x", op, sop, payload, spayload)
		}

		// Field helpers must be panic-free on the same input.
		if b, rest2, err := ReadBytes(data); err == nil {
			_ = b
			_, _, _ = ReadUvarint(rest2)
		}
	})
}
