package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("kv"), 500)}
	for _, p := range payloads {
		frame := AppendFrame(nil, OpPut, p)
		op, payload, rest, err := DecodeFrame(frame, 0)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if op != OpPut || !bytes.Equal(payload, p) || len(rest) != 0 {
			t.Fatalf("round trip mismatch: op=%#x payload=%q rest=%d", op, payload, len(rest))
		}
	}
}

func TestDecodeFrameMultiple(t *testing.T) {
	buf := AppendFrame(nil, OpGet, []byte("a"))
	buf = AppendFrame(buf, OpDelete, []byte("b"))
	op1, p1, rest, err := DecodeFrame(buf, 0)
	if err != nil || op1 != OpGet || string(p1) != "a" {
		t.Fatalf("first frame: op=%#x p=%q err=%v", op1, p1, err)
	}
	op2, p2, rest, err := DecodeFrame(rest, 0)
	if err != nil || op2 != OpDelete || string(p2) != "b" || len(rest) != 0 {
		t.Fatalf("second frame: op=%#x p=%q rest=%d err=%v", op2, p2, len(rest), err)
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	frame := AppendFrame(nil, OpPut, []byte("hello world"))
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := DecodeFrame(frame[:cut], 0); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, err)
		}
	}
}

func TestDecodeFrameHostileLengths(t *testing.T) {
	// Zero length is structurally invalid (a frame always has an op).
	zero := binary.BigEndian.AppendUint32(nil, 0)
	if _, _, _, err := DecodeFrame(zero, 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero length: want ErrMalformed, got %v", err)
	}
	// A huge length must be rejected by the cap, not chased.
	huge := binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF)
	if _, _, _, err := DecodeFrame(huge, 0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge length: want ErrTooLarge, got %v", err)
	}
	// Just above a small explicit cap.
	over := AppendFrame(nil, OpPut, bytes.Repeat([]byte{1}, 64))
	if _, _, _, err := DecodeFrame(over, 32); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over cap: want ErrTooLarge, got %v", err)
	}
	if _, _, _, err := DecodeFrame(over, 0); err != nil {
		t.Fatalf("default cap should admit it: %v", err)
	}
}

func TestReadFrame(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, OpGet, []byte("k1"))
	stream = AppendFrame(stream, OpScan, []byte("prefix"))
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte
	op, p, scratch, err := ReadFrame(br, 0, scratch)
	if err != nil || op != OpGet || string(p) != "k1" {
		t.Fatalf("frame 1: op=%#x p=%q err=%v", op, p, err)
	}
	op, p, scratch, err = ReadFrame(br, 0, scratch)
	if err != nil || op != OpScan || string(p) != "prefix" {
		t.Fatalf("frame 2: op=%#x p=%q err=%v", op, p, err)
	}
	if _, _, _, err = ReadFrame(br, 0, scratch); err != io.EOF {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	frame := AppendFrame(nil, OpPut, []byte("abcdef"))
	br := bufio.NewReader(bytes.NewReader(frame[:len(frame)-3]))
	if _, _, _, err := ReadFrame(br, 0, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

// TestReadFrameHostileLengthNoOverAllocation feeds a 4 GiB length
// prefix: ReadFrame must reject it from the header alone, without
// reading (or allocating) the advertised body.
func TestReadFrameHostileLengthNoOverAllocation(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, 0xFFFFFFFF)
	r := &countingReader{r: bytes.NewReader(append(hdr, 0xAA))}
	br := bufio.NewReaderSize(r, 16)
	if _, _, _, err := ReadFrame(br, 1<<20, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if r.n > 16 {
		t.Fatalf("read %d bytes chasing a hostile length", r.n)
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestBytesAndUvarint(t *testing.T) {
	var p []byte
	p = AppendBytes(p, []byte("key"))
	p = AppendBytes(p, nil)
	p = AppendUvarint(p, 1<<40)
	b1, p, err := ReadBytes(p)
	if err != nil || string(b1) != "key" {
		t.Fatalf("b1=%q err=%v", b1, err)
	}
	b2, p, err := ReadBytes(p)
	if err != nil || len(b2) != 0 {
		t.Fatalf("b2=%q err=%v", b2, err)
	}
	v, p, err := ReadUvarint(p)
	if err != nil || v != 1<<40 || len(p) != 0 {
		t.Fatalf("v=%d rest=%d err=%v", v, len(p), err)
	}
}

func TestReadBytesHostile(t *testing.T) {
	// Length prefix far beyond the remaining bytes.
	p := AppendUvarint(nil, 1<<50)
	p = append(p, 'x')
	if _, _, err := ReadBytes(p); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// Empty input.
	if _, _, err := ReadBytes(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
	// Over-long uvarint (non-terminating continuation bits).
	bad := bytes.Repeat([]byte{0x80}, 11)
	if _, _, err := ReadUvarint(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestOpNames(t *testing.T) {
	if OpName(OpGet) != "get" || OpName(StatusShuttingDown) != "shutting-down" {
		t.Fatalf("unexpected names: %q %q", OpName(OpGet), OpName(StatusShuttingDown))
	}
	if !strings.HasPrefix(OpName(0x7F), "op(") {
		t.Fatalf("unknown op name: %q", OpName(0x7F))
	}
	if IsStatus(OpGet) || !IsStatus(StatusOK) {
		t.Fatal("IsStatus misclassifies")
	}
	e := &StatusError{Code: StatusInternal, Msg: "boom"}
	if !strings.Contains(e.Error(), "internal") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("status error: %q", e.Error())
	}
}

func TestTraceFlagClassification(t *testing.T) {
	// Flagged requests stay in the request half of the byte space.
	for _, op := range []byte{OpGet, OpPut, OpDelete, OpScan, OpBatch} {
		traced := op | TraceFlag
		if IsStatus(traced) {
			t.Fatalf("traced op 0x%02x classified as status", traced)
		}
		if !IsTracedOp(traced) || IsTracedOp(op) {
			t.Fatalf("IsTracedOp(0x%02x/0x%02x) misclassifies", traced, op)
		}
		if BaseOp(traced) != op || BaseOp(op) != op {
			t.Fatalf("BaseOp round trip failed for 0x%02x", op)
		}
	}
	// Flagged success statuses remain statuses and never collide with
	// the error range.
	for _, st := range []byte{StatusOK, StatusNotFound} {
		traced := st | TraceFlag
		if !IsStatus(traced) || !IsTracedStatus(traced) {
			t.Fatalf("traced status 0x%02x misclassified", traced)
		}
		if traced >= StatusBadRequest {
			t.Fatalf("traced status 0x%02x collides with error range", traced)
		}
		if BaseOp(traced) != st {
			t.Fatalf("BaseOp(0x%02x) = 0x%02x", traced, BaseOp(traced))
		}
	}
	// Error statuses have bit 0x40 set but are NOT traced statuses, and
	// BaseOp must not strip their bits.
	for _, st := range []byte{StatusBadRequest, StatusTooLarge, StatusUnknownOp,
		StatusInternal, StatusShuttingDown, StatusDeadline, StatusBusy, StatusUnavailable} {
		if IsTracedStatus(st) || IsTracedOp(st) {
			t.Fatalf("error status 0x%02x misclassified as traced", st)
		}
		if BaseOp(st) != st {
			t.Fatalf("BaseOp mangled error status 0x%02x -> 0x%02x", st, BaseOp(st))
		}
	}
	if OpName(OpGet|TraceFlag) != "get+trace" || OpName(StatusOK|TraceFlag) != "ok+trace" {
		t.Fatalf("traced names: %q %q", OpName(OpGet|TraceFlag), OpName(StatusOK|TraceFlag))
	}
}

func TestTraceIDAndEchoRoundTrip(t *testing.T) {
	payload := AppendTraceID(nil, 0xdeadbeefcafef00d)
	payload = AppendBytes(payload, []byte("key"))
	id, rest, err := ReadTraceID(payload)
	if err != nil || id != 0xdeadbeefcafef00d {
		t.Fatalf("ReadTraceID: %x %v", id, err)
	}
	if k, _, err := ReadBytes(rest); err != nil || string(k) != "key" {
		t.Fatalf("payload after id: %q %v", k, err)
	}
	// Truncated id.
	if _, _, err := ReadTraceID(payload[:7]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short id: %v", err)
	}

	echo := AppendTraceEcho(nil, 42, 1_234_567)
	echo = AppendBytes(echo, []byte("value"))
	id, ns, rest, err := ReadTraceEcho(echo)
	if err != nil || id != 42 || ns != 1_234_567 {
		t.Fatalf("ReadTraceEcho: %d %d %v", id, ns, err)
	}
	if v, _, err := ReadBytes(rest); err != nil || string(v) != "value" {
		t.Fatalf("payload after echo: %q %v", v, err)
	}
	if _, _, _, err := ReadTraceEcho(echo[:8]); err == nil {
		t.Fatal("echo without duration must fail")
	}
}

func TestUnknownFlaggedByteIsNotTraced(t *testing.T) {
	// 0x7E has bit 0x40 set but no known base opcode: it must classify
	// as plain unknown, not as a traced request.
	if IsTracedOp(0x7E) {
		t.Fatal("0x7E misclassified as traced op")
	}
	if BaseOp(0x7E) != 0x7E {
		t.Fatalf("BaseOp mangled unknown byte: 0x%02x", BaseOp(0x7E))
	}
}

func TestThrottlePayloadRoundTrip(t *testing.T) {
	p := AppendThrottle(nil, 250, "tenant acme over quota")
	ms, msg := ReadThrottle(p)
	if ms != 250 || msg != "tenant acme over quota" {
		t.Fatalf("round trip: ms=%d msg=%q", ms, msg)
	}
	// Zero hint, empty message.
	ms, msg = ReadThrottle(AppendThrottle(nil, 0, ""))
	if ms != 0 || msg != "" {
		t.Fatalf("empty round trip: ms=%d msg=%q", ms, msg)
	}
	// A malformed payload degrades to hint 0 + raw message, never an error.
	ms, msg = ReadThrottle([]byte{0xFF})
	if ms != 0 || msg != "\xff" {
		t.Fatalf("malformed payload: ms=%d msg=%q", ms, msg)
	}
	if OpName(StatusThrottled) != "throttled" {
		t.Fatalf("OpName(StatusThrottled) = %q", OpName(StatusThrottled))
	}
}
