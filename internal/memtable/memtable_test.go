package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"lsmlab/internal/kv"
)

var allKinds = []Kind{KindSkipList, KindVector, KindHashSkipList, KindHashLinkList}

// forEachKind runs a subtest against every memtable implementation.
func forEachKind(t *testing.T, fn func(t *testing.T, m Memtable)) {
	t.Helper()
	for _, k := range allKinds {
		t.Run(string(k), func(t *testing.T) { fn(t, New(k)) })
	}
}

func TestNewFallsBackToSkipList(t *testing.T) {
	if _, ok := New("bogus").(*SkipList); !ok {
		t.Error("unknown kind should yield skiplist")
	}
}

func TestAddGet(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		m.Add(1, kv.KindSet, []byte("a"), []byte("v1"))
		m.Add(2, kv.KindSet, []byte("b"), []byte("v2"))
		e, ok := m.Get([]byte("a"), kv.MaxSeqNum)
		if !ok || string(e.Value) != "v1" || e.Kind() != kv.KindSet {
			t.Fatalf("get a: %v %v", e, ok)
		}
		if _, ok := m.Get([]byte("missing"), kv.MaxSeqNum); ok {
			t.Error("missing key found")
		}
		if m.Len() != 2 {
			t.Errorf("len=%d", m.Len())
		}
	})
}

func TestNewestVersionWins(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		m.Add(1, kv.KindSet, []byte("k"), []byte("old"))
		m.Add(5, kv.KindSet, []byte("k"), []byte("new"))
		m.Add(3, kv.KindSet, []byte("k"), []byte("mid"))
		e, ok := m.Get([]byte("k"), kv.MaxSeqNum)
		if !ok || string(e.Value) != "new" {
			t.Fatalf("latest: %v %v", e, ok)
		}
	})
}

func TestSnapshotVisibility(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		m.Add(1, kv.KindSet, []byte("k"), []byte("v1"))
		m.Add(5, kv.KindSet, []byte("k"), []byte("v5"))
		m.Add(9, kv.KindSet, []byte("k"), []byte("v9"))
		for _, c := range []struct {
			snap kv.SeqNum
			want string
			ok   bool
		}{
			{kv.MaxSeqNum, "v9", true},
			{9, "v9", true},
			{8, "v5", true},
			{5, "v5", true},
			{4, "v1", true},
			{1, "v1", true},
		} {
			e, ok := m.Get([]byte("k"), c.snap)
			if ok != c.ok || (ok && string(e.Value) != c.want) {
				t.Errorf("snap %d: got %q/%v want %q/%v", c.snap, e.Value, ok, c.want, c.ok)
			}
		}
		if _, ok := m.Get([]byte("k"), 0); ok {
			t.Error("snapshot 0 must see nothing")
		}
	})
}

func TestTombstonesSurface(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		m.Add(1, kv.KindSet, []byte("k"), []byte("v"))
		m.Add(2, kv.KindDelete, []byte("k"), nil)
		e, ok := m.Get([]byte("k"), kv.MaxSeqNum)
		if !ok || e.Kind() != kv.KindDelete {
			t.Fatalf("tombstone must surface: %v %v", e, ok)
		}
	})
}

func TestIteratorSortedAndComplete(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		r := rand.New(rand.NewSource(7))
		const n = 500
		for seq := 1; seq <= n; seq++ {
			k := []byte(fmt.Sprintf("key-%04d", r.Intn(100)))
			m.Add(kv.SeqNum(seq), kv.KindSet, k, []byte("v"))
		}
		it := m.NewIterator()
		defer it.Close()
		var prev []byte
		count := 0
		for ok := it.First(); ok; ok = it.Next() {
			if prev != nil && kv.Compare(prev, it.Key()) >= 0 {
				t.Fatalf("iterator out of order at %d", count)
			}
			prev = append(prev[:0], it.Key()...)
			count++
		}
		if count != n {
			t.Errorf("iterated %d of %d entries", count, n)
		}
	})
}

func TestIteratorSeekGE(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		for i, k := range []string{"b", "d", "f"} {
			m.Add(kv.SeqNum(i+1), kv.KindSet, []byte(k), []byte(k))
		}
		it := m.NewIterator()
		defer it.Close()
		if !it.SeekGE(kv.MakeSearchKey([]byte("c"), kv.MaxSeqNum)) {
			t.Fatal("seek c")
		}
		if got := string(kv.UserKey(it.Key())); got != "d" {
			t.Errorf("landed on %q", got)
		}
		if it.SeekGE(kv.MakeSearchKey([]byte("z"), kv.MaxSeqNum)) {
			t.Error("seek past end")
		}
	})
}

func TestApproximateBytesGrows(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		if m.ApproximateBytes() != 0 {
			t.Error("empty buffer has zero bytes")
		}
		m.Add(1, kv.KindSet, []byte("key"), make([]byte, 100))
		b1 := m.ApproximateBytes()
		if b1 < 100 {
			t.Errorf("bytes %d too small", b1)
		}
		m.Add(2, kv.KindSet, []byte("key2"), make([]byte, 100))
		if m.ApproximateBytes() <= b1 {
			t.Error("bytes must grow")
		}
	})
}

func TestValueIsolation(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		val := []byte("mutable")
		m.Add(1, kv.KindSet, []byte("k"), val)
		val[0] = 'X'
		e, _ := m.Get([]byte("k"), kv.MaxSeqNum)
		if string(e.Value) != "mutable" {
			t.Error("memtable must copy values")
		}
	})
}

// TestAgainstReferenceModel drives every implementation with the same
// random operation stream and checks Get results against a simple map
// of per-key version lists.
func TestAgainstReferenceModel(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		type version struct {
			seq  kv.SeqNum
			kind kv.Kind
			val  string
		}
		model := map[string][]version{}
		r := rand.New(rand.NewSource(99))
		for seq := kv.SeqNum(1); seq <= 2000; seq++ {
			k := fmt.Sprintf("k%02d", r.Intn(50))
			kind := kv.KindSet
			if r.Intn(10) == 0 {
				kind = kv.KindDelete
			}
			v := fmt.Sprintf("v%d", seq)
			m.Add(seq, kind, []byte(k), []byte(v))
			model[k] = append(model[k], version{seq, kind, v})
		}
		for k, versions := range model {
			snap := kv.SeqNum(r.Intn(2100))
			var want *version
			for i := range versions {
				if kv.Visible(versions[i].seq, snap) && (want == nil || versions[i].seq > want.seq) {
					want = &versions[i]
				}
			}
			e, ok := m.Get([]byte(k), snap)
			if want == nil {
				if ok {
					t.Fatalf("%s@%d: unexpected hit %v", k, snap, e)
				}
				continue
			}
			if !ok || e.Seq() != want.seq || e.Kind() != want.kind || string(e.Value) != want.val {
				t.Fatalf("%s@%d: got %v/%v want %+v", k, snap, e, ok, *want)
			}
		}
	})
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	// Vector is excluded from concurrent-read testing: its iterator
	// contract requires no concurrent writes (the engine only iterates
	// immutable memtables).
	for _, k := range []Kind{KindSkipList, KindHashSkipList, KindHashLinkList} {
		t.Run(string(k), func(t *testing.T) {
			m := New(k)
			var wg sync.WaitGroup
			var seq sync.Mutex
			next := kv.SeqNum(0)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						seq.Lock()
						next++
						s := next
						seq.Unlock()
						m.Add(s, kv.KindSet, []byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v"))
					}
				}(w)
			}
			for rdr := 0; rdr < 2; rdr++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						m.Get([]byte(fmt.Sprintf("w0-%d", i)), kv.MaxSeqNum)
						it := m.NewIterator()
						for ok := it.First(); ok && i%50 != 0; ok = it.Next() {
						}
						it.Close()
					}
				}()
			}
			wg.Wait()
			if m.Len() != 2000 {
				t.Errorf("len=%d want 2000", m.Len())
			}
		})
	}
}

func TestHashSkipListPrefixBucketing(t *testing.T) {
	h := NewHashSkipList(2)
	h.Add(1, kv.KindSet, []byte("aa1"), []byte("x"))
	h.Add(2, kv.KindSet, []byte("aa2"), []byte("y"))
	h.Add(3, kv.KindSet, []byte("bb1"), []byte("z"))
	h.Add(4, kv.KindSet, []byte("a"), []byte("short")) // key shorter than prefix
	if len(h.buckets) != 3 {
		t.Errorf("bucket count %d, want 3", len(h.buckets))
	}
	if e, ok := h.Get([]byte("a"), kv.MaxSeqNum); !ok || string(e.Value) != "short" {
		t.Error("short-key get")
	}
}

func TestVectorSortedFastPath(t *testing.T) {
	v := NewVector()
	// In-order inserts keep the buffer sorted; reads need no sort.
	for i := 1; i <= 10; i++ {
		v.Add(kv.SeqNum(i), kv.KindSet, []byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	if !v.sorted {
		t.Error("in-order inserts should preserve sortedness")
	}
	// An out-of-order insert dirties it.
	v.Add(99, kv.KindSet, []byte("a"), []byte("v"))
	if v.sorted {
		t.Error("out-of-order insert must dirty the buffer")
	}
	if _, ok := v.Get([]byte("a"), kv.MaxSeqNum); !ok {
		t.Error("get after re-sort")
	}
	if !v.sorted {
		t.Error("read must leave buffer sorted")
	}
}

func TestHashLinkListCollisionSafety(t *testing.T) {
	// Different user keys that landed in the same hash bucket must not
	// shadow one another. We cannot force a 64-bit collision, but the
	// chain-walk compares full keys, so simulate by direct insertion.
	h := NewHashLinkList()
	h.Add(1, kv.KindSet, []byte("x"), []byte("vx"))
	h.Add(2, kv.KindSet, []byte("y"), []byte("vy"))
	ex, _ := h.Get([]byte("x"), kv.MaxSeqNum)
	ey, _ := h.Get([]byte("y"), kv.MaxSeqNum)
	if string(ex.Value) != "vx" || string(ey.Value) != "vy" {
		t.Error("keys must not shadow each other")
	}
}

// sortEntries is a helper asserting a slice is sorted by internal key.
func sortEntries(es []kv.Entry) []kv.Entry {
	sort.Slice(es, func(i, j int) bool { return kv.Compare(es[i].Key, es[j].Key) < 0 })
	return es
}

func TestIteratorVersionOrderWithinKey(t *testing.T) {
	forEachKind(t, func(t *testing.T, m Memtable) {
		m.Add(1, kv.KindSet, []byte("k"), []byte("v1"))
		m.Add(3, kv.KindSet, []byte("k"), []byte("v3"))
		m.Add(2, kv.KindDelete, []byte("k"), nil)
		it := m.NewIterator()
		defer it.Close()
		var seqs []kv.SeqNum
		for ok := it.First(); ok; ok = it.Next() {
			seqs = append(seqs, kv.SeqOf(it.Key()))
		}
		want := []kv.SeqNum{3, 2, 1}
		if fmt.Sprint(seqs) != fmt.Sprint(want) {
			t.Errorf("version order %v, want %v", seqs, want)
		}
	})
}
