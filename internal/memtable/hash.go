package memtable

import (
	"sort"
	"sync"

	"lsmlab/internal/bloom"
	"lsmlab/internal/kv"
)

// ---------------------------------------------------------------------
// Hash-skiplist

// HashSkipList buckets keys by a fixed-length prefix and keeps a small
// skiplist per bucket (RocksDB's hash_skiplist). Point lookups hash to
// one bucket; ordered iteration must merge all buckets, which is why
// this memtable suits prefix-local workloads, not full scans.
type HashSkipList struct {
	mu        sync.RWMutex
	prefixLen int
	buckets   map[string]*SkipList
	bytes     int
	count     int
}

// NewHashSkipList returns an empty hash-skiplist memtable bucketing on
// the first prefixLen bytes of the user key.
func NewHashSkipList(prefixLen int) *HashSkipList {
	if prefixLen < 1 {
		prefixLen = 1
	}
	return &HashSkipList{prefixLen: prefixLen, buckets: make(map[string]*SkipList)}
}

func (h *HashSkipList) prefix(ukey []byte) string {
	if len(ukey) <= h.prefixLen {
		return string(ukey)
	}
	return string(ukey[:h.prefixLen])
}

// Add implements Memtable.
func (h *HashSkipList) Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte) {
	p := h.prefix(ukey)
	h.mu.Lock()
	b, ok := h.buckets[p]
	if !ok {
		b = NewSkipList()
		h.buckets[p] = b
	}
	h.bytes += sizeOf(ukey, value)
	h.count++
	h.mu.Unlock()
	b.Add(seq, kind, ukey, value)
}

// Get implements Memtable.
func (h *HashSkipList) Get(ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	return h.GetSeek(kv.MakeSearchKey(ukey, snap), ukey, snap)
}

// GetSeek implements Memtable.
func (h *HashSkipList) GetSeek(search, ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	h.mu.RLock()
	b, ok := h.buckets[h.prefix(ukey)]
	h.mu.RUnlock()
	if !ok {
		return kv.Entry{}, false
	}
	return b.GetSeek(search, ukey, snap)
}

// NewIterator implements Memtable. Iteration k-way merges the per-bucket
// skiplists — correct but deliberately expensive, mirroring the real
// tradeoff of hashed memtables.
func (h *HashSkipList) NewIterator() kv.Iterator {
	h.mu.RLock()
	iters := make([]kv.Iterator, 0, len(h.buckets))
	for _, b := range h.buckets {
		iters = append(iters, b.NewIterator())
	}
	h.mu.RUnlock()
	return kv.NewMergingIterator(iters...)
}

// ApproximateBytes implements Memtable.
func (h *HashSkipList) ApproximateBytes() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// Len implements Memtable.
func (h *HashSkipList) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// ---------------------------------------------------------------------
// Hash-linkedlist

// hashEntry is one version in a per-key list, newest first.
type hashEntry struct {
	entry kv.Entry
	next  *hashEntry
}

// HashLinkList keeps an unsorted per-user-key version list in a hash
// map (RocksDB's hash_linkedlist): O(1) point reads and writes, but
// ordered iteration collects and sorts the whole buffer.
type HashLinkList struct {
	mu    sync.RWMutex
	table map[uint64]*hashEntry // keyed by hash of user key; collisions chained by key compare
	bytes int
	count int
}

// NewHashLinkList returns an empty hash-linkedlist memtable.
func NewHashLinkList() *HashLinkList {
	return &HashLinkList{table: make(map[uint64]*hashEntry)}
}

// Add implements Memtable.
func (h *HashLinkList) Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte) {
	e := kv.Entry{Key: kv.MakeKey(ukey, seq, kind), Value: append([]byte(nil), value...)}
	hk := bloom.Hash64(ukey)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.table[hk] = &hashEntry{entry: e, next: h.table[hk]}
	h.bytes += sizeOf(ukey, value)
	h.count++
}

// GetSeek implements Memtable. The hashed structure has no use for the
// prebuilt search key; the probe is allocation-free either way.
func (h *HashLinkList) GetSeek(_, ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	return h.Get(ukey, snap)
}

// Get implements Memtable. The chain is in arrival order, which for a
// live engine matches sequence order, but Get does not rely on that: it
// scans the whole chain for the highest visible sequence number.
func (h *HashLinkList) Get(ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	hk := bloom.Hash64(ukey)
	h.mu.RLock()
	defer h.mu.RUnlock()
	var best *hashEntry
	for n := h.table[hk]; n != nil; n = n.next {
		if kv.CompareUser(n.entry.UserKey(), ukey) != 0 {
			continue // hash collision
		}
		if kv.Visible(n.entry.Seq(), snap) && (best == nil || n.entry.Seq() > best.entry.Seq()) {
			best = n
		}
	}
	if best == nil {
		return kv.Entry{}, false
	}
	return best.entry, true
}

// NewIterator implements Memtable by materializing and sorting every
// entry — the full cost of ordered access on a hashed structure.
func (h *HashLinkList) NewIterator() kv.Iterator {
	h.mu.RLock()
	entries := make([]kv.Entry, 0, h.count)
	for _, head := range h.table {
		for n := head; n != nil; n = n.next {
			entries = append(entries, n.entry)
		}
	}
	h.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		return kv.Compare(entries[i].Key, entries[j].Key) < 0
	})
	return kv.NewSliceIterator(entries)
}

// ApproximateBytes implements Memtable.
func (h *HashLinkList) ApproximateBytes() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// Len implements Memtable.
func (h *HashLinkList) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}
