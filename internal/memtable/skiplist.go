package memtable

import (
	"math/rand"
	"sync"

	"lsmlab/internal/kv"
)

const (
	skipMaxHeight = 12
	// skipBranching gives P(level k+1 | level k) = 1/4.
	skipBranching = 4
)

// skipNode is one tower in the skiplist. Nodes are never removed, which
// keeps iteration safe under the structure's read lock.
type skipNode struct {
	entry kv.Entry
	next  []*skipNode
}

// SkipList is the classic LSM write buffer: a concurrent skiplist
// ordered by internal key.
type SkipList struct {
	mu     sync.RWMutex
	head   *skipNode
	height int
	bytes  int
	count  int
	// prev is the search-path scratch for Add, reused across calls;
	// it is only touched while mu is write-held.
	prev [skipMaxHeight]*skipNode
}

// NewSkipList returns an empty skiplist memtable.
func NewSkipList() *SkipList {
	return &SkipList{
		head:   &skipNode{next: make([]*skipNode, skipMaxHeight)},
		height: 1,
	}
}

// randomHeight draws a tower height with P(k+1 | k) = 1/skipBranching
// from the global math/rand source (lock-free per-thread state), so
// concurrent Adds can size their towers before taking the list lock.
func randomHeight() int {
	u := rand.Uint32()
	h := 1
	for h < skipMaxHeight && u&(skipBranching-1) == 0 {
		h++
		u >>= 2
	}
	return h
}

// findGE returns the first node with key >= ikey, filling prev with the
// rightmost node before it at every height (when prev != nil).
func (s *SkipList) findGE(ikey []byte, prev []*skipNode) *skipNode {
	x := s.head
	level := s.height - 1
	for {
		next := x.next[level]
		if next != nil && kv.Compare(next.entry.Key, ikey) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Add implements Memtable.
//
// Everything that can be done without the lock — key encoding, the
// value copy, the height draw, and the node allocation — happens
// before it, so concurrent writers (the commit pipeline's group
// members) only serialize on the search-and-splice itself.
func (s *SkipList) Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte) {
	e := kv.Entry{Key: kv.MakeKey(ukey, seq, kind), Value: append([]byte(nil), value...)}
	h := randomHeight()
	n := &skipNode{entry: e, next: make([]*skipNode, h)}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.findGE(e.Key, s.prev[:])
	if h > s.height {
		for i := s.height; i < h; i++ {
			s.prev[i] = s.head
		}
		s.height = h
	}
	for i := 0; i < h; i++ {
		n.next[i] = s.prev[i].next[i]
		s.prev[i].next[i] = n
	}
	s.bytes += sizeOf(ukey, value)
	s.count++
}

// Get implements Memtable.
func (s *SkipList) Get(ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	return s.GetSeek(kv.MakeSearchKey(ukey, snap), ukey, snap)
}

// GetSeek implements Memtable.
func (s *SkipList) GetSeek(search, ukey []byte, _ kv.SeqNum) (kv.Entry, bool) {
	s.mu.RLock()
	n := s.findGE(search, nil)
	if n == nil || kv.CompareUser(n.entry.UserKey(), ukey) != 0 {
		s.mu.RUnlock()
		return kv.Entry{}, false
	}
	e := n.entry
	s.mu.RUnlock()
	return e, true
}

// NewIterator implements Memtable.
func (s *SkipList) NewIterator() kv.Iterator {
	return &lockedIterator{mu: &s.mu, it: &skipIterator{list: s}}
}

// ApproximateBytes implements Memtable.
func (s *SkipList) ApproximateBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Len implements Memtable.
func (s *SkipList) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// skipIterator walks level-0 links. The enclosing lockedIterator holds
// the list's read lock during positioning, and nodes are never removed,
// so a held node pointer stays valid between calls.
type skipIterator struct {
	list *SkipList
	node *skipNode
}

func (it *skipIterator) First() bool {
	it.node = it.list.head.next[0]
	return it.node != nil
}

func (it *skipIterator) SeekGE(ikey []byte) bool {
	it.node = it.list.findGE(ikey, nil)
	return it.node != nil
}

func (it *skipIterator) Next() bool {
	if it.node != nil {
		it.node = it.node.next[0]
	}
	return it.node != nil
}

func (it *skipIterator) Valid() bool   { return it.node != nil }
func (it *skipIterator) Key() []byte   { return it.node.entry.Key }
func (it *skipIterator) Value() []byte { return it.node.entry.Value }
func (it *skipIterator) Close() error  { return nil }
