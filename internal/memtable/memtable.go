// Package memtable provides the in-memory write buffer of the LSM
// engine in the four implementations RocksDB exposes (tutorial §2.2.1):
// skiplist, vector, hash-skiplist, and hash-linkedlist.
//
// Each implementation trades write cost against read and scan cost
// differently:
//
//   - skiplist: O(log n) writes and reads, cheap ordered iteration; the
//     balanced default for mixed workloads.
//   - vector: O(1) amortized appends — the fastest pure-ingest buffer —
//     but every read after a write must re-sort the whole buffer, so
//     interleaved reads are disastrous.
//   - hash-skiplist: O(1) bucket lookup plus a small ordered skiplist per
//     key prefix; point reads are fast, full scans must merge buckets.
//   - hash-linkedlist: O(1) point reads via per-key version lists; full
//     scans must collect and sort everything.
//
// All implementations are safe for concurrent use.
package memtable

import (
	"sync"

	"lsmlab/internal/kv"
)

// entryOverhead approximates the per-entry bookkeeping bytes charged to
// the buffer's memory budget (pointers, trailer, slice headers).
const entryOverhead = 40

// Memtable is a mutable in-memory buffer of versioned entries.
type Memtable interface {
	// Add inserts an entry. The key and value are copied.
	Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte)
	// Get returns the newest entry for ukey visible at snapshot snap.
	// The returned entry may be a tombstone; ok is false only if no
	// visible version exists in this buffer.
	Get(ukey []byte, snap kv.SeqNum) (e kv.Entry, ok bool)
	// GetSeek is Get with a caller-built search key (the result of
	// kv.MakeSearchKey(ukey, snap), possibly appended into a reused
	// buffer). The engine's read path builds the search key once per
	// lookup and probes every buffer and run with it, so the probe
	// chain allocates nothing.
	GetSeek(search, ukey []byte, snap kv.SeqNum) (e kv.Entry, ok bool)
	// NewIterator returns an iterator over the buffer in internal-key
	// order. The iterator observes a consistent view: entries added
	// after its creation may or may not be surfaced.
	NewIterator() kv.Iterator
	// ApproximateBytes returns the buffer's memory footprint estimate,
	// compared against the configured buffer size to trigger flushes.
	ApproximateBytes() int
	// Len returns the number of entries (versions) in the buffer.
	Len() int
}

// Kind selects a memtable implementation by name; used by the engine
// options and the lsmbench workload driver.
type Kind string

// The memtable implementations of tutorial §2.2.1.
const (
	KindSkipList     Kind = "skiplist"
	KindVector       Kind = "vector"
	KindHashSkipList Kind = "hash-skiplist"
	KindHashLinkList Kind = "hash-linklist"
)

// New constructs an empty memtable of the given kind. Unknown kinds
// fall back to skiplist, the engine default.
func New(kind Kind) Memtable {
	switch kind {
	case KindVector:
		return NewVector()
	case KindHashSkipList:
		return NewHashSkipList(4)
	case KindHashLinkList:
		return NewHashLinkList()
	default:
		return NewSkipList()
	}
}

// ---------------------------------------------------------------------
// Shared helpers

// sizeOf charges an entry against the memory budget.
func sizeOf(ukey, value []byte) int {
	return len(ukey) + kv.TrailerLen + len(value) + entryOverhead
}

// lockedIterator wraps an iterator with a mutex shared with its source
// structure so that concurrent Adds cannot race with Next. The lock is
// held only for the duration of each positioning call.
type lockedIterator struct {
	mu *sync.RWMutex
	it kv.Iterator
}

func (l *lockedIterator) First() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.it.First()
}

func (l *lockedIterator) SeekGE(ikey []byte) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.it.SeekGE(ikey)
}

func (l *lockedIterator) Next() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.it.Next()
}

func (l *lockedIterator) Valid() bool   { return l.it.Valid() }
func (l *lockedIterator) Key() []byte   { return l.it.Key() }
func (l *lockedIterator) Value() []byte { return l.it.Value() }
func (l *lockedIterator) Close() error  { return l.it.Close() }
