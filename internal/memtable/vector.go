package memtable

import (
	"sort"
	"sync"

	"lsmlab/internal/kv"
)

// Vector is the append-only memtable: writes are O(1) appends, making it
// the fastest buffer for write-only workloads, but any read forces a
// sort of the unsorted tail. RocksDB offers the same tradeoff with its
// vector memtable, intended for bulk loading (tutorial §2.2.1).
type Vector struct {
	mu      sync.RWMutex
	entries []kv.Entry
	sorted  bool
	bytes   int
}

// NewVector returns an empty vector memtable.
func NewVector() *Vector { return &Vector{sorted: true} }

// Add implements Memtable.
func (v *Vector) Add(seq kv.SeqNum, kind kv.Kind, ukey, value []byte) {
	e := kv.Entry{Key: kv.MakeKey(ukey, seq, kind), Value: append([]byte(nil), value...)}
	v.mu.Lock()
	defer v.mu.Unlock()
	// Appending in arrival order keeps writes O(1); sortedness is only
	// preserved if the caller happens to insert in order.
	if v.sorted && len(v.entries) > 0 &&
		kv.Compare(v.entries[len(v.entries)-1].Key, e.Key) > 0 {
		v.sorted = false
	}
	v.entries = append(v.entries, e)
	v.bytes += sizeOf(ukey, value)
}

// ensureSorted sorts the buffer if needed. Callers must hold the write
// lock.
func (v *Vector) ensureSorted() {
	if !v.sorted {
		sort.Slice(v.entries, func(i, j int) bool {
			return kv.Compare(v.entries[i].Key, v.entries[j].Key) < 0
		})
		v.sorted = true
	}
}

// Get implements Memtable. Note the full re-sort on first read after any
// write — this is the vector memtable's documented weakness under
// interleaved reads.
func (v *Vector) Get(ukey []byte, snap kv.SeqNum) (kv.Entry, bool) {
	return v.GetSeek(kv.MakeSearchKey(ukey, snap), ukey, snap)
}

// GetSeek implements Memtable.
func (v *Vector) GetSeek(search, ukey []byte, _ kv.SeqNum) (kv.Entry, bool) {
	v.mu.Lock()
	v.ensureSorted()
	v.mu.Unlock()

	v.mu.RLock()
	defer v.mu.RUnlock()
	i := sort.Search(len(v.entries), func(i int) bool {
		return kv.Compare(v.entries[i].Key, search) >= 0
	})
	if i >= len(v.entries) || kv.CompareUser(v.entries[i].UserKey(), ukey) != 0 {
		return kv.Entry{}, false
	}
	return v.entries[i], true
}

// NewIterator implements Memtable. The iterator operates on a snapshot
// of the slice header taken after sorting; later appends do not disturb
// it because appends never reorder the prefix once sorted state is
// re-established at the next read.
func (v *Vector) NewIterator() kv.Iterator {
	v.mu.Lock()
	v.ensureSorted()
	snapshot := v.entries[:len(v.entries):len(v.entries)]
	v.mu.Unlock()
	return kv.NewSliceIterator(snapshot)
}

// ApproximateBytes implements Memtable.
func (v *Vector) ApproximateBytes() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.bytes
}

// Len implements Memtable.
func (v *Vector) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.entries)
}
