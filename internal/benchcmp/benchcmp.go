// Package benchcmp compares two machine-readable lsmbench result files
// (the committed BENCH_*.json perf trajectory) metric by metric, with
// direction-aware noise thresholds: a throughput drop or a latency-tail
// rise beyond tolerance is a hard regression, everything else is
// reported informationally. It is the engine behind `lsmbench -compare`
// and the CI bench-trajectory gate.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// File is one trajectory snapshot: named result sections, each a flat
// map of numeric metrics. Plain single-result files (a bare `lsmbench
// -json` object) load as one section named "result".
type File struct {
	Schema   int               `json:"schema"`
	Workload string            `json:"workload,omitempty"`
	Results  map[string]Result `json:"results"`
}

// Result is one benchmark section, flattened to its numeric fields.
// Booleans load as 0/1; strings are dropped (they describe the
// workload, not its performance).
type Result map[string]float64

// Load reads a BENCH_*.json file in either the trajectory format
// ({"schema":1,"results":{...}}) or the bare single-result format.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f := &File{Results: make(map[string]Result)}
	if sections, ok := raw["results"]; ok {
		var named map[string]map[string]any
		if err := json.Unmarshal(sections, &named); err != nil {
			return nil, fmt.Errorf("%s: results: %w", path, err)
		}
		if schema, ok := raw["schema"]; ok {
			json.Unmarshal(schema, &f.Schema)
		}
		if wl, ok := raw["workload"]; ok {
			json.Unmarshal(wl, &f.Workload)
		}
		for name, fields := range named {
			f.Results[name] = flatten(fields)
		}
		return f, nil
	}
	var fields map[string]any
	if err := json.Unmarshal(data, &fields); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.Results["result"] = flatten(fields)
	return f, nil
}

func flatten(fields map[string]any) Result {
	r := make(Result, len(fields))
	for k, v := range fields {
		switch t := v.(type) {
		case float64:
			r[k] = t
		case bool:
			if t {
				r[k] = 1
			}
		}
	}
	return r
}

// Direction states which way a metric is allowed to move.
type Direction int

// The comparison directions.
const (
	// Info metrics are shown but never gate.
	Info Direction = iota
	// HigherBetter fails when the new value drops beyond tolerance.
	HigherBetter
	// LowerBetter fails when the new value rises beyond tolerance.
	LowerBetter
)

// Rule gates one metric. RelTol is the allowed relative movement in the
// bad direction (0.10 = 10%); AbsSlack is an absolute allowance added on
// top, so near-zero baselines (allocs/op after a zero-alloc fix) don't
// fail on measurement dust.
type Rule struct {
	Metric   string
	Dir      Direction
	RelTol   float64
	AbsSlack float64
}

// DefaultRules is the gate: throughput may not drop more than 10%, the
// p99 tail may not rise more than 20% (p999 30%, p50 25% — deeper tails
// are noisier), allocations per op may not grow more than 25% (+0.5
// absolute), and write amplification may not grow more than 50%. Every
// other shared metric is informational.
//
// The absolute slacks are calibrated against the measured run-to-run
// variance of the pinned workload on identical code: sync'd-put p99
// swings by a few microseconds with goroutine scheduling, and write
// amplification by ~40% with where background compaction happens to
// stand when the run ends. The relative tolerances still catch order-
// of-magnitude regressions; the slack absorbs scheduler dust on
// near-memory-speed baselines.
func DefaultRules() []Rule {
	return []Rule{
		{Metric: "ops_per_sec", Dir: HigherBetter, RelTol: 0.10},
		{Metric: "p50_ns", Dir: LowerBetter, RelTol: 0.25, AbsSlack: 300},
		{Metric: "p99_ns", Dir: LowerBetter, RelTol: 0.20, AbsSlack: 3000},
		// p999 of a 100k-op section is the ~100th-worst op: it measures
		// GC and compaction-stall luck and swings 3x on identical code,
		// so only ms-scale tail explosions (lock convoys, stalls) gate.
		{Metric: "p999_ns", Dir: LowerBetter, RelTol: 0.50, AbsSlack: 200000},
		{Metric: "allocs_per_op", Dir: LowerBetter, RelTol: 0.25, AbsSlack: 0.5},
		{Metric: "write_amplification", Dir: LowerBetter, RelTol: 0.50, AbsSlack: 0.05},
	}
}

// Options configures a comparison.
type Options struct {
	// Scale multiplies every rule's tolerances; CI passes 2 so shared
	// runners don't flake on scheduler noise. 0 means 1.
	Scale float64
	// Rules overrides DefaultRules when non-nil.
	Rules []Rule
}

// Status classifies one metric delta.
type Status int

// The comparison outcomes, ordered by severity for sorting.
const (
	StatusOK Status = iota
	StatusBetter
	StatusInfo
	StatusFail
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBetter:
		return "better"
	case StatusFail:
		return "FAIL"
	default:
		return "info"
	}
}

// Row is one compared metric.
type Row struct {
	Section string
	Metric  string
	Old     float64
	New     float64
	// DeltaPct is the relative movement in percent ((new-old)/old); NaN
	// when the old value is zero.
	DeltaPct float64
	Status   Status
	Note     string
}

// Report is the outcome of comparing two files.
type Report struct {
	Rows []Row
	// Failures counts hard regressions (and structural losses: a gated
	// section or metric that vanished).
	Failures int
}

// Failed reports whether any gate tripped.
func (r *Report) Failed() bool { return r.Failures > 0 }

// Compare evaluates new against old section by section. Sections
// present in old but missing in new count as failures — a trajectory
// that silently drops coverage is a regression of the harness itself.
// Sections only present in new are reported informationally.
func Compare(oldF, newF *File, opts Options) *Report {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	rules := opts.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	ruleFor := make(map[string]Rule, len(rules))
	for _, r := range rules {
		ruleFor[r.Metric] = r
	}

	rep := &Report{}
	for _, section := range sortedKeys(oldF.Results) {
		oldR := oldF.Results[section]
		newR, ok := newF.Results[section]
		if !ok {
			rep.Rows = append(rep.Rows, Row{
				Section: section, Metric: "(section)", Status: StatusFail,
				Note: "section missing from new file",
			})
			rep.Failures++
			continue
		}
		for _, metric := range sortedMetrics(oldR, ruleFor) {
			oldV := oldR[metric]
			newV, have := newR[metric]
			rule, gated := ruleFor[metric]
			if !have {
				if gated {
					rep.Rows = append(rep.Rows, Row{
						Section: section, Metric: metric, Old: oldV,
						Status: StatusFail, Note: "gated metric missing from new file",
					})
					rep.Failures++
				}
				continue
			}
			row := Row{Section: section, Metric: metric, Old: oldV, New: newV}
			if oldV != 0 {
				row.DeltaPct = (newV - oldV) / math.Abs(oldV) * 100
			} else {
				row.DeltaPct = math.NaN()
			}
			if !gated || rule.Dir == Info {
				row.Status = StatusInfo
			} else {
				row.Status, row.Note = judge(oldV, newV, rule, scale)
				if row.Status == StatusFail {
					rep.Failures++
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	for _, section := range sortedKeys(newF.Results) {
		if _, ok := oldF.Results[section]; !ok {
			rep.Rows = append(rep.Rows, Row{
				Section: section, Metric: "(section)", Status: StatusInfo,
				Note: "new section (no baseline)",
			})
		}
	}
	return rep
}

// judge applies one rule: the allowed bad-direction movement is
// old*RelTol*scale + AbsSlack*scale.
func judge(oldV, newV float64, rule Rule, scale float64) (Status, string) {
	allow := math.Abs(oldV)*rule.RelTol*scale + rule.AbsSlack*scale
	switch rule.Dir {
	case HigherBetter:
		if newV < oldV-allow {
			return StatusFail, fmt.Sprintf("dropped beyond -%.0f%% tolerance", rule.RelTol*scale*100)
		}
		if newV > oldV+allow {
			return StatusBetter, ""
		}
	case LowerBetter:
		if newV > oldV+allow {
			return StatusFail, fmt.Sprintf("rose beyond +%.0f%% tolerance", rule.RelTol*scale*100)
		}
		if newV < oldV-allow {
			return StatusBetter, ""
		}
	}
	return StatusOK, ""
}

// WriteTable renders the report; markdown true emits a GitHub-flavored
// table, false an aligned plain-text one.
func (r *Report) WriteTable(w io.Writer, markdown bool) {
	if markdown {
		fmt.Fprintln(w, "| section | metric | old | new | delta | status |")
		fmt.Fprintln(w, "|---|---|---:|---:|---:|---|")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
				row.Section, row.Metric, fmtVal(row.Old), fmtVal(row.New),
				fmtDelta(row.DeltaPct), statusNote(row))
		}
	} else {
		fmt.Fprintf(w, "%-14s %-26s %14s %14s %9s  %s\n",
			"section", "metric", "old", "new", "delta", "status")
		for _, row := range r.Rows {
			fmt.Fprintf(w, "%-14s %-26s %14s %14s %9s  %s\n",
				row.Section, row.Metric, fmtVal(row.Old), fmtVal(row.New),
				fmtDelta(row.DeltaPct), statusNote(row))
		}
	}
	if r.Failures > 0 {
		fmt.Fprintf(w, "\n%d hard regression(s)\n", r.Failures)
	} else {
		fmt.Fprintln(w, "\nno hard regressions")
	}
}

func statusNote(row Row) string {
	if row.Note != "" {
		return row.Status.String() + " (" + row.Note + ")"
	}
	return row.Status.String()
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func fmtDelta(pct float64) string {
	if math.IsNaN(pct) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedMetrics orders a section's metrics gated-first (in severity of
// interest), then the rest alphabetically.
func sortedMetrics(r Result, ruleFor map[string]Rule) []string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		_, gi := ruleFor[keys[i]]
		_, gj := ruleFor[keys[j]]
		if gi != gj {
			return gi
		}
		return keys[i] < keys[j]
	})
	return keys
}

// CompareFiles is the one-call form used by lsmbench -compare: load
// both paths, compare, render to w, and report failure.
func CompareFiles(oldPath, newPath string, opts Options, w io.Writer, markdown bool) (bool, error) {
	oldF, err := Load(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := Load(newPath)
	if err != nil {
		return false, err
	}
	if oldF.Workload != "" || newF.Workload != "" {
		fmt.Fprintf(w, "old: %s\nnew: %s\n\n", describe(oldPath, oldF), describe(newPath, newF))
	}
	rep := Compare(oldF, newF, opts)
	rep.WriteTable(w, markdown)
	return rep.Failed(), nil
}

func describe(path string, f *File) string {
	if f.Workload == "" {
		return path
	}
	return path + " (" + f.Workload + ")"
}
