package benchcmp

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTrajectoryFormat(t *testing.T) {
	path := writeFile(t, "b.json", `{
		"schema": 1,
		"workload": "pinned-v1",
		"results": {
			"get_uniform": {"ops_per_sec": 100000, "p99_ns": 2500, "warm_cache": true, "dist": "uniform"}
		}
	}`)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != 1 || f.Workload != "pinned-v1" {
		t.Fatalf("header not parsed: %+v", f)
	}
	r := f.Results["get_uniform"]
	if r["ops_per_sec"] != 100000 || r["p99_ns"] != 2500 {
		t.Fatalf("numeric fields not parsed: %v", r)
	}
	if r["warm_cache"] != 1 {
		t.Fatalf("bool should flatten to 1, got %v", r["warm_cache"])
	}
	if _, ok := r["dist"]; ok {
		t.Fatal("string fields must be dropped")
	}
}

func TestLoadBareResult(t *testing.T) {
	path := writeFile(t, "bare.json", `{"mode": "writers", "ops_per_sec": 5000, "p99_ns": 100}`)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Results["result"]["ops_per_sec"] != 5000 {
		t.Fatalf("bare file should load as section %q: %v", "result", f.Results)
	}
}

func mkFile(sections map[string]Result) *File {
	return &File{Schema: 1, Results: sections}
}

func TestCompareDirections(t *testing.T) {
	cases := []struct {
		name       string
		metric     string
		oldV, newV float64
		want       Status
	}{
		{"throughput drop fails", "ops_per_sec", 100000, 80000, StatusFail},
		{"throughput within noise ok", "ops_per_sec", 100000, 95000, StatusOK},
		{"throughput gain is better", "ops_per_sec", 100000, 150000, StatusBetter},
		{"p99 rise fails", "p99_ns", 100000, 140000, StatusFail},
		{"p99 within noise ok", "p99_ns", 100000, 110000, StatusOK},
		{"p99 rise within abs slack ok", "p99_ns", 1000, 3500, StatusOK},
		{"p99 improvement is better", "p99_ns", 100000, 50000, StatusBetter},
		{"allocs regression fails", "allocs_per_op", 2, 8, StatusFail},
		{"allocs zero stays ok within slack", "allocs_per_op", 0, 0.2, StatusOK},
		{"untracked metric is info", "block_reads", 10, 99999, StatusInfo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldF := mkFile(map[string]Result{"s": {tc.metric: tc.oldV}})
			newF := mkFile(map[string]Result{"s": {tc.metric: tc.newV}})
			rep := Compare(oldF, newF, Options{})
			if len(rep.Rows) != 1 {
				t.Fatalf("want 1 row, got %d", len(rep.Rows))
			}
			if rep.Rows[0].Status != tc.want {
				t.Fatalf("%s %v -> %v: got %v, want %v",
					tc.metric, tc.oldV, tc.newV, rep.Rows[0].Status, tc.want)
			}
			if (tc.want == StatusFail) != rep.Failed() {
				t.Fatalf("Failed()=%v inconsistent with status %v", rep.Failed(), tc.want)
			}
		})
	}
}

func TestCompareScaleLoosensGate(t *testing.T) {
	oldF := mkFile(map[string]Result{"s": {"ops_per_sec": 100000}})
	newF := mkFile(map[string]Result{"s": {"ops_per_sec": 85000}}) // -15%
	if !Compare(oldF, newF, Options{}).Failed() {
		t.Fatal("15% drop must fail at scale 1 (10% tolerance)")
	}
	if Compare(oldF, newF, Options{Scale: 2}).Failed() {
		t.Fatal("15% drop must pass at scale 2 (20% tolerance)")
	}
}

func TestCompareMissingSectionFails(t *testing.T) {
	oldF := mkFile(map[string]Result{"get_uniform": {"ops_per_sec": 1}, "put": {"ops_per_sec": 1}})
	newF := mkFile(map[string]Result{"put": {"ops_per_sec": 1}})
	rep := Compare(oldF, newF, Options{})
	if !rep.Failed() {
		t.Fatal("dropping a baseline section must fail")
	}
}

func TestCompareMissingGatedMetricFails(t *testing.T) {
	oldF := mkFile(map[string]Result{"s": {"p99_ns": 100, "block_reads": 5}})
	newF := mkFile(map[string]Result{"s": {"block_reads": 7}})
	rep := Compare(oldF, newF, Options{})
	if !rep.Failed() {
		t.Fatal("losing a gated metric must fail")
	}
	// The non-gated metric must not fail, only inform.
	for _, row := range rep.Rows {
		if row.Metric == "block_reads" && row.Status != StatusInfo {
			t.Fatalf("block_reads should be info, got %v", row.Status)
		}
	}
}

func TestCompareNewSectionIsInfo(t *testing.T) {
	oldF := mkFile(map[string]Result{"s": {"p99_ns": 100}})
	newF := mkFile(map[string]Result{"s": {"p99_ns": 100}, "extra": {"p99_ns": 1}})
	rep := Compare(oldF, newF, Options{})
	if rep.Failed() {
		t.Fatal("a new section must not fail the gate")
	}
}

func TestWriteTableRendersBothForms(t *testing.T) {
	oldF := mkFile(map[string]Result{"s": {"ops_per_sec": 100, "p99_ns": 10}})
	newF := mkFile(map[string]Result{"s": {"ops_per_sec": 50, "p99_ns": 10}})
	rep := Compare(oldF, newF, Options{})

	var plain bytes.Buffer
	rep.WriteTable(&plain, false)
	if !strings.Contains(plain.String(), "FAIL") || !strings.Contains(plain.String(), "1 hard regression") {
		t.Fatalf("plain table missing failure: %s", plain.String())
	}

	var md bytes.Buffer
	rep.WriteTable(&md, true)
	if !strings.Contains(md.String(), "| section | metric |") {
		t.Fatalf("markdown header missing: %s", md.String())
	}
}

func TestCompareFilesEndToEnd(t *testing.T) {
	oldP := writeFile(t, "old.json", `{"schema":1,"results":{"s":{"ops_per_sec":1000,"p99_ns":100}}}`)
	newP := writeFile(t, "new.json", `{"schema":1,"results":{"s":{"ops_per_sec":1200,"p99_ns":90}}}`)
	var out bytes.Buffer
	failed, err := CompareFiles(oldP, newP, Options{}, &out, false)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("improvement flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no hard regressions") {
		t.Fatalf("summary line missing:\n%s", out.String())
	}
}

func TestDeltaPctNaNOnZeroBaseline(t *testing.T) {
	oldF := mkFile(map[string]Result{"s": {"block_reads": 0}})
	newF := mkFile(map[string]Result{"s": {"block_reads": 5}})
	rep := Compare(oldF, newF, Options{})
	if !math.IsNaN(rep.Rows[0].DeltaPct) {
		t.Fatalf("delta over zero baseline should be NaN, got %v", rep.Rows[0].DeltaPct)
	}
}
