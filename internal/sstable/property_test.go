package sstable

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// TestPropertyBlockRoundtrip: any set of entries written to a block
// comes back identically, in order, via iteration and seek.
func TestPropertyBlockRoundtrip(t *testing.T) {
	f := func(rawKeys [][]byte, rawVals [][]byte) bool {
		// Construct sorted unique internal keys from the fuzz input.
		seen := map[string]bool{}
		var entries []kv.Entry
		for i, rk := range rawKeys {
			if len(rk) > 64 {
				rk = rk[:64]
			}
			if seen[string(rk)] {
				continue
			}
			seen[string(rk)] = true
			var val []byte
			if i < len(rawVals) {
				val = rawVals[i]
			}
			entries = append(entries, kv.Entry{
				Key:   kv.MakeKey(rk, kv.SeqNum(i+1), kv.KindSet),
				Value: val,
			})
		}
		if len(entries) == 0 {
			return true
		}
		sort.Slice(entries, func(i, j int) bool {
			return kv.Compare(entries[i].Key, entries[j].Key) < 0
		})

		var b blockBuilder
		for _, e := range entries {
			b.add(e.Key, e.Value)
		}
		blk, err := decodeBlock(append([]byte(nil), b.finish()...))
		if err != nil {
			return false
		}
		it := newBlockIterator(blk)
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if kv.Compare(it.Key(), entries[i].Key) != 0 ||
				!bytes.Equal(it.Value(), entries[i].Value) {
				return false
			}
			i++
		}
		if i != len(entries) {
			return false
		}
		// SeekGE to each key must land on it.
		for _, e := range entries {
			if !it.SeekGE(e.Key) || kv.Compare(it.Key(), e.Key) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTableRoundtrip: the full writer/reader stack preserves
// arbitrary sorted entry sets (with a small block size so multi-block
// paths are exercised).
func TestPropertyTableRoundtrip(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 300 {
			seeds = seeds[:300]
		}
		uniq := map[uint16]bool{}
		var entries []kv.Entry
		for i, s := range seeds {
			if uniq[s] {
				continue
			}
			uniq[s] = true
			k := []byte{byte(s >> 8), byte(s), byte(i)}
			entries = append(entries, kv.Entry{
				Key:   kv.MakeKey(k, kv.SeqNum(i+1), kv.KindSet),
				Value: bytes.Repeat([]byte{byte(i)}, int(s)%200),
			})
		}
		sort.Slice(entries, func(i, j int) bool {
			return kv.Compare(entries[i].Key, entries[j].Key) < 0
		})

		fs := vfs.NewMem()
		file, _ := fs.Create("t")
		w := NewWriter(file, WriterOptions{BlockSize: 256, BitsPerKey: 8})
		for _, e := range entries {
			if err := w.Add(e.Key, e.Value); err != nil {
				return false
			}
		}
		if _, err := w.Finish(); err != nil {
			return false
		}
		file.Close()

		rf, _ := fs.Open("t")
		r, err := Open(rf, ReaderOptions{})
		if err != nil {
			return false
		}
		defer r.Close()
		it := r.NewIterator()
		defer it.Close()
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if kv.Compare(it.Key(), entries[i].Key) != 0 ||
				!bytes.Equal(it.Value(), entries[i].Value) {
				return false
			}
			i++
		}
		return i == len(entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPropertiesRoundtrip: Properties encode/decode is the
// identity for arbitrary field values.
func TestPropertyPropertiesRoundtrip(t *testing.T) {
	f := func(a, b, c, d, e, g uint64, sseq, lseq uint64, ts int64, smallest, largest []byte) bool {
		p := Properties{
			NumEntries: a, NumTombstones: b, NumRangeDels: c,
			RawKeyBytes: d, RawValueBytes: e, NumDataBlocks: g,
			SmallestSeq:       kv.SeqNum(sseq & uint64(kv.MaxSeqNum)),
			LargestSeq:        kv.SeqNum(lseq & uint64(kv.MaxSeqNum)),
			OldestTombstoneNs: ts,
			Smallest:          smallest, Largest: largest,
		}
		q, err := decodeProperties(p.encode())
		if err != nil {
			return false
		}
		return q.NumEntries == p.NumEntries && q.NumTombstones == p.NumTombstones &&
			q.NumRangeDels == p.NumRangeDels && q.RawKeyBytes == p.RawKeyBytes &&
			q.RawValueBytes == p.RawValueBytes && q.NumDataBlocks == p.NumDataBlocks &&
			q.SmallestSeq == p.SmallestSeq && q.LargestSeq == p.LargestSeq &&
			q.OldestTombstoneNs == p.OldestTombstoneNs &&
			bytes.Equal(q.Smallest, p.Smallest) && bytes.Equal(q.Largest, p.Largest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRangeTombstonesRoundtrip: rangedel block encoding is the
// identity.
func TestPropertyRangeTombstonesRoundtrip(t *testing.T) {
	f := func(starts, ends [][]byte, seqs []uint64) bool {
		n := len(starts)
		if len(ends) < n {
			n = len(ends)
		}
		if len(seqs) < n {
			n = len(seqs)
		}
		var ts []kv.RangeTombstone
		for i := 0; i < n; i++ {
			ts = append(ts, kv.RangeTombstone{
				Start: starts[i], End: ends[i],
				Seq: kv.SeqNum(seqs[i] & uint64(kv.MaxSeqNum)),
			})
		}
		got, err := decodeRangeTombstones(encodeRangeTombstones(ts))
		if err != nil {
			return false
		}
		if len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if !bytes.Equal(got[i].Start, ts[i].Start) ||
				!bytes.Equal(got[i].End, ts[i].End) || got[i].Seq != ts[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
