package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"lsmlab/internal/bloom"
	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// footerLen is the fixed size of the table footer: five block handles
// (offset+length pairs) plus an 8-byte magic number.
const footerLen = 5*16 + 8

// tableMagic identifies lsmlab tables.
const tableMagic = 0x6c736d6c61620001 // "lsmlab" v1

// blockHandle locates a block within the file.
type blockHandle struct {
	offset uint64
	length uint64 // excluding nothing: full serialized block including CRC
}

// Properties summarizes a finished table. They are persisted in the
// properties block and drive compaction picking (tombstone density,
// entry counts) and the FADE delete-persistence trigger (oldest
// tombstone age).
type Properties struct {
	NumEntries        uint64
	NumTombstones     uint64 // point tombstones (delete + single-delete)
	NumRangeDels      uint64
	RawKeyBytes       uint64
	RawValueBytes     uint64
	NumDataBlocks     uint64
	SmallestSeq       kv.SeqNum
	LargestSeq        kv.SeqNum
	OldestTombstoneNs int64  // unix nanos of the oldest tombstone; 0 if none
	Smallest          []byte // smallest user key
	Largest           []byte // largest user key
}

// TombstoneDensity is the fraction of entries that are tombstones.
func (p Properties) TombstoneDensity() float64 {
	if p.NumEntries == 0 {
		return 0
	}
	return float64(p.NumTombstones+p.NumRangeDels) / float64(p.NumEntries)
}

func (p Properties) encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, p.NumEntries)
	buf = binary.AppendUvarint(buf, p.NumTombstones)
	buf = binary.AppendUvarint(buf, p.NumRangeDels)
	buf = binary.AppendUvarint(buf, p.RawKeyBytes)
	buf = binary.AppendUvarint(buf, p.RawValueBytes)
	buf = binary.AppendUvarint(buf, p.NumDataBlocks)
	buf = binary.AppendUvarint(buf, uint64(p.SmallestSeq))
	buf = binary.AppendUvarint(buf, uint64(p.LargestSeq))
	buf = binary.AppendVarint(buf, p.OldestTombstoneNs)
	buf = binary.AppendUvarint(buf, uint64(len(p.Smallest)))
	buf = append(buf, p.Smallest...)
	buf = binary.AppendUvarint(buf, uint64(len(p.Largest)))
	buf = append(buf, p.Largest...)
	return buf
}

func decodeProperties(buf []byte) (Properties, error) {
	var p Properties
	fields := []*uint64{
		&p.NumEntries, &p.NumTombstones, &p.NumRangeDels,
		&p.RawKeyBytes, &p.RawValueBytes, &p.NumDataBlocks,
	}
	off := 0
	for _, f := range fields {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return p, fmt.Errorf("%w: properties", ErrCorrupt)
		}
		*f = v
		off += n
	}
	sseq, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return p, fmt.Errorf("%w: properties", ErrCorrupt)
	}
	off += n
	lseq, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return p, fmt.Errorf("%w: properties", ErrCorrupt)
	}
	off += n
	p.SmallestSeq, p.LargestSeq = kv.SeqNum(sseq), kv.SeqNum(lseq)
	ts, n := binary.Varint(buf[off:])
	if n <= 0 {
		return p, fmt.Errorf("%w: properties", ErrCorrupt)
	}
	p.OldestTombstoneNs = ts
	off += n
	for _, dst := range []*[]byte{&p.Smallest, &p.Largest} {
		l, n := binary.Uvarint(buf[off:])
		if n <= 0 || off+n+int(l) > len(buf) {
			return p, fmt.Errorf("%w: properties", ErrCorrupt)
		}
		off += n
		*dst = append([]byte(nil), buf[off:off+int(l)]...)
		off += int(l)
	}
	return p, nil
}

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the target data block size; DefaultBlockSize if zero.
	BlockSize int
	// BitsPerKey sizes the Bloom filter; <0.5 disables it (Monkey may
	// assign zero to deep levels).
	BitsPerKey float64
	// NowNs supplies tombstone creation timestamps (injected for
	// determinism in tests and experiments). If nil no timestamps are
	// recorded.
	NowNs func() int64
}

// Writer builds one immutable table from entries added in ascending
// internal-key order.
type Writer struct {
	f       vfs.File
	opts    WriterOptions
	data    blockBuilder
	index   blockBuilder
	offset  uint64
	hashes  []uint64 // user-key hashes for the filter
	lastUK  []byte   // last user key added to filter (avoid duplicate hashes)
	rangeTs []kv.RangeTombstone
	props   Properties
	lastKey []byte
	err     error
}

// NewWriter begins writing a table to f.
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	return &Writer{f: f, opts: opts}
}

// Add appends an entry. Keys must be strictly ascending in internal-key
// order.
func (w *Writer) Add(ikey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.lastKey != nil && kv.Compare(w.lastKey, ikey) >= 0 {
		w.err = fmt.Errorf("sstable: keys out of order: %q after %q", ikey, w.lastKey)
		return w.err
	}
	w.lastKey = append(w.lastKey[:0], ikey...)

	ukey, seq, kind, ok := kv.ParseKey(ikey)
	if !ok {
		w.err = errors.New("sstable: invalid internal key")
		return w.err
	}
	// Bookkeeping.
	w.props.NumEntries++
	w.props.RawKeyBytes += uint64(len(ikey))
	w.props.RawValueBytes += uint64(len(value))
	if w.props.NumEntries == 1 || seq < w.props.SmallestSeq {
		w.props.SmallestSeq = seq
	}
	if seq > w.props.LargestSeq {
		w.props.LargestSeq = seq
	}
	if w.props.Smallest == nil {
		w.props.Smallest = append([]byte(nil), ukey...)
	}
	w.props.Largest = append(w.props.Largest[:0], ukey...)
	if kind == kv.KindDelete || kind == kv.KindSingleDelete {
		w.props.NumTombstones++
		if w.opts.NowNs != nil && w.props.OldestTombstoneNs == 0 {
			w.props.OldestTombstoneNs = w.opts.NowNs()
		}
	}
	// Filter hashes are per distinct user key.
	if w.opts.BitsPerKey >= 0.5 && !bytesEqual(w.lastUK, ukey) {
		w.hashes = append(w.hashes, bloom.Hash64(ukey))
		w.lastUK = append(w.lastUK[:0], ukey...)
	}

	w.data.add(ikey, value)
	if w.data.estimatedSize() >= w.opts.BlockSize {
		w.flushDataBlock()
	}
	return w.err
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AddRangeTombstone records a range tombstone. Tombstones may be added
// in any order, at any point before Finish.
func (w *Writer) AddRangeTombstone(t kv.RangeTombstone) {
	if t.Empty() {
		return
	}
	w.rangeTs = append(w.rangeTs, kv.RangeTombstone{
		Start: append([]byte(nil), t.Start...),
		End:   append([]byte(nil), t.End...),
		Seq:   t.Seq,
	})
	w.props.NumRangeDels++
	if w.opts.NowNs != nil && w.props.OldestTombstoneNs == 0 {
		w.props.OldestTombstoneNs = w.opts.NowNs()
	}
	// Range bounds also extend the table's key range. The end bound is
	// exclusive: when it is of the form k+"\x00" (the boundary keys used
	// to split tombstones across output files), the largest key the
	// tombstone can cover is exactly k, so recording k keeps adjacent
	// files in a run from appearing to touch. Other end forms fall back
	// to the conservative inclusive extension.
	end := t.End
	if n := len(end); n > 0 && end[n-1] == 0 {
		end = end[:n-1]
	}
	var r kv.KeyRange
	r.Smallest, r.Largest = w.props.Smallest, w.props.Largest
	r.Extend(t.Start)
	r.Extend(end)
	w.props.Smallest, w.props.Largest = r.Smallest, r.Largest
}

// flushDataBlock writes the current data block and adds its fence
// pointer to the index.
func (w *Writer) flushDataBlock() {
	if w.data.empty() || w.err != nil {
		return
	}
	h, err := w.writeBlock(w.data.finish())
	if err != nil {
		w.err = err
		return
	}
	w.props.NumDataBlocks++
	// Fence pointer: the last key of the block maps to its handle.
	var hv [16]byte
	binary.LittleEndian.PutUint64(hv[:8], h.offset)
	binary.LittleEndian.PutUint64(hv[8:], h.length)
	w.index.add(w.data.lastKey, hv[:])
	w.data.reset()
}

func (w *Writer) writeBlock(serialized []byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(serialized))}
	n, err := w.f.Write(serialized)
	w.offset += uint64(n)
	return h, err
}

// EstimatedSize returns the bytes written so far plus the current
// in-progress block, used by compactions to split output files at the
// target size.
func (w *Writer) EstimatedSize() uint64 {
	sz := w.offset
	if !w.data.empty() {
		sz += uint64(w.data.estimatedSize())
	}
	return sz
}

// NumEntries returns the number of entries added so far.
func (w *Writer) NumEntries() uint64 { return w.props.NumEntries }

// LargestUserKey returns the largest user key among entries added so
// far (nil if none). Range tombstones added before Finish may extend
// the final properties beyond this.
func (w *Writer) LargestUserKey() []byte { return w.props.Largest }

// Finish writes the index, filter, range-del, and properties blocks and
// the footer, syncs the file, and returns the table's properties. The
// caller owns closing the file.
func (w *Writer) Finish() (Properties, error) {
	if w.err != nil {
		return Properties{}, w.err
	}
	if w.props.NumEntries == 0 && len(w.rangeTs) == 0 {
		return Properties{}, errors.New("sstable: empty table")
	}
	w.flushDataBlock()
	if w.err != nil {
		return Properties{}, w.err
	}

	indexHandle, err := w.writeBlock(w.index.finish())
	if err != nil {
		return Properties{}, err
	}

	var filterHandle blockHandle
	if filter := bloom.New(w.hashes, w.opts.BitsPerKey); len(filter) > 0 {
		if filterHandle, err = w.writeBlock(wrapRaw(filter)); err != nil {
			return Properties{}, err
		}
	}

	var rangeDelHandle blockHandle
	if len(w.rangeTs) > 0 {
		if rangeDelHandle, err = w.writeBlock(wrapRaw(encodeRangeTombstones(w.rangeTs))); err != nil {
			return Properties{}, err
		}
	}

	propsHandle, err := w.writeBlock(wrapRaw(w.props.encode()))
	if err != nil {
		return Properties{}, err
	}

	footer := make([]byte, 0, footerLen)
	for _, h := range []blockHandle{indexHandle, filterHandle, rangeDelHandle, propsHandle, {}} {
		footer = binary.LittleEndian.AppendUint64(footer, h.offset)
		footer = binary.LittleEndian.AppendUint64(footer, h.length)
	}
	footer = binary.LittleEndian.AppendUint64(footer, tableMagic)
	if _, err := w.f.Write(footer); err != nil {
		return Properties{}, err
	}
	w.offset += uint64(len(footer))
	if err := w.f.Sync(); err != nil {
		return Properties{}, err
	}
	return w.props, nil
}

// wrapRaw frames an opaque byte payload as a CRC-protected block.
func wrapRaw(payload []byte) []byte {
	out := append([]byte(nil), payload...)
	crc := crc32.Checksum(out, crcTable)
	return binary.LittleEndian.AppendUint32(out, crc)
}

// unwrapRaw validates and strips the CRC from an opaque block.
func unwrapRaw(raw []byte) ([]byte, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: raw block too short", ErrCorrupt)
	}
	payload := raw[:len(raw)-4]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(raw[len(raw)-4:]) {
		return nil, fmt.Errorf("%w: raw block checksum", ErrCorrupt)
	}
	return payload, nil
}

func encodeRangeTombstones(ts []kv.RangeTombstone) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = binary.AppendUvarint(buf, uint64(len(t.Start)))
		buf = append(buf, t.Start...)
		buf = binary.AppendUvarint(buf, uint64(len(t.End)))
		buf = append(buf, t.End...)
		buf = binary.AppendUvarint(buf, uint64(t.Seq))
	}
	return buf
}

func decodeRangeTombstones(buf []byte) ([]kv.RangeTombstone, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, fmt.Errorf("%w: rangedel block", ErrCorrupt)
	}
	ts := make([]kv.RangeTombstone, 0, n)
	readBytes := func() ([]byte, bool) {
		l, m := binary.Uvarint(buf[off:])
		if m <= 0 || off+m+int(l) > len(buf) {
			return nil, false
		}
		off += m
		b := append([]byte(nil), buf[off:off+int(l)]...)
		off += int(l)
		return b, true
	}
	for i := uint64(0); i < n; i++ {
		start, ok := readBytes()
		if !ok {
			return nil, fmt.Errorf("%w: rangedel block", ErrCorrupt)
		}
		end, ok := readBytes()
		if !ok {
			return nil, fmt.Errorf("%w: rangedel block", ErrCorrupt)
		}
		seq, m := binary.Uvarint(buf[off:])
		if m <= 0 {
			return nil, fmt.Errorf("%w: rangedel block", ErrCorrupt)
		}
		off += m
		ts = append(ts, kv.RangeTombstone{Start: start, End: end, Seq: kv.SeqNum(seq)})
	}
	return ts, nil
}
