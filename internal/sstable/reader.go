package sstable

import (
	"encoding/binary"
	"fmt"

	"lsmlab/internal/bloom"
	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// BlockCache caches decoded data blocks across tables, keyed by (file
// number, block offset). The engine's block cache implements it; a nil
// cache is always a miss.
type BlockCache interface {
	// Get returns the cached value, if present.
	Get(fileNum, offset uint64) (any, bool)
	// Add inserts a value with the given charge in bytes.
	Add(fileNum, offset uint64, value any, charge int)
}

// ReadStats receives read-path events from a Reader. The engine wires
// this to its metrics; a nil ReadStats is silently ignored.
type ReadStats interface {
	FilterProbe(negative bool)
	BlockRead(cached bool)
}

// BlockBytesSink is an optional ReadStats extension: sinks that also
// implement it receive the on-disk byte size of every data block
// fetched, alongside the BlockRead count. The engine's per-level I/O
// profiler uses it to attribute real read bytes to the level each
// block came from.
type BlockBytesSink interface {
	BlockReadBytes(n int, cached bool)
}

// ReaderOptions configures how a table is opened.
type ReaderOptions struct {
	// FileNum namespaces this table's blocks in the shared cache.
	FileNum uint64
	// Cache is the shared block cache; nil disables caching.
	Cache BlockCache
	// Stats receives read-path events; nil disables reporting.
	Stats ReadStats
}

// Reader provides random access to one immutable table. The index
// block, Bloom filter, range tombstones, and properties are loaded
// eagerly and pinned — these are the light-weight auxiliary in-memory
// structures of tutorial §2.1.3. Data blocks are fetched on demand
// through the block cache.
type Reader struct {
	f        vfs.File
	opts     ReaderOptions
	index    *block
	filter   bloom.Filter
	rangeTs  []kv.RangeTombstone
	props    Properties
	fileSize int64
}

// Open reads the footer and pinned blocks of a table.
func Open(f vfs.File, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorrupt, size)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, size-footerLen); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(footer[len(footer)-8:]); got != tableMagic {
		return nil, fmt.Errorf("%w: bad magic %x", ErrCorrupt, got)
	}
	handles := make([]blockHandle, 5)
	for i := range handles {
		handles[i].offset = binary.LittleEndian.Uint64(footer[i*16:])
		handles[i].length = binary.LittleEndian.Uint64(footer[i*16+8:])
	}
	indexH, filterH, rangeDelH, propsH := handles[0], handles[1], handles[2], handles[3]

	r := &Reader{f: f, opts: opts, fileSize: size}

	raw, err := r.readRaw(indexH)
	if err != nil {
		return nil, err
	}
	if r.index, err = decodeBlock(raw); err != nil {
		return nil, err
	}
	if filterH.length > 0 {
		payload, err := r.readRawUnwrapped(filterH)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(payload)
	}
	if rangeDelH.length > 0 {
		payload, err := r.readRawUnwrapped(rangeDelH)
		if err != nil {
			return nil, err
		}
		if r.rangeTs, err = decodeRangeTombstones(payload); err != nil {
			return nil, err
		}
	}
	if propsH.length == 0 {
		return nil, fmt.Errorf("%w: missing properties", ErrCorrupt)
	}
	payload, err := r.readRawUnwrapped(propsH)
	if err != nil {
		return nil, err
	}
	if r.props, err = decodeProperties(payload); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) readRaw(h blockHandle) ([]byte, error) {
	buf := make([]byte, h.length)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *Reader) readRawUnwrapped(h blockHandle) ([]byte, error) {
	raw, err := r.readRaw(h)
	if err != nil {
		return nil, err
	}
	return unwrapRaw(raw)
}

// readDataBlock fetches a data block through the cache, reporting to
// the reader's configured stats sink.
func (r *Reader) readDataBlock(h blockHandle) (*block, error) {
	return r.readDataBlockWith(h, r.opts.Stats)
}

// readDataBlockWith is readDataBlock with an explicit stats sink, so a
// traced lookup can attribute the fetch to its own span.
func (r *Reader) readDataBlockWith(h blockHandle, st ReadStats) (*block, error) {
	if r.opts.Cache != nil {
		if v, ok := r.opts.Cache.Get(r.opts.FileNum, h.offset); ok {
			if st != nil {
				st.BlockRead(true)
				if bs, ok := st.(BlockBytesSink); ok {
					bs.BlockReadBytes(int(h.length), true)
				}
			}
			return v.(*block), nil
		}
	}
	raw, err := r.readRaw(h)
	if err != nil {
		return nil, err
	}
	b, err := decodeBlock(raw)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.BlockRead(false)
		if bs, ok := st.(BlockBytesSink); ok {
			bs.BlockReadBytes(int(h.length), false)
		}
	}
	if r.opts.Cache != nil {
		r.opts.Cache.Add(r.opts.FileNum, h.offset, b, len(raw))
	}
	return b, nil
}

// Props returns the table's properties.
func (r *Reader) Props() Properties { return r.props }

// RangeTombstones returns the table's range tombstones (may be nil).
func (r *Reader) RangeTombstones() []kv.RangeTombstone { return r.rangeTs }

// FilterSizeBytes returns the in-memory footprint of the pinned Bloom
// filter.
func (r *Reader) FilterSizeBytes() int { return len(r.filter) }

// FileSize returns the on-disk size of the table.
func (r *Reader) FileSize() int64 { return r.fileSize }

// MayContainHash probes the Bloom filter with a precomputed user-key
// hash (hash sharing across levels, §2.1.3). It returns false only if
// the key is definitely absent.
func (r *Reader) MayContainHash(h uint64) bool {
	return r.mayContainHash(h, r.opts.Stats)
}

func (r *Reader) mayContainHash(h uint64, st ReadStats) bool {
	if len(r.filter) == 0 {
		return true
	}
	neg := !r.filter.MayContainHash(h)
	if st != nil {
		st.FilterProbe(neg)
	}
	return !neg
}

// decodeHandle parses an index-block value into a block handle.
func decodeHandle(v []byte) (blockHandle, error) {
	if len(v) != 16 {
		return blockHandle{}, fmt.Errorf("%w: bad index value", ErrCorrupt)
	}
	return blockHandle{
		offset: binary.LittleEndian.Uint64(v[:8]),
		length: binary.LittleEndian.Uint64(v[8:]),
	}, nil
}

// Get returns the newest point entry for ukey visible at snapshot snap
// within this table (it may be a tombstone). Range tombstones are not
// consulted here — the read path merges them across runs. The Bloom
// filter is probed with the precomputed hash.
func (r *Reader) Get(ukey []byte, hash uint64, snap kv.SeqNum) (kv.Entry, bool, error) {
	return r.GetWith(ukey, hash, snap, nil)
}

// GetWith is Get with a per-operation stats sink: a non-nil st replaces
// the reader's configured ReadStats for this lookup, so a traced
// request can attribute its filter probes and block fetches to its own
// span. A nil st reports to r.opts.Stats as usual.
func (r *Reader) GetWith(ukey []byte, hash uint64, snap kv.SeqNum, st ReadStats) (kv.Entry, bool, error) {
	var sc GetScratch
	e, ok, err := r.GetScratched(ukey, kv.MakeSearchKey(ukey, snap), hash, st, &sc)
	if ok {
		e = e.Clone() // detach from the scratch for standalone callers
	}
	return e, ok, err
}

// GetScratch holds the reusable per-lookup state of GetScratched: the
// index and data cursors, whose key buffers amortize to zero
// allocations across lookups. A scratch must not be used concurrently;
// the engine pools one per in-flight read.
type GetScratch struct {
	idx  blockIterator
	data blockIterator
}

// GetScratched is the allocation-free point lookup: search must be
// kv.MakeSearchKey(ukey, snap) (built once by the caller and shared
// across every run probed), and sc carries the cursors across calls.
//
// The returned entry ALIASES sc's key buffer and the cached data
// block: the key is valid only until the next lookup through sc, the
// value for as long as the caller retains it (blocks are immutable and
// the slice keeps the block alive).
func (r *Reader) GetScratched(ukey, search []byte, hash uint64, st ReadStats, sc *GetScratch) (kv.Entry, bool, error) {
	if st == nil {
		st = r.opts.Stats
	}
	if !r.mayContainHash(hash, st) {
		return kv.Entry{}, false, nil
	}
	idx := &sc.idx
	idx.reset(r.index)
	if !idx.SeekGE(search) {
		return kv.Entry{}, false, idx.Close()
	}
	h, err := decodeHandle(idx.Value())
	if err != nil {
		return kv.Entry{}, false, err
	}
	b, err := r.readDataBlockWith(h, st)
	if err != nil {
		return kv.Entry{}, false, err
	}
	it := &sc.data
	it.reset(b)
	if !it.SeekGE(search) {
		return kv.Entry{}, false, it.Close()
	}
	if kv.CompareUser(kv.UserKey(it.Key()), ukey) != 0 {
		return kv.Entry{}, false, it.Close()
	}
	return kv.Entry{Key: it.Key(), Value: it.Value()}, true, it.Close()
}

// NewIterator returns an iterator over the table's point entries.
func (r *Reader) NewIterator() kv.Iterator {
	return &tableIterator{r: r, st: r.opts.Stats, index: newBlockIterator(r.index)}
}

// NewIteratorWith is NewIterator with a per-iterator stats sink
// replacing the reader's configured ReadStats, so a scan can attribute
// its block fetches to the level it is reading. A nil st reports to
// r.opts.Stats as usual.
func (r *Reader) NewIteratorWith(st ReadStats) kv.Iterator {
	if st == nil {
		st = r.opts.Stats
	}
	return &tableIterator{r: r, st: st, index: newBlockIterator(r.index)}
}

// BlockSpans invokes fn for every data block with its file offset and
// the last internal key it holds, in key order. Used by the Leaper-
// style prefetcher to map cached blocks to key ranges.
func (r *Reader) BlockSpans(fn func(offset uint64, lastKey []byte)) {
	idx := newBlockIterator(r.index)
	for ok := idx.First(); ok; ok = idx.Next() {
		h, err := decodeHandle(idx.Value())
		if err != nil {
			return
		}
		fn(h.offset, idx.Key())
	}
}

// WarmRange reads every data block whose keys may intersect the user-
// key range [start, end] through the block cache, stopping once budget
// bytes have been loaded (budget <= 0 means unlimited). It returns the
// bytes loaded.
func (r *Reader) WarmRange(start, end []byte, budget int64) int64 {
	idx := newBlockIterator(r.index)
	var loaded int64
	ok := idx.SeekGE(kv.MakeSearchKey(start, kv.MaxSeqNum))
	for ; ok; ok = idx.Next() {
		if end != nil && kv.CompareUser(kv.UserKey(idx.Key()), end) > 0 {
			// This block still overlaps (it may start before end); load
			// it, then stop.
			if h, err := decodeHandle(idx.Value()); err == nil {
				if _, err := r.readDataBlock(h); err == nil {
					loaded += int64(h.length)
				}
			}
			break
		}
		h, err := decodeHandle(idx.Value())
		if err != nil {
			break
		}
		if _, err := r.readDataBlock(h); err != nil {
			break
		}
		loaded += int64(h.length)
		if budget > 0 && loaded >= budget {
			break
		}
	}
	return loaded
}

// VerifyChecksums reads every data block of the table directly from
// the file — bypassing the block cache, so at-rest corruption cannot
// hide behind a clean cached copy — and validates each block's
// checksum and structure. The pinned blocks (index, filter, range
// tombstones, properties) were already verified at Open. It returns
// the bytes verified and the first corruption found.
func (r *Reader) VerifyChecksums() (int64, error) {
	idx := newBlockIterator(r.index)
	var verified int64
	for ok := idx.First(); ok; ok = idx.Next() {
		h, err := decodeHandle(idx.Value())
		if err != nil {
			return verified, err
		}
		raw, err := r.readRaw(h)
		if err != nil {
			return verified, fmt.Errorf("block at %d: %w", h.offset, err)
		}
		if _, err := decodeBlock(raw); err != nil {
			return verified, fmt.Errorf("block at %d: %w", h.offset, err)
		}
		verified += int64(h.length)
	}
	return verified, idx.Close()
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// tableIterator is the two-level iterator: an index cursor selects data
// blocks, a block cursor walks entries.
type tableIterator struct {
	r     *Reader
	st    ReadStats
	index *blockIterator
	data  *blockIterator
	err   error
}

// loadCurrentBlock opens the data block the index cursor points at.
func (it *tableIterator) loadCurrentBlock() bool {
	h, err := decodeHandle(it.index.Value())
	if err != nil {
		it.err = err
		return false
	}
	b, err := it.r.readDataBlockWith(h, it.st)
	if err != nil {
		it.err = err
		return false
	}
	it.data = newBlockIterator(b)
	return true
}

func (it *tableIterator) First() bool {
	it.data = nil
	if !it.index.First() {
		return false
	}
	if !it.loadCurrentBlock() {
		return false
	}
	return it.data.First()
}

func (it *tableIterator) SeekGE(ikey []byte) bool {
	it.data = nil
	if !it.index.SeekGE(ikey) {
		return false
	}
	if !it.loadCurrentBlock() {
		return false
	}
	if it.data.SeekGE(ikey) {
		return true
	}
	// The sought key fell in the gap past this block's last entry; the
	// next block starts at a greater key.
	return it.advanceBlock()
}

func (it *tableIterator) advanceBlock() bool {
	if !it.index.Next() {
		it.data = nil
		return false
	}
	if !it.loadCurrentBlock() {
		return false
	}
	return it.data.First()
}

func (it *tableIterator) Next() bool {
	if it.data == nil {
		return false
	}
	if it.data.Next() {
		return true
	}
	return it.advanceBlock()
}

func (it *tableIterator) Valid() bool { return it.data != nil && it.data.Valid() }

// Error returns the deferred block-read error, if any. Positioning
// returns false both at end-of-table and on a corrupt block, so bulk
// consumers (compaction, scans) must check this after iterating — see
// kv.IterError.
func (it *tableIterator) Error() error { return it.err }

func (it *tableIterator) Key() []byte { return it.data.Key() }

func (it *tableIterator) Value() []byte { return it.data.Value() }

func (it *tableIterator) Close() error {
	if it.err != nil {
		return it.err
	}
	if it.data != nil {
		if err := it.data.Close(); err != nil {
			return err
		}
	}
	return it.index.Close()
}
