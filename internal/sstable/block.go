// Package sstable implements the immutable sorted files of the LSM tree
// (tutorial §2.1.1 C). A table is a sequence of 4 KiB prefix-compressed
// data blocks, followed by a fence-pointer index block (the smallest and
// largest key of every block, realized as per-block separator keys), an
// optional Bloom filter block, an optional range-tombstone block, a
// properties block, and a fixed-size footer. Every block carries a
// CRC-32C checksum.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"lsmlab/internal/kv"
)

// DefaultBlockSize is the target uncompressed size of a data block. It
// matches vfs.PageSize so that one block read is one device page read.
const DefaultBlockSize = 4096

// restartInterval is the number of entries between restart points in a
// block. Keys between restarts are delta-encoded against their
// predecessor.
const restartInterval = 16

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a block or footer fails validation.
var ErrCorrupt = errors.New("sstable: corrupt table")

// blockBuilder assembles one block: entries with shared-prefix
// compression, a restart array, and a CRC trailer.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	nEntries int
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.nEntries = 0
}

func (b *blockBuilder) empty() bool { return b.nEntries == 0 }

// estimatedSize returns the serialized size of the block so far.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 8
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// add appends an entry. Keys must arrive in ascending order.
func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval && b.nEntries > 0 {
		shared = sharedPrefixLen(b.lastKey, key)
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.nEntries++
}

// finish serializes the block: payload, restart array, restart count,
// CRC. The returned slice aliases the builder and is invalidated by
// reset.
func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	crc := crc32.Checksum(b.buf, crcTable)
	b.buf = binary.LittleEndian.AppendUint32(b.buf, crc)
	return b.buf
}

// block is a parsed, validated block ready for iteration.
type block struct {
	data     []byte // entry payload only
	restarts []uint32
}

// decodeBlock validates the CRC and parses the restart array.
func decodeBlock(raw []byte) (*block, error) {
	if len(raw) < 12 {
		return nil, fmt.Errorf("%w: block too short (%d bytes)", ErrCorrupt, len(raw))
	}
	payload := raw[:len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	nRestarts := int(binary.LittleEndian.Uint32(payload[len(payload)-4:]))
	restartsEnd := len(payload) - 4
	restartsStart := restartsEnd - 4*nRestarts
	if nRestarts <= 0 || restartsStart < 0 {
		return nil, fmt.Errorf("%w: bad restart count %d", ErrCorrupt, nRestarts)
	}
	restarts := make([]uint32, nRestarts)
	for i := range restarts {
		restarts[i] = binary.LittleEndian.Uint32(payload[restartsStart+4*i:])
		if int(restarts[i]) > restartsStart {
			return nil, fmt.Errorf("%w: restart offset out of range", ErrCorrupt)
		}
	}
	return &block{data: payload[:restartsStart], restarts: restarts}, nil
}

// blockIterator iterates the entries of one block.
type blockIterator struct {
	b      *block
	offset int // offset of current entry
	next   int // offset just past current entry
	key    []byte
	value  []byte
	valid  bool
	err    error
}

func newBlockIterator(b *block) *blockIterator {
	return &blockIterator{b: b}
}

// reset repoints the iterator at another block, keeping the key
// scratch's capacity so repeated lookups through one iterator value
// stop allocating once the buffer has grown to the working key length.
func (it *blockIterator) reset(b *block) {
	it.b = b
	it.offset = 0
	it.next = 0
	it.key = it.key[:0]
	it.value = nil
	it.valid = false
	it.err = nil
}

// readEntryAt decodes the entry at off, using it.key as the
// delta-decoding context (it must hold the previous key unless off is a
// restart point, where shared is 0).
func (it *blockIterator) readEntryAt(off int) bool {
	data := it.b.data
	if off >= len(data) {
		it.valid = false
		return false
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 {
		it.corrupt()
		return false
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		it.corrupt()
		return false
	}
	valLen, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		it.corrupt()
		return false
	}
	keyStart := off + n1 + n2 + n3
	valStart := keyStart + int(unshared)
	end := valStart + int(valLen)
	if int(shared) > len(it.key) || end > len(data) {
		it.corrupt()
		return false
	}
	it.key = append(it.key[:shared], data[keyStart:valStart]...)
	it.value = data[valStart:end]
	it.offset = off
	it.next = end
	it.valid = true
	return true
}

func (it *blockIterator) corrupt() {
	it.valid = false
	it.err = fmt.Errorf("%w: bad block entry", ErrCorrupt)
}

func (it *blockIterator) First() bool {
	it.key = it.key[:0]
	return it.readEntryAt(0)
}

func (it *blockIterator) Next() bool {
	if !it.valid {
		return false
	}
	return it.readEntryAt(it.next)
}

// SeekGE binary-searches the restart array, then scans forward.
func (it *blockIterator) SeekGE(ikey []byte) bool {
	// Find the last restart whose key is < ikey.
	lo, hi := 0, len(it.b.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.key = it.key[:0]
		if !it.readEntryAt(int(it.b.restarts[mid])) {
			return false
		}
		if kv.Compare(it.key, ikey) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.key = it.key[:0]
	if !it.readEntryAt(int(it.b.restarts[lo])) {
		return false
	}
	for kv.Compare(it.key, ikey) < 0 {
		if !it.Next() {
			return false
		}
	}
	return true
}

func (it *blockIterator) Valid() bool   { return it.valid }
func (it *blockIterator) Key() []byte   { return it.key }
func (it *blockIterator) Value() []byte { return it.value }
func (it *blockIterator) Close() error  { return it.err }
