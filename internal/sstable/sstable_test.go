package sstable

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lsmlab/internal/bloom"
	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// buildTable writes a table of n sequential entries and returns an open
// reader over it.
func buildTable(t *testing.T, fs vfs.FS, n int, opts WriterOptions, ropts ReaderOptions) *Reader {
	t.Helper()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for i := 0; i < n; i++ {
		ik := kv.MakeKey([]byte(fmt.Sprintf("key-%06d", i)), kv.SeqNum(i+1), kv.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(rf, ropts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, 1000, WriterOptions{BitsPerKey: 10}, ReaderOptions{})
	defer r.Close()

	for _, i := range []int{0, 1, 17, 500, 999} {
		uk := []byte(fmt.Sprintf("key-%06d", i))
		e, ok, err := r.Get(uk, bloom.Hash64(uk), kv.MaxSeqNum)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", uk, ok, err)
		}
		if want := fmt.Sprintf("value-%06d", i); string(e.Value) != want {
			t.Errorf("value %q, want %q", e.Value, want)
		}
	}
	uk := []byte("key-x")
	if _, ok, _ := r.Get(uk, bloom.Hash64(uk), kv.MaxSeqNum); ok {
		t.Error("absent key found")
	}
}

func TestProperties(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, 100, WriterOptions{BitsPerKey: 10}, ReaderOptions{})
	defer r.Close()
	p := r.Props()
	if p.NumEntries != 100 {
		t.Errorf("NumEntries=%d", p.NumEntries)
	}
	if string(p.Smallest) != "key-000000" || string(p.Largest) != "key-000099" {
		t.Errorf("bounds %q..%q", p.Smallest, p.Largest)
	}
	if p.SmallestSeq != 1 || p.LargestSeq != 100 {
		t.Errorf("seqs %d..%d", p.SmallestSeq, p.LargestSeq)
	}
	if p.NumDataBlocks == 0 {
		t.Error("no data blocks recorded")
	}
	if p.TombstoneDensity() != 0 {
		t.Error("no tombstones expected")
	}
}

func TestTombstonePropertiesAndDensity(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	now := int64(12345)
	w := NewWriter(f, WriterOptions{NowNs: func() int64 { return now }})
	w.Add(kv.MakeKey([]byte("a"), 2, kv.KindDelete), nil)
	w.Add(kv.MakeKey([]byte("b"), 1, kv.KindSet), []byte("v"))
	w.Add(kv.MakeKey([]byte("c"), 3, kv.KindSingleDelete), nil)
	w.Add(kv.MakeKey([]byte("d"), 4, kv.KindSet), []byte("v"))
	p, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if p.NumTombstones != 2 {
		t.Errorf("NumTombstones=%d", p.NumTombstones)
	}
	if p.TombstoneDensity() != 0.5 {
		t.Errorf("density=%v", p.TombstoneDensity())
	}
	if p.OldestTombstoneNs != now {
		t.Errorf("OldestTombstoneNs=%d", p.OldestTombstoneNs)
	}
}

func TestIteratorFullScan(t *testing.T) {
	fs := vfs.NewMem()
	const n = 2500
	r := buildTable(t, fs, n, WriterOptions{BitsPerKey: 10}, ReaderOptions{})
	defer r.Close()
	it := r.NewIterator()
	defer it.Close()
	count := 0
	var prev []byte
	for ok := it.First(); ok; ok = it.Next() {
		if prev != nil && kv.Compare(prev, it.Key()) >= 0 {
			t.Fatal("out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Errorf("scanned %d of %d", count, n)
	}
}

func TestIteratorSeekGE(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, 2000, WriterOptions{BitsPerKey: 10}, ReaderOptions{})
	defer r.Close()
	it := r.NewIterator()
	defer it.Close()

	// Seek to an existing key.
	if !it.SeekGE(kv.MakeSearchKey([]byte("key-001000"), kv.MaxSeqNum)) {
		t.Fatal("seek existing")
	}
	if got := string(kv.UserKey(it.Key())); got != "key-001000" {
		t.Errorf("landed on %q", got)
	}
	// Seek between keys.
	if !it.SeekGE(kv.MakeSearchKey([]byte("key-001000x"), kv.MaxSeqNum)) {
		t.Fatal("seek between")
	}
	if got := string(kv.UserKey(it.Key())); got != "key-001001" {
		t.Errorf("landed on %q", got)
	}
	// Seek before first.
	if !it.SeekGE(kv.MakeSearchKey([]byte("a"), kv.MaxSeqNum)) {
		t.Fatal("seek before first")
	}
	if got := string(kv.UserKey(it.Key())); got != "key-000000" {
		t.Errorf("landed on %q", got)
	}
	// Seek past last.
	if it.SeekGE(kv.MakeSearchKey([]byte("z"), kv.MaxSeqNum)) {
		t.Error("seek past last must be invalid")
	}
}

func TestMultipleVersionsVisibility(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{BitsPerKey: 10})
	// Internal-key order: same ukey sorts newest (highest seq) first.
	w.Add(kv.MakeKey([]byte("k"), 9, kv.KindSet), []byte("v9"))
	w.Add(kv.MakeKey([]byte("k"), 5, kv.KindDelete), nil)
	w.Add(kv.MakeKey([]byte("k"), 2, kv.KindSet), []byte("v2"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, _ := fs.Open("t.sst")
	r, err := Open(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h := bloom.Hash64([]byte("k"))
	for _, c := range []struct {
		snap kv.SeqNum
		kind kv.Kind
		val  string
		ok   bool
	}{
		{kv.MaxSeqNum, kv.KindSet, "v9", true},
		{8, kv.KindDelete, "", true},
		{4, kv.KindSet, "v2", true},
		{1, 0, "", false},
	} {
		e, ok, err := r.Get([]byte("k"), h, c.snap)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.ok {
			t.Fatalf("snap %d: ok=%v want %v", c.snap, ok, c.ok)
		}
		if ok && (e.Kind() != c.kind || string(e.Value) != c.val) {
			t.Errorf("snap %d: got %v", c.snap, e)
		}
	}
}

func TestRangeTombstoneRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	w.Add(kv.MakeKey([]byte("a"), 1, kv.KindSet), []byte("v"))
	w.AddRangeTombstone(kv.RangeTombstone{Start: []byte("b"), End: []byte("f"), Seq: 7})
	w.AddRangeTombstone(kv.RangeTombstone{Start: []byte("x"), End: []byte("x")}) // empty: dropped
	p, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if p.NumRangeDels != 1 {
		t.Errorf("NumRangeDels=%d", p.NumRangeDels)
	}
	// Range tombstone extends the key bounds.
	if string(p.Largest) != "f" {
		t.Errorf("Largest=%q, range tombstone must extend bounds", p.Largest)
	}
	rf, _ := fs.Open("t.sst")
	r, err := Open(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts := r.RangeTombstones()
	if len(ts) != 1 || string(ts[0].Start) != "b" || string(ts[0].End) != "f" || ts[0].Seq != 7 {
		t.Errorf("tombstones %v", ts)
	}
}

func TestRangeTombstoneOnlyTable(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	w.AddRangeTombstone(kv.RangeTombstone{Start: []byte("a"), End: []byte("z"), Seq: 3})
	if _, err := w.Finish(); err != nil {
		t.Fatalf("rangedel-only table must be writable: %v", err)
	}
	f.Close()
	rf, _ := fs.Open("t.sst")
	r, err := Open(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.RangeTombstones()) != 1 {
		t.Error("tombstone lost")
	}
	it := r.NewIterator()
	if it.First() {
		t.Error("no point entries expected")
	}
	it.Close()
}

func TestOutOfOrderAddFails(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if err := w.Add(kv.MakeKey([]byte("b"), 1, kv.KindSet), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(kv.MakeKey([]byte("a"), 2, kv.KindSet), nil); err == nil {
		t.Fatal("out-of-order add must fail")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("finish after error must fail")
	}
}

func TestEmptyTableFails(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if _, err := w.Finish(); err == nil {
		t.Fatal("empty table must fail")
	}
}

func TestBloomFilterSkipsAbsentKeys(t *testing.T) {
	fs := vfs.NewMem()
	stats := &recordingStats{}
	r := buildTable(t, fs, 1000, WriterOptions{BitsPerKey: 10}, ReaderOptions{Stats: stats})
	defer r.Close()
	neg := 0
	for i := 0; i < 1000; i++ {
		uk := []byte(fmt.Sprintf("absent-%06d", i))
		if !r.MayContainHash(bloom.Hash64(uk)) {
			neg++
		}
	}
	if neg < 950 {
		t.Errorf("filter rejected only %d of 1000 absent keys", neg)
	}
	if stats.probes != 1000 || stats.negatives != int64(neg) {
		t.Errorf("stats: probes=%d negatives=%d", stats.probes, stats.negatives)
	}
}

func TestNoFilterWhenZeroBits(t *testing.T) {
	fs := vfs.NewMem()
	r := buildTable(t, fs, 100, WriterOptions{BitsPerKey: 0}, ReaderOptions{})
	defer r.Close()
	if r.FilterSizeBytes() != 0 {
		t.Error("zero bits must produce no filter")
	}
	uk := []byte("absent")
	if !r.MayContainHash(bloom.Hash64(uk)) {
		t.Error("unfiltered table must answer maybe")
	}
}

type recordingStats struct {
	probes, negatives, cachedReads, diskReads int64
}

func (s *recordingStats) FilterProbe(negative bool) {
	s.probes++
	if negative {
		s.negatives++
	}
}

func (s *recordingStats) BlockRead(cached bool) {
	if cached {
		s.cachedReads++
	} else {
		s.diskReads++
	}
}

// fakeCache is a trivial map-backed BlockCache.
type fakeCache struct {
	m map[[2]uint64]any
}

func (c *fakeCache) Get(fn, off uint64) (any, bool) {
	v, ok := c.m[[2]uint64{fn, off}]
	return v, ok
}

func (c *fakeCache) Add(fn, off uint64, v any, charge int) {
	c.m[[2]uint64{fn, off}] = v
}

func TestBlockCacheUsed(t *testing.T) {
	fs := vfs.NewCounting(vfs.NewMem())
	stats := &recordingStats{}
	cache := &fakeCache{m: make(map[[2]uint64]any)}
	r := buildTable(t, fs, 2000, WriterOptions{BitsPerKey: 10},
		ReaderOptions{Cache: cache, Stats: stats, FileNum: 7})
	defer r.Close()

	uk := []byte("key-000500")
	h := bloom.Hash64(uk)
	if _, ok, _ := r.Get(uk, h, kv.MaxSeqNum); !ok {
		t.Fatal("get")
	}
	if stats.diskReads != 1 || stats.cachedReads != 0 {
		t.Fatalf("first read: %+v", *stats)
	}
	if _, ok, _ := r.Get(uk, h, kv.MaxSeqNum); !ok {
		t.Fatal("get 2")
	}
	if stats.cachedReads != 1 {
		t.Fatalf("second read should hit cache: %+v", *stats)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	for i := 0; i < 100; i++ {
		w.Add(kv.MakeKey([]byte(fmt.Sprintf("key-%04d", i)), kv.SeqNum(i+1), kv.KindSet), []byte("v"))
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Corrupt one byte in the middle of the file (a data block).
	rf, _ := fs.Open("t.sst")
	size, _ := rf.Size()
	data := make([]byte, size)
	rf.ReadAt(data, 0)
	rf.Close()
	data[100] ^= 0xff
	cf, _ := fs.Create("t.sst")
	cf.Write(data)
	cf.Close()

	rf2, _ := fs.Open("t.sst")
	r, err := Open(rf2, ReaderOptions{})
	if err != nil {
		// Index corruption is also acceptable detection.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unexpected error %v", err)
		}
		return
	}
	defer r.Close()
	uk := []byte("key-0000")
	_, _, err = r.Get(uk, bloom.Hash64(uk), kv.MaxSeqNum)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corruption undetected: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("junk")
	f.Write([]byte(strings.Repeat("x", 200)))
	f.Close()
	rf, _ := fs.Open("junk")
	if _, err := Open(rf, ReaderOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage accepted: %v", err)
	}
	g, _ := fs.Create("tiny")
	g.Write([]byte("xy"))
	g.Close()
	rg, _ := fs.Open("tiny")
	if _, err := Open(rg, ReaderOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tiny accepted: %v", err)
	}
}

func TestRandomizedTableAgainstModel(t *testing.T) {
	fs := vfs.NewMem()
	r := rand.New(rand.NewSource(5))
	// Build sorted random entries with duplicate user keys and varied
	// value sizes.
	type mk struct {
		uk  string
		seq kv.SeqNum
	}
	seen := map[mk]bool{}
	var entries []kv.Entry
	for len(entries) < 3000 {
		k := mk{fmt.Sprintf("k%05d", r.Intn(1000)), kv.SeqNum(r.Intn(10) + 1)}
		if seen[k] {
			continue
		}
		seen[k] = true
		val := make([]byte, r.Intn(300))
		for i := range val {
			val[i] = byte(r.Intn(256))
		}
		entries = append(entries, kv.Entry{
			Key:   kv.MakeKey([]byte(k.uk), k.seq, kv.KindSet),
			Value: val,
		})
	}
	sortEntries(entries)

	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{BitsPerKey: 10, BlockSize: 512})
	for _, e := range entries {
		if err := w.Add(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, _ := fs.Open("t.sst")
	rd, err := Open(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	// Full scan must reproduce entries exactly.
	it := rd.NewIterator()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if kv.Compare(it.Key(), entries[i].Key) != 0 || string(it.Value()) != string(entries[i].Value) {
			t.Fatalf("mismatch at %d", i)
		}
		i++
	}
	it.Close()
	if i != len(entries) {
		t.Fatalf("scanned %d of %d", i, len(entries))
	}

	// Random point gets against the model.
	for trial := 0; trial < 500; trial++ {
		uk := fmt.Sprintf("k%05d", r.Intn(1100))
		snap := kv.SeqNum(r.Intn(12))
		var want *kv.Entry
		for i := range entries {
			e := &entries[i]
			if string(e.UserKey()) == uk && kv.Visible(e.Seq(), snap) &&
				(want == nil || e.Seq() > want.Seq()) {
				want = e
			}
		}
		got, ok, err := rd.Get([]byte(uk), bloom.Hash64([]byte(uk)), snap)
		if err != nil {
			t.Fatal(err)
		}
		if (want != nil) != ok {
			t.Fatalf("get %s@%d: ok=%v want %v", uk, snap, ok, want != nil)
		}
		if ok && (got.Seq() != want.Seq() || string(got.Value) != string(want.Value)) {
			t.Fatalf("get %s@%d: wrong version", uk, snap)
		}
	}
}

func sortEntries(es []kv.Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && kv.Compare(es[j].Key, es[j-1].Key) < 0; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if w.EstimatedSize() != 0 {
		t.Error("empty writer size")
	}
	w.Add(kv.MakeKey([]byte("a"), 1, kv.KindSet), make([]byte, 1000))
	s1 := w.EstimatedSize()
	if s1 < 1000 {
		t.Errorf("size %d", s1)
	}
	w.Add(kv.MakeKey([]byte("b"), 2, kv.KindSet), make([]byte, 5000))
	if w.EstimatedSize() <= s1 {
		t.Error("size must grow")
	}
	if w.NumEntries() != 2 {
		t.Errorf("entries %d", w.NumEntries())
	}
}

func TestBlockSizeControlsBlockCount(t *testing.T) {
	fs := vfs.NewMem()
	small := buildTable(t, fs, 1000, WriterOptions{BlockSize: 512}, ReaderOptions{})
	nSmall := small.Props().NumDataBlocks
	small.Close()
	big := buildTable(t, fs, 1000, WriterOptions{BlockSize: 16384}, ReaderOptions{})
	nBig := big.Props().NumDataBlocks
	big.Close()
	if nSmall <= nBig {
		t.Errorf("512B blocks (%d) should outnumber 16K blocks (%d)", nSmall, nBig)
	}
}

// failAfterFile fails every write after the first n.
type failAfterFile struct {
	vfs.File
	remaining int
}

func (f *failAfterFile) Write(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, errors.New("injected failure")
	}
	f.remaining--
	return f.File.Write(p)
}

func TestFinishPropagatesDataBlockWriteError(t *testing.T) {
	fs := vfs.NewMem()
	inner, _ := fs.Create("t.sst")
	f := &failAfterFile{File: inner, remaining: 0} // every write fails
	w := NewWriter(f, WriterOptions{})
	// Small entries stay buffered until Finish, whose first data-block
	// write must fail and surface.
	w.Add(kv.MakeKey([]byte("a"), 1, kv.KindSet), []byte("v"))
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish must propagate the data-block write failure")
	}
}

func TestAddPropagatesMidStreamWriteError(t *testing.T) {
	fs := vfs.NewMem()
	inner, _ := fs.Create("t.sst")
	f := &failAfterFile{File: inner, remaining: 1} // first block ok, then fail
	w := NewWriter(f, WriterOptions{BlockSize: 256})
	var sawErr bool
	for i := 0; i < 1000; i++ {
		ik := kv.MakeKey([]byte(fmt.Sprintf("key-%04d", i)), kv.SeqNum(i+1), kv.KindSet)
		if err := w.Add(ik, make([]byte, 64)); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("Add must eventually surface the write failure")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish after failed Add must error")
	}
}
