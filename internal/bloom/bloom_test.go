package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func keys(n int) [][]byte {
	ks := make([][]byte, n)
	for i := range ks {
		ks[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	return ks
}

func TestFilterNoFalseNegatives(t *testing.T) {
	ks := keys(10000)
	f := NewFromKeys(ks, 10)
	for _, k := range ks {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestFilterFalsePositiveRateNearTheory(t *testing.T) {
	for _, bpk := range []float64{4, 8, 12} {
		ks := keys(20000)
		f := NewFromKeys(ks, bpk)
		fp := 0
		probes := 20000
		for i := 0; i < probes; i++ {
			k := []byte(fmt.Sprintf("absent-%08d", i))
			if f.MayContain(k) {
				fp++
			}
		}
		got := float64(fp) / float64(probes)
		want := FalsePositiveRate(bpk)
		if got > want*2.5+0.001 {
			t.Errorf("bpk=%v: measured fpr %.4f far above theoretical %.4f", bpk, got, want)
		}
	}
}

func TestFilterSizeScalesWithBitsPerKey(t *testing.T) {
	ks := keys(10000)
	f4 := NewFromKeys(ks, 4)
	f10 := NewFromKeys(ks, 10)
	if len(f10) <= len(f4) {
		t.Errorf("10 bpk (%d bytes) should be larger than 4 bpk (%d bytes)", len(f10), len(f4))
	}
	// Roughly n*bpk/8 bytes.
	if math.Abs(float64(len(f10))-10*10000/8) > 1000 {
		t.Errorf("unexpected filter size %d", len(f10))
	}
}

func TestNilAndTinyFilters(t *testing.T) {
	var f Filter
	if !f.MayContain([]byte("anything")) {
		t.Error("nil filter must answer maybe")
	}
	if New(nil, 10) != nil {
		t.Error("empty key set yields nil filter")
	}
	if NewFromKeys(keys(10), 0.2) != nil {
		t.Error("sub-half-bit budget yields nil filter")
	}
	if !Filter([]byte{1, 2}).MayContain([]byte("x")) {
		t.Error("truncated filter must fail open")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64([]byte("abc")) != Hash64([]byte("abc")) {
		t.Error("hash must be deterministic")
	}
	if Hash64([]byte("abc")) == Hash64([]byte("abd")) {
		t.Error("hashes of different keys should differ")
	}
	if Hash64(nil) == 0 {
		t.Error("hash of empty key should be mixed, not zero")
	}
}

func TestRehashIndependence(t *testing.T) {
	h := Hash64([]byte("key"))
	seen := map[uint64]bool{h: true}
	for lvl := 0; lvl < 8; lvl++ {
		r := Rehash(h, lvl)
		if seen[r] {
			t.Errorf("level %d rehash collides", lvl)
		}
		seen[r] = true
		if r != Rehash(h, lvl) {
			t.Error("rehash must be deterministic")
		}
	}
}

func TestFPRInverse(t *testing.T) {
	for _, bpk := range []float64{1, 5, 10, 16} {
		fpr := FalsePositiveRate(bpk)
		back := BitsForFPR(fpr)
		if math.Abs(back-bpk) > 1e-9 {
			t.Errorf("BitsForFPR(FalsePositiveRate(%v)) = %v", bpk, back)
		}
	}
	if FalsePositiveRate(0) != 1 || FalsePositiveRate(-1) != 1 {
		t.Error("no bits means fpr 1")
	}
	if BitsForFPR(1) != 0 {
		t.Error("fpr 1 needs 0 bits")
	}
	if !math.IsInf(BitsForFPR(0), 1) {
		t.Error("fpr 0 needs infinite bits")
	}
}

func TestFilterPropertyNoFalseNegative(t *testing.T) {
	f := func(ks [][]byte) bool {
		filter := NewFromKeys(ks, 8)
		for _, k := range ks {
			if !filter.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMonkeyAllocationBeatsUniform(t *testing.T) {
	// An LSM with size ratio 10 and 4 levels: entry counts grow 10x.
	entries := []int64{1000, 10_000, 100_000, 1_000_000}
	var total int64
	for _, e := range entries {
		total += e
	}
	budget := total * 5 // 5 bits/key overall

	monkey := Allocate(entries, budget)
	uniform := UniformAllocate(entries, budget)

	mFPR := ExpectedLookupFPR(monkey)
	uFPR := ExpectedLookupFPR(uniform)
	if mFPR >= uFPR {
		t.Errorf("monkey FPR %.5f should beat uniform %.5f", mFPR, uFPR)
	}
	// Monkey gives shallower (smaller) runs more bits per key.
	for i := 1; i < len(monkey); i++ {
		if monkey[i-1] < monkey[i] {
			t.Errorf("bits/key must be non-increasing with level: %v", monkey)
		}
	}
}

func TestMonkeyRespectsBudget(t *testing.T) {
	entries := []int64{500, 5000, 50000}
	budget := int64(100_000)
	bits := Allocate(entries, budget)
	var used float64
	for i, b := range bits {
		used += b * float64(entries[i])
	}
	if math.Abs(used-float64(budget)) > float64(budget)/100 {
		t.Errorf("allocation uses %.0f bits of %d budget", used, budget)
	}
}

func TestMonkeyStarvesLargestRunsUnderTightBudget(t *testing.T) {
	entries := []int64{100, 1_000_000}
	budget := int64(2000) // ~20 bits/key for the small run, nothing meaningful for the big one
	bits := Allocate(entries, budget)
	if bits[0] <= 10 {
		t.Errorf("small run should get a generous allocation, got %v", bits[0])
	}
	// The huge run's allocation falls below the 0.5 bits/key filter-build
	// threshold, i.e. it is effectively unfiltered.
	if bits[1] >= 0.5 {
		t.Errorf("huge run should be effectively unfiltered under tight budget, got %v", bits[1])
	}
}

func TestMonkeyEdgeCases(t *testing.T) {
	if got := Allocate(nil, 100); len(got) != 0 {
		t.Error("empty runs")
	}
	got := Allocate([]int64{100}, 0)
	if got[0] != 0 {
		t.Error("zero budget yields zero bits")
	}
	got = Allocate([]int64{0, 100}, 800)
	if got[0] != 0 || got[1] <= 0 {
		t.Errorf("zero-entry run must get no bits: %v", got)
	}
	if got := UniformAllocate([]int64{0, 0}, 100); got[0] != 0 {
		t.Error("uniform with no entries")
	}
}
