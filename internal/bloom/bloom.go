// Package bloom implements the Bloom filters that LSM engines attach to
// every sorted run, plus Monkey's optimal per-level memory allocation.
//
// A point lookup probes the filter of each run before touching the run's
// blocks; a negative filter answer skips the run entirely, which is the
// single most important read optimization in the LSM design space
// (tutorial §2.1.3). Filters are built at run granularity over user keys.
package bloom

import (
	"encoding/binary"
	"math"
)

// Hash64 is the 64-bit hash used throughout the filter packages. It is a
// 64-bit FNV-1a core with an avalanche finalizer (splitmix64's mixer) so
// that the high bits used for double hashing are well distributed.
func Hash64(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Rehash derives a new independent 64-bit hash from a previous one. It
// implements the "hash sharing" optimization (tutorial §2.1.3, [137]):
// the per-key hash is computed once per lookup and re-mixed per level,
// instead of re-hashing the key bytes for every run probed.
func Rehash(h uint64, level int) uint64 {
	h ^= uint64(level+1) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Filter is an immutable serialized Bloom filter. The layout is:
//
//	bits ... | k (1 byte) | numBits (4 bytes, little endian)
//
// A zero-length Filter behaves as "always maybe" (no filter).
type Filter []byte

// footerLen is the serialized footer size: k plus the bit count.
const footerLen = 5

// New builds a Bloom filter over the given 64-bit key hashes with the
// given number of bits per key. bitsPerKey may be fractional (Monkey
// assigns fractional budgets); values below 0.5 yield a nil filter,
// meaning the run is unfiltered.
func New(hashes []uint64, bitsPerKey float64) Filter {
	if len(hashes) == 0 || bitsPerKey < 0.5 {
		return nil
	}
	// Optimal number of probes: k = ln2 * bits/key.
	k := int(bitsPerKey * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := int(float64(len(hashes)) * bitsPerKey)
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	buf := make([]byte, nBytes+footerLen)
	for _, h := range hashes {
		addHash(buf[:nBytes], nBits, k, h)
	}
	buf[nBytes] = byte(k)
	binary.LittleEndian.PutUint32(buf[nBytes+1:], uint32(nBits))
	return buf
}

// NewFromKeys builds a filter directly from raw user keys.
func NewFromKeys(keys [][]byte, bitsPerKey float64) Filter {
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = Hash64(k)
	}
	return New(hashes, bitsPerKey)
}

// addHash sets the k probe bits for h using double hashing
// (Kirsch–Mitzenmacher): probe_i = h1 + i*h2.
func addHash(bits []byte, nBits, k int, h uint64) {
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	for i := 0; i < k; i++ {
		pos := (h1 + uint32(i)*h2) % uint32(nBits)
		bits[pos/8] |= 1 << (pos % 8)
	}
}

// MayContainHash reports whether the filter may contain the key with the
// given hash. False means the key is definitely absent.
func (f Filter) MayContainHash(h uint64) bool {
	if len(f) < footerLen+8 {
		return true // no filter: must not exclude anything
	}
	nBytes := len(f) - footerLen
	k := int(f[nBytes])
	nBits := int(binary.LittleEndian.Uint32(f[nBytes+1:]))
	if nBits > nBytes*8 || k == 0 {
		return true // corrupt footer: fail open
	}
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	for i := 0; i < k; i++ {
		pos := (h1 + uint32(i)*h2) % uint32(nBits)
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// MayContain reports whether the filter may contain key.
func (f Filter) MayContain(key []byte) bool {
	return f.MayContainHash(Hash64(key))
}

// FalsePositiveRate returns the theoretical false-positive rate of a
// Bloom filter with the given bits per key and optimal probe count:
// fpr = 2^(-ln2 * bits/key).
func FalsePositiveRate(bitsPerKey float64) float64 {
	if bitsPerKey <= 0 {
		return 1
	}
	return math.Exp(-math.Ln2 * math.Ln2 * bitsPerKey)
}

// BitsForFPR returns the bits per key needed to achieve the given
// false-positive rate (the inverse of FalsePositiveRate).
func BitsForFPR(fpr float64) float64 {
	if fpr >= 1 {
		return 0
	}
	if fpr <= 0 {
		return math.Inf(1)
	}
	return -math.Log(fpr) / (math.Ln2 * math.Ln2)
}
