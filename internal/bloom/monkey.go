package bloom

import "math"

// Monkey computes the optimal division of a fixed filter-memory budget
// across the runs of an LSM-tree (Dayan et al., SIGMOD 2017; tutorial
// §2.1.3 "Optimizing Memory Allocation").
//
// The expected number of superfluous I/Os for a zero-result point lookup
// is the sum of the false-positive rates of all runs. Minimizing that
// sum subject to a total memory budget yields false-positive rates
// proportional to the number of entries in each run: small (shallow)
// runs get more bits per key, the huge last level gets fewer — and under
// tight budgets the largest runs get no filter at all, because filtering
// them is the least memory-efficient way to save I/Os.

// Allocate distributes totalBits of filter memory across runs with the
// given entry counts. It returns the bits-per-key assigned to each run.
// Runs assigned 0 bits should be built without a filter.
//
// The allocation solves
//
//	minimize   Σ exp(-ln2² · b_i)            (sum of FPRs)
//	subject to Σ n_i · b_i = totalBits, b_i ≥ 0
//
// whose KKT solution sets fpr_i ∝ n_i, waterfilling away runs whose
// unconstrained fpr would exceed 1 (those get no filter).
func Allocate(entriesPerRun []int64, totalBits int64) []float64 {
	n := len(entriesPerRun)
	bits := make([]float64, n)
	if n == 0 || totalBits <= 0 {
		return bits
	}
	active := make([]bool, n)
	for i, e := range entriesPerRun {
		active[i] = e > 0
	}
	// Iteratively solve for the Lagrange multiplier, dropping runs whose
	// optimal FPR clamps at 1 (zero bits), until the solution is feasible.
	for {
		var sumN float64    // Σ n_i over active runs
		var sumNlnN float64 // Σ n_i ln n_i over active runs
		anyActive := false
		for i, e := range entriesPerRun {
			if !active[i] {
				continue
			}
			anyActive = true
			ne := float64(e)
			sumN += ne
			sumNlnN += ne * math.Log(ne)
		}
		if !anyActive {
			return bits
		}
		// With fpr_i = c·n_i, memory is Σ n_i·ln(1/(c·n_i))/ln2², so
		// ln(1/c)·Σn_i - Σ n_i·ln n_i = totalBits·ln2², giving ln(1/c).
		ln2sq := math.Ln2 * math.Ln2
		lnInvC := (float64(totalBits)*ln2sq + sumNlnN) / sumN
		refit := false
		for i, e := range entriesPerRun {
			if !active[i] {
				bits[i] = 0
				continue
			}
			// b_i = ln(1/fpr_i)/ln2² = (ln(1/c) - ln n_i)/ln2².
			b := (lnInvC - math.Log(float64(e))) / ln2sq
			if b <= 0 {
				active[i] = false
				refit = true
				continue
			}
			bits[i] = b
		}
		if !refit {
			return bits
		}
	}
}

// UniformAllocate is the baseline allocation: the same bits-per-key for
// every run (what an untuned engine does). Returned for comparison in
// experiment E3.
func UniformAllocate(entriesPerRun []int64, totalBits int64) []float64 {
	var total int64
	for _, e := range entriesPerRun {
		total += e
	}
	bits := make([]float64, len(entriesPerRun))
	if total == 0 || totalBits <= 0 {
		return bits
	}
	per := float64(totalBits) / float64(total)
	for i := range bits {
		bits[i] = per
	}
	return bits
}

// ExpectedLookupFPR returns the expected number of superfluous run
// probes for a zero-result point lookup given a per-run bits allocation:
// the sum over runs of their false-positive rates.
func ExpectedLookupFPR(bitsPerRun []float64) float64 {
	var sum float64
	for _, b := range bitsPerRun {
		sum += FalsePositiveRate(b)
	}
	return sum
}
