package admission

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// ParseQuota parses the -tenant-quota flag syntax: comma-separated
// key=value terms, e.g. "ops=500,bytes=256KiB,burst=2". Byte values
// accept K/M/G and KiB/MiB/GiB suffixes (both binary). Unknown keys
// are errors, not silently ignored.
func ParseQuota(s string) (Quota, error) {
	var q Quota
	s = strings.TrimSpace(s)
	if s == "" || s == "unlimited" {
		return q, nil
	}
	for _, term := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return Quota{}, fmt.Errorf("quota term %q: want key=value", term)
		}
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "ops":
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil || f < 0 {
				return Quota{}, fmt.Errorf("quota ops %q: want a non-negative number", v)
			}
			q.OpsPerSec = f
		case "bytes":
			n, err := parseBytes(strings.TrimSpace(v))
			if err != nil {
				return Quota{}, fmt.Errorf("quota bytes %q: %v", v, err)
			}
			q.BytesPerSec = n
		case "burst":
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil || f < 0 {
				return Quota{}, fmt.Errorf("quota burst %q: want seconds", v)
			}
			q.BurstSec = f
		default:
			return Quota{}, fmt.Errorf("unknown quota key %q (want ops, bytes, or burst)", k)
		}
	}
	return q, nil
}

// parseBytes parses "4096", "256K", "4MiB", "1g".
func parseBytes(s string) (float64, error) {
	mult := 1.0
	ls := strings.ToLower(s)
	for _, suf := range []struct {
		s string
		m float64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(ls, suf.s) {
			mult = suf.m
			s = s[:len(s)-len(suf.s)]
			break
		}
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("want a non-negative byte count")
	}
	return f * mult, nil
}

// ParseConfig parses the -quota-file JSON:
//
//	{
//	  "default": {"ops_per_sec": 500, "bytes_per_sec": 1048576},
//	  "global":  {"ops_per_sec": 5000},
//	  "tenants": {"acme": {"ops_per_sec": 2000}}
//	}
//
// Unknown fields are rejected so a typo'd quota never silently
// becomes "unlimited".
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("quota config: %v", err)
	}
	for name, q := range cfg.Tenants {
		if q.OpsPerSec < 0 || q.BytesPerSec < 0 || q.BurstSec < 0 {
			return Config{}, fmt.Errorf("quota config: tenant %q has a negative rate", name)
		}
	}
	return cfg, nil
}
