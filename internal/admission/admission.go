// Package admission implements multi-tenant admission control for the
// serving layer: key-prefix namespaces, token-bucket quotas (ops/s and
// bytes/s, per tenant and global), and the bookkeeping the server needs
// to convert overload into per-tenant throttling instead of global
// latency collapse.
//
// The tenancy model is deliberately minimal: a key's tenant is its
// prefix up to the first '/', and keys with no separator belong to the
// default tenant "". That makes tenancy a naming convention rather than
// a schema — existing single-tenant deployments are just the default
// tenant — while still giving the server a stable identity to meter,
// throttle, and report on.
//
// The package imports nothing from the rest of the module so every
// layer (core, server, cmds) can use it without cycles.
package admission

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the namespace of keys with no '/' separator.
const DefaultTenant = ""

// OtherTenant is the aggregate row that absorbs tenants evicted by the
// MaxTenants cardinality cap. It matches the label the engine profiler
// uses for the same purpose, so dashboards join the two cleanly.
const OtherTenant = "other"

// DefaultMaxTenants bounds the tenant map (and therefore the tenant
// label cardinality of /metrics) when Config.MaxTenants is zero. Keys
// are client-controlled, so an unbounded map would let a hostile key
// pattern grow server memory and metrics output without limit.
const DefaultMaxTenants = 256

// TenantOf returns the tenant that owns key: the prefix before the
// first '/', or DefaultTenant when the key has no separator. An empty
// prefix ("/x") is its own (empty-named-but-separated) namespace and
// also maps to DefaultTenant, so the default namespace is exactly the
// set of keys a pre-tenancy client could have written.
func TenantOf(key []byte) string {
	for i, b := range key {
		if b == '/' {
			return string(key[:i])
		}
	}
	return DefaultTenant
}

// TenantOfString is TenantOf for callers that already hold a string.
func TenantOfString(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i]
		}
	}
	return DefaultTenant
}

// Quota is a token-bucket rate limit. Zero fields mean "unlimited" for
// that dimension; the zero Quota admits everything.
type Quota struct {
	// OpsPerSec refills the operation bucket; one Get/Put/Delete/Scan
	// and each batch entry costs one token.
	OpsPerSec float64 `json:"ops_per_sec"`
	// BytesPerSec refills the byte bucket; writes charge key+value
	// bytes up front, reads charge the response size after the fact
	// (driving the bucket into debt, which delays the next admit).
	BytesPerSec float64 `json:"bytes_per_sec"`
	// BurstSec sizes both buckets in seconds of refill (capacity =
	// rate × burst). 0 means 1 second of burst.
	BurstSec float64 `json:"burst_sec,omitempty"`
}

// Unlimited reports whether q imposes no limit at all.
func (q Quota) Unlimited() bool { return q.OpsPerSec <= 0 && q.BytesPerSec <= 0 }

func (q Quota) burst() float64 {
	if q.BurstSec > 0 {
		return q.BurstSec
	}
	return 1
}

// bucket is one token bucket. Tokens may go negative (debt): post-hoc
// charging of response bytes and backpressure penalties both overdraw,
// and the debt must drain at the refill rate before the next admit.
type bucket struct {
	rate   float64 // tokens per second; <= 0 disables the bucket
	cap    float64 // maximum balance
	tokens float64
	lastNs int64
}

func newBucket(rate, burstSec float64) bucket {
	return bucket{rate: rate, cap: rate * burstSec, tokens: rate * burstSec}
}

func (b *bucket) refill(nowNs int64) {
	if b.rate <= 0 {
		return
	}
	dt := nowNs - b.lastNs
	if dt > 0 {
		b.tokens += b.rate * float64(dt) / 1e9
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
	}
	b.lastNs = nowNs
}

// need returns how long until the bucket holds n tokens (0 when it
// already does). Call refill first.
func (b *bucket) need(n float64) time.Duration {
	if b.rate <= 0 || b.tokens >= n {
		return 0
	}
	return time.Duration((n - b.tokens) / b.rate * 1e9)
}

// take unconditionally removes n tokens (may overdraw into debt).
func (b *bucket) take(n float64) {
	if b.rate <= 0 {
		return
	}
	b.tokens -= n
	// Debt is bounded at one extra burst below zero so a single huge
	// response cannot lock a tenant out for minutes.
	if b.tokens < -b.cap {
		b.tokens = -b.cap
	}
}

// Decision is the outcome of one Admit call.
type Decision struct {
	// OK means the request may proceed (tokens were taken).
	OK bool
	// RetryAfter is the suggested client wait before retrying a
	// rejected request — the time until the depleted bucket can cover
	// it. Zero when OK.
	RetryAfter time.Duration
	// Entered is set on the admit that transitions the tenant into
	// throttling (the server emits ThrottleBegin on it); Exited on the
	// first successful admit after throttling (ThrottleEnd).
	Entered bool
	Exited  bool
}

// TenantStats is one tenant's counters, for /metrics and stats output.
type TenantStats struct {
	Tenant    string
	Requests  int64 // admitted requests
	Throttled int64 // rejected (throttled) requests
	BytesIn   int64 // write bytes admitted
	BytesOut  int64 // response bytes charged
	// Throttling reports whether the tenant is currently in a
	// throttle episode (last admit was rejected).
	Throttling bool
}

type tenantState struct {
	ops   bucket
	bytes bucket

	requests   int64
	throttled  int64
	bytesIn    int64
	bytesOut   int64
	throttling bool
	// lastSeen orders eviction when the MaxTenants cap is hit: the
	// least-recently-admitted dynamic tenant folds into "other".
	lastSeen uint64
}

// Controller meters every request against its tenant's quota and a
// global quota. The zero-config controller (all quotas unlimited)
// still counts per-tenant traffic, so observability does not require
// enforcement. A nil *Controller admits everything and counts nothing.
type Controller struct {
	// NowNs returns the current monotonic time; settable for tests.
	nowNs func() int64

	mu       sync.Mutex
	def      Quota // per-tenant default
	perT     map[string]Quota
	global   bucket // global ops bucket
	globalB  bucket // global bytes bucket
	tenants  map[string]*tenantState
	hasQuota bool // any quota configured (enforcement on)

	maxTenants int
	seq        uint64      // admission clock for lastSeen
	other      TenantStats // counters folded from evicted tenants
}

// Config is the quota configuration: a per-tenant default, an optional
// global cap, and per-tenant overrides. It is the JSON shape of the
// -quota-file flag.
type Config struct {
	// Default applies to every tenant without an override.
	Default Quota `json:"default"`
	// Global caps the whole server across tenants (0 = unlimited).
	Global Quota `json:"global"`
	// Tenants maps tenant name → override quota.
	Tenants map[string]Quota `json:"tenants,omitempty"`
	// MaxTenants caps how many tenants the controller tracks
	// individually; beyond it the least-recently-seen dynamic tenant's
	// counters fold into the "other" row. Tenants with a configured
	// override are never evicted. 0 means DefaultMaxTenants.
	MaxTenants int `json:"max_tenants,omitempty"`
	// NowNs overrides the clock (tests only; not JSON).
	NowNs func() int64 `json:"-"`
}

// NewController builds a controller from cfg.
func NewController(cfg Config) *Controller {
	now := cfg.NowNs
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	c := &Controller{
		nowNs:      now,
		def:        cfg.Default,
		perT:       cfg.Tenants,
		tenants:    make(map[string]*tenantState),
		maxTenants: cfg.MaxTenants,
	}
	if c.maxTenants <= 0 {
		c.maxTenants = DefaultMaxTenants
	}
	t0 := now()
	c.global = newBucket(cfg.Global.OpsPerSec, cfg.Global.burst())
	c.globalB = newBucket(cfg.Global.BytesPerSec, cfg.Global.burst())
	c.global.lastNs, c.globalB.lastNs = t0, t0
	c.hasQuota = !cfg.Default.Unlimited() || !cfg.Global.Unlimited()
	for _, q := range cfg.Tenants {
		if !q.Unlimited() {
			c.hasQuota = true
		}
	}
	return c
}

// Enforcing reports whether any quota is configured (a controller with
// no quotas only counts).
func (c *Controller) Enforcing() bool {
	if c == nil {
		return false
	}
	return c.hasQuota
}

func (c *Controller) quotaFor(tenant string) Quota {
	if q, ok := c.perT[tenant]; ok {
		return q
	}
	return c.def
}

func (c *Controller) stateLocked(tenant string, nowNs int64) *tenantState {
	st, ok := c.tenants[tenant]
	if !ok {
		if len(c.tenants) >= c.maxTenants {
			c.evictLocked()
		}
		q := c.quotaFor(tenant)
		st = &tenantState{
			ops:   newBucket(q.OpsPerSec, q.burst()),
			bytes: newBucket(q.BytesPerSec, q.burst()),
		}
		st.ops.lastNs, st.bytes.lastNs = nowNs, nowNs
		c.tenants[tenant] = st
	}
	c.seq++
	st.lastSeen = c.seq
	return st
}

// evictLocked folds the least-recently-seen dynamic tenant into the
// "other" aggregate to make room for a newcomer. Tenants with an
// explicit quota override are configuration, not client-controlled
// cardinality, so they are exempt; if every tracked tenant is exempt
// the map grows past the cap by that configured amount, which is fine —
// the cap exists to bound attacker-chosen names, not config size.
func (c *Controller) evictLocked() {
	var victim string
	var vst *tenantState
	for name, st := range c.tenants {
		if _, configured := c.perT[name]; configured {
			continue
		}
		if vst == nil || st.lastSeen < vst.lastSeen {
			victim, vst = name, st
		}
	}
	if vst == nil {
		return
	}
	c.other.Requests += vst.requests
	c.other.Throttled += vst.throttled
	c.other.BytesIn += vst.bytesIn
	c.other.BytesOut += vst.bytesOut
	delete(c.tenants, victim)
}

// Admit decides whether tenant may spend ops operations and bytes
// write-bytes now. On acceptance the tokens are taken (tenant and
// global); on rejection nothing is taken and RetryAfter carries the
// wait hint. A nil controller admits everything.
func (c *Controller) Admit(tenant string, ops int, bytes int64) Decision {
	if c == nil {
		return Decision{OK: true}
	}
	now := c.nowNs()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant, now)
	st.ops.refill(now)
	st.bytes.refill(now)
	c.global.refill(now)
	c.globalB.refill(now)

	fOps, fBytes := float64(ops), float64(bytes)
	wait := st.ops.need(fOps)
	if w := st.bytes.need(fBytes); w > wait {
		wait = w
	}
	if w := c.global.need(fOps); w > wait {
		wait = w
	}
	if w := c.globalB.need(fBytes); w > wait {
		wait = w
	}
	if wait > 0 {
		st.throttled++
		d := Decision{RetryAfter: wait}
		if !st.throttling {
			st.throttling = true
			d.Entered = true
		}
		return d
	}
	st.ops.take(fOps)
	st.bytes.take(fBytes)
	c.global.take(fOps)
	c.globalB.take(fBytes)
	st.requests++
	st.bytesIn += bytes
	d := Decision{OK: true}
	if st.throttling {
		st.throttling = false
		d.Exited = true
	}
	return d
}

// Charge records bytes of response payload against tenant after the
// fact, overdrawing the byte buckets into debt. Reads and scans call
// it once the response size is known — the cost could not have been
// predicted at admit time.
func (c *Controller) Charge(tenant string, bytes int64) {
	if c == nil || bytes <= 0 {
		return
	}
	now := c.nowNs()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant, now)
	st.bytes.refill(now)
	c.globalB.refill(now)
	st.bytes.take(float64(bytes))
	c.globalB.take(float64(bytes))
	st.bytesOut += bytes
}

// Penalize drains d seconds' worth of tenant's refill from its buckets
// (down to debt), so a tenant whose writes just aborted on engine
// backpressure is held back for roughly d before re-admission. This is
// the stall-to-throttle conversion: the engine sheds the load, the
// admission layer keeps the shedding tenant-scoped.
func (c *Controller) Penalize(tenant string, d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	now := c.nowNs()
	sec := d.Seconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant, now)
	st.ops.refill(now)
	st.bytes.refill(now)
	st.ops.take(st.ops.rate * sec)
	st.bytes.take(st.bytes.rate * sec)
}

// Shed records one request rejected because of engine backpressure
// rather than quota, so per-tenant throttle counters and episode state
// cover both causes. It returns true when this shed is the transition
// into a throttle episode (the caller emits ThrottleBegin); the next
// successful Admit reports Exited as usual.
func (c *Controller) Shed(tenant string) (entered bool) {
	if c == nil {
		return false
	}
	now := c.nowNs()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant, now)
	st.throttled++
	if !st.throttling {
		st.throttling = true
		return true
	}
	return false
}

// Throttled reports tenant's rejected-request count.
func (c *Controller) Throttled(tenant string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.tenants[tenant]; ok {
		return st.throttled
	}
	return 0
}

// Stats returns a snapshot of every tracked tenant, sorted by tenant
// name (the default tenant "" sorts first). When the MaxTenants cap
// has evicted tenants, their folded counters appear as a final
// OtherTenant row.
func (c *Controller) Stats() []TenantStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]TenantStats, 0, len(c.tenants))
	for name, st := range c.tenants {
		out = append(out, TenantStats{
			Tenant:     name,
			Requests:   st.requests,
			Throttled:  st.throttled,
			BytesIn:    st.bytesIn,
			BytesOut:   st.bytesOut,
			Throttling: st.throttling,
		})
	}
	other := c.other
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	if other.Requests > 0 || other.Throttled > 0 {
		// The fold of every evicted tenant goes last, after the sorted
		// live rows, so readers see it as the remainder it is.
		other.Tenant = OtherTenant
		out = append(out, other)
	}
	return out
}

// RetryAfterMillis converts a RetryAfter hint to the wire's
// milliseconds, rounding up so a sub-millisecond wait is never
// reported as "retry immediately".
func RetryAfterMillis(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return uint64(ms)
}

// String renders a quota the way -tenant-quota parses it.
func (q Quota) String() string {
	if q.Unlimited() {
		return "unlimited"
	}
	return fmt.Sprintf("ops=%g,bytes=%g", q.OpsPerSec, q.BytesPerSec)
}
