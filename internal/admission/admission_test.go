package admission

import (
	"fmt"
	"testing"
	"time"
)

// TestTenantOf is the namespace-extraction contract: prefix before the
// first '/', default tenant for separator-less keys, and the edge
// shapes (empty key, empty prefix, multiple separators).
func TestTenantOf(t *testing.T) {
	cases := []struct {
		key  string
		want string
	}{
		{"acme/orders/42", "acme"},
		{"acme/", "acme"},
		{"a/b", "a"},
		{"plainkey", ""},   // no separator → default tenant
		{"", ""},           // empty key → default tenant
		{"/leading", ""},   // empty prefix → default tenant
		{"/", ""},          // bare separator → default tenant
		{"t1/t2/t3", "t1"}, // only the first separator counts
		{"tenant-x/k", "tenant-x"},
	}
	for _, c := range cases {
		if got := TenantOf([]byte(c.key)); got != c.want {
			t.Errorf("TenantOf(%q) = %q, want %q", c.key, got, c.want)
		}
		if got := TenantOfString(c.key); got != c.want {
			t.Errorf("TenantOfString(%q) = %q, want %q", c.key, got, c.want)
		}
	}
}

// fakeClock is a manually advanced nanosecond clock.
type fakeClock struct{ ns int64 }

func (f *fakeClock) now() int64              { return f.ns }
func (f *fakeClock) advance(d time.Duration) { f.ns += int64(d) }

func newTestController(cfg Config) (*Controller, *fakeClock) {
	clk := &fakeClock{ns: 1}
	cfg.NowNs = clk.now
	return NewController(cfg), clk
}

func TestAdmitOpsQuota(t *testing.T) {
	c, clk := newTestController(Config{Default: Quota{OpsPerSec: 10}})
	// Burst = 1s of refill = 10 ops available immediately.
	for i := 0; i < 10; i++ {
		if d := c.Admit("a", 1, 0); !d.OK {
			t.Fatalf("admit %d rejected, want accepted", i)
		}
	}
	d := c.Admit("a", 1, 0)
	if d.OK {
		t.Fatal("11th op admitted, want throttled")
	}
	if !d.Entered {
		t.Fatal("first rejection should report Entered")
	}
	if d.RetryAfter <= 0 || d.RetryAfter > 200*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms", d.RetryAfter)
	}
	// A second rejection is not a new episode.
	if d2 := c.Admit("a", 1, 0); d2.OK || d2.Entered {
		t.Fatalf("second rejection: %+v, want throttled without Entered", d2)
	}
	// After the hinted wait the op is admitted and the episode ends.
	clk.advance(d.RetryAfter + time.Millisecond)
	d3 := c.Admit("a", 1, 0)
	if !d3.OK || !d3.Exited {
		t.Fatalf("post-wait admit: %+v, want OK with Exited", d3)
	}
}

func TestAdmitBytesQuotaAndChargeDebt(t *testing.T) {
	c, clk := newTestController(Config{Default: Quota{BytesPerSec: 1000}})
	if d := c.Admit("a", 1, 800); !d.OK {
		t.Fatalf("800B write rejected: %+v", d)
	}
	if d := c.Admit("a", 1, 800); d.OK {
		t.Fatal("second 800B write admitted, want throttled (only 200 tokens left)")
	}
	// Post-hoc charge overdraws into debt...
	c.Charge("a", 500)
	clk.advance(time.Second) // refills 1000 → balance 200-500+1000 = 700
	if d := c.Admit("a", 1, 800); d.OK {
		t.Fatal("debt not applied: 800B admitted with only 700 tokens")
	}
	clk.advance(200 * time.Millisecond)
	if d := c.Admit("a", 1, 800); !d.OK {
		t.Fatalf("800B write rejected after debt drained: %+v", d)
	}
}

func TestTenantIsolation(t *testing.T) {
	c, _ := newTestController(Config{Default: Quota{OpsPerSec: 5}})
	for i := 0; i < 5; i++ {
		if d := c.Admit("hog", 1, 0); !d.OK {
			t.Fatalf("hog admit %d rejected", i)
		}
	}
	if d := c.Admit("hog", 1, 0); d.OK {
		t.Fatal("hog over quota admitted")
	}
	// The quiet tenant's bucket is untouched.
	for i := 0; i < 5; i++ {
		if d := c.Admit("quiet", 1, 0); !d.OK {
			t.Fatalf("quiet tenant rejected while hog throttled: admit %d", i)
		}
	}
}

func TestGlobalQuota(t *testing.T) {
	c, _ := newTestController(Config{Global: Quota{OpsPerSec: 4}})
	if !c.Enforcing() {
		t.Fatal("global quota should enforce")
	}
	for i := 0; i < 4; i++ {
		if d := c.Admit("t"+string(rune('a'+i)), 1, 0); !d.OK {
			t.Fatalf("admit %d rejected under global quota", i)
		}
	}
	if d := c.Admit("te", 1, 0); d.OK {
		t.Fatal("5th op admitted past the global cap")
	}
}

func TestPerTenantOverride(t *testing.T) {
	c, _ := newTestController(Config{
		Default: Quota{OpsPerSec: 2},
		Tenants: map[string]Quota{"vip": {OpsPerSec: 100}},
	})
	for i := 0; i < 50; i++ {
		if d := c.Admit("vip", 1, 0); !d.OK {
			t.Fatalf("vip admit %d rejected", i)
		}
	}
	c.Admit("pleb", 1, 0)
	c.Admit("pleb", 1, 0)
	if d := c.Admit("pleb", 1, 0); d.OK {
		t.Fatal("default-quota tenant admitted past 2 ops")
	}
}

func TestPenalize(t *testing.T) {
	c, clk := newTestController(Config{Default: Quota{OpsPerSec: 10}})
	if d := c.Admit("a", 1, 0); !d.OK {
		t.Fatal("first op rejected")
	}
	c.Penalize("a", time.Second) // drain 10 tokens → debt
	d := c.Admit("a", 1, 0)
	if d.OK {
		t.Fatal("op admitted immediately after penalty")
	}
	clk.advance(2 * time.Second)
	if d := c.Admit("a", 1, 0); !d.OK {
		t.Fatalf("op rejected after penalty drained: %+v", d)
	}
}

func TestStatsAndCounters(t *testing.T) {
	c, _ := newTestController(Config{Default: Quota{OpsPerSec: 1}})
	c.Admit("b", 1, 10)
	c.Admit("b", 1, 10) // throttled
	c.Charge("b", 7)
	c.Admit("a", 1, 0)
	st := c.Stats()
	if len(st) != 2 || st[0].Tenant != "a" || st[1].Tenant != "b" {
		t.Fatalf("stats order: %+v", st)
	}
	b := st[1]
	if b.Requests != 1 || b.Throttled != 1 || b.BytesIn != 10 || b.BytesOut != 7 || !b.Throttling {
		t.Fatalf("tenant b stats: %+v", b)
	}
	if c.Throttled("b") != 1 {
		t.Fatalf("Throttled(b) = %d, want 1", c.Throttled("b"))
	}
}

func TestNilAndUnlimitedController(t *testing.T) {
	var nilC *Controller
	if d := nilC.Admit("x", 1, 1<<30); !d.OK {
		t.Fatal("nil controller rejected a request")
	}
	nilC.Charge("x", 1)
	nilC.Penalize("x", time.Hour)
	if nilC.Stats() != nil || nilC.Enforcing() {
		t.Fatal("nil controller should report nothing")
	}

	c, _ := newTestController(Config{})
	if c.Enforcing() {
		t.Fatal("zero-config controller should not enforce")
	}
	for i := 0; i < 10000; i++ {
		if d := c.Admit("x", 1, 1<<20); !d.OK {
			t.Fatal("unlimited controller throttled")
		}
	}
	if st := c.Stats(); len(st) != 1 || st[0].Requests != 10000 {
		t.Fatalf("unlimited controller still counts: %+v", st)
	}
}

func TestParseQuota(t *testing.T) {
	cases := []struct {
		in      string
		want    Quota
		wantErr bool
	}{
		{"", Quota{}, false},
		{"unlimited", Quota{}, false},
		{"ops=500", Quota{OpsPerSec: 500}, false},
		{"ops=500,bytes=1024", Quota{OpsPerSec: 500, BytesPerSec: 1024}, false},
		{"bytes=256KiB", Quota{BytesPerSec: 256 << 10}, false},
		{"bytes=4m", Quota{BytesPerSec: 4 << 20}, false},
		{"ops=10, bytes=1G, burst=2", Quota{OpsPerSec: 10, BytesPerSec: 1 << 30, BurstSec: 2}, false},
		{"ops=-1", Quota{}, true},
		{"nope=1", Quota{}, true},
		{"ops", Quota{}, true},
		{"bytes=12parsecs", Quota{}, true},
	}
	for _, c := range cases {
		got, err := ParseQuota(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseQuota(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseQuota(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"default": {"ops_per_sec": 500},
		"global":  {"ops_per_sec": 5000, "bytes_per_sec": 1048576},
		"tenants": {"acme": {"ops_per_sec": 2000, "burst_sec": 2}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default.OpsPerSec != 500 || cfg.Global.BytesPerSec != 1048576 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if q := cfg.Tenants["acme"]; q.OpsPerSec != 2000 || q.BurstSec != 2 {
		t.Fatalf("acme override: %+v", q)
	}
	if _, err := ParseConfig([]byte(`{"defualt": {}}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
	if _, err := ParseConfig([]byte(`{"tenants": {"x": {"ops_per_sec": -5}}}`)); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestRetryAfterMillis(t *testing.T) {
	if got := RetryAfterMillis(0); got != 0 {
		t.Fatalf("RetryAfterMillis(0) = %d", got)
	}
	if got := RetryAfterMillis(100 * time.Microsecond); got != 1 {
		t.Fatalf("sub-millisecond wait = %d, want 1", got)
	}
	if got := RetryAfterMillis(1500 * time.Millisecond); got != 1500 {
		t.Fatalf("RetryAfterMillis(1.5s) = %d, want 1500", got)
	}
}

// TestMaxTenantsCap is the cardinality regression test: a hostile
// flood of distinct key prefixes must hold the tenant map (and so the
// /metrics label set) at the configured cap, folding evicted tenants
// into the trailing "other" row, while configured tenants survive the
// churn.
func TestMaxTenantsCap(t *testing.T) {
	c, _ := newTestController(Config{
		MaxTenants: 8,
		Tenants:    map[string]Quota{"vip": {OpsPerSec: 1000}},
	})
	if d := c.Admit("vip", 1, 10); !d.OK {
		t.Fatal("vip admit rejected")
	}
	for i := 0; i < 10000; i++ {
		tenant := fmt.Sprintf("t%05d", i)
		if d := c.Admit(tenant, 1, 100); !d.OK {
			t.Fatalf("unlimited admit of %q rejected", tenant)
		}
	}
	c.mu.Lock()
	n := len(c.tenants)
	c.mu.Unlock()
	if n > 8 {
		t.Fatalf("tenant map grew to %d entries, cap is 8", n)
	}
	st := c.Stats()
	if len(st) > 9 { // cap rows + the "other" fold
		t.Fatalf("Stats returned %d rows, want <= 9", len(st))
	}
	last := st[len(st)-1]
	if last.Tenant != OtherTenant {
		t.Fatalf("last Stats row = %q, want %q", last.Tenant, OtherTenant)
	}
	// Every evicted tenant's single request must be accounted for:
	// requests across live rows plus the fold equal total admits.
	var total int64
	for _, row := range st {
		total += row.Requests
	}
	if total != 10001 {
		t.Fatalf("requests across rows = %d, want 10001", total)
	}
	// The configured tenant is exempt from eviction despite being the
	// least recently seen by a margin of 10000 admits.
	found := false
	for _, row := range st {
		if row.Tenant == "vip" {
			found = true
			if row.Requests != 1 {
				t.Fatalf("vip requests = %d, want 1", row.Requests)
			}
		}
	}
	if !found {
		t.Fatal("configured tenant evicted by the cardinality cap")
	}
}

// TestMaxTenantsDefault: the zero config still gets a bound.
func TestMaxTenantsDefault(t *testing.T) {
	c, _ := newTestController(Config{})
	for i := 0; i < 3*DefaultMaxTenants; i++ {
		c.Admit(fmt.Sprintf("d%05d", i), 1, 0)
	}
	c.mu.Lock()
	n := len(c.tenants)
	c.mu.Unlock()
	if n > DefaultMaxTenants {
		t.Fatalf("tenant map grew to %d entries, default cap is %d", n, DefaultMaxTenants)
	}
}
