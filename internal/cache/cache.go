// Package cache implements the sharded LRU block cache of tutorial
// §2.1.3. Commercial LSM engines keep recently read data blocks (and
// optionally filter/index blocks) in memory; this cache is shared across
// all open tables, keyed by (file number, block offset), and charged by
// approximate block size.
package cache

import (
	"container/list"
	"sync"
)

// shardCount must be a power of two.
const shardCount = 16

// Key identifies a cached block.
type Key struct {
	FileNum uint64
	Offset  uint64
}

type entry struct {
	key    Key
	value  any
	charge int
}

// Stats receives cache events; the engine wires this to its metrics.
type Stats interface {
	CacheAccess(hit bool)
}

type shard struct {
	mu       sync.Mutex
	capacity int
	used     int
	ll       *list.List // front = most recent
	items    map[Key]*list.Element
}

// get is the read fast path: one lock acquisition, no defer — this
// runs once per block access on every point lookup, and the defer'd
// unlock is measurable there.
func (s *shard) get(k Key) (any, bool) {
	s.mu.Lock()
	el, ok := s.items[k]
	var v any
	if ok {
		s.ll.MoveToFront(el)
		v = el.Value.(*entry).value
	}
	s.mu.Unlock()
	return v, ok
}

func (s *shard) add(k Key, v any, charge int) {
	if charge > s.capacity {
		return // larger than the shard: never cacheable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.used += charge - e.charge
		e.value, e.charge = v, charge
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, value: v, charge: charge})
		s.items[k] = el
		s.used += charge
	}
	for s.used > s.capacity {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		s.ll.Remove(oldest)
		delete(s.items, e.key)
		s.used -= e.charge
	}
}

func (s *shard) evictFile(fileNum uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.FileNum == fileNum {
			s.ll.Remove(el)
			delete(s.items, e.key)
			s.used -= e.charge
		}
		el = next
	}
}

func (s *shard) usedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Cache is a sharded LRU cache charged in bytes.
type Cache struct {
	shards [shardCount]*shard
	stats  Stats
}

// New returns a cache with the given total capacity in bytes. A
// capacity below shardCount bytes effectively disables caching.
func New(capacityBytes int) *Cache {
	c := &Cache{}
	per := capacityBytes / shardCount
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[Key]*list.Element),
		}
	}
	return c
}

// SetStats attaches a stats sink; safe to call once before use.
func (c *Cache) SetStats(s Stats) { c.stats = s }

func (c *Cache) shardFor(fileNum, offset uint64) *shard {
	h := fileNum*0x9e3779b97f4a7c15 ^ offset*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	return c.shards[h&(shardCount-1)]
}

// Get implements sstable.BlockCache.
func (c *Cache) Get(fileNum, offset uint64) (any, bool) {
	v, ok := c.shardFor(fileNum, offset).get(Key{fileNum, offset})
	if c.stats != nil {
		c.stats.CacheAccess(ok)
	}
	return v, ok
}

// Add implements sstable.BlockCache.
func (c *Cache) Add(fileNum, offset uint64, value any, charge int) {
	c.shardFor(fileNum, offset).add(Key{fileNum, offset}, value, charge)
}

// Contains reports whether the block is cached without disturbing LRU
// order or stats (used by tests and the prefetcher).
func (c *Cache) Contains(fileNum, offset uint64) bool {
	s := c.shardFor(fileNum, offset)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[Key{fileNum, offset}]
	return ok
}

// EvictFile drops every cached block of a deleted file. Without
// compaction-aware prefetching, this is exactly the hot-data eviction
// that Leaper addresses (tutorial §2.1.3, [128]).
func (c *Cache) EvictFile(fileNum uint64) {
	for _, s := range c.shards {
		s.evictFile(fileNum)
	}
}

// UsedBytes returns the current total charge across shards.
func (c *Cache) UsedBytes() int {
	total := 0
	for _, s := range c.shards {
		total += s.usedBytes()
	}
	return total
}
