package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddBasic(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 0); ok {
		t.Error("empty cache hit")
	}
	c.Add(1, 0, "block-a", 100)
	v, ok := c.Get(1, 0)
	if !ok || v.(string) != "block-a" {
		t.Errorf("get: %v %v", v, ok)
	}
	if c.UsedBytes() != 100 {
		t.Errorf("used %d", c.UsedBytes())
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New(1 << 20)
	c.Add(1, 0, "old", 100)
	c.Add(1, 0, "new", 200)
	v, _ := c.Get(1, 0)
	if v.(string) != "new" {
		t.Error("update lost")
	}
	if c.UsedBytes() != 200 {
		t.Errorf("used %d after update", c.UsedBytes())
	}
}

func TestLRUEviction(t *testing.T) {
	// Single-shard-sized cache behaviour: use keys that map to the same
	// shard by keeping fileNum/offset constant except offset multiples
	// chosen to collide. Easier: capacity small enough that each shard
	// holds ~2 entries and verify global bounds.
	c := New(16 * 250) // 250 bytes per shard
	for i := uint64(0); i < 100; i++ {
		c.Add(i, 0, i, 100)
	}
	if used := c.UsedBytes(); used > 16*250 {
		t.Errorf("used %d exceeds capacity", used)
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	c := New(16 * 250) // each shard fits 2 x 100-byte entries
	// Find three keys in the same shard.
	var ks []Key
	target := c.shardFor(0, 0)
	for f := uint64(0); len(ks) < 3; f++ {
		if c.shardFor(f, 0) == target {
			ks = append(ks, Key{f, 0})
		}
	}
	c.Add(ks[0].FileNum, 0, "a", 100)
	c.Add(ks[1].FileNum, 0, "b", 100)
	c.Get(ks[0].FileNum, 0) // touch a: now b is LRU
	c.Add(ks[2].FileNum, 0, "c", 100)
	if _, ok := c.Get(ks[1].FileNum, 0); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get(ks[0].FileNum, 0); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get(ks[2].FileNum, 0); !ok {
		t.Error("c should be present")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(16 * 100)
	c.Add(1, 0, "huge", 1000)
	if _, ok := c.Get(1, 0); ok {
		t.Error("oversized entry must not be cached")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for off := uint64(0); off < 10; off++ {
		c.Add(7, off*4096, off, 100)
		c.Add(8, off*4096, off, 100)
	}
	c.EvictFile(7)
	for off := uint64(0); off < 10; off++ {
		if c.Contains(7, off*4096) {
			t.Fatal("file 7 block survived eviction")
		}
		if !c.Contains(8, off*4096) {
			t.Fatal("file 8 block wrongly evicted")
		}
	}
}

type countingStats struct {
	mu           sync.Mutex
	hits, misses int
}

func (s *countingStats) CacheAccess(hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
}

func TestStatsReporting(t *testing.T) {
	c := New(1 << 20)
	s := &countingStats{}
	c.SetStats(s)
	c.Get(1, 0)
	c.Add(1, 0, "v", 10)
	c.Get(1, 0)
	if s.hits != 1 || s.misses != 1 {
		t.Errorf("hits=%d misses=%d", s.hits, s.misses)
	}
}

func TestContainsDoesNotCountOrPromote(t *testing.T) {
	c := New(1 << 20)
	s := &countingStats{}
	c.SetStats(s)
	c.Add(1, 0, "v", 10)
	c.Contains(1, 0)
	if s.hits+s.misses != 0 {
		t.Error("Contains must not touch stats")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(i % 100)
				c.Add(k, uint64(w), fmt.Sprintf("%d", i), 64)
				c.Get(k, uint64(w))
			}
		}(w)
	}
	wg.Wait()
	if c.UsedBytes() > 1<<16 {
		t.Error("capacity exceeded under concurrency")
	}
}
