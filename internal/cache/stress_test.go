package cache

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// checkShardInvariants walks a shard under its lock and verifies the
// structural invariants the concurrent paths must preserve: the charge
// accounting matches the resident entries (and is never negative), the
// LRU list and the index map describe the same set, and the list has no
// duplicated keys (a same-key race in add would manifest as two
// elements for one key, leaking charge forever).
func checkShardInvariants(t *testing.T, s *shard) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used < 0 {
		t.Errorf("shard used charge is negative: %d", s.used)
	}
	if s.used > s.capacity {
		t.Errorf("shard used charge %d exceeds capacity %d", s.used, s.capacity)
	}
	if s.ll.Len() != len(s.items) {
		t.Errorf("LRU list has %d elements but index has %d", s.ll.Len(), len(s.items))
	}
	sum := 0
	seen := make(map[Key]bool, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if seen[e.key] {
			t.Errorf("key %v appears twice in the LRU list", e.key)
		}
		seen[e.key] = true
		if s.items[e.key] != el {
			t.Errorf("index for key %v does not point at its list element", e.key)
		}
		sum += e.charge
	}
	if sum != s.used {
		t.Errorf("sum of resident charges %d != accounted used %d", sum, s.used)
	}
}

// TestCacheConcurrentStress hammers a small cache with adds, gets,
// whole-file evictions, and UsedBytes sampling from many goroutines.
// Run under -race this exercises every lock path; the explicit checks
// pin the accounting invariants (charge never negative, never above
// capacity, list/map always in sync).
func TestCacheConcurrentStress(t *testing.T) {
	const (
		workers  = 8
		opsEach  = 5000
		files    = 8
		offsets  = 64
		capacity = 16 << 10 // 1 KiB per shard: constant eviction pressure
	)
	c := New(capacity)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				file := uint64(rng.Intn(files))
				off := uint64(rng.Intn(offsets)) * 512
				switch rng.Intn(10) {
				case 0:
					c.EvictFile(file)
				case 1, 2, 3:
					c.Add(file, off, seed, 64+rng.Intn(512))
				default:
					c.Get(file, off)
				}
			}
		}(int64(w))
	}
	// Sample the public accounting while the storm is running: the
	// total must never go negative even though each shard is only
	// momentarily consistent.
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for !stop.Load() {
			if u := c.UsedBytes(); u < 0 {
				t.Errorf("UsedBytes went negative mid-stress: %d", u)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	samplerWG.Wait()
	for _, s := range c.shards {
		checkShardInvariants(t, s)
	}
}

// TestCacheConcurrentSameKeyAdd has every goroutine add the SAME key
// with different charges while others read it. Whatever interleaving
// wins, the shard must end with exactly one resident element for the
// key, charge accounting equal to that element's charge, and an intact
// LRU list.
func TestCacheConcurrentSameKeyAdd(t *testing.T) {
	const (
		workers = 8
		rounds  = 3000
	)
	c := New(1 << 20)
	const file, off = 7, 4096

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					c.Add(file, off, w, 100+(w+i)%200)
				} else {
					if v, ok := c.Get(file, off); ok {
						if _, isInt := v.(int); !isInt {
							t.Errorf("cached value has wrong type: %T", v)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.shardFor(file, off)
	checkShardInvariants(t, s)
	s.mu.Lock()
	el, ok := s.items[Key{file, off}]
	if !ok {
		s.mu.Unlock()
		t.Fatal("key vanished after concurrent same-key adds")
	}
	e := el.Value.(*entry)
	if s.ll.Front() != el {
		t.Error("most recently added key is not at the LRU front")
	}
	if s.used != e.charge {
		t.Errorf("shard charge %d != sole entry charge %d", s.used, e.charge)
	}
	s.mu.Unlock()
}
