package compaction

import "testing"

func TestParseStrategyFullForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"leveling", "leveling/partial/min-overlap"},
		{"tiering(4)", "tiering(4)/partial/min-overlap"},
		{"tiering", "tiering(4)/partial/min-overlap"}, // default K
		{"lazy-leveling(6)/full", "lazy-leveling(6)/full/min-overlap"},
		{"tiered-first(8)/partial/round-robin", "tiered-first(8)/partial/round-robin"},
		{"leveling/full/tombstone-density", "leveling/full/tombstone-density"},
		{"per-level(3,2,1)/partial/oldest", "per-level(3,2,1)/partial/oldest"},
		{"  tiering(2) / full / oldest ", "tiering(2)/full/oldest"},
	}
	for _, c := range cases {
		s, err := ParseStrategy(c.in)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", c.in, err)
			continue
		}
		if s.String() != c.want {
			t.Errorf("ParseStrategy(%q) = %q, want %q", c.in, s.String(), c.want)
		}
	}
}

func TestParseStrategyRoundtrip(t *testing.T) {
	for _, in := range []string{
		"leveling/partial/min-overlap",
		"tiering(7)/full/oldest",
		"lazy-leveling(3)/partial/tombstone-density",
		"per-level(4,4,2,1)/partial/round-robin",
	} {
		s, err := ParseStrategy(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		s2, err := ParseStrategy(s.String())
		if err != nil || s2.String() != s.String() {
			t.Errorf("roundtrip %q -> %q -> %q (%v)", in, s.String(), s2.String(), err)
		}
	}
}

func TestParseStrategyErrors(t *testing.T) {
	for _, in := range []string{
		"", "bogus", "leveling(3)", "tiering(x)", "tiering(0)",
		"leveling/sometimes", "leveling/partial/psychic",
		"leveling/partial/min-overlap/extra", "per-level()", "per-level(1,x)",
		"tiering(4",
	} {
		if _, err := ParseStrategy(in); err == nil {
			t.Errorf("ParseStrategy(%q) should fail", in)
		}
	}
}

func TestStrategyLayoutBehaviour(t *testing.T) {
	s, err := ParseStrategy("per-level(3,2)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Layout.RunCapacity(0, 4) != 3 || s.Layout.RunCapacity(1, 4) != 2 || s.Layout.RunCapacity(2, 4) != 1 {
		t.Error("per-level capacities wrong")
	}
}
