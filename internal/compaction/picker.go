package compaction

import (
	"bytes"
	"fmt"

	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
)

// Granularity is primitive (iii): how much of a level moves at once.
type Granularity int

const (
	// GranularityFull compacts every file of the overflowing level
	// (AsterixDB-style; simple but bursty).
	GranularityFull Granularity = iota
	// GranularityPartial compacts one file at a time, amortizing I/O
	// (RocksDB/LevelDB-style).
	GranularityPartial
)

func (g Granularity) String() string {
	if g == GranularityFull {
		return "full"
	}
	return "partial"
}

// MovePolicy is primitive (iv): which file a partial compaction picks.
type MovePolicy int

const (
	// PickMinOverlap chooses the file with the least overlapping bytes
	// in the target level, minimizing merge work per byte moved.
	PickMinOverlap MovePolicy = iota
	// PickRoundRobin cycles through the key space (LevelDB's original
	// policy).
	PickRoundRobin
	// PickOldest chooses the file with the smallest maximum sequence
	// number (coldest data first).
	PickOldest
	// PickMaxTombstoneDensity chooses the file with the highest
	// tombstone density, purging deletes earliest (Lethe's policy for
	// delete-intensive workloads).
	PickMaxTombstoneDensity
)

func (p MovePolicy) String() string {
	switch p {
	case PickMinOverlap:
		return "min-overlap"
	case PickRoundRobin:
		return "round-robin"
	case PickOldest:
		return "oldest"
	case PickMaxTombstoneDensity:
		return "tombstone-density"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Reason labels why a job was scheduled, for stats and experiments.
type Reason string

// Compaction trigger reasons — primitive (i).
const (
	ReasonRunCount     Reason = "run-count"     // level holds too many runs
	ReasonLevelSize    Reason = "level-size"    // leveled level over byte capacity
	ReasonTombstoneAge Reason = "tombstone-age" // FADE: a tombstone exceeded its persistence deadline
	ReasonManual       Reason = "manual"        // user-requested full compaction
)

// Options configures the picker — together these knobs span the
// tutorial's compaction design space.
type Options struct {
	// NumLevels is the number of on-disk levels.
	NumLevels int
	// SizeRatio is T: the capacity growth factor between levels.
	SizeRatio int
	// BaseLevelBytes is level 1's byte capacity; level i holds
	// BaseLevelBytes * T^(i-1).
	BaseLevelBytes uint64
	// Layout is primitive (ii).
	Layout Layout
	// Granularity is primitive (iii); it applies to leveled levels
	// (tiered levels always merge whole runs).
	Granularity Granularity
	// MovePolicy is primitive (iv); used with GranularityPartial.
	MovePolicy MovePolicy
	// TombstoneAgeThresholdNs enables the FADE trigger when positive: a
	// file whose oldest tombstone is older than this must compact.
	TombstoneAgeThresholdNs int64
	// NowNs supplies the current time for age triggers.
	NowNs func() int64
}

// LevelCapacityBytes returns the byte capacity of a level (level >= 1).
func (o *Options) LevelCapacityBytes(level int) uint64 {
	c := o.BaseLevelBytes
	for i := 1; i < level; i++ {
		c *= uint64(o.SizeRatio)
	}
	return c
}

// Job describes one compaction: merge Inputs and write the result into
// ToLevel. If TargetTiered, the output becomes a new run appended to
// ToLevel without reading ToLevel's existing runs; otherwise the
// overlapping files of ToLevel's single run are part of Inputs and are
// replaced.
type Job struct {
	FromLevel, ToLevel int
	// Inputs maps level → files to merge (and remove).
	Inputs map[int][]*manifest.FileMeta
	// TargetTiered marks tiered-target jobs (append as new run).
	TargetTiered bool
	// AllOfTargetLevel reports that Inputs covers every file currently
	// in ToLevel. Tombstones may be purged at the tree's last level only
	// when no resident run survives beside the output (always true for
	// leveled targets, whose untouched files cannot share keys with the
	// inputs; for tiered targets it requires whole-level coverage).
	AllOfTargetLevel bool
	Reason           Reason
}

// InputBytes returns the job's total input size.
func (j *Job) InputBytes() uint64 {
	var s uint64
	for _, files := range j.Inputs {
		for _, f := range files {
			s += f.Size
		}
	}
	return s
}

// NumInputFiles returns the number of files consumed.
func (j *Job) NumInputFiles() int {
	n := 0
	for _, files := range j.Inputs {
		n += len(files)
	}
	return n
}

// Picker selects compaction jobs. It carries the round-robin cursors,
// which are advisory state: losing them (e.g. on restart) only resets
// the rotation.
type Picker struct {
	opts    Options
	cursors [][]byte // per-level round-robin cursor (last picked largest key)
}

// NewPicker returns a Picker for the given options.
func NewPicker(opts Options) *Picker {
	return &Picker{opts: opts, cursors: make([][]byte, opts.NumLevels)}
}

// Options returns the picker's configuration.
func (p *Picker) Options() Options { return p.opts }

// Pick returns the next compaction job for v, or nil if the tree
// satisfies its shape invariants. Priority order: tombstone-age
// violations (a deadline), then level 0, then deeper levels.
func (p *Picker) Pick(v *manifest.Version) *Job {
	return p.PickExcluding(v, nil)
}

// PickExcluding returns the highest-priority job whose levels are all
// admissible (busy == nil admits everything). Skipping conflicted jobs
// instead of returning nothing lets concurrent workers compact disjoint
// levels while the hottest level is already being worked on.
func (p *Picker) PickExcluding(v *manifest.Version, busy func(level int) bool) *Job {
	admissible := func(j *Job) bool {
		if j == nil {
			return false
		}
		if busy == nil {
			return true
		}
		if busy(j.ToLevel) {
			return false
		}
		for lvl := range j.Inputs {
			if busy(lvl) {
				return false
			}
		}
		return true
	}
	if j := p.pickTombstoneAge(v); j != nil && admissible(j) {
		return j
	}
	for level := 0; level < p.opts.NumLevels-1; level++ {
		if j := p.pickLevel(v, level); admissible(j) {
			return j
		}
	}
	return nil
}

// pickTombstoneAge enforces the FADE deadline: any file whose oldest
// tombstone has exceeded the persistence threshold is compacted into
// the next level immediately, regardless of level fullness (Lethe,
// tutorial §2.3.3).
func (p *Picker) pickTombstoneAge(v *manifest.Version) *Job {
	if p.opts.TombstoneAgeThresholdNs <= 0 || p.opts.NowNs == nil {
		return nil
	}
	now := p.opts.NowNs()
	for level := 0; level < p.opts.NumLevels; level++ {
		l := v.Levels[level]
		var expired *manifest.FileMeta
		for _, r := range l.Runs {
			for _, f := range r.Files {
				if f.OldestTombstoneNs > 0 && now-f.OldestTombstoneNs >= p.opts.TombstoneAgeThresholdNs {
					expired = f
					break
				}
			}
			if expired != nil {
				break
			}
		}
		if expired == nil {
			continue
		}
		// Recency safety: moving one file out of a level with multiple
		// (overlapping) runs would sink newer data below older data for
		// the same keys. Such levels merge wholesale.
		var allFiles []*manifest.FileMeta
		for _, r := range l.Runs {
			allFiles = append(allFiles, r.Files...)
		}
		if level == p.opts.NumLevels-1 {
			// Bottom level: rewrite the whole level in place; tombstones
			// have nothing below (or beside, post-merge) to shadow, so
			// the rewrite purges them.
			return &Job{
				FromLevel: level, ToLevel: level,
				Inputs:           map[int][]*manifest.FileMeta{level: allFiles},
				AllOfTargetLevel: true,
				Reason:           ReasonTombstoneAge,
			}
		}
		if len(l.Runs) > 1 {
			return p.buildJob(v, level, allFiles, ReasonTombstoneAge)
		}
		// A single-run (leveled) level has non-overlapping files: the
		// expired file alone can move down safely.
		return p.buildJob(v, level, []*manifest.FileMeta{expired}, ReasonTombstoneAge)
	}
	return nil
}

// pickLevel checks one level against its layout's run capacity and its
// byte capacity and schedules the appropriate merge.
func (p *Picker) pickLevel(v *manifest.Version, level int) *Job {
	l := v.Levels[level]
	if len(l.Runs) == 0 {
		return nil
	}
	runCap := p.opts.Layout.RunCapacity(level, p.opts.NumLevels)

	// Run-count trigger: the level has accumulated its quota of runs,
	// and all of them merge together into the next level (a whole-run,
	// tiering-style merge). Level 0 receives flushed runs so even a
	// leveled L0 (runCap 1) fires as soon as one run lands; leveled
	// deeper levels receive merged output directly and only fire here
	// defensively if the invariant was somehow violated.
	var runCountTrigger bool
	switch {
	case level == 0 || runCap > 1:
		runCountTrigger = len(l.Runs) >= runCap
	default:
		runCountTrigger = len(l.Runs) > 1
	}
	if runCountTrigger {
		var files []*manifest.FileMeta
		for _, r := range l.Runs {
			files = append(files, r.Files...)
		}
		return p.buildJob(v, level, files, ReasonRunCount)
	}

	// Size trigger applies to levels with byte capacities (level >= 1).
	if level >= 1 && l.Size() > p.opts.LevelCapacityBytes(level) {
		files := l.Runs[0].Files
		if len(l.Runs) == 1 && p.opts.Granularity == GranularityPartial {
			files = []*manifest.FileMeta{p.pickFile(v, level, l.Runs[0].Files)}
		} else if len(l.Runs) > 1 {
			files = nil
			for _, r := range l.Runs {
				files = append(files, r.Files...)
			}
		}
		return p.buildJob(v, level, files, ReasonLevelSize)
	}
	return nil
}

// pickFile applies the data-movement policy to choose one file.
func (p *Picker) pickFile(v *manifest.Version, level int, files []*manifest.FileMeta) *manifest.FileMeta {
	switch p.opts.MovePolicy {
	case PickRoundRobin:
		cur := p.cursors[level]
		for _, f := range files {
			if cur == nil || bytes.Compare(f.Smallest, cur) > 0 {
				p.cursors[level] = f.Largest
				return f
			}
		}
		p.cursors[level] = files[0].Largest
		return files[0]

	case PickOldest:
		best := files[0]
		for _, f := range files[1:] {
			if f.LargestSeq < best.LargestSeq {
				best = f
			}
		}
		return best

	case PickMaxTombstoneDensity:
		best := files[0]
		for _, f := range files[1:] {
			if f.TombstoneDensity() > best.TombstoneDensity() {
				best = f
			}
		}
		// With no tombstones anywhere, fall back to min-overlap.
		if best.TombstoneDensity() == 0 {
			return p.minOverlapFile(v, level, files)
		}
		return best

	default: // PickMinOverlap
		return p.minOverlapFile(v, level, files)
	}
}

// minOverlapFile returns the file whose overlapping bytes in the next
// level are smallest.
func (p *Picker) minOverlapFile(v *manifest.Version, level int, files []*manifest.FileMeta) *manifest.FileMeta {
	next := level + 1
	best := files[0]
	bestOverlap := int64(-1)
	for _, f := range files {
		var ov int64
		if next < v.NumLevels() {
			for _, r := range v.Levels[next].Runs {
				for _, of := range r.Overlapping(f.KeyRange()) {
					ov += int64(of.Size)
				}
			}
		}
		if bestOverlap < 0 || ov < bestOverlap {
			best, bestOverlap = f, ov
		}
	}
	return best
}

// buildJob assembles a job moving files from level to level+1,
// including the target level's overlapping files when the target is
// leveled.
func (p *Picker) buildJob(v *manifest.Version, level int, files []*manifest.FileMeta, reason Reason) *Job {
	to := level + 1
	job := &Job{
		FromLevel: level,
		ToLevel:   to,
		Inputs:    map[int][]*manifest.FileMeta{level: files},
		Reason:    reason,
	}
	targetCap := p.opts.Layout.RunCapacity(to, p.opts.NumLevels)
	if targetCap > 1 {
		// Tiered target: append merged output as a fresh run. No target
		// data is read — this is exactly why tiering writes less.
		job.TargetTiered = true
		job.AllOfTargetLevel = v.Levels[to].NumFiles() == 0
		return job
	}
	// Leveled target: merge with the overlapping files of its run.
	var kr kv.KeyRange
	for _, f := range files {
		kr.Extend(f.Smallest)
		kr.Extend(f.Largest)
	}
	for _, r := range v.Levels[to].Runs {
		job.Inputs[to] = append(job.Inputs[to], r.Overlapping(kr)...)
	}
	job.AllOfTargetLevel = len(job.Inputs[to]) == v.Levels[to].NumFiles()
	return job
}

// ManualJob builds a job that merges every file in the tree into the
// last level — a full manual compaction.
func (p *Picker) ManualJob(v *manifest.Version) *Job {
	job := &Job{
		FromLevel: 0,
		ToLevel:   p.opts.NumLevels - 1,
		Inputs:    map[int][]*manifest.FileMeta{},
		Reason:    ReasonManual,
	}
	n := 0
	for level, l := range v.Levels {
		for _, r := range l.Runs {
			job.Inputs[level] = append(job.Inputs[level], r.Files...)
			n += len(r.Files)
		}
	}
	if n == 0 {
		return nil
	}
	job.TargetTiered = p.opts.Layout.RunCapacity(job.ToLevel, p.opts.NumLevels) > 1
	job.AllOfTargetLevel = true // a manual job consumes the whole tree
	return job
}
