// Package compaction implements the LSM compaction design space of
// tutorial §2.2.4 (after Sarkar et al., VLDB 2021): a compaction
// strategy is the composition of four first-order primitives —
//
//	(i)   the trigger (what makes a level compact),
//	(ii)  the data layout (how many runs a level may hold),
//	(iii) the granularity (whole level vs. one file at a time), and
//	(iv)  the data-movement policy (which file to pick).
//
// Classic strategies fall out as points in this space: leveling is
// {size trigger, 1 run/level, partial, min-overlap}; tiering is
// {run-count trigger, T runs/level, full, n/a}; Dostoevsky's lazy
// leveling tieres the intermediate levels and levels the last; Lethe's
// FADE adds a tombstone-age trigger and a tombstone-density movement
// policy.
//
// The Picker in this package is pure: it inspects a manifest.Version
// and returns a Job describing what to merge; the engine executes jobs.
package compaction

import (
	"fmt"
	"strings"
)

// Layout determines how many sorted runs each level may accumulate
// before it must compact — primitive (ii).
type Layout interface {
	// RunCapacity returns the maximum number of runs level may hold,
	// given the total number of levels. A capacity of 1 makes the level
	// "leveled"; more makes it "tiered".
	RunCapacity(level, numLevels int) int
	// Name identifies the layout in stats and experiment tables.
	Name() string
}

// Leveling allows a single run per level: every incoming run is greedily
// merged (classic LevelDB/RocksDB L1+ behaviour). Lowest read cost and
// space amplification, highest write amplification.
type Leveling struct{}

// RunCapacity implements Layout.
func (Leveling) RunCapacity(level, numLevels int) int { return 1 }

// Name implements Layout.
func (Leveling) Name() string { return "leveling" }

// Tiering lets every level accumulate K runs before merging them into
// one run pushed to the next level (Cassandra's size-tiered
// compaction). Lowest write amplification, highest read cost and space
// amplification.
type Tiering struct {
	// K is the number of runs a level accumulates; typically the size
	// ratio T.
	K int
}

// RunCapacity implements Layout.
func (t Tiering) RunCapacity(level, numLevels int) int {
	if t.K < 2 {
		return 2
	}
	return t.K
}

// Name implements Layout.
func (t Tiering) Name() string { return fmt.Sprintf("tiering(%d)", t.K) }

// LazyLeveling tieres every intermediate level and levels only the
// largest one (Dostoevsky): it keeps tiering's cheap writes where data
// is small and merges greedily only where most data lives, which is
// where leveling's read/space benefits matter.
type LazyLeveling struct {
	K int // run capacity of the intermediate levels
}

// RunCapacity implements Layout.
func (l LazyLeveling) RunCapacity(level, numLevels int) int {
	if level >= numLevels-1 {
		return 1
	}
	if l.K < 2 {
		return 2
	}
	return l.K
}

// Name implements Layout.
func (l LazyLeveling) Name() string { return fmt.Sprintf("lazy-leveling(%d)", l.K) }

// TieredFirst tieres only level 0 and levels the rest — RocksDB's
// default hybrid, which absorbs ingestion bursts in L0 without paying
// tiering's read cost in the large levels (tutorial §2.2.2).
type TieredFirst struct {
	K0 int // run capacity of level 0
}

// RunCapacity implements Layout.
func (t TieredFirst) RunCapacity(level, numLevels int) int {
	if level == 0 {
		if t.K0 < 2 {
			return 4
		}
		return t.K0
	}
	return 1
}

// Name implements Layout.
func (t TieredFirst) Name() string { return fmt.Sprintf("tiered-first(%d)", t.K0) }

// PerLevel assigns an explicit run capacity to every level — the fully
// general point of the design space (LSM-Bush-style arbitrary run
// counts, tutorial §2.3.1).
type PerLevel struct {
	Caps []int // Caps[i] is level i's run capacity; missing levels get 1
}

// RunCapacity implements Layout.
func (p PerLevel) RunCapacity(level, numLevels int) int {
	if level < len(p.Caps) && p.Caps[level] >= 1 {
		return p.Caps[level]
	}
	return 1
}

// Name implements Layout.
func (p PerLevel) Name() string {
	parts := make([]string, len(p.Caps))
	for i, c := range p.Caps {
		parts[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("per-level(%s)", strings.Join(parts, ","))
}
