package compaction

import (
	"fmt"
	"testing"

	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
)

func fm(num uint64, smallest, largest string, size uint64) *manifest.FileMeta {
	return &manifest.FileMeta{
		Num: num, Size: size,
		Smallest: []byte(smallest), Largest: []byte(largest),
		NumEntries: size / 10, LargestSeq: kv.SeqNum(num),
	}
}

func opts(layout Layout) Options {
	return Options{
		NumLevels:      4,
		SizeRatio:      4,
		BaseLevelBytes: 1000,
		Layout:         layout,
		Granularity:    GranularityPartial,
		MovePolicy:     PickMinOverlap,
	}
}

func TestLayoutRunCapacities(t *testing.T) {
	cases := []struct {
		layout Layout
		level  int
		want   int
	}{
		{Leveling{}, 0, 1},
		{Leveling{}, 3, 1},
		{Tiering{K: 4}, 0, 4},
		{Tiering{K: 4}, 3, 4},
		{Tiering{K: 0}, 1, 2}, // clamped
		{LazyLeveling{K: 4}, 0, 4},
		{LazyLeveling{K: 4}, 2, 4},
		{LazyLeveling{K: 4}, 3, 1}, // last level leveled
		{TieredFirst{K0: 4}, 0, 4},
		{TieredFirst{K0: 4}, 1, 1},
		{TieredFirst{K0: 0}, 0, 4}, // default
		{PerLevel{Caps: []int{3, 2}}, 0, 3},
		{PerLevel{Caps: []int{3, 2}}, 1, 2},
		{PerLevel{Caps: []int{3, 2}}, 2, 1},
	}
	for _, c := range cases {
		if got := c.layout.RunCapacity(c.level, 4); got != c.want {
			t.Errorf("%s level %d: cap %d, want %d", c.layout.Name(), c.level, got, c.want)
		}
	}
}

func TestLevelCapacityBytes(t *testing.T) {
	o := opts(Leveling{})
	if o.LevelCapacityBytes(1) != 1000 || o.LevelCapacityBytes(2) != 4000 || o.LevelCapacityBytes(3) != 16000 {
		t.Errorf("capacities: %d %d %d",
			o.LevelCapacityBytes(1), o.LevelCapacityBytes(2), o.LevelCapacityBytes(3))
	}
}

func TestPickNothingWhenHealthy(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 4}))
	v := manifest.NewVersion(4)
	v = v.PushRun(0, &manifest.Run{Files: []*manifest.FileMeta{fm(1, "a", "m", 100)}})
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{fm(2, "a", "z", 500)}})
	if j := p.Pick(v); j != nil {
		t.Errorf("healthy tree scheduled %+v", j)
	}
}

func TestPickL0RunCount(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 3}))
	v := manifest.NewVersion(4)
	for i := 1; i <= 3; i++ {
		v = v.PushRun(0, &manifest.Run{Files: []*manifest.FileMeta{fm(uint64(i), "a", "m", 100)}})
	}
	// L1 has one overlapping and one non-overlapping file.
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{fm(10, "a", "k", 400), fm(11, "n", "z", 400)}})
	j := p.Pick(v)
	if j == nil || j.Reason != ReasonRunCount || j.FromLevel != 0 || j.ToLevel != 1 {
		t.Fatalf("job %+v", j)
	}
	if len(j.Inputs[0]) != 3 {
		t.Errorf("should take all 3 L0 runs, got %d", len(j.Inputs[0]))
	}
	// Leveled target: overlapping file 10 joins, 11 does not.
	if len(j.Inputs[1]) != 1 || j.Inputs[1][0].Num != 10 {
		t.Errorf("target inputs %v", j.Inputs[1])
	}
	if j.TargetTiered {
		t.Error("L1 is leveled under tiered-first")
	}
}

func TestPickTieredTargetReadsNoTargetFiles(t *testing.T) {
	p := NewPicker(opts(Tiering{K: 3}))
	v := manifest.NewVersion(4)
	for i := 1; i <= 3; i++ {
		v = v.PushRun(0, &manifest.Run{Files: []*manifest.FileMeta{fm(uint64(i), "a", "m", 100)}})
	}
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{fm(10, "a", "z", 400)}})
	j := p.Pick(v)
	if j == nil || !j.TargetTiered {
		t.Fatalf("job %+v", j)
	}
	if len(j.Inputs[1]) != 0 {
		t.Error("tiered target must not read target level files")
	}
	if j.InputBytes() != 300 || j.NumInputFiles() != 3 {
		t.Errorf("input accounting: %d bytes %d files", j.InputBytes(), j.NumInputFiles())
	}
}

func TestPickSizeTriggerPartial(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 4}))
	v := manifest.NewVersion(4)
	// L1 capacity is 1000; two files totaling 1200 overflow it.
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{
		fm(1, "a", "f", 600), fm(2, "g", "p", 600),
	}})
	// L2: file 1 overlaps 900 bytes, file 2 overlaps nothing.
	v = v.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{fm(3, "a", "e", 900)}})
	j := p.Pick(v)
	if j == nil || j.Reason != ReasonLevelSize || j.FromLevel != 1 {
		t.Fatalf("job %+v", j)
	}
	if len(j.Inputs[1]) != 1 || j.Inputs[1][0].Num != 2 {
		t.Errorf("min-overlap should pick file 2, got %v", j.Inputs[1])
	}
	if len(j.Inputs[2]) != 0 {
		t.Errorf("file 2 overlaps nothing in L2, got %v", j.Inputs[2])
	}
}

func TestPickSizeTriggerFullGranularity(t *testing.T) {
	o := opts(TieredFirst{K0: 4})
	o.Granularity = GranularityFull
	p := NewPicker(o)
	v := manifest.NewVersion(4)
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{
		fm(1, "a", "f", 600), fm(2, "g", "p", 600),
	}})
	j := p.Pick(v)
	if j == nil || len(j.Inputs[1]) != 2 {
		t.Fatalf("full granularity must take the whole level: %+v", j)
	}
}

func TestMovePolicies(t *testing.T) {
	files := []*manifest.FileMeta{
		{Num: 1, Smallest: []byte("a"), Largest: []byte("c"), Size: 100, NumEntries: 100, LargestSeq: 50},
		{Num: 2, Smallest: []byte("d"), Largest: []byte("f"), Size: 100, NumEntries: 100, LargestSeq: 10,
			NumTombstones: 60},
		{Num: 3, Smallest: []byte("g"), Largest: []byte("i"), Size: 100, NumEntries: 100, LargestSeq: 90},
	}
	v := manifest.NewVersion(4)
	v = v.PushRun(1, &manifest.Run{Files: files})
	// L2 overlap: heavy under file 1, light under file 3, none under 2.
	v = v.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{
		fm(10, "a", "c", 900), fm(11, "g", "h", 50),
	}})

	pick := func(policy MovePolicy) uint64 {
		o := opts(TieredFirst{K0: 4})
		o.MovePolicy = policy
		p := NewPicker(o)
		return p.pickFile(v, 1, files).Num
	}
	if got := pick(PickMinOverlap); got != 2 {
		t.Errorf("min-overlap picked %d", got)
	}
	if got := pick(PickOldest); got != 2 { // LargestSeq 10 is oldest
		t.Errorf("oldest picked %d", got)
	}
	if got := pick(PickMaxTombstoneDensity); got != 2 {
		t.Errorf("tombstone-density picked %d", got)
	}
}

func TestTombstoneDensityFallsBackToMinOverlap(t *testing.T) {
	files := []*manifest.FileMeta{
		{Num: 1, Smallest: []byte("a"), Largest: []byte("c"), Size: 100, NumEntries: 100},
		{Num: 2, Smallest: []byte("d"), Largest: []byte("f"), Size: 100, NumEntries: 100},
	}
	v := manifest.NewVersion(3)
	v = v.PushRun(1, &manifest.Run{Files: files})
	v = v.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{fm(10, "a", "c", 500)}})
	o := opts(TieredFirst{K0: 4})
	o.MovePolicy = PickMaxTombstoneDensity
	p := NewPicker(o)
	if got := p.pickFile(v, 1, files).Num; got != 2 {
		t.Errorf("no-tombstone fallback picked %d", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	files := []*manifest.FileMeta{
		fm(1, "a", "c", 100), fm(2, "d", "f", 100), fm(3, "g", "i", 100),
	}
	v := manifest.NewVersion(3)
	v = v.PushRun(1, &manifest.Run{Files: files})
	o := opts(TieredFirst{K0: 4})
	o.MovePolicy = PickRoundRobin
	p := NewPicker(o)
	var picked []uint64
	for i := 0; i < 4; i++ {
		picked = append(picked, p.pickFile(v, 1, files).Num)
	}
	want := []uint64{1, 2, 3, 1}
	if fmt.Sprint(picked) != fmt.Sprint(want) {
		t.Errorf("round robin order %v, want %v", picked, want)
	}
}

func TestTombstoneAgeTrigger(t *testing.T) {
	now := int64(100e9)
	o := opts(TieredFirst{K0: 4})
	o.TombstoneAgeThresholdNs = int64(10e9)
	o.NowNs = func() int64 { return now }
	p := NewPicker(o)

	v := manifest.NewVersion(4)
	young := fm(1, "a", "c", 100)
	young.OldestTombstoneNs = now - int64(5e9)
	old := fm(2, "d", "f", 100)
	old.OldestTombstoneNs = now - int64(50e9)
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{young, old}})

	j := p.Pick(v)
	if j == nil || j.Reason != ReasonTombstoneAge {
		t.Fatalf("job %+v", j)
	}
	if len(j.Inputs[1]) != 1 || j.Inputs[1][0].Num != 2 {
		t.Errorf("should pick the expired file: %v", j.Inputs[1])
	}
}

func TestTombstoneAgeBottomLevelSelfCompaction(t *testing.T) {
	now := int64(100e9)
	o := opts(TieredFirst{K0: 4})
	o.TombstoneAgeThresholdNs = int64(10e9)
	o.NowNs = func() int64 { return now }
	p := NewPicker(o)

	v := manifest.NewVersion(4)
	f := fm(1, "a", "c", 100)
	f.OldestTombstoneNs = now - int64(50e9)
	v = v.PushRun(3, &manifest.Run{Files: []*manifest.FileMeta{f}})
	j := p.Pick(v)
	if j == nil || j.FromLevel != 3 || j.ToLevel != 3 {
		t.Fatalf("bottom-level job %+v", j)
	}
}

func TestTombstoneAgeDisabled(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 4}))
	v := manifest.NewVersion(4)
	f := fm(1, "a", "c", 100)
	f.OldestTombstoneNs = 1
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{f}})
	if j := p.Pick(v); j != nil {
		t.Errorf("age trigger disabled but got %+v", j)
	}
}

func TestLazyLevelingShape(t *testing.T) {
	// Intermediate levels tier; the pick for an intermediate overflow
	// must target a tiered append unless moving into the last level.
	o := opts(LazyLeveling{K: 3})
	p := NewPicker(o)
	v := manifest.NewVersion(4)
	for i := 1; i <= 3; i++ {
		v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{fm(uint64(i), "a", "m", 100)}})
	}
	j := p.Pick(v)
	if j == nil || !j.TargetTiered || j.ToLevel != 2 {
		t.Fatalf("intermediate merge %+v", j)
	}
	// Overflow of the second-to-last level targets the leveled last.
	v2 := manifest.NewVersion(4)
	for i := 1; i <= 3; i++ {
		v2 = v2.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{fm(uint64(i), "a", "m", 100)}})
	}
	j2 := p.Pick(v2)
	if j2 == nil || j2.TargetTiered || j2.ToLevel != 3 {
		t.Fatalf("last-level merge %+v", j2)
	}
}

func TestManualJob(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 4}))
	v := manifest.NewVersion(4)
	if p.ManualJob(v) != nil {
		t.Error("manual job on empty tree")
	}
	v = v.PushRun(0, &manifest.Run{Files: []*manifest.FileMeta{fm(1, "a", "c", 1)}})
	v = v.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{fm(2, "d", "f", 1)}})
	j := p.ManualJob(v)
	if j == nil || j.ToLevel != 3 || j.NumInputFiles() != 2 || j.Reason != ReasonManual {
		t.Fatalf("manual job %+v", j)
	}
}

func TestApplyCompactionLeveledMergesIntoRun(t *testing.T) {
	v := manifest.NewVersion(3)
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{
		fm(1, "a", "c", 100), fm(2, "j", "l", 100), fm(3, "x", "z", 100),
	}})
	// Replace file 2 with two new files in the gap.
	nv := v.ApplyCompaction(map[int][]uint64{1: {2}}, 1,
		[]*manifest.FileMeta{fm(4, "e", "g", 50), fm(5, "h", "k", 50)}, false)
	if len(nv.Levels[1].Runs) != 1 {
		t.Fatalf("leveled level must keep one run, has %d", len(nv.Levels[1].Runs))
	}
	files := nv.Levels[1].Runs[0].Files
	wantOrder := []uint64{1, 4, 5, 3}
	if len(files) != 4 {
		t.Fatalf("files %v", files)
	}
	for i, f := range files {
		if f.Num != wantOrder[i] {
			t.Errorf("position %d: file %d, want %d", i, f.Num, wantOrder[i])
		}
	}
	if err := nv.Check(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestApplyCompactionTieredPrependsRun(t *testing.T) {
	v := manifest.NewVersion(3)
	v = v.PushRun(1, &manifest.Run{Files: []*manifest.FileMeta{fm(1, "a", "z", 100)}})
	nv := v.ApplyCompaction(nil, 1, []*manifest.FileMeta{fm(2, "a", "z", 100)}, true)
	if len(nv.Levels[1].Runs) != 2 {
		t.Fatalf("tiered install: %d runs", len(nv.Levels[1].Runs))
	}
	// The new run carries data pushed down from the shallower level,
	// which is newer than the resident run: it must be Runs[0].
	if nv.Levels[1].Runs[0].Files[0].Num != 2 {
		t.Error("compaction output must be the newest run of a tiered target")
	}
	if nv.Levels[1].Runs[1].Files[0].Num != 1 {
		t.Error("resident run must follow the new one")
	}
}

func TestPickExcludingSkipsBusyLevels(t *testing.T) {
	p := NewPicker(opts(TieredFirst{K0: 3}))
	v := manifest.NewVersion(4)
	// L0 over its run quota (highest priority) and L2 over its byte
	// capacity at the same time.
	for i := 1; i <= 3; i++ {
		v = v.PushRun(0, &manifest.Run{Files: []*manifest.FileMeta{fm(uint64(i), "a", "m", 100)}})
	}
	v = v.PushRun(2, &manifest.Run{Files: []*manifest.FileMeta{
		fm(10, "a", "f", 3000), fm(11, "g", "p", 3000),
	}})

	// Unconstrained: the L0 job wins.
	j := p.PickExcluding(v, nil)
	if j == nil || j.FromLevel != 0 {
		t.Fatalf("top job %+v", j)
	}
	// With level 1 busy (the L0 job's target), the picker must offer the
	// L2 overflow instead of nothing.
	busy := map[int]bool{1: true}
	j = p.PickExcluding(v, func(l int) bool { return busy[l] })
	if j == nil || j.FromLevel != 2 {
		t.Fatalf("fallback job %+v", j)
	}
	// Everything busy: nil.
	j = p.PickExcluding(v, func(l int) bool { return true })
	if j != nil {
		t.Fatalf("all-busy should yield nil, got %+v", j)
	}
}
