package compaction

import (
	"fmt"
	"strconv"
	"strings"
)

// Strategy is a textual encoding of the four compaction primitives,
// after the "Compactionary" framing of [111]: any strategy is a point
// in the primitive space, written as
//
//	<layout>/<granularity>/<move-policy>
//
// where layout is one of
//
//	leveling | tiering(K) | lazy-leveling(K) | tiered-first(K) | per-level(a,b,c,...)
//
// granularity is full | partial, and move-policy is one of
//
//	min-overlap | round-robin | oldest | tombstone-density
//
// Trailing components may be omitted (defaults: partial, min-overlap).
// Examples: "tiering(4)", "leveling/full", "lazy-leveling(6)/partial/tombstone-density".
type Strategy struct {
	Layout      Layout
	Granularity Granularity
	MovePolicy  MovePolicy
}

// String renders the strategy in its parseable form.
func (s Strategy) String() string {
	return fmt.Sprintf("%s/%s/%s", s.Layout.Name(), s.Granularity, s.MovePolicy)
}

// ParseStrategy parses the textual strategy form.
func ParseStrategy(text string) (Strategy, error) {
	s := Strategy{Granularity: GranularityPartial, MovePolicy: PickMinOverlap}
	parts := strings.Split(strings.TrimSpace(text), "/")
	if len(parts) == 0 || parts[0] == "" {
		return s, fmt.Errorf("compaction: empty strategy")
	}
	layout, err := parseLayout(strings.TrimSpace(parts[0]))
	if err != nil {
		return s, err
	}
	s.Layout = layout
	if len(parts) > 1 {
		switch g := strings.TrimSpace(parts[1]); g {
		case "full":
			s.Granularity = GranularityFull
		case "partial", "":
			s.Granularity = GranularityPartial
		default:
			return s, fmt.Errorf("compaction: unknown granularity %q", g)
		}
	}
	if len(parts) > 2 {
		switch p := strings.TrimSpace(parts[2]); p {
		case "min-overlap", "":
			s.MovePolicy = PickMinOverlap
		case "round-robin":
			s.MovePolicy = PickRoundRobin
		case "oldest":
			s.MovePolicy = PickOldest
		case "tombstone-density":
			s.MovePolicy = PickMaxTombstoneDensity
		default:
			return s, fmt.Errorf("compaction: unknown move policy %q", p)
		}
	}
	if len(parts) > 3 {
		return s, fmt.Errorf("compaction: too many strategy components in %q", text)
	}
	return s, nil
}

// parseLayout parses the layout component.
func parseLayout(text string) (Layout, error) {
	name := text
	var arg string
	if i := strings.IndexByte(text, '('); i >= 0 {
		if !strings.HasSuffix(text, ")") {
			return nil, fmt.Errorf("compaction: unbalanced parenthesis in %q", text)
		}
		name = text[:i]
		arg = text[i+1 : len(text)-1]
	}
	atoi := func(def int) (int, error) {
		if arg == "" {
			return def, nil
		}
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("compaction: bad layout parameter %q", arg)
		}
		return v, nil
	}
	switch name {
	case "leveling":
		if arg != "" {
			return nil, fmt.Errorf("compaction: leveling takes no parameter")
		}
		return Leveling{}, nil
	case "tiering":
		k, err := atoi(4)
		if err != nil {
			return nil, err
		}
		return Tiering{K: k}, nil
	case "lazy-leveling":
		k, err := atoi(4)
		if err != nil {
			return nil, err
		}
		return LazyLeveling{K: k}, nil
	case "tiered-first":
		k, err := atoi(4)
		if err != nil {
			return nil, err
		}
		return TieredFirst{K0: k}, nil
	case "per-level":
		if arg == "" {
			return nil, fmt.Errorf("compaction: per-level needs run capacities")
		}
		var caps []int
		for _, p := range strings.Split(arg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("compaction: bad per-level capacity %q", p)
			}
			caps = append(caps, v)
		}
		return PerLevel{Caps: caps}, nil
	}
	return nil, fmt.Errorf("compaction: unknown layout %q", name)
}
