package server_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
)

func TestGracefulDrainCompletesInFlight(t *testing.T) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "db")
	opts.SyncWAL = true
	fs.SetSyncDelay(200 * time.Microsecond) // make each commit group cost something
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	futures := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futures[i] = p.Put([]byte(fmt.Sprintf("drain%04d", i)), []byte("v"))
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the burst reach the server before draining, so there is
	// genuinely in-flight work for the drain to complete. (Dial's ping
	// already counted one request, hence > 1.)
	waitFor(t, "server to start processing writes", func() bool {
		return srv.Metrics().NetRequests > 1
	})

	// Drain while the burst is in flight. Requests the server already
	// read must complete and be acknowledged before connections close.
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}

	acked := 0
	for _, f := range futures {
		if f.Err() == nil {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("drain acknowledged none of the in-flight writes")
	}
	// Every acknowledged write is durable in the engine.
	for i := 0; i < acked; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("drain%04d", i))); err != nil {
			t.Fatalf("acked write drain%04d lost: %v", i, err)
		}
	}
	if got := srv.ConnCount(); got != 0 {
		t.Fatalf("ConnCount after drain = %d", got)
	}

	// New work is refused: the listener is closed and fresh dials fail
	// or are cut immediately.
	cl2 := client.New(client.Options{Addr: ln.Addr().String(), MaxRetries: 1, RetryBackoff: time.Millisecond})
	if err := cl2.Ping(); err == nil {
		t.Fatal("ping succeeded against a drained server")
	}
	cl2.Close()
	cl.Close()

	// A second Shutdown is a no-op, and Serve after Shutdown refuses.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln2); !errors.Is(err, server.ErrShutdown) {
		t.Fatalf("Serve after Shutdown: %v", err)
	}
}

func TestDrainKicksIdleConnections(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "conn registration", func() bool { return srv.ConnCount() == 1 })
	start := time.Now()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The idle connection is kicked via its read deadline, not waited
	// out; drain should be near-instant.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("drain of an idle connection took %v", d)
	}
	if got := srv.ConnCount(); got != 0 {
		t.Fatalf("ConnCount = %d", got)
	}
}

// TestPipeliningStressReadYourWrites hammers the server with N
// connections of mixed pipelined GET/PUT/DELETE and verifies each
// connection observes its own writes in order. Run with -race.
func TestPipeliningStressReadYourWrites(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	const (
		workers = 8
		ops     = 150
	)
	cl, err := client.Dial(addr, client.Options{PoolSize: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := cl.Pipeline()
			if err != nil {
				errs <- err
				return
			}
			key := []byte(fmt.Sprintf("stress-w%d", w))
			for i := 0; i < ops; i++ {
				val := []byte(fmt.Sprintf("w%d-i%d", w, i))
				put := p.Put(key, val)
				get := p.Get(key) // pipelined behind the put, same conn
				if err := put.Err(); err != nil {
					errs <- fmt.Errorf("w%d put %d: %w", w, i, err)
					return
				}
				got, err := get.Value()
				if err != nil {
					errs <- fmt.Errorf("w%d get %d: %w", w, i, err)
					return
				}
				if string(got) != string(val) {
					errs <- fmt.Errorf("w%d op %d: read-your-writes violated: got %q want %q", w, i, got, val)
					return
				}
				if i%25 == 24 {
					del := p.Delete(key)
					gone := p.Get(key)
					if err := del.Err(); err != nil {
						errs <- fmt.Errorf("w%d del %d: %w", w, i, err)
						return
					}
					if _, err := gone.Value(); !errors.Is(err, client.ErrNotFound) {
						errs <- fmt.Errorf("w%d op %d: get after pipelined delete: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	m := srv.Metrics()
	if want := int64(workers); m.ConnsOpened < want {
		t.Fatalf("expected >=%d connections, got %d", want, m.ConnsOpened)
	}
}

// TestNetworkWritesFeedCommitGroups is the acceptance e2e: 8 client
// connections issuing synchronous PUTs against a SyncWAL server must
// coalesce into shared commit groups (mean group size > 1) and beat a
// single connection's throughput by at least 2x.
func TestNetworkWritesFeedCommitGroups(t *testing.T) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "db")
	opts.SyncWAL = true
	ring := events.NewRing(1 << 14)
	opts.EventListener = ring
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Model a real fsync: without a sync cost, group commit has nothing
	// to amortize and the measurement is pure scheduler noise.
	fs.SetSyncDelay(300 * time.Microsecond)

	srv := server.New(db, server.Options{EventListener: ring})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Shutdown(5 * time.Second)
		<-serveDone
	}()

	const perConn = 150

	// run measures synchronous (one-at-a-time per connection) PUT
	// throughput over conns connections, returning ops/sec.
	run := func(conns int, tag string) float64 {
		cl, err := client.Dial(ln.Addr().String(), client.Options{PoolSize: conns})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				p, err := cl.Pipeline()
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < perConn; i++ {
					// Synchronous: wait for each ack before the next put.
					if err := p.Put([]byte(fmt.Sprintf("%s-c%02d-%04d", tag, c, i)), []byte("v")).Err(); err != nil {
						t.Errorf("conn %d put %d: %v", c, i, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		return float64(conns*perConn) / time.Since(start).Seconds()
	}

	before := db.Metrics()
	seqRate := run(1, "seq")
	mid := db.Metrics()
	parRate := run(8, "par")
	after := db.Metrics()

	// Sanity: the sequential phase must not itself have coalesced
	// (one conn, synchronous puts → one batch per group).
	seqGroups := mid.CommitGroups - before.CommitGroups
	seqBatches := mid.CommitBatches - before.CommitBatches
	if seqGroups == 0 || seqBatches != seqGroups {
		t.Fatalf("sequential phase: groups=%d batches=%d", seqGroups, seqBatches)
	}

	groups := after.CommitGroups - mid.CommitGroups
	batches := after.CommitBatches - mid.CommitBatches
	if groups == 0 {
		t.Fatal("parallel phase produced no commit groups")
	}
	meanGroup := float64(batches) / float64(groups)
	t.Logf("1 conn: %.0f ops/s; 8 conns: %.0f ops/s (%.1fx); mean commit group size %.2f (%d batches / %d groups)",
		seqRate, parRate, parRate/seqRate, meanGroup, batches, groups)

	if meanGroup <= 1.0 {
		t.Fatalf("mean commit group size %.2f, want > 1: network writes are not feeding the group-commit pipeline", meanGroup)
	}
	if parRate < 2*seqRate {
		t.Fatalf("8-conn throughput %.0f ops/s is under 2x the 1-conn %.0f ops/s", parRate, seqRate)
	}

	// The event stream saw the network lifecycle.
	var connOpens, reqEnds int
	for _, e := range ring.Events() {
		switch e.Type {
		case events.ConnOpen:
			connOpens++
		case events.RequestEnd:
			reqEnds++
		}
	}
	if connOpens == 0 || reqEnds == 0 {
		t.Fatalf("event stream missing network events: conn-open=%d request-end=%d", connOpens, reqEnds)
	}
}
