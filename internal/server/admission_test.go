package server_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
)

// These tests cover the multi-tenant overload story end to end over
// the wire: token-bucket admission answering over-quota tenants with
// StatusThrottled + retry-after, scan clamping to the caller's
// namespace, and engine backpressure shed as tenant-scoped throttles
// instead of blocked connections.

func TestTenantQuotaThrottlesOverWire(t *testing.T) {
	ring := events.NewRing(4096)
	_, _, addr := testServer(t, nil, func(o *server.Options) {
		o.EventListener = ring
		o.Admission = admission.NewController(admission.Config{
			Tenants: map[string]admission.Quota{
				"acme": {OpsPerSec: 10, BurstSec: 0.5}, // 5-op burst, slow refill
			},
		})
	})
	// MaxRetries -1 disables retries so every throttle surfaces.
	cl, err := client.Dial(addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hammer tenant acme far past its burst; the tail must throttle.
	var throttled int
	var lastThrottle *client.ThrottledError
	for i := 0; i < 40; i++ {
		err := cl.Put([]byte(fmt.Sprintf("acme/k%03d", i)), []byte("v"))
		if errors.Is(err, client.ErrThrottled) {
			throttled++
			errors.As(err, &lastThrottle)
		} else if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if throttled == 0 {
		t.Fatal("40 rapid writes against a 5-op burst never throttled")
	}
	if lastThrottle == nil || lastThrottle.RetryAfter <= 0 {
		t.Fatalf("throttled response carried no retry-after hint: %+v", lastThrottle)
	}
	if cl.Throttles() != int64(throttled) {
		t.Fatalf("client throttle count %d != observed %d", cl.Throttles(), throttled)
	}

	// An unquota'd tenant is untouched by acme's rejections.
	for i := 0; i < 40; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("globex/k%03d", i)), []byte("v")); err != nil {
			t.Fatalf("unthrottled tenant's put %d failed: %v", i, err)
		}
	}

	// Once acme's bucket refills, its writes are re-admitted — and the
	// re-admission closes the throttle episode.
	waitFor(t, "acme re-admission after refill", func() bool {
		return cl.Put([]byte("acme/after"), []byte("v")) == nil
	})
	var begins, ends int
	for _, e := range ring.Events() {
		switch e.Type {
		case events.ThrottleBegin:
			begins++
			if e.Reason != "acme" {
				t.Errorf("throttle episode for tenant %q, want acme", e.Reason)
			}
		case events.ThrottleEnd:
			ends++
			if e.DurationNs <= 0 {
				t.Errorf("throttle end without episode duration: %+v", e)
			}
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("throttle episodes unpaired: begins=%d ends=%d", begins, ends)
	}

	// Per-tenant accounting reaches the STATS verb.
	stats, err := cl.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "tenant acme:") || !strings.Contains(stats, "tenant globex:") {
		t.Fatalf("stats missing tenant rows:\n%s", stats)
	}
	if !strings.Contains(stats, "throttled=") {
		t.Fatalf("stats missing throttle counters:\n%s", stats)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	_, _, addr := testServer(t, nil, func(o *server.Options) {
		o.Admission = admission.NewController(admission.Config{
			Tenants: map[string]admission.Quota{
				"acme": {OpsPerSec: 100, BurstSec: 0.1}, // 10-op burst, fast refill
			},
		})
	})
	cl, err := client.Dial(addr, client.Options{MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Well past the burst: every op eventually lands because the client
	// sleeps out the retry-after hints instead of failing.
	for i := 0; i < 50; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("acme/k%03d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d not absorbed by retry-after backoff: %v", i, err)
		}
	}
	if cl.Throttles() == 0 {
		t.Fatal("50 rapid writes against a 10-op burst saw no throttles at all")
	}
}

func TestTenantReadAndScanQuota(t *testing.T) {
	srv, db, addr := testServer(t, nil, func(o *server.Options) {
		o.Admission = admission.NewController(admission.Config{
			Tenants: map[string]admission.Quota{
				"acme": {OpsPerSec: 4, BurstSec: 0.5},
			},
		})
	})
	if err := db.Put([]byte("acme/k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var throttled int
	for i := 0; i < 20; i++ {
		_, err := cl.Get([]byte("acme/k"))
		if errors.Is(err, client.ErrThrottled) {
			throttled++
		} else if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		_, err := cl.Scan([]byte("acme/"), 10)
		if errors.Is(err, client.ErrThrottled) {
			throttled++
		} else if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
	}
	if throttled == 0 {
		t.Fatal("reads against a 2-op burst never throttled")
	}
	if got := srv.Admission().Throttled("acme"); got != int64(throttled) {
		t.Fatalf("controller counted %d throttles, client saw %d", got, throttled)
	}
	if srv.Metrics().NetThrottled != int64(throttled) {
		t.Fatalf("NetThrottled=%d, want %d", srv.Metrics().NetThrottled, throttled)
	}
}

func TestScanClampedToTenantNamespace(t *testing.T) {
	_, db, addr := testServer(t, nil, nil)
	for _, kv := range [][2]string{
		{"acme/1", "a1"}, {"acme/2", "a2"},
		{"acmezz", "plain-acmezz"}, // default tenant, sorts between acme/ and globex/
		{"globex/1", "g1"},
		{"plain", "p"},
		{"/rooted", "r"}, // empty prefix → default tenant
	} {
		if err := db.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := func(kvs []client.KV) []string {
		out := make([]string, len(kvs))
		for i, kv := range kvs {
			out[i] = string(kv.Key)
		}
		return out
	}

	// A full-range scan is the default tenant's view: every key with a
	// separator belongs to someone else and is clamped away.
	kvs, err := cl.Scan(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(kvs); !equalStrings(got, []string{"/rooted", "acmezz", "plain"}) {
		t.Fatalf("default-tenant scan = %v", got)
	}

	// A scan inside one namespace sees exactly that namespace.
	kvs, err = cl.Scan([]byte("acme/"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(kvs); !equalStrings(got, []string{"acme/1", "acme/2"}) {
		t.Fatalf("acme scan = %v", got)
	}

	// A partial prefix that spans a tenant boundary ("acme" matches both
	// acme/'s namespace and the default tenant's "acmezz") resolves to
	// the prefix's own tenant — here the default tenant, since "acme"
	// has no separator.
	kvs, err = cl.Scan([]byte("acme"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := keys(kvs); !equalStrings(got, []string{"acmezz"}) {
		t.Fatalf("boundary-spanning scan = %v", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stallFS delays table-file creation so flushes cannot keep up with a
// hammering writer, forcing the engine into write stalls.
type stallFS struct {
	vfs.FS
	delay time.Duration
}

func (f stallFS) Create(name string) (vfs.File, error) {
	if vfs.HasSuffix(name, ".sst") {
		time.Sleep(f.delay)
	}
	return f.FS.Create(name)
}

func TestBackpressureShedsAsThrottle(t *testing.T) {
	srv, db, addr := testServer(t, func(o *core.Options) {
		o.FS = stallFS{FS: vfs.NewMem(), delay: 30 * time.Millisecond}
		o.BufferBytes = 1 << 10
		o.MaxImmutableBuffers = 1
		o.StallTimeout = 5 * time.Millisecond
	}, nil)
	cl, err := client.Dial(addr, client.Options{MaxRetries: -1, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hammer writes from a few goroutines until the stall timeout sheds
	// some of them as throttles.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed int
	var firstHint time.Duration
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, 256)
			for i := 0; i < 60; i++ {
				err := cl.Put([]byte(fmt.Sprintf("acme/w%d-%04d", w, i)), val)
				var te *client.ThrottledError
				switch {
				case errors.As(err, &te):
					mu.Lock()
					shed++
					if firstHint == 0 {
						firstHint = te.RetryAfter
					}
					mu.Unlock()
				case err != nil:
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if shed == 0 {
		t.Fatal("stalled engine never shed a write as StatusThrottled")
	}
	if firstHint <= 0 {
		t.Fatal("shed write carried no retry-after hint")
	}
	// Backpressure is shed, not sticky: the engine stays healthy and the
	// tenant is re-admitted once the flush backlog drains.
	if db.Health().Degraded {
		t.Fatal("backpressure degraded the engine")
	}
	waitFor(t, "writes recover after backlog drains", func() bool {
		return cl.Put([]byte("acme/recovered"), []byte("v")) == nil
	})
	if srv.Metrics().NetThrottled == 0 {
		t.Fatal("NetThrottled did not count shed writes")
	}
	if srv.Admission().Throttled("acme") == 0 {
		t.Fatal("shed writes not attributed to their tenant")
	}
	if db.Metrics().StallAborts == 0 {
		t.Fatal("engine counted no stall aborts")
	}
}
