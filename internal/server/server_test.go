package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
	"lsmlab/internal/wire"
)

// testServer starts a server over a fresh in-memory store and returns
// it with its address. Cleanup drains the server and closes the DB.
func testServer(t *testing.T, tweakDB func(*core.Options), tweakSrv func(*server.Options)) (*server.Server, *core.DB, string) {
	t.Helper()
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "db")
	if tweakDB != nil {
		tweakDB(&opts)
	}
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	sopts := server.Options{}
	if tweakSrv != nil {
		tweakSrv(&sopts)
	}
	srv := server.New(db, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		db.Close()
	})
	return srv, db, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServerRoundTrip(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if err := cl.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("alpha2"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("beta"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get alpha: %q %v", v, err)
	}
	if _, err := cl.Get([]byte("missing")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := cl.Delete([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("beta")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("deleted key: want ErrNotFound, got %v", err)
	}

	// Prefix scan sees only the alpha keys, in order.
	kvs, err := cl.Scan([]byte("alpha"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || string(kvs[0].Key) != "alpha" || string(kvs[1].Key) != "alpha2" {
		t.Fatalf("scan: %+v", kvs)
	}

	// Atomic batch.
	var b client.Batch
	b.Put([]byte("g1"), []byte("x"))
	b.Put([]byte("g2"), []byte("y"))
	b.Delete([]byte("alpha2"))
	if err := cl.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get([]byte("g2")); err != nil || string(v) != "y" {
		t.Fatalf("batch put: %q %v", v, err)
	}
	if _, err := cl.Get([]byte("alpha2")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("batch delete: %v", err)
	}

	// Admin verbs.
	stats, err := cl.Stats(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "server: conns_open=") || !strings.Contains(stats, "request") {
		t.Fatalf("stats missing server block:\n%s", stats)
	}
	if err := cl.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	// Teardown: the connection count must return to zero.
	cl.Close()
	waitFor(t, "connections to drain", func() bool { return srv.ConnCount() == 0 })
	m := srv.Metrics()
	if m.ConnsOpened == 0 || m.ConnsOpened != m.ConnsClosed {
		t.Fatalf("conn accounting: opened=%d closed=%d", m.ConnsOpened, m.ConnsClosed)
	}
	if m.NetRequests == 0 || m.NetBytesRead == 0 || m.NetBytesWritten == 0 {
		t.Fatalf("request accounting: %+v", m)
	}
	if srv.Latencies().Request.N == 0 {
		t.Fatal("request latency histogram is empty")
	}
}

// rawConn dials the server for protocol-level tests.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	return nc
}

func readResp(t *testing.T, nc net.Conn) (byte, []byte, error) {
	t.Helper()
	return readRespE(nc)
}

func readRespE(nc net.Conn) (byte, []byte, error) {
	op, payload, _, err := wire.ReadFrame(bufio(nc), 0, nil)
	return op, payload, err
}

// bufio-free single reader: responses are read one frame at a time
// directly off the socket, so closes are observed promptly.
func bufio(nc net.Conn) io.Reader { return nc }

func TestUnknownOpcodeKeepsConnection(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	nc := rawConn(t, addr)
	if _, err := nc.Write(wire.AppendFrame(nil, 0x7E, []byte("??"))); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResp(t, nc)
	if err != nil || status != wire.StatusUnknownOp {
		t.Fatalf("status=%#x payload=%q err=%v", status, payload, err)
	}
	// The stream is still in sync: a valid request on the same
	// connection succeeds.
	if _, err := nc.Write(wire.AppendFrame(nil, wire.OpPing, nil)); err != nil {
		t.Fatal(err)
	}
	status, _, err = readResp(t, nc)
	if err != nil || status != wire.StatusOK {
		t.Fatalf("ping after unknown op: status=%#x err=%v", status, err)
	}
	if srv.Metrics().NetRequestErrors == 0 {
		t.Fatal("unknown op was not counted as a request error")
	}
}

func TestOversizedFrameStructuredErrorThenClose(t *testing.T) {
	srv, _, addr := testServer(t, nil, func(o *server.Options) { o.MaxRequestBytes = 1 << 10 })
	nc := rawConn(t, addr)
	hdr := binary.BigEndian.AppendUint32(nil, 1<<20)
	if _, err := nc.Write(append(hdr, 0x01)); err != nil {
		t.Fatal(err)
	}
	status, _, err := readResp(t, nc)
	if err != nil || status != wire.StatusTooLarge {
		t.Fatalf("status=%#x err=%v", status, err)
	}
	// The oversized body was never read, so the connection closes.
	if _, _, err := readResp(t, nc); err == nil {
		t.Fatal("connection stayed open after an unsyncable frame")
	}
	waitFor(t, "oversized conn teardown", func() bool { return srv.ConnCount() == 0 })
}

func TestMalformedAndTruncatedFrames(t *testing.T) {
	srv, db, addr := testServer(t, nil, nil)

	// Zero-length frame: structured error, then close.
	nc := rawConn(t, addr)
	if _, err := nc.Write(binary.BigEndian.AppendUint32(nil, 0)); err != nil {
		t.Fatal(err)
	}
	status, _, err := readResp(t, nc)
	if err != nil || status != wire.StatusBadRequest {
		t.Fatalf("zero-length: status=%#x err=%v", status, err)
	}

	// Truncated frame then abrupt close: the server just drops the
	// connection, without panicking or leaking it.
	nc2 := rawConn(t, addr)
	frame := wire.AppendFrame(nil, wire.OpPut, bytes.Repeat([]byte{7}, 64))
	if _, err := nc2.Write(frame[:len(frame)-10]); err != nil {
		t.Fatal(err)
	}
	nc2.Close()

	// Malformed payload of a known opcode: structured error, stream
	// keeps going.
	nc3 := rawConn(t, addr)
	if _, err := nc3.Write(wire.AppendFrame(nil, wire.OpGet, []byte{0xFF})); err != nil {
		t.Fatal(err)
	}
	status, _, err = readResp(t, nc3)
	if err != nil || status != wire.StatusBadRequest {
		t.Fatalf("bad get payload: status=%#x err=%v", status, err)
	}
	if _, err := nc3.Write(wire.AppendFrame(nil, wire.OpPing, nil)); err != nil {
		t.Fatal(err)
	}
	if status, _, err = readResp(t, nc3); err != nil || status != wire.StatusOK {
		t.Fatalf("ping after bad payload: status=%#x err=%v", status, err)
	}
	nc3.Close()

	waitFor(t, "hostile conns to drain", func() bool { return srv.ConnCount() == 0 })
	// The engine survived all of it.
	if err := db.Put([]byte("still"), []byte("alive")); err != nil {
		t.Fatal(err)
	}
}

func TestMaxConnsRefusesWithBusy(t *testing.T) {
	_, _, addr := testServer(t, nil, func(o *server.Options) { o.MaxConns = 1 })
	nc1 := rawConn(t, addr)
	// Make sure the first connection is registered server-side.
	if _, err := nc1.Write(wire.AppendFrame(nil, wire.OpPing, nil)); err != nil {
		t.Fatal(err)
	}
	if status, _, err := readResp(t, nc1); err != nil || status != wire.StatusOK {
		t.Fatalf("ping: %#x %v", status, err)
	}
	nc2 := rawConn(t, addr)
	status, payload, err := readResp(t, nc2)
	if err != nil || status != wire.StatusBusy {
		t.Fatalf("second conn: status=%#x payload=%q err=%v", status, payload, err)
	}
	if _, _, err := readResp(t, nc2); err == nil {
		t.Fatal("refused connection stayed open")
	}
}

func TestServerSideWriteCoalescing(t *testing.T) {
	// A burst of pipelined puts on one connection should fold into few
	// Apply calls (visible as commit batches vs groups is engine-side;
	// here we check the responses all arrive and the data is right).
	_, db, addr := testServer(t, nil, nil)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	futures := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futures[i] = p.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futures {
		if err := f.Err(); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for _, i := range []int{0, 123, n - 1} {
		v, err := db.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d: %q %v", i, v, err)
		}
	}
	// Pipelined puts must have folded: far fewer Applies (commit
	// batches) than wire requests would imply if unbatched… the engine
	// counts one commit batch per Apply, so batches < n proves folding.
	m := db.Metrics()
	if m.CommitBatches >= n {
		t.Fatalf("no server-side folding: %d commit batches for %d pipelined puts", m.CommitBatches, n)
	}
}

func TestMalformedPipelinedWriteKeepsFIFOResponses(t *testing.T) {
	// Three PUT frames written in one burst — valid, malformed payload,
	// valid — must be answered strictly in arrival order (OK,
	// BadRequest, OK) whether or not the server folds them: the wire
	// protocol has no request IDs, so clients match responses FIFO.
	_, db, addr := testServer(t, nil, nil)
	nc := rawConn(t, addr)
	putPayload := func(k, v string) []byte {
		p := wire.AppendBytes(nil, []byte(k))
		return wire.AppendBytes(p, []byte(v))
	}
	var burst []byte
	burst = wire.AppendFrame(burst, wire.OpPut, putPayload("f1", "1"))
	burst = wire.AppendFrame(burst, wire.OpPut, []byte{0xFF}) // truncated varint
	burst = wire.AppendFrame(burst, wire.OpPut, putPayload("f3", "3"))
	if _, err := nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	want := []byte{wire.StatusOK, wire.StatusBadRequest, wire.StatusOK}
	for i, w := range want {
		status, _, err := readResp(t, nc)
		if err != nil || status != w {
			t.Fatalf("response %d: status=%#x err=%v, want %#x", i, status, err, w)
		}
	}
	// Both valid writes landed.
	for _, k := range []string{"f1", "f3"} {
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
	}
}

func TestScanTruncatesToFrameCap(t *testing.T) {
	// A scan over values whose total exceeds the frame cap truncates
	// instead of building a response the peer would reject.
	const frameCap = 4 << 10
	_, db, addr := testServer(t, nil, func(o *server.Options) { o.MaxRequestBytes = frameCap })
	val := bytes.Repeat([]byte("v"), 200)
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("t%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.Dial(addr, client.Options{MaxFrameBytes: frameCap})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kvs, err := cl.Scan([]byte("t"), 0)
	if err != nil {
		t.Fatalf("scan rejected by frame cap: %v", err)
	}
	if len(kvs) == 0 || len(kvs) >= 100 {
		t.Fatalf("scan returned %d entries, want a truncated non-empty result", len(kvs))
	}
	// The connection is still usable (no ErrTooLarge poisoning).
	if _, err := cl.Get([]byte("t0000")); err != nil {
		t.Fatalf("get after capped scan: %v", err)
	}
}

func TestScanLimitAndDeadline(t *testing.T) {
	_, db, addr := testServer(t, nil, func(o *server.Options) { o.MaxScanLimit = 10 })
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("s%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kvs, err := cl.Scan([]byte("s"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan cap: got %d entries, want 10", len(kvs))
	}
	kvs, err = cl.Scan([]byte("s"), 3)
	if err != nil || len(kvs) != 3 {
		t.Fatalf("scan limit: %d %v", len(kvs), err)
	}
}

// TestDegradedServerRefusesWritesServesReads drives the engine into
// read-only degradation under a live server: writes must come back as
// StatusUnavailable (surfaced as client.ErrUnavailable, not retried),
// reads and admin verbs must keep working, and the HEALTH verb must
// name the root cause.
func TestDegradedServerRefusesWritesServesReads(t *testing.T) {
	var ffs *faultfs.FS
	_, db, addr := testServer(t, func(o *core.Options) {
		ffs = faultfs.New(o.FS, 1)
		o.FS = ffs
		o.BufferBytes = 4 << 10
		o.MaxBackgroundRetries = -1 // degrade on the first failure
	}, nil)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put([]byte("k0"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if h, err := cl.Health(); err != nil || h.Degraded {
		t.Fatalf("healthy server reports %+v, %v", h, err)
	}

	// Kill the device under tables and fill a buffer so the flush fails.
	ffs.AddRule(faultfs.Rule{
		Classes:   faultfs.ClassSST,
		Ops:       faultfs.OpWrite | faultfs.OpCreate,
		Countdown: 1,
		Sticky:    true,
	})
	for i := 0; i < 20; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatalf("pre-degradation put: %v", err)
		}
	}
	if err := db.Flush(); err == nil {
		t.Fatal("flush against dead device must error")
	}
	waitFor(t, "degraded", func() bool { return db.Health().Degraded })

	// Writes: refused, typed, and not retried into the degraded server.
	if err := cl.Put([]byte("doomed"), []byte("v")); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("put on degraded server: %v, want ErrUnavailable", err)
	}
	var b client.Batch
	b.Put([]byte("doomed2"), []byte("v"))
	if err := cl.Apply(&b); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("apply on degraded server: %v, want ErrUnavailable", err)
	}

	// Reads and admin verbs keep working.
	if v, err := cl.Get([]byte("k0")); err != nil || string(v) != "v0" {
		t.Fatalf("read while degraded: %q %v", v, err)
	}
	stats, err := cl.Stats(false)
	if err != nil || !strings.Contains(stats, "degraded=true") {
		t.Fatalf("stats while degraded (%v):\n%s", err, stats)
	}

	// HEALTH names the cause.
	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || h.Op != "flush" || h.Kind != "transient" || h.Cause == "" {
		t.Fatalf("health misses the cause: %+v", h)
	}
}
