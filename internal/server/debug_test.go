package server_test

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/server"
	"lsmlab/internal/trace"
	"lsmlab/internal/wire"
)

// touchServer makes one round-trip so the accept loop is provably
// running before the test's cleanup drains it, then waits for the
// connection's teardown so gauges read zero again.
func touchServer(t *testing.T, srv *server.Server, addr string) {
	t.Helper()
	nc := rawConn(t, addr)
	if _, err := nc.Write(wire.AppendFrame(nil, wire.OpPing, nil)); err != nil {
		t.Fatal(err)
	}
	if status, _, err := readResp(t, nc); err != nil || status != wire.StatusOK {
		t.Fatalf("ping: status=%#x err=%v", status, err)
	}
	nc.Close()
	waitFor(t, "connection teardown", func() bool { return srv.ConnCount() == 0 })
}

// TestDebugMetricsParsesAsPrometheusText exercises /metrics after real
// engine activity and checks the payload both contains the families
// the dashboards scrape and parses line-by-line as exposition text.
func TestDebugMetricsParsesAsPrometheusText(t *testing.T) {
	srv, db, addr := testServer(t, func(o *core.Options) { o.RecordLatencies = true }, nil)
	touchServer(t, srv, addr)
	for i := 0; i < 20; i++ {
		k := []byte("m-" + strconv.Itoa(i))
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("m-3")); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.DebugHandler(nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"lsmlab_puts_total 20",
		"lsmlab_gets_total 1",
		"lsmlab_flushes_total 1",
		"lsmlab_degraded 0",
		`lsmlab_level_runs{level="0"} 1`,
		`lsmlab_get_latency_ns{quantile="0.99"}`,
		"lsmlab_get_latency_ns_count 1",
		"lsmlab_write_amplification",
		"lsmlab_conns_open 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
	// Every line is a comment or "name[{labels}] <float>", and every
	// sample's metric name carries the lsmlab_ prefix.
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("bad labels in %q", line)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "lsmlab_") {
			t.Fatalf("unprefixed metric %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
	}
}

// TestDebugHealthz checks the probe shape on a healthy engine.
func TestDebugHealthz(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	touchServer(t, srv, addr)
	rec := httptest.NewRecorder()
	srv.DebugHandler(nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var h struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Degraded {
		t.Fatal("healthy engine reported degraded")
	}
}

// TestDebugEventsAndTraces checks both JSON rings: a flush lands in
// /events, a traced get lands in /traces with its stages.
func TestDebugEventsAndTraces(t *testing.T) {
	ring := events.NewRing(64)
	tr := trace.New(trace.Options{SampleEvery: 1, RingSize: 64, Seed: 7})
	srv, db, addr := testServer(t, func(o *core.Options) {
		o.EventListener = ring
		o.Tracer = tr
	}, nil)
	touchServer(t, srv, addr)
	if err := db.Put([]byte("e"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("e")); err != nil {
		t.Fatal(err)
	}
	h := srv.DebugHandler(ring, tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	var evs struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Type string `json:"type"`
			Line string `json:"line"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Total == 0 || len(evs.Events) == 0 {
		t.Fatalf("no events: %+v", evs)
	}
	found := false
	for _, e := range evs.Events {
		if e.Type == "flush-end" {
			found = true
		}
	}
	if !found {
		t.Fatalf("flush-end missing from /events: %+v", evs.Events)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	var trs struct {
		Started uint64 `json:"started"`
		Spans   []struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
			Stages  []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trs); err != nil {
		t.Fatal(err)
	}
	if trs.Started == 0 || len(trs.Spans) == 0 {
		t.Fatalf("no spans: %+v", trs)
	}
	var get bool
	for _, sp := range trs.Spans {
		if sp.Op == "get" {
			get = true
			if len(sp.Stages) == 0 || sp.Stages[0].Name != "search" {
				t.Fatalf("get span missing search stage: %+v", sp)
			}
			if len(sp.TraceID) != 16 {
				t.Fatalf("trace id not 16 hex chars: %q", sp.TraceID)
			}
		}
	}
	if !get {
		t.Fatalf("no get span in /traces: %+v", trs.Spans)
	}
}

// TestDebugEmptyRings pins the nil-ring / nil-tracer behavior: empty
// JSON lists, not panics or nulls.
func TestDebugEmptyRings(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	touchServer(t, srv, addr)
	h := srv.DebugHandler(nil, nil)
	for _, path := range []string{"/events", "/traces"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.Contains(rec.Body.String(), "null") {
			t.Fatalf("%s serves null: %s", path, rec.Body.String())
		}
	}
}

// TestDebugPprof checks the pprof mux is mounted: the index lists
// profiles and a named profile endpoint serves bytes.
func TestDebugPprof(t *testing.T) {
	srv, _, addr := testServer(t, nil, nil)
	touchServer(t, srv, addr)
	h := srv.DebugHandler(nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/goroutine", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("goroutine profile: status %d len %d", rec.Code, rec.Body.Len())
	}
}
