// The HTTP debug plane: a second, read-only listener exposing the
// engine's live state to humans and scrapers — Prometheus-text
// /metrics, Go pprof profiles, a health probe, and JSON dumps of the
// event ring and the trace ring. It shares nothing with the data
// protocol: the wire stays binary and minimal, while operators get
// curl-able introspection on a separate port (lsmserved -debug-addr).

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/metrics"
	"lsmlab/internal/trace"
)

// DebugHandler returns the debug-plane HTTP handler for this server:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                latency quantile summaries, per-level tree shape)
//	/healthz        engine health JSON; 503 once degraded
//	/events         the event ring, oldest first, as JSON
//	/traces         the captured span ring, oldest first, as JSON
//	/workload       the live workload profile (core.WorkloadProfile) as
//	                JSON: op mix, skew, hot keys, tenants, per-level RUM
//	/debug/pprof/*  the standard Go profiles
//
// ring and tr may be nil; the corresponding endpoints then serve empty
// lists. The handler only reads — it can be exposed on a port the data
// protocol never touches.
func (s *Server) DebugHandler(ring *events.Ring, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.writeMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeHealth(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		writeEvents(w, ring)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		writeTraces(w, tr)
	})
	mux.HandleFunc("/workload", func(w http.ResponseWriter, r *http.Request) {
		s.writeWorkload(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promWriter accumulates Prometheus text exposition format. Every
// series carries the lsmlab_ prefix; HELP/TYPE headers precede each
// family so the output parses under promtool and scrapes cleanly.
type promWriter struct{ b strings.Builder }

func (p *promWriter) counter(name, help string, v int64) {
	fmt.Fprintf(&p.b, "# HELP lsmlab_%s %s\n# TYPE lsmlab_%s counter\nlsmlab_%s %d\n",
		name, help, name, name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&p.b, "# HELP lsmlab_%s %s\n# TYPE lsmlab_%s gauge\nlsmlab_%s %g\n",
		name, help, name, name, v)
}

// gaugeVec opens a labeled gauge family; emit rows with sample.
func (p *promWriter) gaugeVec(name, help string) {
	fmt.Fprintf(&p.b, "# HELP lsmlab_%s %s\n# TYPE lsmlab_%s gauge\n", name, help, name)
}

// counterVec opens a labeled counter family; emit rows with csample.
func (p *promWriter) counterVec(name, help string) {
	fmt.Fprintf(&p.b, "# HELP lsmlab_%s %s\n# TYPE lsmlab_%s counter\n", name, help, name)
}

func (p *promWriter) csample(name, labels string, v int64) {
	fmt.Fprintf(&p.b, "lsmlab_%s{%s} %d\n", name, labels, v)
}

func (p *promWriter) sample(name, labels string, v float64) {
	fmt.Fprintf(&p.b, "lsmlab_%s{%s} %g\n", name, labels, v)
}

// summary renders one latency histogram as a Prometheus summary:
// quantile series plus _sum and _count.
func (p *promWriter) summary(name, help string, h metrics.HistogramSnapshot) {
	fmt.Fprintf(&p.b, "# HELP lsmlab_%s %s\n# TYPE lsmlab_%s summary\n", name, help, name)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(&p.b, "lsmlab_%s{quantile=%q} %d\n", name, fmt.Sprintf("%g", q), h.Quantile(q))
	}
	fmt.Fprintf(&p.b, "lsmlab_%s_sum %d\nlsmlab_%s_count %d\n", name, h.Sum, name, h.N)
}

// writeMetrics renders the full /metrics payload: engine counters from
// the DB, network counters from the server, derived ratios, the
// per-level tree shape, and the latency summaries.
func (s *Server) writeMetrics(w http.ResponseWriter) {
	eng := s.db.Metrics() // engine counters
	net := s.m.Snapshot() // serving-layer counters
	var p promWriter

	// Write path.
	p.counter("puts_total", "User put operations.", eng.Puts)
	p.counter("deletes_total", "User delete operations.", eng.Deletes)
	p.counter("bytes_ingested_total", "User key+value bytes accepted.", eng.BytesIngested)
	p.counter("wal_bytes_total", "Bytes appended to the write-ahead log.", eng.WALBytes)
	p.counter("commit_groups_total", "Commit groups written (one WAL write each).", eng.CommitGroups)
	p.counter("commit_batches_total", "Batches committed across all groups.", eng.CommitBatches)
	p.counter("wal_syncs_total", "WAL syncs issued.", eng.WALSyncs)
	p.counter("wal_syncs_saved_total", "Syncs avoided by group coalescing.", eng.WALSyncsSaved)

	// Read path.
	p.counter("gets_total", "User point lookups.", eng.Gets)
	p.counter("get_hits_total", "Lookups that found a live value.", eng.GetHits)
	p.counter("scans_total", "User range scans.", eng.Scans)
	p.counter("runs_probed_total", "Sorted runs consulted by point lookups.", eng.RunsProbed)
	p.counter("filter_probes_total", "Bloom filter probes.", eng.FilterProbes)
	p.counter("filter_negatives_total", "Filter probes that skipped a run.", eng.FilterNegatives)
	p.counter("filter_false_positives_total", "Filter passes that found nothing.", eng.FilterFalsePos)
	p.counter("block_reads_total", "Data-block fetches by sstable readers.", eng.BlockReads)
	p.counter("block_reads_cached_total", "Block fetches served from the cache.", eng.BlockReadsCached)
	p.counter("cache_hits_total", "Block cache hits.", eng.CacheHits)
	p.counter("cache_misses_total", "Block cache misses.", eng.CacheMisses)

	// Structure maintenance and stalls.
	p.counter("flushes_total", "Memtable flushes.", eng.Flushes)
	p.counter("flush_bytes_total", "Bytes written by flushes.", eng.FlushBytes)
	p.counter("compactions_total", "Compaction jobs completed.", eng.Compactions)
	p.counter("compaction_bytes_read_total", "Bytes read by compactions.", eng.CompactionBytesRead)
	p.counter("compaction_bytes_written_total", "Bytes written by compactions.", eng.CompactionBytesWritten)
	p.counter("tombstones_dropped_total", "Tombstones purged by compaction.", eng.TombstonesDropped)
	p.counter("write_stalls_total", "Write stall events.", eng.WriteStalls)
	p.counter("stall_ns_total", "Total time writers spent stalled, ns.", eng.StallNs)

	// Robustness.
	p.counter("bg_retries_total", "Failed background job attempts.", eng.BgRetries)
	p.counter("scrubbed_tables_total", "Sstables checked by scrubs.", eng.ScrubbedTables)
	p.counter("scrub_corruptions_total", "Corrupt files found by scrubs.", eng.ScrubCorruptions)
	p.gauge("degraded", "1 once the engine is read-only degraded.", float64(eng.Degraded))

	// Serving layer.
	p.counter("conns_opened_total", "Connections accepted.", net.ConnsOpened)
	p.counter("conns_closed_total", "Connections fully torn down.", net.ConnsClosed)
	p.counter("conns_rejected_total", "Connections refused at the limit.", net.ConnsRejected)
	p.counter("net_requests_total", "Request frames received.", net.NetRequests)
	p.counter("net_request_errors_total", "Requests answered with an error status.", net.NetRequestErrors)
	p.counter("net_throttled_total", "Requests answered with StatusThrottled (quota or backpressure).", net.NetThrottled)
	p.counter("net_bytes_read_total", "Request frame bytes received.", net.NetBytesRead)
	p.counter("net_bytes_written_total", "Response frame bytes sent.", net.NetBytesWritten)
	p.gauge("conns_open", "Connections currently being served.", float64(net.ConnsOpened-net.ConnsClosed))
	p.counter("stall_aborts_total", "Writes aborted by the stall timeout (backpressure).", eng.StallAborts)

	// Multi-tenancy: one row per tenant seen, labeled by namespace (the
	// default tenant — separator-free keys — is labeled "").
	if ts := s.opts.Admission.Stats(); len(ts) > 0 {
		p.counterVec("tenant_requests_total", "Admitted requests per tenant.")
		for _, t := range ts {
			p.csample("tenant_requests_total", fmt.Sprintf("tenant=%q", t.Tenant), t.Requests)
		}
		p.counterVec("tenant_throttled_total", "Requests throttled (quota-rejected or backpressure-shed) per tenant.")
		for _, t := range ts {
			p.csample("tenant_throttled_total", fmt.Sprintf("tenant=%q", t.Tenant), t.Throttled)
		}
		p.counterVec("tenant_bytes_in_total", "Write payload bytes admitted per tenant.")
		for _, t := range ts {
			p.csample("tenant_bytes_in_total", fmt.Sprintf("tenant=%q", t.Tenant), t.BytesIn)
		}
		p.counterVec("tenant_bytes_out_total", "Response bytes charged per tenant.")
		for _, t := range ts {
			p.csample("tenant_bytes_out_total", fmt.Sprintf("tenant=%q", t.Tenant), t.BytesOut)
		}
		p.gaugeVec("tenant_throttling", "1 while the tenant is inside a throttle episode.")
		for _, t := range ts {
			v := 0.0
			if t.Throttling {
				v = 1
			}
			p.sample("tenant_throttling", fmt.Sprintf("tenant=%q", t.Tenant), v)
		}
	}

	// Replication: leader counters live on the server, follower counters
	// arrive merged into the engine snapshot by the replica wrapper.
	p.counter("repl_subscribes_total", "Follower stream subscriptions accepted.", net.ReplSubscribes)
	p.counter("repl_frames_shipped_total", "WAL group frames streamed to followers.", net.ReplFramesShipped)
	p.counter("repl_gaps_total", "Gap frames sent (leader) or stream gaps observed (follower).",
		net.ReplGapsSignaled+eng.ReplGapsSignaled)
	p.counter("repl_acks_total", "Follower watermark acks recorded.", net.ReplAcks)
	p.counter("repl_repair_pages_total", "Merkle repair pages served.", net.ReplRepairPages)
	p.counter("repl_batches_applied_total", "Shipped WAL batches applied by this follower.", eng.ReplBatchesApplied)
	p.counter("repl_repair_ops_total", "Ops ingested via anti-entropy repair.", eng.ReplRepairOps)

	// Derived ratios (the paper's headline figures).
	p.gauge("write_amplification", "Storage bytes written per user byte ingested.", eng.WriteAmplification())
	p.gauge("read_amplification", "Average sorted runs probed per point lookup.", eng.ReadAmplification())
	p.gauge("filter_effectiveness", "Fraction of filter probes that skipped a run.", eng.FilterEffectiveness())
	p.gauge("cache_hit_rate", "Fraction of block-cache lookups that hit.", eng.CacheHitRate())
	p.gauge("avg_commit_group_size", "Mean batches coalesced per commit group.", eng.AvgCommitGroupSize())
	p.gauge("space_amplification", "Disk bytes per unique live byte.", s.db.SpaceAmplification())

	// Tree shape, one row per level.
	ts := s.db.TreeStats()
	p.gauge("memtable_entries", "Live memtable entries.", float64(ts.MemtableLen))
	p.gauge("immutable_memtables", "Immutable memtables awaiting flush.", float64(ts.Immutables))
	p.gaugeVec("level_runs", "Sorted runs per level.")
	for _, l := range ts.Levels {
		p.sample("level_runs", fmt.Sprintf("level=%q", fmt.Sprint(l.Level)), float64(l.Runs))
	}
	p.gaugeVec("level_files", "Files per level.")
	for _, l := range ts.Levels {
		p.sample("level_files", fmt.Sprintf("level=%q", fmt.Sprint(l.Level)), float64(l.Files))
	}
	p.gaugeVec("level_bytes", "Bytes per level.")
	for _, l := range ts.Levels {
		p.sample("level_bytes", fmt.Sprintf("level=%q", fmt.Sprint(l.Level)), float64(l.Bytes))
	}
	p.gauge("total_bytes", "Total bytes across all levels.", float64(ts.TotalBytes))

	// Per-shard breakdown, when the engine is the partitioned store:
	// the figures an operator needs to spot hot-shard skew.
	if se, ok := s.db.(interface{ ShardTreeStats() []core.TreeStats }); ok {
		shards := se.ShardTreeStats()
		p.gauge("shards", "Shard count of the partitioned store.", float64(len(shards)))
		p.gaugeVec("shard_memtable_bytes", "Memtable footprint per shard.")
		for i, st := range shards {
			p.sample("shard_memtable_bytes", fmt.Sprintf("shard=%q", fmt.Sprint(i)), float64(st.MemtableBytes))
		}
		p.gaugeVec("shard_l0_runs", "Level-0 sorted runs per shard.")
		for i, st := range shards {
			p.sample("shard_l0_runs", fmt.Sprintf("shard=%q", fmt.Sprint(i)), float64(st.L0Runs))
		}
		p.gaugeVec("shard_backlog_bytes", "Compaction debt per shard.")
		for i, st := range shards {
			p.sample("shard_backlog_bytes", fmt.Sprintf("shard=%q", fmt.Sprint(i)), float64(st.BacklogBytes))
		}
		p.gaugeVec("shard_total_bytes", "Bytes across all levels per shard.")
		for i, st := range shards {
			p.sample("shard_total_bytes", fmt.Sprintf("shard=%q", fmt.Sprint(i)), float64(st.TotalBytes))
		}
	}

	// Live workload characterization and per-level RUM attribution from
	// the engine profiler. Windowed figures decay with the profile
	// half-life, so they are gauges, not counters.
	if wp := s.db.WorkloadProfile(); wp.Enabled {
		p.gauge("workload_window_ops", "Sampling-weighted operations in the profile window.", float64(wp.WindowOps))
		p.gauge("workload_rotations", "Profile half-lives elapsed since open.", float64(wp.Rotations))
		p.gaugeVec("workload_ops", "Operations in the profile window by kind.")
		for _, kv := range []struct {
			op string
			v  int64
		}{{"get", wp.Gets}, {"put", wp.Puts}, {"delete", wp.Deletes}, {"scan", wp.Scans}} {
			p.sample("workload_ops", fmt.Sprintf("op=%q", kv.op), float64(kv.v))
		}
		p.gauge("workload_mean_scan_len", "Mean entries returned per range scan in the window.", wp.MeanScanLen)
		p.gauge("workload_distinct_keys", "Estimated distinct keys touched in the window.", float64(wp.DistinctKeys))
		p.gauge("workload_zipf_s", "Fitted zipf exponent of the window's key popularity (0 = uniform).", wp.ZipfS)
		p.gauge("workload_top_share", "Share of window traffic on the tracked hot keys.", wp.TopShare)
		p.gauge("workload_read_amp", "Measured runs probed per lookup over the window.", wp.ReadAmp)
		p.gauge("workload_write_amp", "Measured storage-write bytes per ingested byte over the window.", wp.WriteAmp)
		p.gauge("workload_space_amp", "Measured tree bytes per deepest-level byte.", wp.SpaceAmp)
		if len(wp.Tenants) > 0 {
			p.gaugeVec("workload_tenant_ops", "Sampled operations per tenant in the profile window.")
			for _, tw := range wp.Tenants {
				p.sample("workload_tenant_ops", fmt.Sprintf("tenant=%q", tw.Tenant), float64(tw.Ops))
			}
		}
		p.gaugeVec("level_runs_probed_window", "Runs consulted by lookups per level over the window.")
		for _, lp := range wp.Levels {
			p.sample("level_runs_probed_window", fmt.Sprintf("level=%q", fmt.Sprint(lp.Level)), float64(lp.RunsProbed))
		}
		p.gaugeVec("level_read_amp", "Per-level contribution to read amplification over the window.")
		for _, lp := range wp.Levels {
			p.sample("level_read_amp", fmt.Sprintf("level=%q", fmt.Sprint(lp.Level)), lp.ReadAmp)
		}
		p.gaugeVec("level_bytes_read_window", "Uncached data-block bytes read per level over the window.")
		for _, lp := range wp.Levels {
			p.sample("level_bytes_read_window", fmt.Sprintf("level=%q", fmt.Sprint(lp.Level)), float64(lp.BytesRead))
		}
		p.gaugeVec("level_bytes_written_window", "Bytes written into each level over the window, by trigger.")
		for _, lp := range wp.Levels {
			for reason, v := range lp.WriteByReason {
				p.sample("level_bytes_written_window",
					fmt.Sprintf("level=%q,reason=%q", fmt.Sprint(lp.Level), reason), float64(v))
			}
		}
		p.gaugeVec("level_compaction_bytes_in_window", "Bytes read as compaction input per level over the window.")
		for _, lp := range wp.Levels {
			p.sample("level_compaction_bytes_in_window", fmt.Sprintf("level=%q", fmt.Sprint(lp.Level)), float64(lp.CompactionBytesIn))
		}
	}

	// Latency summaries (engine histograms + the server's request
	// histogram merged, same as the STATS verb).
	lat := s.Latencies()
	p.summary("get_latency_ns", "DB.Get end-to-end latency, ns.", lat.Get)
	p.summary("put_latency_ns", "DB.Apply latency, ns.", lat.Put)
	p.summary("scan_next_latency_ns", "Iterator.Next latency, ns.", lat.ScanNext)
	p.summary("flush_latency_ns", "Memtable flush duration, ns.", lat.Flush)
	p.summary("compaction_latency_ns", "Compaction job duration, ns.", lat.Compaction)
	p.summary("request_latency_ns", "Network request latency, ns.", lat.Request)

	// Tracer throughput, when one is attached.
	if tr := s.db.Tracer(); tr != nil {
		p.counter("trace_spans_started_total", "Spans begun by the tracer.", int64(tr.Started()))
		p.counter("trace_spans_retained_total", "Spans retained into the ring.", int64(tr.Retained()))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}

// writeWorkload serves the live workload profile as JSON — the same
// payload the WORKLOAD wire verb returns, curl-able on the debug port.
func (s *Server) writeWorkload(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.db.WorkloadProfile())
}

// writeHealth serves the engine health as JSON: HTTP 200 while
// healthy, 503 once degraded, so it plugs into load-balancer and
// orchestrator probes unchanged.
func (s *Server) writeHealth(w http.ResponseWriter) {
	h := s.db.Health()
	w.Header().Set("Content-Type", "application/json")
	if h.Degraded {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Degraded bool   `json:"degraded"`
		Op       string `json:"op,omitempty"`
		Kind     string `json:"kind,omitempty"`
		Cause    string `json:"cause,omitempty"`
		SinceNs  int64  `json:"since_ns,omitempty"`
		BgErr    string `json:"bg_err,omitempty"`
		BgErrOp  string `json:"bg_err_op,omitempty"`
	}{h.Degraded, h.Op, h.Kind, h.Cause, h.SinceNs, h.BgErr, h.BgErrOp})
}

// eventJSON is the wire shape of one ring event: the typed fields a
// program wants plus the human-readable line lsmctl already prints.
type eventJSON struct {
	Type   string `json:"type"`
	TimeNs int64  `json:"time_ns"`
	JobID  uint64 `json:"job_id,omitempty"`
	Err    string `json:"err,omitempty"`
	Line   string `json:"line"`
}

// writeEvents dumps the event ring, oldest first.
func writeEvents(w http.ResponseWriter, ring *events.Ring) {
	var evs []events.Event
	var total uint64
	if ring != nil {
		evs = ring.Events()
		total = ring.Total()
	}
	out := struct {
		Total  uint64      `json:"total"`
		Events []eventJSON `json:"events"`
	}{Total: total, Events: make([]eventJSON, 0, len(evs))}
	for _, e := range evs {
		ej := eventJSON{Type: e.Type.String(), TimeNs: e.TimeNs, JobID: e.JobID, Line: e.String()}
		if e.Err != nil {
			ej.Err = e.Err.Error()
		}
		out.Events = append(out.Events, ej)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// writeTraces dumps the captured span ring, oldest first.
func writeTraces(w http.ResponseWriter, tr *trace.Tracer) {
	out := struct {
		Started  uint64       `json:"started"`
		Retained uint64       `json:"retained"`
		Spans    []trace.Span `json:"spans"`
	}{Started: tr.Started(), Retained: tr.Retained(), Spans: tr.Spans()}
	if out.Spans == nil {
		out.Spans = []trace.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
