package server_test

import (
	"net"
	"testing"
	"time"

	"lsmlab/internal/client"
	"lsmlab/internal/core"
	"lsmlab/internal/trace"
	"lsmlab/internal/wire"
)

// tracedFrame builds one trace-flagged request frame.
func tracedFrame(op byte, id uint64, payload []byte) []byte {
	body := wire.AppendTraceID(make([]byte, 0, 8+len(payload)), id)
	body = append(body, payload...)
	return wire.AppendFrame(nil, op|wire.TraceFlag, body)
}

// TestTracedRequestsEchoAndSpan drives flagged put/get/scan frames and
// checks the responses carry the flagged status + echo, and that the
// server's tracer retained spans under the propagated ids.
func TestTracedRequestsEchoAndSpan(t *testing.T) {
	tr := trace.New(trace.Options{RingSize: 64, Seed: 9}) // no sampling: only wire ids retain
	_, _, addr := testServer(t, func(o *core.Options) { o.Tracer = tr }, nil)
	nc := rawConn(t, addr)

	put := wire.AppendBytes(nil, []byte("k"))
	put = wire.AppendBytes(put, []byte("v"))
	if _, err := nc.Write(tracedFrame(wire.OpPut, 0x1111, put)); err != nil {
		t.Fatal(err)
	}
	status, resp, err := readResp(t, nc)
	if err != nil || status != wire.StatusOK|wire.TraceFlag {
		t.Fatalf("traced put: status=%#x err=%v", status, err)
	}
	id, serverNs, rest, err := wire.ReadTraceEcho(resp)
	if err != nil || id != 0x1111 || serverNs < 0 || len(rest) != 0 {
		t.Fatalf("put echo: id=%#x ns=%d rest=%d err=%v", id, serverNs, len(rest), err)
	}

	if _, err := nc.Write(tracedFrame(wire.OpGet, 0x2222, wire.AppendBytes(nil, []byte("k")))); err != nil {
		t.Fatal(err)
	}
	status, resp, err = readResp(t, nc)
	if err != nil || status != wire.StatusOK|wire.TraceFlag {
		t.Fatalf("traced get: status=%#x err=%v", status, err)
	}
	id, _, rest, err = wire.ReadTraceEcho(resp)
	if err != nil || id != 0x2222 || string(rest) != "v" {
		t.Fatalf("get echo: id=%#x rest=%q err=%v", id, rest, err)
	}

	// Traced miss: flagged not-found.
	if _, err := nc.Write(tracedFrame(wire.OpGet, 0x3333, wire.AppendBytes(nil, []byte("absent")))); err != nil {
		t.Fatal(err)
	}
	status, _, err = readResp(t, nc)
	if err != nil || status != wire.StatusNotFound|wire.TraceFlag {
		t.Fatalf("traced miss: status=%#x err=%v", status, err)
	}

	// Traced scan.
	scan := wire.AppendBytes(nil, []byte("k"))
	scan = wire.AppendUvarint(scan, 10)
	if _, err := nc.Write(tracedFrame(wire.OpScan, 0x4444, scan)); err != nil {
		t.Fatal(err)
	}
	status, resp, err = readResp(t, nc)
	if err != nil || status != wire.StatusOK|wire.TraceFlag {
		t.Fatalf("traced scan: status=%#x err=%v", status, err)
	}
	if id, _, _, err = wire.ReadTraceEcho(resp); err != nil || id != 0x4444 {
		t.Fatalf("scan echo: id=%#x err=%v", id, err)
	}

	// Every propagated id landed a span in the server's ring.
	got := map[uint64]string{}
	for _, sp := range tr.Spans() {
		got[sp.TraceID] = sp.Op
	}
	for id, op := range map[uint64]string{
		0x1111: trace.OpPut, 0x2222: trace.OpGet,
		0x3333: trace.OpGet, 0x4444: trace.OpScan,
	} {
		if got[id] != op {
			t.Fatalf("span for id %#x = %q, want %q (all: %v)", id, got[id], op, got)
		}
	}
}

// TestTracedWriteSkipsFolding checks that a traced write answers alone:
// untraced writes pipelined behind it still succeed (the responses stay
// FIFO), each as its own frame.
func TestTracedWriteSkipsFolding(t *testing.T) {
	tr := trace.New(trace.Options{RingSize: 16, Seed: 9})
	_, db, addr := testServer(t, func(o *core.Options) { o.Tracer = tr }, nil)
	nc := rawConn(t, addr)

	var buf []byte
	p1 := wire.AppendBytes(nil, []byte("t1"))
	p1 = wire.AppendBytes(p1, []byte("v1"))
	buf = append(buf, tracedFrame(wire.OpPut, 0xAAAA, p1)...)
	p2 := wire.AppendBytes(nil, []byte("t2"))
	p2 = wire.AppendBytes(p2, []byte("v2"))
	buf = wire.AppendFrame(buf, wire.OpPut, p2)
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	status, resp, err := readResp(t, nc)
	if err != nil || status != wire.StatusOK|wire.TraceFlag {
		t.Fatalf("first: status=%#x err=%v", status, err)
	}
	if id, _, _, err := wire.ReadTraceEcho(resp); err != nil || id != 0xAAAA {
		t.Fatalf("first echo: %#x %v", id, err)
	}
	status, _, err = readResp(t, nc)
	if err != nil || status != wire.StatusOK {
		t.Fatalf("second: status=%#x err=%v", status, err)
	}
	for _, k := range []string{"t1", "t2"} {
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("key %s missing: %v", k, err)
		}
	}
	// The traced span covers exactly one entry — folding was skipped.
	for _, sp := range tr.Spans() {
		if sp.TraceID == 0xAAAA && sp.Entries != 1 {
			t.Fatalf("traced write folded neighbors: %+v", sp)
		}
	}
}

// TestClientTraceStitching runs a tracing client against a tracing
// server and checks records stitch client- and server-observed latency.
func TestClientTraceStitching(t *testing.T) {
	tr := trace.New(trace.Options{RingSize: 64, Seed: 9})
	_, _, addr := testServer(t, func(o *core.Options) { o.Tracer = tr }, nil)
	cl, err := client.Dial(addr, client.Options{TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put([]byte("s"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get([]byte("s")); err != nil || string(v) != "1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := cl.Get([]byte("absent")); err != client.ErrNotFound {
		t.Fatalf("miss: %v", err)
	}
	if _, err := cl.Scan([]byte("s"), 5); err != nil {
		t.Fatal(err)
	}

	recs := cl.Traces()
	if len(recs) != 4 {
		t.Fatalf("got %d trace records, want 4: %+v", len(recs), recs)
	}
	ops := map[string]bool{}
	for _, r := range recs {
		ops[r.Op] = true
		if r.TraceID == 0 || r.ServerNs < 0 || r.ClientNs <= 0 {
			t.Fatalf("bad record: %+v", r)
		}
		if r.ClientNs < r.ServerNs {
			t.Fatalf("client latency below server latency: %+v", r)
		}
	}
	for _, want := range []string{"put", "get", "scan"} {
		if !ops[want] {
			t.Fatalf("missing op %q in %v", want, ops)
		}
	}
}

// TestClientFallsBackOnOldServer simulates a pre-trace server that
// answers flagged opcodes with StatusUnknownOp: the client must retry
// untraced and keep working, permanently disabling the flag.
func TestClientFallsBackOnOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var scratch []byte
				for {
					op, _, buf, err := wire.ReadFrame(nc, 0, scratch)
					scratch = buf
					if err != nil {
						return
					}
					var frame []byte
					switch {
					case wire.IsTracedOp(op):
						// Old server: flagged opcode is unknown.
						frame = wire.AppendFrame(nil, wire.StatusUnknownOp, []byte("unknown"))
					case op == wire.OpPut, op == wire.OpPing:
						frame = wire.AppendFrame(nil, wire.StatusOK, nil)
					default:
						frame = wire.AppendFrame(nil, wire.StatusUnknownOp, nil)
					}
					if _, err := nc.Write(frame); err != nil {
						return
					}
				}
			}(nc)
		}
	}()

	cl, err := client.Dial(ln.Addr().String(), client.Options{
		TraceEvery: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// First traced put hits unknown-op, falls back, retries untraced.
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put against old server: %v", err)
	}
	// Tracing is now off for good: no records, and writes keep working.
	if err := cl.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if recs := cl.Traces(); len(recs) != 0 {
		t.Fatalf("records against old server: %+v", recs)
	}
}

// TestOldClientAgainstNewServer pins byte-level compatibility: a client
// that never sets TraceFlag (the default) round-trips unchanged.
func TestOldClientAgainstNewServer(t *testing.T) {
	tr := trace.New(trace.Options{RingSize: 16, Seed: 9})
	_, _, addr := testServer(t, func(o *core.Options) { o.Tracer = tr }, nil)
	nc := rawConn(t, addr)
	put := wire.AppendBytes(nil, []byte("plain"))
	put = wire.AppendBytes(put, []byte("v"))
	if _, err := nc.Write(wire.AppendFrame(nil, wire.OpPut, put)); err != nil {
		t.Fatal(err)
	}
	status, resp, err := readResp(t, nc)
	if err != nil || status != wire.StatusOK || len(resp) != 0 {
		t.Fatalf("plain put: status=%#x resp=%q err=%v", status, resp, err)
	}
	if _, err := nc.Write(wire.AppendFrame(nil, wire.OpGet, wire.AppendBytes(nil, []byte("plain")))); err != nil {
		t.Fatal(err)
	}
	status, resp, err = readResp(t, nc)
	if err != nil || status != wire.StatusOK || string(resp) != "v" {
		t.Fatalf("plain get: status=%#x resp=%q err=%v", status, resp, err)
	}
}
