// Package server exposes a storage engine — a flat core.DB or a
// sharded partition.Store, via the Engine interface — over TCP with
// the length-prefixed binary protocol of internal/wire. Connections
// are pipelined: a client may have many requests in flight; the
// server answers in arrival order. Each connection runs one read
// goroutine (decode, execute) and one write goroutine (respond,
// flush), so reading the next request overlaps with writing the
// previous response.
//
// The write path is the point: pipelined PUT/DELETE frames that are
// already buffered on a connection are folded into a single core.Batch
// and applied once, and concurrent connections issue concurrent Apply
// calls — which the engine's leader-based commit pipeline coalesces
// into commit groups with one WAL write (and one sync) each. Network
// concurrency becomes commit-group coalescing with no extra machinery.
//
// Robustness is part of the contract, not an extra: connection and
// frame-size limits, per-request deadlines, slow-client write
// timeouts, structured error statuses on the wire, and a graceful
// drain that finishes in-flight requests while refusing new ones.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/metrics"
	"lsmlab/internal/trace"
	"lsmlab/internal/wire"
)

// ErrShutdown is returned by Serve when the server was drained.
var ErrShutdown = errors.New("server: shutting down")

// Engine is the store surface the server serves: everything the wire
// verbs and the debug plane need, satisfied by both a single tree
// (*core.DB) and the sharded store (*partition.Store). The serving
// layer is engine-form agnostic — lsmserved -shards N swaps the
// implementation without touching a handler.
type Engine interface {
	GetTraced(key []byte, traceID uint64) ([]byte, error)
	ApplyTraced(b *core.Batch, traceID uint64) error
	NewRangeIter(lower, upper []byte) (core.RangeIter, error)
	Compact() error
	Health() core.Health
	Tracer() *trace.Tracer
	Metrics() metrics.Snapshot
	Latencies() metrics.LatencySnapshot
	TreeStats() core.TreeStats
	SpaceAmplification() float64
	FormatStats(verbose bool) string
	// WorkloadProfile is the engine's live workload characterization
	// and per-level RUM attribution (aggregated across shards for a
	// partitioned store) — the WORKLOAD verb's and /workload's payload.
	WorkloadProfile() core.WorkloadProfile
	// SeqVector is the store's visibility watermark as a per-shard
	// vector (length 1 for a single tree) — the WATERMARK verb's
	// payload, generalizing the read-your-writes token across shards.
	SeqVector() []uint64
}

// Replicator is the replication hook the leader-side serving layer
// forwards the wire replication verbs to (internal/replica.Leader
// implements it). The server stays protocol-agnostic: subscribe, ack,
// and tree requests are parsed here because their payloads are plain
// wire primitives, while repair requests and the status block pass
// through opaquely — their layout belongs to the replica package on
// both ends.
type Replicator interface {
	// NumShards is the shard count subscriptions are validated against.
	NumShards() int
	// Subscribe streams shard's WAL after afterSeq: each payload handed
	// to send becomes one StatusOK frame on the subscriber's connection.
	// It blocks until send fails (dead peer), stopped returns true
	// (server drain), or the stream ends with a gap frame.
	Subscribe(shard int, afterSeq uint64, send func(payload []byte) bool, stopped func() bool) error
	// Ack records a follower's applied-through watermark for one shard.
	Ack(follower string, shard int, appliedSeq uint64) error
	// Tree returns shard's encoded Merkle tree (OpReplTree response).
	Tree(shard int) ([]byte, error)
	// Repair answers one opaque repair-range request, bounding the
	// response to maxBytes.
	Repair(req []byte, maxBytes int) ([]byte, error)
	// Status returns the encoded replication status block.
	Status() []byte
}

// Options configures a Server. The zero value is usable; unset fields
// take the defaults documented per field.
type Options struct {
	// MaxConns caps concurrently served connections; further accepts
	// receive a StatusBusy frame and are closed. Default 256.
	MaxConns int
	// MaxRequestBytes caps a request frame's length field. Oversized
	// frames receive StatusTooLarge and the connection is closed (the
	// unread body makes resynchronization impossible). Responses are
	// bounded by the same cap (scans truncate to fit), so clients
	// should keep their MaxFrameBytes at least this large. Default
	// wire.DefaultMaxFrame.
	MaxRequestBytes int
	// MaxBatchOps caps how many already-buffered pipelined PUT/DELETE
	// frames one connection folds into a single Apply. Default 128.
	MaxBatchOps int
	// MaxScanLimit caps (and defaults) the entry count of one SCAN
	// response. Default 10000.
	MaxScanLimit int
	// WriteTimeout bounds each response write to a slow client; a
	// connection that cannot absorb its responses in time is closed.
	// Default 10s.
	WriteTimeout time.Duration
	// IdleTimeout closes connections with no request for this long.
	// 0 (the default) disables.
	IdleTimeout time.Duration
	// RequestTimeout is the execution deadline for SCAN, the one verb
	// whose cost scales with a client-chosen range: a scan that exceeds
	// it is answered with StatusDeadline (checked while iterating, so a
	// pathological range cannot pin a connection). Point ops complete in
	// bounded time and COMPACT runs to completion, so neither enforces
	// it. 0 (the default) disables.
	RequestTimeout time.Duration
	// Admission meters every data-plane request (GET/SCAN/PUT/DELETE/
	// BATCH) against its tenant — the key prefix before the first '/' —
	// and a global quota. Over-quota requests are answered with
	// StatusThrottled and a retry-after hint instead of being executed.
	// Nil gets a no-quota controller that still counts per-tenant
	// traffic, so /metrics and STATS report tenants even without
	// enforcement. Admin verbs (STATS, COMPACT, PING, HEALTH,
	// WATERMARK) and replication are control plane and never metered.
	Admission *admission.Controller
	// Repl, when non-nil, makes this server a replication leader: the
	// wire replication verbs (subscribe/ack/tree/repair/status) are
	// served through it. Nil (the default) answers those verbs with
	// StatusBadRequest.
	Repl Replicator
	// EventListener receives ConnOpen/ConnClose/RequestBegin/RequestEnd
	// lifecycle events. Same contract as core.Options.EventListener:
	// fast, non-blocking, no calls back into the server.
	EventListener events.Listener
	// NowNs supplies time (injected for deterministic tests).
	NowNs func() int64
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = wire.DefaultMaxFrame
	}
	if o.MaxBatchOps <= 0 {
		o.MaxBatchOps = 128
	}
	if o.MaxScanLimit <= 0 {
		o.MaxScanLimit = 10000
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.NowNs == nil {
		o.NowNs = func() int64 { return time.Now().UnixNano() }
	}
	if o.Admission == nil {
		o.Admission = admission.NewController(admission.Config{NowNs: o.NowNs})
	}
	return o
}

// Server serves one Engine over any net.Listener.
type Server struct {
	db   Engine
	opts Options

	m metrics.Metrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	drain   atomic.Bool // mirrors draining for lock-free reads
	connIDs atomic.Uint64
	reqIDs  atomic.Uint64

	// throttleStart records when each tenant's current throttle episode
	// began, so ThrottleEnd can carry the episode duration.
	throttleMu    sync.Mutex
	throttleStart map[string]int64

	wg sync.WaitGroup // one unit per connection goroutine
}

// New returns a server for db — a *core.DB, a *partition.Store, or any
// other Engine. The engine stays owned by the caller: the server never
// closes it, so an embedded store can outlive its listener.
func New(db Engine, opts Options) *Server {
	return &Server{db: db, opts: opts.withDefaults(), conns: make(map[*conn]struct{}),
		throttleStart: make(map[string]int64)}
}

// Admission exposes the server's admission controller (never nil after
// New), for stats surfaces and tests.
func (s *Server) Admission() *admission.Controller { return s.opts.Admission }

// noteThrottle turns admission episode transitions into events:
// ThrottleBegin when Decision.Entered, ThrottleEnd (with the episode's
// duration) when Decision.Exited. Reason carries the tenant name.
func (s *Server) noteThrottle(tenant string, d admission.Decision) {
	if d.Entered {
		s.throttleMu.Lock()
		s.throttleStart[tenant] = s.opts.NowNs()
		s.throttleMu.Unlock()
		s.emit(events.Event{Type: events.ThrottleBegin, Reason: tenant})
	}
	if d.Exited {
		s.throttleMu.Lock()
		start, ok := s.throttleStart[tenant]
		delete(s.throttleStart, tenant)
		s.throttleMu.Unlock()
		e := events.Event{Type: events.ThrottleEnd, Reason: tenant}
		if ok {
			e.DurationNs = s.opts.NowNs() - start
		}
		s.emit(e)
	}
}

// emit delivers one lifecycle event, stamping the server clock.
func (s *Server) emit(e events.Event) {
	if s.opts.EventListener == nil {
		return
	}
	e.TimeNs = s.opts.NowNs()
	s.opts.EventListener.Notify(e)
}

// Serve accepts connections on ln until ln fails or the server drains.
// It returns nil after a Shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.drain.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		if len(s.conns) >= s.opts.MaxConns {
			s.m.ConnsRejected.Add(1)
			s.mu.Unlock()
			go s.refuse(nc, wire.StatusBusy, "connection limit reached")
			continue
		}
		c := newConn(s, nc)
		s.conns[c] = struct{}{}
		s.wg.Add(2)
		s.mu.Unlock()
		s.m.ConnsOpened.Add(1)
		s.emit(events.Event{Type: events.ConnOpen, JobID: c.id, Path: nc.RemoteAddr().String()})
		go c.readLoop()
		go c.writeLoop()
	}
}

// refuse writes one error frame and closes the connection, bounded by
// the write timeout so a dead peer cannot pin the goroutine.
func (s *Server) refuse(nc net.Conn, status byte, msg string) {
	defer nc.Close()
	nc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	frame := wire.AppendFrame(nil, status, []byte(msg))
	if n, err := nc.Write(frame); err == nil {
		s.m.NetBytesWritten.Add(int64(n))
	}
}

// removeConn finalizes one connection's accounting.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.m.ConnsClosed.Add(1)
	s.emit(events.Event{Type: events.ConnClose, JobID: c.id,
		Path: c.remote, DurationNs: s.opts.NowNs() - c.openedNs})
}

// ConnCount returns the number of connections currently being served.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Metrics returns a snapshot of the server's network counters (the
// engine's counters live on the DB).
func (s *Server) Metrics() metrics.Snapshot { return s.m.Snapshot() }

// Latencies returns the engine's latency histograms with the server's
// request histogram merged in, extending the DB's Latencies plumbing
// across the wire boundary.
func (s *Server) Latencies() metrics.LatencySnapshot {
	lat := s.db.Latencies()
	lat.Request = lat.Request.Merge(s.m.RequestNs.Snapshot())
	return lat
}

// FormatStats renders the engine's stats block with the serving
// layer's counters (and, verbosely, request latency) appended — the
// payload of the STATS admin verb.
func (s *Server) FormatStats(verbose bool) string {
	out := s.db.FormatStats(verbose)
	m := s.m.Snapshot()
	out += fmt.Sprintf("\nserver: conns_open=%d opened=%d rejected=%d requests=%d errors=%d throttled=%d net_read=%dB net_written=%dB",
		m.ConnsOpened-m.ConnsClosed, m.ConnsOpened, m.ConnsRejected,
		m.NetRequests, m.NetRequestErrors, m.NetThrottled, m.NetBytesRead, m.NetBytesWritten)
	// One row per tenant seen, so lsmctl top and the STATS verb show the
	// multi-tenant picture without a scraper.
	for _, t := range s.opts.Admission.Stats() {
		name := t.Tenant
		if name == admission.DefaultTenant {
			name = "(default)"
		}
		out += fmt.Sprintf("\ntenant %s: requests=%d throttled=%d in=%dB out=%dB throttling=%v",
			name, t.Requests, t.Throttled, t.BytesIn, t.BytesOut, t.Throttling)
	}
	// The repl line appears only on nodes that replicate: leaders show
	// shipping counters, followers show apply counters (merged into the
	// engine snapshot by the replica engine wrapper).
	eng := s.db.Metrics()
	if s.opts.Repl != nil || eng.ReplBatchesApplied+eng.ReplRepairOps+eng.ReplGapsSignaled > 0 {
		out += fmt.Sprintf("\nrepl: subscribes=%d frames_shipped=%d gaps=%d acks=%d repair_pages=%d batches_applied=%d repair_ops=%d",
			m.ReplSubscribes, m.ReplFramesShipped, m.ReplGapsSignaled+eng.ReplGapsSignaled,
			m.ReplAcks, m.ReplRepairPages, eng.ReplBatchesApplied, eng.ReplRepairOps)
	}
	if verbose {
		out += fmt.Sprintf("\n  request    %s", s.m.RequestNs.Snapshot())
	}
	return out
}

// Shutdown gracefully drains the server: stop accepting, let every
// in-flight request finish and its response flush, then close all
// connections. Requests not yet read when the drain begins are
// refused by connection close. If the drain outlives grace, remaining
// connections are severed. The DB is left open for the caller (which
// typically checkpoints and closes it next).
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.drain.Store(true)
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	if ln != nil {
		ln.Close()
	}
	// Kick readers out of blocking reads; in-flight handlers and their
	// queued responses still complete before each connection closes.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var timeout <-chan time.Time
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-done:
		return nil
	case <-timeout:
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain exceeded %v; connections severed", grace)
	}
}
