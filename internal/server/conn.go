package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/core"
	"lsmlab/internal/events"
	"lsmlab/internal/trace"
	"lsmlab/internal/wire"
)

// connBufSize sizes the per-connection read and write buffers. The
// read buffer is also the coalescing window: only fully buffered
// pipelined writes fold into one Apply.
const connBufSize = 64 << 10

// conn is one served connection. The read goroutine decodes and
// executes requests in arrival order (which is what makes per-
// connection read-your-writes trivial); encoded responses flow through
// out to the write goroutine, so reading request N+1 overlaps with
// writing response N.
type conn struct {
	s        *Server
	nc       net.Conn
	id       uint64
	remote   string
	openedNs int64

	br *bufio.Reader

	// out carries encoded response frames in request order. The reader
	// blocks here when the writer backs up — natural backpressure from
	// a slow client to its own pipeline.
	out chan []byte

	// wdead is closed when the write goroutine dies early (write
	// timeout or error), unblocking a reader mid-send.
	wdead chan struct{}
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:        s,
		nc:       nc,
		id:       s.connIDs.Add(1),
		remote:   nc.RemoteAddr().String(),
		openedNs: s.opts.NowNs(),
		br:       bufio.NewReaderSize(nc, connBufSize),
		out:      make(chan []byte, 128),
		wdead:    make(chan struct{}),
	}
}

// send queues one encoded response frame, failing if the writer died.
func (c *conn) send(frame []byte) bool {
	select {
	case c.out <- frame:
		return true
	case <-c.wdead:
		return false
	}
}

// respond encodes and queues one response. Error statuses are counted.
func (c *conn) respond(status byte, payload []byte) bool {
	if status >= wire.StatusBadRequest {
		c.s.m.NetRequestErrors.Add(1)
	}
	return c.send(wire.AppendFrame(nil, status, payload))
}

func (c *conn) respondErr(status byte, err error) bool {
	return c.respond(status, []byte(err.Error()))
}

// readLoop decodes and executes requests until the peer closes, an
// unrecoverable protocol error occurs, or the server drains. It owns
// the out channel: closing it tells the writer to flush and tear the
// connection down.
func (c *conn) readLoop() {
	defer c.s.wg.Done()
	defer close(c.out)
	var scratch []byte
	batch := new(core.Batch)
	for {
		if idle := c.s.opts.IdleTimeout; idle > 0 {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		}
		// Drain check after arming the deadline: Shutdown stores the
		// flag and then kicks the read deadline, so either this load
		// observes it or the pending read aborts.
		if c.s.drain.Load() {
			return
		}
		op, payload, buf, err := wire.ReadFrame(c.br, c.s.opts.MaxRequestBytes, scratch)
		scratch = buf
		if err != nil {
			// Frame-level violations get a structured answer before the
			// connection closes; stream-level errors (EOF, reset, the
			// drain kick) just end the connection.
			switch {
			case errors.Is(err, wire.ErrTooLarge):
				c.respondErr(wire.StatusTooLarge, err)
			case errors.Is(err, wire.ErrMalformed):
				c.respondErr(wire.StatusBadRequest, err)
			}
			return
		}
		c.s.m.NetBytesRead.Add(int64(4 + 1 + len(payload)))
		if !c.handle(op, payload, batch) {
			return
		}
	}
}

// writeLoop writes queued responses, flushing whenever the queue goes
// idle, each write bounded by the slow-client timeout. It performs the
// connection's final teardown.
func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()
	bw := bufio.NewWriterSize(c.nc, connBufSize)
	fail := func() {
		close(c.wdead)
		c.nc.Close() // unblocks the reader too
		for range c.out {
		} // discard queued responses so the reader never wedges
	}
	for frame := range c.out {
		c.nc.SetWriteDeadline(time.Now().Add(c.s.opts.WriteTimeout))
		if _, err := bw.Write(frame); err != nil {
			fail()
			return
		}
		c.s.m.NetBytesWritten.Add(int64(len(frame)))
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				fail()
				return
			}
		}
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.s.opts.WriteTimeout))
	bw.Flush()
}

// beginRequest stamps one request's accounting; the returned func
// completes it.
func (c *conn) beginRequest(op byte) func(err error) {
	c.s.m.NetRequests.Add(1)
	reqID := c.s.reqIDs.Add(1)
	start := c.s.opts.NowNs()
	c.s.emit(events.Event{Type: events.RequestBegin, JobID: reqID, Reason: wire.OpName(op)})
	return func(err error) {
		now := c.s.opts.NowNs()
		c.s.m.RequestNs.RecordSince(start, now)
		c.s.emit(events.Event{Type: events.RequestEnd, JobID: reqID,
			Reason: wire.OpName(op), DurationNs: now - start, Err: err})
	}
}

// traceCtx carries one traced request's wire id and arrival time so
// the response can be flagged and stamped with the server-observed
// duration. The zero value means untraced.
type traceCtx struct {
	id      uint64
	startNs int64
}

// respondTraced answers a request, adding the trace echo — flagged
// status, id, server-observed nanoseconds — when the request was
// traced and the status is a success (error statuses are never
// flagged; every client understands them as-is).
func (c *conn) respondTraced(tc traceCtx, status byte, payload []byte) bool {
	if tc.id == 0 || (status != wire.StatusOK && status != wire.StatusNotFound) {
		return c.respond(status, payload)
	}
	echo := wire.AppendTraceEcho(make([]byte, 0, 16+len(payload)), tc.id,
		c.s.opts.NowNs()-tc.startNs)
	return c.respond(status|wire.TraceFlag, append(echo, payload...))
}

// handle executes one request frame (plus, for writes, any pipelined
// write frames already buffered behind it) and queues the responses.
// It returns false when the connection must close.
func (c *conn) handle(op byte, payload []byte, batch *core.Batch) bool {
	var tc traceCtx
	if wire.IsTracedOp(op) {
		id, rest, err := wire.ReadTraceID(payload)
		if err != nil {
			done := c.beginRequest(op)
			done(err)
			return c.respondErr(wire.StatusBadRequest, err)
		}
		if id == 0 {
			// A flagged frame with no id still wants an echo; mint one so
			// the span and the response carry something findable.
			if id = c.s.db.Tracer().NewID(); id == 0 {
				id = 1
			}
		}
		tc = traceCtx{id: id, startNs: c.s.opts.NowNs()}
		op, payload = wire.BaseOp(op), rest
	}
	switch op {
	case wire.OpPut, wire.OpDelete:
		return c.handleWrites(op, payload, batch, tc)
	case wire.OpGet:
		done := c.beginRequest(op)
		key, rest, err := wire.ReadBytes(payload)
		if err != nil || len(rest) != 0 {
			done(wire.ErrMalformed)
			return c.respondErr(wire.StatusBadRequest, wire.ErrMalformed)
		}
		tenant := admission.TenantOf(key)
		if d := c.s.opts.Admission.Admit(tenant, 1, 0); !d.OK {
			done(errThrottled)
			return c.respondThrottled(tenant, d, "tenant read quota exceeded")
		} else {
			c.s.noteThrottle(tenant, d)
		}
		v, err := c.s.db.GetTraced(key, tc.id)
		switch {
		case errors.Is(err, core.ErrNotFound):
			done(nil)
			return c.respondTraced(tc, wire.StatusNotFound, nil)
		case errors.Is(err, core.ErrClosed):
			done(err)
			return c.respondErr(wire.StatusShuttingDown, err)
		case err != nil:
			done(err)
			return c.respondErr(wire.StatusInternal, err)
		}
		// Response bytes could not be known at admit time; charge them
		// now (the byte bucket absorbs the debt).
		c.s.opts.Admission.Charge(tenant, int64(len(v)))
		done(nil)
		return c.respondTraced(tc, wire.StatusOK, v)
	case wire.OpScan:
		return c.handleScan(payload, tc)
	case wire.OpBatch:
		done := c.beginRequest(op)
		batch.Reset()
		costs, err := decodeBatch(payload, batch)
		if err != nil {
			done(err)
			return c.respondErr(wire.StatusBadRequest, err)
		}
		for _, bc := range costs {
			d := c.s.opts.Admission.Admit(bc.tenant, bc.ops, bc.bytes)
			if !d.OK {
				// Tokens already taken for earlier tenants in a (rare)
				// cross-tenant batch stay spent; refill self-corrects.
				done(errThrottled)
				return c.respondThrottled(bc.tenant, d, "tenant write quota exceeded")
			}
			c.s.noteThrottle(bc.tenant, d)
		}
		err = c.s.db.ApplyTraced(batch, tc.id)
		if errors.Is(err, core.ErrBackpressure) {
			retry := backpressureRetry(err)
			for _, bc := range costs[1:] {
				c.s.opts.Admission.Penalize(bc.tenant, retry)
			}
			primary := admission.DefaultTenant
			if len(costs) > 0 {
				primary = costs[0].tenant
			}
			return c.shedWrites(err, []func(error){done}, []string{primary})
		}
		done(err)
		return c.respondApplyTraced(tc, err)
	case wire.OpStats:
		done := c.beginRequest(op)
		verbose := len(payload) > 0 && payload[0] != 0
		text := c.s.FormatStats(verbose)
		done(nil)
		return c.respond(wire.StatusOK, []byte(text))
	case wire.OpWorkload:
		done := c.beginRequest(op)
		body, err := json.Marshal(c.s.db.WorkloadProfile())
		done(err)
		if err != nil {
			return c.respondErr(wire.StatusInternal, err)
		}
		return c.respond(wire.StatusOK, body)
	case wire.OpCompact:
		done := c.beginRequest(op)
		err := c.s.db.Compact()
		done(err)
		return c.respondApply(err)
	case wire.OpPing:
		done := c.beginRequest(op)
		done(nil)
		return c.respond(wire.StatusOK, nil)
	case wire.OpWatermark:
		done := c.beginRequest(op)
		vec := c.s.db.SeqVector()
		resp := wire.AppendUvarint(make([]byte, 0, 8+10*len(vec)), uint64(len(vec)))
		for _, seq := range vec {
			resp = wire.AppendUvarint(resp, seq)
		}
		done(nil)
		return c.respond(wire.StatusOK, resp)
	case wire.OpHealth:
		done := c.beginRequest(op)
		h := c.s.db.Health()
		resp := make([]byte, 1, 64)
		if h.Degraded {
			resp[0] = 1
		}
		resp = wire.AppendBytes(resp, []byte(h.Cause))
		resp = wire.AppendBytes(resp, []byte(h.Op))
		resp = wire.AppendBytes(resp, []byte(h.Kind))
		done(nil)
		return c.respond(wire.StatusOK, resp)
	case wire.OpReplSubscribe:
		return c.handleReplSubscribe(payload)
	case wire.OpReplAck:
		done := c.beginRequest(op)
		repl := c.s.opts.Repl
		if repl == nil {
			done(errReplDisabled)
			return c.respondErr(wire.StatusBadRequest, errReplDisabled)
		}
		id, rest, err := wire.ReadBytes(payload)
		var shard, seq uint64
		if err == nil {
			shard, rest, err = wire.ReadUvarint(rest)
		}
		if err == nil {
			seq, rest, err = wire.ReadUvarint(rest)
		}
		if err != nil || len(rest) != 0 {
			done(wire.ErrMalformed)
			return c.respondErr(wire.StatusBadRequest, wire.ErrMalformed)
		}
		err = repl.Ack(string(id), int(shard), seq)
		if err == nil {
			c.s.m.ReplAcks.Add(1)
		}
		done(err)
		return c.respondRepl(err, nil)
	case wire.OpReplTree:
		done := c.beginRequest(op)
		repl := c.s.opts.Repl
		if repl == nil {
			done(errReplDisabled)
			return c.respondErr(wire.StatusBadRequest, errReplDisabled)
		}
		shard, rest, err := wire.ReadUvarint(payload)
		if err != nil || len(rest) != 0 {
			done(wire.ErrMalformed)
			return c.respondErr(wire.StatusBadRequest, wire.ErrMalformed)
		}
		resp, err := repl.Tree(int(shard))
		done(err)
		return c.respondRepl(err, resp)
	case wire.OpReplRepair:
		done := c.beginRequest(op)
		repl := c.s.opts.Repl
		if repl == nil {
			done(errReplDisabled)
			return c.respondErr(wire.StatusBadRequest, errReplDisabled)
		}
		resp, err := repl.Repair(payload, c.s.opts.MaxRequestBytes-64)
		if err == nil {
			c.s.m.ReplRepairPages.Add(1)
		}
		done(err)
		return c.respondRepl(err, resp)
	case wire.OpReplStatus:
		done := c.beginRequest(op)
		repl := c.s.opts.Repl
		if repl == nil {
			done(errReplDisabled)
			return c.respondErr(wire.StatusBadRequest, errReplDisabled)
		}
		done(nil)
		return c.respond(wire.StatusOK, repl.Status())
	default:
		// Framing was intact, so the stream is still in sync: answer
		// with a structured error and keep the connection.
		done := c.beginRequest(op)
		done(wire.ErrMalformed)
		return c.respond(wire.StatusUnknownOp, []byte(wire.OpName(op)))
	}
}

var errReplDisabled = errors.New("replication not enabled on this server")

// respondRepl maps a Replicator error to a response status: malformed
// requests (bad shard, undecodable payload) are the client's fault,
// everything else is internal.
func (c *conn) respondRepl(err error, resp []byte) bool {
	switch {
	case err == nil:
		return c.respond(wire.StatusOK, resp)
	case errors.Is(err, wire.ErrMalformed):
		return c.respondErr(wire.StatusBadRequest, err)
	default:
		return c.respondErr(wire.StatusInternal, err)
	}
}

// handleReplSubscribe converts the connection into a one-way
// replication stream: the Replicator's send callback queues StatusOK
// frames through the ordinary write goroutine (so slow-follower
// backpressure and write timeouts apply unchanged), and the read loop
// stays parked in the stream until it ends — at which point the
// connection closes, which is what tells the follower to resubscribe
// or repair.
func (c *conn) handleReplSubscribe(payload []byte) bool {
	done := c.beginRequest(wire.OpReplSubscribe)
	repl := c.s.opts.Repl
	if repl == nil {
		done(errReplDisabled)
		c.respondErr(wire.StatusBadRequest, errReplDisabled)
		return false
	}
	id, rest, err := wire.ReadBytes(payload)
	var shard, after uint64
	if err == nil {
		shard, rest, err = wire.ReadUvarint(rest)
	}
	if err == nil {
		after, rest, err = wire.ReadUvarint(rest)
	}
	if err != nil || len(rest) != 0 || int(shard) >= repl.NumShards() {
		done(wire.ErrMalformed)
		c.respondErr(wire.StatusBadRequest, wire.ErrMalformed)
		return false
	}
	_ = id // identity matters on acks; the stream itself is anonymous
	c.s.m.ReplSubscribes.Add(1)
	send := func(p []byte) bool {
		if len(p) > 0 {
			switch p[0] {
			case wire.ReplFrameData:
				c.s.m.ReplFramesShipped.Add(1)
			case wire.ReplFrameGap:
				c.s.m.ReplGapsSignaled.Add(1)
			}
		}
		return c.respond(wire.StatusOK, p)
	}
	stopped := func() bool { return c.s.drain.Load() }
	err = repl.Subscribe(int(shard), after, send, stopped)
	done(err)
	if err != nil {
		c.respondErr(wire.StatusBadRequest, err)
	}
	return false
}

// respondApply maps an Apply/Compact error to a response status.
func (c *conn) respondApply(err error) bool {
	return c.respondApplyTraced(traceCtx{}, err)
}

// respondApplyTraced is respondApply with the request's trace echo on
// the success path.
func (c *conn) respondApplyTraced(tc traceCtx, err error) bool {
	switch {
	case err == nil:
		return c.respondTraced(tc, wire.StatusOK, nil)
	case errors.Is(err, core.ErrClosed):
		return c.respondErr(wire.StatusShuttingDown, err)
	case errors.Is(err, core.ErrDegraded):
		// Read-only mode: the refusal is sticky, so the status is the
		// non-retryable kind — clients surface it instead of looping.
		return c.respondErr(wire.StatusUnavailable, err)
	case errors.Is(err, core.ErrReplica):
		// A replication follower: nothing is wrong, writes just belong
		// on the leader.
		return c.respondErr(wire.StatusReadOnly, err)
	default:
		return c.respondErr(wire.StatusInternal, err)
	}
}

// handleWrites folds the first write plus any pipelined PUT/DELETE
// frames already sitting in the read buffer into one core.Batch and
// applies it once. Each folded frame remains its own request on the
// wire — its own response, metrics, and events — but the engine sees a
// single Apply, whose commit the leader-based pipeline then coalesces
// with other connections' groups.
func (c *conn) handleWrites(op byte, payload []byte, batch *core.Batch, tc traceCtx) bool {
	batch.Reset()
	done := c.beginRequest(op)
	adm := c.s.opts.Admission
	tenant := writeTenant(payload)
	if d := adm.Admit(tenant, 1, int64(len(payload))); !d.OK {
		done(errThrottled)
		return c.respondThrottled(tenant, d, "tenant write quota exceeded")
	} else {
		c.s.noteThrottle(tenant, d)
	}
	if err := addWrite(batch, op, payload); err != nil {
		// The first frame was malformed; nothing batched, stream still
		// framed — answer and keep the connection.
		done(err)
		return c.respondErr(wire.StatusBadRequest, err)
	}
	dones := make([]func(error), 0, 8)
	dones = append(dones, done)
	tenants := make([]string, 0, 8)
	tenants = append(tenants, tenant)
	// A traced write is never folded with its neighbors: its span (and
	// echoed duration) must describe exactly the one request the client
	// asked about. Group commit still coalesces the WAL writes below.
	if tc.id == 0 {
		for len(dones) < c.s.opts.MaxBatchOps {
			op2, payload2, size, ok := c.peekBufferedWrite()
			if !ok {
				break
			}
			// An over-quota frame stops the fold but stays in the read
			// buffer: the main loop picks it up as its own request and
			// answers it with StatusThrottled, keeping responses FIFO.
			t2 := writeTenant(payload2)
			d2 := adm.Admit(t2, 1, int64(len(payload2)))
			if !d2.OK {
				break
			}
			c.s.noteThrottle(t2, d2)
			// Validate before consuming: a malformed frame stays in the read
			// buffer, so the main read loop answers it only after this
			// batch's responses are queued — responses stay FIFO with
			// requests, which is how the client matches them.
			if err := addWrite(batch, op2, payload2); err != nil {
				break
			}
			dones = append(dones, c.beginRequest(op2))
			tenants = append(tenants, t2)
			c.br.Discard(size)
			c.s.m.NetBytesRead.Add(int64(size))
		}
	}
	err := c.s.db.ApplyTraced(batch, tc.id)
	if errors.Is(err, core.ErrBackpressure) {
		return c.shedWrites(err, dones, tenants)
	}
	alive := true
	for i, d := range dones {
		d(err)
		ok := false
		if i == 0 {
			ok = c.respondApplyTraced(tc, err)
		} else {
			ok = c.respondApply(err)
		}
		if !ok {
			alive = false
		}
	}
	return alive
}

// writeTenant extracts the tenant of one PUT/DELETE payload without
// consuming it (malformed payloads land in the default tenant; the
// write itself is then answered as a bad request).
func writeTenant(payload []byte) string {
	key, _, err := wire.ReadBytes(payload)
	if err != nil {
		return admission.DefaultTenant
	}
	return admission.TenantOf(key)
}

// errThrottled annotates RequestEnd events for admission rejections.
var errThrottled = errors.New("throttled: tenant over quota")

// respondThrottled answers one request with StatusThrottled carrying
// the retry-after hint, counting it and opening a throttle episode
// when this rejection is the transition into one.
func (c *conn) respondThrottled(tenant string, d admission.Decision, msg string) bool {
	c.s.m.NetThrottled.Add(1)
	c.s.noteThrottle(tenant, d)
	payload := wire.AppendThrottle(make([]byte, 0, 8+len(msg)),
		admission.RetryAfterMillis(d.RetryAfter), msg)
	return c.respond(wire.StatusThrottled, payload)
}

// shedWrites answers writes aborted by engine backpressure
// (Options.StallTimeout fired under the stalled leader). The abort is
// transient and pre-WAL — nothing was committed — so the response is
// the retryable StatusThrottled, scoped to the tenants that drove the
// overload: their buckets are drained by the retry hint, so admission
// keeps rejecting them for that long while other tenants' requests
// flow untouched.
func (c *conn) shedWrites(err error, dones []func(error), tenants []string) bool {
	retry := backpressureRetry(err)
	adm := c.s.opts.Admission
	seen := make(map[string]bool, 2)
	for _, t := range tenants {
		if !seen[t] {
			seen[t] = true
			adm.Penalize(t, retry)
		}
	}
	msg := err.Error()
	alive := true
	for i, done := range dones {
		done(err)
		d := admission.Decision{RetryAfter: retry, Entered: adm.Shed(tenants[i])}
		if !c.respondThrottled(tenants[i], d, msg) {
			alive = false
		}
	}
	return alive
}

// backpressureRetry derives the retry hint for a shed write from how
// long the engine held the writer before aborting — waiting that long
// again is the best single guess for when room appears. Clamped to
// [10ms, 1s].
func backpressureRetry(err error) time.Duration {
	retry := 50 * time.Millisecond
	var be *core.BackpressureError
	if errors.As(err, &be) && be.WaitedNs > 0 {
		retry = time.Duration(be.WaitedNs)
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	if retry > time.Second {
		retry = time.Second
	}
	return retry
}

// peekBufferedWrite returns the next frame without consuming it, but
// only if it is fully buffered (never blocking the coalescing loop)
// and is a PUT or DELETE. Anything else — partial frames, other
// opcodes, malformed lengths — is left for the main read loop.
func (c *conn) peekBufferedWrite() (op byte, payload []byte, size int, ok bool) {
	buffered := c.br.Buffered()
	if buffered < 5 {
		return 0, nil, 0, false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return 0, nil, 0, false
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || uint64(n) > uint64(c.s.opts.MaxRequestBytes) {
		return 0, nil, 0, false
	}
	size = 4 + int(n)
	if size > buffered {
		return 0, nil, 0, false
	}
	full, err := c.br.Peek(size)
	if err != nil {
		return 0, nil, 0, false
	}
	op = full[4]
	if op != wire.OpPut && op != wire.OpDelete {
		return 0, nil, 0, false
	}
	return op, full[5:size], size, true
}

// addWrite parses one PUT/DELETE payload into the batch (which copies
// the bytes into its arena, so peeked views are safe to pass).
func addWrite(batch *core.Batch, op byte, payload []byte) error {
	key, rest, err := wire.ReadBytes(payload)
	if err != nil {
		return err
	}
	if op == wire.OpDelete {
		if len(rest) != 0 {
			return wire.ErrMalformed
		}
		batch.Delete(key)
		return nil
	}
	value, rest, err := wire.ReadBytes(rest)
	if err != nil || len(rest) != 0 {
		return wire.ErrMalformed
	}
	batch.Put(key, value)
	return nil
}

// batchCost aggregates one tenant's share of an OpBatch payload, for
// admission: ops entries and their key+value bytes.
type batchCost struct {
	tenant string
	ops    int
	bytes  int64
}

// decodeBatch parses an OpBatch payload into the batch and returns the
// per-tenant admission costs in order of first appearance (almost
// always a single entry; the linear search is cheaper than a map).
func decodeBatch(payload []byte, batch *core.Batch) ([]batchCost, error) {
	count, rest, err := wire.ReadUvarint(payload)
	if err != nil {
		return nil, err
	}
	var costs []batchCost
	charge := func(tenant string, bytes int64) {
		for i := range costs {
			if costs[i].tenant == tenant {
				costs[i].ops++
				costs[i].bytes += bytes
				return
			}
		}
		costs = append(costs, batchCost{tenant: tenant, ops: 1, bytes: bytes})
	}
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return nil, wire.ErrTruncated
		}
		kind := rest[0]
		rest = rest[1:]
		var key, value []byte
		key, rest, err = wire.ReadBytes(rest)
		if err != nil {
			return nil, err
		}
		switch kind {
		case wire.BatchPut:
			value, rest, err = wire.ReadBytes(rest)
			if err != nil {
				return nil, err
			}
			batch.Put(key, value)
			charge(admission.TenantOf(key), int64(len(key)+len(value)))
		case wire.BatchDelete:
			batch.Delete(key)
			charge(admission.TenantOf(key), int64(len(key)))
		default:
			return nil, wire.ErrMalformed
		}
	}
	if len(rest) != 0 {
		return nil, wire.ErrMalformed
	}
	return costs, nil
}

// handleScan answers one prefix scan, capped by MaxScanLimit, by
// response size (so the frame never exceeds what a peer with the same
// frame cap will accept), and by the per-request deadline (checked
// while iterating, so a pathological range cannot pin the connection
// past its budget).
func (c *conn) handleScan(payload []byte, tc traceCtx) bool {
	done := c.beginRequest(wire.OpScan)
	// The server-side scan drives its own iterator (size and deadline
	// caps), so it spans itself rather than going through core.Scan.
	var sp *trace.Span
	if tc.id != 0 {
		if tr := c.s.db.Tracer(); tr != nil {
			sp = tr.StartID(trace.OpScan, tc.id)
			sp.Retain()
			defer tr.Finish(sp)
		}
	}
	prefix, rest, err := wire.ReadBytes(payload)
	if err != nil {
		done(err)
		sp.SetErr(err)
		return c.respondErr(wire.StatusBadRequest, err)
	}
	limit64, rest, err := wire.ReadUvarint(rest)
	if err != nil || len(rest) != 0 {
		done(wire.ErrMalformed)
		sp.SetErr(wire.ErrMalformed)
		return c.respondErr(wire.StatusBadRequest, wire.ErrMalformed)
	}
	limit := int(limit64)
	if limit <= 0 || limit > c.s.opts.MaxScanLimit {
		limit = c.s.opts.MaxScanLimit
	}
	tenant := admission.TenantOf(prefix)
	if d := c.s.opts.Admission.Admit(tenant, 1, 0); !d.OK {
		done(errThrottled)
		sp.SetErr(errThrottled)
		return c.respondThrottled(tenant, d, "tenant scan quota exceeded")
	} else {
		c.s.noteThrottle(tenant, d)
	}
	var deadlineNs int64
	if c.s.opts.RequestTimeout > 0 {
		deadlineNs = c.s.opts.NowNs() + int64(c.s.opts.RequestTimeout)
	}

	it, err := c.s.db.NewRangeIter(prefix, prefixEnd(prefix))
	if err != nil {
		done(err)
		sp.SetErr(err)
		if errors.Is(err, core.ErrClosed) {
			return c.respondErr(wire.StatusShuttingDown, err)
		}
		return c.respondErr(wire.StatusInternal, err)
	}
	defer it.Close()
	// Stop before the response frame outgrows MaxRequestBytes: a client
	// enforcing the same cap on responses would otherwise reject the
	// frame and poison its connection. 32 bytes of headroom covers the
	// count uvarint and the frame's own op byte.
	maxBody := c.s.opts.MaxRequestBytes - 32
	body := make([]byte, 0, 512)
	count := 0
	scanned := 0
	iterStart := tc.startNs
	for ok := it.First(); ok && count < limit; ok = it.Next() {
		// The deadline ticks on keys visited, not keys returned: a scan
		// skipping past a foreign namespace must still stay in budget.
		scanned++
		if deadlineNs != 0 && scanned%64 == 0 && c.s.opts.NowNs() > deadlineNs {
			err := errors.New("scan exceeded request deadline")
			done(err)
			sp.SetErr(err)
			return c.respondErr(wire.StatusDeadline, err)
		}
		// Namespace clamp: tenants interleave lexicographically (the
		// default namespace's separator-free keys sort among everyone
		// else's prefixes), so a scan whose prefix spans a boundary —
		// "", or a partial prefix like "acm" — is filtered to the
		// caller's own tenant key by key.
		if admission.TenantOf(it.Key()) != tenant {
			continue
		}
		if len(body)+len(it.Key())+len(it.Value())+2*binary.MaxVarintLen32 > maxBody {
			break
		}
		body = wire.AppendBytes(body, it.Key())
		body = wire.AppendBytes(body, it.Value())
		count++
	}
	if err := it.Err(); err != nil {
		done(err)
		sp.SetErr(err)
		return c.respondErr(wire.StatusInternal, err)
	}
	if sp != nil {
		sp.StageSince("iterate", iterStart, c.s.opts.NowNs())
		sp.AddEntries(count)
		sp.AddBytes(int64(len(body)))
	}
	resp := wire.AppendUvarint(make([]byte, 0, len(body)+4), uint64(count))
	resp = append(resp, body...)
	c.s.opts.Admission.Charge(tenant, int64(len(resp)))
	done(nil)
	return c.respondTraced(tc, wire.StatusOK, resp)
}

// prefixEnd returns the smallest key greater than every key with the
// given prefix, or nil when no upper bound exists (empty or all-0xFF
// prefixes scan to the end).
func prefixEnd(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			end := append([]byte(nil), prefix[:i+1]...)
			end[i]++
			return end
		}
	}
	return nil
}
