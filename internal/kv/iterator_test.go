package kv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func entriesOf(pairs ...string) []Entry {
	// pairs are "key@seq=value"
	var es []Entry
	for _, p := range pairs {
		var k, v string
		var seq int
		if _, err := fmt.Sscanf(p, "%1s@%d=%1s", &k, &seq, &v); err != nil {
			panic(err)
		}
		es = append(es, Entry{Key: MakeKey([]byte(k), SeqNum(seq), KindSet), Value: []byte(v)})
	}
	sort.Slice(es, func(i, j int) bool { return Compare(es[i].Key, es[j].Key) < 0 })
	return es
}

func collect(it Iterator) []string {
	var out []string
	for ok := it.First(); ok; ok = it.Next() {
		ukey, seq, _, _ := ParseKey(it.Key())
		out = append(out, fmt.Sprintf("%s@%d=%s", ukey, seq, it.Value()))
	}
	return out
}

func TestEmptyIterator(t *testing.T) {
	var it EmptyIterator
	if it.First() || it.SeekGE(nil) || it.Next() || it.Valid() {
		t.Error("empty iterator must never be valid")
	}
	if it.Key() != nil || it.Value() != nil || it.Close() != nil {
		t.Error("empty iterator accessors")
	}
}

func TestSliceIterator(t *testing.T) {
	es := entriesOf("a@1=1", "b@2=2", "c@3=3")
	it := NewSliceIterator(es)
	got := collect(it)
	want := []string{"a@1=1", "b@2=2", "c@3=3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if it.Close() != nil {
		t.Error("close")
	}
}

func TestSliceIteratorSeekGE(t *testing.T) {
	es := entriesOf("a@1=1", "c@3=3", "e@5=5")
	it := NewSliceIterator(es)
	if !it.SeekGE(MakeSearchKey([]byte("b"), MaxSeqNum)) {
		t.Fatal("seek b should land on c")
	}
	if string(UserKey(it.Key())) != "c" {
		t.Errorf("landed on %q", UserKey(it.Key()))
	}
	if it.SeekGE(MakeSearchKey([]byte("f"), MaxSeqNum)) {
		t.Error("seek past end must be invalid")
	}
	if !it.SeekGE(MakeSearchKey([]byte("a"), MaxSeqNum)) || string(UserKey(it.Key())) != "a" {
		t.Error("seek to first key")
	}
}

func TestSliceIteratorInvalidAfterEnd(t *testing.T) {
	it := NewSliceIterator(entriesOf("a@1=1"))
	it.First()
	if it.Next() {
		t.Error("next past end")
	}
	if it.Next() {
		t.Error("next stays invalid")
	}
}

func TestMergingIteratorInterleaves(t *testing.T) {
	a := NewSliceIterator(entriesOf("a@1=1", "d@4=4"))
	b := NewSliceIterator(entriesOf("b@2=2", "e@5=5"))
	c := NewSliceIterator(entriesOf("c@3=3"))
	m := NewMergingIterator(a, b, c)
	got := collect(m)
	want := []string{"a@1=1", "b@2=2", "c@3=3", "d@4=4", "e@5=5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergingIteratorVersionsNewestFirst(t *testing.T) {
	// Same user key in two runs: the higher seq must come out first.
	newer := NewSliceIterator(entriesOf("k@9=n"))
	older := NewSliceIterator(entriesOf("k@3=o"))
	m := NewMergingIterator(older, newer) // order of sources must not matter
	got := collect(m)
	want := []string{"k@9=n", "k@3=o"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMergingIteratorSeekGE(t *testing.T) {
	a := NewSliceIterator(entriesOf("a@1=1", "c@3=3"))
	b := NewSliceIterator(entriesOf("b@2=2", "d@4=4"))
	m := NewMergingIterator(a, b)
	if !m.SeekGE(MakeSearchKey([]byte("c"), MaxSeqNum)) {
		t.Fatal("seek c")
	}
	var got []string
	for ; m.Valid(); m.Next() {
		got = append(got, string(UserKey(m.Key())))
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"c", "d"}) {
		t.Errorf("got %v", got)
	}
}

func TestMergingIteratorEmptySources(t *testing.T) {
	m := NewMergingIterator(EmptyIterator{}, NewSliceIterator(nil), nil)
	if m.First() {
		t.Error("all-empty merge must be invalid")
	}
	if m.Next() {
		t.Error("next on empty merge")
	}
	if m.Close() != nil {
		t.Error("close")
	}
}

func TestMergingIteratorRandomizedAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var all []Entry
		var iters []Iterator
		nRuns := 1 + r.Intn(5)
		seq := SeqNum(1)
		for i := 0; i < nRuns; i++ {
			var run []Entry
			n := r.Intn(30)
			for j := 0; j < n; j++ {
				k := []byte{byte('a' + r.Intn(20))}
				e := Entry{Key: MakeKey(k, seq, KindSet), Value: []byte{byte(seq)}}
				seq++
				run = append(run, e)
			}
			sort.Slice(run, func(x, y int) bool { return Compare(run[x].Key, run[y].Key) < 0 })
			all = append(all, run...)
			iters = append(iters, NewSliceIterator(run))
		}
		sort.Slice(all, func(x, y int) bool { return Compare(all[x].Key, all[y].Key) < 0 })
		m := NewMergingIterator(iters...)
		i := 0
		for ok := m.First(); ok; ok = m.Next() {
			if Compare(m.Key(), all[i].Key) != 0 {
				t.Fatalf("trial %d: position %d mismatch", trial, i)
			}
			i++
		}
		if i != len(all) {
			t.Fatalf("trial %d: merged %d entries, want %d", trial, i, len(all))
		}
	}
}
