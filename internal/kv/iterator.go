package kv

import "container/heap"

// Iterator is the uniform iteration interface over sorted runs of
// internal keys. Implementations exist for memtables, SSTable blocks,
// whole SSTables, level concatenations, and merged views.
//
// The positioning methods return true when the iterator lands on a valid
// entry. Key and Value must only be called while the iterator is valid;
// the returned slices are only guaranteed to remain stable until the next
// positioning call.
type Iterator interface {
	// First positions at the first entry.
	First() bool
	// SeekGE positions at the first entry with internal key >= ikey.
	SeekGE(ikey []byte) bool
	// Next advances to the next entry.
	Next() bool
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Key returns the current internal key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Close releases resources. The iterator must not be used after.
	Close() error
}

// IterError surfaces the deferred read error of an iterator, if it
// keeps one. Block-backed iterators cannot fail inline — positioning
// returns false both at end-of-data and on a bad block — so a consumer
// that treats exhaustion as success (compaction, scans) must check this
// after the loop or it will silently truncate the stream.
func IterError(it Iterator) error {
	if e, ok := it.(interface{ Error() error }); ok {
		return e.Error()
	}
	return nil
}

// EmptyIterator is an Iterator over nothing.
type EmptyIterator struct{}

// First implements Iterator.
func (EmptyIterator) First() bool { return false }

// SeekGE implements Iterator.
func (EmptyIterator) SeekGE([]byte) bool { return false }

// Next implements Iterator.
func (EmptyIterator) Next() bool { return false }

// Valid implements Iterator.
func (EmptyIterator) Valid() bool { return false }

// Key implements Iterator.
func (EmptyIterator) Key() []byte { return nil }

// Value implements Iterator.
func (EmptyIterator) Value() []byte { return nil }

// Close implements Iterator.
func (EmptyIterator) Close() error { return nil }

// SliceIterator iterates over an in-memory slice of entries that must
// already be sorted by Compare. It is used by vector memtables, tests,
// and compaction of buffered runs.
type SliceIterator struct {
	entries []Entry
	idx     int
}

// NewSliceIterator returns an iterator over entries, which must be
// sorted by Compare and must not be mutated while iterating.
func NewSliceIterator(entries []Entry) *SliceIterator {
	return &SliceIterator{entries: entries, idx: -1}
}

// First implements Iterator.
func (it *SliceIterator) First() bool {
	it.idx = 0
	return it.Valid()
}

// SeekGE implements Iterator.
func (it *SliceIterator) SeekGE(ikey []byte) bool {
	lo, hi := 0, len(it.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(it.entries[mid].Key, ikey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.idx = lo
	return it.Valid()
}

// Next implements Iterator.
func (it *SliceIterator) Next() bool {
	if it.idx < len(it.entries) {
		it.idx++
	}
	return it.Valid()
}

// Valid implements Iterator.
func (it *SliceIterator) Valid() bool { return it.idx >= 0 && it.idx < len(it.entries) }

// Key implements Iterator.
func (it *SliceIterator) Key() []byte { return it.entries[it.idx].Key }

// Value implements Iterator.
func (it *SliceIterator) Value() []byte { return it.entries[it.idx].Value }

// Close implements Iterator.
func (it *SliceIterator) Close() error { return nil }

// mergeItem is one source iterator inside a MergingIterator.
type mergeItem struct {
	iter Iterator
	// index breaks ties deterministically (lower index = newer source),
	// though with unique sequence numbers ties cannot occur in practice.
	index int
}

type mergeHeap []*mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := Compare(h[i].iter.Key(), h[j].iter.Key()); c != 0 {
		return c < 0
	}
	return h[i].index < h[j].index
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// MergingIterator merges any number of sorted iterators into one sorted
// stream of internal keys. It performs a k-way merge with a binary heap;
// every version of every key is surfaced (no de-duplication — that is
// the job of compaction iterators and read paths, which also know about
// snapshots and tombstones).
type MergingIterator struct {
	all  []*mergeItem
	heap mergeHeap
	err  error
}

// NewMergingIterator merges the given iterators. Order matters only for
// tie-breaking: earlier iterators win ties (they should be the newer
// sources).
func NewMergingIterator(iters ...Iterator) *MergingIterator {
	m := &MergingIterator{}
	for i, it := range iters {
		if it == nil {
			continue
		}
		m.all = append(m.all, &mergeItem{iter: it, index: i})
	}
	return m
}

// First implements Iterator.
func (m *MergingIterator) First() bool {
	m.heap = m.heap[:0]
	for _, item := range m.all {
		if item.iter.First() {
			m.heap = append(m.heap, item)
		} else {
			m.noteExhausted(item.iter)
		}
	}
	heap.Init(&m.heap)
	return m.Valid()
}

// SeekGE implements Iterator.
func (m *MergingIterator) SeekGE(ikey []byte) bool {
	m.heap = m.heap[:0]
	for _, item := range m.all {
		if item.iter.SeekGE(ikey) {
			m.heap = append(m.heap, item)
		} else {
			m.noteExhausted(item.iter)
		}
	}
	heap.Init(&m.heap)
	return m.Valid()
}

// Next implements Iterator.
func (m *MergingIterator) Next() bool {
	if len(m.heap) == 0 {
		return false
	}
	top := m.heap[0]
	if top.iter.Next() {
		heap.Fix(&m.heap, 0)
	} else {
		m.noteExhausted(top.iter)
		heap.Pop(&m.heap)
	}
	return m.Valid()
}

// noteExhausted records why a source stopped yielding: a source that
// "ends" on a bad block must not masquerade as a short but healthy run.
func (m *MergingIterator) noteExhausted(it Iterator) {
	if m.err == nil {
		m.err = IterError(it)
	}
}

// Error returns the first deferred read error of any merged source.
// A merge that consumed a corrupt table looks exhausted, not failed, so
// compaction and scan loops must check this after iterating.
func (m *MergingIterator) Error() error { return m.err }

// Valid implements Iterator.
func (m *MergingIterator) Valid() bool { return len(m.heap) > 0 }

// Key implements Iterator.
func (m *MergingIterator) Key() []byte { return m.heap[0].iter.Key() }

// Value implements Iterator.
func (m *MergingIterator) Value() []byte { return m.heap[0].iter.Value() }

// Close closes every source iterator, returning the deferred read
// error if one occurred, else the first close error.
func (m *MergingIterator) Close() error {
	first := m.err
	for _, item := range m.all {
		if err := item.iter.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.all = nil
	m.heap = nil
	return first
}
