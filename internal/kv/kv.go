// Package kv defines the entry model shared by every component of the
// LSM engine: user keys, internal keys with sequence numbers and kinds,
// tombstones, range tombstones, and the comparator that orders them.
//
// An internal key is the user key followed by an 8-byte trailer that
// packs a 56-bit sequence number and an 8-bit kind. Internal keys for
// the same user key order newest-first (higher sequence numbers sort
// earlier), which lets point lookups stop at the first visible entry —
// the LSM invariant that "the youngest run containing a key holds its
// latest version" is realized by this ordering.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// SeqNum is a monotonically increasing sequence number assigned to every
// write. Only the low 56 bits are usable; the top byte of the trailer
// holds the kind.
type SeqNum uint64

// MaxSeqNum is the largest representable sequence number. Lookups use it
// to mean "the latest visible version".
const MaxSeqNum SeqNum = (1 << 56) - 1

// Kind describes what an entry does to its user key.
type Kind uint8

const (
	// KindDelete is a point tombstone: it logically invalidates every
	// older version of the key.
	KindDelete Kind = 0
	// KindSingleDelete deletes exactly the most recent older version of
	// the key; compaction drops the tombstone together with the first
	// matching entry (RocksDB's SingleDelete, for unique-insert
	// workloads).
	KindSingleDelete Kind = 1
	// KindRangeDelete marks the start of a range tombstone; the entry
	// value holds the exclusive end key.
	KindRangeDelete Kind = 2
	// KindSet is a regular key-value insertion or update.
	KindSet Kind = 3
	// KindValuePointer is a WiscKey-style entry whose value is a pointer
	// into the value log rather than the value itself.
	KindValuePointer Kind = 4
	// KindMerge is a read-modify-write operand (RocksDB merge operator,
	// FASTER-style RMW; tutorial §2.2.6): the value is an operand that a
	// user-supplied operator folds into the key's base value at read or
	// compaction time.
	KindMerge Kind = 5

	// kindMax is the largest kind value; used in seek keys so that a
	// SeekGE positions at the newest entry for a user key.
	kindMax Kind = 255
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "DELETE"
	case KindSingleDelete:
		return "SINGLEDELETE"
	case KindRangeDelete:
		return "RANGEDELETE"
	case KindSet:
		return "SET"
	case KindValuePointer:
		return "VALUEPOINTER"
	case KindMerge:
		return "MERGE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// TrailerLen is the length in bytes of the internal-key trailer.
const TrailerLen = 8

// MakeTrailer packs a sequence number and kind into a trailer value.
func MakeTrailer(seq SeqNum, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// MakeKey builds an internal key from a user key, sequence number, and
// kind. The returned slice is freshly allocated.
func MakeKey(ukey []byte, seq SeqNum, kind Kind) []byte {
	ik := make([]byte, len(ukey)+TrailerLen)
	copy(ik, ukey)
	binary.BigEndian.PutUint64(ik[len(ukey):], MakeTrailer(seq, kind))
	return ik
}

// MakeSearchKey builds the internal key that SeekGE uses to find the
// newest entry for ukey visible at snapshot seq.
func MakeSearchKey(ukey []byte, seq SeqNum) []byte {
	return MakeKey(ukey, seq, kindMax)
}

// AppendKey appends the internal key for (ukey, seq, kind) to dst and
// returns the extended slice. It is the allocation-free counterpart of
// MakeKey: callers that reuse dst across lookups pay no per-call heap
// allocation once the buffer has grown to the working key length.
func AppendKey(dst, ukey []byte, seq SeqNum, kind Kind) []byte {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.BigEndian.PutUint64(tr[:], MakeTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// AppendSearchKey appends the search key for (ukey, seq) to dst — the
// allocation-free counterpart of MakeSearchKey for hot read paths.
func AppendSearchKey(dst, ukey []byte, seq SeqNum) []byte {
	return AppendKey(dst, ukey, seq, kindMax)
}

// UserKey returns the user-key portion of an internal key. The returned
// slice aliases ikey.
func UserKey(ikey []byte) []byte {
	if len(ikey) < TrailerLen {
		return nil
	}
	return ikey[:len(ikey)-TrailerLen]
}

// Trailer returns the packed trailer of an internal key.
func Trailer(ikey []byte) uint64 {
	if len(ikey) < TrailerLen {
		return 0
	}
	return binary.BigEndian.Uint64(ikey[len(ikey)-TrailerLen:])
}

// ParseKey splits an internal key into its parts. The user key aliases
// ikey. ok is false if ikey is too short to contain a trailer.
func ParseKey(ikey []byte) (ukey []byte, seq SeqNum, kind Kind, ok bool) {
	if len(ikey) < TrailerLen {
		return nil, 0, 0, false
	}
	t := Trailer(ikey)
	return ikey[:len(ikey)-TrailerLen], SeqNum(t >> 8), Kind(t & 0xff), true
}

// SeqOf returns the sequence number of an internal key.
func SeqOf(ikey []byte) SeqNum { return SeqNum(Trailer(ikey) >> 8) }

// KindOf returns the kind of an internal key.
func KindOf(ikey []byte) Kind { return Kind(Trailer(ikey) & 0xff) }

// Compare orders two internal keys: ascending by user key, then
// descending by sequence number, then descending by kind. This is the
// canonical LSM ordering — for one user key, newer entries come first.
func Compare(a, b []byte) int {
	au, bu := UserKey(a), UserKey(b)
	if c := bytes.Compare(au, bu); c != 0 {
		return c
	}
	at, bt := Trailer(a), Trailer(b)
	switch {
	case at > bt:
		return -1
	case at < bt:
		return +1
	default:
		return 0
	}
}

// CompareUser orders two user keys. It exists so that components depend
// on one comparator definition; the engine orders user keys bytewise.
func CompareUser(a, b []byte) int { return bytes.Compare(a, b) }

// Visible reports whether an entry with sequence number seq is visible
// to a reader at snapshot snap.
func Visible(seq, snap SeqNum) bool { return seq <= snap }

// Entry is an internal key together with its value. For KindRangeDelete
// entries the value holds the exclusive end of the deleted range.
type Entry struct {
	Key   []byte // internal key
	Value []byte
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	return Entry{Key: append([]byte(nil), e.Key...), Value: append([]byte(nil), e.Value...)}
}

// UserKey returns the entry's user key (aliasing e.Key).
func (e Entry) UserKey() []byte { return UserKey(e.Key) }

// Seq returns the entry's sequence number.
func (e Entry) Seq() SeqNum { return SeqOf(e.Key) }

// Kind returns the entry's kind.
func (e Entry) Kind() Kind { return KindOf(e.Key) }

// String formats the entry for debugging.
func (e Entry) String() string {
	return fmt.Sprintf("%q@%d#%s=%q", e.UserKey(), e.Seq(), e.Kind(), e.Value)
}

// RangeTombstone deletes every key in [Start, End) with sequence number
// at most Seq.
type RangeTombstone struct {
	Start []byte
	End   []byte
	Seq   SeqNum
}

// Covers reports whether the tombstone deletes user key ukey at sequence
// number seq.
func (t RangeTombstone) Covers(ukey []byte, seq SeqNum) bool {
	return seq <= t.Seq &&
		bytes.Compare(t.Start, ukey) <= 0 &&
		bytes.Compare(ukey, t.End) < 0
}

// Empty reports whether the tombstone covers no keys.
func (t RangeTombstone) Empty() bool { return bytes.Compare(t.Start, t.End) >= 0 }

// KeyRange is an inclusive range of user keys, used for file metadata
// and compaction overlap computation.
type KeyRange struct {
	Smallest []byte // inclusive
	Largest  []byte // inclusive
}

// Contains reports whether the range contains ukey.
func (r KeyRange) Contains(ukey []byte) bool {
	return bytes.Compare(r.Smallest, ukey) <= 0 && bytes.Compare(ukey, r.Largest) <= 0
}

// Overlaps reports whether two inclusive key ranges intersect.
func (r KeyRange) Overlaps(o KeyRange) bool {
	return bytes.Compare(r.Smallest, o.Largest) <= 0 && bytes.Compare(o.Smallest, r.Largest) <= 0
}

// Extend grows the range to include ukey.
func (r *KeyRange) Extend(ukey []byte) {
	if r.Smallest == nil || bytes.Compare(ukey, r.Smallest) < 0 {
		r.Smallest = append([]byte(nil), ukey...)
	}
	if r.Largest == nil || bytes.Compare(ukey, r.Largest) > 0 {
		r.Largest = append([]byte(nil), ukey...)
	}
}
