package kv

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMakeParseKey(t *testing.T) {
	cases := []struct {
		ukey string
		seq  SeqNum
		kind Kind
	}{
		{"", 0, KindSet},
		{"a", 1, KindDelete},
		{"hello", MaxSeqNum, KindSet},
		{"k", 42, KindSingleDelete},
		{"range", 7, KindRangeDelete},
		{"vp", 99, KindValuePointer},
	}
	for _, c := range cases {
		ik := MakeKey([]byte(c.ukey), c.seq, c.kind)
		ukey, seq, kind, ok := ParseKey(ik)
		if !ok {
			t.Fatalf("ParseKey(%q) not ok", ik)
		}
		if string(ukey) != c.ukey || seq != c.seq || kind != c.kind {
			t.Errorf("roundtrip: got (%q,%d,%v), want (%q,%d,%v)", ukey, seq, kind, c.ukey, c.seq, c.kind)
		}
		if got := string(UserKey(ik)); got != c.ukey {
			t.Errorf("UserKey = %q, want %q", got, c.ukey)
		}
		if SeqOf(ik) != c.seq {
			t.Errorf("SeqOf = %d, want %d", SeqOf(ik), c.seq)
		}
		if KindOf(ik) != c.kind {
			t.Errorf("KindOf = %v, want %v", KindOf(ik), c.kind)
		}
	}
}

func TestParseKeyTooShort(t *testing.T) {
	if _, _, _, ok := ParseKey([]byte("short")); ok {
		t.Error("ParseKey on short key should fail")
	}
	if UserKey([]byte("abc")) != nil {
		t.Error("UserKey on short key should be nil")
	}
}

func TestCompareOrdersUserKeysAscending(t *testing.T) {
	a := MakeKey([]byte("a"), 5, KindSet)
	b := MakeKey([]byte("b"), 1, KindSet)
	if Compare(a, b) >= 0 {
		t.Error("a@5 should sort before b@1")
	}
	if Compare(b, a) <= 0 {
		t.Error("b@1 should sort after a@5")
	}
}

func TestCompareOrdersSeqDescending(t *testing.T) {
	newer := MakeKey([]byte("k"), 10, KindSet)
	older := MakeKey([]byte("k"), 3, KindSet)
	if Compare(newer, older) >= 0 {
		t.Error("newer entry must sort before older entry for same user key")
	}
}

func TestCompareEqual(t *testing.T) {
	a := MakeKey([]byte("k"), 10, KindSet)
	b := MakeKey([]byte("k"), 10, KindSet)
	if Compare(a, b) != 0 {
		t.Error("identical keys must compare equal")
	}
}

func TestSearchKeySortsBeforeAllVersions(t *testing.T) {
	// A search key at snapshot seq must be <= every entry for the same
	// user key with seq' <= seq, and > entries with seq' > seq.
	search := MakeSearchKey([]byte("k"), 10)
	atSnap := MakeKey([]byte("k"), 10, KindSet)
	below := MakeKey([]byte("k"), 9, KindDelete)
	above := MakeKey([]byte("k"), 11, KindSet)
	if Compare(search, atSnap) > 0 {
		t.Error("search key must be <= entry at snapshot seq")
	}
	if Compare(search, below) > 0 {
		t.Error("search key must be <= older entries")
	}
	if Compare(search, above) <= 0 {
		t.Error("search key must be > newer-than-snapshot entries")
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	gen := func(seed int64) []byte {
		r := rand.New(rand.NewSource(seed))
		k := make([]byte, r.Intn(6))
		r.Read(k)
		return MakeKey(k, SeqNum(r.Intn(100)), Kind(r.Intn(4)))
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		// Antisymmetry.
		if sgn(Compare(a, b)) != -sgn(Compare(b, a)) {
			return false
		}
		// Transitivity.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sgn(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestRangeTombstoneCovers(t *testing.T) {
	rt := RangeTombstone{Start: []byte("b"), End: []byte("f"), Seq: 10}
	cases := []struct {
		key  string
		seq  SeqNum
		want bool
	}{
		{"b", 5, true},
		{"e", 10, true},
		{"f", 5, false},  // end exclusive
		{"a", 5, false},  // before start
		{"c", 11, false}, // newer than tombstone
		{"c", 10, true},
	}
	for _, c := range cases {
		if got := rt.Covers([]byte(c.key), c.seq); got != c.want {
			t.Errorf("Covers(%q,%d) = %v, want %v", c.key, c.seq, got, c.want)
		}
	}
}

func TestRangeTombstoneEmpty(t *testing.T) {
	if !(RangeTombstone{Start: []byte("b"), End: []byte("b")}).Empty() {
		t.Error("start==end should be empty")
	}
	if !(RangeTombstone{Start: []byte("c"), End: []byte("b")}).Empty() {
		t.Error("start>end should be empty")
	}
	if (RangeTombstone{Start: []byte("a"), End: []byte("b")}).Empty() {
		t.Error("start<end should not be empty")
	}
}

func TestKeyRange(t *testing.T) {
	r := KeyRange{Smallest: []byte("c"), Largest: []byte("g")}
	if !r.Contains([]byte("c")) || !r.Contains([]byte("g")) || !r.Contains([]byte("e")) {
		t.Error("inclusive bounds must be contained")
	}
	if r.Contains([]byte("b")) || r.Contains([]byte("h")) {
		t.Error("outside keys must not be contained")
	}
	if !r.Overlaps(KeyRange{Smallest: []byte("a"), Largest: []byte("c")}) {
		t.Error("touching at smallest must overlap")
	}
	if !r.Overlaps(KeyRange{Smallest: []byte("g"), Largest: []byte("z")}) {
		t.Error("touching at largest must overlap")
	}
	if r.Overlaps(KeyRange{Smallest: []byte("h"), Largest: []byte("z")}) {
		t.Error("disjoint ranges must not overlap")
	}
}

func TestKeyRangeExtend(t *testing.T) {
	var r KeyRange
	r.Extend([]byte("m"))
	if string(r.Smallest) != "m" || string(r.Largest) != "m" {
		t.Fatalf("after first extend: %q..%q", r.Smallest, r.Largest)
	}
	r.Extend([]byte("a"))
	r.Extend([]byte("z"))
	if string(r.Smallest) != "a" || string(r.Largest) != "z" {
		t.Fatalf("after extends: %q..%q", r.Smallest, r.Largest)
	}
}

func TestEntryAccessors(t *testing.T) {
	e := Entry{Key: MakeKey([]byte("k"), 9, KindSet), Value: []byte("v")}
	if string(e.UserKey()) != "k" || e.Seq() != 9 || e.Kind() != KindSet {
		t.Errorf("accessors wrong: %v", e)
	}
	c := e.Clone()
	c.Key[0] = 'x'
	c.Value[0] = 'y'
	if string(e.UserKey()) != "k" || string(e.Value) != "v" {
		t.Error("Clone must deep-copy")
	}
}

func TestVisible(t *testing.T) {
	if !Visible(5, 5) || !Visible(4, 5) || Visible(6, 5) {
		t.Error("Visible is seq <= snap")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindSet: "SET", KindDelete: "DELETE", KindSingleDelete: "SINGLEDELETE",
		KindRangeDelete: "RANGEDELETE", KindValuePointer: "VALUEPOINTER", Kind(200): "KIND(200)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCompareMatchesSortSemantics(t *testing.T) {
	// Build a shuffled set of versions and check that sorting by Compare
	// yields user keys ascending and, within a user key, seqs descending.
	var keys [][]byte
	for _, uk := range []string{"a", "b", "c"} {
		for seq := SeqNum(1); seq <= 5; seq++ {
			keys = append(keys, MakeKey([]byte(uk), seq, KindSet))
		}
	}
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	sort.Slice(keys, func(i, j int) bool { return Compare(keys[i], keys[j]) < 0 })
	for i := 1; i < len(keys); i++ {
		prevU, curU := UserKey(keys[i-1]), UserKey(keys[i])
		if c := bytes.Compare(prevU, curU); c > 0 {
			t.Fatal("user keys out of order")
		} else if c == 0 && SeqOf(keys[i-1]) <= SeqOf(keys[i]) {
			t.Fatal("seqs not descending within user key")
		}
	}
}
