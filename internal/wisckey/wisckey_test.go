package wisckey

import (
	"fmt"
	"testing"

	"lsmlab/internal/vfs"
)

func TestAppendReadRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	l, err := Open(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type rec struct {
		k, v string
		p    Pointer
	}
	var recs []rec
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := fmt.Sprintf("value-%03d-%s", i, string(make([]byte, i)))
		p, err := l.Append([]byte(k), []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{k, v, p})
	}
	for _, r := range recs {
		v, err := l.Read(r.p)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != r.v {
			t.Fatalf("read %s: wrong value", r.k)
		}
	}
}

func TestPointerEncoding(t *testing.T) {
	p := Pointer{FileNum: 7, Offset: 12345, Length: 99}
	q, err := DecodePointer(p.Encode())
	if err != nil || q != p {
		t.Fatalf("roundtrip: %+v %v", q, err)
	}
	if _, err := DecodePointer([]byte("short")); err == nil {
		t.Error("short pointer accepted")
	}
}

func TestRotation(t *testing.T) {
	fs := vfs.NewMem()
	l, _ := Open(fs, ".")
	defer l.Close()
	l.SetMaxFileSize(256)
	var ptrs []Pointer
	for i := 0; i < 20; i++ {
		p, err := l.Append([]byte("k"), make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Rotation must have produced multiple segments.
	files := map[uint64]bool{}
	for _, p := range ptrs {
		files[p.FileNum] = true
	}
	if len(files) < 5 {
		t.Errorf("expected many segments, got %d", len(files))
	}
	// All pointers still readable.
	for _, p := range ptrs {
		if v, err := l.Read(p); err != nil || len(v) != 100 {
			t.Fatalf("read after rotation: %v", err)
		}
	}
}

func TestScanFile(t *testing.T) {
	fs := vfs.NewMem()
	l, _ := Open(fs, ".")
	defer l.Close()
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)
		l.Append([]byte(k), []byte(v))
		want[k] = v
	}
	num := l.activeNum
	l.RotateForGC()
	got := map[string]string{}
	err := l.ScanFile(num, func(key, value []byte, p Pointer) error {
		got[string(key)] = string(value)
		if p.FileNum != num {
			t.Error("pointer file mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("record %s: %q want %q", k, got[k], v)
		}
	}
}

func TestOldestSealedAndRemove(t *testing.T) {
	fs := vfs.NewMem()
	l, _ := Open(fs, ".")
	defer l.Close()
	if _, ok := l.OldestSealed(); ok {
		t.Error("fresh log has no sealed segments")
	}
	l.Append([]byte("k"), []byte("v"))
	l.RotateForGC()
	num, ok := l.OldestSealed()
	if !ok {
		t.Fatal("rotation must seal a segment")
	}
	before := l.DiskBytes()
	if err := l.Remove(num); err != nil {
		t.Fatal(err)
	}
	if l.DiskBytes() >= before {
		t.Error("remove must shrink footprint")
	}
	if err := l.Remove(l.activeNum); err == nil {
		t.Error("removing the active segment must fail")
	}
}

func TestReopenContinuesNumbering(t *testing.T) {
	fs := vfs.NewMem()
	l, _ := Open(fs, ".")
	p1, _ := l.Append([]byte("k"), []byte("v"))
	l.Close()
	l2, err := Open(fs, ".")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	p2, _ := l2.Append([]byte("k2"), []byte("v2"))
	if p2.FileNum <= p1.FileNum {
		t.Errorf("segment numbering must advance: %d then %d", p1.FileNum, p2.FileNum)
	}
	// Old pointers readable after reopen.
	if v, err := l2.Read(p1); err != nil || string(v) != "v" {
		t.Fatalf("old pointer after reopen: %q %v", v, err)
	}
}

func TestDiskBytes(t *testing.T) {
	fs := vfs.NewMem()
	l, _ := Open(fs, ".")
	defer l.Close()
	if l.DiskBytes() != 0 {
		t.Error("fresh log nonzero")
	}
	l.Append([]byte("key"), make([]byte, 1000))
	if l.DiskBytes() < 1000 {
		t.Errorf("footprint %d", l.DiskBytes())
	}
}
