// Package wisckey implements WiscKey-style key–value separation
// (tutorial §2.2.2, [78]): large values live in an append-only value
// log, and the LSM-tree stores only small pointer entries. Compactions
// then move pointers instead of payloads, cutting write amplification
// roughly by the value/key size ratio; the log is garbage-collected by
// re-appending still-live values and dropping dead files.
package wisckey

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"lsmlab/internal/vfs"
)

// ErrCorrupt reports a damaged value-log record.
var ErrCorrupt = errors.New("wisckey: corrupt value log")

// PointerLen is the encoded size of a Pointer.
const PointerLen = 20

// Pointer locates one value inside the log.
type Pointer struct {
	FileNum uint64
	Offset  uint64
	Length  uint32 // total record length
}

// Encode serializes the pointer (fixed 20 bytes).
func (p Pointer) Encode() []byte {
	buf := make([]byte, PointerLen)
	binary.LittleEndian.PutUint64(buf[0:], p.FileNum)
	binary.LittleEndian.PutUint64(buf[8:], p.Offset)
	binary.LittleEndian.PutUint32(buf[16:], p.Length)
	return buf
}

// DecodePointer parses an encoded pointer.
func DecodePointer(buf []byte) (Pointer, error) {
	if len(buf) != PointerLen {
		return Pointer{}, fmt.Errorf("%w: pointer length %d", ErrCorrupt, len(buf))
	}
	return Pointer{
		FileNum: binary.LittleEndian.Uint64(buf[0:]),
		Offset:  binary.LittleEndian.Uint64(buf[8:]),
		Length:  binary.LittleEndian.Uint32(buf[16:]),
	}, nil
}

// DefaultFileSize is the log segment size that triggers rotation.
const DefaultFileSize = 16 << 20

// Log is the append-only value log. Records are
//
//	keyLen (uvarint) | valueLen (uvarint) | key | value
//
// Keys are stored alongside values so that garbage collection can ask
// the tree whether a record is still live.
type Log struct {
	fs  vfs.FS
	dir string

	mu          sync.Mutex
	active      vfs.File
	activeNum   uint64
	offset      uint64
	maxFileSize uint64
	sizes       map[uint64]uint64 // fileNum → bytes (sealed and active)
}

// Open scans dir for existing value-log segments and opens a fresh
// active segment after the highest.
func Open(fs vfs.FS, dir string) (*Log, error) {
	l := &Log{fs: fs, dir: dir, maxFileSize: DefaultFileSize, sizes: make(map[uint64]uint64)}
	names, err := fs.List(dir)
	if err != nil {
		return nil, err
	}
	var max uint64
	for _, name := range names {
		if !strings.HasSuffix(name, ".vlog") {
			continue
		}
		num, err := strconv.ParseUint(strings.TrimSuffix(name, ".vlog"), 10, 64)
		if err != nil {
			continue
		}
		f, err := fs.Open(vfs.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sz, err := f.Size()
		f.Close()
		if err != nil {
			return nil, err
		}
		l.sizes[num] = uint64(sz)
		if num > max {
			max = num
		}
	}
	if err := l.rotateLocked(max + 1); err != nil {
		return nil, err
	}
	return l, nil
}

// SetMaxFileSize overrides the rotation threshold (tests use small
// segments).
func (l *Log) SetMaxFileSize(n uint64) {
	l.mu.Lock()
	l.maxFileSize = n
	l.mu.Unlock()
}

func (l *Log) rotateLocked(num uint64) error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return err
		}
		l.sizes[l.activeNum] = l.offset
	}
	f, err := l.fs.Create(vfs.Join(l.dir, fmt.Sprintf("%06d.vlog", num)))
	if err != nil {
		return err
	}
	l.active = f
	l.activeNum = num
	l.offset = 0
	l.sizes[num] = 0
	return nil
}

// Append writes one record and returns its pointer, rotating the
// segment when full.
func (l *Log) Append(key, value []byte) (Pointer, error) {
	hdr := make([]byte, 0, 2*binary.MaxVarintLen32)
	hdr = binary.AppendUvarint(hdr, uint64(len(key)))
	hdr = binary.AppendUvarint(hdr, uint64(len(value)))
	recLen := len(hdr) + len(key) + len(value)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.offset > 0 && l.offset+uint64(recLen) > l.maxFileSize {
		if err := l.rotateLocked(l.activeNum + 1); err != nil {
			return Pointer{}, err
		}
	}
	p := Pointer{FileNum: l.activeNum, Offset: l.offset, Length: uint32(recLen)}
	rec := make([]byte, 0, recLen)
	rec = append(rec, hdr...)
	rec = append(rec, key...)
	rec = append(rec, value...)
	if _, err := l.active.Write(rec); err != nil {
		return Pointer{}, err
	}
	l.offset += uint64(recLen)
	l.sizes[l.activeNum] = l.offset
	return p, nil
}

// Read returns the value a pointer refers to.
func (l *Log) Read(p Pointer) ([]byte, error) {
	f, err := l.fs.Open(vfs.Join(l.dir, fmt.Sprintf("%06d.vlog", p.FileNum)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, p.Length)
	if _, err := f.ReadAt(buf, int64(p.Offset)); err != nil && err != io.EOF {
		return nil, err
	}
	key, value, err := parseRecord(buf)
	_ = key
	return value, err
}

func parseRecord(buf []byte) (key, value []byte, err error) {
	kl, n1 := binary.Uvarint(buf)
	if n1 <= 0 {
		return nil, nil, ErrCorrupt
	}
	vl, n2 := binary.Uvarint(buf[n1:])
	if n2 <= 0 || n1+n2+int(kl)+int(vl) > len(buf) {
		return nil, nil, ErrCorrupt
	}
	key = buf[n1+n2 : n1+n2+int(kl)]
	value = buf[n1+n2+int(kl) : n1+n2+int(kl)+int(vl)]
	return key, value, nil
}

// OldestSealed returns the lowest-numbered sealed (non-active) segment.
func (l *Log) OldestSealed() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var nums []uint64
	for num := range l.sizes {
		if num != l.activeNum {
			nums = append(nums, num)
		}
	}
	if len(nums) == 0 {
		return 0, false
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums[0], true
}

// ScanFile iterates every record of a segment, passing the stored key,
// value, and the record's pointer. Used by garbage collection.
func (l *Log) ScanFile(num uint64, fn func(key, value []byte, p Pointer) error) error {
	f, err := l.fs.Open(vfs.Join(l.dir, fmt.Sprintf("%06d.vlog", num)))
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return err
	}
	var off uint64
	for off < uint64(size) {
		key, value, err := parseRecord(data[off:])
		if err != nil {
			return err
		}
		kl := uint64(len(key))
		vl := uint64(len(value))
		recLen := uint64(uvarintLen(kl)+uvarintLen(vl)) + kl + vl
		p := Pointer{FileNum: num, Offset: off, Length: uint32(recLen)}
		if err := fn(key, value, p); err != nil {
			return err
		}
		off += recLen
	}
	return nil
}

// SegmentNums returns every live segment number (sealed and active) in
// ascending order. The scrubber walks these.
func (l *Log) SegmentNums() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	nums := make([]uint64, 0, len(l.sizes))
	for num := range l.sizes {
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums
}

// VerifyFile structurally validates one segment: every record must
// parse and the records must tile the file exactly. Value-log records
// carry no checksum (the tree's pointers hold the only integrity
// metadata), so this catches truncation and framing damage but not
// in-place bit flips inside a value.
func (l *Log) VerifyFile(num uint64) error {
	return l.ScanFile(num, func(key, value []byte, p Pointer) error { return nil })
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Remove deletes a sealed segment after garbage collection.
func (l *Log) Remove(num uint64) error {
	l.mu.Lock()
	if num == l.activeNum {
		l.mu.Unlock()
		return errors.New("wisckey: cannot remove active segment")
	}
	delete(l.sizes, num)
	l.mu.Unlock()
	return l.fs.Remove(vfs.Join(l.dir, fmt.Sprintf("%06d.vlog", num)))
}

// RotateForGC seals the active segment so that it becomes collectable,
// opening a new active one.
func (l *Log) RotateForGC() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked(l.activeNum + 1)
}

// DiskBytes returns the log's total footprint.
func (l *Log) DiskBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, sz := range l.sizes {
		total += int64(sz)
	}
	return total
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	err := l.active.Close()
	l.active = nil
	return err
}
