package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

func testStore(t *testing.T, n int) (*Store, core.Options) {
	t.Helper()
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "pdb")
	opts.BufferBytes = 8 << 10
	opts.BaseLevelBytes = 32 << 10
	s, err := Open(opts, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, opts
}

func TestBasicOps(t *testing.T) {
	s, _ := testStore(t, 4)
	if s.NumPartitions() != 4 {
		t.Fatal("partitions")
	}
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
	s.Delete([]byte("k050"))
	if _, err := s.Get([]byte("k050")); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("delete")
	}
}

func TestKeysSpreadAcrossPartitions(t *testing.T) {
	s, _ := testStore(t, 4)
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v"))
	}
	s.Flush()
	nonEmpty := 0
	for i := 0; i < 4; i++ {
		if s.Partition(i).DiskUsageBytes() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 4 {
		t.Errorf("only %d of 4 partitions hold data", nonEmpty)
	}
}

func TestScanMergesInOrder(t *testing.T) {
	s, _ := testStore(t, 3)
	model := map[string]string{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", r.Intn(400))
		v := fmt.Sprintf("v%d", i)
		s.Put([]byte(k), []byte(v))
		model[k] = v
	}
	kvs, err := s.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(model) {
		t.Fatalf("scan %d, model %d", len(kvs), len(model))
	}
	prev := ""
	for _, kvp := range kvs {
		if string(kvp.Key) <= prev {
			t.Fatal("scan out of order")
		}
		prev = string(kvp.Key)
		if model[prev] != string(kvp.Value) {
			t.Fatalf("scan %s mismatch", prev)
		}
	}
	// Bounded scan with limit.
	kvs, _ = s.Scan([]byte("k0100"), []byte("k0200"), 10)
	if len(kvs) != 10 {
		t.Fatalf("limited scan %d", len(kvs))
	}
	for _, kvp := range kvs {
		if string(kvp.Key) < "k0100" || string(kvp.Key) >= "k0200" {
			t.Fatal("bounds")
		}
	}
}

func TestDeleteRangeAcrossPartitions(t *testing.T) {
	s, _ := testStore(t, 4)
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := s.DeleteRange([]byte("k050"), []byte("k150")); err != nil {
		t.Fatal(err)
	}
	kvs, _ := s.Scan(nil, nil, 0)
	if len(kvs) != 100 {
		t.Fatalf("after range delete: %d keys", len(kvs))
	}
}

func TestRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "pdb")
	s, err := Open(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 300; i += 17 {
		v, err := s2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("recovered %d: %q %v", i, v, err)
		}
	}
}

func TestAggregateMetrics(t *testing.T) {
	s, _ := testStore(t, 2)
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	s.Get([]byte("k000"))
	m := s.Metrics()
	if m.Puts != 100 || m.Gets != 1 {
		t.Errorf("aggregate: %+v", m)
	}
	if s.DiskUsageBytes() == 0 {
		s.Flush()
		if s.DiskUsageBytes() == 0 {
			t.Error("no disk usage after flush")
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(core.DefaultOptions(vfs.NewMem(), "x"), 0); err == nil {
		t.Error("zero partitions accepted")
	}
}
