package partition

import "testing"

func TestVectorDominates(t *testing.T) {
	cases := []struct {
		name  string
		vec   []uint64
		token []uint64
		want  bool
	}{
		{"empty vs empty", nil, nil, true},
		{"equal", []uint64{5, 7}, []uint64{5, 7}, true},
		{"strictly ahead", []uint64{6, 9}, []uint64{5, 7}, true},
		{"behind on one shard", []uint64{6, 6}, []uint64{5, 7}, false},
		{"behind on all shards", []uint64{2, 2}, []uint64{5, 7}, false},
		// Sequence numbers start at 1: a token element of 0 or 1 means
		// the client observed no writes on that shard, so any vector
		// value satisfies it.
		{"token zero is unconstrained", []uint64{0, 9}, []uint64{0, 7}, true},
		{"token one is unconstrained", []uint64{0, 9}, []uint64{1, 7}, true},
		{"token two constrains", []uint64{1, 9}, []uint64{2, 7}, false},
		{"vec sentinel vs real token", []uint64{1, 1}, []uint64{1, 2}, false},
		// Different lengths = different shard counts: never dominates,
		// in either direction.
		{"vec shorter", []uint64{5}, []uint64{5, 7}, false},
		{"vec longer", []uint64{5, 7, 9}, []uint64{5, 7}, false},
	}
	for _, c := range cases {
		if got := VectorDominates(c.vec, c.token); got != c.want {
			t.Errorf("%s: VectorDominates(%v, %v) = %v, want %v",
				c.name, c.vec, c.token, got, c.want)
		}
	}
}

func TestMergeVectors(t *testing.T) {
	cases := []struct {
		name     string
		dst, src []uint64
		want     []uint64
	}{
		{"nil dst adopts src", nil, []uint64{3, 4}, []uint64{3, 4}},
		{"empty src keeps dst", []uint64{3, 4}, nil, []uint64{3, 4}},
		{"componentwise max", []uint64{3, 9}, []uint64{5, 4}, []uint64{5, 9}},
		{"src longer grows dst", []uint64{7}, []uint64{3, 4}, []uint64{7, 4}},
		{"dst longer keeps tail", []uint64{3, 4, 8}, []uint64{5}, []uint64{5, 4, 8}},
		{"idempotent", []uint64{5, 7}, []uint64{5, 7}, []uint64{5, 7}},
	}
	for _, c := range cases {
		got := MergeVectors(append([]uint64(nil), c.dst...), c.src)
		if len(got) != len(c.want) {
			t.Errorf("%s: MergeVectors = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: MergeVectors = %v, want %v", c.name, got, c.want)
				break
			}
		}
	}

	// The merged token must still be dominated by a vector that
	// dominates both inputs — the property read-your-writes relies on.
	a, b := []uint64{3, 9}, []uint64{5, 4}
	m := MergeVectors(append([]uint64(nil), a...), b)
	if !VectorDominates([]uint64{5, 9}, m) {
		t.Errorf("cover vector fails to dominate merged token %v", m)
	}
	if VectorDominates(a, m) || VectorDominates(b, m) {
		t.Errorf("inputs %v/%v should not dominate merged token %v", a, b, m)
	}
}
