package partition

import (
	"lsmlab/internal/core"
	"lsmlab/internal/kv"
)

// Cross-shard reads. A globally consistent scan needs more than merging
// per-shard iterators: each shard advances its own sequence numbers, so
// "one moment in time" across the store is a vector — one visibility
// watermark per shard. snapshotVec captures that vector as real
// core.Snapshots (pinning each shard's data against compaction GC)
// under the write side of applyMu, which multi-shard Apply holds
// read-locked through publish on every shard. The captured vector
// therefore observes every multi-shard batch fully or not at all —
// without stopping writers: single-shard traffic never touches the
// lock, and the exclusive section is a few atomic loads per shard.

// snapshotVec captures one snapshot per shard, atomically with respect
// to multi-shard batches.
func (s *Store) snapshotVec() []*core.Snapshot {
	s.applyMu.Lock()
	snaps := make([]*core.Snapshot, len(s.parts))
	for i, p := range s.parts {
		snaps[i] = p.NewSnapshot()
	}
	s.applyMu.Unlock()
	return snaps
}

// SeqVector returns the per-shard visibility watermarks, captured with
// the same all-or-nothing guarantee as snapshotVec. It is the sharded
// generalization of the single tree's visibleSeq token (read-your-
// writes over the wire: see wire.OpWatermark).
func (s *Store) SeqVector() []uint64 {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	vec := make([]uint64, len(s.parts))
	for i, p := range s.parts {
		vec[i] = p.VisibleSeq()
	}
	return vec
}

// shardSource adapts one shard's resolved user-key iterator to the
// kv.Iterator shape the merging heap consumes, synthesizing a trailer
// on each key. The trailer content never matters for ordering: hash
// routing makes user keys disjoint across shards, so the heap only
// ever compares distinct user keys.
type shardSource struct {
	it    *core.Iterator
	ikey  []byte
	valid bool
}

func (a *shardSource) load(ok bool) bool {
	a.valid = ok
	if ok {
		a.ikey = kv.AppendKey(a.ikey[:0], a.it.Key(), 0, kv.KindSet)
	}
	return ok
}

// First implements kv.Iterator.
func (a *shardSource) First() bool { return a.load(a.it.First()) }

// SeekGE implements kv.Iterator.
func (a *shardSource) SeekGE(ikey []byte) bool { return a.load(a.it.SeekGE(kv.UserKey(ikey))) }

// Next implements kv.Iterator.
func (a *shardSource) Next() bool { return a.load(a.it.Next()) }

// Valid implements kv.Iterator.
func (a *shardSource) Valid() bool { return a.valid }

// Key implements kv.Iterator.
func (a *shardSource) Key() []byte { return a.ikey }

// Value implements kv.Iterator.
func (a *shardSource) Value() []byte { return a.it.Value() }

// Close implements kv.Iterator.
func (a *shardSource) Close() error { return a.it.Close() }

// Error surfaces the shard iterator's deferred error, so the merging
// iterator's exhaustion check (kv.IterError) sees a corrupt shard as a
// truncated stream rather than a clean end.
func (a *shardSource) Error() error { return a.it.Err() }

// storeIter is the merged cross-shard iterator: a k-way merge over one
// snapshot-pinned iterator per shard, yielding user keys in global
// order at snapshot-vector isolation. It implements core.RangeIter.
type storeIter struct {
	merge *kv.MergingIterator
	srcs  []*shardSource
	snaps []*core.Snapshot
	valid bool
	err   error
}

func (it *storeIter) load(ok bool) bool {
	it.valid = ok
	if !ok && it.err == nil {
		it.err = it.merge.Error()
	}
	return ok
}

// First implements core.RangeIter.
func (it *storeIter) First() bool { return it.load(it.merge.First()) }

// Next implements core.RangeIter.
func (it *storeIter) Next() bool {
	if !it.valid {
		return false
	}
	return it.load(it.merge.Next())
}

// Key implements core.RangeIter.
func (it *storeIter) Key() []byte { return kv.UserKey(it.merge.Key()) }

// Value implements core.RangeIter.
func (it *storeIter) Value() []byte { return it.merge.Value() }

// Err implements core.RangeIter.
func (it *storeIter) Err() error { return it.err }

// Close releases the per-shard iterators and unpins the snapshots.
func (it *storeIter) Close() error {
	if it.merge != nil {
		it.merge.Close()
		it.merge = nil
	} else {
		for _, src := range it.srcs {
			src.Close()
		}
	}
	for _, snap := range it.snaps {
		snap.Release()
	}
	it.snaps = nil
	it.valid = false
	return it.err
}

// NewRangeIter returns a merged iterator over the live entries of every
// shard in [lower, upper) (nil = unbounded), at snapshot-vector
// isolation: the result is globally sorted and observes each
// multi-shard batch all-or-nothing.
func (s *Store) NewRangeIter(lower, upper []byte) (core.RangeIter, error) {
	it := &storeIter{snaps: s.snapshotVec()}
	sources := make([]kv.Iterator, 0, len(it.snaps))
	for _, snap := range it.snaps {
		ci, err := snap.NewIterator(core.IterOptions{LowerBound: lower, UpperBound: upper})
		if err != nil {
			it.Close()
			return nil, err
		}
		src := &shardSource{it: ci}
		it.srcs = append(it.srcs, src)
		sources = append(sources, src)
	}
	it.merge = kv.NewMergingIterator(sources...)
	return it, nil
}

// Scan returns up to limit live entries in [start, end) across all
// shards, globally ordered and snapshot-vector consistent.
func (s *Store) Scan(start, end []byte, limit int) ([]core.KV, error) {
	it, err := s.NewRangeIter(start, end)
	if err != nil {
		return nil, err
	}
	var out []core.KV
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, core.KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	err = it.Err()
	it.Close()
	return out, err
}
