package partition

// Watermark-vector arithmetic. A read-your-writes token is a SeqVector
// captured after a client's writes published; a replica (or any lagging
// reader) may serve a read only once its own vector dominates the
// token. Sequence numbers start at 1 (core.Open seeds the counter with
// a sentinel before any batch commits), so a token element ≤ 1 carries
// no constraint: the client has observed no writes on that shard.

// VectorDominates reports whether vec has caught up to token on every
// shard: vec[i] ≥ token[i] for all i, with token elements ≤ 1 treated
// as unconstrained. Vectors of different lengths belong to stores with
// different shard counts and never dominate each other.
func VectorDominates(vec, token []uint64) bool {
	if len(vec) != len(token) {
		return false
	}
	for i, t := range token {
		if t <= 1 {
			continue
		}
		if vec[i] < t {
			return false
		}
	}
	return true
}

// MergeVectors folds src into dst componentwise (maximum), growing dst
// if src is longer, and returns dst. Merging a fresh watermark into a
// client's token after each write keeps the token the tightest vector
// that still covers everything the client has observed.
func MergeVectors(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, s := range src {
		if s > dst[i] {
			dst[i] = s
		}
	}
	return dst
}
