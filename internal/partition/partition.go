// Package partition is the sharded engine: the key space hash-routed
// across independent LSM trees (tutorial §2.2.2: PebblesDB fragments
// the key range; Nova-LSM shards across storage components). Each
// shard owns a full core.DB — its own memtable, WAL, group-commit
// pipeline, flush queue, and compaction workers — so background work
// parallelizes across shards, the property a single tree cannot offer
// because its compactions chain through adjacent levels.
//
// The Store is the router in front of the shards:
//
//   - Point ops (Get/Put/Delete/Merge) hash to exactly one shard and
//     never take a cross-shard lock.
//   - A multi-shard Apply is split into per-shard sub-batches committed
//     through each shard's own commit pipeline concurrently, under a
//     shared read-lock so snapshot capture can order against it.
//   - Scans run against a snapshot vector — one core.Snapshot per
//     shard, captured under a brief exclusive section — and merge the
//     per-shard iterators into one globally ordered, snapshot-isolated
//     stream (see scan.go).
//   - Stats, metrics, latency histograms, health, scrub, and
//     checkpoints aggregate across shards with per-shard detail
//     (see stats.go).
//
// Lock ordering: Store.applyMu is taken strictly before any shard-level
// lock (each core.DB's db.mu / walMu live below it), and never while
// holding one. Single-shard operations skip applyMu entirely — a batch
// confined to one shard is atomic within that shard's pipeline, so the
// snapshot vector can never observe half of it.
package partition

import (
	"errors"
	"fmt"
	"sync"

	"lsmlab/internal/bloom"
	"lsmlab/internal/core"
	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// ErrShardMismatch is returned when Open's requested shard count does
// not match the count implied by the directory layout. Reopening with
// the wrong count would silently misroute keys, so it is refused.
var ErrShardMismatch = errors.New("partition: shard count does not match directory layout")

// shardDirName names shard i's subdirectory.
func shardDirName(i int) string { return fmt.Sprintf("part-%03d", i) }

// deriveProbeLimit bounds the gap scan in DeriveShards: after the
// contiguous prefix ends, this many further indices are checked for a
// stray shard that would indicate a damaged (gapped) layout.
const deriveProbeLimit = 1024

// DeriveShards inspects path and reports the shard count its layout
// implies: the length of the contiguous part-NNN prefix, each probed by
// its MANIFEST (vfs.List is files-only on every implementation, so
// subdirectories are probed, not listed). It returns 0 when the
// directory is absent or holds no shards. A flat single-tree layout (a
// MANIFEST directly in path) or a non-contiguous part set is an error —
// opening such a directory as a sharded store would orphan its data.
func DeriveShards(fs vfs.FS, path string) (int, error) {
	if fs.Exists(vfs.Join(path, "MANIFEST")) {
		return 0, fmt.Errorf("partition: %s holds a flat single-tree store; open it with core.Open or migrate it into part-000", path)
	}
	n := 0
	for fs.Exists(vfs.Join(path, shardDirName(n), "MANIFEST")) {
		n++
	}
	for i := n + 1; i <= n+deriveProbeLimit; i++ {
		if fs.Exists(vfs.Join(path, shardDirName(i), "MANIFEST")) {
			return 0, fmt.Errorf("partition: %s has a gap in its shard directories (%s exists but %s is missing)", path, shardDirName(i), shardDirName(n))
		}
	}
	return n, nil
}

// Store is a hash-sharded set of LSM trees behind one engine API.
type Store struct {
	opts  core.Options
	parts []*core.DB

	// applyMu orders multi-shard batches against snapshot-vector
	// capture: a multi-shard Apply holds the read side across all of
	// its per-shard commits (through publish), and snapshotVec takes
	// the write side briefly, so a captured vector observes every
	// multi-shard batch fully or not at all. See the package comment
	// for the lock ordering.
	applyMu sync.RWMutex

	// subPool recycles the per-shard sub-batch sets of the splitter so
	// a steady-state Apply allocates nothing per call.
	subPool sync.Pool
}

// Open creates (or reopens) a store with n shards, each in its own
// part-NNN subdirectory of opts.Path inheriting every other option.
// n == 0 derives the count from an existing layout (and fails on a
// fresh directory, where there is nothing to derive). A reopen whose n
// disagrees with the layout is refused with ErrShardMismatch.
func Open(opts core.Options, n int) (*Store, error) {
	derived, derr := DeriveShards(opts.FS, opts.Path)
	if derr != nil {
		return nil, derr
	}
	switch {
	case n < 0:
		return nil, fmt.Errorf("partition: invalid shard count %d", n)
	case n == 0:
		if derived == 0 {
			return nil, fmt.Errorf("partition: %s has no shard layout to derive a count from", opts.Path)
		}
		n = derived
	case derived > 0 && derived != n:
		return nil, fmt.Errorf("%w: requested %d, directory %s has %d", ErrShardMismatch, n, opts.Path, derived)
	}
	s := &Store{opts: opts, parts: make([]*core.DB, 0, n)}
	s.subPool.New = func() any { return make([]core.Batch, n) }
	for i := 0; i < n; i++ {
		po := opts
		po.Path = vfs.Join(opts.Path, shardDirName(i))
		db, err := core.Open(po)
		if err != nil {
			// Don't leak the shards already opened; their close errors
			// ride along with the open failure.
			errs := []error{fmt.Errorf("partition: open %s: %w", shardDirName(i), err)}
			if cerr := s.Close(); cerr != nil {
				errs = append(errs, cerr)
			}
			return nil, errors.Join(errs...)
		}
		s.parts = append(s.parts, db)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.parts) }

// NumPartitions is NumShards under its historical name.
func (s *Store) NumPartitions() int { return len(s.parts) }

// shardOf returns the index of the shard owning key.
func (s *Store) shardOf(key []byte) int {
	return int(bloom.Hash64(key) % uint64(len(s.parts)))
}

func (s *Store) route(key []byte) *core.DB { return s.parts[s.shardOf(key)] }

// Put writes a key into its shard.
func (s *Store) Put(key, value []byte) error { return s.route(key).Put(key, value) }

// Get reads a key from its shard.
func (s *Store) Get(key []byte) ([]byte, error) { return s.route(key).Get(key) }

// GetTraced is Get carrying a wire-propagated trace id.
func (s *Store) GetTraced(key []byte, traceID uint64) ([]byte, error) {
	return s.route(key).GetTraced(key, traceID)
}

// Delete tombstones a key in its shard.
func (s *Store) Delete(key []byte) error { return s.route(key).Delete(key) }

// Merge applies a read-modify-write operand in the key's shard.
func (s *Store) Merge(key, operand []byte) error { return s.route(key).Merge(key, operand) }

// DeleteRange removes [start, end) in every shard (hash routing
// scatters ranges across all of them). It rides through Apply so the
// broadcast commits concurrently and is ordered against snapshots.
func (s *Store) DeleteRange(start, end []byte) error {
	var b core.Batch
	b.DeleteRange(start, end)
	return s.Apply(&b)
}

// Apply atomically applies a batch. Ops are fanned out to their shards:
// a batch confined to one shard commits through that shard's pipeline
// directly (no cross-shard lock); a multi-shard batch commits its
// per-shard sub-batches concurrently under the read side of applyMu,
// so snapshot vectors observe it all-or-nothing.
func (s *Store) Apply(b *core.Batch) error { return s.ApplyTraced(b, 0) }

// ApplyTraced is Apply carrying a wire-propagated trace id.
func (s *Store) ApplyTraced(b *core.Batch, traceID uint64) error {
	if b.Len() == 0 {
		return nil
	}
	if len(s.parts) == 1 {
		return s.parts[0].ApplyTraced(b, traceID)
	}
	// Classify: does the batch touch one shard or several? Range
	// tombstones broadcast, so they force the multi-shard path.
	single, multi := -1, false
	b.EachOp(func(kind kv.Kind, key, _ []byte) {
		if multi {
			return
		}
		if kind == kv.KindRangeDelete {
			multi = true
			return
		}
		idx := s.shardOf(key)
		if single < 0 {
			single = idx
		} else if single != idx {
			multi = true
		}
	})
	if !multi {
		return s.parts[single].ApplyTraced(b, traceID)
	}

	subs := s.subPool.Get().([]core.Batch)
	defer func() {
		for i := range subs {
			subs[i].Reset()
		}
		s.subPool.Put(subs)
	}()
	b.EachOp(func(kind kv.Kind, key, value []byte) {
		if kind == kv.KindRangeDelete {
			for i := range subs {
				subs[i].AddOp(kind, key, value)
			}
			return
		}
		subs[s.shardOf(key)].AddOp(kind, key, value)
	})

	// Commit the sub-batches concurrently, each through its shard's own
	// group-commit pipeline. The read lock is held until every shard
	// has published (core Apply returns post-publish), which is what
	// lets snapshotVec's exclusive section mean "no multi-shard batch
	// is partially visible right now".
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	var wg sync.WaitGroup
	errs := make([]error, len(subs))
	for i := range subs {
		if subs[i].Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.parts[i].ApplyTraced(&subs[i], traceID)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Partition exposes one underlying tree (experiments inspect shapes).
func (s *Store) Partition(i int) *core.DB { return s.parts[i] }

// Close closes every shard, aggregating their errors.
func (s *Store) Close() error {
	var errs []error
	for i, p := range s.parts {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
	}
	return errors.Join(errs...)
}
