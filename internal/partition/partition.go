// Package partition shards the key space across independent LSM trees
// (tutorial §2.2.2: PebblesDB fragments the key range; Nova-LSM shards
// across storage components). Each partition compacts independently, so
// background work parallelizes across partitions — the property a
// single tree cannot offer because its compactions chain through
// adjacent levels (see experiment E8/E13).
//
// Keys are routed by hash, so point operations touch exactly one
// partition; range scans merge the per-partition iterators.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"lsmlab/internal/bloom"
	"lsmlab/internal/core"
	"lsmlab/internal/metrics"
	"lsmlab/internal/vfs"
)

// Store is a hash-partitioned set of LSM trees behind one API.
type Store struct {
	parts []*core.DB
}

// Open creates (or reopens) a store with n partitions. Each partition
// lives in its own subdirectory of opts.Path and inherits every other
// option. n must match across reopens (it is derived from the
// directory layout on recovery if present).
func Open(opts core.Options, n int) (*Store, error) {
	if n < 1 {
		return nil, errors.New("partition: need at least one partition")
	}
	s := &Store{}
	for i := 0; i < n; i++ {
		po := opts
		po.Path = vfs.Join(opts.Path, fmt.Sprintf("part-%03d", i))
		db, err := core.Open(po)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.parts = append(s.parts, db)
	}
	return s, nil
}

// NumPartitions returns the partition count.
func (s *Store) NumPartitions() int { return len(s.parts) }

func (s *Store) route(key []byte) *core.DB {
	return s.parts[bloom.Hash64(key)%uint64(len(s.parts))]
}

// Put writes a key into its partition.
func (s *Store) Put(key, value []byte) error { return s.route(key).Put(key, value) }

// Get reads a key from its partition.
func (s *Store) Get(key []byte) ([]byte, error) { return s.route(key).Get(key) }

// Delete tombstones a key in its partition.
func (s *Store) Delete(key []byte) error { return s.route(key).Delete(key) }

// Merge applies a read-modify-write operand in the key's partition.
func (s *Store) Merge(key, operand []byte) error { return s.route(key).Merge(key, operand) }

// DeleteRange removes [start, end) in every partition (hash routing
// scatters ranges across all of them).
func (s *Store) DeleteRange(start, end []byte) error {
	for _, p := range s.parts {
		if err := p.DeleteRange(start, end); err != nil {
			return err
		}
	}
	return nil
}

// Scan returns up to limit live entries in [start, end) across all
// partitions, in key order.
func (s *Store) Scan(start, end []byte, limit int) ([]core.KV, error) {
	var all []core.KV
	for _, p := range s.parts {
		kvs, err := p.Scan(start, end, limit)
		if err != nil {
			return nil, err
		}
		all = append(all, kvs...)
	}
	sort.Slice(all, func(i, j int) bool { return string(all[i].Key) < string(all[j].Key) })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// Flush flushes every partition.
func (s *Store) Flush() error {
	for _, p := range s.parts {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WaitIdle blocks until every partition's background work has drained.
func (s *Store) WaitIdle() {
	for _, p := range s.parts {
		p.WaitIdle()
	}
}

// Metrics sums the per-partition counters.
func (s *Store) Metrics() metrics.Snapshot {
	var total metrics.Snapshot
	for _, p := range s.parts {
		m := p.Metrics()
		total = sumSnapshots(total, m)
	}
	return total
}

func sumSnapshots(a, b metrics.Snapshot) metrics.Snapshot {
	// Snapshot.Sub(negated) would be clumsy; sum field-wise via Sub of
	// a zero value: a + b == a - (0 - b).
	var zero metrics.Snapshot
	return a.Sub(zero.Sub(b))
}

// DiskUsageBytes sums the partitions' footprints.
func (s *Store) DiskUsageBytes() uint64 {
	var total uint64
	for _, p := range s.parts {
		total += p.DiskUsageBytes()
	}
	return total
}

// Partition exposes one underlying tree (experiments inspect shapes).
func (s *Store) Partition(i int) *core.DB { return s.parts[i] }

// Close closes every partition, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, p := range s.parts {
		if p == nil {
			continue
		}
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
