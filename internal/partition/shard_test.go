package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// TestCrossShardScanConsistency is the snapshot-isolation pin for the
// sharded engine: writers continuously commit multi-shard batches in
// which every key carries the same version, and concurrent scans must
// observe (a) a globally sorted stream and (b) each batch fully or not
// at all — a scan that catches shard A at version v and shard B at
// v-1 is exactly the torn read the applyMu protocol exists to prevent.
// Run it with -race; CI wires it in that way.
func TestCrossShardScanConsistency(t *testing.T) {
	s, _ := testStore(t, 4)

	const (
		writers     = 4
		keysPerSet  = 8
		versions    = 150
		scanWorkers = 3
	)
	key := func(w, j int) []byte { return []byte(fmt.Sprintf("w%d-k%d", w, j)) }

	// The property below is only meaningful if each writer's key set
	// really straddles shards; with 8 hashed keys over 4 shards that is
	// near-certain, but assert it so a hash change cannot quietly turn
	// this into a single-shard test.
	for w := 0; w < writers; w++ {
		shards := map[int]bool{}
		for j := 0; j < keysPerSet; j++ {
			shards[s.shardOf(key(w, j))] = true
		}
		if len(shards) < 2 {
			t.Fatalf("writer %d's keys all hash to one shard; pick different keys", w)
		}
	}

	var done atomic.Bool
	var writeWG, scanWG sync.WaitGroup
	writerErrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			var b core.Batch
			for v := 1; v <= versions; v++ {
				b.Reset()
				val := []byte(fmt.Sprintf("v%06d", v))
				for j := 0; j < keysPerSet; j++ {
					b.Put(key(w, j), val)
				}
				if err := s.Apply(&b); err != nil {
					writerErrs[w] = err
					return
				}
			}
		}(w)
	}

	scanErrs := make([]error, scanWorkers)
	scanOnce := func() error {
		kvs, err := s.Scan(nil, nil, 0)
		if err != nil {
			return err
		}
		perWriter := make(map[string][]string)
		prev := ""
		for _, kvp := range kvs {
			k := string(kvp.Key)
			if k <= prev {
				return fmt.Errorf("scan out of order: %q after %q", k, prev)
			}
			prev = k
			perWriter[k[:2]] = append(perWriter[k[:2]], string(kvp.Value))
		}
		for w, vals := range perWriter {
			if len(vals) != keysPerSet {
				return fmt.Errorf("writer %s: %d of %d keys visible (torn batch)", w, len(vals), keysPerSet)
			}
			for _, v := range vals {
				if v != vals[0] {
					return fmt.Errorf("writer %s: versions %s and %s in one scan (torn batch)", w, vals[0], v)
				}
			}
		}
		return nil
	}
	for r := 0; r < scanWorkers; r++ {
		scanWG.Add(1)
		go func(r int) {
			defer scanWG.Done()
			for !done.Load() {
				if err := scanOnce(); err != nil {
					scanErrs[r] = err
					return
				}
			}
		}(r)
	}

	writeWG.Wait()
	done.Store(true)
	scanWG.Wait()
	for w, err := range writerErrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	for r, err := range scanErrs {
		if err != nil {
			t.Fatalf("scanner %d: %v", r, err)
		}
	}
	// One final scan with the store quiet: every writer at its last
	// version, all keys present.
	if err := scanOnce(); err != nil {
		t.Fatalf("final scan: %v", err)
	}
	kvs, err := s.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != writers*keysPerSet {
		t.Fatalf("final scan: %d keys, want %d", len(kvs), writers*keysPerSet)
	}
	want := fmt.Sprintf("v%06d", versions)
	for _, kvp := range kvs {
		if string(kvp.Value) != want {
			t.Fatalf("final scan: %s = %s, want %s", kvp.Key, kvp.Value, want)
		}
	}
}

// TestReopenShardMismatch pins the layout contract: an explicit count
// that disagrees with the directory is refused with ErrShardMismatch,
// count 0 derives from the layout, and a flat single-tree directory is
// refused outright rather than orphaning its data under part-NNN
// routing.
func TestReopenShardMismatch(t *testing.T) {
	fs := vfs.NewMem()
	opts := core.DefaultOptions(fs, "pdb")
	s, err := Open(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(opts, 3); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with wrong count: got %v, want ErrShardMismatch", err)
	}
	if _, err := Open(opts, 5); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with wrong count: got %v, want ErrShardMismatch", err)
	}

	if n, err := DeriveShards(fs, "pdb"); err != nil || n != 4 {
		t.Fatalf("DeriveShards = %d, %v; want 4", n, err)
	}
	s2, err := Open(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumShards() != 4 {
		t.Fatalf("derived reopen has %d shards, want 4", s2.NumShards())
	}
	for i := 0; i < 100; i += 13 {
		v, err := s2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("after derived reopen, get %d: %q %v", i, v, err)
		}
	}

	// A flat single-tree store must be refused in every sharded form.
	flatOpts := core.DefaultOptions(fs, "flat")
	db, err := core.Open(flatOpts)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveShards(fs, "flat"); err == nil {
		t.Fatal("DeriveShards accepted a flat layout")
	}
	if _, err := Open(flatOpts, 2); err == nil {
		t.Fatal("Open accepted a flat layout as a sharded store")
	}
}

// TestTortureMultiShardCrash is the sharded acked-⇒-durable pin: acked
// sync'd batches fanned across shards, a simulated power loss (torn
// unsynced tails per shard), then a derived reopen that must recover
// every acknowledged key from the per-shard WALs. A second phase runs
// with SyncWAL off, where acked writes are allowed to vanish but
// recovery must still succeed and never return garbage.
func TestTortureMultiShardCrash(t *testing.T) {
	iters := 6
	if testing.Short() {
		iters = 2
	}
	const baseSeed = 20260808
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed%d", baseSeed+it), func(t *testing.T) {
			tortureShardsOnce(t, int64(baseSeed+it))
		})
	}
}

func tortureShardsOnce(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	base := vfs.NewMem()
	ffs := faultfs.New(base, seed)
	opts := core.DefaultOptions(ffs, "pdb")
	opts.BufferBytes = 4 << 10
	opts.SyncWAL = true
	shards := 2 + r.Intn(3) // 2..4

	s, err := Open(opts, shards)
	if err != nil {
		t.Fatal(err)
	}
	// Acked phase: every batch that Apply acknowledges goes into the
	// model and must survive the crash.
	model := map[string]string{}
	var b core.Batch
	for i := 0; i < 40; i++ {
		b.Reset()
		staged := map[string]string{}
		for j := 0; j < 1+r.Intn(12); j++ {
			k := fmt.Sprintf("k%04d", r.Intn(600))
			v := fmt.Sprintf("v%d.%d.%d", seed, i, j)
			b.Put([]byte(k), []byte(v))
			staged[k] = v
		}
		if err := s.Apply(&b); err != nil {
			t.Fatal(err)
		}
		for k, v := range staged {
			model[k] = v
		}
	}
	// Unacked phase: flip to an unsynced store over the same device so
	// the crash has real torn tails to cut. These writes are uncertain:
	// each key must come back as either its new value, its prior acked
	// value, or absent — never anything else.
	uopts := opts
	uopts.SyncWAL = false
	uncertain := map[string]bool{}
	s.WaitIdle()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	u, err := Open(uopts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumShards() != shards {
		t.Fatalf("derived %d shards, want %d", u.NumShards(), shards)
	}
	// The crash may keep any prefix of a shard's unsynced WAL, so after
	// recovery a key may hold ANY of its unsynced values (whichever was
	// last in the surviving prefix), not only the final one.
	newVals := map[string][]string{}
	for i := 0; i < 20; i++ {
		b.Reset()
		for j := 0; j < 1+r.Intn(12); j++ {
			k := fmt.Sprintf("k%04d", r.Intn(600))
			v := fmt.Sprintf("u%d.%d.%d", seed, i, j)
			b.Put([]byte(k), []byte(v))
			uncertain[k] = true
			newVals[k] = append(newVals[k], v)
		}
		if err := u.Apply(&b); err != nil {
			t.Fatal(err)
		}
	}
	u.WaitIdle()

	// Power loss: cut every file back to its synced length (plus a
	// seeded-random torn prefix of the unsynced tail), abandon the old
	// handles, reopen by derivation.
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(opts, 0)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	if s2.NumShards() != shards {
		t.Fatalf("derived %d shards after crash, want %d", s2.NumShards(), shards)
	}
	legal := func(k, got string) bool {
		for _, v := range newVals[k] {
			if got == v {
				return true
			}
		}
		return false
	}
	for k, want := range model {
		got, err := s2.Get([]byte(k))
		switch {
		case uncertain[k]:
			// Overwritten by unsynced batches: the acked value or any of
			// the unsynced values may be visible, but never nothing.
			if errors.Is(err, core.ErrNotFound) {
				t.Fatalf("acked key %s lost entirely after unsynced overwrite", k)
			}
			if err != nil {
				t.Fatalf("get %s: %v", k, err)
			}
			if string(got) != want && !legal(k, string(got)) {
				t.Fatalf("key %s = %q, want acked %q or one of the unsynced values %v", k, got, want, newVals[k])
			}
		default:
			if err != nil {
				t.Fatalf("acked key %s: %v", k, err)
			}
			if string(got) != want {
				t.Fatalf("acked key %s = %q, want %q", k, got, want)
			}
		}
	}
	// Unacked keys that never had an acked value: one of the unsynced
	// values, or absent — never garbage.
	for k := range uncertain {
		if _, ok := model[k]; ok {
			continue
		}
		got, err := s2.Get([]byte(k))
		if errors.Is(err, core.ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if !legal(k, string(got)) {
			t.Fatalf("unacked key %s = %q, want one of %v or absent", k, got, newVals[k])
		}
	}
}
