package partition

import (
	"errors"
	"fmt"
	"strings"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/metrics"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
)

// Aggregation: the sharded store surfaces the same monitoring and
// maintenance API as a single tree — metrics, latency histograms,
// health, tree shape, scrub, checkpoint — by folding the per-shard
// answers together, and keeps the per-shard detail available for
// operators hunting hot-shard skew (ShardTreeStats, the per-shard rows
// in FormatStats).

// Flush flushes every shard.
func (s *Store) Flush() error {
	var errs []error
	for i, p := range s.parts {
		if err := p.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
	}
	return errors.Join(errs...)
}

// Compact runs a full manual compaction on every shard.
func (s *Store) Compact() error {
	var errs []error
	for i, p := range s.parts {
		if err := p.Compact(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
	}
	return errors.Join(errs...)
}

// WaitIdle blocks until every shard's background work has drained.
func (s *Store) WaitIdle() {
	for _, p := range s.parts {
		p.WaitIdle()
	}
}

// Metrics sums the per-shard counters.
func (s *Store) Metrics() metrics.Snapshot {
	var total metrics.Snapshot
	for _, p := range s.parts {
		total = sumSnapshots(total, p.Metrics())
	}
	return total
}

func sumSnapshots(a, b metrics.Snapshot) metrics.Snapshot {
	// Snapshot exposes Sub but not Add; sum field-wise via Sub of a
	// zero value: a + b == a - (0 - b).
	var zero metrics.Snapshot
	return a.Sub(zero.Sub(b))
}

// Latencies merges the per-shard latency histograms.
func (s *Store) Latencies() metrics.LatencySnapshot {
	var total metrics.LatencySnapshot
	for _, p := range s.parts {
		total = total.Merge(p.Latencies())
	}
	return total
}

// DiskUsageBytes sums the shards' footprints.
func (s *Store) DiskUsageBytes() uint64 {
	var total uint64
	for _, p := range s.parts {
		total += p.DiskUsageBytes()
	}
	return total
}

// TreeStats aggregates the shards' shapes: per-level figures are summed
// level-wise, the memtable and backlog gauges added, and LiveSeq is the
// maximum watermark (a scalar summary; the faithful form is SeqVector).
func (s *Store) TreeStats() core.TreeStats {
	var ts core.TreeStats
	for _, p := range s.parts {
		pt := p.TreeStats()
		ts.TotalBytes += pt.TotalBytes
		ts.TotalFiles += pt.TotalFiles
		ts.TotalRuns += pt.TotalRuns
		ts.MemtableLen += pt.MemtableLen
		ts.Immutables += pt.Immutables
		ts.MemtableBytes += pt.MemtableBytes
		ts.BacklogBytes += pt.BacklogBytes
		ts.L0Runs += pt.L0Runs
		if pt.LiveSeq > ts.LiveSeq {
			ts.LiveSeq = pt.LiveSeq
		}
		for i, l := range pt.Levels {
			for len(ts.Levels) <= i {
				ts.Levels = append(ts.Levels, core.LevelStats{Level: len(ts.Levels)})
			}
			ts.Levels[i].Runs += l.Runs
			ts.Levels[i].Files += l.Files
			ts.Levels[i].Bytes += l.Bytes
			ts.Levels[i].Capacity += l.Capacity
		}
	}
	return ts
}

// ShardTreeStats returns each shard's own shape, index-aligned with the
// shard numbering — the raw material for hot-shard dashboards.
func (s *Store) ShardTreeStats() []core.TreeStats {
	out := make([]core.TreeStats, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.TreeStats()
	}
	return out
}

// SpaceAmplification composes the per-shard estimates: total bytes
// across shards over total unique bytes (each shard's unique size is
// recovered from its own ratio).
func (s *Store) SpaceAmplification() float64 {
	var total, unique float64
	for _, p := range s.parts {
		t := float64(p.TreeStats().TotalBytes)
		if amp := p.SpaceAmplification(); amp > 0 {
			total += t
			unique += t / amp
		}
	}
	if unique == 0 {
		return 1
	}
	return total / unique
}

// Health reports degraded if any shard is degraded, carrying the first
// degraded shard's detail with its shard id prefixed to the failing op.
func (s *Store) Health() core.Health {
	var h core.Health
	for i, p := range s.parts {
		ph := p.Health()
		if ph.Degraded && !h.Degraded {
			h.Degraded = true
			h.Op = fmt.Sprintf("shard-%d/%s", i, ph.Op)
			h.Kind = ph.Kind
			h.Cause = ph.Cause
			h.SinceNs = ph.SinceNs
		}
		if ph.BgErr != "" && h.BgErr == "" {
			h.BgErr = ph.BgErr
			h.BgErrOp = fmt.Sprintf("shard-%d/%s", i, ph.BgErrOp)
		}
	}
	return h
}

// Tracer returns the tracer the shards share (they inherit one Options,
// so spans from every shard land in the same ring).
func (s *Store) Tracer() *trace.Tracer { return s.parts[0].Tracer() }

// SetShape retunes every shard to the layout online.
func (s *Store) SetShape(layout compaction.Layout, sizeRatio int) error {
	var errs []error
	for i, p := range s.parts {
		if err := p.SetShape(layout, sizeRatio); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
	}
	return errors.Join(errs...)
}

// Shape returns the shards' common strategy name and size ratio.
func (s *Store) Shape() (layout string, sizeRatio int) { return s.parts[0].Shape() }

// ScrubShards scrubs each shard, returning the per-shard reports with
// finding paths prefixed by the shard directory.
func (s *Store) ScrubShards() ([]core.ScrubReport, error) {
	reps := make([]core.ScrubReport, len(s.parts))
	var errs []error
	for i, p := range s.parts {
		rep, err := p.Scrub()
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
		for j := range rep.Findings {
			rep.Findings[j].Path = vfs.Join(shardDirName(i), rep.Findings[j].Path)
		}
		reps[i] = rep
	}
	return reps, errors.Join(errs...)
}

// Scrub verifies every shard and merges the reports. ManifestOK is the
// conjunction across shards; findings carry their shard directory.
func (s *Store) Scrub() (core.ScrubReport, error) {
	reps, err := s.ScrubShards()
	return MergeScrubReports(reps), err
}

// MergeScrubReports folds per-shard scrub reports into one store-wide
// total. Callers that already hold per-shard reports must merge them
// rather than call Scrub again: scrubbing quarantines corrupt tables,
// so a second pass would no longer see what the first one found.
func MergeScrubReports(reps []core.ScrubReport) core.ScrubReport {
	total := core.ScrubReport{ManifestOK: true}
	for _, rep := range reps {
		total.Tables += rep.Tables
		total.TableBytes += rep.TableBytes
		total.VlogSegments += rep.VlogSegments
		total.ManifestOK = total.ManifestOK && rep.ManifestOK
		total.Findings = append(total.Findings, rep.Findings...)
	}
	return total
}

// Checkpoint writes a consistent online backup of every shard into
// dir/part-NNN, reproducing the store's own layout so the checkpoint
// reopens as a sharded store with the same count.
func (s *Store) Checkpoint(dir string) error {
	var errs []error
	for i, p := range s.parts {
		if err := p.Checkpoint(vfs.Join(dir, shardDirName(i))); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", shardDirName(i), err))
		}
	}
	return errors.Join(errs...)
}

// WorkloadProfile aggregates the per-shard workload characterizations
// into one partition-level view: counts and per-level attribution sum,
// distinct-key estimates add (shards hash-partition the key space, so
// their key sets are disjoint), hot keys merge by summed count, and
// the RUM ratios are recomputed from the summed terms.
func (s *Store) WorkloadProfile() core.WorkloadProfile {
	ps := make([]core.WorkloadProfile, len(s.parts))
	for i, p := range s.parts {
		ps[i] = p.WorkloadProfile()
	}
	return core.MergeProfiles(ps)
}

// FormatStats renders the aggregated counters in the same shape as a
// single tree's block, followed by one row per shard — memtable bytes,
// L0 runs, compaction backlog, disk, health — so hot-shard skew is
// visible at a glance (lsmctl stats/top read this over the STATS verb).
func (s *Store) FormatStats(verbose bool) string {
	m := s.Metrics()
	var b strings.Builder
	b.WriteString(m.String())
	fmt.Fprintf(&b, "\nspace_amp=%.2f disk=%d bytes cache_hit=%.2f throttle_ms=%d",
		s.SpaceAmplification(), s.DiskUsageBytes(), m.CacheHitRate(), m.ThrottleNs/1e6)
	fmt.Fprintf(&b, "\nblock_reads=%d (cached %d) commit_groups=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d",
		m.BlockReads, m.BlockReadsCached, m.CommitGroups, m.AvgCommitGroupSize(),
		m.WALSyncs, m.WALSyncsSaved)
	h := s.Health()
	switch {
	case h.Degraded:
		fmt.Fprintf(&b, "\ndegraded=true op=%s kind=%s cause=%q", h.Op, h.Kind, h.Cause)
	case h.BgErr != "":
		fmt.Fprintf(&b, "\ndegraded=false bg_err_op=%s bg_err=%q", h.BgErrOp, h.BgErr)
	default:
		fmt.Fprintf(&b, "\ndegraded=false")
	}
	if m.ScrubbedTables > 0 || m.ScrubCorruptions > 0 {
		fmt.Fprintf(&b, " scrubbed=%d scrub_corruptions=%d", m.ScrubbedTables, m.ScrubCorruptions)
	}
	wp := s.WorkloadProfile()
	if wp.Enabled {
		fmt.Fprintf(&b, "\nworkload: gets=%d puts=%d deletes=%d scans=%d mean_scan_len=%.1f distinct~%d zipf_s=%.2f top_share=%.2f",
			wp.Gets, wp.Puts, wp.Deletes, wp.Scans, wp.MeanScanLen, wp.DistinctKeys, wp.ZipfS, wp.TopShare)
		fmt.Fprintf(&b, "\nrum(window): read_amp=%.2f write_amp=%.2f space_amp=%.2f",
			wp.ReadAmp, wp.WriteAmp, wp.SpaceAmp)
	}
	if verbose && wp.Enabled {
		for _, lp := range wp.Levels {
			fmt.Fprintf(&b, "\n  L%d: runs=%d probes/get=%.2f block_reads=%d (cached %d) bytes_read=%d bytes_written=%d compact_in=%d",
				lp.Level, lp.LiveRuns, lp.ReadAmp, lp.BlockReads, lp.BlockReadsCached,
				lp.BytesRead, lp.BytesWritten, lp.CompactionBytesIn)
		}
		for _, tw := range wp.Tenants {
			fmt.Fprintf(&b, "\n  tenant %s: ops~%d gets=%d puts=%d deletes=%d scans=%d",
				tw.Tenant, tw.Ops, tw.Gets, tw.Puts, tw.Deletes, tw.Scans)
		}
	}
	fmt.Fprintf(&b, "\nshards=%d", len(s.parts))
	for i, p := range s.parts {
		ts := p.TreeStats()
		ph := p.Health()
		fmt.Fprintf(&b, "\n  shard %03d: mem=%dB l0_runs=%d backlog=%dB runs=%d files=%d disk=%dB degraded=%v",
			i, ts.MemtableBytes, ts.L0Runs, ts.BacklogBytes, ts.TotalRuns, ts.TotalFiles,
			p.DiskUsageBytes(), ph.Degraded)
	}
	if verbose {
		lat := s.Latencies()
		fmt.Fprintf(&b, "\nlatency (this process):")
		fmt.Fprintf(&b, "\n  get        %s", lat.Get)
		fmt.Fprintf(&b, "\n  put        %s", lat.Put)
		fmt.Fprintf(&b, "\n  scan-next  %s", lat.ScanNext)
		fmt.Fprintf(&b, "\n  flush      %s", lat.Flush)
		fmt.Fprintf(&b, "\n  compaction %s", lat.Compaction)
		fmt.Fprintf(&b, "\n%s", s.TreeStats())
	}
	return b.String()
}
