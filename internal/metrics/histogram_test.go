package metrics

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the log-linear bucketing scheme: every
// bucket's [lo, hi) bounds round-trip through bucketIndex, buckets
// tile the value space with no gaps, and sub-bucket width is within the
// documented 1/histSubCount relative error.
func TestBucketBoundaries(t *testing.T) {
	// Exact small-value buckets.
	for v := int64(0); v < histSubCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	// Bounds round-trip and tile, over the buckets reachable without
	// overflowing int64 arithmetic.
	prevHi := int64(0)
	for i := 0; i < histBuckets-histSubCount; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d, %d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
		prevHi = hi
	}
	// Negative durations clamp to bucket 0.
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0", got)
	}
	// Known example: 1000ns lies in [1024? no: [896, 1024)? Compute:
	// 1000 = 0b1111101000, exp 9, octave [512,1024) split into 4 → sub
	// width 128; 1000 ∈ [896, 1024).
	lo, hi := bucketBounds(bucketIndex(1000))
	if lo != 896 || hi != 1024 {
		t.Fatalf("bucket of 1000ns = [%d, %d), want [896, 1024)", lo, hi)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// Uniform 1..10000: quantiles should reconstruct within the
	// sub-bucket relative error (12.5%) plus one bucket.
	for i := int64(1); i <= 10000; i++ {
		h.RecordNs(i)
	}
	s := h.Snapshot()
	if s.Count() != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count())
	}
	if s.Max != 10000 {
		t.Fatalf("max = %d, want 10000", s.Max)
	}
	if got := s.Quantile(1); got != 10000 {
		t.Fatalf("p100 = %d, want exact max 10000", got)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5000}, {0.9, 9000}, {0.99, 9900}} {
		got := float64(s.Quantile(tc.q))
		if got < tc.want*0.85 || got > tc.want*1.15 {
			t.Errorf("q%.2f = %.0f, want %.0f ±15%%", tc.q, got, tc.want)
		}
	}
	if m := s.Mean(); m < 4500 || m > 5500 {
		t.Errorf("mean = %.0f, want ≈5000.5", m)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count() != 0 {
		t.Fatalf("empty histogram not zero: %+v", s)
	}
}

// TestHistogramMerge checks that merging two snapshots equals the
// histogram of the union of both observation streams.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		va, vb := rng.Int63n(1_000_000), rng.Int63n(50_000_000)
		a.RecordNs(va)
		b.RecordNs(vb)
		both.RecordNs(va)
		both.RecordNs(vb)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := both.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from union histogram:\n got n=%d sum=%d max=%d\nwant n=%d sum=%d max=%d",
			merged.N, merged.Sum, merged.Max, want.N, want.Sum, want.Max)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// under -race this also proves recording is data-race free.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.RecordNs(rng.Int63n(10_000_000))
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count(), goroutines*perG)
	}
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	if n != s.N {
		t.Fatalf("bucket sum %d != N %d", n, s.N)
	}
}

func TestLatencySnapshotMerge(t *testing.T) {
	var m1, m2 Metrics
	m1.GetNs.RecordNs(100)
	m1.PutNs.RecordNs(200)
	m2.GetNs.RecordNs(300)
	m2.CompactionNs.RecordNs(400)
	lat := m1.Latencies().Merge(m2.Latencies())
	if lat.Get.Count() != 2 || lat.Put.Count() != 1 || lat.Compaction.Count() != 1 {
		t.Fatalf("merge miscounted: get=%d put=%d compact=%d",
			lat.Get.Count(), lat.Put.Count(), lat.Compaction.Count())
	}
	if lat.Get.Max != 300 {
		t.Fatalf("merged get max = %d, want 300", lat.Get.Max)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RecordNs(int64(i) * 37)
	}
}
