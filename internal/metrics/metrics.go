// Package metrics collects the engine-wide counters from which the
// experiments derive write amplification, read amplification, space
// amplification, stall time, and filter effectiveness. All counters are
// lock-free and safe for concurrent update.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Metrics is the set of counters maintained by one engine instance.
type Metrics struct {
	// Write path.
	Puts          atomic.Int64 // user put operations
	Deletes       atomic.Int64 // user delete operations (all kinds)
	BytesIngested atomic.Int64 // user key+value bytes accepted
	WALBytes      atomic.Int64 // bytes appended to the write-ahead log

	// Group commit (the leader-based commit pipeline).
	CommitGroups  atomic.Int64 // commit groups written (one WAL write each)
	CommitBatches atomic.Int64 // batches committed across all groups
	WALSyncs      atomic.Int64 // WAL syncs issued (one per group under SyncWAL)
	WALSyncsSaved atomic.Int64 // syncs avoided by group coalescing (group size - 1 each)

	// Read path.
	Gets            atomic.Int64 // user point lookups
	GetHits         atomic.Int64 // lookups that found a live value
	Scans           atomic.Int64 // user range scans
	ScanEntries     atomic.Int64 // entries returned by Scan (mean scan length = ScanEntries/Scans)
	RunsProbed      atomic.Int64 // sorted runs consulted by point lookups
	FilterProbes    atomic.Int64 // bloom filter probes
	FilterNegatives atomic.Int64 // probes that skipped a run
	FilterFalsePos  atomic.Int64 // probes that passed but found nothing

	// Structure maintenance.
	Flushes                atomic.Int64 // memtable flushes
	FlushBytes             atomic.Int64 // bytes written by flushes
	Compactions            atomic.Int64 // compaction jobs completed
	AgeCompactions         atomic.Int64 // jobs triggered by tombstone age (FADE)
	CompactionBytesRead    atomic.Int64 // bytes read by compactions
	CompactionBytesWritten atomic.Int64 // bytes written by compactions
	TombstonesDropped      atomic.Int64 // tombstones purged by compaction
	EntriesDropped         atomic.Int64 // invalidated entries purged

	// Stalls.
	StallNs     atomic.Int64 // total time writers spent stalled
	WriteStalls atomic.Int64 // number of stall events
	StallAborts atomic.Int64 // stalls aborted by Options.StallTimeout (backpressure)
	ThrottleNs  atomic.Int64 // time compactions paused in the bandwidth throttle

	// Block cache and table I/O. BlockReads counts data-block fetches by
	// the sstable readers; BlockReadsCached is the subset served from the
	// block cache without touching the filesystem.
	CacheHits        atomic.Int64
	CacheMisses      atomic.Int64
	BlockReads       atomic.Int64
	BlockReadsCached atomic.Int64

	// Robustness. Degraded is a 0/1 gauge set when the engine enters
	// read-only degraded mode; BgRetries counts background flush or
	// compaction attempts that failed (and were retried or escalated).
	// The scrub counters accumulate across DB.Scrub passes.
	Degraded         atomic.Int64 // 1 once the engine is read-only degraded
	BgRetries        atomic.Int64 // failed background job attempts
	ScrubbedTables   atomic.Int64 // sstables checked by scrubs
	ScrubCorruptions atomic.Int64 // corrupt files found by scrubs

	// Network serving layer (maintained by internal/server; a server
	// owns its own Metrics instance, separate from the engine's, so
	// these stay zero on an embedded DB). ConnsOpened - ConnsClosed is
	// the live connection count.
	ConnsOpened      atomic.Int64 // connections accepted
	ConnsClosed      atomic.Int64 // connections fully torn down
	ConnsRejected    atomic.Int64 // connections refused at the MaxConns limit
	NetRequests      atomic.Int64 // request frames received
	NetRequestErrors atomic.Int64 // requests answered with an error status
	NetThrottled     atomic.Int64 // requests answered with StatusThrottled (all tenants)
	NetBytesRead     atomic.Int64 // request frame bytes received
	NetBytesWritten  atomic.Int64 // response frame bytes sent

	// Replication. Leader-side counters are maintained by the serving
	// layer as it handles the replication verbs; follower-side counters
	// are merged into the engine snapshot by the replica engine wrapper.
	// On a server that is neither, all stay zero.
	ReplSubscribes     atomic.Int64 // follower stream subscriptions accepted (leader)
	ReplFramesShipped  atomic.Int64 // WAL group frames streamed to followers (leader)
	ReplGapsSignaled   atomic.Int64 // gap frames sent (leader) or stream gaps observed (follower)
	ReplAcks           atomic.Int64 // follower watermark acks recorded (leader)
	ReplRepairPages    atomic.Int64 // Merkle repair pages served (leader)
	ReplBatchesApplied atomic.Int64 // shipped WAL batches applied (follower)
	ReplRepairOps      atomic.Int64 // ops ingested via anti-entropy (follower)

	// Latency distributions (log-bucketed; see histogram.go). Counters
	// answer "how much", these answer "how long" — the tail behavior
	// that separates compaction designs (§2.2.3/§2.2.5).
	GetNs        Histogram
	PutNs        Histogram
	ScanNextNs   Histogram
	FlushNs      Histogram
	CompactionNs Histogram

	// CommitGroupSize records batches-per-group (a count, not a
	// duration; the log-linear buckets work for any int64). Its tail
	// shows how far write concurrency actually coalesces.
	CommitGroupSize Histogram

	// RequestNs records end-to-end network request latency (frame
	// decoded → response queued), maintained by internal/server.
	RequestNs Histogram
}

// GroupSizes returns a snapshot of the commit-group-size histogram
// (batches per group; values are counts, not nanoseconds).
func (m *Metrics) GroupSizes() HistogramSnapshot { return m.CommitGroupSize.Snapshot() }

// Latencies returns a snapshot of every latency histogram.
func (m *Metrics) Latencies() LatencySnapshot {
	return LatencySnapshot{
		Get:        m.GetNs.Snapshot(),
		Put:        m.PutNs.Snapshot(),
		ScanNext:   m.ScanNextNs.Snapshot(),
		Flush:      m.FlushNs.Snapshot(),
		Compaction: m.CompactionNs.Snapshot(),
		Request:    m.RequestNs.Snapshot(),
	}
}

// Snapshot is an immutable copy of the counters at one instant.
type Snapshot struct {
	Puts, Deletes, BytesIngested, WALBytes        int64
	CommitGroups, CommitBatches                   int64
	WALSyncs, WALSyncsSaved                       int64
	Gets, GetHits, Scans, ScanEntries, RunsProbed int64
	FilterProbes, FilterNegatives, FilterFalsePos int64
	Flushes, FlushBytes, Compactions              int64
	AgeCompactions                                int64
	CompactionBytesRead, CompactionBytesWritten   int64
	TombstonesDropped, EntriesDropped             int64
	StallNs, WriteStalls, StallAborts, ThrottleNs int64
	CacheHits, CacheMisses                        int64
	BlockReads, BlockReadsCached                  int64
	Degraded, BgRetries                           int64
	ScrubbedTables, ScrubCorruptions              int64
	ConnsOpened, ConnsClosed, ConnsRejected       int64
	NetRequests, NetRequestErrors, NetThrottled   int64
	NetBytesRead, NetBytesWritten                 int64
	ReplSubscribes, ReplFramesShipped             int64
	ReplGapsSignaled, ReplAcks, ReplRepairPages   int64
	ReplBatchesApplied, ReplRepairOps             int64
}

// Snapshot returns a copy of the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Puts:                   m.Puts.Load(),
		Deletes:                m.Deletes.Load(),
		BytesIngested:          m.BytesIngested.Load(),
		WALBytes:               m.WALBytes.Load(),
		CommitGroups:           m.CommitGroups.Load(),
		CommitBatches:          m.CommitBatches.Load(),
		WALSyncs:               m.WALSyncs.Load(),
		WALSyncsSaved:          m.WALSyncsSaved.Load(),
		Gets:                   m.Gets.Load(),
		GetHits:                m.GetHits.Load(),
		Scans:                  m.Scans.Load(),
		ScanEntries:            m.ScanEntries.Load(),
		RunsProbed:             m.RunsProbed.Load(),
		FilterProbes:           m.FilterProbes.Load(),
		FilterNegatives:        m.FilterNegatives.Load(),
		FilterFalsePos:         m.FilterFalsePos.Load(),
		Flushes:                m.Flushes.Load(),
		FlushBytes:             m.FlushBytes.Load(),
		Compactions:            m.Compactions.Load(),
		AgeCompactions:         m.AgeCompactions.Load(),
		CompactionBytesRead:    m.CompactionBytesRead.Load(),
		CompactionBytesWritten: m.CompactionBytesWritten.Load(),
		TombstonesDropped:      m.TombstonesDropped.Load(),
		EntriesDropped:         m.EntriesDropped.Load(),
		StallNs:                m.StallNs.Load(),
		WriteStalls:            m.WriteStalls.Load(),
		StallAborts:            m.StallAborts.Load(),
		ThrottleNs:             m.ThrottleNs.Load(),
		CacheHits:              m.CacheHits.Load(),
		CacheMisses:            m.CacheMisses.Load(),
		BlockReads:             m.BlockReads.Load(),
		BlockReadsCached:       m.BlockReadsCached.Load(),
		Degraded:               m.Degraded.Load(),
		BgRetries:              m.BgRetries.Load(),
		ScrubbedTables:         m.ScrubbedTables.Load(),
		ScrubCorruptions:       m.ScrubCorruptions.Load(),
		ConnsOpened:            m.ConnsOpened.Load(),
		ConnsClosed:            m.ConnsClosed.Load(),
		ConnsRejected:          m.ConnsRejected.Load(),
		NetRequests:            m.NetRequests.Load(),
		NetRequestErrors:       m.NetRequestErrors.Load(),
		NetThrottled:           m.NetThrottled.Load(),
		NetBytesRead:           m.NetBytesRead.Load(),
		NetBytesWritten:        m.NetBytesWritten.Load(),
		ReplSubscribes:         m.ReplSubscribes.Load(),
		ReplFramesShipped:      m.ReplFramesShipped.Load(),
		ReplGapsSignaled:       m.ReplGapsSignaled.Load(),
		ReplAcks:               m.ReplAcks.Load(),
		ReplRepairPages:        m.ReplRepairPages.Load(),
		ReplBatchesApplied:     m.ReplBatchesApplied.Load(),
		ReplRepairOps:          m.ReplRepairOps.Load(),
	}
}

// AvgCommitGroupSize is the mean number of batches coalesced per commit
// group — 1.0 means writes never overlapped, higher means the group
// commit is amortizing WAL writes (and syncs, under SyncWAL).
func (s Snapshot) AvgCommitGroupSize() float64 {
	if s.CommitGroups == 0 {
		return 0
	}
	return float64(s.CommitBatches) / float64(s.CommitGroups)
}

// WriteAmplification is the ratio of bytes written to storage (flushes
// plus compactions, excluding the WAL) to user bytes ingested.
func (s Snapshot) WriteAmplification() float64 {
	if s.BytesIngested == 0 {
		return 0
	}
	return float64(s.FlushBytes+s.CompactionBytesWritten) / float64(s.BytesIngested)
}

// ReadAmplification is the average number of sorted runs probed per
// point lookup.
func (s Snapshot) ReadAmplification() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.RunsProbed) / float64(s.Gets)
}

// FilterEffectiveness is the fraction of filter probes that skipped a
// run.
func (s Snapshot) FilterEffectiveness() float64 {
	if s.FilterProbes == 0 {
		return 0
	}
	return float64(s.FilterNegatives) / float64(s.FilterProbes)
}

// CacheHitRate is the fraction of block-cache lookups that hit.
func (s Snapshot) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Sub returns s - o component-wise, for measuring an interval.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Puts:                   s.Puts - o.Puts,
		Deletes:                s.Deletes - o.Deletes,
		BytesIngested:          s.BytesIngested - o.BytesIngested,
		WALBytes:               s.WALBytes - o.WALBytes,
		CommitGroups:           s.CommitGroups - o.CommitGroups,
		CommitBatches:          s.CommitBatches - o.CommitBatches,
		WALSyncs:               s.WALSyncs - o.WALSyncs,
		WALSyncsSaved:          s.WALSyncsSaved - o.WALSyncsSaved,
		Gets:                   s.Gets - o.Gets,
		GetHits:                s.GetHits - o.GetHits,
		Scans:                  s.Scans - o.Scans,
		ScanEntries:            s.ScanEntries - o.ScanEntries,
		RunsProbed:             s.RunsProbed - o.RunsProbed,
		FilterProbes:           s.FilterProbes - o.FilterProbes,
		FilterNegatives:        s.FilterNegatives - o.FilterNegatives,
		FilterFalsePos:         s.FilterFalsePos - o.FilterFalsePos,
		Flushes:                s.Flushes - o.Flushes,
		FlushBytes:             s.FlushBytes - o.FlushBytes,
		Compactions:            s.Compactions - o.Compactions,
		AgeCompactions:         s.AgeCompactions - o.AgeCompactions,
		CompactionBytesRead:    s.CompactionBytesRead - o.CompactionBytesRead,
		CompactionBytesWritten: s.CompactionBytesWritten - o.CompactionBytesWritten,
		TombstonesDropped:      s.TombstonesDropped - o.TombstonesDropped,
		EntriesDropped:         s.EntriesDropped - o.EntriesDropped,
		StallNs:                s.StallNs - o.StallNs,
		WriteStalls:            s.WriteStalls - o.WriteStalls,
		StallAborts:            s.StallAborts - o.StallAborts,
		ThrottleNs:             s.ThrottleNs - o.ThrottleNs,
		CacheHits:              s.CacheHits - o.CacheHits,
		CacheMisses:            s.CacheMisses - o.CacheMisses,
		BlockReads:             s.BlockReads - o.BlockReads,
		BlockReadsCached:       s.BlockReadsCached - o.BlockReadsCached,
		Degraded:               s.Degraded, // gauge: intervals keep the current state
		BgRetries:              s.BgRetries - o.BgRetries,
		ScrubbedTables:         s.ScrubbedTables - o.ScrubbedTables,
		ScrubCorruptions:       s.ScrubCorruptions - o.ScrubCorruptions,
		ConnsOpened:            s.ConnsOpened - o.ConnsOpened,
		ConnsClosed:            s.ConnsClosed - o.ConnsClosed,
		ConnsRejected:          s.ConnsRejected - o.ConnsRejected,
		NetRequests:            s.NetRequests - o.NetRequests,
		NetRequestErrors:       s.NetRequestErrors - o.NetRequestErrors,
		NetThrottled:           s.NetThrottled - o.NetThrottled,
		NetBytesRead:           s.NetBytesRead - o.NetBytesRead,
		NetBytesWritten:        s.NetBytesWritten - o.NetBytesWritten,
		ReplSubscribes:         s.ReplSubscribes - o.ReplSubscribes,
		ReplFramesShipped:      s.ReplFramesShipped - o.ReplFramesShipped,
		ReplGapsSignaled:       s.ReplGapsSignaled - o.ReplGapsSignaled,
		ReplAcks:               s.ReplAcks - o.ReplAcks,
		ReplRepairPages:        s.ReplRepairPages - o.ReplRepairPages,
		ReplBatchesApplied:     s.ReplBatchesApplied - o.ReplBatchesApplied,
		ReplRepairOps:          s.ReplRepairOps - o.ReplRepairOps,
	}
}

// String renders the headline numbers for logs and the lsmctl stats
// command.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"puts=%d gets=%d scans=%d flushes=%d compactions=%d WA=%.2f RA=%.2f filter_eff=%.2f stalls=%d stall_ms=%d",
		s.Puts, s.Gets, s.Scans, s.Flushes, s.Compactions,
		s.WriteAmplification(), s.ReadAmplification(), s.FilterEffectiveness(),
		s.WriteStalls, s.StallNs/1e6)
}
