package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram over
// nanosecond durations. Each power-of-two octave is split into
// histSubCount linear sub-buckets, bounding the relative error of a
// reconstructed quantile by 1/histSubCount. Recording is a single
// atomic add plus two atomic updates for sum and max, so the histogram
// can sit on the Get/Put hot paths.
//
// The zero value is ready to use. Snapshots are immutable copies and
// merge component-wise, so per-shard or per-engine histograms aggregate
// exactly.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	// histSubBits sub-bucket index bits per octave: 2 → 4 linear
	// sub-buckets, ≤12.5% quantile reconstruction error.
	histSubBits  = 2
	histSubCount = 1 << histSubBits
	// Values 0..histSubCount-1 get exact buckets; octaves histSubBits
	// through 63 contribute histSubCount buckets each.
	histBuckets = histSubCount + (64-histSubBits)*histSubCount
)

// bucketIndex maps a duration to its bucket. Negative durations (a
// clock stepping backwards) clamp to bucket 0.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	n := uint64(ns)
	if n < histSubCount {
		return int(n)
	}
	exp := uint(bits.Len64(n)) - 1 // n ∈ [2^exp, 2^(exp+1))
	sub := (n >> (exp - histSubBits)) & (histSubCount - 1)
	return int((exp-histSubBits+1)*histSubCount) + int(sub)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i,
// saturating at MaxInt64 for the top octave (durations that large never
// occur; the clamp only keeps the arithmetic honest).
func bucketBounds(i int) (lo, hi int64) {
	if i < histSubCount {
		return int64(i), int64(i) + 1
	}
	block := i / histSubCount
	sub := i % histSubCount
	exp := uint(block) + histSubBits - 1
	width := uint64(1) << (exp - histSubBits)
	ulo := uint64(1)<<exp + uint64(sub)*width
	uhi := ulo + width
	const maxI64 = uint64(1)<<63 - 1
	if ulo > maxI64 {
		ulo = maxI64
	}
	if uhi > maxI64 || uhi == 0 {
		uhi = maxI64
	}
	return int64(ulo), int64(uhi)
}

// RecordNs adds one nanosecond duration observation.
func (h *Histogram) RecordNs(ns int64) {
	h.counts[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// RecordSince adds the elapsed time from a start timestamp to now, both
// on the caller's clock.
func (h *Histogram) RecordSince(startNs, nowNs int64) { h.RecordNs(nowNs - startNs) }

// Snapshot returns an immutable copy of the current state. Concurrent
// recorders may land between bucket loads; the snapshot is a consistent
// *approximation*, exact once recording quiesces.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.N += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	N      int64 // total observations
	Sum    int64 // sum of observations, ns
	Max    int64 // largest observation, ns
}

// Count returns the number of recorded observations.
func (s HistogramSnapshot) Count() int64 { return s.N }

// Mean returns the average observation in nanoseconds.
func (s HistogramSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds, interpolating linearly within the containing bucket. The
// estimate's relative error is bounded by the sub-bucket width; Max is
// exact and returned for q = 1.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.N == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := q * float64(s.N)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) > rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(c)
			v := float64(lo) + frac*float64(hi-lo)
			if int64(v) > s.Max && s.Max > 0 {
				return s.Max
			}
			return int64(v)
		}
		cum += float64(c)
	}
	return s.Max
}

// Merge returns the component-wise sum of two snapshots: the histogram
// of the union of both observation sets.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.N += o.N
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// String renders the headline percentiles for stats output.
func (s HistogramSnapshot) String() string {
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		s.N, d(int64(s.Mean())), d(s.Quantile(0.5)), d(s.Quantile(0.9)),
		d(s.Quantile(0.99)), d(s.Max))
}

// LatencySnapshot bundles the per-operation latency histograms of one
// engine at one instant. Snapshots merge component-wise.
type LatencySnapshot struct {
	Get        HistogramSnapshot // DB.Get, end to end
	Put        HistogramSnapshot // DB.Apply (single puts and batches)
	ScanNext   HistogramSnapshot // Iterator.Next advances
	Flush      HistogramSnapshot // memtable flush jobs
	Compaction HistogramSnapshot // compaction jobs
	Request    HistogramSnapshot // network requests (internal/server)
}

// Merge returns the component-wise merge of two latency snapshots.
func (s LatencySnapshot) Merge(o LatencySnapshot) LatencySnapshot {
	return LatencySnapshot{
		Get:        s.Get.Merge(o.Get),
		Put:        s.Put.Merge(o.Put),
		ScanNext:   s.ScanNext.Merge(o.ScanNext),
		Flush:      s.Flush.Merge(o.Flush),
		Compaction: s.Compaction.Merge(o.Compaction),
		Request:    s.Request.Merge(o.Request),
	}
}
