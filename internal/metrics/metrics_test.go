package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndDerived(t *testing.T) {
	var m Metrics
	m.BytesIngested.Store(100)
	m.FlushBytes.Store(100)
	m.CompactionBytesWritten.Store(300)
	m.Gets.Store(10)
	m.RunsProbed.Store(25)
	m.FilterProbes.Store(100)
	m.FilterNegatives.Store(90)
	m.CacheHits.Store(3)
	m.CacheMisses.Store(1)

	s := m.Snapshot()
	if got := s.WriteAmplification(); got != 4.0 {
		t.Errorf("WA = %v", got)
	}
	if got := s.ReadAmplification(); got != 2.5 {
		t.Errorf("RA = %v", got)
	}
	if got := s.FilterEffectiveness(); got != 0.9 {
		t.Errorf("filter eff = %v", got)
	}
	if got := s.CacheHitRate(); got != 0.75 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestDerivedZeroDenominators(t *testing.T) {
	var s Snapshot
	if s.WriteAmplification() != 0 || s.ReadAmplification() != 0 ||
		s.FilterEffectiveness() != 0 || s.CacheHitRate() != 0 {
		t.Error("zero denominators must yield 0, not NaN")
	}
}

func TestSub(t *testing.T) {
	var m Metrics
	m.Puts.Store(10)
	before := m.Snapshot()
	m.Puts.Add(5)
	m.Flushes.Add(2)
	d := m.Snapshot().Sub(before)
	if d.Puts != 5 || d.Flushes != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Puts.Add(1)
				m.BytesIngested.Add(10)
			}
		}()
	}
	wg.Wait()
	if m.Puts.Load() != 8000 || m.BytesIngested.Load() != 80000 {
		t.Errorf("lost updates: puts=%d bytes=%d", m.Puts.Load(), m.BytesIngested.Load())
	}
}

func TestString(t *testing.T) {
	var m Metrics
	m.Puts.Store(42)
	s := m.Snapshot().String()
	if !strings.Contains(s, "puts=42") {
		t.Errorf("String() = %q", s)
	}
}
