package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndDerived(t *testing.T) {
	var m Metrics
	m.BytesIngested.Store(100)
	m.FlushBytes.Store(100)
	m.CompactionBytesWritten.Store(300)
	m.Gets.Store(10)
	m.RunsProbed.Store(25)
	m.FilterProbes.Store(100)
	m.FilterNegatives.Store(90)
	m.CacheHits.Store(3)
	m.CacheMisses.Store(1)

	s := m.Snapshot()
	if got := s.WriteAmplification(); got != 4.0 {
		t.Errorf("WA = %v", got)
	}
	if got := s.ReadAmplification(); got != 2.5 {
		t.Errorf("RA = %v", got)
	}
	if got := s.FilterEffectiveness(); got != 0.9 {
		t.Errorf("filter eff = %v", got)
	}
	if got := s.CacheHitRate(); got != 0.75 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestDerivedZeroDenominators(t *testing.T) {
	var s Snapshot
	if s.WriteAmplification() != 0 || s.ReadAmplification() != 0 ||
		s.FilterEffectiveness() != 0 || s.CacheHitRate() != 0 ||
		s.AvgCommitGroupSize() != 0 {
		t.Error("zero denominators must yield 0, not NaN")
	}
	// Numerator without denominator (possible mid-snapshot: the batch
	// counter is bumped before the group counter) still must not divide
	// by zero.
	s.CommitBatches = 7
	if got := s.AvgCommitGroupSize(); got != 0 {
		t.Errorf("AvgCommitGroupSize with 0 groups = %v, want 0", got)
	}
	s.FlushBytes, s.CompactionBytesWritten = 100, 300
	if got := s.WriteAmplification(); got != 0 {
		t.Errorf("WriteAmplification with 0 ingested = %v, want 0", got)
	}
	s.RunsProbed = 12
	if got := s.ReadAmplification(); got != 0 {
		t.Errorf("ReadAmplification with 0 gets = %v, want 0", got)
	}
}

func TestAvgCommitGroupSize(t *testing.T) {
	var m Metrics
	m.CommitGroups.Store(4)
	m.CommitBatches.Store(10)
	if got := m.Snapshot().AvgCommitGroupSize(); got != 2.5 {
		t.Errorf("AvgCommitGroupSize = %v, want 2.5", got)
	}
}

func TestSub(t *testing.T) {
	var m Metrics
	m.Puts.Store(10)
	before := m.Snapshot()
	m.Puts.Add(5)
	m.Flushes.Add(2)
	d := m.Snapshot().Sub(before)
	if d.Puts != 5 || d.Flushes != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestSubEdgeCases(t *testing.T) {
	// An idle interval: every counter delta is zero, so every derived
	// ratio over the interval must come out 0, never NaN or Inf.
	var m Metrics
	m.Puts.Store(10)
	m.BytesIngested.Store(1000)
	m.FlushBytes.Store(500)
	m.Gets.Store(3)
	m.RunsProbed.Store(6)
	m.CommitGroups.Store(2)
	m.CommitBatches.Store(4)
	before := m.Snapshot()
	d := m.Snapshot().Sub(before)
	if d.Puts != 0 || d.BytesIngested != 0 {
		t.Fatalf("idle interval has nonzero deltas: %+v", d)
	}
	if d.WriteAmplification() != 0 || d.ReadAmplification() != 0 ||
		d.AvgCommitGroupSize() != 0 || d.CacheHitRate() != 0 {
		t.Error("idle-interval ratios must be 0")
	}

	// Sub of itself is all-zero except gauges.
	m.Degraded.Store(1)
	s := m.Snapshot()
	z := s.Sub(s)
	if z.Puts != 0 || z.CommitBatches != 0 || z.NetRequests != 0 {
		t.Errorf("self-Sub left counter residue: %+v", z)
	}
	// Degraded is a gauge: an interval reports the current state, not a
	// delta (which would always be 0 and hide the condition).
	if z.Degraded != 1 {
		t.Errorf("self-Sub Degraded = %d, want gauge semantics (1)", z.Degraded)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Puts.Add(1)
				m.BytesIngested.Add(10)
			}
		}()
	}
	wg.Wait()
	if m.Puts.Load() != 8000 || m.BytesIngested.Load() != 80000 {
		t.Errorf("lost updates: puts=%d bytes=%d", m.Puts.Load(), m.BytesIngested.Load())
	}
}

func TestString(t *testing.T) {
	var m Metrics
	m.Puts.Store(42)
	s := m.Snapshot().String()
	if !strings.Contains(s, "puts=42") {
		t.Errorf("String() = %q", s)
	}
}
