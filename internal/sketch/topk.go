package sketch

import (
	"sort"
	"sync"
)

// HotKey is one entry of a top-K report.
type HotKey struct {
	Key string `json:"key"`
	// Count is the estimated occurrence count; Err bounds its
	// over-estimate (space-saving guarantees true count ∈ [Count-Err,
	// Count]).
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// TopK tracks the k most frequent keys with the space-saving algorithm:
// a bounded table where a new key evicts the current minimum and
// inherits its count as error. Memory is O(k) regardless of the key
// space, which is what lets the profiler watch a hostile flood of
// distinct keys without growing.
//
// Offer is allocation-free when the key is already tracked (the
// map-lookup-by-string(bytes) pattern compiles to a no-copy probe);
// only admitting a new key allocates its string, and the table is
// bounded by k.
type TopK struct {
	mu sync.Mutex
	k  int
	m  map[string]*tkEntry
}

type tkEntry struct {
	key        string
	count, err uint64
}

// NewTopK tracks the top k keys (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, m: make(map[string]*tkEntry, k)}
}

// Offer records inc occurrences of key.
func (t *TopK) Offer(key []byte, inc uint64) {
	t.mu.Lock()
	if e := t.m[string(key)]; e != nil {
		e.count += inc
		t.mu.Unlock()
		return
	}
	if len(t.m) < t.k {
		k := string(key)
		t.m[k] = &tkEntry{key: k, count: inc}
		t.mu.Unlock()
		return
	}
	// Evict the minimum; the newcomer inherits its count as error bound.
	var min *tkEntry
	for _, e := range t.m {
		if min == nil || e.count < min.count {
			min = e
		}
	}
	delete(t.m, min.key)
	k := string(key)
	min.key = k
	min.err = min.count
	min.count += inc
	t.m[k] = min
	t.mu.Unlock()
}

// Items returns the tracked keys sorted by descending count.
func (t *TopK) Items() []HotKey {
	t.mu.Lock()
	out := make([]HotKey, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, HotKey{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Halve decays every count by half and drops entries that reach zero —
// the exponential-decay step applied at window rotation.
func (t *TopK) Halve() {
	t.mu.Lock()
	for k, e := range t.m {
		e.count /= 2
		e.err /= 2
		if e.count == 0 {
			delete(t.m, k)
		}
	}
	t.mu.Unlock()
}

// Reset empties the table.
func (t *TopK) Reset() {
	t.mu.Lock()
	clear(t.m)
	t.mu.Unlock()
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
