package sketch

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HLL is a HyperLogLog distinct-count estimator over 64-bit hashes:
// 2^p registers, each holding the maximum "rank" (position of the first
// set bit in the non-index part of the hash) observed for its substream.
// Standard error is ~1.04/sqrt(2^p); p=12 (4096 registers, 16 KiB) puts
// it around 1.6%, comfortably inside the 3% bound the accuracy tests
// assert at one million distinct keys.
//
// Registers update by CAS-max, so concurrent Adds are safe and
// allocation-free.
type HLL struct {
	p   uint8
	m   int      // 1 << p
	reg []uint32 // registers, atomic access only
}

// NewHLL builds an estimator with 2^p registers (p clamped to [4, 18]).
func NewHLL(p int) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 18 {
		p = 18
	}
	m := 1 << p
	return &HLL{p: uint8(p), m: m, reg: make([]uint32, m)}
}

// Add records one occurrence of the key hashed to h.
func (h *HLL) Add(x uint64) {
	idx := x >> (64 - h.p)
	// Rank of the first set bit among the remaining 64-p bits; the
	// sentinel bit caps the rank at 64-p+1 when they are all zero.
	rank := uint32(bits.LeadingZeros64(x<<h.p|1<<(uint(h.p)-1)) + 1)
	p := &h.reg[idx]
	for {
		v := atomic.LoadUint32(p)
		if v >= rank || atomic.CompareAndSwapUint32(p, v, rank) {
			return
		}
	}
}

// Estimate returns the estimated number of distinct keys added.
func (h *HLL) Estimate() float64 { return h.EstimateWith(nil) }

// EstimateWith returns the distinct count of the union of h and other
// (register-wise max), without materializing a merged sketch. other may
// be nil and must have the same precision otherwise.
func (h *HLL) EstimateWith(other *HLL) float64 {
	var sum float64
	zeros := 0
	for i := 0; i < h.m; i++ {
		v := atomic.LoadUint32(&h.reg[i])
		if other != nil {
			if o := atomic.LoadUint32(&other.reg[i]); o > v {
				v = o
			}
		}
		if v == 0 {
			zeros++
		}
		sum += 1 / float64(uint64(1)<<v)
	}
	m := float64(h.m)
	alpha := 0.7213 / (1 + 1.079/m)
	raw := alpha * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}

// Reset zeroes the registers (same raciness caveat as CountMin.Reset).
func (h *HLL) Reset() {
	for i := range h.reg {
		atomic.StoreUint32(&h.reg[i], 0)
	}
}
