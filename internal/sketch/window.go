package sketch

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Window gives the sketches a sliding horizon: it keeps two generations
// (current and previous) of a count-min, a HyperLogLog, and a top-K,
// and rotates every HalfLifeOps observed occurrences — the previous
// generation is discarded, the current one becomes previous, and a
// fresh one starts accumulating. Estimates always combine both
// generations, so the window covers between one and two half-lives of
// recent workload, and a key that stops occurring is fully forgotten
// within two rotations (the decay bound the accuracy tests assert).
//
// Rotation is driven by operation count, not wall clock, so tests and
// experiments are deterministic.
type Window struct {
	halfLife uint64
	k        int
	ops      atomic.Uint64 // total weight observed since start
	next     atomic.Uint64 // ops threshold of the next rotation
	rotates  atomic.Uint64

	mu   sync.Mutex // serializes rotation
	gens [2]gen
	cur  atomic.Uint32 // index of the current generation (&1)

	// OnRotate, if set before first use, is called (under the rotation
	// lock) after each rotation with the total rotation count. The
	// profiler uses it to snapshot its windowed counters in lockstep
	// with the sketch generations.
	OnRotate func(rotations uint64)
}

type gen struct {
	cm   *CountMin
	hll  *HLL
	topk *TopK
}

// WindowConfig sizes a Window.
type WindowConfig struct {
	// HalfLifeOps is the observed weight between rotations; <= 0
	// disables rotation (the window grows without decay).
	HalfLifeOps uint64
	// CMWidth/CMDepth size each generation's count-min (defaults
	// 4096x4: ~0.07% over-estimate at 98% confidence, 128 KiB/gen).
	CMWidth, CMDepth int
	// HLLPrecision is the HyperLogLog p (default 14: ~0.8% error,
	// 64 KiB/gen — comfortably inside the documented 3% bound).
	HLLPrecision int
	// K is the top-K table size (default 32).
	K int
}

// NewWindow builds a two-generation decay window.
func NewWindow(cfg WindowConfig) *Window {
	if cfg.CMWidth <= 0 {
		cfg.CMWidth = 4096
	}
	if cfg.CMDepth <= 0 {
		cfg.CMDepth = 4
	}
	if cfg.HLLPrecision <= 0 {
		cfg.HLLPrecision = 14
	}
	if cfg.K <= 0 {
		cfg.K = 32
	}
	w := &Window{halfLife: cfg.HalfLifeOps, k: cfg.K}
	for i := range w.gens {
		w.gens[i] = gen{
			cm:   NewCountMinWD(cfg.CMWidth, cfg.CMDepth),
			hll:  NewHLL(cfg.HLLPrecision),
			topk: NewTopK(cfg.K),
		}
	}
	if w.halfLife > 0 {
		w.next.Store(w.halfLife)
	}
	return w
}

// Observe records inc occurrences of key (pre-hashed to h) in the
// current generation and rotates if the half-life elapsed.
// Allocation-free in steady state.
func (w *Window) Observe(h uint64, key []byte, inc uint64) {
	g := &w.gens[w.cur.Load()&1]
	est := g.cm.Add(h, inc)
	g.hll.Add(h)
	// Count-min-filtered admission: only keys whose estimated share
	// could place them near the head touch the bounded top-K table, so
	// the cold tail of a uniform workload never pays the table's mutex
	// or churns (and allocates in) it.
	if est*uint64(4*w.k) >= g.cm.N() {
		g.topk.Offer(key, inc)
	}
	if n := w.ops.Add(inc); w.halfLife > 0 && n >= w.next.Load() {
		w.rotate(n)
	}
}

// rotate swaps generations once per crossed threshold; racers that
// observe the same crossing lose on the recheck under the lock.
func (w *Window) rotate(n uint64) {
	w.mu.Lock()
	next := w.next.Load()
	if n < next {
		w.mu.Unlock()
		return
	}
	w.next.Store(next + w.halfLife)
	idx := w.cur.Load()
	old := &w.gens[(idx+1)&1] // the outgoing previous generation
	old.cm.Reset()
	old.hll.Reset()
	old.topk.Reset()
	w.cur.Store(idx + 1) // old (now empty) becomes current
	r := w.rotates.Add(1)
	if w.OnRotate != nil {
		w.OnRotate(r)
	}
	w.mu.Unlock()
}

// Count estimates the occurrences of the key hashed to h within the
// window (sum over both generations).
func (w *Window) Count(h uint64) uint64 {
	i := w.cur.Load()
	return w.gens[i&1].cm.Estimate(h) + w.gens[(i+1)&1].cm.Estimate(h)
}

// Total returns the total weight observed within the window.
func (w *Window) Total() uint64 {
	return w.gens[0].cm.N() + w.gens[1].cm.N()
}

// Distinct estimates the number of distinct keys within the window.
func (w *Window) Distinct() float64 {
	i := w.cur.Load()
	return w.gens[i&1].hll.EstimateWith(w.gens[(i+1)&1].hll)
}

// Top returns up to k hot keys within the window, merging both
// generations by summed count, sorted descending.
func (w *Window) Top(k int) []HotKey {
	i := w.cur.Load()
	a := w.gens[i&1].topk.Items()
	b := w.gens[(i+1)&1].topk.Items()
	merged := make(map[string]HotKey, len(a)+len(b))
	for _, hk := range a {
		merged[hk.Key] = hk
	}
	for _, hk := range b {
		if have, ok := merged[hk.Key]; ok {
			have.Count += hk.Count
			have.Err += hk.Err
			merged[hk.Key] = have
		} else {
			merged[hk.Key] = hk
		}
	}
	out := make([]HotKey, 0, len(merged))
	for _, hk := range merged {
		out = append(out, hk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Rotations returns how many half-lives have elapsed.
func (w *Window) Rotations() uint64 { return w.rotates.Load() }
