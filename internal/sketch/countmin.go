// Package sketch provides the probabilistic data structures behind the
// engine's live workload characterization (ROADMAP item 2, tutorial
// Module III): a count-min sketch for per-key frequency, a HyperLogLog
// for distinct-key cardinality, a space-saving top-K for hot keys, and
// a two-generation decay window that makes all three track the *recent*
// workload rather than history since startup.
//
// Every update path is lock-cheap and allocation-free in steady state:
// the count-min and HyperLogLog use CAS loops over pre-allocated
// arrays, and the top-K only allocates when a new key enters the
// bounded table. The engine's profiler calls them from the get/put hot
// paths (sampled), so these properties are load-bearing — see
// TestGetHotZeroAllocs in internal/core.
package sketch

import (
	"math"
	"sync/atomic"
)

// CountMin is a count-min sketch with conservative update: d rows of w
// counters, each key hashed to one counter per row, point estimate =
// min over rows. Conservative update only raises the counters that are
// at the current minimum, which tightens the classical over-estimate
// bound in practice (it never loosens it). The structural guarantee is
// one-sided: estimates never under-count, and over-count by at most
// εN with probability 1−δ when sized by NewCountMin (w = ⌈e/ε⌉,
// d = ⌈ln(1/δ)⌉, N = total weight added).
//
// All methods are safe for concurrent use.
type CountMin struct {
	w    int // counters per row, power of two
	d    int // rows
	mask uint64
	cnt  []uint64 // d*w counters, atomic access only
	n    atomic.Uint64
}

// NewCountMin sizes a sketch for an over-estimate of at most eps*N with
// probability 1-delta.
func NewCountMin(eps, delta float64) *CountMin {
	if eps <= 0 {
		eps = 0.001
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	w := ceilPow2(int(math.Ceil(math.E / eps)))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	return NewCountMinWD(w, d)
}

// NewCountMinWD builds a sketch with explicit dimensions; w is rounded
// up to a power of two.
func NewCountMinWD(w, d int) *CountMin {
	w = ceilPow2(w)
	if d < 1 {
		d = 1
	}
	return &CountMin{w: w, d: d, mask: uint64(w - 1), cnt: make([]uint64, w*d)}
}

func ceilPow2(v int) int {
	if v < 2 {
		return 2
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// idx returns the counter index of row i for hash h, by double hashing:
// the two halves of the 64-bit hash act as independent hash functions.
func (c *CountMin) idx(h uint64, i int) int {
	h2 := (h>>32)*0x9e3779b97f4a7c15 | 1 // odd, so all slots reachable
	return i*c.w + int((h+uint64(i)*h2)&c.mask)
}

// Add records inc occurrences of the key hashed to h, with conservative
// update, and returns the key's new estimate.
func (c *CountMin) Add(h uint64, inc uint64) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < c.d; i++ {
		if v := atomic.LoadUint64(&c.cnt[c.idx(h, i)]); v < est {
			est = v
		}
	}
	target := est + inc
	for i := 0; i < c.d; i++ {
		p := &c.cnt[c.idx(h, i)]
		for {
			v := atomic.LoadUint64(p)
			if v >= target || atomic.CompareAndSwapUint64(p, v, target) {
				break
			}
		}
	}
	c.n.Add(inc)
	return target
}

// Estimate returns the frequency estimate for the key hashed to h.
func (c *CountMin) Estimate(h uint64) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < c.d; i++ {
		if v := atomic.LoadUint64(&c.cnt[c.idx(h, i)]); v < est {
			est = v
		}
	}
	return est
}

// N returns the total weight added since the last Reset.
func (c *CountMin) N() uint64 { return c.n.Load() }

// Reset zeroes the sketch. Concurrent Adds during a Reset may survive
// partially; the window rotation that calls this tolerates the
// resulting slight under-count (all estimates here are approximate).
func (c *CountMin) Reset() {
	for i := range c.cnt {
		atomic.StoreUint64(&c.cnt[i], 0)
	}
	c.n.Store(0)
}
