package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"lsmlab/internal/bloom"
)

// keyOf renders a deterministic key and its engine hash.
func keyOf(i int) ([]byte, uint64) {
	k := []byte(fmt.Sprintf("key-%08d", i))
	return k, bloom.Hash64(k)
}

// TestCountMinBound drives a zipfian stream through a sketch sized for
// eps=0.1%, delta=1% and asserts the classical guarantee: estimates
// never under-count, and over-count by more than eps*N on at most a
// delta fraction of queried keys (conservative update usually does far
// better; the assertion is the documented bound, not the typical case).
func TestCountMinBound(t *testing.T) {
	const (
		eps   = 0.001
		delta = 0.01
		nOps  = 200_000
		space = 50_000
	)
	cm := NewCountMin(eps, delta)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, space-1)
	truth := make(map[int]uint64)
	for i := 0; i < nOps; i++ {
		id := int(zipf.Uint64())
		truth[id]++
		_, h := keyOf(id)
		cm.Add(h, 1)
	}
	if got := cm.N(); got != nOps {
		t.Fatalf("N = %d, want %d", got, nOps)
	}
	bound := uint64(math.Ceil(eps * nOps))
	violations, queried := 0, 0
	for id, want := range truth {
		_, h := keyOf(id)
		got := cm.Estimate(h)
		if got < want {
			t.Fatalf("under-count for key %d: est %d < true %d", id, got, want)
		}
		if got-want > bound {
			violations++
		}
		queried++
	}
	if maxViol := int(delta * float64(queried)); violations > maxViol {
		t.Fatalf("%d/%d estimates exceed eps*N=%d over-estimate (allowed %d)",
			violations, queried, bound, maxViol)
	}
}

// TestCountMinConcurrent checks the CAS update path under contention:
// total weight must be exact and a heavily-updated key's estimate must
// be at least its true count.
func TestCountMinConcurrent(t *testing.T) {
	cm := NewCountMinWD(1024, 4)
	const (
		workers = 8
		perW    = 10_000
	)
	_, hot := keyOf(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				if rng.Intn(2) == 0 {
					cm.Add(hot, 1)
				} else {
					_, h := keyOf(1 + rng.Intn(1000))
					cm.Add(h, 1)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if got := cm.N(); got != workers*perW {
		t.Fatalf("N = %d, want %d", got, workers*perW)
	}
	if est := cm.Estimate(hot); est < workers*perW/3 {
		t.Fatalf("hot key estimate %d implausibly low", est)
	}
}

// TestHLLAccuracy asserts relative error <= 3% at one million distinct
// keys (the default precision 14 has ~0.8% standard error, so this is
// a ~3.7-sigma bound on a deterministic stream).
func TestHLLAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-key cardinality check")
	}
	h := NewHLL(14)
	const n = 1_000_000
	var buf [8]byte
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Add(bloom.Hash64(buf[:]))
	}
	est := h.Estimate()
	if relErr := math.Abs(est-n) / n; relErr > 0.03 {
		t.Fatalf("estimate %.0f for %d distinct keys: relative error %.4f > 0.03", est, n, relErr)
	}
	// Duplicates must not move the cardinality.
	for i := 0; i < 1000; i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Add(bloom.Hash64(buf[:]))
	}
	if got := h.Estimate(); got != est {
		t.Fatalf("duplicates changed the estimate: %.0f -> %.0f", est, got)
	}
}

// TestHLLSmallRange checks the linear-counting regime: tiny exact-ish
// cardinalities must not be wildly off.
func TestHLLSmallRange(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 100; i++ {
		_, hh := keyOf(i)
		h.Add(hh)
	}
	if est := h.Estimate(); math.Abs(est-100) > 10 {
		t.Fatalf("estimate %.1f for 100 distinct keys", est)
	}
}

// TestHLLMerge checks EstimateWith against the union of two disjoint
// streams.
func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(14), NewHLL(14)
	for i := 0; i < 50_000; i++ {
		_, h := keyOf(i)
		a.Add(h)
		_, h2 := keyOf(i + 50_000)
		b.Add(h2)
	}
	est := a.EstimateWith(b)
	if relErr := math.Abs(est-100_000) / 100_000; relErr > 0.03 {
		t.Fatalf("merged estimate %.0f for 100k distinct: relative error %.4f", est, relErr)
	}
}

// TestTopKZipf checks that space-saving surfaces the true head of a
// zipfian stream, stays bounded, and honors its error bounds.
func TestTopKZipf(t *testing.T) {
	tk := NewTopK(16)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, 10_000)
	truth := make(map[string]uint64)
	for i := 0; i < 100_000; i++ {
		k, _ := keyOf(int(zipf.Uint64()))
		truth[string(k)]++
		tk.Offer(k, 1)
	}
	items := tk.Items()
	if len(items) > 16 {
		t.Fatalf("table exceeded k: %d", len(items))
	}
	top, _ := keyOf(0) // rank 0 dominates a 1.3-skew zipf
	if items[0].Key != string(top) {
		t.Fatalf("top item %q, want %q", items[0].Key, top)
	}
	for _, it := range items {
		if want := truth[it.Key]; it.Count < want {
			t.Fatalf("space-saving under-counted %q: %d < %d", it.Key, it.Count, want)
		} else if it.Count-it.Err > want {
			t.Fatalf("count-err for %q not a lower bound: %d-%d > %d", it.Key, it.Count, it.Err, want)
		}
	}
}

// TestWindowDecay asserts the documented forgetting bound: a hot key
// that stops occurring is gone from every estimate within two
// half-lives of other traffic.
func TestWindowDecay(t *testing.T) {
	w := NewWindow(WindowConfig{HalfLifeOps: 1000, K: 8})
	hotKey, hotHash := keyOf(999_999)
	for i := 0; i < 500; i++ {
		w.Observe(hotHash, hotKey, 1)
	}
	if w.Count(hotHash) < 500 {
		t.Fatalf("hot key count %d before retirement", w.Count(hotHash))
	}
	// Retire the key: two full half-lives of unrelated traffic.
	r0 := w.Rotations()
	i := 0
	for w.Rotations() < r0+2 {
		k, h := keyOf(i)
		w.Observe(h, k, 1)
		i++
	}
	if got := w.Count(hotHash); got != 0 {
		t.Fatalf("retired hot key still counted %d after 2 half-lives", got)
	}
	for _, hk := range w.Top(8) {
		if hk.Key == string(hotKey) {
			t.Fatalf("retired hot key still in top-K")
		}
	}
}

// TestWindowTracksShift is the miniature of experiment O2: the window's
// top-K and distinct count must follow a workload shift within the
// decay horizon.
func TestWindowTracksShift(t *testing.T) {
	w := NewWindow(WindowConfig{HalfLifeOps: 2000, K: 8})
	// Phase 1: uniform over 5000 keys.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		k, h := keyOf(rng.Intn(5000))
		w.Observe(h, k, 1)
	}
	d1 := w.Distinct()
	// Phase 2: hammer a single key for two half-lives.
	k, h := keyOf(123)
	for i := 0; i < 4000; i++ {
		w.Observe(h, k, 1)
	}
	if top := w.Top(1); len(top) == 0 || top[0].Key != string(k) {
		t.Fatalf("top key after shift: %+v", top)
	}
	if d2 := w.Distinct(); d2 >= d1/2 {
		t.Fatalf("distinct did not decay after shift: %.0f -> %.0f", d1, d2)
	}
	if total := w.Total(); total > 4000 {
		t.Fatalf("window total %d exceeds two half-lives", total)
	}
}

// TestWindowOnRotate checks the rotation callback fires once per
// half-life with the running rotation count.
func TestWindowOnRotate(t *testing.T) {
	w := NewWindow(WindowConfig{HalfLifeOps: 100})
	var calls []uint64
	w.OnRotate = func(r uint64) { calls = append(calls, r) }
	for i := 0; i < 350; i++ {
		k, h := keyOf(i)
		w.Observe(h, k, 1)
	}
	if len(calls) != 3 || calls[0] != 1 || calls[2] != 3 {
		t.Fatalf("rotation callbacks = %v, want [1 2 3]", calls)
	}
}

// BenchmarkWindowObserve measures the sampled-path cost the profiler
// pays (one Observe per 8 engine ops).
func BenchmarkWindowObserve(b *testing.B) {
	w := NewWindow(WindowConfig{HalfLifeOps: 1 << 20})
	keys := make([][]byte, 256)
	hashes := make([]uint64, 256)
	for i := range keys {
		keys[i], hashes[i] = keyOf(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 255
		w.Observe(hashes[j], keys[j], 8)
	}
}
