// Package secondary adds secondary-attribute indexing on top of the
// engine (tutorial §2.1.3: "optimizing reads on secondary (non-key)
// attributes through secondary indexing techniques" [97, 117, 118]).
//
// The maintenance scheme is *deferred lightweight indexing* (Tang et
// al. [118]), the LSM-idiomatic choice: writes append new index
// postings without reading the old value (no read-modify-write on the
// write path), so stale postings accumulate; lookups validate each
// candidate against the primary record before returning it, and an
// explicit Cleanup pass garbage-collects invalid postings.
//
// Layout: one tree holds both spaces under disjoint prefixes —
//
//	d\x00<pk>                  → value
//	x\x00<attr>\x00<pk>        → (empty)
//
// so a secondary lookup is a prefix scan over the posting space.
package secondary

import (
	"bytes"
	"errors"

	"lsmlab/internal/core"
)

// Extractor derives the secondary keys (attribute values) under which a
// record should be indexed. It must be deterministic.
type Extractor func(pk, value []byte) [][]byte

var (
	dataPrefix  = []byte("d\x00")
	indexPrefix = []byte("x\x00")
	sep         = byte(0)
)

// ErrNoExtractor is returned by Open when no extractor is supplied.
var ErrNoExtractor = errors.New("secondary: extractor is required")

// Store is a primary key-value store with one secondary index.
type Store struct {
	db      *core.DB
	extract Extractor
}

// Open opens an indexed store over opts.
func Open(opts core.Options, extract Extractor) (*Store, error) {
	if extract == nil {
		return nil, ErrNoExtractor
	}
	db, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	return &Store{db: db, extract: extract}, nil
}

func dataKey(pk []byte) []byte {
	k := make([]byte, 0, len(dataPrefix)+len(pk))
	k = append(k, dataPrefix...)
	return append(k, pk...)
}

func postingKey(attr, pk []byte) []byte {
	k := make([]byte, 0, len(indexPrefix)+len(attr)+1+len(pk))
	k = append(k, indexPrefix...)
	k = append(k, attr...)
	k = append(k, sep)
	return append(k, pk...)
}

// Put writes the record and appends postings for its current
// attributes. Old postings (from a previous value) are left behind and
// invalidated lazily — the deferred scheme's write-path bargain.
func (s *Store) Put(pk, value []byte) error {
	var b core.Batch
	b.Put(dataKey(pk), value)
	for _, attr := range s.extract(pk, value) {
		b.Put(postingKey(attr, pk), nil)
	}
	return s.db.Apply(&b)
}

// Get reads a record by primary key.
func (s *Store) Get(pk []byte) ([]byte, error) {
	return s.db.Get(dataKey(pk))
}

// Delete removes a record. Its postings become stale and are filtered
// by Lookup until Cleanup purges them.
func (s *Store) Delete(pk []byte) error {
	return s.db.Delete(dataKey(pk))
}

// Match is one validated secondary-lookup result.
type Match struct {
	PK    []byte
	Value []byte
}

// Lookup returns every live record currently indexed under attr,
// validating each posting against the primary record (stale postings —
// from overwrites or deletes — are skipped). limit <= 0 means all.
func (s *Store) Lookup(attr []byte, limit int) ([]Match, error) {
	matches, _, err := s.lookup(attr, limit, false)
	return matches, err
}

// lookup optionally collects the stale postings it encounters.
func (s *Store) lookup(attr []byte, limit int, wantStale bool) ([]Match, [][]byte, error) {
	start := postingKey(attr, nil)
	end := append(postingKey(attr, nil)[:len(start)-1], sep+1)
	it, err := s.db.NewIterator(core.IterOptions{LowerBound: start, UpperBound: end})
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()

	var matches []Match
	var stale [][]byte
	for ok := it.First(); ok; ok = it.Next() {
		pk := it.Key()[len(start):]
		value, err := s.Get(pk)
		if errors.Is(err, core.ErrNotFound) {
			if wantStale {
				stale = append(stale, append([]byte(nil), it.Key()...))
			}
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		// Validate: the record must still carry this attribute.
		live := false
		for _, cur := range s.extract(pk, value) {
			if bytes.Equal(cur, attr) {
				live = true
				break
			}
		}
		if !live {
			if wantStale {
				stale = append(stale, append([]byte(nil), it.Key()...))
			}
			continue
		}
		matches = append(matches, Match{
			PK:    append([]byte(nil), pk...),
			Value: value,
		})
		if limit > 0 && len(matches) >= limit {
			break
		}
	}
	return matches, stale, it.Err()
}

// Cleanup scans the posting space for attr and deletes stale postings,
// returning how many were purged. Running it for every attribute (or
// piggybacking it on lookups) bounds index space amplification.
func (s *Store) Cleanup(attr []byte) (int, error) {
	_, stale, err := s.lookup(attr, 0, true)
	if err != nil {
		return 0, err
	}
	if len(stale) == 0 {
		return 0, nil
	}
	var b core.Batch
	for _, k := range stale {
		b.Delete(k)
	}
	if err := s.db.Apply(&b); err != nil {
		return 0, err
	}
	return len(stale), nil
}

// DB exposes the underlying engine (stats, flush, compaction).
func (s *Store) DB() *core.DB { return s.db }

// Close closes the store.
func (s *Store) Close() error { return s.db.Close() }
