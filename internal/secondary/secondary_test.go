package secondary

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lsmlab/internal/core"
	"lsmlab/internal/vfs"
)

// byTag indexes comma-separated "tags" in the value: value format is
// "payload|tag1,tag2,...".
func byTag(pk, value []byte) [][]byte {
	parts := strings.SplitN(string(value), "|", 2)
	if len(parts) != 2 || parts[1] == "" {
		return nil
	}
	var attrs [][]byte
	for _, tag := range strings.Split(parts[1], ",") {
		attrs = append(attrs, []byte(tag))
	}
	return attrs
}

func testStore(t *testing.T) *Store {
	t.Helper()
	opts := core.DefaultOptions(vfs.NewMem(), "sdb")
	opts.BufferBytes = 8 << 10
	s, err := Open(opts, byTag)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func pks(ms []Match) string {
	var out []string
	for _, m := range ms {
		out = append(out, string(m.PK))
	}
	return strings.Join(out, ",")
}

func TestOpenRequiresExtractor(t *testing.T) {
	if _, err := Open(core.DefaultOptions(vfs.NewMem(), "x"), nil); !errors.Is(err, ErrNoExtractor) {
		t.Fatal(err)
	}
}

func TestLookupBasic(t *testing.T) {
	s := testStore(t)
	s.Put([]byte("u1"), []byte("alice|admin,eng"))
	s.Put([]byte("u2"), []byte("bob|eng"))
	s.Put([]byte("u3"), []byte("carol|sales"))

	ms, err := s.Lookup([]byte("eng"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pks(ms) != "u1,u2" {
		t.Fatalf("eng -> %s", pks(ms))
	}
	ms, _ = s.Lookup([]byte("admin"), 0)
	if pks(ms) != "u1" {
		t.Fatalf("admin -> %s", pks(ms))
	}
	if ms[0].Value == nil || !bytes.Contains(ms[0].Value, []byte("alice")) {
		t.Fatal("match must carry the live value")
	}
	ms, _ = s.Lookup([]byte("nobody"), 0)
	if len(ms) != 0 {
		t.Fatal("absent attribute")
	}
}

func TestStalePostingsFiltered(t *testing.T) {
	s := testStore(t)
	s.Put([]byte("u1"), []byte("alice|eng"))
	// Update: attribute changes eng -> sales; the old posting remains on
	// disk but must not surface.
	s.Put([]byte("u1"), []byte("alice|sales"))
	if ms, _ := s.Lookup([]byte("eng"), 0); len(ms) != 0 {
		t.Fatalf("stale posting surfaced: %s", pks(ms))
	}
	if ms, _ := s.Lookup([]byte("sales"), 0); pks(ms) != "u1" {
		t.Fatal("new posting missing")
	}
	// Delete: all postings stale.
	s.Delete([]byte("u1"))
	if ms, _ := s.Lookup([]byte("sales"), 0); len(ms) != 0 {
		t.Fatal("posting for deleted record surfaced")
	}
}

func TestCleanupPurgesStalePostings(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("u%02d", i)), []byte("x|hot"))
	}
	// Invalidate half by retagging.
	for i := 0; i < 25; i++ {
		s.Put([]byte(fmt.Sprintf("u%02d", i)), []byte("x|cold"))
	}
	purged, err := s.Cleanup([]byte("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if purged != 25 {
		t.Fatalf("purged %d, want 25", purged)
	}
	// Idempotent.
	purged, _ = s.Cleanup([]byte("hot"))
	if purged != 0 {
		t.Fatalf("second cleanup purged %d", purged)
	}
	// Live postings unharmed.
	if ms, _ := s.Lookup([]byte("hot"), 0); len(ms) != 25 {
		t.Fatalf("hot -> %d", len(ms))
	}
	if ms, _ := s.Lookup([]byte("cold"), 0); len(ms) != 25 {
		t.Fatalf("cold -> %d", len(ms))
	}
}

func TestLookupLimit(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("u%02d", i)), []byte("x|t"))
	}
	ms, _ := s.Lookup([]byte("t"), 5)
	if len(ms) != 5 {
		t.Fatalf("limit: %d", len(ms))
	}
}

func TestIndexSurvivesFlushCompactReopen(t *testing.T) {
	opts := core.DefaultOptions(vfs.NewMem(), "sdb")
	opts.BufferBytes = 8 << 10
	s, err := Open(opts, byTag)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tag := "even"
		if i%2 == 1 {
			tag = "odd"
		}
		s.Put([]byte(fmt.Sprintf("u%03d", i)), []byte(fmt.Sprintf("p%d|%s", i, tag)))
	}
	s.DB().Flush()
	if err := s.DB().Compact(); err != nil {
		t.Fatal(err)
	}
	if ms, _ := s.Lookup([]byte("even"), 0); len(ms) != 100 {
		t.Fatalf("even after compact: %d", len(ms))
	}
	s.Close()

	s2, err := Open(opts, byTag)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if ms, _ := s2.Lookup([]byte("odd"), 0); len(ms) != 100 {
		t.Fatalf("odd after reopen: %d", len(ms))
	}
}

func TestAttributeBoundaryIsolation(t *testing.T) {
	// Attributes that are prefixes of each other must not bleed.
	s := testStore(t)
	s.Put([]byte("a"), []byte("v|tag"))
	s.Put([]byte("b"), []byte("v|tagger"))
	if ms, _ := s.Lookup([]byte("tag"), 0); pks(ms) != "a" {
		t.Fatalf("tag -> %s", pks(ms))
	}
	if ms, _ := s.Lookup([]byte("tagger"), 0); pks(ms) != "b" {
		t.Fatalf("tagger -> %s", pks(ms))
	}
}

func TestRecordsWithNoAttributes(t *testing.T) {
	s := testStore(t)
	s.Put([]byte("plain"), []byte("no-tags|"))
	v, err := s.Get([]byte("plain"))
	if err != nil || string(v) != "no-tags|" {
		t.Fatal("untagged record must be readable")
	}
}
