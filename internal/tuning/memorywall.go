package tuning

import "math"

// This file models the third memory dimension of tutorial §2.3.1: Luo
// and Carey's "Breaking Down Memory Walls" [79, 82] — dividing main
// memory between the write buffer and the block cache. A larger buffer
// amortizes more of each entry's write cost (fewer, bigger flushes and
// fewer levels); a larger cache absorbs more read misses. The optimum
// moves with the workload's read/write balance and skew.

// CacheWorkload extends the operation mix with the properties the cache
// model needs.
type CacheWorkload struct {
	// Workload is the op mix.
	Workload
	// DataBytes is the total size of the readable data set.
	DataBytes int64
	// Skew is the fraction of reads that target the hottest 20% of the
	// data (0.2 = uniform, 0.95 = heavily skewed). The model uses a
	// two-segment approximation of a zipfian hit curve.
	Skew float64
}

// CacheHitRate approximates the block-cache hit rate for a cache of
// cacheBytes over the workload's data set: reads split into a hot
// segment (20% of the data receiving Skew of the accesses) and a cold
// remainder, each cached proportionally to coverage.
func CacheHitRate(w CacheWorkload, cacheBytes int64) float64 {
	if w.DataBytes <= 0 || cacheBytes <= 0 {
		return 0
	}
	if cacheBytes >= w.DataBytes {
		return 1
	}
	skew := w.Skew
	if skew < 0.2 {
		skew = 0.2 // uniform floor: 20% of data gets >= 20% of accesses
	}
	if skew > 0.999 {
		skew = 0.999
	}
	hotBytes := w.DataBytes / 5
	c := float64(cacheBytes)
	// The cache fills with hot data first (LRU under skew approximates
	// this), then with cold data.
	hotCovered := math.Min(c, float64(hotBytes)) / float64(hotBytes)
	coldCovered := 0.0
	if c > float64(hotBytes) {
		coldCovered = (c - float64(hotBytes)) / float64(w.DataBytes-hotBytes)
	}
	return skew*hotCovered + (1-skew)*coldCovered
}

// MemorySplit is a three-way division of the memory budget.
type MemorySplit struct {
	BufferBytes int64
	FilterBytes int64
	CacheBytes  int64
	Cost        float64 // expected I/O per operation under the model
}

// NavigateMemory finds the best three-way split of memoryBytes between
// write buffer, Bloom filters, and block cache for a fixed tree shape
// (T, layout): the §2.3.1 memory-wall navigation. It sweeps a grid of
// splits and returns the minimum-cost point.
func NavigateMemory(sys SystemParams, w CacheWorkload, memoryBytes int64,
	sizeRatio int, layout DataLayout) MemorySplit {
	wl := w.Workload.Normalize()
	best := MemorySplit{Cost: math.Inf(1)}
	const steps = 10
	for bi := 1; bi < steps; bi++ {
		for fi := 0; fi < steps-bi; fi++ {
			bufFrac := float64(bi) / steps
			filterFrac := float64(fi) / steps
			cacheFrac := 1 - bufFrac - filterFrac
			if cacheFrac < 0 {
				continue
			}
			split := MemorySplit{
				BufferBytes: int64(float64(memoryBytes) * bufFrac),
				FilterBytes: int64(float64(memoryBytes) * filterFrac),
				CacheBytes:  int64(float64(memoryBytes) * cacheFrac),
			}
			// The shape model sees only buffer+filters; the cache scales
			// the read terms by the miss rate.
			cfg := Config{
				SizeRatio:      sizeRatio,
				Layout:         layout,
				MemoryBytes:    split.BufferBytes + split.FilterBytes,
				BufferFraction: safeFrac(split.BufferBytes, split.BufferBytes+split.FilterBytes),
			}
			c := Evaluate(cfg, sys)
			miss := 1 - CacheHitRate(w, split.CacheBytes)
			split.Cost = wl.Inserts*c.Write +
				miss*(wl.PointZero*c.PointZero+
					wl.PointExist*c.PointExist+
					wl.ShortScans*c.ShortScan+
					wl.LongScans*c.LongScanPer)
			if split.Cost < best.Cost {
				best = split
			}
		}
	}
	return best
}

func safeFrac(num, den int64) float64 {
	if den <= 0 {
		return 0.5
	}
	return float64(num) / float64(den)
}
