// Package tuning implements Module III of the tutorial: the analytic
// cost model over the LSM design space (the RUM tradeoff), a navigator
// that picks the best configuration for a workload mix (Monkey-style
// co-tuning of layout, size ratio, and memory split), and Endure-style
// robust tuning that optimizes the worst case in a neighborhood of the
// expected workload.
//
// The model follows the standard analyses (O'Neil et al.; Dayan et al.
// Monkey/Dostoevsky): costs are expressed in expected page I/Os per
// operation, parameterized by the size ratio T, the data layout, the
// number of entries, entry size, page size, and the memory split
// between the write buffer and the Bloom filters.
package tuning

import (
	"fmt"
	"math"
)

// DataLayout is the tree shape dimension of the design space.
type DataLayout int

// The layouts the model covers.
const (
	LayoutLeveling DataLayout = iota
	LayoutTiering
	LayoutLazyLeveling
)

func (l DataLayout) String() string {
	switch l {
	case LayoutLeveling:
		return "leveling"
	case LayoutTiering:
		return "tiering"
	case LayoutLazyLeveling:
		return "lazy-leveling"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Config is one point in the LSM design space.
type Config struct {
	// SizeRatio is T >= 2.
	SizeRatio int
	// Layout is the data layout.
	Layout DataLayout
	// MemoryBytes is the total main memory for buffer + filters.
	MemoryBytes int64
	// BufferFraction is the share of MemoryBytes given to the write
	// buffer; the rest funds Bloom filters.
	BufferFraction float64
}

// SystemParams describes the data and device, fixed across configs.
type SystemParams struct {
	// NumEntries is the total number of live entries N.
	NumEntries int64
	// EntryBytes is the average entry size E.
	EntryBytes int64
	// PageBytes is the disk page size P.
	PageBytes int64
}

// EntriesPerPage returns B = P/E.
func (s SystemParams) EntriesPerPage() float64 {
	return float64(s.PageBytes) / float64(s.EntryBytes)
}

// Costs are the expected page I/Os per operation plus derived space
// amplification — the axes of the RUM tradeoff.
type Costs struct {
	Write       float64 // amortized I/O per insert
	PointZero   float64 // zero-result point lookup
	PointExist  float64 // existing-key point lookup
	ShortScan   float64 // short range scan (seek-dominated)
	LongScanPer float64 // long range scan, per page of result selectivity
	SpaceAmp    float64 // bytes stored / bytes live
}

// Levels returns the number of tree levels L for a config: data beyond
// the buffer is spread over levels growing by T.
func Levels(cfg Config, sys SystemParams) float64 {
	bufBytes := float64(cfg.MemoryBytes) * cfg.BufferFraction
	if bufBytes < float64(sys.PageBytes) {
		bufBytes = float64(sys.PageBytes)
	}
	data := float64(sys.NumEntries * sys.EntryBytes)
	if data <= bufBytes {
		return 1
	}
	T := float64(cfg.SizeRatio)
	L := math.Ceil(math.Log(data/bufBytes*(T-1)/T+1) / math.Log(T))
	if L < 1 {
		L = 1
	}
	return L
}

// runsPerLevel returns how many sorted runs each level contributes for
// the layout.
func runsPerLevel(layout DataLayout, T float64, level, levels int) float64 {
	switch layout {
	case LayoutTiering:
		return T
	case LayoutLazyLeveling:
		if level == levels-1 {
			return 1
		}
		return T
	default:
		return 1
	}
}

// filterFPRSum returns the total false-positive mass Σ fpr_i across all
// runs under the optimal (Monkey) allocation of the filter budget, plus
// the per-run FPR list (shallow first). With m bits per entry overall,
// Monkey's closed form gives a total FPR proportional to the layout's
// run structure; we compute it numerically from the run entry counts.
func filterFPRSum(cfg Config, sys SystemParams) float64 {
	filterBits := float64(cfg.MemoryBytes) * (1 - cfg.BufferFraction) * 8
	if filterBits <= 0 {
		// No filters: every run is probed.
		return totalRuns(cfg, sys)
	}
	T := float64(cfg.SizeRatio)
	L := int(Levels(cfg, sys))
	// Entry counts per run: level i holds ~ N · (T-1)/T^(L-i)… compute a
	// geometric fill where the last level holds the bulk.
	var runs []float64
	remaining := float64(sys.NumEntries)
	for i := L - 1; i >= 0; i-- {
		levelShare := remaining
		if i > 0 {
			levelShare = remaining * (T - 1) / T
		}
		r := runsPerLevel(cfg.Layout, T, i, L)
		for j := 0; j < int(r); j++ {
			runs = append(runs, levelShare/r)
		}
		remaining -= levelShare
		if remaining < 1 {
			remaining = 1
		}
	}
	// Monkey waterfilling (same algorithm as bloom.Allocate, in float).
	active := make([]bool, len(runs))
	for i, n := range runs {
		active[i] = n >= 1
	}
	ln2sq := math.Ln2 * math.Ln2
	for {
		var sumN, sumNlnN float64
		any := false
		for i, n := range runs {
			if !active[i] {
				continue
			}
			any = true
			sumN += n
			sumNlnN += n * math.Log(n)
		}
		if !any {
			return totalRuns(cfg, sys)
		}
		lnInvC := (filterBits*ln2sq + sumNlnN) / sumN
		refit := false
		var fprSum float64
		inactive := 0
		for i, n := range runs {
			if !active[i] {
				inactive++
				continue
			}
			b := (lnInvC - math.Log(n)) / ln2sq
			if b <= 0 {
				active[i] = false
				refit = true
				continue
			}
			fprSum += math.Exp(-ln2sq * b)
		}
		if !refit {
			return fprSum + float64(inactive) // unfiltered runs always probed
		}
	}
}

// totalRuns returns the number of sorted runs in the tree.
func totalRuns(cfg Config, sys SystemParams) float64 {
	T := float64(cfg.SizeRatio)
	L := int(Levels(cfg, sys))
	var runs float64
	for i := 0; i < L; i++ {
		runs += runsPerLevel(cfg.Layout, T, i, L)
	}
	return runs
}

// Evaluate computes the model costs for a configuration.
func Evaluate(cfg Config, sys SystemParams) Costs {
	T := float64(cfg.SizeRatio)
	L := Levels(cfg, sys)
	B := sys.EntriesPerPage()

	var c Costs

	// Write cost: every entry is eventually rewritten once per level
	// (tiering) or ~T/2 times per level (leveling, merged into a run
	// that grows T times before moving on); lazy leveling pays tiering
	// at intermediate levels and leveling at the last.
	switch cfg.Layout {
	case LayoutTiering:
		c.Write = L / B
	case LayoutLazyLeveling:
		c.Write = ((L - 1) + T/2) / B
	default:
		c.Write = L * T / 2 / B
	}

	// Point lookups: zero-result cost is the filter false-positive
	// mass; existing-key cost adds the one real probe.
	c.PointZero = filterFPRSum(cfg, sys)
	c.PointExist = 1 + c.PointZero

	// Short scans probe every run once (filters do not help vanilla
	// scans); long scans additionally stream s/B pages, dominated by
	// the last level(s): tiering reads T copies of the large level.
	runs := totalRuns(cfg, sys)
	c.ShortScan = runs
	switch cfg.Layout {
	case LayoutTiering:
		c.LongScanPer = T
	default:
		c.LongScanPer = 1 + 1/T
	}

	// Space amplification: leveling wastes at most 1/T of the last
	// level in shallower duplicates; tiering can hold T copies.
	switch cfg.Layout {
	case LayoutTiering:
		c.SpaceAmp = T
	case LayoutLazyLeveling:
		c.SpaceAmp = 1 + 1/T + (T-1)/math.Pow(T, 2)
	default:
		c.SpaceAmp = 1 + 1/T
	}
	return c
}

// Workload is an operation mix (fractions should sum to ~1).
type Workload struct {
	Inserts    float64
	PointZero  float64 // zero-result lookups
	PointExist float64 // existing-key lookups
	ShortScans float64
	LongScans  float64 // weight per unit selectivity
}

// Normalize scales the mix to sum to 1 (no-op for a zero workload).
func (w Workload) Normalize() Workload {
	s := w.Inserts + w.PointZero + w.PointExist + w.ShortScans + w.LongScans
	if s <= 0 {
		return w
	}
	w.Inserts /= s
	w.PointZero /= s
	w.PointExist /= s
	w.ShortScans /= s
	w.LongScans /= s
	return w
}

// Cost returns the expected I/O per operation of the workload under
// the configuration.
func Cost(cfg Config, sys SystemParams, w Workload) float64 {
	c := Evaluate(cfg, sys)
	return w.Inserts*c.Write +
		w.PointZero*c.PointZero +
		w.PointExist*c.PointExist +
		w.ShortScans*c.ShortScan +
		w.LongScans*c.LongScanPer
}
