package tuning

import (
	"math"
	"sort"
)

// SearchSpace bounds the navigator's enumeration.
type SearchSpace struct {
	SizeRatios      []int        // candidate T values
	Layouts         []DataLayout // candidate layouts
	BufferFractions []float64    // candidate memory splits
}

// DefaultSearchSpace covers the tutorial's knobs at practical
// granularity.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		SizeRatios:      []int{2, 3, 4, 6, 8, 10, 12, 16},
		Layouts:         []DataLayout{LayoutLeveling, LayoutTiering, LayoutLazyLeveling},
		BufferFractions: []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9},
	}
}

// Recommendation is a navigator result.
type Recommendation struct {
	Config Config
	Cost   float64
}

// Navigate enumerates the design space and returns the configuration
// minimizing the workload's expected cost (tutorial §2.3.1: navigating
// the read-write tradeoff). memoryBytes is the total buffer+filter
// budget.
func Navigate(sys SystemParams, memoryBytes int64, w Workload, space SearchSpace) Recommendation {
	w = w.Normalize()
	best := Recommendation{Cost: math.Inf(1)}
	for _, T := range space.SizeRatios {
		for _, layout := range space.Layouts {
			for _, bf := range space.BufferFractions {
				cfg := Config{
					SizeRatio:      T,
					Layout:         layout,
					MemoryBytes:    memoryBytes,
					BufferFraction: bf,
				}
				if cost := Cost(cfg, sys, w); cost < best.Cost {
					best = Recommendation{Config: cfg, Cost: cost}
				}
			}
		}
	}
	return best
}

// TradeoffPoint is one point on the read-write tradeoff curve.
type TradeoffPoint struct {
	Config    Config
	WriteCost float64
	ReadCost  float64
}

// TradeoffCurve sweeps the size ratio for a layout and returns the
// (write cost, point read cost) frontier — the curve the tutorial's
// Module III plots (RUM tradeoff).
func TradeoffCurve(sys SystemParams, memoryBytes int64, layout DataLayout, sizeRatios []int) []TradeoffPoint {
	var pts []TradeoffPoint
	for _, T := range sizeRatios {
		cfg := Config{SizeRatio: T, Layout: layout, MemoryBytes: memoryBytes, BufferFraction: 0.2}
		c := Evaluate(cfg, sys)
		pts = append(pts, TradeoffPoint{Config: cfg, WriteCost: c.Write, ReadCost: c.PointExist})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].WriteCost < pts[j].WriteCost })
	return pts
}

// Neighborhood generates workload mixes within an L1 distance rho of w
// on the mixture simplex — the uncertainty region of Endure (tutorial
// §2.3.2, [55]). It perturbs each pair of components by ±rho/2.
func Neighborhood(w Workload, rho float64) []Workload {
	w = w.Normalize()
	dims := []func(*Workload) *float64{
		func(x *Workload) *float64 { return &x.Inserts },
		func(x *Workload) *float64 { return &x.PointZero },
		func(x *Workload) *float64 { return &x.PointExist },
		func(x *Workload) *float64 { return &x.ShortScans },
		func(x *Workload) *float64 { return &x.LongScans },
	}
	out := []Workload{w}
	for i := range dims {
		for j := range dims {
			if i == j {
				continue
			}
			v := w
			from, to := dims[i](&v), dims[j](&v)
			d := rho / 2
			if *from < d {
				d = *from
			}
			*from -= d
			*to += d
			out = append(out, v)
		}
	}
	return out
}

// NavigateRobust returns the min-max configuration: the one whose
// *worst* cost over the workload neighborhood is lowest. Nominal
// tuning wins at the expected workload; robust tuning loses little
// there and much less under shift — the claim experiment E10 measures.
func NavigateRobust(sys SystemParams, memoryBytes int64, w Workload, rho float64, space SearchSpace) Recommendation {
	neighborhood := Neighborhood(w, rho)
	best := Recommendation{Cost: math.Inf(1)}
	for _, T := range space.SizeRatios {
		for _, layout := range space.Layouts {
			for _, bf := range space.BufferFractions {
				cfg := Config{
					SizeRatio:      T,
					Layout:         layout,
					MemoryBytes:    memoryBytes,
					BufferFraction: bf,
				}
				worst := 0.0
				for _, wk := range neighborhood {
					if c := Cost(cfg, sys, wk); c > worst {
						worst = c
					}
				}
				if worst < best.Cost {
					best = Recommendation{Config: cfg, Cost: worst}
				}
			}
		}
	}
	return best
}
