package tuning

import "testing"

func cw(inserts, reads, skew float64) CacheWorkload {
	return CacheWorkload{
		Workload:  Workload{Inserts: inserts, PointExist: reads},
		DataBytes: 10 << 30,
		Skew:      skew,
	}
}

func TestCacheHitRateShape(t *testing.T) {
	w := cw(0.2, 0.8, 0.8)
	if CacheHitRate(w, 0) != 0 {
		t.Error("no cache, no hits")
	}
	if CacheHitRate(w, w.DataBytes) != 1 {
		t.Error("cache >= data caches everything")
	}
	// Monotone in cache size.
	prev := -1.0
	for _, frac := range []int64{100, 50, 20, 10, 5, 2} {
		h := CacheHitRate(w, w.DataBytes/frac)
		if h < prev {
			t.Fatalf("hit rate not monotone at 1/%d", frac)
		}
		prev = h
	}
	// More skew, more hits at equal (small) cache.
	small := w.DataBytes / 20
	flat, hot := cw(0.2, 0.8, 0.2), cw(0.2, 0.8, 0.95)
	if CacheHitRate(hot, small) <= CacheHitRate(flat, small) {
		t.Error("skew must raise small-cache hit rate")
	}
}

func TestNavigateMemoryShiftsWithWorkload(t *testing.T) {
	sys := SystemParams{NumEntries: 100_000_000, EntryBytes: 128, PageBytes: 4096}
	mem := int64(1 << 30)

	writeHeavy := NavigateMemory(sys, cw(0.9, 0.1, 0.8), mem, 10, LayoutLeveling)
	readHeavy := NavigateMemory(sys, cw(0.05, 0.95, 0.8), mem, 10, LayoutLeveling)

	// Write-heavy wants buffer; read-heavy wants cache+filters.
	if writeHeavy.BufferBytes <= readHeavy.BufferBytes {
		t.Errorf("write-heavy buffer %d should exceed read-heavy %d",
			writeHeavy.BufferBytes, readHeavy.BufferBytes)
	}
	if readHeavy.CacheBytes+readHeavy.FilterBytes <= writeHeavy.CacheBytes+writeHeavy.FilterBytes {
		t.Errorf("read-heavy read-memory %d should exceed write-heavy %d",
			readHeavy.CacheBytes+readHeavy.FilterBytes,
			writeHeavy.CacheBytes+writeHeavy.FilterBytes)
	}
	// Budgets respected.
	for _, s := range []MemorySplit{writeHeavy, readHeavy} {
		total := s.BufferBytes + s.FilterBytes + s.CacheBytes
		if total > mem || total < mem*8/10 {
			t.Errorf("split does not use the budget sensibly: %d of %d", total, mem)
		}
		if s.Cost <= 0 {
			t.Errorf("cost %v", s.Cost)
		}
	}
}

func TestNavigateMemorySkewFavorsCache(t *testing.T) {
	sys := SystemParams{NumEntries: 100_000_000, EntryBytes: 128, PageBytes: 4096}
	mem := int64(1 << 30)
	flat := NavigateMemory(sys, cw(0.3, 0.7, 0.2), mem, 10, LayoutLeveling)
	hot := NavigateMemory(sys, cw(0.3, 0.7, 0.95), mem, 10, LayoutLeveling)
	// Under heavy skew a modest cache captures most reads, so the
	// optimum shifts memory toward the cache (or at least not away).
	if hot.CacheBytes < flat.CacheBytes {
		t.Errorf("skewed reads should not shrink the cache share: %d vs %d",
			hot.CacheBytes, flat.CacheBytes)
	}
}
