package tuning

import (
	"math"
	"testing"
)

func sys() SystemParams {
	return SystemParams{NumEntries: 100_000_000, EntryBytes: 128, PageBytes: 4096}
}

func TestLevelsGrowWithData(t *testing.T) {
	cfg := Config{SizeRatio: 10, Layout: LayoutLeveling, MemoryBytes: 64 << 20, BufferFraction: 0.5}
	small := SystemParams{NumEntries: 1000, EntryBytes: 128, PageBytes: 4096}
	big := sys()
	if Levels(cfg, small) >= Levels(cfg, big) {
		t.Error("more data must mean more levels")
	}
	if Levels(cfg, small) < 1 {
		t.Error("at least one level")
	}
}

func TestLevelsShrinkWithSizeRatio(t *testing.T) {
	base := Config{Layout: LayoutLeveling, MemoryBytes: 64 << 20, BufferFraction: 0.5}
	t2, t10 := base, base
	t2.SizeRatio = 2
	t10.SizeRatio = 10
	if Levels(t2, sys()) <= Levels(t10, sys()) {
		t.Error("larger size ratio must mean fewer levels")
	}
}

func TestRUMTradeoffAcrossLayouts(t *testing.T) {
	s := sys()
	mk := func(l DataLayout) Costs {
		return Evaluate(Config{SizeRatio: 10, Layout: l, MemoryBytes: 256 << 20, BufferFraction: 0.2}, s)
	}
	lev, tier, lazy := mk(LayoutLeveling), mk(LayoutTiering), mk(LayoutLazyLeveling)

	// Tiering writes cheaper, reads and space costlier (§2.2.2).
	if tier.Write >= lev.Write {
		t.Errorf("tiering write %.4f should beat leveling %.4f", tier.Write, lev.Write)
	}
	if tier.PointZero <= lev.PointZero {
		t.Errorf("tiering point cost %.4f should exceed leveling %.4f", tier.PointZero, lev.PointZero)
	}
	if tier.ShortScan <= lev.ShortScan {
		t.Error("tiering short scans must probe more runs")
	}
	if tier.SpaceAmp <= lev.SpaceAmp {
		t.Error("tiering space amp must exceed leveling")
	}
	// Lazy leveling sits between on writes, close to leveling on space.
	if !(lazy.Write < lev.Write && lazy.Write > tier.Write*0.99) {
		t.Errorf("lazy write %.4f should sit between tiering %.4f and leveling %.4f",
			lazy.Write, tier.Write, lev.Write)
	}
	if lazy.SpaceAmp >= tier.SpaceAmp {
		t.Error("lazy space amp must beat tiering")
	}
}

func TestSizeRatioSweepTracesTradeoff(t *testing.T) {
	pts := TradeoffCurve(sys(), 256<<20, LayoutLeveling, []int{2, 4, 8, 16})
	if len(pts) != 4 {
		t.Fatal("points")
	}
	// With leveling, growing T raises write cost and lowers read cost:
	// the frontier is monotone.
	for i := 1; i < len(pts); i++ {
		if pts[i].ReadCost > pts[i-1].ReadCost+1e-9 {
			t.Errorf("read cost must fall along the curve: %+v", pts)
		}
	}
}

func TestMoreFilterMemoryCutsPointCost(t *testing.T) {
	s := sys()
	poor := Evaluate(Config{SizeRatio: 10, Layout: LayoutLeveling, MemoryBytes: 16 << 20, BufferFraction: 0.9}, s)
	rich := Evaluate(Config{SizeRatio: 10, Layout: LayoutLeveling, MemoryBytes: 512 << 20, BufferFraction: 0.2}, s)
	if rich.PointZero >= poor.PointZero {
		t.Errorf("more filter memory must cut zero-result cost: %.4f vs %.4f",
			rich.PointZero, poor.PointZero)
	}
}

func TestNavigatePrefersTieringForWriteHeavy(t *testing.T) {
	s := sys()
	writeHeavy := Workload{Inserts: 0.95, PointExist: 0.05}
	// Generous filter memory mutes tiering's *point* read penalty (the
	// Monkey insight), so a read mix that punishes tiering must include
	// short scans, which filters cannot help.
	readHeavy := Workload{Inserts: 0.05, PointExist: 0.45, PointZero: 0.2, ShortScans: 0.3}
	space := DefaultSearchSpace()
	wrec := Navigate(s, 256<<20, writeHeavy, space)
	rrec := Navigate(s, 256<<20, readHeavy, space)
	if wrec.Config.Layout == LayoutLeveling {
		t.Errorf("write-heavy should avoid pure leveling, got %v", wrec.Config.Layout)
	}
	if rrec.Config.Layout == LayoutTiering {
		t.Errorf("read-heavy should avoid pure tiering, got %v", rrec.Config.Layout)
	}
	// Each recommendation must beat the other's config on its own
	// workload.
	if Cost(wrec.Config, s, writeHeavy.Normalize()) > Cost(rrec.Config, s, writeHeavy.Normalize()) {
		t.Error("write recommendation not optimal for write workload")
	}
}

func TestNavigateCostMatchesEvaluate(t *testing.T) {
	s := sys()
	w := Workload{Inserts: 0.5, PointExist: 0.5}
	rec := Navigate(s, 128<<20, w, DefaultSearchSpace())
	if math.Abs(rec.Cost-Cost(rec.Config, s, w.Normalize())) > 1e-12 {
		t.Error("reported cost must equal recomputed cost")
	}
}

func TestNeighborhoodStaysOnSimplex(t *testing.T) {
	w := Workload{Inserts: 0.5, PointExist: 0.3, PointZero: 0.2}
	nb := Neighborhood(w, 0.2)
	if len(nb) < 2 {
		t.Fatal("neighborhood too small")
	}
	for _, v := range nb {
		sum := v.Inserts + v.PointZero + v.PointExist + v.ShortScans + v.LongScans
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("mix sums to %v", sum)
		}
		for _, f := range []float64{v.Inserts, v.PointZero, v.PointExist, v.ShortScans, v.LongScans} {
			if f < -1e-12 {
				t.Errorf("negative fraction %v", f)
			}
		}
	}
}

func TestRobustTuningWinsUnderShift(t *testing.T) {
	s := sys()
	expected := Workload{Inserts: 0.9, PointZero: 0.05, PointExist: 0.05}
	space := DefaultSearchSpace()
	nominal := Navigate(s, 256<<20, expected, space)
	robust := NavigateRobust(s, 256<<20, expected, 0.6, space)

	// At the expected workload, nominal is at least as good.
	en := Cost(nominal.Config, s, expected.Normalize())
	er := Cost(robust.Config, s, expected.Normalize())
	if en > er+1e-9 {
		t.Errorf("nominal must win at the expected point: %.4f vs %.4f", en, er)
	}
	// Under a strong shift to reads, robust must not lose badly; find
	// the worst neighborhood point for each.
	worst := func(cfg Config) float64 {
		w := 0.0
		for _, v := range Neighborhood(expected, 0.6) {
			if c := Cost(cfg, s, v); c > w {
				w = c
			}
		}
		return w
	}
	if worst(robust.Config) > worst(nominal.Config)+1e-9 {
		t.Errorf("robust config must minimize worst case: %.4f vs %.4f",
			worst(robust.Config), worst(nominal.Config))
	}
}

func TestWorkloadNormalize(t *testing.T) {
	w := Workload{Inserts: 2, PointExist: 2}.Normalize()
	if w.Inserts != 0.5 || w.PointExist != 0.5 {
		t.Errorf("normalize: %+v", w)
	}
	z := Workload{}.Normalize()
	if z.Inserts != 0 {
		t.Error("zero workload unchanged")
	}
}

func TestLayoutString(t *testing.T) {
	if LayoutLeveling.String() != "leveling" || LayoutTiering.String() != "tiering" ||
		LayoutLazyLeveling.String() != "lazy-leveling" {
		t.Error("names")
	}
	if DataLayout(9).String() == "" {
		t.Error("unknown layout")
	}
}
