package experiments

import (
	"fmt"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E6FilePicking compares partial-compaction data-movement policies on a
// delete-heavy stream: min-overlap minimizes write amplification,
// while tombstone-density picking purges logically deleted data
// earliest (Lethe's policy), leaving the fewest tombstones behind
// (tutorial §2.2.3).
func E6FilePicking(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Partial-compaction file picking policies",
		Claim: "min-overlap picking reduces write amp; tombstone-density picking purges deletes earliest (§2.2.3)",
		Columns: []string{"policy", "write_amp", "compactions", "tombstones_dropped",
			"tombstones_left", "entries_dropped", "ingest_sim_ms"},
	}
	n := s.N(200_000)

	policies := []compaction.MovePolicy{
		compaction.PickMinOverlap,
		compaction.PickRoundRobin,
		compaction.PickOldest,
		compaction.PickMaxTombstoneDensity,
	}
	for _, policy := range policies {
		e := newEnv(func(o *core.Options) {
			o.MovePolicy = policy
			o.Granularity = compaction.GranularityPartial
			// Small files and tight level capacities make partial
			// (file-at-a-time) compactions the dominant operation, which
			// is where the picking policy acts.
			o.TargetFileSize = 32 << 10
			o.BaseLevelBytes = 128 << 10
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		// Zipfian skew concentrates updates/deletes on hot keys, making
		// file overlap and tombstone density vary across the key space —
		// the regime where the picking policy matters.
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(n / 2), ValueLen: 64,
			Distribution: workload.Zipfian,
			Mix:          workload.Mix{Puts: 0.9, Deletes: 0.1},
		})
		for i := 0; i < n; i++ {
			op := gen.Next()
			var err error
			if op.Kind == workload.OpDelete {
				err = db.Delete(op.Key)
			} else {
				err = db.Put(op.Key, op.Value)
			}
			if err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()

		m := db.Metrics()
		// Count surviving tombstones across the tree.
		var left uint64
		v := db.Version()
		for _, l := range v.Levels {
			for _, r := range l.Runs {
				for _, f := range r.Files {
					left += f.NumTombstones
				}
			}
		}
		t.AddRow(
			policy.String(),
			f2(m.WriteAmplification()),
			fmt.Sprint(m.Compactions),
			fmt.Sprint(m.TombstonesDropped),
			fmt.Sprint(left),
			fmt.Sprint(m.EntriesDropped),
			simMillis(e.fs.Stats().SimulatedNs),
		)
		db.Close()
	}
	return t, nil
}
