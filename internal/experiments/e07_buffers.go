package experiments

import (
	"fmt"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E7BufferTuning drives bursty ingestion through different buffer sizes
// and immutable-buffer counts: larger and more numerous buffers absorb
// bursts, reducing write stalls and total ingest time (tutorial
// §2.2.1).
func E7BufferTuning(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Write buffer sizing under bursty ingestion",
		Claim: "larger/multiple write buffers absorb ingestion bursts and reduce stalls (§2.2.1)",
		Columns: []string{"buffer_KiB", "max_immutables", "stalls", "stall_ms",
			"flushes", "ingest_sim_ms"},
	}
	n := s.N(150_000)

	type cfg struct {
		bufKiB int
		imm    int
	}
	cfgs := []cfg{{16, 1}, {16, 4}, {64, 1}, {64, 4}, {256, 1}, {256, 4}}
	for _, c := range cfgs {
		e := newEnv(func(o *core.Options) {
			o.BufferBytes = c.bufKiB << 10
			o.MaxImmutableBuffers = c.imm
			o.Workers = 1
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 128,
		})
		burst := workload.Burst{Quiet: 64, BurstLen: 512}
		written := 0
		for written < n {
			batch := burst.NextBatch()
			for j := 0; j < batch && written < n; j++ {
				op := gen.Next()
				if err := db.Put(op.Key, op.Value); err != nil {
					return nil, err
				}
				written++
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()
		m := db.Metrics()
		t.AddRow(
			fmt.Sprint(c.bufKiB),
			fmt.Sprint(c.imm),
			fmt.Sprint(m.WriteStalls),
			fmt.Sprintf("%.1f", float64(m.StallNs)/1e6),
			fmt.Sprint(m.Flushes),
			simMillis(e.fs.Stats().SimulatedNs),
		)
		db.Close()
	}
	return t, nil
}
