package experiments

import (
	"lsmlab/internal/tuning"
)

// E10RobustTuning contrasts nominal tuning (optimal at the expected
// workload) with Endure-style robust tuning (optimal for the worst
// case near it): nominal wins narrowly at the expected mix, robust
// wins clearly once the observed workload shifts (tutorial §2.3.2,
// [55]). The costs are model-evaluated — exactly how Endure frames the
// problem — over a write-heavy expectation shifting to read-heavy.
func E10RobustTuning(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Nominal vs. robust (min-max) tuning under workload shift",
		Claim: "robust tuning sacrifices little at the expected workload and wins under shift (§2.3.2)",
		Columns: []string{"tuning", "T", "layout", "buffer_frac",
			"cost_at_expected", "cost_at_shifted", "worst_case_cost"},
	}
	sys := tuning.SystemParams{NumEntries: 50_000_000, EntryBytes: 128, PageBytes: 4096}
	mem := int64(256 << 20)
	space := tuning.DefaultSearchSpace()

	// An extreme write-heavy expectation: nominal tuning goes all-in on
	// tiering; the uncertainty neighborhood includes scan-heavy shifts
	// where tiering collapses, which robust tuning hedges against.
	expected := tuning.Workload{Inserts: 0.97, PointZero: 0.03}
	shifted := tuning.Workload{Inserts: 0.47, PointZero: 0.03, ShortScans: 0.5}
	rho := 1.0

	nominal := tuning.Navigate(sys, mem, expected, space)
	robust := tuning.NavigateRobust(sys, mem, expected, rho, space)

	worst := func(cfg tuning.Config) float64 {
		w := 0.0
		for _, v := range tuning.Neighborhood(expected, rho) {
			if c := tuning.Cost(cfg, sys, v); c > w {
				w = c
			}
		}
		return w
	}
	for _, row := range []struct {
		name string
		rec  tuning.Recommendation
	}{
		{"nominal", nominal},
		{"robust", robust},
	} {
		cfg := row.rec.Config
		t.AddRow(
			row.name,
			f2(float64(cfg.SizeRatio)),
			cfg.Layout.String(),
			f2(cfg.BufferFraction),
			f2(tuning.Cost(cfg, sys, expected.Normalize())),
			f2(tuning.Cost(cfg, sys, shifted.Normalize())),
			f2(worst(cfg)),
		)
	}
	return t, nil
}
