package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// smallScale keeps the smoke tests fast; shapes are asserted at full
// scale by the bench harness and EXPERIMENTS.md.
const smallScale = Scale(0.05)

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(smallScale)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(r), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			if !strings.Contains(buf.String(), e.ID) || !strings.Contains(buf.String(), "claim:") {
				t.Error("rendered table missing header")
			}
		})
	}
}

func TestRunByID(t *testing.T) {
	tbl, err := Run("e10", smallScale) // case-insensitive
	if err != nil || tbl.ID != "E10" {
		t.Fatalf("%v %v", tbl, err)
	}
	if _, err := Run("E99", smallScale); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestScaleFloors(t *testing.T) {
	if Scale(0.0001).N(1000) != 100 {
		t.Error("scale floor")
	}
	if Scale(2).N(1000) != 2000 {
		t.Error("scale up")
	}
}

// cell parses a table cell as a float.
func cell(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			v, err := strconv.ParseFloat(tbl.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("cell %s[%d] = %q: %v", col, row, tbl.Rows[row][i], err)
			}
			return v
		}
	}
	t.Fatalf("no column %q", col)
	return 0
}

// findRow locates the row whose first cell equals name.
func findRow(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, r := range tbl.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("no row %q in %s", name, tbl.ID)
	return -1
}

// TestE1Shape verifies the headline tradeoff at a moderate scale:
// tiering writes less and reads worse than leveling.
func TestE1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := E1CompactionPolicies(0.25)
	if err != nil {
		t.Fatal(err)
	}
	lev, tier := findRow(t, tbl, "leveling"), findRow(t, tbl, "tiering(4)")
	if wa := cell(t, tbl, tier, "write_amp"); wa >= cell(t, tbl, lev, "write_amp") {
		t.Errorf("tiering write amp %.2f should beat leveling %.2f",
			wa, cell(t, tbl, lev, "write_amp"))
	}
	// Short scans must probe more runs under tiering; compare simulated
	// scan cost, which is robust to background-scheduling interleavings
	// (final run counts are not deterministic).
	if sc := cell(t, tbl, tier, "scan_sim_us"); sc <= cell(t, tbl, lev, "scan_sim_us") {
		t.Errorf("tiering scan cost %.1f should exceed leveling %.1f",
			sc, cell(t, tbl, lev, "scan_sim_us"))
	}
}

// TestE3Shape: filters cut zero-result I/O; Monkey beats (or matches)
// the uniform allocation with the closest achieved filter memory.
func TestE3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := E3PointFilters(0.25)
	if err != nil {
		t.Fatal(err)
	}
	none := findRow(t, tbl, "none")
	u5 := findRow(t, tbl, "uniform-5")
	monkey := findRow(t, tbl, "monkey")
	if cell(t, tbl, u5, "zero_pages_per_lookup") >= cell(t, tbl, none, "zero_pages_per_lookup") {
		t.Error("filters must cut zero-result I/O")
	}
	// Fair comparison: the uniform row with achieved memory closest to
	// monkey's.
	mMem := cell(t, tbl, monkey, "filter_mem_KiB")
	best, bestDiff := -1, 0.0
	for _, name := range []string{"uniform-2", "uniform-5", "uniform-10"} {
		r := findRow(t, tbl, name)
		d := cell(t, tbl, r, "filter_mem_KiB") - mMem
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDiff {
			best, bestDiff = r, d
		}
	}
	mp, up := cell(t, tbl, monkey, "zero_pages_per_lookup"), cell(t, tbl, best, "zero_pages_per_lookup")
	if mp > up*1.05+0.02 {
		t.Errorf("monkey (%.3f pages @%0.fKiB) should not lose to uniform (%.3f pages @%.0fKiB)",
			mp, mMem, up, cell(t, tbl, best, "filter_mem_KiB"))
	}
}

// TestE5Shape: separation cuts write amp for large values.
func TestE5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := E5KVSeparation(0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Find the 4096-byte rows.
	var base, wisc int
	found := 0
	for i, r := range tbl.Rows {
		if r[0] == "4096" {
			if r[1] == "baseline" {
				base = i
			} else {
				wisc = i
			}
			found++
		}
	}
	if found != 2 {
		t.Fatal("missing 4096 rows")
	}
	bwa, wwa := cell(t, tbl, base, "write_amp"), cell(t, tbl, wisc, "write_amp")
	if wwa >= bwa {
		t.Errorf("wisckey write amp %.2f must beat baseline %.2f at 4 KiB values", wwa, bwa)
	}
}

// TestO1Shape: weakening the filters moves traced gets off the
// filter-skip path and onto the disk path. Shares are compared rather
// than percentiles — wall-clock tails are noisy under CI, the path
// mix is what the filter budget determines.
func TestO1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := O1TraceAttribution(0.25)
	if err != nil {
		t.Fatal(err)
	}
	skip2 := cell(t, tbl, findRow(t, tbl, "2bpk/filter-skip"), "share")
	skip10 := cell(t, tbl, findRow(t, tbl, "10bpk/filter-skip"), "share")
	if skip10 <= skip2 {
		t.Errorf("strong filters must skip more: 10bpk share %.2f vs 2bpk %.2f", skip10, skip2)
	}
	disk2 := cell(t, tbl, findRow(t, tbl, "2bpk/disk"), "share")
	disk10 := cell(t, tbl, findRow(t, tbl, "10bpk/disk"), "share")
	if disk2 <= disk10 {
		t.Errorf("weak filters must leak to disk: 2bpk share %.2f vs 10bpk %.2f", disk2, disk10)
	}
}

// TestE11Shape: a tighter persistence threshold leaves fewer, younger
// tombstones.
func TestE11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := E11DeletePersistence(0.25)
	if err != nil {
		t.Fatal(err)
	}
	off := findRow(t, tbl, "off")
	tight := findRow(t, tbl, "2000")
	if cell(t, tbl, tight, "oldest_tombstone_age_ops") > cell(t, tbl, off, "oldest_tombstone_age_ops") {
		t.Error("threshold must bound tombstone age")
	}
	if cell(t, tbl, tight, "age_triggered") == 0 {
		t.Error("tight threshold must trigger age compactions")
	}
}

// TestO2Shape: the profiler must see the workload change — skew and
// hot-key share jump in the zipfian phase, scan shape appears in the
// scan-heavy phase — and the per-level byte attribution must track
// filesystem ground truth. The exact-attribution checks (writes, scan
// reads) get a tight bound; the sampled get-read check gets the 10%
// the design budgets for sampling error.
func TestO2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape test")
	}
	tbl, err := O2WorkloadProfile(0.25)
	if err != nil {
		t.Fatal(err)
	}
	uni, zipf, scan := findRow(t, tbl, "uniform-rw"), findRow(t, tbl, "zipf-read"), findRow(t, tbl, "scan-heavy")
	if zs, us := cell(t, tbl, zipf, "zipf_s"), cell(t, tbl, uni, "zipf_s"); zs < us+0.3 {
		t.Errorf("zipfian phase must raise the fitted skew: %.2f vs uniform %.2f", zs, us)
	}
	if zt, ut := cell(t, tbl, zipf, "top_share"), cell(t, tbl, uni, "top_share"); zt < ut {
		t.Errorf("zipfian phase must raise the hot-key share: %.2f vs uniform %.2f", zt, ut)
	}
	if ms := cell(t, tbl, scan, "mean_scan"); ms < 4 {
		t.Errorf("scan-heavy phase must show scan shape: mean_scan %.2f", ms)
	}
	if ms := cell(t, tbl, uni, "mean_scan"); ms != 0 {
		t.Errorf("uniform phase has no scans, mean_scan %.2f", ms)
	}
	for _, check := range []struct {
		row   string
		bound float64
	}{
		{"io-writes", 5}, {"io-scan-reads", 5}, {"io-get-reads", 10},
	} {
		raw := tbl.Rows[findRow(t, tbl, check.row)][len(tbl.Columns)-1]
		var profMiB, fsMiB, delta float64
		if _, err := fmt.Sscanf(raw, "prof=%fMiB fs=%fMiB Δ=%f%%", &profMiB, &fsMiB, &delta); err != nil {
			t.Fatalf("io_check cell %q: %v", raw, err)
		}
		if delta < -check.bound || delta > check.bound {
			t.Errorf("%s attribution off by %.1f%%, bound %.0f%% (%s)", check.row, delta, check.bound, raw)
		}
	}
}
