package experiments

import (
	"errors"
	"fmt"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/tuning"
	"lsmlab/internal/workload"
)

// E9SizeRatio sweeps the size ratio T and measures the read-write
// tradeoff it traces: larger T means fewer levels (cheaper reads, for
// leveling costlier writes per level but fewer levels — the measured
// curve bends exactly as the RUM analysis predicts). The model columns
// print the analytic prediction beside the measurement (tutorial §2.3,
// [13,14]).
func E9SizeRatio(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Size-ratio sweep: the read-write tradeoff curve",
		Claim: "sweeping T traces the RUM read-write tradeoff; measured shape follows the analytic model (§2.3)",
		Columns: []string{"T", "levels", "write_amp", "model_write", "lookup_runs_probed",
			"model_point", "ingest_sim_ms", "lookup_sim_us"},
	}
	n := s.N(150_000)
	nLookups := s.N(5_000)

	sys := tuning.SystemParams{NumEntries: int64(n), EntryBytes: 80, PageBytes: 4096}
	for _, T := range []int{2, 4, 6, 8, 10} {
		e := newEnv(func(o *core.Options) {
			o.SizeRatio = T
			o.BaseLevelBytes = 256 << 10
			// Pure leveling matches the analytic model being compared.
			o.Layout = compaction.Leveling{}
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(n * 3 / 4), Mix: workload.MixLoad, ValueLen: 64,
		})
		for i := 0; i < n; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()
		ingest := e.fs.Stats()
		m := db.Metrics()

		pre := e.fs.Stats()
		preM := db.Metrics()
		rgen := workload.New(workload.Config{Seed: 2, KeySpace: int64(n * 3 / 4), Mix: workload.MixC})
		for i := 0; i < nLookups; i++ {
			if _, err := db.Get(rgen.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		}
		lookIO := e.fs.Stats().Sub(pre)
		lookM := db.Metrics().Sub(preM)

		cfg := tuning.Config{
			SizeRatio:      T,
			Layout:         tuning.LayoutLeveling,
			MemoryBytes:    int64(db.FilterMemoryBytes()) + 64<<10,
			BufferFraction: float64(64<<10) / float64(int64(db.FilterMemoryBytes())+64<<10),
		}
		model := tuning.Evaluate(cfg, sys)

		levels := 0
		for _, l := range db.TreeStats().Levels {
			if l.Files > 0 {
				levels++
			}
		}
		t.AddRow(
			fmt.Sprint(T),
			fmt.Sprint(levels),
			f2(m.WriteAmplification()),
			f2(model.Write*sys.EntriesPerPage()), // model write rescaled to per-entry page writes
			f2(float64(lookM.RunsProbed)/float64(nLookups)),
			f2(model.PointExist),
			simMillis(ingest.SimulatedNs),
			f2(float64(lookIO.SimulatedNs)/1e3/float64(nLookups)),
		)
		db.Close()
	}
	return t, nil
}
