package experiments

import (
	"errors"
	"fmt"

	"lsmlab/internal/compaction"
	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E1CompactionPolicies compares the classic data layouts on an
// insert/update stream followed by point lookups and short scans:
// tiering ingests with the least write amplification, leveling reads
// cheapest with the least space, lazy leveling and the tiered-first
// hybrid sit between (tutorial §2.1.2, §2.2.2).
func E1CompactionPolicies(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Leveling vs. tiering vs. hybrids",
		Claim: "tiering trades read cost and space amp for lower write amp; leveling the reverse; lazy leveling/hybrids sit between (§2.1.2, §2.2.2)",
		Columns: []string{"layout", "ingest_sim_ms", "write_amp", "runs", "lookup_runs_probed",
			"lookup_sim_us", "scan_sim_us", "space_amp"},
	}
	layouts := []struct {
		name   string
		layout compaction.Layout
	}{
		{"leveling", compaction.Leveling{}},
		{"tiering(4)", compaction.Tiering{K: 4}},
		{"lazy-leveling(4)", compaction.LazyLeveling{K: 4}},
		{"tiered-first(4)", compaction.TieredFirst{K0: 4}},
	}
	nWrites := s.N(200_000)
	nLookups := s.N(5_000)
	nScans := s.N(500)

	for _, lc := range layouts {
		e := newEnv(func(o *core.Options) { o.Layout = lc.layout })
		db, err := e.open()
		if err != nil {
			return nil, err
		}

		// Ingest: 75% unique inserts, 25% updates of earlier keys. Track
		// the exact live data size for the space-amp denominator.
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(nWrites * 3 / 4), Mix: workload.MixLoad, ValueLen: 64,
		})
		liveLen := make(map[string]int)
		for i := 0; i < nWrites; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
			liveLen[string(op.Key)] = len(op.Key) + len(op.Value)
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()
		ingest := e.fs.Stats()
		m := db.Metrics()

		// Point lookups over existing keys.
		preLookup := e.fs.Stats()
		rgen := workload.New(workload.Config{
			Seed: 2, KeySpace: int64(nWrites * 3 / 4), Mix: workload.MixC,
		})
		for i := 0; i < nLookups; i++ {
			if _, err := db.Get(rgen.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		}
		lookupStats := e.fs.Stats().Sub(preLookup)
		mLook := db.Metrics()

		// Short scans.
		preScan := e.fs.Stats()
		sgen := workload.New(workload.Config{
			Seed: 3, KeySpace: int64(nWrites * 3 / 4),
			Mix: workload.Mix{ScanShort: 1}, ShortScanLen: 16,
		})
		for i := 0; i < nScans; i++ {
			op := sgen.Next()
			if _, err := db.Scan(op.Key, op.EndKey, op.Limit); err != nil {
				return nil, err
			}
		}
		scanStats := e.fs.Stats().Sub(preScan)

		// Space amplification against ground truth: disk bytes over the
		// exact bytes of live (latest-version) user data.
		var liveBytes float64
		for _, l := range liveLen {
			liveBytes += float64(l)
		}
		spaceAmp := float64(db.DiskUsageBytes()) / liveBytes

		t.AddRow(
			lc.name,
			simMillis(ingest.SimulatedNs),
			f2(m.WriteAmplification()),
			fmt.Sprint(db.TreeStats().TotalRuns),
			f2(float64(mLook.RunsProbed-m.RunsProbed)/float64(nLookups)),
			f2(float64(lookupStats.SimulatedNs)/1e3/float64(nLookups)),
			f2(float64(scanStats.SimulatedNs)/1e3/float64(nScans)),
			f2(spaceAmp),
		)
		db.Close()
	}
	return t, nil
}
