// Package experiments regenerates the quantitative claims of the
// tutorial, one experiment per claim (see DESIGN.md §3 for the index).
// Each experiment returns a Table whose rows are the series the claim
// is about; cmd/lsmbench prints them and EXPERIMENTS.md records the
// measured shapes against the claims.
//
// All experiments run on an in-memory accounting filesystem with a
// simulated SSD latency model, so results are deterministic and
// laptop-scale while preserving the read/write cost asymmetry the
// claims depend on.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"

	"lsmlab/internal/core"
	"lsmlab/internal/metrics"
	"lsmlab/internal/vfs"
)

// Table is one experiment's result.
type Table struct {
	ID      string // e.g. "E1"
	Title   string
	Claim   string // the tutorial claim under test, with its section
	Columns []string
	Rows    [][]string
	// Tail holds the get/put tail-latency summary merged across every
	// engine the experiment opened (captured by Run; may be empty for
	// experiments that bypass the engine).
	Tail []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	if len(t.Tail) > 0 {
		fmt.Fprintln(w, "tail latency (wall clock, all configurations merged):")
		for _, line := range t.Tail {
			fmt.Fprintln(w, "  "+line)
		}
	}
	fmt.Fprintln(w)
}

// Scale shrinks or grows every experiment's workload: 1 is the full
// (documented) size, fractions run faster for tests and smoke runs.
type Scale float64

// N scales a base count, keeping at least a workable minimum.
func (s Scale) N(base int) int {
	n := int(float64(base) * float64(s))
	if n < 100 {
		n = 100
	}
	return n
}

// env is a fresh engine over a counting in-memory FS with SSD-shaped
// simulated latency.
type env struct {
	fs   *vfs.CountingFS
	opts core.Options
}

// newEnv builds the default experiment environment; mutate adjusts the
// engine options for the configuration under test.
func newEnv(mutate func(*core.Options)) env {
	fs := vfs.NewCountingWithLatency(vfs.NewMem(), vfs.SSDLatency())
	opts := core.DefaultOptions(fs, "db")
	opts.BufferBytes = 64 << 10
	opts.TargetFileSize = 128 << 10
	opts.BaseLevelBytes = 256 << 10
	opts.NumLevels = 5
	opts.SizeRatio = 4
	opts.CacheBytes = 0 // experiments opt in to caching explicitly
	// Tail-latency footers need the op histograms, which are off by
	// default to keep untimed runs clean.
	opts.RecordLatencies = true
	if mutate != nil {
		mutate(&opts)
	}
	return env{fs: fs, opts: opts}
}

func (e env) open() (*core.DB, error) {
	db, err := core.Open(e.opts)
	if err == nil {
		latMu.Lock()
		latDBs = append(latDBs, db)
		latMu.Unlock()
	}
	return db, err
}

// Latency capture: every engine opened through env.open during one Run
// is remembered; after the experiment finishes its histograms (valid
// even after Close — they are plain atomics) merge into the table's
// tail-latency footer.
var (
	latMu  sync.Mutex
	latDBs []*core.DB
)

// capturedTail drains the capture list and renders the merged get/put
// tails, or nil when no engine recorded operations.
func capturedTail() []string {
	latMu.Lock()
	dbs := latDBs
	latDBs = nil
	latMu.Unlock()
	var lat metrics.LatencySnapshot
	for _, db := range dbs {
		lat = lat.Merge(db.Latencies())
	}
	if lat.Get.Count()+lat.Put.Count() == 0 {
		return nil
	}
	return []string{"get  " + lat.Get.String(), "put  " + lat.Put.String()}
}

// simMillis converts simulated nanoseconds to milliseconds for display.
func simMillis(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }

// f2 formats a float at two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Registry maps experiment ids to their runners, in presentation order.
type Runner func(Scale) (*Table, error)

// All lists every experiment in order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1CompactionPolicies},
		{"E2", E2Memtables},
		{"E3", E3PointFilters},
		{"E4", E4RangeFilters},
		{"E5", E5KVSeparation},
		{"E6", E6FilePicking},
		{"E7", E7BufferTuning},
		{"E8", E8Parallelism},
		{"E9", E9SizeRatio},
		{"E10", E10RobustTuning},
		{"E11", E11DeletePersistence},
		{"E12", E12CacheLeaper},
		{"E13", E13Partitioning},
		{"O1", O1TraceAttribution},
		{"O2", O2WorkloadProfile},
	}
}

// Run executes one experiment by id, attaching the tail-latency footer
// captured from every engine the experiment opened.
func Run(id string, s Scale) (*Table, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			latMu.Lock()
			latDBs = nil
			latMu.Unlock()
			tbl, err := e.Run(s)
			if err == nil && tbl != nil {
				tbl.Tail = capturedTail()
			}
			return tbl, err
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
