package experiments

import (
	"fmt"
	"sync"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E11DeletePersistence measures Lethe/FADE's central tradeoff: with a
// tombstone-age threshold, deletes become *persistent* (physically
// purged) within a bounded delay, at the cost of extra compaction work;
// without it, tombstones can linger indefinitely (tutorial §2.3.3,
// [112]). Time is virtual: one tick per operation, so thresholds are
// expressed in operations.
func E11DeletePersistence(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Lethe/FADE: timely persistent deletion",
		Claim: "a tombstone-age trigger bounds delete persistence latency for modest extra write amplification (§2.3.3)",
		Columns: []string{"threshold_ops", "tombstones_left", "oldest_tombstone_age_ops",
			"write_amp", "compactions", "age_triggered"},
	}
	n := s.N(100_000)
	tickNs := int64(time.Millisecond) // 1 op = 1 virtual ms

	for _, thresholdOps := range []int64{0, 50_000, 10_000, 2_000} {
		var mu sync.Mutex
		clock := int64(1e15)
		e := newEnv(func(o *core.Options) {
			o.TombstoneAgeThreshold = time.Duration(thresholdOps * tickNs)
			o.NowNs = func() int64 { mu.Lock(); defer mu.Unlock(); return clock }
			o.SleepFunc = func(d time.Duration) {
				mu.Lock()
				clock += int64(d)
				mu.Unlock()
			}
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(n / 2), ValueLen: 64,
			Mix: workload.Mix{Puts: 0.9, Deletes: 0.1},
		})
		for i := 0; i < n; i++ {
			mu.Lock()
			clock += tickNs
			mu.Unlock()
			op := gen.Next()
			var err error
			if op.Kind == workload.OpDelete {
				err = db.Delete(op.Key)
			} else {
				err = db.Put(op.Key, op.Value)
			}
			if err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()

		m := db.Metrics()
		var left uint64
		oldestAgeOps := int64(0)
		mu.Lock()
		now := clock
		mu.Unlock()
		v := db.Version()
		for _, l := range v.Levels {
			for _, r := range l.Runs {
				for _, f := range r.Files {
					left += f.NumTombstones
					if f.OldestTombstoneNs > 0 {
						if age := (now - f.OldestTombstoneNs) / tickNs; age > oldestAgeOps {
							oldestAgeOps = age
						}
					}
				}
			}
		}
		name := fmt.Sprint(thresholdOps)
		if thresholdOps == 0 {
			name = "off"
		}
		t.AddRow(
			name,
			fmt.Sprint(left),
			fmt.Sprint(oldestAgeOps),
			f2(m.WriteAmplification()),
			fmt.Sprint(m.Compactions),
			fmt.Sprint(m.AgeCompactions),
		)
		db.Close()
	}
	return t, nil
}
