package experiments

import (
	"fmt"
	"sync"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E8Parallelism scales the number of background workers executing
// flushes and compactions. Compaction writes are throttled to a
// realistic device bandwidth (real sleeps), so with a single worker the
// ingestion path stalls whenever that worker is stuck inside a slow
// compaction; with more workers a thread is always free to flush, so
// writers stall less and the ingest phase finishes sooner (tutorial
// §2.2.5; the flush/compaction interference is SILK's observation,
// §2.2.3). The post-ingest drain is reported separately — it is bounded
// by the global bandwidth, not by parallelism.
func E8Parallelism(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Background worker parallelism",
		Claim: "multi-threaded flushes and compactions raise ingestion throughput (§2.2.5)",
		Columns: []string{"workers", "ingest_wall_ms", "drain_wall_ms", "stalls", "stall_ms",
			"compactions"},
	}
	n := s.N(100_000)
	const writerThreads = 2

	for _, workers := range []int{1, 2, 4, 8} {
		e := newEnv(func(o *core.Options) {
			o.Workers = workers
			o.MaxImmutableBuffers = 2
			o.BufferBytes = 32 << 10
			// Throttle compaction writes (real sleeps) to roughly half
			// the ingest data volume per second, so compactions occupy
			// their worker for measurable spans at any experiment scale.
			o.CompactionBandwidthBytesPerSec = int64(n) * 40
			// Disable the L0 run-count stall: with throttled compactions
			// it couples writer progress to the *deepest* in-flight job
			// (the priority inversion SILK addresses), which is measured
			// by E7/E11-style stall metrics, not here. E8 isolates the
			// worker-parallelism effect: flushes unblock writers, and
			// disjoint-level compactions drain the backlog concurrently.
			o.StallL0Runs = 0
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		errCh := make(chan error, writerThreads)
		var wg sync.WaitGroup
		for w := 0; w < writerThreads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := workload.New(workload.Config{
					Seed: int64(w + 1), KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 64,
				})
				for i := 0; i < n/writerThreads; i++ {
					op := gen.Next()
					if err := db.Put(op.Key, op.Value); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		ingestWall := time.Since(start)
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()
		drainWall := time.Since(start) - ingestWall
		m := db.Metrics()
		t.AddRow(
			fmt.Sprint(workers),
			fmt.Sprintf("%.1f", float64(ingestWall.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64(drainWall.Nanoseconds())/1e6),
			fmt.Sprint(m.WriteStalls),
			fmt.Sprintf("%.1f", float64(m.StallNs)/1e6),
			fmt.Sprint(m.Compactions),
		)
		db.Close()
	}
	return t, nil
}
