package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"lsmlab/internal/filter"
)

// E4RangeFilters compares the range filters on a user-bucketed key
// space — the layout the filters were designed for. Keys are
// (user, timestamp) pairs packed into 8 bytes; users are partitioned
// across 8 runs. Two query classes:
//
//   - short: a 16-wide timestamp window of a user present in some run —
//     the window is usually empty (timestamps are sparse), and only a
//     filter with fine range resolution (Rosetta's dyadic hierarchy, or
//     SuRF's long stored prefixes) can prove it;
//   - long: one user's entire timestamp range — non-empty only in the
//     single run holding that user, which the 4-byte prefix Bloom filter
//     answers with one probe.
//
// (tutorial §2.1.3: prefix filters for long ranges, Rosetta for short,
// SuRF for both via variable-length prefixes).
func E4RangeFilters(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Range filters on short and long scans",
		Claim: "range filters cut scan I/O; Rosetta suits short ranges, prefix filters long ranges, SuRF both (§2.1.3)",
		Columns: []string{"filter", "mem_KiB", "short_runs_probed", "short_fp_rate",
			"long_runs_probed", "long_fp_rate"},
	}
	const nRuns = 8
	nUsers := s.N(512)
	tsPerUser := s.N(200)
	nQueries := s.N(2_000)

	key := func(user uint32, ts uint32) []byte {
		k := make([]byte, 8)
		binary.BigEndian.PutUint32(k, user)
		binary.BigEndian.PutUint32(k[4:], ts)
		return k
	}

	// Each user's timestamps are sparse: stride 1000 with jitter.
	rng := rand.New(rand.NewSource(4))
	runKeys := make([][][]byte, nRuns)
	userTS := make(map[uint32][]uint32)
	for u := 0; u < nUsers; u++ {
		r := u % nRuns
		for i := 0; i < tsPerUser; i++ {
			ts := uint32(i*1000 + rng.Intn(200))
			runKeys[r] = append(runKeys[r], key(uint32(u), ts))
			userTS[uint32(u)] = append(userTS[uint32(u)], ts)
		}
	}
	for r := range runKeys {
		sort.Slice(runKeys[r], func(i, j int) bool {
			return string(runKeys[r][i]) < string(runKeys[r][j])
		})
	}

	// Ground truth: does run r contain a key in [start, end)?
	contains := func(r int, start, end []byte) bool {
		keys := runKeys[r]
		i := sort.Search(len(keys), func(i int) bool { return string(keys[i]) >= string(start) })
		return i < len(keys) && string(keys[i]) < string(end)
	}

	type build struct {
		name string
		mk   func(keys [][]byte) filter.RangeFilter
	}
	builds := []build{
		{"none", nil},
		{"prefix-bloom(4B)", func(keys [][]byte) filter.RangeFilter {
			return filter.NewPrefixBloom(keys, 4, 14)
		}},
		{"surf(+3B)", func(keys [][]byte) filter.RangeFilter {
			return filter.NewSuRF(keys, 3)
		}},
		{"rosetta(14b)", func(keys [][]byte) filter.RangeFilter {
			return filter.NewRosetta(keys, 14)
		}},
	}

	// Query streams. Short: a 16-wide window at a random offset within a
	// random user's range (usually dead: density 200/1000). Long: a full
	// user range, half the time for an absent user id (odd high ids).
	type query struct{ start, end []byte }
	shortQ := make([]query, nQueries)
	longQ := make([]query, nQueries)
	qr := rand.New(rand.NewSource(5))
	for i := range shortQ {
		u := uint32(qr.Intn(nUsers))
		off := uint32(qr.Intn(tsPerUser * 1000))
		shortQ[i] = query{key(u, off), key(u, off+16)}
		lu := uint32(qr.Intn(nUsers * 2)) // half absent
		longQ[i] = query{key(lu, 0), key(lu+1, 0)}
	}

	run := func(b build, qs []query) (probed, fpRate float64, mem int) {
		var filters []filter.RangeFilter
		if b.mk != nil {
			for r := 0; r < nRuns; r++ {
				f := b.mk(runKeys[r])
				filters = append(filters, f)
				mem += f.SizeBytes()
			}
		}
		totalProbes, fps := 0, 0
		for _, q := range qs {
			for r := 0; r < nRuns; r++ {
				may := true
				if filters != nil {
					may = filters[r].MayContainRange(q.start, q.end)
				}
				if may {
					totalProbes++
					if !contains(r, q.start, q.end) {
						fps++
					}
				}
			}
		}
		return float64(totalProbes) / float64(len(qs)),
			float64(fps) / float64(len(qs)*nRuns), mem
	}

	for _, b := range builds {
		shortProbes, shortFP, mem := run(b, shortQ)
		longProbes, longFP, _ := run(b, longQ)
		t.AddRow(
			b.name,
			fmt.Sprintf("%.1f", float64(mem)/1024),
			f2(shortProbes), f2(shortFP),
			f2(longProbes), f2(longFP),
		)
	}
	return t, nil
}
