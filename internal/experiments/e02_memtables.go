package experiments

import (
	"fmt"
	"time"

	"lsmlab/internal/kv"
	"lsmlab/internal/memtable"
	"lsmlab/internal/workload"
)

// E2Memtables measures the four buffer implementations under a
// write-only stream and a 50/50 read-write mix: the vector buffer wins
// pure ingestion but collapses when reads interleave (every read after
// a write re-sorts); the skiplist is the balanced choice; hashed
// buffers give the fastest point reads (tutorial §2.2.1).
//
// This experiment is CPU-bound by design (no disk is involved), so it
// reports wall-clock nanoseconds per operation.
func E2Memtables(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Memtable implementations",
		Claim:   "vector is fastest write-only but degrades under interleaved reads; skiplist suits mixed; hash buffers excel at point ops (§2.2.1)",
		Columns: []string{"memtable", "write_only_ns_op", "mixed_50_50_ns_op", "point_get_ns_op"},
	}
	n := s.N(100_000)
	kinds := []memtable.Kind{
		memtable.KindSkipList, memtable.KindVector,
		memtable.KindHashSkipList, memtable.KindHashLinkList,
	}

	for _, kind := range kinds {
		// Write-only.
		writeOnly := func() time.Duration {
			m := memtable.New(kind)
			gen := workload.New(workload.Config{Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 32})
			start := time.Now()
			for i := 0; i < n; i++ {
				op := gen.Next()
				m.Add(kv.SeqNum(i+1), kv.KindSet, op.Key, op.Value)
			}
			return time.Since(start)
		}()

		// 50/50 interleaved.
		mixed := func() time.Duration {
			m := memtable.New(kind)
			gen := workload.New(workload.Config{Seed: 2, KeySpace: int64(n), Mix: workload.MixA, ValueLen: 32})
			seq := kv.SeqNum(0)
			start := time.Now()
			for i := 0; i < n; i++ {
				op := gen.Next()
				if op.Kind == workload.OpPut {
					seq++
					m.Add(seq, kv.KindSet, op.Key, op.Value)
				} else {
					m.Get(op.Key, kv.MaxSeqNum)
				}
			}
			return time.Since(start)
		}()

		// Pure point reads on a pre-filled buffer.
		pointGets := func() time.Duration {
			m := memtable.New(kind)
			gen := workload.New(workload.Config{Seed: 3, KeySpace: int64(n / 10), Mix: workload.MixLoad, ValueLen: 32})
			for i := 0; i < n/10; i++ {
				op := gen.Next()
				m.Add(kv.SeqNum(i+1), kv.KindSet, op.Key, op.Value)
			}
			rgen := workload.New(workload.Config{Seed: 4, KeySpace: int64(n / 10), Mix: workload.MixC})
			start := time.Now()
			for i := 0; i < n; i++ {
				m.Get(rgen.Next().Key, kv.MaxSeqNum)
			}
			return time.Since(start)
		}()

		row := func(d time.Duration) string {
			return fmt.Sprintf("%d", d.Nanoseconds()/int64(n))
		}
		t.AddRow(string(kind), row(writeOnly), row(mixed), row(pointGets))
	}
	return t, nil
}
