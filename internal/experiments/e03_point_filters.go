package experiments

import (
	"errors"
	"fmt"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E3PointFilters measures point-lookup I/O with no filters, uniform
// bits-per-key allocations, and Monkey's optimal allocation at the same
// total memory: filters eliminate most superfluous probes, and Monkey
// beats uniform at equal budget (tutorial §2.1.3, Monkey [31]).
func E3PointFilters(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Bloom filters and Monkey allocation",
		Claim: "filters cut zero-result lookup I/O; Monkey's allocation beats uniform bits/key at equal memory (§2.1.3)",
		Columns: []string{"filters", "filter_mem_KiB", "zero_pages_per_lookup", "zero_sim_us",
			"exist_sim_us", "filter_negative_rate"},
	}
	n := s.N(100_000)
	nLookups := s.N(10_000)

	type cfg struct {
		name   string
		mutate func(*core.Options)
	}
	// The Monkey row's budget is calibrated so that its *achieved*
	// filter memory lands near the uniform-5 row (the per-run
	// allocation is recomputed against a moving tree, so achieved
	// memory runs ~50% above the nominal budget); the fair comparison
	// is by the filter_mem_KiB column.
	budget := int64(n) * 3
	cfgs := []cfg{
		{"none", func(o *core.Options) { o.FilterMode = core.FilterNone }},
		{"uniform-2", func(o *core.Options) { o.FilterMode = core.FilterUniform; o.BitsPerKey = 2 }},
		{"uniform-5", func(o *core.Options) { o.FilterMode = core.FilterUniform; o.BitsPerKey = 5 }},
		{"uniform-10", func(o *core.Options) { o.FilterMode = core.FilterUniform; o.BitsPerKey = 10 }},
		{"monkey", func(o *core.Options) { o.FilterMode = core.FilterMonkey; o.FilterBudgetBits = budget }},
	}

	for _, c := range cfgs {
		e := newEnv(c.mutate)
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 64})
		for i := 0; i < n; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()

		// Zero-result lookups (keys inside the fence range but absent).
		pre := e.fs.Stats()
		preM := db.Metrics()
		zgen := workload.New(workload.Config{Seed: 2, KeySpace: int64(n), Mix: workload.Mix{GetZeros: 1}})
		for i := 0; i < nLookups; i++ {
			if _, err := db.Get(zgen.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		}
		zeroIO := e.fs.Stats().Sub(pre)
		zm := db.Metrics().Sub(preM)

		// Existing-key lookups.
		pre = e.fs.Stats()
		egen := workload.New(workload.Config{Seed: 3, KeySpace: int64(n), Mix: workload.MixC})
		for i := 0; i < nLookups; i++ {
			if _, err := db.Get(egen.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		}
		existIO := e.fs.Stats().Sub(pre)

		negRate := 0.0
		if zm.FilterProbes > 0 {
			negRate = float64(zm.FilterNegatives) / float64(zm.FilterProbes)
		}
		t.AddRow(
			c.name,
			fmt.Sprintf("%d", db.FilterMemoryBytes()/1024),
			f2(float64(zeroIO.PagesRead)/float64(nLookups)),
			f2(float64(zeroIO.SimulatedNs)/1e3/float64(nLookups)),
			f2(float64(existIO.SimulatedNs)/1e3/float64(nLookups)),
			f2(negRate),
		)
		db.Close()
	}
	return t, nil
}
