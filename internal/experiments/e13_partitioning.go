package experiments

import (
	"fmt"
	"sync"
	"time"

	"lsmlab/internal/partition"
	"lsmlab/internal/workload"
)

// E13Partitioning completes the E8 story: a single LSM-tree's
// compactions chain through adjacent levels and cannot parallelize, so
// systems partition the key space into independent trees (PebblesDB's
// fragments, Nova-LSM's shards; tutorial §2.2.2). With per-partition
// compaction pipelines and enough workers, ingestion and the
// post-ingest drain both scale with the partition count.
func E13Partitioning(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Key-space partitioning (PebblesDB/Nova-LSM style)",
		Claim: "partitioning the key space reduces compaction interference and scales background parallelism (§2.2.2)",
		Columns: []string{"partitions", "ingest_wall_ms", "drain_wall_ms", "total_wall_ms",
			"stall_ms", "compactions"},
	}
	n := s.N(100_000)
	const writerThreads = 2

	for _, parts := range []int{1, 2, 4, 8} {
		fs := newEnv(nil) // only for option shaping; each store re-specifies FS
		opts := fs.opts
		opts.Workers = 2 // per partition: one flush + one compaction thread
		opts.MaxImmutableBuffers = 2
		opts.BufferBytes = 32 << 10
		opts.CompactionBandwidthBytesPerSec = int64(n) * 40
		opts.StallL0Runs = 0

		store, err := partition.Open(opts, parts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		errCh := make(chan error, writerThreads)
		var wg sync.WaitGroup
		for w := 0; w < writerThreads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := workload.New(workload.Config{
					Seed: int64(w + 1), KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 64,
				})
				for i := 0; i < n/writerThreads; i++ {
					op := gen.Next()
					if err := store.Put(op.Key, op.Value); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		ingestWall := time.Since(start)
		if err := store.Flush(); err != nil {
			return nil, err
		}
		store.WaitIdle()
		total := time.Since(start)
		m := store.Metrics()
		t.AddRow(
			fmt.Sprint(parts),
			fmt.Sprintf("%.1f", float64(ingestWall.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64((total-ingestWall).Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64(total.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64(m.StallNs)/1e6),
			fmt.Sprint(m.Compactions),
		)
		store.Close()
	}
	return t, nil
}
