package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/server"
	"lsmlab/internal/trace"
	"lsmlab/internal/workload"
)

// O1TraceAttribution measures where the point-lookup tail comes from by
// tracing every Get and classifying each captured span by the access
// path its counters record: "filter-skip" (every run's Bloom filter
// said no — the lookup never touched a data block), "cache-hit" (all
// block reads served from the block cache), and "disk" (at least one
// uncached block fetch). With strong filters (10 bits/key) absent keys
// stay on the filter-skip path; with weak filters (2 bits/key) false
// positives leak them into block reads and the tail follows.
//
// The spans are not read from the tracer directly: the experiment
// mounts the server's debug handler and fetches /traces over HTTP, so
// the table is regenerated from the same JSON an operator would curl.
func O1TraceAttribution(s Scale) (*Table, error) {
	t := &Table{
		ID:    "O1",
		Title: "Trace-based Get tail attribution (from /traces)",
		Claim: "per-op spans attribute the Get tail to its access path: strong filters keep absent keys off the disk path; weak filters leak false positives into block reads and the p99 follows (§2.1.3, DESIGN §2e)",
		Columns: []string{"config", "gets", "share", "p50_us", "p99_us",
			"runs_per_get", "blocks_per_get", "cached_per_get"},
	}
	n := s.N(40_000)
	nLookups := s.N(2_000) // per flavor: hot, cold, absent

	for _, bits := range []float64{2, 10} {
		tr := trace.New(trace.Options{SampleEvery: 1, RingSize: 1 << 14, Seed: 1})
		e := newEnv(func(o *core.Options) {
			o.FilterMode = core.FilterUniform
			o.BitsPerKey = bits
			o.CacheBytes = 512 << 10
			o.Tracer = tr
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		gen := workload.New(workload.Config{Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 100})
		for i := 0; i < n; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()

		// Warm the cache with the hot subset so the cache-hit path exists.
		hot := workload.New(workload.Config{Seed: 2, KeySpace: int64(n / 64), Mix: workload.MixC})
		for i := 0; i < nLookups; i++ {
			if _, err := db.Get(hot.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		}

		// The measured phase interleaves three flavors: hot keys (cached
		// blocks), uniform present keys (mostly uncached), absent keys
		// (the filters' case). Every Get is traced (SampleEvery=1).
		cold := workload.New(workload.Config{Seed: 3, KeySpace: int64(n), Mix: workload.MixC})
		absent := workload.New(workload.Config{Seed: 4, KeySpace: int64(n), Mix: workload.Mix{GetZeros: 1}})
		cutNs := time.Now().UnixNano() // excludes load/warm-up spans below
		for i := 0; i < nLookups; i++ {
			for _, g := range []*workload.Generator{hot, cold, absent} {
				if _, err := db.Get(g.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
					return nil, err
				}
			}
		}

		// Regenerate from the debug plane: mount the handler, GET /traces,
		// and aggregate the JSON spans exactly as an operator would.
		srv := server.New(db, server.Options{})
		ts := httptest.NewServer(srv.DebugHandler(nil, tr))
		spans, err := fetchTraceSpans(ts.URL + "/traces")
		ts.Close()
		if err != nil {
			db.Close()
			return nil, err
		}

		type agg struct {
			durs           []int64
			runs, blks, ch int64
		}
		paths := map[string]*agg{}
		total := 0
		for _, sp := range spans {
			if sp.Op != "get" || sp.StartNs < cutNs {
				continue
			}
			path := "disk"
			switch {
			case sp.BlockReads == 0:
				path = "filter-skip"
			case sp.BlockReadsCached == sp.BlockReads:
				path = "cache-hit"
			}
			a := paths[path]
			if a == nil {
				a = &agg{}
				paths[path] = a
			}
			a.durs = append(a.durs, sp.DurNs)
			a.runs += int64(sp.Runs)
			a.blks += int64(sp.BlockReads)
			a.ch += int64(sp.BlockReadsCached)
			total++
		}
		db.Close()
		if total == 0 {
			return nil, fmt.Errorf("O1: /traces returned no get spans")
		}

		// One summary row, then the per-path attribution, fixed order.
		all := &agg{}
		for _, a := range paths {
			all.durs = append(all.durs, a.durs...)
			all.runs += a.runs
			all.blks += a.blks
			all.ch += a.ch
		}
		label := fmt.Sprintf("%gbpk", bits)
		for _, row := range []struct {
			name string
			a    *agg
		}{
			{label + "/all", all},
			{label + "/filter-skip", paths["filter-skip"]},
			{label + "/cache-hit", paths["cache-hit"]},
			{label + "/disk", paths["disk"]},
		} {
			a := row.a
			if a == nil || len(a.durs) == 0 {
				t.AddRow(row.name, "0", "0.00", "-", "-", "-", "-", "-")
				continue
			}
			cnt := float64(len(a.durs))
			t.AddRow(
				row.name,
				fmt.Sprint(len(a.durs)),
				f2(cnt/float64(total)),
				f2(float64(percentileNs(a.durs, 0.50))/1e3),
				f2(float64(percentileNs(a.durs, 0.99))/1e3),
				f2(float64(a.runs)/cnt),
				f2(float64(a.blks)/cnt),
				f2(float64(a.ch)/cnt),
			)
		}
	}
	return t, nil
}

// traceSpanJSON mirrors the /traces wire shape (the fields O1 reads).
type traceSpanJSON struct {
	Op               string `json:"op"`
	StartNs          int64  `json:"start_ns"`
	DurNs            int64  `json:"dur_ns"`
	Runs             int32  `json:"runs"`
	FilterProbes     int32  `json:"filter_probes"`
	FilterNegatives  int32  `json:"filter_negatives"`
	BlockReads       int32  `json:"block_reads"`
	BlockReadsCached int32  `json:"block_reads_cached"`
}

// fetchTraceSpans GETs and decodes a /traces endpoint.
func fetchTraceSpans(url string) ([]traceSpanJSON, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var payload struct {
		Spans []traceSpanJSON `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Spans, nil
}

// percentileNs returns the q-quantile of ds (sorted in place).
func percentileNs(ds []int64, q float64) int64 {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q * float64(len(ds)-1))
	return ds[idx]
}
