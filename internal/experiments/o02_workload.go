package experiments

import (
	"errors"
	"fmt"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// O2WorkloadProfile exercises the engine's live self-dissection: the
// always-on profiler (DESIGN §2i) must characterize the running
// workload — operation mix, skew, hot keys, scan shape — and attribute
// I/O cost per level, from inside the engine and within a decay window.
//
// Part one drives three workload phases through one engine whose
// profile window is half a phase, so by each phase's end the windowed
// profile covers mostly that phase: a uniform read/write mix, a
// zipfian read-only burst (skew and hot-key share must jump), and a
// scan-heavy YCSB-E mix (scan fraction and mean scan length must
// appear). The rows are the profiler's own numbers, read back through
// the same WorkloadProfile call the /workload endpoint serves.
//
// Part two cross-validates the attribution against ground truth: a
// fresh engine on a vfs.CountingFS (no cache, no WAL) compares the
// profiler's per-level byte attribution to the filesystem's own
// counters over the same interval. Flush/compaction writes and scan
// reads are attributed exactly; get reads are a sampled estimate
// (1-in-32, weighted back up), so their check also measures the
// sampling error the engine accepts to keep the hot path cheap.
func O2WorkloadProfile(s Scale) (*Table, error) {
	t := &Table{
		ID:    "O2",
		Title: "Live workload characterization + per-level RUM attribution",
		Claim: "the engine's own profiler tracks workload shifts within a decay window (mix, zipf skew, hot-key share, scan shape) and its per-level byte attribution matches filesystem ground truth — exactly for flush/compaction writes and scan reads, within sampling error for gets (DESIGN §2i)",
		Columns: []string{"phase", "mix", "mean_scan", "distinct", "zipf_s",
			"top_share", "top_key", "read_amp", "write_amp", "io_check"},
	}
	nKeys := s.N(20_000)
	phaseOps := s.N(10_000)

	// --- Part one: workload shifts seen through the decay window. ---
	e := newEnv(func(o *core.Options) {
		o.CacheBytes = 0
		// Half a phase per half-life: by a phase's end the window
		// (current + previous generation) holds only that phase.
		o.ProfileWindowOps = phaseOps / 2
	})
	db, err := e.open()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	load := workload.New(workload.Config{Seed: 1, KeySpace: int64(nKeys), Mix: workload.MixLoad, ValueLen: 100})
	for i := 0; i < nKeys; i++ {
		op := load.Next()
		if err := db.Put(op.Key, op.Value); err != nil {
			return nil, err
		}
	}
	if err := db.Flush(); err != nil {
		return nil, err
	}
	db.WaitIdle()

	phases := []struct {
		name string
		cfg  workload.Config
	}{
		{"uniform-rw", workload.Config{Seed: 2, KeySpace: int64(nKeys), Mix: workload.MixA, ValueLen: 100}},
		{"zipf-read", workload.Config{Seed: 3, KeySpace: int64(nKeys), Mix: workload.MixC, Distribution: workload.Zipfian}},
		{"scan-heavy", workload.Config{Seed: 4, KeySpace: int64(nKeys), Mix: workload.MixE, ValueLen: 100}},
	}
	for _, ph := range phases {
		g := workload.New(ph.cfg)
		for i := 0; i < phaseOps; i++ {
			if err := applyOp(db, g.Next()); err != nil {
				return nil, err
			}
		}
		wp := db.WorkloadProfile()
		topKey := "-"
		if len(wp.TopKeys) > 0 {
			topKey = string(wp.TopKeys[0].Key)
		}
		ops := wp.Gets + wp.Puts + wp.Deletes + wp.Scans
		if ops == 0 {
			ops = 1
		}
		mix := fmt.Sprintf("g%02d/p%02d/s%02d",
			100*wp.Gets/ops, 100*wp.Puts/ops, 100*wp.Scans/ops)
		t.AddRow(ph.name, mix, f2(wp.MeanScanLen), fmt.Sprint(wp.DistinctKeys),
			f2(wp.ZipfS), f2(wp.TopShare), topKey,
			f2(wp.ReadAmp), f2(wp.WriteAmp), "-")
	}

	// --- Part two: attribution vs. CountingFS ground truth. ---
	// A huge window means no rotation: the profile is cumulative since
	// open, so interval deltas line up exactly with fs counter deltas.
	v := newEnv(func(o *core.Options) {
		o.CacheBytes = 0
		o.DisableWAL = true // fs writes are then sst + manifest only
		o.ProfileWindowOps = 1 << 30
	})
	vdb, err := v.open()
	if err != nil {
		return nil, err
	}
	defer vdb.Close()
	load = workload.New(workload.Config{Seed: 5, KeySpace: int64(nKeys), Mix: workload.MixLoad, ValueLen: 100})
	for i := 0; i < nKeys; i++ {
		op := load.Next()
		if err := vdb.Put(op.Key, op.Value); err != nil {
			return nil, err
		}
	}
	if err := vdb.Flush(); err != nil {
		return nil, err
	}
	vdb.WaitIdle()
	wpLoad := vdb.WorkloadProfile()
	fsLoad := v.fs.Stats()
	t.AddRow("io-writes", "-", "-", "-", "-", "-", "-", "-", "-",
		ioCheck(profWriteBytes(wpLoad), fsLoad.BytesWritten))

	// Scan reads: every uncached block byte is attributed exactly.
	scans := workload.New(workload.Config{Seed: 6, KeySpace: int64(nKeys), Mix: workload.Mix{ScanShort: 1}})
	for i := 0; i < s.N(2_000); i++ {
		if err := applyOp(vdb, scans.Next()); err != nil {
			return nil, err
		}
	}
	wpScan := vdb.WorkloadProfile()
	fsScan := v.fs.Stats()
	t.AddRow("io-scan-reads", "-", "-", "-", "-", "-", "-", "-", "-",
		ioCheck(profReadBytes(wpScan)-profReadBytes(wpLoad), fsScan.BytesRead-fsLoad.BytesRead))

	// Get reads: a 1-in-32 sampled estimate, weighted back up — the
	// delta here is the sampling error, expected well inside 10% at
	// this op count.
	gets := workload.New(workload.Config{Seed: 7, KeySpace: int64(nKeys), Mix: workload.MixC})
	for i := 0; i < s.N(24_000); i++ {
		if err := applyOp(vdb, gets.Next()); err != nil {
			return nil, err
		}
	}
	wpGet := vdb.WorkloadProfile()
	fsGet := v.fs.Stats()
	t.AddRow("io-get-reads", "-", "-", "-", "-", "-", "-", "-", "-",
		ioCheck(profReadBytes(wpGet)-profReadBytes(wpScan), fsGet.BytesRead-fsScan.BytesRead))
	return t, nil
}

// applyOp runs one generated operation against the engine, tolerating
// the not-found misses a probabilistic generator produces.
func applyOp(db *core.DB, op workload.Op) error {
	switch op.Kind {
	case workload.OpPut:
		return db.Put(op.Key, op.Value)
	case workload.OpDelete:
		return db.Delete(op.Key)
	case workload.OpGet, workload.OpGetZero:
		if _, err := db.Get(op.Key); err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
	case workload.OpScan:
		if _, err := db.Scan(op.Key, op.EndKey, op.Limit); err != nil {
			return err
		}
	}
	return nil
}

// profWriteBytes sums the profiler's per-level write attribution.
func profWriteBytes(wp core.WorkloadProfile) int64 {
	var n int64
	for _, lp := range wp.Levels {
		n += lp.BytesWritten
	}
	return n
}

// profReadBytes sums the profiler's per-level uncached read bytes.
func profReadBytes(wp core.WorkloadProfile) int64 {
	var n int64
	for _, lp := range wp.Levels {
		n += lp.BytesRead
	}
	return n
}

// ioCheck renders one attribution-vs-ground-truth cell: the profiler's
// figure, the filesystem's, and the relative delta.
func ioCheck(prof, fs int64) string {
	if fs == 0 {
		return fmt.Sprintf("prof=%d fs=0", prof)
	}
	delta := 100 * (float64(prof) - float64(fs)) / float64(fs)
	return fmt.Sprintf("prof=%.2fMiB fs=%.2fMiB Δ=%+.1f%%",
		float64(prof)/(1<<20), float64(fs)/(1<<20), delta)
}
