package experiments

import (
	"fmt"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E5KVSeparation loads data at several value sizes with and without
// WiscKey-style key–value separation: separation cuts write
// amplification roughly by the value/key ratio (the paper reports ~4×
// and faster loads), because compactions move 20-byte pointers instead
// of payloads (tutorial §2.2.2, [78]).
func E5KVSeparation(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "WiscKey key-value separation",
		Claim: "separating values into a log cuts write amplification (~4x at large values) and speeds loading (§2.2.2)",
		Columns: []string{"value_bytes", "mode", "write_amp", "load_sim_ms", "tree_bytes_KiB",
			"vlog_bytes_KiB", "point_get_sim_us"},
	}
	nBase := s.N(50_000)

	for _, valueLen := range []int{64, 512, 4096} {
		// Keep total ingested bytes roughly constant across value sizes
		// so simulated times are comparable.
		n := nBase * 512 / (64 + valueLen)
		if n < 100 {
			n = 100
		}
		for _, sep := range []bool{false, true} {
			e := newEnv(func(o *core.Options) {
				if sep {
					o.ValueSeparationThreshold = 128
				}
			})
			db, err := e.open()
			if err != nil {
				return nil, err
			}
			gen := workload.New(workload.Config{
				Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: valueLen,
			})
			for i := 0; i < n; i++ {
				op := gen.Next()
				if err := db.Put(op.Key, op.Value); err != nil {
					return nil, err
				}
			}
			if err := db.Flush(); err != nil {
				return nil, err
			}
			db.WaitIdle()
			load := e.fs.Stats()
			m := db.Metrics()

			// Point reads pay an extra hop through the value log.
			pre := e.fs.Stats()
			nReads := s.N(2000)
			rgen := workload.New(workload.Config{Seed: 2, KeySpace: int64(n), Mix: workload.MixC})
			for i := 0; i < nReads; i++ {
				if _, err := db.Get(rgen.Next().Key); err != nil && err != core.ErrNotFound {
					return nil, err
				}
			}
			readIO := e.fs.Stats().Sub(pre)

			mode := "baseline"
			vlogKiB := int64(0)
			if sep {
				mode = "wisckey"
				vlogKiB = int64((db.DiskUsageBytes() - db.Version().TotalSize()) / 1024)
			}
			t.AddRow(
				fmt.Sprint(valueLen),
				mode,
				f2(m.WriteAmplification()),
				simMillis(load.SimulatedNs),
				fmt.Sprint(db.Version().TotalSize()/1024),
				fmt.Sprint(vlogKiB),
				f2(float64(readIO.SimulatedNs)/1e3/float64(nReads)),
			)
			db.Close()
		}
	}
	return t, nil
}
