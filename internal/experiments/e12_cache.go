package experiments

import (
	"errors"
	"fmt"

	"lsmlab/internal/core"
	"lsmlab/internal/workload"
)

// E12CacheLeaper measures hot-block eviction by compactions and the
// Leaper-style fix: zipfian point reads run in phases interleaved with
// ingestion that forces compactions. When a compaction replaces the
// files whose blocks were hot, the cache goes cold; prefetching the
// compaction outputs restores the hit rate (tutorial §2.1.3, [128]).
func E12CacheLeaper(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Block cache vs. compactions (Leaper prefetch)",
		Claim: "compactions evict hot blocks; prefetching compaction outputs restores the cache hit rate (§2.1.3)",
		Columns: []string{"prefetch", "hit_rate", "read_pages_per_get", "read_sim_us_per_get",
			"compactions"},
	}
	n := s.N(80_000)
	nReadsPerPhase := s.N(4_000)
	const phases = 6

	for _, prefetch := range []bool{false, true} {
		e := newEnv(func(o *core.Options) {
			o.CacheBytes = 1 << 20
			o.PrefetchAfterCompaction = prefetch
		})
		db, err := e.open()
		if err != nil {
			return nil, err
		}
		// Preload.
		gen := workload.New(workload.Config{
			Seed: 1, KeySpace: int64(n), Mix: workload.MixLoad, ValueLen: 64,
		})
		for i := 0; i < n; i++ {
			op := gen.Next()
			if err := db.Put(op.Key, op.Value); err != nil {
				return nil, err
			}
		}
		if err := db.Flush(); err != nil {
			return nil, err
		}
		db.WaitIdle()

		// Interleave zipfian read phases with write bursts that trigger
		// compactions of exactly the hot files.
		rgen := workload.New(workload.Config{
			Seed: 2, KeySpace: int64(n), Distribution: workload.Zipfian, Mix: workload.MixC,
		})
		wgen := workload.New(workload.Config{
			Seed: 3, KeySpace: int64(n), Distribution: workload.Zipfian,
			Mix: workload.MixLoad, ValueLen: 64,
		})
		var preIO = e.fs.Stats()
		var preM = db.Metrics()
		totalReads := 0
		for p := 0; p < phases; p++ {
			for i := 0; i < nReadsPerPhase; i++ {
				if _, err := db.Get(rgen.Next().Key); err != nil && !errors.Is(err, core.ErrNotFound) {
					return nil, err
				}
				totalReads++
			}
			// Write burst over the same hot keys → compactions rewrite
			// the hot files and evict their cached blocks.
			for i := 0; i < n/8; i++ {
				op := wgen.Next()
				if err := db.Put(op.Key, op.Value); err != nil {
					return nil, err
				}
			}
			db.WaitIdle()
		}
		io := e.fs.Stats().Sub(preIO)
		m := db.Metrics().Sub(preM)
		hitRate := 0.0
		if hm := m.CacheHits + m.CacheMisses; hm > 0 {
			hitRate = float64(m.CacheHits) / float64(hm)
		}
		t.AddRow(
			fmt.Sprint(prefetch),
			f2(hitRate),
			f2(float64(io.PagesRead)/float64(totalReads)),
			f2(float64(io.SimulatedNs)/1e3/float64(totalReads)),
			fmt.Sprint(m.Compactions),
		)
		db.Close()
	}
	return t, nil
}
