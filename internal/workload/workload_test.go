package workload

import (
	"bytes"
	"testing"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, KeySpace: 1000, Mix: MixA}
	g1, g2 := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || !bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("op %d diverged", i)
		}
	}
}

func TestMixProportions(t *testing.T) {
	g := New(Config{Seed: 1, KeySpace: 10000, Mix: Mix{Puts: 0.5, Gets: 0.3, Deletes: 0.2}})
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	check := func(k OpKind, want float64) {
		got := float64(counts[k]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v fraction %.3f, want ~%.2f", k, got, want)
		}
	}
	check(OpPut, 0.5)
	check(OpGet, 0.3)
	check(OpDelete, 0.2)
}

func TestZipfianSkew(t *testing.T) {
	g := New(Config{Seed: 2, KeySpace: 100000, Distribution: Zipfian, Mix: MixC})
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[string(g.Next().Key)]++
	}
	// The hottest key should dwarf the average.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Errorf("zipfian hottest key only %d of 20000 accesses", max)
	}
	// Uniform for contrast.
	u := New(Config{Seed: 2, KeySpace: 100000, Distribution: Uniform, Mix: MixC})
	ucounts := map[string]int{}
	for i := 0; i < 20000; i++ {
		ucounts[string(u.Next().Key)]++
	}
	umax := 0
	for _, c := range ucounts {
		if c > umax {
			umax = c
		}
	}
	if umax >= max {
		t.Error("uniform should be flatter than zipfian")
	}
}

func TestSequentialWalksKeySpace(t *testing.T) {
	g := New(Config{Seed: 3, KeySpace: 1000, Distribution: Sequential, Mix: MixLoad})
	prev := []byte(nil)
	for i := 0; i < 100; i++ {
		op := g.Next()
		if prev != nil && bytes.Compare(op.Key, prev) <= 0 {
			t.Fatal("sequential keys must ascend")
		}
		prev = append(prev[:0], op.Key...)
	}
}

func TestScanLengths(t *testing.T) {
	g := New(Config{Seed: 4, KeySpace: 100000, Mix: Mix{ScanShort: 0.5, ScanLong: 0.5},
		ShortScanLen: 16, LongScanLen: 1024})
	short, long := 0, 0
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != OpScan {
			t.Fatal("scan-only mix")
		}
		switch op.Limit {
		case 16:
			short++
		case 1024:
			long++
		default:
			t.Fatalf("unexpected limit %d", op.Limit)
		}
		if bytes.Compare(op.EndKey, op.Key) <= 0 {
			t.Fatal("scan end must follow start")
		}
	}
	if short == 0 || long == 0 {
		t.Errorf("short=%d long=%d", short, long)
	}
}

func TestZeroResultKeysAreAbsent(t *testing.T) {
	g := New(Config{Seed: 5, KeySpace: 100, Mix: Mix{GetZeros: 1}})
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind != OpGetZero {
			t.Fatal("mix")
		}
		if !bytes.Contains(op.Key, []byte("-absent")) {
			t.Fatal("zero key must not collide with real keys")
		}
	}
}

func TestValuesVary(t *testing.T) {
	g := New(Config{Seed: 6, KeySpace: 10, Mix: MixLoad, ValueLen: 32})
	a, b := g.Next(), g.Next()
	if bytes.Equal(a.Value, b.Value) {
		t.Error("successive values should differ")
	}
	if len(a.Value) != 32 {
		t.Errorf("value len %d", len(a.Value))
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(Config{Seed: 1})
	op := g.Next()
	if op.Kind != OpPut {
		t.Error("empty mix defaults to pure puts")
	}
	if len(op.Value) != 64 {
		t.Errorf("default value len %d", len(op.Value))
	}
}

func TestBurst(t *testing.T) {
	b := Burst{Quiet: 10, BurstLen: 50}
	total, bursts := 0, 0
	for i := 0; i < 100; i++ {
		n := b.NextBatch()
		total += n
		if n == 50 {
			bursts++
		}
	}
	if bursts != 10 {
		t.Errorf("bursts %d, want 10", bursts)
	}
	if total != 90+10*50 {
		t.Errorf("total %d", total)
	}
}

func TestKeyFormatting(t *testing.T) {
	if string(Key(42)) != "user000000000042" {
		t.Errorf("key %q", Key(42))
	}
	if bytes.Compare(Key(1), Key(2)) >= 0 {
		t.Error("keys must sort numerically")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpPut: "put", OpDelete: "delete", OpGet: "get", OpGetZero: "get-zero", OpScan: "scan",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind")
	}
}
