// Package workload generates the parameterized operation streams that
// drive every experiment: YCSB-style operation mixes over uniform or
// zipfian key popularity, plus bursty-arrival and workload-shift
// helpers. Generators are deterministic for a given seed, so every
// experiment is reproducible.
//
// Substitution note (DESIGN.md): the tutorial's cited evaluations use
// production traces (e.g. Facebook's RocksDB traces [23]); the
// experiments here use this generator, whose knobs — mix percentages
// and skew — are exactly the workload properties those studies vary.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind classifies generated operations.
type OpKind int

// The operation kinds a generator can emit.
const (
	OpPut OpKind = iota
	OpDelete
	OpGet     // lookup of a (probably) existing key
	OpGetZero // lookup of a definitely absent key
	OpScan    // range scan
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpGet:
		return "get"
	case OpGetZero:
		return "get-zero"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one generated operation.
type Op struct {
	Kind   OpKind
	Key    []byte
	Value  []byte // puts only
	EndKey []byte // scans only (exclusive)
	Limit  int    // scans only
}

// Mix is an operation mix; fractions need not be normalized.
type Mix struct {
	Puts      float64
	Deletes   float64
	Gets      float64
	GetZeros  float64
	ScanShort float64 // ~16-key scans
	ScanLong  float64 // ~1024-key scans
}

// Standard mixes, named after their YCSB analogues.
var (
	// MixLoad is pure ingestion (YCSB load phase).
	MixLoad = Mix{Puts: 1}
	// MixA is 50% reads / 50% updates (YCSB A).
	MixA = Mix{Puts: 0.5, Gets: 0.5}
	// MixB is 95% reads / 5% updates (YCSB B).
	MixB = Mix{Puts: 0.05, Gets: 0.95}
	// MixC is read-only (YCSB C).
	MixC = Mix{Gets: 1}
	// MixE is scan-heavy (YCSB E).
	MixE = Mix{Puts: 0.05, ScanShort: 0.95}
	// MixDeleteHeavy exercises delete-aware designs (Lethe-style).
	MixDeleteHeavy = Mix{Puts: 0.6, Deletes: 0.3, Gets: 0.1}
)

// Distribution selects key popularity.
type Distribution int

// The supported key distributions.
const (
	// Uniform draws keys uniformly from the key space.
	Uniform Distribution = iota
	// Zipfian draws keys with a skewed (s=1.2) popularity.
	Zipfian
	// Sequential walks the key space in order (time-series ingestion).
	Sequential
)

// Config parameterizes a Generator.
type Config struct {
	Seed         int64
	KeySpace     int64 // number of distinct keys
	ValueLen     int
	Distribution Distribution
	Mix          Mix
	ShortScanLen int // default 16
	LongScanLen  int // default 1024
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	seqCur  int64
	value   []byte
	thresh  [5]float64 // cumulative mix thresholds
	scanMix float64    // P(short | scan)
}

// New returns a generator for the config.
func New(cfg Config) *Generator {
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 1 << 20
	}
	if cfg.ValueLen <= 0 {
		cfg.ValueLen = 64
	}
	if cfg.ShortScanLen <= 0 {
		cfg.ShortScanLen = 16
	}
	if cfg.LongScanLen <= 0 {
		cfg.LongScanLen = 1024
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Distribution == Zipfian {
		g.zipf = rand.NewZipf(g.rng, 1.2, 1, uint64(cfg.KeySpace-1))
	}
	g.value = make([]byte, cfg.ValueLen)
	g.rng.Read(g.value)

	m := cfg.Mix
	total := m.Puts + m.Deletes + m.Gets + m.GetZeros + m.ScanShort + m.ScanLong
	if total <= 0 {
		m.Puts, total = 1, 1
	}
	g.thresh[0] = m.Puts / total
	g.thresh[1] = g.thresh[0] + m.Deletes/total
	g.thresh[2] = g.thresh[1] + m.Gets/total
	g.thresh[3] = g.thresh[2] + m.GetZeros/total
	g.thresh[4] = 1
	if s := m.ScanShort + m.ScanLong; s > 0 {
		g.scanMix = m.ScanShort / s
	}
	return g
}

// Key formats the canonical key for index i — shared with experiments
// that preload data.
func Key(i int64) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// nextIndex draws a key index from the configured distribution.
func (g *Generator) nextIndex() int64 {
	switch g.cfg.Distribution {
	case Zipfian:
		return int64(g.zipf.Uint64())
	case Sequential:
		i := g.seqCur
		g.seqCur++
		return i
	default:
		return g.rng.Int63n(g.cfg.KeySpace)
	}
}

// NextValue returns a fresh value payload (rotated so that updates
// change bytes).
func (g *Generator) NextValue() []byte {
	// Rotate one byte per call: cheap, deterministic, distinct.
	g.value[g.rng.Intn(len(g.value))]++
	out := make([]byte, len(g.value))
	copy(out, g.value)
	return out
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	idx := g.nextIndex()
	key := Key(idx)
	switch {
	case r < g.thresh[0]:
		return Op{Kind: OpPut, Key: key, Value: g.NextValue()}
	case r < g.thresh[1]:
		return Op{Kind: OpDelete, Key: key}
	case r < g.thresh[2]:
		return Op{Kind: OpGet, Key: key}
	case r < g.thresh[3]:
		// Zero-result keys live between real keys, inside the fence
		// range, so they exercise the filters rather than the fences.
		zk := append(Key(idx), []byte("-absent")...)
		return Op{Kind: OpGetZero, Key: zk}
	default:
		length := g.cfg.LongScanLen
		if g.rng.Float64() < g.scanMix {
			length = g.cfg.ShortScanLen
		}
		end := idx + int64(length)
		if end > g.cfg.KeySpace {
			end = g.cfg.KeySpace
		}
		return Op{Kind: OpScan, Key: key, EndKey: Key(end), Limit: length}
	}
}

// Burst yields arrival batch sizes for bursty ingestion: quiet periods
// of `quiet` ops alternate with bursts of `burst` ops (experiment E7).
type Burst struct {
	Quiet, BurstLen int
	pos             int
}

// NextBatch reports how many operations arrive in the next tick: 1
// during quiet periods, BurstLen at burst ticks.
func (b *Burst) NextBatch() int {
	b.pos++
	if b.Quiet > 0 && b.pos%b.Quiet == 0 {
		return b.BurstLen
	}
	return 1
}
