package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// TestPropertyBatchRoundtrip: any batch written to the log replays
// identically.
func TestPropertyBatchRoundtrip(t *testing.T) {
	f := func(seq uint64, kinds []byte, keys, vals [][]byte) bool {
		b := &Batch{Seq: kv.SeqNum(seq & uint64(kv.MaxSeqNum))}
		n := len(kinds)
		if len(keys) < n {
			n = len(keys)
		}
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			b.Ops = append(b.Ops, Op{
				Kind:  kv.Kind(kinds[i] % 5),
				Key:   keys[i],
				Value: vals[i],
			})
		}
		fs := vfs.NewMem()
		file, _ := fs.Create("log")
		w := NewWriter(file)
		if _, err := w.Append(b); err != nil {
			return false
		}
		file.Close()
		rf, _ := fs.Open("log")
		var got *Batch
		if err := Replay(rf, func(rb Batch) error { got = &rb; return nil }); err != nil {
			return false
		}
		if got == nil || got.Seq != b.Seq || len(got.Ops) != len(b.Ops) {
			return false
		}
		for i := range b.Ops {
			if got.Ops[i].Kind != b.Ops[i].Kind ||
				!bytes.Equal(got.Ops[i].Key, b.Ops[i].Key) ||
				!bytes.Equal(got.Ops[i].Value, b.Ops[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTruncationNeverCorrupts: replaying any prefix of a valid
// log yields a prefix of its batches, never an error.
func TestPropertyTruncationNeverCorrupts(t *testing.T) {
	fs := vfs.NewMem()
	file, _ := fs.Create("log")
	w := NewWriter(file)
	const total = 20
	for i := 0; i < total; i++ {
		w.Append(&Batch{Seq: kv.SeqNum(i + 1), Ops: []Op{
			{Kind: kv.KindSet, Key: []byte{byte(i)}, Value: bytes.Repeat([]byte{byte(i)}, i)},
		}})
	}
	file.Close()
	rf, _ := fs.Open("log")
	size, _ := rf.Size()
	full := make([]byte, size)
	rf.ReadAt(full, 0)
	rf.Close()

	f := func(cut uint16) bool {
		n := int(cut) % (len(full) + 1)
		tfs := vfs.NewMem()
		g, _ := tfs.Create("log")
		g.Write(full[:n])
		g.Close()
		h, _ := tfs.Open("log")
		prev := kv.SeqNum(0)
		count := 0
		err := Replay(h, func(b Batch) error {
			if b.Seq != prev+1 {
				t.Fatalf("gap in replayed batches at %d", b.Seq)
			}
			prev = b.Seq
			count++
			return nil
		})
		return err == nil && count <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
