package wal

import (
	"testing"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

func groupBatches() []*Batch {
	return []*Batch{
		{Seq: 1, Ops: []Op{
			{Kind: kv.KindSet, Key: []byte("a"), Value: []byte("1")},
			{Kind: kv.KindSet, Key: []byte("b"), Value: []byte("2")},
		}},
		{Seq: 3, Ops: []Op{
			{Kind: kv.KindSet, Key: []byte("c"), Value: []byte("3")},
		}},
		{Seq: 4, Ops: []Op{
			{Kind: kv.KindDelete, Key: []byte("a")},
			{Kind: kv.KindSet, Key: []byte("d"), Value: []byte("4")},
		}},
	}
}

func writeGroup(t *testing.T, fs vfs.FS, name string) int {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	n, err := w.AppendGroup(groupBatches())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

func replayAll(t *testing.T, fs vfs.FS, name string) []Batch {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []Batch
	if err := Replay(f, func(b Batch) error { got = append(got, b); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// TestAppendGroupReplay checks that a multi-batch group written with
// one buffered append replays as the original batches with their
// original sequence numbers.
func TestAppendGroupReplay(t *testing.T) {
	fs := vfs.NewMem()
	writeGroup(t, fs, "log.wal")
	got := replayAll(t, fs, "log.wal")
	want := groupBatches()
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i, b := range got {
		if b.Seq != want[i].Seq {
			t.Errorf("batch %d: seq %d, want %d", i, b.Seq, want[i].Seq)
		}
		if len(b.Ops) != len(want[i].Ops) {
			t.Errorf("batch %d: %d ops, want %d", i, len(b.Ops), len(want[i].Ops))
		}
	}
}

// TestTornGroupReplay truncates a group's single write at every
// possible byte length and replays the prefix: recovery must yield
// exactly the fully-framed leading batches — original seqnums, never a
// partial batch — which is the per-batch atomicity guarantee the group
// framing preserves across a torn write.
func TestTornGroupReplay(t *testing.T) {
	fs := vfs.NewMem()
	total := writeGroup(t, fs, "full.wal")
	f, err := fs.Open("full.wal")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, total)
	if _, err := f.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Frame boundaries determine how many complete batches a prefix of
	// length n contains.
	want := groupBatches()
	boundaries := frameBoundaries(t, raw)
	if len(boundaries) != len(want) {
		t.Fatalf("found %d frames, want %d", len(boundaries), len(want))
	}

	for n := 0; n <= total; n++ {
		name := "torn.wal"
		tf, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tf.Write(raw[:n]); err != nil {
			t.Fatal(err)
		}
		tf.Close()

		complete := 0
		for _, b := range boundaries {
			if n >= b {
				complete++
			}
		}
		got := replayAll(t, fs, name)
		if len(got) != complete {
			t.Fatalf("prefix %d/%d bytes: replayed %d batches, want %d", n, total, len(got), complete)
		}
		for i, b := range got {
			if b.Seq != want[i].Seq || len(b.Ops) != len(want[i].Ops) {
				t.Fatalf("prefix %d: batch %d = seq %d/%d ops, want seq %d/%d ops",
					n, i, b.Seq, len(b.Ops), want[i].Seq, len(want[i].Ops))
			}
		}
	}
}

// frameBoundaries returns the end offset of each frame in raw.
func frameBoundaries(t *testing.T, raw []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(raw) {
		if len(raw)-off < 8 {
			t.Fatalf("trailing garbage at %d", off)
		}
		length := int(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += 8 + length
		ends = append(ends, off)
	}
	return ends
}
