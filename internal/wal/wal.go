// Package wal implements the write-ahead log that makes the in-memory
// buffer durable (tutorial §2.1.1 A: batched ingestion). Writes are
// grouped into batches; each batch is framed as
//
//	length (4 bytes LE) | crc32c (4 bytes LE) | payload
//
// and the payload encodes a base sequence number followed by the
// batch's operations. Recovery replays complete records and stops at
// the first torn or corrupt frame, which is the correct crash semantics
// for a log whose tail write may have been interrupted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged (non-tail) log structure.
var ErrCorrupt = errors.New("wal: corrupt record")

// Op is one operation within a batch.
type Op struct {
	Kind  kv.Kind
	Key   []byte
	Value []byte // end key for KindRangeDelete; value-log pointer for KindValuePointer
}

// Batch is an atomic group of operations sharing consecutive sequence
// numbers starting at Seq.
type Batch struct {
	Seq kv.SeqNum
	Ops []Op
}

// LastSeq returns the sequence number of the batch's final operation —
// the value a replication cursor resumes after.
func (b *Batch) LastSeq() kv.SeqNum { return b.Seq + kv.SeqNum(len(b.Ops)) - 1 }

// appendFrame encodes the batch's frame (header + payload) onto buf and
// returns the extended slice. The length and CRC are backfilled once the
// payload is in place, so a group of batches can be framed into one
// contiguous buffer without intermediate allocations.
func (b *Batch) appendFrame(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = binary.AppendUvarint(buf, uint64(b.Seq))
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func decodeBatch(payload []byte) (Batch, error) {
	var b Batch
	seq, off := binary.Uvarint(payload)
	if off <= 0 {
		return b, ErrCorrupt
	}
	b.Seq = kv.SeqNum(seq)
	count, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return b, ErrCorrupt
	}
	off += n
	b.Ops = make([]Op, 0, count)
	for i := uint64(0); i < count; i++ {
		if off >= len(payload) {
			return b, ErrCorrupt
		}
		op := Op{Kind: kv.Kind(payload[off])}
		off++
		for _, dst := range []*[]byte{&op.Key, &op.Value} {
			l, n := binary.Uvarint(payload[off:])
			if n <= 0 || off+n+int(l) > len(payload) {
				return b, ErrCorrupt
			}
			off += n
			*dst = append([]byte(nil), payload[off:off+int(l)]...)
			off += int(l)
		}
		b.Ops = append(b.Ops, op)
	}
	return b, nil
}

// DecodeFrame verifies and decodes one complete framed batch (header +
// payload) exactly as it sits in a log segment. The replication
// receiver runs every shipped frame through it, so the follower trusts
// the leader's original checksum, not the network's. Any damage — a
// short frame, a length or CRC mismatch, an undecodable payload — is
// ErrCorrupt.
func DecodeFrame(frame []byte) (Batch, error) {
	if len(frame) < 8 {
		return Batch{}, ErrCorrupt
	}
	length := int(binary.LittleEndian.Uint32(frame[:4]))
	if len(frame) != 8+length {
		return Batch{}, ErrCorrupt
	}
	payload := frame[8:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[4:8]) {
		return Batch{}, ErrCorrupt
	}
	return decodeBatch(payload)
}

// Writer appends batches to a log file. A Writer is not safe for
// concurrent use; the engine's commit pipeline guarantees one appender
// at a time (the group leader).
type Writer struct {
	f       vfs.File
	offset  int64
	scratch []byte // reusable frame buffer for Append/AppendGroup
}

// scratchCap bounds the retained frame buffer: a pathological group
// (huge values) should not pin its peak size forever.
const scratchCap = 4 << 20

// NewWriter returns a Writer appending to f.
func NewWriter(f vfs.File) *Writer { return &Writer{f: f} }

// Append frames and writes one batch, returning the bytes written.
func (w *Writer) Append(b *Batch) (int, error) {
	return w.AppendGroup([]*Batch{b})
}

// AppendGroup frames every batch of a commit group into one contiguous
// buffer and writes it with a single Write call — the group-commit I/O
// coalescing step. Each batch keeps its own frame (length | crc |
// payload), so crash recovery remains atomic per batch: a torn group
// write loses only the un-framed suffix, never a framed prefix batch.
func (w *Writer) AppendGroup(batches []*Batch) (int, error) {
	buf := w.scratch[:0]
	for _, b := range batches {
		buf = b.appendFrame(buf)
	}
	if cap(buf) <= scratchCap {
		w.scratch = buf[:0]
	} else {
		w.scratch = nil
	}
	n, err := w.f.Write(buf)
	w.offset += int64(n)
	return n, err
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Size returns the bytes appended so far.
func (w *Writer) Size() int64 { return w.offset }

// Replay reads every complete batch from the log file, invoking fn for
// each in order. A torn tail (truncated or corrupt final record) ends
// replay without error; corruption before the tail is reported.
func Replay(f vfs.File, fn func(Batch) error) error {
	size, err := f.Size()
	if err != nil {
		return err
	}
	var off int64
	hdr := make([]byte, 8)
	for off < size {
		if size-off < 8 {
			return nil // torn header at tail
		}
		if _, err := f.ReadAt(hdr, off); err != nil && err != io.EOF {
			return err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if off+8+length > size {
			return nil // torn payload at tail
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+8); err != nil && err != io.EOF {
			return err
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			// A bad CRC on the final record is a torn tail; earlier it is
			// real corruption.
			if off+8+length == size {
				return nil
			}
			return fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return fmt.Errorf("%w at offset %d: %v", ErrCorrupt, off, err)
		}
		if err := fn(batch); err != nil {
			return err
		}
		off += 8 + length
	}
	return nil
}
