package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"

	"lsmlab/internal/vfs"
)

// Cursor tails a directory of WAL segments behind a live writer — the
// read side of WAL shipping (internal/replica). It walks segments in
// numeric order, frame by frame, and distinguishes the three ways a
// read can stop short:
//
//   - io.EOF: the cursor is caught up with the writer (a torn or
//     incomplete frame at the tail of the NEWEST segment). The caller
//     polls and retries; the frame will complete or be overwritten by
//     a longer write.
//   - advance: an incomplete tail on a non-newest segment. Rotation
//     syncs and seals the old segment before creating its successor
//     (core.rotateMemtableLocked holds mu+walMu across the swap), so
//     the existence of segment n+1 proves segment n is final — the
//     cursor moves on.
//   - ErrGone: the cursor's position fell out of retention (the engine
//     deletes a segment once its memtable is flushed). The shipper
//     detects the sequence gap and falls back to Merkle repair.
//
// A Cursor holds at most one open file handle and is not safe for
// concurrent use.
type Cursor struct {
	fs  vfs.FS
	dir string

	seg  uint64 // current segment number (0 = none open yet)
	f    vfs.File
	off  int64
	name string // current segment's file name

	scratch []byte // reusable frame buffer returned by Next
}

// ErrGone reports that the cursor's segment was deleted (fell out of
// WAL retention) before it was fully read.
var ErrGone = errors.New("wal: segment deleted under cursor")

// NewCursor returns a cursor tailing the WAL segments of dir, starting
// at the oldest segment currently present.
func NewCursor(fs vfs.FS, dir string) *Cursor {
	return &Cursor{fs: fs, dir: dir}
}

// segNum parses a WAL segment file name ("000007.wal"); ok is false
// for anything else.
func segNum(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
	return n, err == nil
}

// segments lists the directory's WAL segment numbers in ascending
// order.
func (c *Cursor) segments() ([]uint64, error) {
	names, err := c.fs.List(c.dir)
	if err != nil {
		return nil, err
	}
	var nums []uint64
	for _, name := range names {
		if n, ok := segNum(name); ok {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// openSeg opens segment num and makes it current.
func (c *Cursor) openSeg(num uint64) error {
	name := fmt.Sprintf("%06d.wal", num)
	f, err := c.fs.Open(vfs.Join(c.dir, name))
	if err != nil {
		return fmt.Errorf("%w: %06d.wal: %v", ErrGone, num, err)
	}
	if c.f != nil {
		c.f.Close()
	}
	c.f, c.seg, c.off, c.name = f, num, 0, name
	return nil
}

// advance moves to the next segment after the current one, if one
// exists. Returns io.EOF when the current segment is still the newest.
func (c *Cursor) advance() error {
	nums, err := c.segments()
	if err != nil {
		return err
	}
	for _, n := range nums {
		if n > c.seg {
			return c.openSeg(n)
		}
	}
	return io.EOF
}

// Next returns the next complete batch, decoded, plus the raw frame
// bytes exactly as they sit in the log (length | crc | payload) — the
// shipper forwards the raw form so the follower can verify the
// original checksum. The returned slices are valid until the next
// call.
//
// Errors: io.EOF when caught up (retry later), ErrGone when retention
// deleted the cursor's position, ErrCorrupt for a damaged non-tail
// frame.
func (c *Cursor) Next() (Batch, []byte, error) {
	for {
		if c.f == nil {
			nums, err := c.segments()
			if err != nil {
				return Batch{}, nil, err
			}
			opened := false
			for _, n := range nums {
				if n > c.seg {
					if err := c.openSeg(n); err != nil {
						return Batch{}, nil, err
					}
					opened = true
					break
				}
			}
			if !opened {
				return Batch{}, nil, io.EOF
			}
		}
		frame, err := c.readFrame()
		if err == nil {
			b, derr := decodeBatch(frame[8:])
			if derr != nil {
				return Batch{}, nil, fmt.Errorf("%w in %s at offset %d", ErrCorrupt, c.name, c.off)
			}
			c.off += int64(len(frame))
			return b, frame, nil
		}
		if err != io.EOF {
			return Batch{}, nil, err
		}
		// Incomplete (or torn) at the current position: if a newer
		// segment exists this one is sealed and finished — advance;
		// otherwise we are tailing the live segment.
		switch aerr := c.advance(); aerr {
		case nil:
			continue
		case io.EOF:
			return Batch{}, nil, io.EOF
		default:
			return Batch{}, nil, aerr
		}
	}
}

// readFrame reads one complete frame at the current offset. io.EOF
// means the frame is not (yet) complete; ErrCorrupt means a bad
// checksum that cannot be a torn tail once a newer segment exists —
// the caller resolves which by whether it can advance.
func (c *Cursor) readFrame() ([]byte, error) {
	size, err := c.f.Size()
	if err != nil {
		return nil, err
	}
	if size-c.off < 8 {
		return nil, io.EOF
	}
	hdr := make([]byte, 8)
	if _, err := c.f.ReadAt(hdr, c.off); err != nil && err != io.EOF {
		return nil, err
	}
	length := int64(binary.LittleEndian.Uint32(hdr[:4]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if c.off+8+length > size {
		return nil, io.EOF
	}
	if cap(c.scratch) < int(8+length) {
		c.scratch = make([]byte, 8+length)
	}
	frame := c.scratch[:8+length]
	copy(frame, hdr)
	if _, err := c.f.ReadAt(frame[8:], c.off+8); err != nil && err != io.EOF {
		return nil, err
	}
	if crc32.Checksum(frame[8:], crcTable) != wantCRC {
		// A bad CRC on the final bytes of the segment is a torn tail
		// (report io.EOF so the caller waits or advances); anywhere
		// else it is real damage.
		if c.off+8+length == size {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w in %s at offset %d", ErrCorrupt, c.name, c.off)
	}
	return frame, nil
}

// Pos reports the cursor's current segment number and byte offset
// (diagnostics; lsmctl repl status renders it on the leader side).
func (c *Cursor) Pos() (seg uint64, off int64) { return c.seg, c.off }

// Close releases the cursor's file handle.
func (c *Cursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
