package wal

import (
	"errors"
	"fmt"
	"testing"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

func TestAppendReplayRoundtrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	batches := []*Batch{
		{Seq: 1, Ops: []Op{{Kind: kv.KindSet, Key: []byte("a"), Value: []byte("1")}}},
		{Seq: 2, Ops: []Op{
			{Kind: kv.KindSet, Key: []byte("b"), Value: []byte("2")},
			{Kind: kv.KindDelete, Key: []byte("a")},
		}},
		{Seq: 4, Ops: []Op{{Kind: kv.KindRangeDelete, Key: []byte("c"), Value: []byte("f")}}},
	}
	for _, b := range batches {
		if _, err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, _ := fs.Open("log")
	var got []*Batch
	err := Replay(rf, func(b Batch) error {
		got = append(got, &b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("replayed %d of %d", len(got), len(batches))
	}
	for i, b := range batches {
		if got[i].Seq != b.Seq || len(got[i].Ops) != len(b.Ops) {
			t.Fatalf("batch %d mismatch", i)
		}
		for j, op := range b.Ops {
			g := got[i].Ops[j]
			if g.Kind != op.Kind || string(g.Key) != string(op.Key) || string(g.Value) != string(op.Value) {
				t.Fatalf("batch %d op %d: %+v vs %+v", i, j, g, op)
			}
		}
	}
}

func TestReplayEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	f.Close()
	rf, _ := fs.Open("log")
	if err := Replay(rf, func(Batch) error { t.Fatal("unexpected batch"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func writeLog(t *testing.T, fs vfs.FS, n int) []byte {
	t.Helper()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	for i := 0; i < n; i++ {
		w.Append(&Batch{Seq: kv.SeqNum(i + 1), Ops: []Op{
			{Kind: kv.KindSet, Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte("v")},
		}})
	}
	f.Close()
	rf, _ := fs.Open("log")
	sz, _ := rf.Size()
	data := make([]byte, sz)
	rf.ReadAt(data, 0)
	rf.Close()
	return data
}

func replayBytes(t *testing.T, data []byte) (int, error) {
	t.Helper()
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	f.Write(data)
	f.Close()
	rf, _ := fs.Open("log")
	count := 0
	err := Replay(rf, func(Batch) error { count++; return nil })
	return count, err
}

func TestReplayTornTailTruncatedPayload(t *testing.T) {
	data := writeLog(t, vfs.NewMem(), 3)
	// Chop mid-way through the final record's payload.
	count, err := replayBytes(t, data[:len(data)-3])
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("replayed %d, want 2", count)
	}
}

func TestReplayTornTailTruncatedHeader(t *testing.T) {
	data := writeLog(t, vfs.NewMem(), 2)
	// Leave only 4 bytes of the second record's header... find first
	// record length.
	first := 8 + int(uint32(data[0])|uint32(data[1])<<8|uint32(data[2])<<16|uint32(data[3])<<24)
	count, err := replayBytes(t, data[:first+4])
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("replayed %d, want 1", count)
	}
}

func TestReplayCorruptTailIgnored(t *testing.T) {
	data := writeLog(t, vfs.NewMem(), 3)
	// Flip a payload byte in the last record.
	data[len(data)-1] ^= 0xff
	count, err := replayBytes(t, data)
	if err != nil {
		t.Fatalf("corrupt tail should be treated as torn: %v", err)
	}
	if count != 2 {
		t.Errorf("replayed %d, want 2", count)
	}
}

func TestReplayMidCorruptionReported(t *testing.T) {
	data := writeLog(t, vfs.NewMem(), 5)
	// Corrupt the first record's payload: not the tail, must error.
	data[9] ^= 0xff
	_, err := replayBytes(t, data)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-log corruption not reported: %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	data := writeLog(t, vfs.NewMem(), 3)
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	f.Write(data)
	f.Close()
	rf, _ := fs.Open("log")
	sentinel := errors.New("stop")
	err := Replay(rf, func(Batch) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestWriterSizeTracking(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	if w.Size() != 0 {
		t.Error("fresh writer size")
	}
	n, _ := w.Append(&Batch{Seq: 1, Ops: []Op{{Kind: kv.KindSet, Key: []byte("k"), Value: []byte("v")}}})
	if w.Size() != int64(n) || n <= 8 {
		t.Errorf("size=%d n=%d", w.Size(), n)
	}
}

func TestLargeBatch(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("log")
	w := NewWriter(f)
	b := &Batch{Seq: 100}
	for i := 0; i < 10000; i++ {
		b.Ops = append(b.Ops, Op{Kind: kv.KindSet, Key: []byte(fmt.Sprintf("key-%06d", i)), Value: make([]byte, 100)})
	}
	if _, err := w.Append(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, _ := fs.Open("log")
	var got Batch
	if err := Replay(rf, func(b Batch) error { got = b; return nil }); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 100 || len(got.Ops) != 10000 {
		t.Errorf("seq=%d ops=%d", got.Seq, len(got.Ops))
	}
}
