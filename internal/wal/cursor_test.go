package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

func segName(n uint64) string { return fmt.Sprintf("%06d.wal", n) }

func writeBatches(t *testing.T, fs vfs.FS, dir string, seg uint64, batches ...*Batch) {
	t.Helper()
	f, err := fs.Append(vfs.Join(dir, segName(seg)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f)
	for _, b := range batches {
		if _, err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

func mkBatch(seq uint64, keys ...string) *Batch {
	b := &Batch{Seq: kv.SeqNum(seq)}
	for _, k := range keys {
		b.Ops = append(b.Ops, Op{Kind: kv.KindSet, Key: []byte(k), Value: []byte("v-" + k)})
	}
	return b
}

func TestCursorReadsAcrossSegments(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	writeBatches(t, fs, dir, 1, mkBatch(2, "a"), mkBatch(3, "b", "c"))
	writeBatches(t, fs, dir, 3, mkBatch(5, "d")) // gap in segment numbers is normal

	c := NewCursor(fs, dir)
	defer c.Close()
	var seqs []uint64
	for {
		b, raw, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < 8 {
			t.Fatalf("raw frame too short: %d", len(raw))
		}
		seqs = append(seqs, uint64(b.Seq))
	}
	want := []uint64{2, 3, 5}
	if len(seqs) != len(want) {
		t.Fatalf("got seqs %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("got seqs %v, want %v", seqs, want)
		}
	}
}

func TestCursorTornTailStopsThenResumes(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	writeBatches(t, fs, dir, 1, mkBatch(2, "a"))

	// Append a torn frame by hand: a valid header promising more
	// payload than is present.
	full := mkBatch(3, "bb").appendFrame(nil)
	f, err := fs.Append(vfs.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}

	c := NewCursor(fs, dir)
	defer c.Close()
	if b, _, err := c.Next(); err != nil || b.Seq != 2 {
		t.Fatalf("first batch: seq %d err %v", b.Seq, err)
	}
	// The torn tail on the newest segment means "caught up": io.EOF,
	// repeatedly, without advancing past the damage.
	for i := 0; i < 3; i++ {
		if _, _, err := c.Next(); err != io.EOF {
			t.Fatalf("torn tail: want io.EOF, got %v", err)
		}
	}
	// The writer finishes the frame; the cursor picks it up in place.
	if _, err := f.Write(full[len(full)-3:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if b, _, err := c.Next(); err != nil || b.Seq != 3 {
		t.Fatalf("resumed batch: seq %d err %v", b.Seq, err)
	}
}

func TestCursorAdvancesPastSealedTornTail(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	// Segment 1 ends in a torn frame, but segment 2 exists: rotation
	// seals segments before creating successors, so the cursor must
	// treat the torn bytes as final garbage and advance.
	writeBatches(t, fs, dir, 1, mkBatch(2, "a"))
	full := mkBatch(3, "b").appendFrame(nil)
	f, _ := fs.Append(vfs.Join(dir, segName(1)))
	f.Write(full[:len(full)-1])
	f.Close()
	writeBatches(t, fs, dir, 2, mkBatch(3, "b"))

	c := NewCursor(fs, dir)
	defer c.Close()
	if b, _, err := c.Next(); err != nil || b.Seq != 2 {
		t.Fatalf("first batch: seq %d err %v", b.Seq, err)
	}
	if b, _, err := c.Next(); err != nil || b.Seq != 3 {
		t.Fatalf("after sealed torn tail: seq %d err %v", b.Seq, err)
	}
	if _, _, err := c.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at live tail, got %v", err)
	}
}

func TestCursorErrGone(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	writeBatches(t, fs, dir, 1, mkBatch(2, "a"))

	c := NewCursor(fs, dir)
	defer c.Close()
	// Sabotage: the segment is listed but unopenable (deleted between
	// the listing and the open is the race this models). Remove on
	// MemFS drops it from the listing too, so simulate by pointing the
	// cursor past a segment that only briefly existed.
	if b, _, err := c.Next(); err != nil || b.Seq != 2 {
		t.Fatalf("first batch: seq %d err %v", b.Seq, err)
	}
	// Retention deletes segment 1 and the writer has moved to segment
	// 5; batches 3..9 are gone. The cursor just reports what remains —
	// the seq-contiguity check above it detects the gap.
	fs.Remove(vfs.Join(dir, segName(1)))
	writeBatches(t, fs, dir, 5, mkBatch(10, "z"))
	b, _, err := c.Next()
	if err != nil || b.Seq != 10 {
		t.Fatalf("post-retention batch: seq %d err %v", b.Seq, err)
	}
}

func TestCursorBehindConcurrentWriter(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	f, err := fs.Create(vfs.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := NewWriter(f)
		for i := 0; i < n; i++ {
			if _, err := w.Append(mkBatch(uint64(2+i), fmt.Sprintf("k%04d", i))); err != nil {
				t.Error(err)
				return
			}
			if i%37 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	c := NewCursor(fs, dir)
	defer c.Close()
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < n {
		b, _, err := c.Next()
		if err == io.EOF {
			if time.Now().After(deadline) {
				t.Fatalf("timed out at %d/%d batches", got, n)
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(2 + got); uint64(b.Seq) != want {
			t.Fatalf("batch %d: seq %d, want %d", got, b.Seq, want)
		}
		got++
	}
	wg.Wait()
	f.Close()
}

func TestCursorMidSegmentCorruption(t *testing.T) {
	fs := vfs.NewMem()
	dir := "db"
	fs.MkdirAll(dir)
	// Frame 1 valid, frame 2 corrupt (bad CRC), frame 3 valid after it:
	// the corruption is not at the tail, so it must be reported.
	buf := mkBatch(2, "a").appendFrame(nil)
	bad := mkBatch(3, "b").appendFrame(nil)
	bad[len(bad)-1] ^= 0xFF // flip a payload bit; CRC now mismatches
	buf = append(buf, bad...)
	buf = append(buf, mkBatch(4, "c").appendFrame(nil)...)
	f, _ := fs.Create(vfs.Join(dir, segName(1)))
	f.Write(buf)
	f.Close()

	c := NewCursor(fs, dir)
	defer c.Close()
	if b, _, err := c.Next(); err != nil || b.Seq != 2 {
		t.Fatalf("first batch: seq %d err %v", b.Seq, err)
	}
	if _, _, err := c.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for mid-segment damage, got %v", err)
	}
}
