// Package trace provides cheap per-operation request tracing for the
// engine and the serving layer. A Span carries a 64-bit trace id, the
// operation name, coarse stage timings, and access-path annotations
// (runs probed, filter probes and outcomes, blocks read vs cache-hit,
// stall and commit-wait time, value-log hops) — the per-request
// counterpart of the engine-wide counters in internal/metrics, in the
// spirit of RocksDB's PerfContext.
//
// Cost model: a nil *Tracer is fully inert — Start returns a nil
// *Span, and every Span method is a nil-check away from free — so a DB
// without tracing pays a single pointer compare per operation and
// allocates nothing. With a Tracer attached, spans are pooled and the
// bounded ring stores them by value, so the steady state allocates
// nothing either; the cost is the clock reads and counter bumps.
//
// Retention: a finished span is kept in the ring if it was sampled
// (every Options.SampleEvery-th operation), exceeded the slow-op
// threshold (Options.SlowNs), or was explicitly retained (wire-traced
// requests, background jobs). Sampling is decided at Start (head
// sampling): when no slow threshold is armed, an unsampled operation
// never could be retained, so it gets a nil span and pays nothing at
// all. Arming SlowNs switches to annotating every operation — the only
// way to catch the worst requests — at the cost of a span per op.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Operation names used by the engine and server. Spans are not limited
// to these; any short stable string works.
const (
	OpGet        = "get"
	OpPut        = "put"
	OpBatch      = "batch"
	OpScan       = "scan"
	OpFlush      = "flush"
	OpCompaction = "compaction"
)

// MaxStages bounds the per-span stage array. Spans are fixed-size so
// the capture ring holds them by value with no per-span allocation;
// stages past the bound are dropped (and counted in TruncatedStages).
const MaxStages = 8

// Stage is one named phase of an operation with its duration.
type Stage struct {
	Name  string `json:"name"`
	DurNs int64  `json:"dur_ns"`
}

// Span is the record of one operation. All methods are safe on a nil
// receiver (no-ops), so instrumentation sites never branch on whether
// tracing is enabled.
type Span struct {
	TraceID uint64 // request identity, propagated across the wire
	Op      string
	StartNs int64
	DurNs   int64

	// Retention verdicts, set by Tracer.Finish.
	Sampled bool
	Slow    bool

	// Read-path annotations.
	Runs             int32 // sorted runs probed
	FilterProbes     int32
	FilterNegatives  int32
	FilterFalsePos   int32
	BlockReads       int32 // data blocks fetched (including cache hits)
	BlockReadsCached int32 // subset served from the block cache
	VlogReads        int32 // WiscKey value-log hops

	// Write-path annotations.
	Batches      int32 // commit-group size observed by this op's group
	StallNs      int64 // time blocked in write stalls
	CommitWaitNs int64 // time waiting for WAL write + publish

	Entries int32 // entries returned (scans) or applied (batches)
	Bytes   int64 // payload bytes touched
	// Tenant is the key-prefix namespace the operation touched (the
	// admission-control identity; empty for the default tenant and for
	// background jobs).
	Tenant string
	Err    string

	TruncatedStages int32 // stages dropped past MaxStages

	keep    bool
	nstages int32
	stages  [MaxStages]Stage
}

// Stage records one named phase duration.
func (sp *Span) Stage(name string, durNs int64) {
	if sp == nil {
		return
	}
	if int(sp.nstages) >= MaxStages {
		sp.TruncatedStages++
		return
	}
	sp.stages[sp.nstages] = Stage{Name: name, DurNs: durNs}
	sp.nstages++
}

// StageSince records a phase spanning [startNs, nowNs].
func (sp *Span) StageSince(name string, startNs, nowNs int64) {
	sp.Stage(name, nowNs-startNs)
}

// Stages returns a copy of the recorded stages in order.
func (sp *Span) Stages() []Stage {
	if sp == nil || sp.nstages == 0 {
		return nil
	}
	out := make([]Stage, sp.nstages)
	copy(out, sp.stages[:sp.nstages])
	return out
}

// FilterProbe mirrors sstable.ReadStats: one Bloom-filter probe.
func (sp *Span) FilterProbe(negative bool) {
	if sp == nil {
		return
	}
	sp.FilterProbes++
	if negative {
		sp.FilterNegatives++
	}
}

// BlockRead mirrors sstable.ReadStats: one data-block fetch.
func (sp *Span) BlockRead(cached bool) {
	if sp == nil {
		return
	}
	sp.BlockReads++
	if cached {
		sp.BlockReadsCached++
	}
}

// AddRun counts one sorted run probed.
func (sp *Span) AddRun() {
	if sp != nil {
		sp.Runs++
	}
}

// AddFalsePositive counts one filter pass that found nothing.
func (sp *Span) AddFalsePositive() {
	if sp != nil {
		sp.FilterFalsePos++
	}
}

// AddVlogRead counts one value-log hop.
func (sp *Span) AddVlogRead() {
	if sp != nil {
		sp.VlogReads++
	}
}

// AddEntries accumulates returned/applied entries.
func (sp *Span) AddEntries(n int) {
	if sp != nil {
		sp.Entries += int32(n)
	}
}

// AddBytes accumulates payload bytes.
func (sp *Span) AddBytes(n int64) {
	if sp != nil {
		sp.Bytes += n
	}
}

// AddStallNs accumulates write-stall time absorbed by this op's group.
func (sp *Span) AddStallNs(ns int64) {
	if sp != nil {
		sp.StallNs += ns
	}
}

// AddCommitWaitNs accumulates time spent waiting on the commit
// pipeline (group formation, WAL write, ordered publish).
func (sp *Span) AddCommitWaitNs(ns int64) {
	if sp != nil {
		sp.CommitWaitNs += ns
	}
}

// SetBatches records the size of the commit group this op rode in.
func (sp *Span) SetBatches(n int32) {
	if sp != nil {
		sp.Batches = n
	}
}

// SetTenant records the key-prefix namespace the operation touched.
func (sp *Span) SetTenant(tenant string) {
	if sp != nil {
		sp.Tenant = tenant
	}
}

// SetErr records the operation's error (nil clears nothing).
func (sp *Span) SetErr(err error) {
	if sp != nil && err != nil {
		sp.Err = err.Error()
	}
}

// Retain marks the span for unconditional capture regardless of
// sampling — background jobs use it so /traces always shows them.
func (sp *Span) Retain() {
	if sp != nil {
		sp.keep = true
	}
}

// ID returns the span's trace id (0 on a nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.TraceID
}

// spanJSON is the wire shape of one captured span (/traces).
type spanJSON struct {
	TraceID string  `json:"trace_id"`
	Op      string  `json:"op"`
	StartNs int64   `json:"start_ns"`
	DurNs   int64   `json:"dur_ns"`
	Sampled bool    `json:"sampled"`
	Slow    bool    `json:"slow"`
	Stages  []Stage `json:"stages,omitempty"`

	Runs             int32  `json:"runs,omitempty"`
	FilterProbes     int32  `json:"filter_probes,omitempty"`
	FilterNegatives  int32  `json:"filter_negatives,omitempty"`
	FilterFalsePos   int32  `json:"filter_false_pos,omitempty"`
	BlockReads       int32  `json:"block_reads,omitempty"`
	BlockReadsCached int32  `json:"block_reads_cached,omitempty"`
	VlogReads        int32  `json:"vlog_reads,omitempty"`
	Batches          int32  `json:"batches,omitempty"`
	StallNs          int64  `json:"stall_ns,omitempty"`
	CommitWaitNs     int64  `json:"commit_wait_ns,omitempty"`
	Entries          int32  `json:"entries,omitempty"`
	Bytes            int64  `json:"bytes,omitempty"`
	Tenant           string `json:"tenant,omitempty"`
	Err              string `json:"err,omitempty"`
}

// MarshalJSON renders the span with only its live stages.
func (sp Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{
		TraceID:          fmt.Sprintf("%016x", sp.TraceID),
		Op:               sp.Op,
		StartNs:          sp.StartNs,
		DurNs:            sp.DurNs,
		Sampled:          sp.Sampled,
		Slow:             sp.Slow,
		Stages:           (&sp).Stages(),
		Runs:             sp.Runs,
		FilterProbes:     sp.FilterProbes,
		FilterNegatives:  sp.FilterNegatives,
		FilterFalsePos:   sp.FilterFalsePos,
		BlockReads:       sp.BlockReads,
		BlockReadsCached: sp.BlockReadsCached,
		VlogReads:        sp.VlogReads,
		Batches:          sp.Batches,
		StallNs:          sp.StallNs,
		CommitWaitNs:     sp.CommitWaitNs,
		Entries:          sp.Entries,
		Bytes:            sp.Bytes,
		Tenant:           sp.Tenant,
		Err:              sp.Err,
	})
}

// Options configures a Tracer. The zero value keeps only slow spans
// once a SlowNs is set; with neither SampleEvery nor SlowNs, spans are
// annotated but never retained (useful for pure wire-id propagation).
type Options struct {
	// SampleEvery retains every Nth finished span (1 = all, 0 = none).
	SampleEvery int
	// SlowNs always retains spans at least this slow (0 disables).
	SlowNs int64
	// RingSize bounds the capture ring. Default 256.
	RingSize int
	// NowNs supplies time (injected for deterministic tests).
	NowNs func() int64
	// Seed perturbs trace-id generation (0 seeds from the clock).
	Seed uint64
}

// Tracer mints, times, and selectively captures spans. Safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Tracer struct {
	sampleEvery uint64
	slowNs      int64
	nowNs       func() int64
	seed        uint64

	sampleCtr atomic.Uint64
	idCtr     atomic.Uint64
	started   atomic.Uint64
	retained  atomic.Uint64

	pool sync.Pool

	mu   sync.Mutex
	ring []Span
	next int
	n    int
}

// New returns a Tracer with the given retention policy.
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	if opts.NowNs == nil {
		opts.NowNs = func() int64 { return time.Now().UnixNano() }
	}
	if opts.Seed == 0 {
		opts.Seed = uint64(opts.NowNs())
	}
	t := &Tracer{
		sampleEvery: uint64(max(opts.SampleEvery, 0)),
		slowNs:      opts.SlowNs,
		nowNs:       opts.NowNs,
		seed:        opts.Seed,
		ring:        make([]Span, opts.RingSize),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Mix64 is SplitMix64 — the id hash the tracer uses. Exported so other
// components (the network client) can mint compatible trace ids from
// their own seed and counter.
func Mix64(x uint64) uint64 { return mix64(x) }

// mix64 is SplitMix64's finalizer — a cheap, well-distributed id hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID mints a non-zero trace id (0 means "untraced" on the wire).
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	id := mix64(t.seed + t.idCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Start begins a span for op with a fresh trace id. Returns nil (and
// costs nothing downstream) on a nil Tracer, and — head sampling — on
// an unsampled operation when no slow threshold is armed.
func (t *Tracer) Start(op string) *Span { return t.StartID(op, 0) }

// StartID begins a span with a caller-supplied trace id — the wire-
// propagated case. id 0 mints a fresh one. Wire-supplied ids bypass
// sampling: the caller explicitly asked for this request to be traced.
func (t *Tracer) StartID(op string, id uint64) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	sampled, keep := false, false
	if id == 0 {
		// The sampling verdict lands at Start, not Finish: with no slow
		// threshold an unsampled span could never be retained, so the
		// operation skips span bookkeeping (and its clock reads) entirely.
		sampled = t.sampleEvery == 1 ||
			(t.sampleEvery > 1 && t.sampleCtr.Add(1)%t.sampleEvery == 0)
		if !sampled && t.slowNs == 0 {
			return nil
		}
		id = t.NewID()
	} else {
		// A caller-supplied id is an explicit request to trace this op,
		// so the span is captured regardless of the sampling policy.
		keep = true
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{}
	sp.TraceID = id
	sp.Op = op
	sp.Sampled = sampled
	sp.keep = keep
	sp.StartNs = t.nowNs()
	return sp
}

// StartRetained begins a span that bypasses sampling and is always
// captured at Finish — for rare, always-interesting background jobs
// (flush, compaction) that head sampling must not drop.
func (t *Tracer) StartRetained(op string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	sp := t.pool.Get().(*Span)
	*sp = Span{}
	sp.TraceID = t.NewID()
	sp.Op = op
	sp.keep = true
	sp.StartNs = t.nowNs()
	return sp
}

// Finish stamps the span's duration, applies the retention policy
// (sampling decided at Start, slow threshold, explicit Retain), and
// recycles the span. The span must not be touched after Finish.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.DurNs = t.nowNs() - sp.StartNs
	if t.slowNs > 0 && sp.DurNs >= t.slowNs {
		sp.Slow = true
	}
	if sp.Sampled || sp.Slow || sp.keep {
		t.retained.Add(1)
		t.mu.Lock()
		t.ring[t.next] = *sp
		t.next = (t.next + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
		t.mu.Unlock()
	}
	t.pool.Put(sp)
}

// Spans returns the captured spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Started returns how many spans were begun.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Retained returns how many spans passed retention into the ring
// (including those since overwritten).
func (t *Tracer) Retained() uint64 {
	if t == nil {
		return 0
	}
	return t.retained.Load()
}
