package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fakeClock is a deterministic nanosecond clock.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64      { return c.now }
func (c *fakeClock) Advance(d int64) { c.now += d }

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(OpGet)
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	// Every span method must be a no-op on nil.
	sp.Stage("x", 1)
	sp.StageSince("y", 0, 1)
	sp.FilterProbe(true)
	sp.BlockRead(false)
	sp.AddRun()
	sp.AddFalsePositive()
	sp.AddVlogRead()
	sp.AddEntries(3)
	sp.AddBytes(9)
	sp.SetErr(nil)
	sp.Retain()
	if sp.ID() != 0 || sp.Stages() != nil {
		t.Fatal("nil span leaked state")
	}
	tr.Finish(sp)
	if tr.Spans() != nil || tr.Started() != 0 || tr.Retained() != 0 || tr.NewID() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

func TestSlowThresholdCapturesWorstOps(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SlowNs: 100, RingSize: 4, NowNs: clk.Now, Seed: 7})

	fast := tr.Start(OpGet)
	clk.Advance(50)
	tr.Finish(fast)
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("fast span retained: %v", got)
	}

	slow := tr.Start(OpGet)
	slow.AddRun()
	slow.BlockRead(false)
	clk.Advance(150)
	tr.Finish(slow)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	got := spans[0]
	if !got.Slow || got.Sampled {
		t.Fatalf("slow span flags = slow:%v sampled:%v", got.Slow, got.Sampled)
	}
	if got.DurNs != 150 || got.Runs != 1 || got.BlockReads != 1 {
		t.Fatalf("annotations lost: %+v", got)
	}
	if tr.Started() != 2 || tr.Retained() != 1 {
		t.Fatalf("counters: started=%d retained=%d", tr.Started(), tr.Retained())
	}
}

func TestSamplingRate(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleEvery: 10, RingSize: 1024, NowNs: clk.Now, Seed: 7})
	for i := 0; i < 100; i++ {
		sp := tr.Start(OpPut)
		clk.Advance(1)
		tr.Finish(sp)
	}
	if got := len(tr.Spans()); got != 10 {
		t.Fatalf("1-in-10 sampling over 100 ops retained %d, want 10", got)
	}
	for _, sp := range tr.Spans() {
		if !sp.Sampled || sp.Slow {
			t.Fatalf("span flags = %+v", sp)
		}
	}

	// SampleEvery 1 keeps everything.
	all := New(Options{SampleEvery: 1, RingSize: 8, NowNs: clk.Now, Seed: 7})
	sp := all.Start(OpScan)
	all.Finish(sp)
	if len(all.Spans()) != 1 {
		t.Fatal("SampleEvery=1 dropped a span")
	}
}

func TestRingBoundAndOrder(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleEvery: 1, RingSize: 3, NowNs: clk.Now, Seed: 7})
	for i := 0; i < 5; i++ {
		sp := tr.Start(OpGet)
		sp.AddEntries(i)
		clk.Advance(1)
		tr.Finish(sp)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring held %d, want 3", len(spans))
	}
	// Oldest first: entries 2, 3, 4 survive.
	for i, want := range []int32{2, 3, 4} {
		if spans[i].Entries != want {
			t.Fatalf("span[%d].Entries = %d, want %d", i, spans[i].Entries, want)
		}
	}
	if tr.Retained() != 5 {
		t.Fatalf("retained = %d, want 5", tr.Retained())
	}
}

func TestRetainForcesCaptureAndStages(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{RingSize: 4, NowNs: clk.Now, Seed: 7}) // no sampling, no slow
	// Head sampling gives plain Start a nil span here; background jobs
	// use StartRetained, which always produces a captured span.
	if tr.Start(OpFlush) != nil {
		t.Fatal("unsampled Start without a slow threshold must return nil")
	}
	sp := tr.StartRetained(OpFlush)
	start := clk.Now()
	clk.Advance(40)
	sp.StageSince("build", start, clk.Now())
	sp.Stage("install", 2)
	tr.Finish(sp)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained span missing: %d", len(spans))
	}
	st := spans[0].Stages()
	if len(st) != 2 || st[0] != (Stage{Name: "build", DurNs: 40}) || st[1] != (Stage{Name: "install", DurNs: 2}) {
		t.Fatalf("stages = %v", st)
	}
}

func TestStageOverflowTruncates(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleEvery: 1, RingSize: 2, NowNs: clk.Now, Seed: 7})
	sp := tr.Start(OpGet)
	for i := 0; i < MaxStages+3; i++ {
		sp.Stage("s", int64(i))
	}
	tr.Finish(sp)
	got := tr.Spans()[0]
	if len(got.Stages()) != MaxStages || got.TruncatedStages != 3 {
		t.Fatalf("stages=%d truncated=%d", len(got.Stages()), got.TruncatedStages)
	}
}

func TestStartIDPropagatesAndMintsNonZero(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleEvery: 1, RingSize: 4, NowNs: clk.Now, Seed: 7})
	sp := tr.StartID(OpGet, 0xabcd)
	if sp.ID() != 0xabcd {
		t.Fatalf("propagated id = %x", sp.ID())
	}
	tr.Finish(sp)
	sp2 := tr.StartID(OpGet, 0)
	if sp2.ID() == 0 {
		t.Fatal("minted id must be non-zero")
	}
	tr.Finish(sp2)
	// IDs from one tracer should not repeat over a small horizon.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := tr.NewID()
		if id == 0 || seen[id] {
			t.Fatalf("id collision or zero at %d: %x", i, id)
		}
		seen[id] = true
	}
}

func TestSpanJSONShape(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleEvery: 1, RingSize: 2, NowNs: clk.Now, Seed: 7})
	sp := tr.StartID(OpGet, 0x1234)
	sp.Stage("search", 10)
	sp.AddRun()
	sp.FilterProbe(false)
	sp.BlockRead(true)
	clk.Advance(25)
	tr.Finish(sp)

	raw, err := json.Marshal(tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{
		`"trace_id":"0000000000001234"`, `"op":"get"`, `"dur_ns":25`,
		`"stages":[{"name":"search","dur_ns":10}]`, `"runs":1`,
		`"filter_probes":1`, `"block_reads":1`, `"block_reads_cached":1`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s in %s", want, s)
		}
	}
	// A decoded generic structure must round-trip (valid JSON array).
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d spans", len(decoded))
	}
}

func TestConcurrentFinishIsRaceFree(t *testing.T) {
	tr := New(Options{SampleEvery: 2, SlowNs: 1, RingSize: 64, Seed: 7})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start(OpPut)
				sp.AddRun()
				sp.Stage("s", 1)
				tr.Finish(sp)
			}
		}()
	}
	wg.Wait()
	if tr.Started() != 4000 {
		t.Fatalf("started = %d", tr.Started())
	}
	if got := len(tr.Spans()); got == 0 {
		t.Fatal("no spans retained under concurrency")
	}
}

func BenchmarkStartFinishDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(OpPut)
		sp.AddRun()
		tr.Finish(sp)
	}
}

func BenchmarkStartFinishSampled(b *testing.B) {
	tr := New(Options{SampleEvery: 100, RingSize: 256, Seed: 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(OpPut)
		sp.AddRun()
		tr.Finish(sp)
	}
}
