package client

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/wire"
)

// pipelineDepth bounds in-flight requests per connection; senders
// block (briefly) when the window is full, a natural cap on how far a
// producer can run ahead of the server.
const pipelineDepth = 4096

// call is one in-flight request awaiting its response.
type call struct {
	status  byte
	payload []byte
	err     error
	done    chan struct{}
}

// wait blocks for the response, the timeout, or connection death. On
// timeout the connection is poisoned: a late response could otherwise
// be matched to the wrong request.
func (cl *call) wait(timeout time.Duration, cn *conn) (byte, []byte, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-cl.done:
		if cl.err != nil {
			return 0, nil, cl.err
		}
		return cl.status, cl.payload, nil
	case <-timer:
		cn.fail(ErrTimeout)
		// The receive loop may have completed the call between the
		// timer firing and the poison taking effect; prefer the result.
		select {
		case <-cl.done:
			if cl.err == nil {
				return cl.status, cl.payload, nil
			}
		default:
		}
		return 0, nil, ErrTimeout
	}
}

// conn is one pipelined connection: frames go out under wmu (enqueue
// then write, so pending order matches wire order) and a single
// receive goroutine completes pending calls strictly FIFO.
type conn struct {
	nc  net.Conn
	bw  *bufio.Writer
	max int

	wmu     sync.Mutex
	pending chan *call

	dead    atomic.Bool
	failMu  sync.Mutex
	failErr error
}

func newClientConn(nc net.Conn, max int) *conn {
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		max:     max,
		pending: make(chan *call, pipelineDepth),
	}
	go c.recvLoop()
	return c
}

// send writes one request frame and registers its call. With flush
// false the frame may sit in the write buffer until a later flush —
// the pipelining fast path.
func (c *conn) send(op byte, payload []byte, flush bool) (*call, error) {
	cl := &call{done: make(chan struct{})}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.dead.Load() {
		return nil, c.failure()
	}
	select {
	case c.pending <- cl:
	default:
		return nil, errors.New("lsmclient: pipeline window full")
	}
	frame := wire.AppendFrame(nil, op, payload)
	if _, err := c.bw.Write(frame); err != nil {
		c.fail(err)
		return nil, err
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.fail(err)
			return nil, err
		}
	}
	return cl, nil
}

// flush pushes any buffered frames to the wire.
func (c *conn) flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.dead.Load() {
		return c.failure()
	}
	if err := c.bw.Flush(); err != nil {
		c.fail(err)
		return err
	}
	return nil
}

// recvLoop completes pending calls in FIFO order as responses arrive.
func (c *conn) recvLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		// Fresh scratch per frame: payloads are handed to callers.
		op, payload, _, err := wire.ReadFrame(br, c.max, nil)
		if err != nil {
			c.fail(err)
			return
		}
		select {
		case cl := <-c.pending:
			cl.status = op
			cl.payload = payload
			close(cl.done)
		default:
			c.fail(errors.New("lsmclient: response with no pending request"))
			return
		}
	}
}

// fail marks the connection dead exactly once, closes it, and fails
// every pending call. Callers that raced a completed call still see
// its result.
func (c *conn) fail(err error) {
	c.failMu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	first := !c.dead.Swap(true)
	c.failMu.Unlock()
	if !first {
		return
	}
	c.nc.Close()
	// The receive loop exits on the closed socket; drain everything it
	// will never complete. Senders check dead under wmu before
	// enqueueing, so this drain is eventually exhaustive.
	for {
		select {
		case cl := <-c.pending:
			cl.err = c.failure()
			close(cl.done)
		default:
			return
		}
	}
}

func (c *conn) failure() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failErr == nil {
		return errors.New("lsmclient: connection failed")
	}
	return c.failErr
}
