package client

import "lsmlab/internal/wire"

// Pipeline pins one pooled connection and issues requests without
// waiting for responses, so a single goroutine can keep many writes in
// flight — the client-side half of the server's write coalescing.
// Because requests on one connection are answered (and, for writes,
// made visible) in order, a Get pipelined after a Put of the same key
// observes it: read-your-writes per connection.
//
// Requests buffer in the connection's writer; Flush pushes them out,
// and waiting on any Future flushes first, so waiting cannot deadlock.
// A Pipeline is not safe for concurrent use; open one per goroutine
// (each pins its own pool slot round-robin).
type Pipeline struct {
	cl *Client
	cn *conn
}

// Pipeline returns a pipeline pinned to one pooled connection.
func (c *Client) Pipeline() (*Pipeline, error) {
	slot := int(c.rr.Add(1)-1) % c.opts.PoolSize
	cn, err := c.connAt(slot)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cl: c, cn: cn}, nil
}

// Future is one pipelined request's pending result.
type Future struct {
	p    *Pipeline
	call *call
	err  error // send-time failure; set when call is nil
}

func (p *Pipeline) enqueue(op byte, payload []byte) *Future {
	cl, err := p.cn.send(op, payload, false)
	if err != nil {
		return &Future{p: p, err: err}
	}
	return &Future{p: p, call: cl}
}

// Put pipelines a write; the returned Future resolves when the server
// acknowledges it.
func (p *Pipeline) Put(key, value []byte) *Future {
	payload := wire.AppendBytes(nil, key)
	payload = wire.AppendBytes(payload, value)
	return p.enqueue(wire.OpPut, payload)
}

// Delete pipelines a tombstone write.
func (p *Pipeline) Delete(key []byte) *Future {
	return p.enqueue(wire.OpDelete, wire.AppendBytes(nil, key))
}

// Get pipelines a point lookup; resolve it with Future.Value.
func (p *Pipeline) Get(key []byte) *Future {
	return p.enqueue(wire.OpGet, wire.AppendBytes(nil, key))
}

// Apply pipelines an atomic batch. An empty batch resolves to an
// already-acknowledged no-op without touching the wire.
func (p *Pipeline) Apply(b *Batch) *Future {
	if b.Len() == 0 {
		return &Future{p: p}
	}
	return p.enqueue(wire.OpBatch, b.payload())
}

// Flush pushes all buffered requests to the wire.
func (p *Pipeline) Flush() error { return p.cn.flush() }

// wait flushes (so the awaited request is actually on the wire) and
// blocks for the response under the client's request timeout.
func (f *Future) wait() (byte, []byte, error) {
	if f.call == nil {
		if f.err != nil {
			return 0, nil, f.err
		}
		// No call and no error: a resolved no-op (empty-batch Apply).
		return wire.StatusOK, nil, nil
	}
	if err := f.p.cn.flush(); err != nil {
		// The call may still complete (failure drains pending); fall
		// through to wait, which surfaces the connection error.
		_ = err
	}
	return f.call.wait(f.p.cl.opts.RequestTimeout, f.p.cn)
}

// Err resolves a write/batch future: nil on acknowledgment.
func (f *Future) Err() error {
	status, payload, err := f.wait()
	if err != nil {
		return err
	}
	return statusToErr(status, payload)
}

// Value resolves a Get future: the value, ErrNotFound, or a transport
// or server error.
func (f *Future) Value() ([]byte, error) {
	status, payload, err := f.wait()
	if err != nil {
		return nil, err
	}
	if err := statusToErr(status, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
