package client

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"lsmlab/internal/core"
	"lsmlab/internal/replica"
	"lsmlab/internal/server"
	"lsmlab/internal/vfs"
)

// serveEngine exposes any engine on a loopback listener and returns
// its address.
func serveEngine(t *testing.T, eng server.Engine, opts server.Options) string {
	t.Helper()
	srv := server.New(eng, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		<-done
	})
	return ln.Addr().String()
}

func openStore(t *testing.T, replicaMode bool) *core.DB {
	t.Helper()
	opts := core.DefaultOptions(vfs.NewMem(), "db")
	opts.Replica = replicaMode
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// deadAddr returns an address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestReplicaPoolSkipsDeadAddress: a down follower must cost one dial
// failure per backoff window, not one per read, and never fail a read.
func TestReplicaPoolSkipsDeadAddress(t *testing.T) {
	db := openStore(t, false)
	leader := serveEngine(t, db, server.Options{})
	// The "replica" serves the same store, so its view is always
	// current; the point here is pool health, not replication.
	rep := serveEngine(t, db, server.Options{})

	c := New(Options{Addr: leader, Replicas: []string{deadAddr(t), rep},
		ReplicaBackoff: time.Second})
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, err := c.Get([]byte("k"))
		if err != nil || string(v) != "v" {
			t.Fatalf("get %d: %q, %v", i, v, err)
		}
	}
	st := c.ReplicaStats()
	if st.Served == 0 {
		t.Fatal("live replica served no reads")
	}
	// 50 reads, at most two dial failures before the 1s backoff window
	// covers the rest of the loop.
	if st.Errors > 3 {
		t.Fatalf("dead replica was not skipped: %d errors for 50 reads", st.Errors)
	}
}

// TestReplicaReadsNeverStale: a follower that is permanently behind
// must never answer a read that would miss this client's writes.
func TestReplicaReadsNeverStale(t *testing.T) {
	db := openStore(t, false)
	leader := serveEngine(t, db, server.Options{})
	// A forever-empty store: its watermark vector never dominates a
	// post-write token, so every accepted answer would be stale.
	stale := openStore(t, false)
	rep := serveEngine(t, stale, server.Options{})

	c := New(Options{Addr: leader, Replicas: []string{rep}})
	defer c.Close()
	for i := 0; i < 30; i++ {
		k := []byte("key")
		v := []byte(fmt.Sprintf("v%02d", i))
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
		got, err := c.Get(k)
		if err != nil || string(got) != string(v) {
			t.Fatalf("read-your-writes violated at %d: %q, %v", i, got, err)
		}
	}
	st := c.ReplicaStats()
	if st.Served != 0 {
		t.Fatalf("stale replica served %d reads", st.Served)
	}
	if st.Stale == 0 {
		t.Fatal("stale replica was never probed")
	}
}

// TestReplicaReadYourWrites drives real replication end to end: every
// read after a write sees that write, served by the follower when it
// has caught up and by leader fallback when it has not.
func TestReplicaReadYourWrites(t *testing.T) {
	ldb := openStore(t, false)
	lead := replica.NewLeader([]*core.DB{ldb}, replica.LeaderOptions{
		Poll: 500 * time.Microsecond, Heartbeat: 20 * time.Millisecond})
	leaderAddr := serveEngine(t, ldb, server.Options{Repl: lead})

	ffs := vfs.NewMem()
	fopts := core.DefaultOptions(ffs, "follower")
	fopts.Replica = true
	fdb, err := core.Open(fopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	recv, err := replica.NewReceiver(replica.ReceiverOptions{
		Leader: leaderAddr, ID: "f1", FS: ffs, Dir: "follower",
		Shards:      []*core.DB{fdb},
		AckInterval: 5 * time.Millisecond, StreamTimeout: time.Second,
		Backoff: 20 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	recv.Start()
	t.Cleanup(recv.Stop)
	followerAddr := serveEngine(t, replica.NewEngine(fdb, recv), server.Options{})

	c := New(Options{Addr: leaderAddr, Replicas: []string{followerAddr}})
	defer c.Close()
	// Overwrite one key repeatedly: any stale answer is immediately
	// visible as a wrong value.
	for i := 0; i < 200; i++ {
		v := []byte(fmt.Sprintf("v%03d", i))
		if err := c.Put([]byte("hot"), v); err != nil {
			t.Fatal(err)
		}
		got, err := c.Get([]byte("hot"))
		if err != nil || string(got) != string(v) {
			t.Fatalf("stale read at %d: %q, %v", i, got, err)
		}
	}
	// Once the follower has provably caught up to the token, the next
	// read must be served by it.
	token := c.Token()
	deadline := time.Now().Add(10 * time.Second)
	for recv.AppliedVector()[0] < token[0] {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	before := c.ReplicaStats().Served
	if _, err := c.Get([]byte("hot")); err != nil {
		t.Fatal(err)
	}
	if c.ReplicaStats().Served != before+1 {
		t.Fatal("caught-up follower did not serve the read")
	}
}

// TestWriteToReplicaIsReadOnlyError: a write sent directly to a
// follower maps to the typed ErrReadOnly.
func TestWriteToReplicaIsReadOnlyError(t *testing.T) {
	fdb := openStore(t, true)
	addr := serveEngine(t, fdb, server.Options{})
	c := New(Options{Addr: addr})
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
}
