package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lsmlab/internal/partition"
	"lsmlab/internal/wire"
)

// ErrReadOnly is returned when the server refused a write because it is
// a read replica: writes go to the leader, which replicates them.
var ErrReadOnly = errors.New("lsmclient: server is a read replica (writes go to the leader)")

// Replica read fan-out.
//
// With Options.Replicas set, Get and Scan first try a follower, and the
// client guarantees read-your-writes despite replication lag: every
// write through this client refreshes a watermark-vector token, and a
// replica read is a pipelined [WATERMARK, read] pair on one follower
// connection. Responses arrive in request order, so the follower's
// answer to WATERMARK was captured before the read executed — if that
// vector dominates the token (partition.VectorDominates), the read
// observed every write the token covers and its result is served.
// Otherwise the follower is too far behind and the read silently falls
// back to the leader. A client that has not written holds no token and
// accepts any replica's answer.
//
// Followers that cannot be reached are skipped for a backoff window
// that doubles per consecutive failure (capped), so a dead replica
// costs one dial timeout — not one per read.

// replicaSlot is one follower address with its connection and health.
type replicaSlot struct {
	addr string

	mu          sync.Mutex
	cn          *conn
	failures    int
	downUntilNs int64
}

// available reports whether the slot is outside its backoff window.
func (s *replicaSlot) available(nowNs int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nowNs >= s.downUntilNs
}

// connect returns the slot's live connection, dialing if needed.
func (s *replicaSlot) connect(o Options) (*conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cn != nil && !s.cn.dead.Load() {
		return s.cn, nil
	}
	nc, err := net.DialTimeout("tcp", s.addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	s.cn = newClientConn(nc, o.MaxFrameBytes)
	return s.cn, nil
}

// noteFailure starts (or extends) the backoff window: it doubles per
// consecutive failure from ReplicaBackoff, capped at 64x.
func (s *replicaSlot) noteFailure(nowNs int64, base time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failures < 6 {
		s.failures++
	}
	s.downUntilNs = nowNs + int64(base)<<(s.failures-1)
}

func (s *replicaSlot) noteSuccess() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures = 0
	s.downUntilNs = 0
}

func (s *replicaSlot) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cn != nil {
		s.cn.fail(ErrClosed)
	}
}

// ReplicaStats counts replica read outcomes, for observability and
// tests.
type ReplicaStats struct {
	// Served is reads answered by a follower with a fresh-enough view.
	Served uint64
	// Stale is reads a follower answered from a view behind the client's
	// token; the result was discarded and the leader re-served the read.
	Stale uint64
	// Errors is replica transport failures (dial or mid-read), each
	// starting a backoff window on the failing address.
	Errors uint64
}

// ReplicaStats returns the replica fan-out counters.
func (c *Client) ReplicaStats() ReplicaStats {
	return ReplicaStats{
		Served: c.replicaServed.Load(),
		Stale:  c.replicaStale.Load(),
		Errors: c.replicaErrors.Load(),
	}
}

// Token returns a copy of the client's read-your-writes token: the
// watermark vector its writes are known to be covered by.
func (c *Client) Token() []uint64 {
	c.tokenMu.Lock()
	defer c.tokenMu.Unlock()
	return append([]uint64(nil), c.token...)
}

// snapshotToken returns the current token and whether it is unusable
// (a write's watermark refresh failed, so the token under-counts and
// replica freshness cannot be proven).
func (c *Client) snapshotToken() (token []uint64, broken bool) {
	c.tokenMu.Lock()
	defer c.tokenMu.Unlock()
	return append([]uint64(nil), c.token...), c.tokenBroken
}

// noteWrite refreshes the read-your-writes token after a successful
// write. The write has been acknowledged, hence published; a watermark
// fetched now covers it no matter which connection carries the fetch.
// If the fetch fails the token is marked broken — replica reads fall
// back to the leader — until a later refresh succeeds with no failure
// interleaved (its vector then provably covers the failed write too,
// which completed before the failure was recorded).
func (c *Client) noteWrite() {
	if len(c.replicas) == 0 {
		return
	}
	c.tokenMu.Lock()
	gen := c.tokenGen
	c.tokenMu.Unlock()
	vec, err := c.Watermark()
	c.tokenMu.Lock()
	if err != nil {
		c.tokenGen++
		c.tokenBroken = true
	} else {
		c.token = partition.MergeVectors(c.token, vec)
		if c.tokenGen == gen {
			c.tokenBroken = false
		}
	}
	c.tokenMu.Unlock()
}

// replicaRead tries to serve one read from a follower. ok reports
// success; on false the caller serves the read from the leader. Replica
// errors and stale views are both silent fallbacks — the read always
// completes, replicas only make it cheaper.
func (c *Client) replicaRead(op byte, payload []byte) (status byte, resp []byte, ok bool) {
	if len(c.replicas) == 0 {
		return 0, nil, false
	}
	token, broken := c.snapshotToken()
	if broken {
		return 0, nil, false
	}
	now := c.opts.NowNs()
	start := int(c.replicaRR.Add(1) - 1)
	for i := 0; i < len(c.replicas); i++ {
		s := c.replicas[(start+i)%len(c.replicas)]
		if !s.available(now) {
			continue
		}
		st, rp, fresh, err := c.replicaPair(s, op, payload, token)
		if err != nil {
			c.replicaErrors.Add(1)
			s.noteFailure(c.opts.NowNs(), c.opts.ReplicaBackoff)
			continue
		}
		s.noteSuccess()
		if !fresh {
			c.replicaStale.Add(1)
			return 0, nil, false
		}
		c.replicaServed.Add(1)
		return st, rp, true
	}
	return 0, nil, false
}

// replicaPair runs the pipelined [WATERMARK, op] pair on one follower
// connection and reports whether the follower's view dominates token.
func (c *Client) replicaPair(s *replicaSlot, op byte, payload []byte, token []uint64) (status byte, resp []byte, fresh bool, err error) {
	cn, err := s.connect(c.opts)
	if err != nil {
		return 0, nil, false, err
	}
	wmCall, err := cn.send(wire.OpWatermark, nil, false)
	if err != nil {
		return 0, nil, false, err
	}
	opCall, err := cn.send(op, payload, true)
	if err != nil {
		return 0, nil, false, err
	}
	wmStatus, wmResp, err := wmCall.wait(c.opts.RequestTimeout, cn)
	if err != nil {
		return 0, nil, false, err
	}
	status, resp, err = opCall.wait(c.opts.RequestTimeout, cn)
	if err != nil {
		return 0, nil, false, err
	}
	if wmStatus != wire.StatusOK {
		return 0, nil, false, fmt.Errorf("lsmclient: replica watermark: %w",
			&wire.StatusError{Code: wmStatus, Msg: string(wmResp)})
	}
	wm, err := decodeVector(wmResp)
	if err != nil {
		return 0, nil, false, err
	}
	fresh = len(token) == 0 || partition.VectorDominates(wm, token)
	return status, resp, fresh, nil
}

// ReplStatus fetches the leader's encoded replication status block (the
// REPL-STATUS admin verb); internal/replica.ParseStatus decodes it.
func (c *Client) ReplStatus() ([]byte, error) {
	status, resp, err := c.do(wire.OpReplStatus, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToErr(status, resp); err != nil {
		return nil, err
	}
	return append([]byte(nil), resp...), nil
}
