// Package client is the Go client for lsmserved, speaking the
// length-prefixed binary protocol of internal/wire. It maintains a
// fixed-size pool of pipelined connections: every connection can carry
// many in-flight requests (responses arrive in request order), and the
// pool spreads callers round-robin, so N concurrent goroutines on one
// client become N concurrent request streams server-side — which the
// engine's commit pipeline coalesces into shared WAL writes.
//
// Synchronous calls (Get, Put, ...) retry transparently on transient
// transport errors — dial failures, resets, a peer draining — with
// exponential backoff. All verbs are idempotent, so a retried write is
// at-least-once, never corrupting. A request that times out waiting for
// its response poisons its connection (the stream can no longer be
// matched) and is NOT retried, because the server may have applied it.
//
// For explicit pipelining — keeping many writes in flight from one
// goroutine — see Pipeline.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/trace"
	"lsmlab/internal/wire"
)

// Typed client errors.
var (
	// ErrNotFound is returned by Get when the key has no live value.
	ErrNotFound = errors.New("lsmclient: key not found")
	// ErrClosed is returned by calls on a closed client.
	ErrClosed = errors.New("lsmclient: client closed")
	// ErrTimeout is returned when a response missed the request
	// timeout. The request may still have been applied server-side.
	ErrTimeout = errors.New("lsmclient: request timed out")
	// ErrUnavailable is returned when the server refused a write because
	// its engine degraded to read-only mode. The condition is sticky —
	// retrying cannot help — so the client surfaces it after a single
	// attempt; reads keep working, and Health explains the cause.
	ErrUnavailable = errors.New("lsmclient: server degraded to read-only mode")
	// ErrThrottled is returned when the server answered StatusThrottled
	// on every attempt: the caller's tenant is over quota or the engine
	// is shedding write load. The client already honored the server's
	// retry-after hints between attempts, so the caller should back off
	// further rather than retry immediately. The concrete error is a
	// *ThrottledError carrying the last hint.
	ErrThrottled = errors.New("lsmclient: request throttled")
)

// ThrottledError reports a throttled request: the server's message and
// its last retry-after hint. It matches ErrThrottled under errors.Is.
type ThrottledError struct {
	// RetryAfter is the server's suggested wait before the next attempt.
	RetryAfter time.Duration
	Msg        string
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("lsmclient: request throttled (retry after %v): %s", e.RetryAfter, e.Msg)
}

func (e *ThrottledError) Is(target error) bool { return target == ErrThrottled }

// Options configures a Client. The zero value plus Addr is usable.
type Options struct {
	// Addr is the server's host:port (required).
	Addr string
	// PoolSize is the number of pipelined connections. Default 1;
	// raise it to multiply server-side write concurrency.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds each call's wait for its response.
	// Default 30s.
	RequestTimeout time.Duration
	// MaxRetries is how many times a transiently failed call is
	// re-attempted (beyond the first try). Default 2.
	MaxRetries int
	// RetryBackoff is the initial backoff between attempts; it doubles
	// per retry. Default 10ms.
	RetryBackoff time.Duration
	// MaxFrameBytes caps request and response frames. Default
	// wire.DefaultMaxFrame.
	MaxFrameBytes int

	// Replicas lists follower addresses to fan reads out to. Reads stay
	// read-your-writes consistent: a follower's answer is used only when
	// its watermark vector dominates the client's write token (see the
	// package comment in replica.go). Empty disables fan-out.
	Replicas []string
	// ReplicaBackoff is the initial skip window after a replica failure;
	// it doubles per consecutive failure, capped at 64x. Default 100ms.
	ReplicaBackoff time.Duration

	// TraceEvery, when > 0, marks every Nth data request (Get, Put,
	// Delete, Scan, Apply) with wire.TraceFlag: the server threads the
	// id into its per-operation span and echoes its own observed
	// duration, which the client stitches with the latency it measured
	// into a TraceRecord (Traces). Requests to a server that predates
	// tracing fall back to untraced automatically after one
	// StatusUnknownOp answer. 0 disables tracing.
	TraceEvery int
	// TraceRingSize bounds the ring of completed TraceRecords.
	// Default 256.
	TraceRingSize int

	// NowNs supplies time for trace latency measurement (injected for
	// deterministic tests).
	NowNs func() int64
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if o.ReplicaBackoff <= 0 {
		o.ReplicaBackoff = 100 * time.Millisecond
	}
	if o.TraceRingSize <= 0 {
		o.TraceRingSize = 256
	}
	if o.NowNs == nil {
		o.NowNs = func() int64 { return time.Now().UnixNano() }
	}
	return o
}

// TraceRecord is one completed traced request, stitching the latency
// the client observed with the server's own measurement of the same
// request: the difference is time spent on the network and in queues
// on both sides.
type TraceRecord struct {
	TraceID  uint64 `json:"trace_id"`
	Op       string `json:"op"`
	ClientNs int64  `json:"client_ns"`
	ServerNs int64  `json:"server_ns"`
}

// Client is a pooling, pipelining lsmserved client. It is safe for
// concurrent use.
type Client struct {
	opts Options

	mu     sync.Mutex
	conns  []*conn // lazily dialed; nil or dead slots re-dial on use
	closed bool

	rr atomic.Uint64

	// throttles counts StatusThrottled responses observed (including
	// ones a retry then got past); exposed via Throttles.
	throttles atomic.Int64

	// Replica fan-out state (see replica.go).
	replicas      []*replicaSlot
	replicaRR     atomic.Uint64
	replicaServed atomic.Uint64
	replicaStale  atomic.Uint64
	replicaErrors atomic.Uint64

	tokenMu     sync.Mutex
	token       []uint64
	tokenGen    uint64
	tokenBroken bool

	// Tracing state. traceOff flips on permanently after a server
	// answers a flagged opcode with StatusUnknownOp (old protocol).
	traceCtr  atomic.Uint64
	traceSeq  atomic.Uint64
	traceSeed uint64
	traceOff  atomic.Bool

	traceMu   sync.Mutex
	traceRing []TraceRecord
	traceNext int
	traceN    int
}

// New returns a client for opts.Addr. Connections are dialed lazily;
// use Ping to verify reachability eagerly.
func New(opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{
		opts:      opts,
		conns:     make([]*conn, opts.PoolSize),
		traceSeed: uint64(time.Now().UnixNano()),
		traceRing: make([]TraceRecord, opts.TraceRingSize),
	}
	for _, addr := range opts.Replicas {
		c.replicas = append(c.replicas, &replicaSlot{addr: addr})
	}
	return c
}

// Dial returns a client and verifies the server is reachable with one
// Ping.
func Dial(addr string, opts Options) (*Client, error) {
	opts.Addr = addr
	c := New(opts)
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down every pooled connection. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cn := range c.conns {
		if cn != nil {
			cn.fail(ErrClosed)
		}
	}
	for _, s := range c.replicas {
		s.close()
	}
	return nil
}

// connAt returns the pooled connection at slot i, dialing if the slot
// is empty or its connection died.
func (c *Client) connAt(i int) (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if cn := c.conns[i]; cn != nil && !cn.dead.Load() {
		return cn, nil
	}
	nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := newClientConn(nc, c.opts.MaxFrameBytes)
	c.conns[i] = cn
	return cn, nil
}

// maybeTraceID decides whether this request is traced (data ops only,
// every TraceEvery-th request) and mints its non-zero id.
func (c *Client) maybeTraceID(op byte) uint64 {
	switch op {
	case wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpScan, wire.OpBatch:
	default:
		return 0
	}
	n := c.opts.TraceEvery
	if n <= 0 || c.traceOff.Load() {
		return 0
	}
	if n > 1 && c.traceCtr.Add(1)%uint64(n) != 0 {
		return 0
	}
	for {
		if id := trace.Mix64(c.traceSeed + c.traceSeq.Add(1)); id != 0 {
			return id
		}
	}
}

// recordTrace stores one completed record in the bounded ring.
func (c *Client) recordTrace(rec TraceRecord) {
	c.traceMu.Lock()
	c.traceRing[c.traceNext] = rec
	c.traceNext = (c.traceNext + 1) % len(c.traceRing)
	if c.traceN < len(c.traceRing) {
		c.traceN++
	}
	c.traceMu.Unlock()
}

// Traces returns the retained trace records, oldest first.
func (c *Client) Traces() []TraceRecord {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	out := make([]TraceRecord, 0, c.traceN)
	for i := 0; i < c.traceN; i++ {
		out = append(out, c.traceRing[(c.traceNext-c.traceN+i+len(c.traceRing))%len(c.traceRing)])
	}
	return out
}

// do sends one request and waits for its response, retrying transient
// transport failures with exponential backoff. Throttled responses
// (StatusThrottled) are also retried within the same budget, honoring
// the server's retry-after hint with jitter; if every attempt is
// throttled the last response is returned as-is for statusToErr to
// surface as ErrThrottled.
func (c *Client) do(op byte, payload []byte) (status byte, resp []byte, err error) {
	backoff := c.opts.RetryBackoff
	traceID := c.maybeTraceID(op)
	var lastErr error
	var throttleWait time.Duration
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			if throttleWait > 0 {
				time.Sleep(throttleWait)
				throttleWait = 0
			} else {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		slot := int(c.rr.Add(1)-1) % c.opts.PoolSize
		cn, err := c.connAt(slot)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return 0, nil, err
			}
			lastErr = err
			continue
		}
		sendOp, sendPayload := op, payload
		traced := traceID != 0 && !c.traceOff.Load()
		if traced {
			sendOp = op | wire.TraceFlag
			sendPayload = append(wire.AppendTraceID(make([]byte, 0, 8+len(payload)), traceID), payload...)
		}
		start := c.opts.NowNs()
		call, err := cn.send(sendOp, sendPayload, true)
		if err != nil {
			lastErr = err
			continue
		}
		status, resp, err = call.wait(c.opts.RequestTimeout, cn)
		if err == nil {
			if traced {
				if wire.IsTracedStatus(status) {
					id, serverNs, rest, perr := wire.ReadTraceEcho(resp)
					if perr != nil {
						return 0, nil, fmt.Errorf("lsmclient: malformed trace echo: %w", perr)
					}
					c.recordTrace(TraceRecord{TraceID: id, Op: wire.OpName(op),
						ClientNs: c.opts.NowNs() - start, ServerNs: serverNs})
					status, resp = wire.BaseOp(status), rest
				} else if status == wire.StatusUnknownOp {
					// A pre-trace server: flagged opcodes are unknown to it
					// but framing survived. Fall back permanently and retry
					// this request untraced.
					c.traceOff.Store(true)
					lastErr = errors.New("lsmclient: server does not support tracing")
					continue
				}
			}
			if status == wire.StatusThrottled {
				c.throttles.Add(1)
				if attempt < c.opts.MaxRetries {
					ms, _ := wire.ReadThrottle(resp)
					throttleWait = throttleDelay(ms)
					continue
				}
			}
			return status, resp, nil
		}
		if errors.Is(err, ErrTimeout) {
			// The response may still arrive; the stream can no longer be
			// matched and the request may have been applied — poison the
			// connection and surface the timeout without retrying.
			return 0, nil, err
		}
		lastErr = err // transport failure mid-wait: retry
	}
	return 0, nil, fmt.Errorf("lsmclient: %s failed after %d attempts: %w",
		wire.OpName(op), c.opts.MaxRetries+1, lastErr)
}

// throttleDelay converts a server retry-after hint (milliseconds) into
// the actual sleep: the hint — with a floor so a zero hint still backs
// off — plus up to 25% random jitter so a fleet of throttled clients
// does not retry in lockstep, capped at 2s so a wild hint cannot park
// a caller.
func throttleDelay(ms uint64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	d += time.Duration(rand.Int63n(int64(d)/4 + 1))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// Throttles returns how many StatusThrottled responses this client has
// received, counting ones a later retry got past — the fleet-level
// signal that a workload is running into its quota.
func (c *Client) Throttles() int64 { return c.throttles.Load() }

// statusToErr maps a response to a typed error (nil for StatusOK).
// Statuses are terminal: do retries only transport failures and
// throttles, so a StatusUnavailable write is reported after exactly
// one attempt.
func statusToErr(status byte, payload []byte) error {
	switch status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, payload)
	case wire.StatusReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, payload)
	case wire.StatusThrottled:
		ms, msg := wire.ReadThrottle(payload)
		return &ThrottledError{RetryAfter: time.Duration(ms) * time.Millisecond, Msg: msg}
	default:
		return &wire.StatusError{Code: status, Msg: string(payload)}
	}
}

// Get returns the value of key, or ErrNotFound. With Replicas
// configured it is served by a follower whenever one has a
// fresh-enough view (see replica.go).
func (c *Client) Get(key []byte) ([]byte, error) {
	payload := wire.AppendBytes(nil, key)
	status, resp, ok := c.replicaRead(wire.OpGet, payload)
	if !ok {
		var err error
		status, resp, err = c.do(wire.OpGet, payload)
		if err != nil {
			return nil, err
		}
	}
	if err := statusToErr(status, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Put stores key → value.
func (c *Client) Put(key, value []byte) error {
	payload := wire.AppendBytes(nil, key)
	payload = wire.AppendBytes(payload, value)
	if err := c.doSimple(wire.OpPut, payload); err != nil {
		return err
	}
	c.noteWrite()
	return nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	if err := c.doSimple(wire.OpDelete, wire.AppendBytes(nil, key)); err != nil {
		return err
	}
	c.noteWrite()
	return nil
}

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live entries whose keys start with prefix
// (limit <= 0 uses the server's cap).
func (c *Client) Scan(prefix []byte, limit int) ([]KV, error) {
	payload := wire.AppendBytes(nil, prefix)
	if limit < 0 {
		limit = 0
	}
	payload = wire.AppendUvarint(payload, uint64(limit))
	status, resp, ok := c.replicaRead(wire.OpScan, payload)
	if !ok {
		var err error
		status, resp, err = c.do(wire.OpScan, payload)
		if err != nil {
			return nil, err
		}
	}
	if err := statusToErr(status, resp); err != nil {
		return nil, err
	}
	return decodeScan(resp)
}

func decodeScan(resp []byte) ([]KV, error) {
	count, rest, err := wire.ReadUvarint(resp)
	if err != nil {
		return nil, err
	}
	// Clamp the preallocation by what the payload could possibly hold
	// (each entry costs at least two length bytes), so a corrupt count
	// can neither panic makeslice nor reserve unbounded memory.
	capHint := count
	if max := uint64(len(rest)) / 2; capHint > max {
		capHint = max
	}
	out := make([]KV, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var k, v []byte
		k, rest, err = wire.ReadBytes(rest)
		if err != nil {
			return nil, err
		}
		v, rest, err = wire.ReadBytes(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, KV{Key: k, Value: v})
	}
	return out, nil
}

// Apply sends a batch to be applied atomically.
func (c *Client) Apply(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if err := c.doSimple(wire.OpBatch, b.payload()); err != nil {
		return err
	}
	c.noteWrite()
	return nil
}

// Stats returns the server's stats block (the STATS admin verb).
func (c *Client) Stats(verbose bool) (string, error) {
	flag := []byte{0}
	if verbose {
		flag[0] = 1
	}
	status, resp, err := c.do(wire.OpStats, flag)
	if err != nil {
		return "", err
	}
	if err := statusToErr(status, resp); err != nil {
		return "", err
	}
	return string(resp), nil
}

// Workload fetches the server's live workload profile (the WORKLOAD
// admin verb) as raw JSON — a core.WorkloadProfile document. Returned
// undecoded so callers choose their own struct or pass it through.
func (c *Client) Workload() ([]byte, error) {
	status, resp, err := c.do(wire.OpWorkload, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToErr(status, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Compact runs a full manual compaction (the COMPACT admin verb).
func (c *Client) Compact() error { return c.doSimple(wire.OpCompact, nil) }

// Ping round-trips an empty request.
func (c *Client) Ping() error { return c.doSimple(wire.OpPing, nil) }

// Health describes the server engine's degradation state.
type Health struct {
	// Degraded reports the sticky read-only mode; when set, Cause, Op,
	// and Kind explain the failure that triggered it.
	Degraded bool
	Cause    string
	Op       string
	Kind     string
}

// Health queries the server's engine health (the HEALTH admin verb).
// It keeps working while the engine is degraded.
func (c *Client) Health() (Health, error) {
	status, resp, err := c.do(wire.OpHealth, nil)
	if err != nil {
		return Health{}, err
	}
	if err := statusToErr(status, resp); err != nil {
		return Health{}, err
	}
	if len(resp) < 1 {
		return Health{}, wire.ErrTruncated
	}
	h := Health{Degraded: resp[0] != 0}
	rest := resp[1:]
	var cause, op, kind []byte
	if cause, rest, err = wire.ReadBytes(rest); err != nil {
		return Health{}, err
	}
	if op, rest, err = wire.ReadBytes(rest); err != nil {
		return Health{}, err
	}
	if kind, _, err = wire.ReadBytes(rest); err != nil {
		return Health{}, err
	}
	h.Cause, h.Op, h.Kind = string(cause), string(op), string(kind)
	return h, nil
}

// Watermark returns the server's per-shard visibility watermark vector
// (length 1 against a single-tree server; one element per shard against
// a sharded one — the WATERMARK admin verb). A vector captured after a
// client's writes is a portable read-your-writes token: any view whose
// vector dominates it component-wise includes those writes.
func (c *Client) Watermark() ([]uint64, error) {
	status, resp, err := c.do(wire.OpWatermark, nil)
	if err != nil {
		return nil, err
	}
	if err := statusToErr(status, resp); err != nil {
		return nil, err
	}
	return decodeVector(resp)
}

// decodeVector decodes a WATERMARK response: a uvarint count followed
// by that many uvarint sequence numbers.
func decodeVector(resp []byte) ([]uint64, error) {
	count, rest, err := wire.ReadUvarint(resp)
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(len(rest)) + 1; capHint > max {
		capHint = max
	}
	vec := make([]uint64, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var v uint64
		if v, rest, err = wire.ReadUvarint(rest); err != nil {
			return nil, err
		}
		vec = append(vec, v)
	}
	return vec, nil
}

func (c *Client) doSimple(op byte, payload []byte) error {
	status, resp, err := c.do(op, payload)
	if err != nil {
		return err
	}
	return statusToErr(status, resp)
}

// Batch accumulates puts and deletes for one atomic Apply.
type Batch struct {
	count int
	buf   []byte
}

// Put records key → value.
func (b *Batch) Put(key, value []byte) {
	b.buf = append(b.buf, wire.BatchPut)
	b.buf = wire.AppendBytes(b.buf, key)
	b.buf = wire.AppendBytes(b.buf, value)
	b.count++
}

// Delete records a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.buf = append(b.buf, wire.BatchDelete)
	b.buf = wire.AppendBytes(b.buf, key)
	b.count++
}

// Len returns the number of operations recorded.
func (b *Batch) Len() int { return b.count }

// Reset clears the batch for reuse, retaining its buffer.
func (b *Batch) Reset() {
	b.count = 0
	b.buf = b.buf[:0]
}

func (b *Batch) payload() []byte {
	out := wire.AppendUvarint(make([]byte, 0, len(b.buf)+2), uint64(b.count))
	return append(out, b.buf...)
}
