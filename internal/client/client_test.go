package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"lsmlab/internal/wire"
)

// fakeServer speaks just enough of the protocol to exercise the
// client's failure handling. Its behavior is switched at runtime:
// "refuse" closes accepted connections immediately, "mute" reads
// requests but never answers, "ok" answers everything with StatusOK.
type fakeServer struct {
	ln       net.Listener
	mode     atomic.Value // string
	requests atomic.Int64 // frames read across all connections
}

func newFakeServer(t *testing.T, mode string) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeServer{ln: ln}
	s.mode.Store(mode)
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			switch s.mode.Load().(string) {
			case "refuse":
				nc.Close()
				continue
			}
			go s.serve(nc)
		}
	}()
	return s
}

func (s *fakeServer) serve(nc net.Conn) {
	defer nc.Close()
	for {
		_, _, _, err := wire.ReadFrame(nc, 0, nil)
		if err != nil {
			return
		}
		s.requests.Add(1)
		switch s.mode.Load().(string) {
		case "mute":
			continue // swallow the request
		case "unavailable":
			if _, err := nc.Write(wire.AppendFrame(nil, wire.StatusUnavailable,
				[]byte("degraded to read-only"))); err != nil {
				return
			}
			continue
		}
		if _, err := nc.Write(wire.AppendFrame(nil, wire.StatusOK, nil)); err != nil {
			return
		}
	}
}

func TestRetriesTransientTransportFailures(t *testing.T) {
	s := newFakeServer(t, "refuse")
	cl := New(Options{
		Addr:         s.ln.Addr().String(),
		MaxRetries:   4,
		RetryBackoff: 2 * time.Millisecond,
	})
	defer cl.Close()

	// Every attempt meets an immediately-closed connection.
	if err := cl.Ping(); err == nil {
		t.Fatal("ping against a refusing server should fail")
	}

	// Flip the server healthy: the same client recovers on retry
	// (dead pool slots are re-dialed).
	s.mode.Store("ok")
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after server recovery: %v", err)
	}
}

func TestResponseTimeoutPoisonsConnNotRetried(t *testing.T) {
	s := newFakeServer(t, "mute")
	cl := New(Options{
		Addr:           s.ln.Addr().String(),
		RequestTimeout: 30 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	defer cl.Close()

	start := time.Now()
	_, err := cl.Get([]byte("k"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// Not retried: one timeout window, not MaxRetries of them.
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("timed-out request took %v — looks retried", d)
	}

	// The poisoned connection is replaced once the server answers.
	s.mode.Store("ok")
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after poison: %v", err)
	}
}

func TestClosedClientFailsFast(t *testing.T) {
	s := newFakeServer(t, "ok")
	cl := New(Options{Addr: s.ln.Addr().String()})
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := cl.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestDialFailsWhenUnreachable(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{DialTimeout: 200 * time.Millisecond,
		MaxRetries: 1, RetryBackoff: time.Millisecond}); err == nil {
		t.Fatal("Dial to a dead address should fail")
	}
}

func TestDecodeScanHostileCount(t *testing.T) {
	// A corrupt count near 2^62 must neither panic makeslice nor
	// reserve real memory: preallocation is clamped by the bytes the
	// payload could actually hold, and decoding errors out when the
	// entries run dry.
	resp := wire.AppendUvarint(nil, 1<<62)
	resp = wire.AppendBytes(resp, []byte("k"))
	resp = wire.AppendBytes(resp, []byte("v"))
	if _, err := decodeScan(resp); err == nil {
		t.Fatal("count exceeding payload must error")
	}
	// An honest response still decodes.
	resp = wire.AppendUvarint(nil, 1)
	resp = wire.AppendBytes(resp, []byte("k"))
	resp = wire.AppendBytes(resp, []byte("v"))
	kvs, err := decodeScan(resp)
	if err != nil || len(kvs) != 1 || string(kvs[0].Key) != "k" || string(kvs[0].Value) != "v" {
		t.Fatalf("kvs=%v err=%v", kvs, err)
	}
}

func TestPipelineEmptyBatchApply(t *testing.T) {
	s := newFakeServer(t, "ok")
	cl := New(Options{Addr: s.ln.Addr().String()})
	defer cl.Close()
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	if err := p.Apply(&b).Err(); err != nil {
		t.Fatalf("empty-batch Apply is a no-op, want nil, got %v", err)
	}
}

func TestBatchEncoding(t *testing.T) {
	var b Batch
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	payload := b.payload()
	count, rest, err := wire.ReadUvarint(payload)
	if err != nil || count != 2 {
		t.Fatalf("count=%d err=%v", count, err)
	}
	if rest[0] != wire.BatchPut {
		t.Fatalf("first kind = %#x", rest[0])
	}
	b.Reset()
	if b.Len() != 0 || len(b.payload()) != 1 {
		t.Fatal("Reset did not clear the batch")
	}
}

// TestUnavailableWriteNotRetried is the degraded-server regression
// test: StatusUnavailable means the engine is read-only and the
// condition is sticky, so the client must surface ErrUnavailable after
// exactly one attempt — retrying a degraded server is pure load.
func TestUnavailableWriteNotRetried(t *testing.T) {
	s := newFakeServer(t, "unavailable")
	cl := New(Options{
		Addr:         s.ln.Addr().String(),
		MaxRetries:   4,
		RetryBackoff: time.Millisecond,
	})
	defer cl.Close()

	err := cl.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if got := s.requests.Load(); got != 1 {
		t.Fatalf("degraded write reached the server %d times, want exactly 1", got)
	}

	// Reads against the same degraded answer also surface immediately
	// (the server only sends Unavailable for writes, but the client's
	// no-status-retry rule is op-independent).
	s.requests.Store(0)
	if _, err := cl.Get([]byte("k")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if got := s.requests.Load(); got != 1 {
		t.Fatalf("get retried %d times, want exactly 1", got)
	}
}
