// Package events delivers the engine's structural lifecycle as a typed
// stream: flushes, compactions, write stalls, WAL rotations, value-log
// garbage collection, and checkpoints each announce themselves to a
// Listener as they begin and end. The experiments and the tuning loop
// (tutorial Module III) reason about *when* jobs ran and how long they
// took, not just how many — this package is the record they read.
//
// Listeners are invoked synchronously from engine goroutines, sometimes
// with internal locks held: implementations must be fast, must not
// block, and must not call back into the DB. The in-memory Ring below
// satisfies those constraints and is the default consumer.
package events

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Type identifies one kind of engine event.
type Type uint8

// The event types, in begin/end pairs where the underlying job has
// duration. Begin and End events of one job share a JobID.
const (
	// FlushBegin/FlushEnd bracket one memtable flush to a level-0 run.
	FlushBegin Type = iota
	FlushEnd
	// CompactionBegin/CompactionEnd bracket one compaction job.
	CompactionBegin
	CompactionEnd
	// WriteStallBegin/WriteStallEnd bracket one writer blocking on
	// backpressure (full immutable queue or too many L0 runs).
	WriteStallBegin
	WriteStallEnd
	// WALRotated records a new write-ahead-log segment being opened.
	WALRotated
	// VlogGCEnd records one WiscKey value-log garbage collection pass.
	VlogGCEnd
	// CheckpointEnd records one completed (or failed) online checkpoint.
	CheckpointEnd
	// GroupCommit records one multi-batch commit group: Batches writers
	// shared a single WAL write (and, under SyncWAL, a single sync).
	// Single-batch groups are not reported — they are the uncontended
	// common case and would flood the stream.
	GroupCommit
	// ConnOpen/ConnClose bracket one network connection's lifetime on
	// the serving layer (internal/server). JobID is the connection ID
	// and Path the remote address; ConnClose carries the connection's
	// total DurationNs.
	ConnOpen
	ConnClose
	// RequestBegin/RequestEnd bracket one network request. JobID is a
	// server-wide request ID, Reason names the opcode, and RequestEnd
	// carries DurationNs plus any error the response reported.
	RequestBegin
	RequestEnd
	// DegradedEnter records the engine's one-way transition to read-only
	// degraded mode: Path names the failing background operation, Reason
	// the error class (transient/corruption/no-space), and Err the root
	// cause. There is no matching exit event — degradation is sticky
	// until the process restarts against a healthy device.
	DegradedEnter
	// ScrubEnd records one completed integrity scrub: OutputFiles is the
	// number of files checked, InputFiles the number of corruption
	// findings, and DurationNs the elapsed time.
	ScrubEnd
	// ThrottleBegin/ThrottleEnd bracket one tenant's throttle episode on
	// the serving layer: Begin fires on the first request admission
	// control rejects (or the first shed under engine backpressure),
	// End on the first request admitted afterwards. Reason carries the
	// tenant name; ThrottleEnd carries the episode's DurationNs.
	ThrottleBegin
	ThrottleEnd

	numTypes
)

var typeNames = [numTypes]string{
	FlushBegin:      "flush-begin",
	FlushEnd:        "flush-end",
	CompactionBegin: "compaction-begin",
	CompactionEnd:   "compaction-end",
	WriteStallBegin: "stall-begin",
	WriteStallEnd:   "stall-end",
	WALRotated:      "wal-rotated",
	VlogGCEnd:       "vlog-gc-end",
	CheckpointEnd:   "checkpoint-end",
	GroupCommit:     "group-commit",
	ConnOpen:        "conn-open",
	ConnClose:       "conn-close",
	RequestBegin:    "request-begin",
	RequestEnd:      "request-end",
	DegradedEnter:   "degraded",
	ScrubEnd:        "scrub-end",
	ThrottleBegin:   "throttle-begin",
	ThrottleEnd:     "throttle-end",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("event(%d)", t)
}

// IsBegin reports whether t opens a begin/end pair.
func (t Type) IsBegin() bool {
	return t == FlushBegin || t == CompactionBegin || t == WriteStallBegin ||
		t == ConnOpen || t == RequestBegin || t == ThrottleBegin
}

// End returns the matching end type for a begin type (and t otherwise).
func (t Type) End() Type {
	switch t {
	case FlushBegin:
		return FlushEnd
	case CompactionBegin:
		return CompactionEnd
	case WriteStallBegin:
		return WriteStallEnd
	case ConnOpen:
		return ConnClose
	case RequestBegin:
		return RequestEnd
	case ThrottleBegin:
		return ThrottleEnd
	}
	return t
}

// Event is one occurrence. Fields beyond Type and TimeNs are populated
// per type as documented; zero values mean "not applicable".
type Event struct {
	Type Type
	// TimeNs is the engine clock (Options.NowNs) at emission.
	TimeNs int64
	// JobID pairs the Begin and End events of one flush or compaction;
	// checkpoints also carry one so overlapping runs stay attributable.
	JobID uint64
	// Level is the source level of a compaction (0 for flushes).
	Level int
	// ToLevel is the output level of a compaction.
	ToLevel int
	// InputFiles/InputBytes describe a compaction's inputs.
	InputFiles int
	InputBytes int64
	// OutputFiles/OutputBytes describe the files an end event produced.
	OutputFiles int
	OutputBytes int64
	// DurationNs is the elapsed engine-clock time, on end events.
	DurationNs int64
	// Reason labels why the job ran (compaction trigger, stall cause).
	Reason string
	// Path names the subject of file-shaped events (WAL segment,
	// checkpoint directory).
	Path string
	// MovedRecords and Collected summarize a value-log GC pass.
	MovedRecords int
	Collected    bool
	// Batches is the size of a commit group (GroupCommit events).
	Batches int
	// Err is the failure of an end event, nil on success.
	Err error
}

// String renders one line per event, stable enough for logs and lsmctl.
func (e Event) String() string {
	var b strings.Builder
	// Real clocks stamp Unix epoch nanoseconds — render those as wall
	// time. Deterministic test clocks start near zero; a duration reads
	// better there.
	const year2000ns = 946684800e9
	if e.TimeNs >= year2000ns {
		fmt.Fprintf(&b, "%-16s t=%s", e.Type, time.Unix(0, e.TimeNs).Format("15:04:05.000"))
	} else {
		fmt.Fprintf(&b, "%-16s t=%s", e.Type, time.Duration(e.TimeNs))
	}
	if e.JobID != 0 {
		fmt.Fprintf(&b, " job=%d", e.JobID)
	}
	switch e.Type {
	case CompactionBegin, CompactionEnd:
		fmt.Fprintf(&b, " L%d->L%d", e.Level, e.ToLevel)
	}
	if e.InputFiles > 0 || e.InputBytes > 0 {
		fmt.Fprintf(&b, " in=%df/%dB", e.InputFiles, e.InputBytes)
	}
	if e.OutputFiles > 0 || e.OutputBytes > 0 {
		fmt.Fprintf(&b, " out=%df/%dB", e.OutputFiles, e.OutputBytes)
	}
	if e.DurationNs > 0 {
		fmt.Fprintf(&b, " dur=%s", time.Duration(e.DurationNs))
	}
	if e.Reason != "" {
		fmt.Fprintf(&b, " reason=%s", e.Reason)
	}
	if e.Path != "" {
		fmt.Fprintf(&b, " path=%s", e.Path)
	}
	if e.Type == VlogGCEnd {
		fmt.Fprintf(&b, " moved=%d collected=%v", e.MovedRecords, e.Collected)
	}
	if e.Type == GroupCommit {
		fmt.Fprintf(&b, " batches=%d", e.Batches)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	return b.String()
}

// Listener receives events. Implementations must be safe for concurrent
// Notify calls and must return quickly (see the package comment).
type Listener interface {
	Notify(Event)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(Event)

// Notify implements Listener.
func (f ListenerFunc) Notify(e Event) { f(e) }

// Ring is a bounded in-memory listener keeping the most recent events.
// It is the default sink: cheap enough to stay attached in production,
// deep enough to reconstruct recent engine behavior after the fact.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // index of the slot the next event lands in
	total uint64 // events ever observed (>= len(buf) once wrapped)
}

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Notify implements Listener.
func (r *Ring) Notify(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total returns how many events the ring has ever observed; subtracting
// len(Events()) gives the number dropped by the bound.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// tee fans one event out to several listeners in order.
type tee struct{ ls []Listener }

// Tee returns a listener multiplexing to every non-nil listener given.
// With zero or one live targets it returns nil or the target itself, so
// the engine's nil-listener fast path is preserved.
func Tee(ls ...Listener) Listener {
	live := make([]Listener, 0, len(ls))
	for _, l := range ls {
		if l != nil {
			live = append(live, l)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee{live}
}

// Notify implements Listener.
func (t tee) Notify(e Event) {
	for _, l := range t.ls {
		l.Notify(e)
	}
}
