package events

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		s := ty.String()
		if s == "" || strings.HasPrefix(s, "event(") {
			t.Errorf("type %d has no name", ty)
		}
	}
	if Type(200).String() != "event(200)" {
		t.Errorf("out-of-range type should render numerically")
	}
}

func TestBeginEndPairing(t *testing.T) {
	pairs := map[Type]Type{
		FlushBegin:      FlushEnd,
		CompactionBegin: CompactionEnd,
		WriteStallBegin: WriteStallEnd,
	}
	for begin, end := range pairs {
		if !begin.IsBegin() {
			t.Errorf("%v should be a begin type", begin)
		}
		if begin.End() != end {
			t.Errorf("%v.End() = %v, want %v", begin, begin.End(), end)
		}
	}
	for _, ty := range []Type{WALRotated, VlogGCEnd, CheckpointEnd, FlushEnd} {
		if ty.IsBegin() {
			t.Errorf("%v should not be a begin type", ty)
		}
		if ty.End() != ty {
			t.Errorf("%v.End() should be identity", ty)
		}
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Notify(Event{Type: FlushBegin, JobID: uint64(i + 1)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// Oldest first: jobs 7, 8, 9, 10.
	for i, e := range evs {
		if want := uint64(7 + i); e.JobID != want {
			t.Errorf("evs[%d].JobID = %d, want %d", i, e.JobID, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Notify(Event{JobID: 1})
	r.Notify(Event{JobID: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].JobID != 1 || evs[1].JobID != 2 {
		t.Fatalf("partial ring wrong: %v", evs)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Notify(Event{Type: WALRotated})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", r.Total())
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained %d, want 64", len(r.Events()))
	}
}

func TestRingWraparoundBoundary(t *testing.T) {
	// Exactly at capacity there is no wrap yet; one more event evicts
	// exactly the oldest. Then run several full revolutions to check the
	// modular arithmetic doesn't drift.
	r := NewRing(4)
	for i := 1; i <= 4; i++ {
		r.Notify(Event{JobID: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].JobID != 1 || evs[3].JobID != 4 {
		t.Fatalf("full-but-unwrapped ring wrong: %v", evs)
	}
	r.Notify(Event{JobID: 5})
	evs = r.Events()
	if len(evs) != 4 || evs[0].JobID != 2 || evs[3].JobID != 5 {
		t.Fatalf("first eviction wrong: %v", evs)
	}
	for i := 6; i <= 4*5; i++ {
		r.Notify(Event{JobID: uint64(i)})
	}
	evs = r.Events()
	for i, e := range evs {
		if want := uint64(17 + i); e.JobID != want {
			t.Fatalf("after revolutions evs[%d].JobID = %d, want %d", i, e.JobID, want)
		}
	}
	if r.Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Total())
	}
	// Events returns a copy: mutating it must not corrupt the ring.
	evs[0].JobID = 999
	if r.Events()[0].JobID == 999 {
		t.Fatal("Events returned an aliased buffer")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of no live listeners must be nil")
	}
	r := NewRing(4)
	if Tee(nil, r) != Listener(r) {
		t.Fatal("Tee of one live listener must be that listener")
	}
	r2 := NewRing(4)
	both := Tee(r, nil, r2)
	both.Notify(Event{Type: FlushBegin})
	if r.Total() != 1 || r2.Total() != 1 {
		t.Fatalf("tee did not fan out: %d %d", r.Total(), r2.Total())
	}
}

func TestTeeConcurrentNotify(t *testing.T) {
	// The engine notifies from user goroutines and background workers at
	// once; a tee over rings must deliver everything to every branch
	// without racing (this is a -race test as much as a logic test).
	r1, r2 := NewRing(32), NewRing(128)
	l := Tee(r1, r2)
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Notify(Event{Type: FlushEnd, JobID: uint64(g*each + i)})
			}
		}()
	}
	wg.Wait()
	if r1.Total() != goroutines*each || r2.Total() != goroutines*each {
		t.Fatalf("tee lost events under concurrency: %d %d", r1.Total(), r2.Total())
	}
	if len(r1.Events()) != 32 || len(r2.Events()) != 128 {
		t.Fatalf("retention off: %d %d", len(r1.Events()), len(r2.Events()))
	}
}

func TestListenerFunc(t *testing.T) {
	var got []Event
	l := ListenerFunc(func(e Event) { got = append(got, e) })
	l.Notify(Event{Type: CheckpointEnd})
	if len(got) != 1 || got[0].Type != CheckpointEnd {
		t.Fatalf("ListenerFunc did not deliver: %v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Type: CompactionEnd, TimeNs: 1e9, JobID: 3, Level: 1, ToLevel: 2,
		InputFiles: 4, InputBytes: 1 << 20, OutputFiles: 2, OutputBytes: 1 << 19,
		DurationNs: 5e6, Reason: "level-size", Err: errors.New("boom"),
	}
	s := e.String()
	for _, want := range []string{"compaction-end", "job=3", "L1->L2", "reason=level-size", `err="boom"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	gc := Event{Type: VlogGCEnd, MovedRecords: 7, Collected: true}
	if !strings.Contains(gc.String(), "moved=7") {
		t.Errorf("vlog gc String() = %q", gc.String())
	}
}
