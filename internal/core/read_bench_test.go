package core

import (
	"fmt"
	"testing"

	"lsmlab/internal/vfs"
)

// hotDB builds the two steady-state hit shapes the get fast path must
// serve without allocating: keys resident in the memtable, and keys in
// an L0 table whose blocks are warm in the block cache. Tracing and
// latency recording are off, as in a default production open.
func hotDB(tb testing.TB) (db *DB, memKey, sstKey []byte) {
	tb.Helper()
	opts := DefaultOptions(vfs.NewMem(), "db")
	var err error
	db, err = Open(opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })

	val := make([]byte, 100)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("sst%06d", i)), val); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("mem%06d", i)), val); err != nil {
			tb.Fatal(err)
		}
	}

	memKey = []byte("mem000100")
	sstKey = []byte("sst001000")
	// Warm the block cache, the scratch pool, and the workload profiler
	// so the measured phase starts in steady state: the profiler samples
	// 1-in-32 gets, and a hot key's first sampled observation inserts it
	// into the bounded top-K/tenant tables (a one-time allocation). 128
	// warm gets make several sampled observations per key overwhelmingly
	// likely (and AllocsPerRun truncates, so a rare straggler admission
	// cannot fail the zero-alloc gate anyway).
	for i := 0; i < 128; i++ {
		if _, err := db.Get(memKey); err != nil {
			tb.Fatal(err)
		}
		if _, err := db.Get(sstKey); err != nil {
			tb.Fatal(err)
		}
	}
	return db, memKey, sstKey
}

// TestGetHotZeroAllocs pins the zero-allocation invariant of the get
// hot path: a memtable hit and a warm-cache SST hit must not touch the
// heap. A regression here shows up as GC pressure under read load long
// before it shows up in a latency percentile, so it is gated exactly.
func TestGetHotZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	db, memKey, sstKey := hotDB(t)

	if n := testing.AllocsPerRun(500, func() {
		if _, err := db.Get(memKey); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("memtable-hit Get allocates %.1f allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(500, func() {
		if _, err := db.Get(sstKey); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm SST-hit Get allocates %.1f allocs/op, want 0", n)
	}

	absent := []byte("zzz-absent")
	if n := testing.AllocsPerRun(500, func() {
		if _, err := db.Get(absent); err != ErrNotFound {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("not-found Get allocates %.1f allocs/op, want 0", n)
	}
}

func BenchmarkGetHot(b *testing.B) {
	db, memKey, sstKey := hotDB(b)

	b.Run("memtable", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Get(memKey); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sst-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Get(sstKey); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("not-found", func(b *testing.B) {
		key := []byte("zzz-absent")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Get(key); err != ErrNotFound {
				b.Fatal(err)
			}
		}
	})
}
