package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"lsmlab/internal/manifest"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// This file is the randomized crash+fault torture harness (`make
// torture`): each iteration runs a fresh store against a seeded faulty
// device, injects one random fault, crashes (torn-tail simulation
// included), reopens on the healed device, and checks the durability
// contract against a model:
//
//   - an acknowledged write (SyncWAL on) is NEVER lost;
//   - a failed or unacknowledged write is uncertain — it may or may not
//     survive, but the store must return either its value or the prior
//     state, never garbage;
//   - recovery itself must always succeed once the device is healthy.
//
// TORTURE_ITERS overrides the iteration count (CI and `make torture`
// raise it; plain `go test` keeps it cheap).

const tortureNotFound = "\x00absent" // model marker for "key deleted/absent"

func tortureIters(t *testing.T, def int) int {
	if s := os.Getenv("TORTURE_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad TORTURE_ITERS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 4
	}
	return def
}

// crashDB abandons a DB handle the way TestCrashRecoveryLoop does: no
// Close, no flush — just stop the workers so the next Open owns the
// directory.
func crashDB(db *DB) {
	db.mu.Lock()
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.bg.Wait()
}

func TestTortureCrashFaultLoop(t *testing.T) {
	iters := tortureIters(t, 40)
	const baseSeed = 20260805
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed%d", baseSeed+it), func(t *testing.T) {
			tortureOnce(t, int64(baseSeed+it))
		})
	}
}

func tortureOnce(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	base := vfs.NewMem()
	ffs := faultfs.New(base, seed)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 2 << 10
	opts.SyncWAL = true // acked ⇒ durable is the property under test
	opts.MaxBackgroundRetries = 1
	opts.Workers = 1 + r.Intn(2)
	opts.Paranoid = true

	db, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// One random fault, armed at a random point of the op stream.
	classes := []faultfs.Class{faultfs.ClassWAL, faultfs.ClassSST,
		faultfs.ClassManifest, faultfs.ClassAny}
	ops := []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpCreate,
		faultfs.OpRename, faultfs.OpWrite | faultfs.OpSync, faultfs.OpAnyWrite}
	rule := faultfs.Rule{
		Classes:   classes[r.Intn(len(classes))],
		Ops:       ops[r.Intn(len(ops))],
		Countdown: int64(1 + r.Intn(3)),
		Sticky:    r.Intn(2) == 0,
	}
	totalOps := 60 + r.Intn(120)
	armAt := r.Intn(totalOps)

	// model holds the outcome of acknowledged ops; maybe holds the
	// candidate outcomes of failed (uncertain) ops, reset whenever a
	// later op on the same key is acknowledged.
	model := map[string]string{}
	maybe := map[string][]string{}

	for i := 0; i < totalOps; i++ {
		if i == armAt {
			ffs.AddRule(rule)
		}
		k := fmt.Sprintf("k%03d", r.Intn(48))
		if r.Intn(6) == 0 {
			if err := db.Delete([]byte(k)); err != nil {
				maybe[k] = append(maybe[k], tortureNotFound)
			} else {
				delete(model, k)
				delete(maybe, k)
			}
		} else {
			v := fmt.Sprintf("s%d-i%d", seed, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				maybe[k] = append(maybe[k], v)
			} else {
				model[k] = v
				delete(maybe, k)
			}
		}
		if r.Intn(40) == 0 {
			db.Flush() // force sst/manifest traffic; failures are uncertain
		}
	}

	// Crash: stop the workers, heal the device, and drop every unsynced
	// suffix (a random prefix of each torn tail survives — the ALICE
	// torn-write model).
	crashDB(db)
	ffs.ClearRules()
	ffs.SetWriteBudget(-1)
	if err := ffs.Crash(); err != nil {
		t.Fatalf("crash simulation: %v", err)
	}

	// Recovery on the healed device must always succeed.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatalf("reopen after crash: %v (rule %+v armed at %d)", err, rule, armAt)
	}
	defer db2.Close()

	check := func(k string) {
		v, err := db2.Get([]byte(k))
		var got string
		switch {
		case err == nil:
			got = string(v)
		case errors.Is(err, ErrNotFound):
			got = tortureNotFound
		default:
			t.Fatalf("get %s after recovery: %v", k, err)
		}
		// Acknowledged state is allowed; so is any uncertain candidate.
		if want, ok := model[k]; ok {
			if got == want {
				return
			}
		} else if got == tortureNotFound {
			return
		}
		for _, c := range maybe[k] {
			if got == c {
				return
			}
		}
		t.Fatalf("key %s = %q after crash; acked %q (present=%v), candidates %q (rule %+v armed at %d)",
			k, got, model[k], model[k] != "", maybe[k], rule, armAt)
	}
	for i := 0; i < 48; i++ {
		check(fmt.Sprintf("k%03d", i))
	}
}

// TestTortureBitRotScrub is the at-rest corruption loop: flip a random
// bit in a random live table of a cleanly built store, then require the
// scrubber to detect and quarantine it with reads intact — never a
// crash, never served garbage.
func TestTortureBitRotScrub(t *testing.T) {
	iters := tortureIters(t, 20)
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed%d", it), func(t *testing.T) {
			tortureBitRotOnce(t, int64(it))
		})
	}
}

func tortureBitRotOnce(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	base := vfs.NewMem()
	ffs := faultfs.New(base, seed)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 2 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 60; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d-%d", seed, i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()

	// Pick a victim table and flip one random bit anywhere in its block
	// region (everything before the fixed 88-byte footer is covered by a
	// block checksum, so any flip there must be detectable).
	var nums []uint64
	for num := range db.Version().LiveFileNums() {
		nums = append(nums, num)
	}
	if len(nums) == 0 {
		t.Fatal("no live tables")
	}
	victim := nums[r.Intn(len(nums))]
	name := vfs.Join("db", manifest.FileName(victim))
	f, err := base.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	const footerLen = 5*16 + 8
	if size <= footerLen {
		t.Fatalf("table %s implausibly small: %d bytes", name, size)
	}
	bit := int64(r.Intn(int(size-footerLen) * 8))
	if err := ffs.FlipBit(name, bit); err != nil {
		t.Fatal(err)
	}

	rep, err := db.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	var quarantined bool
	for _, f := range rep.Findings {
		if f.Path == manifest.FileName(victim) && f.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("flipped bit in %s not quarantined: %s", name, rep)
	}

	// Reads survive: each key resolves to its true value or is cleanly
	// gone with the quarantined table — never an error, never garbage.
	for k, w := range want {
		v, err := db.Get([]byte(k))
		switch {
		case err == nil:
			if string(v) != w {
				t.Fatalf("key %s served garbage after quarantine: %q", k, v)
			}
		case errors.Is(err, ErrNotFound):
			// lost with the quarantined table — honest loss
		default:
			t.Fatalf("get %s after quarantine: %v", k, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close after quarantine: %v", err)
	}
}
